// Reproduces Figure 1: builds the complete on-chip test-sequence generator
// for a circuit's pruned weight-assignment set, emits it as a `.bench`
// netlist, verifies cycle-accurately that the hardware streams equal the
// software-expanded weighted sequences, and reports the area breakdown.
//
// Usage: figure1_generator [circuit] (default s27)
#include <cstdio>
#include <string>

#include "common/bench_common.h"
#include "core/generator_hw.h"
#include "netlist/bench_io.h"
#include "sim/good_sim.h"
#include "util/out_dir.h"
#include "util/table.h"

using namespace wbist;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s27";
  std::printf("== Figure 1: test sequence generator for %s ==\n\n",
              name.c_str());

  const bench::CircuitRun run = bench::run_circuit(name);
  const auto& omega = run.flow.pruned.omega;
  if (omega.empty()) {
    std::printf("no weight assignments selected; nothing to synthesize\n");
    return 1;
  }

  const core::GeneratorHardware hw =
      core::build_generator(omega, run.flow.procedure.sequence_length);

  std::printf("weight assignments (|Omega| after reverse-order sim): %zu\n",
              hw.session_count);
  std::printf("hardware session length: %zu cycles (L_G = %zu rounded to a\n"
              "power of two so the divider is a plain binary counter)\n\n",
              hw.session_length, run.flow.procedure.sequence_length);

  // Structure report.
  util::Table t{"Weight FSMs (one per distinct subsequence length)"};
  t.header({"period", "state bits", "outputs", "gate est."});
  for (const auto& fsm : hw.fsms.fsms)
    t.row({std::to_string(fsm.period), std::to_string(fsm.state_bits),
           std::to_string(fsm.outputs.size()),
           std::to_string(fsm.estimated_gate_count())});
  std::fputs(t.render().c_str(), stdout);

  const auto stats = hw.stats();
  std::printf("\ngenerator netlist: %zu logic gates, %zu flip-flops, 1 input"
              " (R), %zu outputs (TG lines)\n",
              stats.logic_gates, stats.flip_flops, stats.primary_outputs);
  const auto cut_stats = run.netlist.stats();
  std::printf("CUT: %zu gates, %zu flip-flops -> generator overhead: %.1f%%"
              " gates, %.1f%% flip-flops\n\n",
              cut_stats.logic_gates, cut_stats.flip_flops,
              100.0 * static_cast<double>(stats.logic_gates) /
                  static_cast<double>(cut_stats.logic_gates),
              100.0 * static_cast<double>(stats.flip_flops) /
                  static_cast<double>(std::max<std::size_t>(
                      cut_stats.flip_flops, 1)));

  // Cycle-accurate verification: reset, free-run, compare all sessions.
  sim::GoodSimulator gsim(hw.netlist);
  gsim.step(std::vector<sim::Val3>{sim::Val3::kOne});
  std::size_t mismatches = 0;
  for (std::size_t j = 0; j < hw.session_count; ++j) {
    const sim::TestSequence expect =
        omega[j].expand(hw.session_length);
    for (std::size_t u = 0; u < hw.session_length; ++u) {
      gsim.step(std::vector<sim::Val3>{sim::Val3::kZero});
      const auto out = gsim.outputs();
      for (std::size_t i = 0; i < out.size(); ++i)
        if (out[i] != expect.at(u, i)) ++mismatches;
    }
  }
  std::printf("cycle-accurate check vs software expansion over %zu sessions"
              " x %zu cycles: %zu mismatches (%s)\n",
              hw.session_count, hw.session_length, mismatches,
              mismatches == 0 ? "PASS" : "FAIL");

  // Emit the netlist for inspection.
  const std::string path = util::out_path("generator_" + name + ".bench");
  netlist::write_bench_file(hw.netlist, path);
  std::printf("generator netlist written to %s\n", path.c_str());
  return mismatches == 0 ? 0 : 1;
}
