// Ablations of the design choices DESIGN.md calls out:
//   (a) L_S growth schedule: the paper's +1 walk vs the accelerated
//       geometric schedule (same guarantees, fewer candidate lengths),
//   (b) reverse-order simulation on/off (Section 4.3's benefit),
//   (c) static compaction of T on/off (effect on |T| and weight sizes).
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "core/reverse_sim.h"
#include "tgen/compaction.h"
#include "tgen/random_tgen.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

using namespace wbist;

namespace {

std::vector<fault::FaultId> targets_of(
    const std::vector<std::int32_t>& detection_time) {
  std::vector<fault::FaultId> out;
  for (fault::FaultId f = 0; f < detection_time.size(); ++f)
    if (detection_time[f] != fault::DetectionResult::kUndetected)
      out.push_back(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int a = 1; a < argc; ++a) names.emplace_back(argv[a]);
  if (names.empty()) names = {"s27", "s298", "s386", "s526"};

  std::printf("== Ablation: procedure design choices ==\n\n");

  util::Table schedule;
  schedule.header({"circuit", "schedule", "seq", "subs", "max len", "full sims",
                   "sec"});
  util::Table pruning;
  pruning.header({"circuit", "omega", "after reverse-order", "removed"});
  util::Table compaction;
  compaction.header({"circuit", "|T| raw", "|T| compacted", "subs raw",
                     "subs compacted", "len raw", "len compacted"});

  for (const std::string& name : names) {
    const auto nl = circuits::circuit_by_name(name);
    const auto faults = fault::FaultSet::collapsed(nl);
    fault::FaultSimulator sim(nl, faults);
    tgen::TgenConfig tc;
    tc.max_length = 1024;
    const auto gen = tgen::generate_test_sequence(sim, tc);
    const auto must = targets_of(gen.detection_time);
    const auto compacted =
        tgen::compact_sequence(sim, gen.sequence, must);

    const auto count_subs = [](const core::ProcedureResult& res) {
      std::vector<core::Subsequence> subs;
      std::size_t max_len = 0;
      for (const auto& w : res.omega)
        for (const auto& s : w.per_input) {
          subs.push_back(s);
          max_len = std::max(max_len, s.length());
        }
      return std::pair{core::synthesize_weight_fsms(subs).output_count(),
                       max_len};
    };

    // (a) schedule ablation, on the compacted sequence.
    for (const bool exact : {false, true}) {
      core::ProcedureConfig pc;
      pc.sequence_length = 500;
      pc.exact_paper_schedule = exact;
      util::Timer timer;
      const auto res = core::select_weight_assignments(
          sim, compacted.sequence, compacted.detection_time, pc);
      const auto [subs, max_len] = count_subs(res);
      schedule.row({name, exact ? "paper +1" : "accelerated",
                    std::to_string(res.omega.size()), std::to_string(subs),
                    std::to_string(max_len),
                    std::to_string(res.stats.full_simulations),
                    util::fixed(timer.seconds(), 2)});
    }

    // (b) reverse-order pruning.
    {
      core::ProcedureConfig pc;
      pc.sequence_length = 500;
      const auto res = core::select_weight_assignments(
          sim, compacted.sequence, compacted.detection_time, pc);
      const auto pruned = core::reverse_order_prune(
          sim, res.omega, targets_of(compacted.detection_time),
          res.sequence_length);
      pruning.row({name, std::to_string(res.omega.size()),
                   std::to_string(pruned.omega.size()),
                   std::to_string(res.omega.size() - pruned.omega.size())});
    }

    // (c) compaction ablation.
    {
      core::ProcedureConfig pc;
      pc.sequence_length = 500;
      const auto raw = core::select_weight_assignments(
          sim, gen.sequence, gen.detection_time, pc);
      const auto comp = core::select_weight_assignments(
          sim, compacted.sequence, compacted.detection_time, pc);
      const auto [raw_subs, raw_len] = count_subs(raw);
      const auto [comp_subs, comp_len] = count_subs(comp);
      compaction.row({name, std::to_string(gen.sequence.length()),
                      std::to_string(compacted.sequence.length()),
                      std::to_string(raw_subs), std::to_string(comp_subs),
                      std::to_string(raw_len), std::to_string(comp_len)});
    }
    std::printf("  %-8s done\n", name.c_str());
    std::fflush(stdout);
  }

  std::printf("\n(a) L_S growth schedule (both reach 100%% f.e.):\n");
  std::fputs(schedule.render().c_str(), stdout);
  std::printf("\n(b) reverse-order simulation (Section 4.3):\n");
  std::fputs(pruning.render().c_str(), stdout);
  std::printf("\n(c) static compaction of T:\n");
  std::fputs(compaction.render().c_str(), stdout);
  return 0;
}
