// Reproduces Table 3: one FSM implementing the three weights 00010, 01011
// and 11001, and prints the synthesized state table plus logic cost.
#include <cstdio>

#include "core/fsm_synth.h"
#include "util/table.h"

using namespace wbist;

int main() {
  const std::vector<core::Subsequence> weights{
      core::Subsequence::parse("00010"), core::Subsequence::parse("01011"),
      core::Subsequence::parse("11001")};
  const auto result = core::synthesize_weight_fsms(weights);
  const core::WeightFsm& fsm = result.fsms.at(0);

  std::printf("== Table 3: An FSM for three weights ==\n\n");
  util::Table t;
  t.header({"PS", "NS", "z1", "z2", "z3"});
  for (std::uint32_t s = 0; s < fsm.period; ++s) {
    std::uint32_t next = 0;
    for (unsigned b = 0; b < fsm.state_bits; ++b)
      if (fsm.next_state[b].evaluates(s)) next |= 1u << b;
    std::vector<std::string> row;
    row.emplace_back(1, static_cast<char>('A' + s));
    row.emplace_back(1, static_cast<char>('A' + next));
    for (std::size_t k = 0; k < fsm.outputs.size(); ++k)
      row.emplace_back(1, fsm.output_covers[k].evaluates(s) ? '1' : '0');
    t.row(std::move(row));
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf("\nstate variables: %u (ceil(log2 %zu))\n", fsm.state_bits,
              fsm.period);
  std::printf("outputs: %zu\n", fsm.outputs.size());
  std::printf("estimated 2-input gate equivalents: %zu\n",
              fsm.estimated_gate_count());

  std::printf("\nminimized output functions over state bits x0..x%u:\n",
              fsm.state_bits - 1);
  for (std::size_t k = 0; k < fsm.outputs.size(); ++k) {
    std::printf("  z%zu (%s) = ", k + 1, fsm.outputs[k].str().c_str());
    if (fsm.output_covers[k].cubes.empty()) {
      std::printf("0\n");
      continue;
    }
    for (std::size_t c = 0; c < fsm.output_covers[k].cubes.size(); ++c) {
      if (c != 0) std::printf(" + ");
      std::printf("%s",
                  fsm.output_covers[k].cubes[c].str(fsm.state_bits).c_str());
    }
    std::printf("\n");
  }

  // Prove the hardware behaviour: run each output for three periods.
  std::printf("\noutput streams from reset (3 periods):\n");
  for (std::size_t k = 0; k < fsm.outputs.size(); ++k) {
    const auto bits = fsm.run_output(k, 3 * fsm.period);
    std::string s;
    for (const bool b : bits) s += b ? '1' : '0';
    std::printf("  z%zu: %s\n", k + 1, s.c_str());
  }
  return 0;
}
