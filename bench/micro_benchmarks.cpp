// Microbenchmarks (google-benchmark) for the performance-critical layers:
// good-machine simulation, parallel-fault simulation, weighted-sequence
// expansion, candidate-set construction, and two-level minimization.
//
// Besides the google-benchmark suite, main() runs a fault-simulation
// thread-scaling measurement (1/2/4/hardware threads) plus a per-kernel
// backend throughput comparison on s5378 (generic widths vs AVX2, scalar
// generic-w1 as baseline) and writes both to BENCH_faultsim.json in the
// working directory, so successive PRs can track the perf trajectory
// mechanically.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string_view>
#include <thread>
#include <vector>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "core/assignment.h"
#include "core/qm.h"
#include "core/weight_set.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/good_sim.h"
#include "sim/kernel.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

using namespace wbist;

namespace {

sim::TestSequence random_sequence(std::size_t length, std::size_t width,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  sim::TestSequence seq(length, width);
  for (std::size_t u = 0; u < length; ++u)
    for (std::size_t i = 0; i < width; ++i)
      seq.set(u, i,
              rng.next_bit() ? sim::Val3::kOne : sim::Val3::kZero);
  return seq;
}

const char* kCircuits[] = {"s27", "s298", "s641", "s1423", "s5378"};

void BM_GoodSimulation(benchmark::State& state) {
  const auto nl =
      circuits::circuit_by_name(kCircuits[state.range(0)]);
  sim::GoodSimulator sim(nl);
  const auto seq = random_sequence(256, nl.primary_inputs().size(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(seq));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256 *
                          static_cast<std::int64_t>(nl.eval_order().size()));
  state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_GoodSimulation)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_FaultSimulation(benchmark::State& state) {
  const auto nl =
      circuits::circuit_by_name(kCircuits[state.range(0)]);
  const auto faults = fault::FaultSet::collapsed(nl);
  fault::FaultSimulator sim(nl, faults);
  const auto seq = random_sequence(128, nl.primary_inputs().size(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_all(seq));
  }
  // fault-cycles per second: faults x time units per iteration.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()) * 128);
  state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_FaultSimulation)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_FaultSimulationThreads(benchmark::State& state) {
  const auto nl = circuits::circuit_by_name("s1423");
  const auto faults = fault::FaultSet::collapsed(nl);
  fault::FaultSimulator sim(nl, faults);
  const auto seq = random_sequence(128, nl.primary_inputs().size(), 2);
  const fault::GoodTrace trace = sim.make_trace(seq);
  fault::FaultSimOptions opt;
  opt.threads = static_cast<unsigned>(state.range(0));
  const auto ids = faults.all_ids();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(trace, ids, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()) * 128);
  state.SetLabel("s1423, threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FaultSimulationThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)  // 0 = hardware_concurrency
    ->Unit(benchmark::kMillisecond);

void BM_GoodTraceSharing(benchmark::State& state) {
  // The procedure's two-phase candidate simulation: sample pass + full pass
  // over one candidate sequence. range(0)==0 re-simulates the good machine
  // per pass (the old behaviour); range(0)==1 shares one trace.
  const auto nl = circuits::circuit_by_name("s641");
  const auto faults = fault::FaultSet::collapsed(nl);
  fault::FaultSimulator sim(nl, faults);
  const auto seq = random_sequence(256, nl.primary_inputs().size(), 4);
  const auto ids = faults.all_ids();
  const std::vector<fault::FaultId> sample(ids.begin(),
                                           ids.begin() + 32);
  const bool share = state.range(0) != 0;
  for (auto _ : state) {
    if (share) {
      const fault::GoodTrace trace = sim.make_trace(seq);
      benchmark::DoNotOptimize(sim.run(trace, sample));
      benchmark::DoNotOptimize(sim.run(trace, ids));
    } else {
      benchmark::DoNotOptimize(sim.run(seq, sample));
      benchmark::DoNotOptimize(sim.run(seq, ids));
    }
  }
  state.SetLabel(share ? "s641, shared trace" : "s641, good sim per run");
}
BENCHMARK(BM_GoodTraceSharing)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WeightedExpansion(benchmark::State& state) {
  core::WeightAssignment w;
  for (int i = 0; i < 35; ++i)
    w.per_input.push_back(core::Subsequence::parse(i % 2 ? "100110" : "01"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.expand(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_WeightedExpansion)->Arg(500)->Arg(2000)->Unit(benchmark::kMicrosecond);

void BM_CandidateSets(benchmark::State& state) {
  const auto nl = circuits::circuit_by_name("s641");
  const auto seq = random_sequence(256, nl.primary_inputs().size(), 3);
  core::WeightSet S;
  for (std::size_t u = 8; u < 250; u += 13)
    for (std::size_t len = 1; len <= 8; ++len) S.extend(seq, u, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_candidate_sets(S, seq, 200, 8));
  }
  state.SetLabel("s641, |S|=" + std::to_string(S.size()));
}
BENCHMARK(BM_CandidateSets)->Unit(benchmark::kMicrosecond);

void BM_QuineMcCluskey(benchmark::State& state) {
  const unsigned n_vars = static_cast<unsigned>(state.range(0));
  util::Rng rng(42);
  std::vector<std::uint32_t> onset, dc;
  for (std::uint32_t m = 0; m < (1u << n_vars); ++m) {
    const auto roll = rng.below(4);
    if (roll == 0) onset.push_back(m);
    else if (roll == 1) dc.push_back(m);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minimize(n_vars, onset, dc));
  }
}
BENCHMARK(BM_QuineMcCluskey)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_TraceSpan(benchmark::State& state) {
  // Cost of one instrumentation site. Disabled must be within noise of a
  // single branch; enabled is the ring-buffer push + two clock reads.
  const bool enabled = state.range(0) != 0;
  if (enabled) util::TraceRegistry::global().start(1 << 12);
  for (auto _ : state) {
    util::TraceSpan span("bench_span", util::TraceArg("k", std::int64_t{1}));
    benchmark::DoNotOptimize(&span);
  }
  if (enabled) util::TraceRegistry::global().stop();
  state.SetLabel(enabled ? "enabled" : "disabled");
}
BENCHMARK(BM_TraceSpan)->Arg(0)->Arg(1);

void BM_FaultSimulationTraced(benchmark::State& state) {
  // End-to-end span overhead on the hot path: a full serial s5378 fault-sim
  // run with tracing off vs on (spans are per group, not per cycle, so the
  // enabled delta must stay small).
  const bool traced = state.range(0) != 0;
  const auto nl = circuits::circuit_by_name("s5378");
  const auto faults = fault::FaultSet::collapsed(nl);
  fault::FaultSimulator sim(nl, faults);
  const auto seq = random_sequence(128, nl.primary_inputs().size(), 2);
  const fault::GoodTrace trace = sim.make_trace(seq);
  const auto ids = faults.all_ids();
  fault::FaultSimOptions opt;
  opt.threads = 1;
  if (traced) util::TraceRegistry::global().start(1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(trace, ids, opt));
  }
  if (traced) util::TraceRegistry::global().stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()) * 128);
  state.SetLabel(traced ? "s5378, tracing on" : "s5378, tracing off");
}
BENCHMARK(BM_FaultSimulationTraced)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_FaultCollapsing(benchmark::State& state) {
  const auto nl = circuits::circuit_by_name("s5378");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::FaultSet::collapsed(nl));
  }
  state.SetLabel("s5378");
}
BENCHMARK(BM_FaultCollapsing)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fault-sim thread-scaling measurement -> BENCH_faultsim.json
// ---------------------------------------------------------------------------

/// Wall-clock of one full parallel-fault run under `opt`.
double one_faultsim_ms(const fault::FaultSimulator& sim,
                       const fault::GoodTrace& trace,
                       std::span<const fault::FaultId> ids,
                       const fault::FaultSimOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto det = sim.run(trace, ids, opt);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(det);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Best-of-N wall-clock of one full parallel-fault run at `threads`.
double measure_faultsim_ms(const fault::FaultSimulator& sim,
                           const fault::GoodTrace& trace,
                           std::span<const fault::FaultId> ids,
                           unsigned threads, int repetitions) {
  fault::FaultSimOptions opt;
  opt.threads = threads;
  double best = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const double ms = one_faultsim_ms(sim, trace, ids, opt);
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

bool write_faultsim_scaling_json(const char* path) {
  const char* circuit = "s1423";
  const std::size_t time_units = 128;
  const int repetitions = 3;

  const auto nl = circuits::circuit_by_name(circuit);
  const auto faults = fault::FaultSet::collapsed(nl);
  fault::FaultSimulator sim(nl, faults);
  const auto seq = random_sequence(time_units, nl.primary_inputs().size(), 2);
  const fault::GoodTrace trace = sim.make_trace(seq);
  const auto ids = faults.all_ids();

  std::vector<unsigned> thread_counts{1, 2, 4};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end())
    thread_counts.push_back(hw);

  // Determinism cross-check rides along: every thread count must reproduce
  // the serial detection times exactly.
  fault::FaultSimOptions serial_opt;
  serial_opt.threads = 1;
  const auto baseline = sim.run(trace, ids, serial_opt);
  bool deterministic = true;

  struct Row {
    unsigned threads;
    double wall_ms;
  };
  std::vector<Row> rows;
  for (const unsigned t : thread_counts) {
    rows.push_back({t, measure_faultsim_ms(sim, trace, ids, t, repetitions)});
    fault::FaultSimOptions opt;
    opt.threads = t;
    const auto det = sim.run(trace, ids, opt);
    deterministic &= det.detection_time == baseline.detection_time &&
                     det.detected_count == baseline.detected_count;
  }
  const double base_ms = rows.front().wall_ms;

  // Kernel-backend throughput on s5378: every compiled-in evaluation kernel
  // against the scalar generic-w1 baseline, serial so only the block width
  // varies. Bit-identity across backends rides along.
  const char* kernel_circuit = "s5378";
  const std::size_t kernel_time_units = 64;
  const auto knl = circuits::circuit_by_name(kernel_circuit);
  const auto kfaults = fault::FaultSet::collapsed(knl);
  const auto kseq =
      random_sequence(kernel_time_units, knl.primary_inputs().size(), 5);
  const auto kids = kfaults.all_ids();

  struct KernelRow {
    const char* name;
    unsigned words;
    double wall_ms;
  };
  std::vector<KernelRow> kernel_rows;
  bool kernels_bit_identical = true;
  {
    const sim::Kernel* scalar = sim::find_kernel("generic-w1");
    const fault::FaultSimulator ksim_ref(knl, kfaults, scalar);
    const fault::GoodTrace ktrace_ref = ksim_ref.make_trace(kseq);
    const auto kbaseline = ksim_ref.run(ktrace_ref, kids, serial_opt);
    for (const sim::Kernel& k : sim::kernels()) {
      const fault::FaultSimulator ksim(knl, kfaults, &k);
      const fault::GoodTrace ktrace = ksim.make_trace(kseq);
      kernel_rows.push_back(
          {k.name, k.words,
           measure_faultsim_ms(ksim, ktrace, kids, 1, repetitions)});
      const auto det = ksim.run(ktrace, kids, serial_opt);
      kernels_bit_identical &=
          det.detection_time == kbaseline.detection_time &&
          det.detected_count == kbaseline.detected_count;
    }
  }
  double scalar_ms = 0;
  for (const KernelRow& k : kernel_rows)
    if (std::string_view(k.name) == "generic-w1") scalar_ms = k.wall_ms;

  // Lever comparison on s5378's full collapsed list over a BIST-length
  // window: every performance lever on vs every lever off, serial, with the
  // gates_evaluated counter showing where the wall-clock reduction comes
  // from. Runs are interleaved so host-load drift hits both configs alike;
  // bit-identity of times AND detecting lines rides along.
  const std::size_t lever_time_units = 256;
  const auto lseq =
      random_sequence(lever_time_units, knl.primary_inputs().size(), 7);
  const fault::FaultSimulator lsim(knl, kfaults);
  const fault::GoodTrace ltrace = lsim.make_trace(lseq);

  fault::FaultSimOptions all_off;
  all_off.threads = 1;
  all_off.cone_restriction = false;
  all_off.activity_gating = false;
  all_off.fault_dropping = false;
  all_off.locality_packing = false;
  fault::FaultSimOptions all_on;
  all_on.threads = 1;

  double lever_off_ms = 0, lever_on_ms = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const double off = one_faultsim_ms(lsim, ltrace, kids, all_off);
    const double on = one_faultsim_ms(lsim, ltrace, kids, all_on);
    if (rep == 0 || off < lever_off_ms) lever_off_ms = off;
    if (rep == 0 || on < lever_on_ms) lever_on_ms = on;
  }
  util::MetricsRegistry& reg = util::metrics();
  const std::uint64_t gates_mark0 =
      reg.counter("fault_sim.gates_evaluated").value();
  const auto ldet_off = lsim.run(ltrace, kids, all_off);
  const std::uint64_t gates_mark1 =
      reg.counter("fault_sim.gates_evaluated").value();
  const auto ldet_on = lsim.run(ltrace, kids, all_on);
  const std::uint64_t gates_mark2 =
      reg.counter("fault_sim.gates_evaluated").value();
  const std::uint64_t lever_gates_off = gates_mark1 - gates_mark0;
  const std::uint64_t lever_gates_on = gates_mark2 - gates_mark1;
  const bool levers_bit_identical =
      ldet_on.detection_time == ldet_off.detection_time &&
      ldet_on.detecting_line == ldet_off.detecting_line &&
      ldet_on.detected_count == ldet_off.detected_count;

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  out << "{\n"
      << "  \"benchmark\": \"faultsim_thread_scaling\",\n"
      << "  \"circuit\": \"" << circuit << "\",\n"
      << "  \"faults\": " << faults.size() << ",\n"
      << "  \"time_units\": " << time_units << ",\n"
      << "  \"repetitions\": " << repetitions << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    {\"threads\": " << rows[i].threads << ", \"wall_ms\": "
        << rows[i].wall_ms << ", \"speedup_vs_1\": "
        << (rows[i].wall_ms > 0 ? base_ms / rows[i].wall_ms : 0.0) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"kernel_circuit\": \"" << kernel_circuit << "\",\n"
      << "  \"kernel_faults\": " << kfaults.size() << ",\n"
      << "  \"kernel_time_units\": " << kernel_time_units << ",\n"
      << "  \"active_kernel\": \"" << sim::active_kernel().name << "\",\n"
      << "  \"kernels_bit_identical\": "
      << (kernels_bit_identical ? "true" : "false") << ",\n"
      << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& k = kernel_rows[i];
    const double fault_cycles =
        static_cast<double>(kfaults.size()) *
        static_cast<double>(kernel_time_units);
    out << "    {\"name\": \"" << k.name << "\", \"words\": " << k.words
        << ", \"wall_ms\": " << k.wall_ms
        << ", \"fault_cycles_per_ms\": "
        << (k.wall_ms > 0 ? fault_cycles / k.wall_ms : 0.0)
        << ", \"speedup_vs_scalar\": "
        << (k.wall_ms > 0 ? scalar_ms / k.wall_ms : 0.0) << "}"
        << (i + 1 < kernel_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"levers\": {\"circuit\": \"" << kernel_circuit
      << "\", \"faults\": " << kfaults.size()
      << ", \"time_units\": " << lever_time_units << ",\n"
      << "    \"all_off_wall_ms\": " << lever_off_ms
      << ", \"all_on_wall_ms\": " << lever_on_ms << ", \"speedup\": "
      << (lever_on_ms > 0 ? lever_off_ms / lever_on_ms : 0.0) << ",\n"
      << "    \"gates_evaluated_off\": " << lever_gates_off
      << ", \"gates_evaluated_on\": " << lever_gates_on
      << ", \"gates_ratio\": "
      << (lever_gates_on > 0
              ? static_cast<double>(lever_gates_off) /
                    static_cast<double>(lever_gates_on)
              : 0.0)
      << ",\n    \"bit_identical\": "
      << (levers_bit_identical ? "true" : "false") << "}\n"
      << "}\n";
  std::printf(
      "wrote %s (hardware_concurrency=%u, deterministic=%s, "
      "active_kernel=%s, kernels_bit_identical=%s, lever_speedup=%.2fx, "
      "levers_bit_identical=%s)\n",
      path, hw, deterministic ? "true" : "false", sim::active_kernel().name,
      kernels_bit_identical ? "true" : "false",
      lever_on_ms > 0 ? lever_off_ms / lever_on_ms : 0.0,
      levers_bit_identical ? "true" : "false");
  return deterministic && kernels_bit_identical && levers_bit_identical;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_faultsim_scaling_json("BENCH_faultsim.json") ? 0 : 1;
}
