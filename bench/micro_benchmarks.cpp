// Microbenchmarks (google-benchmark) for the performance-critical layers:
// good-machine simulation, parallel-fault simulation, weighted-sequence
// expansion, candidate-set construction, and two-level minimization.
#include <benchmark/benchmark.h>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "core/assignment.h"
#include "core/qm.h"
#include "core/weight_set.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/good_sim.h"
#include "util/rng.h"

using namespace wbist;

namespace {

sim::TestSequence random_sequence(std::size_t length, std::size_t width,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  sim::TestSequence seq(length, width);
  for (std::size_t u = 0; u < length; ++u)
    for (std::size_t i = 0; i < width; ++i)
      seq.set(u, i,
              rng.next_bit() ? sim::Val3::kOne : sim::Val3::kZero);
  return seq;
}

const char* kCircuits[] = {"s27", "s298", "s641", "s1423", "s5378"};

void BM_GoodSimulation(benchmark::State& state) {
  const auto nl =
      circuits::circuit_by_name(kCircuits[state.range(0)]);
  sim::GoodSimulator sim(nl);
  const auto seq = random_sequence(256, nl.primary_inputs().size(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(seq));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256 *
                          static_cast<std::int64_t>(nl.eval_order().size()));
  state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_GoodSimulation)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_FaultSimulation(benchmark::State& state) {
  const auto nl =
      circuits::circuit_by_name(kCircuits[state.range(0)]);
  const auto faults = fault::FaultSet::collapsed(nl);
  fault::FaultSimulator sim(nl, faults);
  const auto seq = random_sequence(128, nl.primary_inputs().size(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_all(seq));
  }
  // fault-cycles per second: faults x time units per iteration.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()) * 128);
  state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_FaultSimulation)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_WeightedExpansion(benchmark::State& state) {
  core::WeightAssignment w;
  for (int i = 0; i < 35; ++i)
    w.per_input.push_back(core::Subsequence::parse(i % 2 ? "100110" : "01"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.expand(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_WeightedExpansion)->Arg(500)->Arg(2000)->Unit(benchmark::kMicrosecond);

void BM_CandidateSets(benchmark::State& state) {
  const auto nl = circuits::circuit_by_name("s641");
  const auto seq = random_sequence(256, nl.primary_inputs().size(), 3);
  core::WeightSet S;
  for (std::size_t u = 8; u < 250; u += 13)
    for (std::size_t len = 1; len <= 8; ++len) S.extend(seq, u, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_candidate_sets(S, seq, 200, 8));
  }
  state.SetLabel("s641, |S|=" + std::to_string(S.size()));
}
BENCHMARK(BM_CandidateSets)->Unit(benchmark::kMicrosecond);

void BM_QuineMcCluskey(benchmark::State& state) {
  const unsigned n_vars = static_cast<unsigned>(state.range(0));
  util::Rng rng(42);
  std::vector<std::uint32_t> onset, dc;
  for (std::uint32_t m = 0; m < (1u << n_vars); ++m) {
    const auto roll = rng.below(4);
    if (roll == 0) onset.push_back(m);
    else if (roll == 1) dc.push_back(m);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minimize(n_vars, onset, dc));
  }
}
BENCHMARK(BM_QuineMcCluskey)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_FaultCollapsing(benchmark::State& state) {
  const auto nl = circuits::circuit_by_name("s5378");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::FaultSet::collapsed(nl));
  }
  state.SetLabel("s5378");
}
BENCHMARK(BM_FaultCollapsing)->Unit(benchmark::kMillisecond);

}  // namespace
