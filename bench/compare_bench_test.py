#!/usr/bin/env python3
"""Regression tests for the compare_bench.py gate logic.

Runs the comparer as a subprocess over synthesized baseline/current report
pairs and asserts the exit code plus the diagnostic text — in particular
the missing-hard-gate-key failure, which names the circuit and key instead
of silently passing. Stdlib only; wired into ctest and the bench-gate CI
job. Exit code: 0 all cases pass, 1 otherwise.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

COMPARE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "compare_bench.py")

BASE_DOC = {
    "schema": "wbist.bench.procedure/1",
    "label": "test",
    "threads": 1,
    "kernel": "generic",
    "kernel_words": 4,
    "collapse": "equivalence",
    "circuits": [
        {
            "name": "s298",
            "fault_efficiency": 1.0,
            "kernel_cycles": 1000,
            "fault_cycles": 500,
            "trace_cycles": 100,
            "t_length": 120,
            "t_detected": 300,
            "uncollapsed_faults": 596,
            "uncollapsed_detected": 596,
            "uncollapsed_coverage": 1.0,
        }
    ],
}

FAILURES = 0


def run_compare(baseline, current, *extra):
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "baseline.json")
        cp = os.path.join(d, "current.json")
        with open(bp, "w", encoding="utf-8") as f:
            json.dump(baseline, f)
        with open(cp, "w", encoding="utf-8") as f:
            json.dump(current, f)
        return subprocess.run(
            [sys.executable, COMPARE, "--baseline", bp, "--current", cp,
             *extra],
            capture_output=True,
            text=True,
        )


def check(label, proc, want_rc, *want_texts):
    global FAILURES
    ok = proc.returncode == want_rc
    out = proc.stdout + proc.stderr
    for t in want_texts:
        ok = ok and t in out
    if ok:
        print(f"ok: {label}")
    else:
        print(f"FAIL: {label}: rc={proc.returncode} (want {want_rc})\n"
              f"--- output ---\n{out}", file=sys.stderr)
        FAILURES += 1


def main():
    base = copy.deepcopy(BASE_DOC)

    check("identical reports pass",
          run_compare(base, copy.deepcopy(base)), 0, "ok:")

    # The satellite fix: a hard-gated key present in the baseline but
    # absent from the current row must fail, naming circuit and key.
    for key in ("fault_efficiency", "kernel_cycles", "uncollapsed_faults",
                "uncollapsed_detected", "uncollapsed_coverage"):
        cur = copy.deepcopy(base)
        del cur["circuits"][0][key]
        check(f"missing hard-gate key {key} fails with a named diagnostic",
              run_compare(base, cur), 1, "s298", key, "missing")

    cur = copy.deepcopy(base)
    cur["circuits"] = []
    check("baseline circuit missing from current fails by name",
          run_compare(base, cur), 1, "s298: missing from current report")

    cur = copy.deepcopy(base)
    cur["circuits"][0]["fault_efficiency"] = 0.9
    check("fault_efficiency drop fails",
          run_compare(base, cur), 1, "fault_efficiency dropped")

    cur = copy.deepcopy(base)
    cur["circuits"][0]["kernel_cycles"] = 1200
    check("kernel_cycles +20% fails at default tolerance",
          run_compare(base, cur), 1, "kernel_cycles regressed")
    check("kernel_cycles +20% passes with --cycles-tolerance 0.5",
          run_compare(base, cur, "--cycles-tolerance", "0.5"), 0, "ok:")

    cur = copy.deepcopy(base)
    cur["circuits"][0]["uncollapsed_faults"] = 600
    check("uncollapsed universe change fails",
          run_compare(base, cur), 1, "fault universe changed")

    cur = copy.deepcopy(base)
    cur["circuits"][0]["t_length"] = 121
    check("warn-field drift stays advisory",
          run_compare(base, cur), 0, "warning: s298: t_length drifted")

    cur = copy.deepcopy(base)
    cur["kernel"] = "avx2"
    check("kernel config mismatch fails",
          run_compare(base, cur), 1, "config mismatch: kernel")

    # A new circuit only in the current report is advisory.
    cur = copy.deepcopy(base)
    cur["circuits"].append(dict(cur["circuits"][0], name="s344"))
    check("extra current-only circuit warns",
          run_compare(base, cur), 0, "s344: not in baseline")

    if FAILURES:
        print(f"{FAILURES} compare_bench test(s) failed", file=sys.stderr)
        return 1
    print("all compare_bench tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
