// True BIST coverage: assemble generator + CUT + MISR into one chip model,
// inject every collapsed CUT fault into the assembly, run the complete
// self-test, and compare final signatures. This is the end-to-end number a
// user of the scheme actually gets (PO coverage minus warm-up losses,
// X-masking and aliasing), next to the idealized per-session PO coverage.
#include <cstdio>
#include <string>

#include "common/bench_common.h"
#include "core/selftest.h"
#include "sim/good_sim.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

using namespace wbist;

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int a = 1; a < argc; ++a) names.emplace_back(argv[a]);
  if (names.empty()) names = {"s27", "s298", "s344", "s386"};

  std::printf("== Self-test chip coverage (generator + CUT + MISR) ==\n\n");

  util::Table table;
  table.header({"circuit", "faults", "po f.e.", "sig-detected", "sig f.e.",
                "sessions", "cycles", "bist gates", "bist FFs", "sec"});

  for (const std::string& name : names) {
    util::Timer timer;
    const bench::CircuitRun run = bench::run_circuit(name);
    if (run.flow.pruned.omega.empty()) continue;

    // Keep sessions short for the sweep (coverage shape is unaffected).
    const std::size_t lg =
        std::min<std::size_t>(run.flow.procedure.sequence_length, 500);
    core::SelfTestConfig cfg;
    cfg.misr_width = 24;
    const core::SelfTestHardware st = core::assemble_self_test(
        run.netlist, run.faults, run.flow.pruned.omega, lg, cfg);

    fault::FaultSimulator fsim(st.netlist, st.cut_faults);
    sim::TestSequence seq(0, 1);
    {
      std::vector<sim::Val3> row{sim::Val3::kOne};
      seq.append(row);
      row[0] = sim::Val3::kZero;
      for (std::size_t t = 0; t < st.total_cycles(); ++t) seq.append(row);
    }
    const auto ids = st.cut_faults.all_ids();
    const auto final_bits = fsim.observe_final(seq, ids, st.misr_state);

    std::size_t sig_detected = 0;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      bool binary = true;
      std::uint32_t sig = 0;
      for (std::size_t b = 0; b < st.misr_state.size(); ++b) {
        if (final_bits[k][b] == sim::Val3::kX) binary = false;
        if (final_bits[k][b] == sim::Val3::kOne)
          sig |= std::uint32_t{1} << b;
      }
      // An X signature fails the golden compare on silicon, so it counts
      // as detected (the conservative reading is a *pass/fail* compare).
      if (!binary || sig != st.expected_signature) ++sig_detected;
    }

    const auto bist_gates =
        st.netlist.stats().logic_gates - run.netlist.stats().logic_gates;
    const auto bist_ffs =
        st.netlist.stats().flip_flops - run.netlist.stats().flip_flops;

    table.row(
        {name, std::to_string(run.faults.size()),
         util::fixed(100.0 * static_cast<double>(run.flow.t_detected) /
                         static_cast<double>(run.faults.size()),
                     1),
         std::to_string(sig_detected),
         util::fixed(100.0 * static_cast<double>(sig_detected) /
                         static_cast<double>(run.faults.size()),
                     1),
         std::to_string(st.session_count),
         std::to_string(st.total_cycles()), std::to_string(bist_gates),
         std::to_string(bist_ffs), util::fixed(timer.seconds(), 1)});
    std::printf("  %-8s done\n", name.c_str());
    std::fflush(stdout);
  }

  std::printf("\n");
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\n'po f.e.' is the fault coverage of the deterministic sequence (the\n"
      "targets); 'sig f.e.' is what the autonomous chip achieves through the\n"
      "signature compare. The gap is warm-up loss + aliasing; faults whose\n"
      "faulty machine leaves the signature unknown count as detected, since\n"
      "any X bit fails the golden compare on silicon.\n");
  return 0;
}
