// Reproduces the paper's running example on the real s27 (Tables 1, 2, 4, 5
// and the Section 2 narrative): the deterministic sequence, the complete
// weight set of length <= 3, the candidate sets A_i at detection time 9,
// and the weighted sequence the best assignment generates.
#include <cstdio>

#include "circuits/iscas.h"
#include "core/assignment.h"
#include "core/weight_set.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "util/table.h"

using namespace wbist;

namespace {

void print_sequence(const char* title, const sim::TestSequence& seq) {
  util::Table t{title};
  t.header({"u", "i=0", "i=1", "i=2", "i=3"});
  for (std::size_t u = 0; u < seq.length(); ++u) {
    std::vector<std::string> row{std::to_string(u)};
    for (std::size_t i = 0; i < seq.width(); ++i)
      row.emplace_back(1, sim::to_char(seq.at(u, i)));
    t.row(std::move(row));
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  const auto nl = circuits::s27();
  const auto faults = fault::FaultSet::collapsed(nl);
  fault::FaultSimulator sim(nl, faults);

  std::printf("== Paper Section 2 example on ISCAS-89 s27 (real netlist) ==\n\n");

  // Table 1.
  const auto T = circuits::s27_paper_sequence();
  print_sequence("Table 1: A test sequence", T);
  const auto det = sim.run_all(T);
  std::printf("faults: %zu collapsed; detected by T: %zu (complete coverage)\n",
              faults.size(), det.detected_count);
  std::size_t at9 = 0;
  for (const auto t : det.detection_time)
    if (t == 9) ++at9;
  std::printf("faults with detection time u=9: %zu (paper: f10, f12)\n\n", at9);

  // Table 4: the complete weight set of lengths <= 3.
  const auto S = core::WeightSet::all_up_to(3);
  {
    util::Table t{"Table 4: A set of weights for s27"};
    t.header({"j", "alpha_j"});
    for (std::size_t j = 0; j < S.size(); ++j)
      t.row({std::to_string(j), S[j].str()});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\n");
  }

  // Table 5: the candidate sets A_i at u = 9 (pre-modification order).
  const auto sets = core::build_candidate_sets(S, T, 9, 3, false);
  {
    util::Table t{"Table 5: The sets A_i for s27 (u = 9)"};
    t.header({"rank", "A_0", "n_m", "A_1", "n_m", "A_2", "n_m", "A_3", "n_m"});
    std::size_t ranks = 0;
    for (const auto& A : sets.per_input) ranks = std::max(ranks, A.size());
    for (std::size_t j = 0; j < ranks; ++j) {
      std::vector<std::string> row{std::to_string(j)};
      for (const auto& A : sets.per_input) {
        if (j < A.size()) {
          row.push_back("(" + std::to_string(A[j].index_in_s) + ")" +
                        A[j].alpha.str());
          row.push_back(std::to_string(A[j].n_m));
        } else {
          row.emplace_back();
          row.emplace_back();
        }
      }
      t.row(std::move(row));
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\n");
  }

  // Table 2: the weighted sequence of the best assignment.
  const auto best = sets.assignment_at(0);
  std::printf("best weight assignment (rank 0): %s\n\n", best.str().c_str());
  const auto tg = best.expand(12);
  print_sequence("Table 2: A weighted sequence", tg);
  const auto det_tg = sim.run_all(tg);
  std::printf("faults detected by T_G: %zu (paper: f10 plus eight more = 9)\n",
              det_tg.detected_count);

  const auto second = sets.assignment_at(1);
  const auto det_2 = sim.run_all(second.expand(12));
  std::size_t extra = 0;
  for (fault::FaultId id = 0; id < faults.size(); ++id)
    if (det_2.detected(id) && !det_tg.detected(id)) ++extra;
  std::printf(
      "second-best assignment %s detects %zu additional faults "
      "(paper: 4)\n",
      second.str().c_str(), extra);
  return 0;
}
