// Delay-fault cross-evaluation (the Section-1 lineage of [11]/[15]): how
// well do the stuck-at-derived weighted sequences detect *transition*
// faults, compared with (a) a pure-random sequence of the same total
// length and (b) the classic alternating weights w01/w10 (the subsequences
// "01"/"10") applied to every input?
//
// Measured shape (see EXPERIMENTS.md): the stuck-at-derived sessions trail
// a plain random sequence slightly — they are optimized to *reproduce* a
// stuck-at test sequence, which fixes many inputs and therefore creates
// fewer launch edges — while the all-alternating w01/w10 baseline is far
// worse (toggling everything destroys state control). The takeaway matches
// the paper's closing remark: delay-fault BIST needs its own weight
// selection, with transition-aware subsequences.
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "core/assignment.h"
#include "fault/transition.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace wbist;

namespace {

std::size_t count_detected(const fault::TransitionFaultSimulator& sim,
                           std::vector<bool>& covered,
                           const sim::TestSequence& seq) {
  const auto ids = sim.fault_set().all_ids();
  const auto det = sim.run(seq, ids);
  for (std::size_t k = 0; k < ids.size(); ++k)
    if (det.detected(k)) covered[k] = true;
  std::size_t n = 0;
  for (const bool c : covered) n += c ? 1 : 0;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int a = 1; a < argc; ++a) names.emplace_back(argv[a]);
  if (names.empty()) names = {"s27", "s298", "s344", "s386", "s526"};

  std::printf("== Transition-fault coverage of the weighted sequences ==\n\n");

  util::Table table;
  table.header({"circuit", "trans faults", "weighted", "random", "w01/w10",
                "sessions", "cycles/seq"});

  for (const std::string& name : names) {
    const bench::CircuitRun run = bench::run_circuit(name);
    const auto tset = fault::TransitionFaultSet::all(run.netlist);
    const fault::TransitionFaultSimulator tsim(run.netlist, tset);
    const std::size_t lg =
        std::min<std::size_t>(run.flow.procedure.sequence_length, 500);

    // (1) the weighted sessions from the stuck-at flow.
    std::vector<bool> covered_w(tset.size(), false);
    std::size_t weighted = 0;
    for (const core::WeightAssignment& w : run.flow.pruned.omega)
      weighted = count_detected(tsim, covered_w, w.expand(lg));

    // (2) pure random, same total length.
    util::Rng rng(name.size() * 1234567ULL + 1);
    sim::TestSequence random_seq(run.flow.pruned.omega.size() * lg,
                                 run.netlist.primary_inputs().size());
    for (std::size_t u = 0; u < random_seq.length(); ++u)
      for (std::size_t i = 0; i < random_seq.width(); ++i)
        random_seq.set(u, i,
                       rng.next_bit() ? sim::Val3::kOne : sim::Val3::kZero);
    std::vector<bool> covered_r(tset.size(), false);
    const std::size_t random_cov =
        count_detected(tsim, covered_r, random_seq);

    // (3) the classic alternating weights: all inputs "01", all "10", and
    // the two phase mixes, one session each.
    std::vector<bool> covered_a(tset.size(), false);
    std::size_t alternating = 0;
    for (int variant = 0; variant < 4; ++variant) {
      core::WeightAssignment w;
      for (std::size_t i = 0; i < run.netlist.primary_inputs().size(); ++i) {
        const bool phase = variant < 2 ? variant == 1 : (i % 2 == 0);
        w.per_input.push_back(core::Subsequence::parse(
            (variant == 3) != phase ? "01" : "10"));
      }
      alternating = count_detected(tsim, covered_a, w.expand(lg));
    }

    table.row({name, std::to_string(tset.size()),
               util::fixed(100.0 * static_cast<double>(weighted) /
                               static_cast<double>(tset.size()),
                           1),
               util::fixed(100.0 * static_cast<double>(random_cov) /
                               static_cast<double>(tset.size()),
                           1),
               util::fixed(100.0 * static_cast<double>(alternating) /
                               static_cast<double>(tset.size()),
                           1),
               std::to_string(run.flow.pruned.omega.size()),
               std::to_string(lg)});
    std::printf("  %-8s done\n", name.c_str());
    std::fflush(stdout);
  }

  std::printf("\n");
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\ncolumns are %% of all transition faults detected. 'weighted' uses\n"
      "the stuck-at flow's sessions; 'random' is one pure-random sequence\n"
      "of the same total length; 'w01/w10' is the 5-weight-style\n"
      "alternating baseline of [11] (every input toggling each cycle).\n"
      "shape: stuck-at-derived weights trail plain random slightly (fixed\n"
      "weights suppress launch edges) and all-alternating inputs are far\n"
      "worse; transition-targeted weight selection is genuine future work,\n"
      "as the paper's closing section says.\n");
  return 0;
}
