// Shared main for the observation-point tables (paper Tables 7-16). The
// circuit is baked in per binary via WBIST_OBS_CIRCUIT; an explicit circuit
// name may be passed as argv[1] to run the harness on any registry circuit.
#include "common/bench_common.h"

#ifndef WBIST_OBS_CIRCUIT
#define WBIST_OBS_CIRCUIT "s208"
#endif

int main(int argc, char** argv) {
  return wbist::bench::run_obs_table_main(WBIST_OBS_CIRCUIT, argc, argv);
}
