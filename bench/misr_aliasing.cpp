// Response-compaction experiment: how much detection is lost when the
// weighted test sequences are evaluated through an on-chip MISR signature
// instead of direct output observation?
//
// For each weighted session: compute the good signature, simulate every
// PO-detected fault through the CUT+MISR netlist, and classify it as
//   - signature-detected (final signature differs, both binary),
//   - X-masked (the faulty machine leaves the signature unknown), or
//   - aliased (binary signature equal to the good one — the MISR ate it).
// Sweeps the MISR width to show the aliasing/width tradeoff.
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "core/misr.h"
#include "sim/good_sim.h"
#include "util/strings.h"
#include "util/table.h"

using namespace wbist;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s298";
  std::printf("== MISR signature aliasing for %s ==\n\n", name.c_str());

  const bench::CircuitRun run = bench::run_circuit(name);
  const auto& omega = run.flow.pruned.omega;
  if (omega.empty()) {
    std::printf("no weight assignments; nothing to evaluate\n");
    return 1;
  }
  // Session length for the sweep. Deliberately NOT a power of two: weighted
  // sessions are periodic, so their error streams are periodic too, and a
  // capture count that is a multiple of the MISR's sequence period (2^w - 1
  // for a maximal polynomial) cancels such errors *deterministically* —
  // e.g. 510 captures of a period-3 error stream vanish mod the width-8
  // polynomial because x^510 = (x^255)^2 = 1. Choosing a capture count
  // coprime to the MISR period avoids the systematic aliasing.
  const std::size_t lg =
      std::min<std::size_t>(run.flow.procedure.sequence_length, 509);

  util::Table table;
  table.header({"width", "po-detected", "sig-detected", "x-masked", "missed",
                "sig f.e."});

  for (const unsigned width : {4u, 8u, 16u, 24u}) {
    core::Misr model(width);
    const core::MisrHardware hw = core::attach_misr(run.netlist, width, model);
    fault::FaultSimulator fsim(hw.netlist, run.faults);

    std::size_t po_detected = 0, sig_detected = 0, x_masked = 0, aliased = 0;
    std::vector<bool> po_hit(run.faults.size(), false);
    std::vector<bool> sig_hit(run.faults.size(), false);

    for (const core::WeightAssignment& w : omega) {
      const sim::TestSequence tg = w.expand(lg);

      // Good responses and warm-up for this session.
      sim::GoodSimulator good(run.netlist);
      const auto responses = good.run(tg);
      const auto warmup = core::compute_warmup(responses);
      if (!warmup) continue;  // session never initializes: skip
      const auto good_sig = model.signature(responses, *warmup);
      if (!good_sig) continue;

      // Widened sequence (EN column) + readout cycle.
      sim::TestSequence wide(0, hw.netlist.primary_inputs().size());
      std::vector<sim::Val3> row(hw.netlist.primary_inputs().size(),
                                 sim::Val3::kZero);
      for (std::size_t u = 0; u < tg.length(); ++u) {
        for (std::size_t i = 0; i < tg.width(); ++i) row[i] = tg.at(u, i);
        row.back() = u >= *warmup ? sim::Val3::kOne : sim::Val3::kZero;
        wide.append(row);
      }
      for (auto& v : row) v = sim::Val3::kZero;
      wide.append(row);

      // PO detection (observing the CUT outputs inside the combined
      // netlist) and final signatures, for all faults at once.
      const auto ids = run.faults.all_ids();
      const auto det = fsim.run(wide, ids);
      const auto final_bits = fsim.observe_final(wide, ids, hw.state);

      for (std::size_t k = 0; k < ids.size(); ++k) {
        if (!det.detected(k) || po_hit[k]) continue;
        po_hit[k] = true;
        bool binary = true;
        std::uint32_t sig = 0;
        for (unsigned b = 0; b < width; ++b) {
          if (final_bits[k][b] == sim::Val3::kX) binary = false;
          if (final_bits[k][b] == sim::Val3::kOne)
            sig |= std::uint32_t{1} << b;
        }
        if (!binary)
          ++x_masked;
        else if (sig == *good_sig)
          ++aliased;
        else
          sig_hit[k] = true;
      }
    }
    for (std::size_t k = 0; k < run.faults.size(); ++k) {
      po_detected += po_hit[k] ? 1 : 0;
      sig_detected += sig_hit[k] ? 1 : 0;
    }
    x_masked = po_detected - sig_detected - aliased;

    table.row({std::to_string(width), std::to_string(po_detected),
               std::to_string(sig_detected), std::to_string(x_masked),
               std::to_string(aliased),
               util::fixed(po_detected == 0
                               ? 0.0
                               : 100.0 * static_cast<double>(sig_detected) /
                                     static_cast<double>(po_detected),
                           1)});
    std::printf("  width %2u done\n", width);
    std::fflush(stdout);
  }

  std::printf("\n");
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nreading the table:\n"
      " - x-masked: the faulty machine leaves the signature unknown (the\n"
      "   fault disturbs initialization; inherent to the all-X start).\n"
      " - missed, width-invariant part: the fault's only output errors\n"
      "   fall inside the warm-up window, where capture is disabled.\n"
      " - missed, width-decreasing part: true MISR aliasing (~2^-width).\n"
      "The capture count is chosen coprime to the MISR period on purpose:\n"
      "weighted sessions are periodic, so their error streams are too, and\n"
      "a capture count that is a multiple of lcm(error period, 2^w - 1)\n"
      "cancels the error *deterministically* — a hazard specific to\n"
      "subsequence-weighted BIST worth knowing about.\n");
  return 0;
}
