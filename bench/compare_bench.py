#!/usr/bin/env python3
"""Bench-regression gate for wbist_bench JSON reports.

Compares a freshly generated report (schema wbist.bench.procedure/1) against
a committed baseline and fails the build when quality or simulation effort
regresses:

  * HARD FAIL  fault_efficiency drops below the baseline for any circuit
  * HARD FAIL  kernel_cycles grows by more than --cycles-tolerance
               (default 10%) for any circuit
  * HARD FAIL  the uncollapsed fault universe changes size, or
               uncollapsed_detected / uncollapsed_coverage drop below the
               baseline (collapsed-class expansion must never lose faults)
  * WARN       deterministic row metrics drift (t_length, t_detected,
               sessions, fault_list_size, fault/trace cycles) — visible in
               the log but not fatal, since procedure tuning legitimately
               moves them

Wall-clock and RSS fields are machine-dependent and always ignored.
Baselines must be produced with WBIST_FORCE_GENERIC_KERNEL=1 so that
kernel_cycles does not depend on which ISA backend the host supports; the
comparer enforces that the kernels match before comparing cycle counts.

Usage:
  compare_bench.py --baseline bench/baselines/s298.json --current out.json
  compare_bench.py --baseline ... --current ... --bless   # rewrite baseline

Exit codes: 0 ok (or blessed), 1 regression, 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys

SCHEMA = "wbist.bench.procedure/1"
# Every hard-gated metric: when a baseline row carries one of these, the
# current row must too — a missing key is a FAIL naming the circuit and
# key, never a silent pass (a truncated or incompatible record would
# otherwise sail through every gate below).
HARD_FIELDS = (
    "fault_efficiency",
    "kernel_cycles",
    "uncollapsed_faults",
    "uncollapsed_detected",
    "uncollapsed_coverage",
)
WARN_FIELDS = (
    "t_length",
    "t_detected",
    "sessions",
    "subsequences",
    "fsms",
    "fault_list_size",
    "fault_cycles",
    "trace_cycles",
    "full_simulations",
    "good_machine_sims",
)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
    return doc


def rows_by_name(doc: dict, path: str) -> dict[str, dict]:
    rows = {}
    for row in doc.get("circuits", []):
        name = row.get("name")
        if not name:
            sys.exit(f"error: {path}: circuit row without a name")
        rows[name] = row
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--current", required=True, help="freshly generated JSON")
    ap.add_argument(
        "--cycles-tolerance",
        type=float,
        default=0.10,
        help="allowed fractional kernel_cycles growth (default 0.10)",
    )
    ap.add_argument(
        "--bless",
        action="store_true",
        help="overwrite the baseline with the current report and exit 0",
    )
    args = ap.parse_args()

    current = load(args.current)
    if args.bless:
        shutil.copyfile(args.current, args.baseline)
        print(f"blessed: {args.current} -> {args.baseline}")
        return 0

    baseline = load(args.baseline)
    failures: list[str] = []
    warnings: list[str] = []

    for key in ("kernel", "kernel_words", "collapse", "threads"):
        if baseline.get(key) != current.get(key):
            failures.append(
                f"config mismatch: {key} baseline={baseline.get(key)!r} "
                f"current={current.get(key)!r} (run the bench with the same "
                f"WBIST_FORCE_GENERIC_KERNEL / --collapse / --threads setup)"
            )

    base_rows = rows_by_name(baseline, args.baseline)
    cur_rows = rows_by_name(current, args.current)
    for name in sorted(base_rows):
        if name not in cur_rows:
            failures.append(f"{name}: missing from current report")
    for name in sorted(cur_rows):
        if name not in base_rows:
            warnings.append(f"{name}: not in baseline (new circuit?)")

    for name in sorted(set(base_rows) & set(cur_rows)):
        b, c = base_rows[name], cur_rows[name]

        for key in HARD_FIELDS:
            if key in b and key not in c:
                failures.append(
                    f"{name}: hard-gated key '{key}' is in the baseline but "
                    f"missing from the current report (truncated or "
                    f"incompatible record?)"
                )

        b_fe, c_fe = b.get("fault_efficiency"), c.get("fault_efficiency")
        if b_fe is not None and c_fe is not None and c_fe < b_fe - 1e-9:
            failures.append(
                f"{name}: fault_efficiency dropped {b_fe:.6f} -> {c_fe:.6f}"
            )

        b_kc, c_kc = b.get("kernel_cycles"), c.get("kernel_cycles")
        if b_kc and c_kc is not None:
            growth = (c_kc - b_kc) / b_kc
            if growth > args.cycles_tolerance:
                failures.append(
                    f"{name}: kernel_cycles regressed {b_kc} -> {c_kc} "
                    f"(+{growth:.1%}, tolerance {args.cycles_tolerance:.0%})"
                )

        b_uf, c_uf = b.get("uncollapsed_faults"), c.get("uncollapsed_faults")
        if b_uf is not None and c_uf is not None and b_uf != c_uf:
            failures.append(
                f"{name}: uncollapsed fault universe changed "
                f"{b_uf} -> {c_uf} (fault enumeration / collapsing bug?)"
            )

        b_ud, c_ud = b.get("uncollapsed_detected"), c.get("uncollapsed_detected")
        if b_ud is not None and c_ud is not None:
            if c_ud < b_ud:
                failures.append(
                    f"{name}: uncollapsed_detected dropped {b_ud} -> {c_ud}"
                )
            elif c_ud > b_ud:
                warnings.append(
                    f"{name}: uncollapsed_detected drifted {b_ud} -> {c_ud}"
                )

        b_cov = b.get("uncollapsed_coverage")
        c_cov = c.get("uncollapsed_coverage")
        if b_cov is not None and c_cov is not None and c_cov < b_cov - 1e-9:
            failures.append(
                f"{name}: uncollapsed_coverage dropped "
                f"{b_cov:.6f} -> {c_cov:.6f}"
            )

        for field in WARN_FIELDS:
            if field in b and field in c and b[field] != c[field]:
                warnings.append(
                    f"{name}: {field} drifted {b[field]} -> {c[field]}"
                )

    for w in warnings:
        print(f"warning: {w}")
    for f in failures:
        print(f"FAIL: {f}")
    if failures:
        print(
            f"{len(failures)} regression(s) vs {args.baseline}; if intended, "
            f"re-bless with: compare_bench.py --baseline {args.baseline} "
            f"--current {args.current} --bless"
        )
        return 1
    print(
        f"ok: {args.current} vs {args.baseline} "
        f"({len(warnings)} warning(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
