// Baseline comparison: the classic 3-weight scheme of [10] (constant 0/1 or
// pseudo-random per input) versus the paper's subsequence weights, and the
// Section-6 extension (LFSR sessions + subsequences).
//
// Expected shape: the 3-weight baseline plateaus below 100% fault
// efficiency on sequential circuits (it cannot reproduce input
// subsequences), the proposed method always reaches 100%, and the extension
// reaches 100% with fewer subsequences / FSM outputs.
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "core/random_extension.h"
#include "core/three_weight_baseline.h"
#include "tgen/random_tgen.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

using namespace wbist;

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int a = 1; a < argc; ++a) names.emplace_back(argv[a]);
  if (names.empty()) names = {"s27", "s208", "s298", "s344", "s386", "s526"};

  std::printf("== Ablation: 3-weight baseline vs subsequence weights vs "
              "LFSR extension ==\n\n");

  util::Table table;
  table.header({"circuit", "targets",
                "3w f.e.", "3w seq",
                "prop f.e.", "prop seq", "prop subs",
                "ext f.e.", "ext rand", "ext seq", "ext subs"});

  for (const std::string& name : names) {
    const auto nl = circuits::circuit_by_name(name);
    const auto faults = fault::FaultSet::collapsed(nl);
    fault::FaultSimulator sim(nl, faults);
    tgen::TgenConfig tc;
    tc.max_length = 1024;
    const auto gen = tgen::generate_test_sequence(sim, tc);

    core::ThreeWeightConfig bc;
    bc.sequence_length = 500;
    const auto baseline = core::run_three_weight_baseline(
        sim, gen.sequence, gen.detection_time, bc);

    core::ProcedureConfig pc;
    pc.sequence_length = 500;
    const auto proposed = core::select_weight_assignments(
        sim, gen.sequence, gen.detection_time, pc);

    core::ExtendedSchemeConfig ec;
    ec.procedure.sequence_length = 500;
    const auto extended = core::run_extended_scheme(
        sim, gen.sequence, gen.detection_time, ec);

    const auto distinct_subs = [](const auto& omega) {
      std::vector<core::Subsequence> subs;
      for (const auto& w : omega)
        for (const auto& s : w.per_input) subs.push_back(s);
      const auto fsms = core::synthesize_weight_fsms(subs);
      return fsms.output_count();
    };

    table.row({name, std::to_string(baseline.target_count),
               util::fixed(100.0 * baseline.fault_efficiency(), 1),
               std::to_string(baseline.assignments.size()),
               util::fixed(100.0 * proposed.fault_efficiency(), 1),
               std::to_string(proposed.omega.size()),
               std::to_string(distinct_subs(proposed.omega)),
               util::fixed(100.0 * extended.fault_efficiency(), 1),
               std::to_string(extended.random_sessions),
               std::to_string(extended.procedure.omega.size()),
               std::to_string(distinct_subs(extended.procedure.omega))});
    std::printf("  %-8s done\n", name.c_str());
    std::fflush(stdout);
  }

  std::printf("\n");
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nshape: 'prop' always reaches 100.0 f.e.; '3w' may fall short "
      "(sequential state walks need subsequences); 'ext' reaches 100.0 "
      "with fewer or equal weighted sessions/subsequences than 'prop'.\n");
  return 0;
}
