// Reproduces Table 6: the main experimental results. For every circuit the
// full flow runs (deterministic sequence -> weight assignments ->
// reverse-order simulation -> FSM synthesis) and the measured row is printed
// next to the paper's published row.
//
// Usage:
//   table6_main                 # all circuits up to s5378
//   table6_main --full          # includes s9234..s38417 (long-running)
//   table6_main s27 s298 ...    # explicit circuit list
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

using namespace wbist;

int main(int argc, char** argv) {
  std::vector<std::string> names;
  bool full = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--full") == 0)
      full = true;
    else
      names.emplace_back(argv[a]);
  }
  if (names.empty()) {
    for (const auto& info : circuits::known_circuits()) {
      // The large set (s9234 and up) takes minutes per circuit through the
      // full flow; keep the default run quick.
      if (info.profile.n_gates > 3000 && !full) continue;
      names.push_back(info.name);
    }
  }

  std::printf("== Table 6: Experimental results ==\n");
  std::printf(
      "All circuits except s27 are synthetic analogs with the published\n"
      "ISCAS-89 structural profiles; T comes from the library's own\n"
      "random+compaction generator, so absolute values differ from the\n"
      "paper while the shape claims hold (see EXPERIMENTS.md).\n\n");

  util::Table table;
  table.header({"circuit", "len", "det", "seq", "subs", "len", "num", "out",
                "f.e.", "sec"});
  util::Timer total;
  const auto paper = bench::paper_table6();
  std::vector<std::string> paper_lines;

  for (const std::string& name : names) {
    const bench::CircuitRun run = bench::run_circuit(name);
    const core::Table6Row& row = run.flow.table6;
    table.row({row.circuit, std::to_string(row.t_length),
               std::to_string(row.t_detected), std::to_string(row.n_seq),
               std::to_string(row.n_subs), std::to_string(row.max_len),
               std::to_string(row.n_fsms), std::to_string(row.n_fsm_outputs),
               util::fixed(100.0 * run.flow.procedure.fault_efficiency(), 1),
               util::fixed(run.seconds, 1)});
    std::printf("  %-8s done in %.1fs (fe=%.1f%%, |omega before prune|=%zu)\n",
                name.c_str(), run.seconds,
                100.0 * run.flow.procedure.fault_efficiency(),
                run.flow.procedure.omega.size());
    std::fflush(stdout);
  }

  std::printf("\nmeasured (this library):\n");
  std::fputs(table.render().c_str(), stdout);

  util::Table ptable;
  ptable.header({"circuit", "len", "det", "seq", "subs", "len", "num", "out"});
  for (const auto& p : paper) {
    bool requested = false;
    for (const auto& n : names) requested |= n == p.circuit;
    if (!requested) continue;
    ptable.row({p.circuit, std::to_string(p.len), std::to_string(p.det),
                std::to_string(p.seq), std::to_string(p.subs),
                std::to_string(p.max_len), std::to_string(p.fsm_num),
                std::to_string(p.fsm_out)});
  }
  std::printf("\npaper (Table 6, for shape comparison):\n");
  std::fputs(ptable.render().c_str(), stdout);

  std::printf("\ntotal: %.1fs\n", total.seconds());
  return 0;
}
