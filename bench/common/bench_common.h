// Shared plumbing for the experiment harnesses: size-scaled budgets, the
// circuit -> flow pipeline, and the paper's published values for
// side-by-side "paper vs measured" reporting.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuits/registry.h"
#include "core/flow.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"

namespace wbist::bench {

/// Budgets scaled to circuit size so every harness finishes in minutes on a
/// laptop while the small/medium circuits still run with the paper's
/// parameters (L_G = 2000).
core::FlowConfig scaled_flow_config(const netlist::NetlistStats& stats);

/// One fully evaluated circuit: netlist, collapsed faults, simulator, and
/// the end-to-end flow result.
struct CircuitRun {
  std::string name;
  netlist::Netlist netlist;
  fault::FaultSet faults;
  std::unique_ptr<fault::FaultSimulator> sim;
  core::FlowConfig config;
  core::FlowResult flow;
  double seconds = 0;
};

/// Build + run the whole flow for a registry circuit.
CircuitRun run_circuit(const std::string& name);

/// The paper's Table 6 rows (for the shape comparison printed next to our
/// measured rows).
struct PaperTable6Row {
  const char* circuit;
  std::size_t len, det, seq, subs, max_len, fsm_num, fsm_out;
};
std::vector<PaperTable6Row> paper_table6();

/// Paper values for the observation-point tables 7-16: first and last rows
/// (seq, obs at first 100% f.e., final seq count for 0 obs).
struct PaperObsSummary {
  const char* circuit;
  int paper_table_number;
  std::size_t first_seq;   ///< fewest assignments reported
  std::size_t first_obs;   ///< observation points needed at that row
  std::size_t full_seq;    ///< assignments for 100% f.e. with 0 obs
};
std::optional<PaperObsSummary> paper_obs_summary(const std::string& circuit);

/// Shared main for the tables 7-16 binaries.
int run_obs_table_main(const std::string& circuit, int argc, char** argv);

}  // namespace wbist::bench
