#include "common/bench_common.h"

#include <cstdio>

#include "core/obs_points.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace wbist::bench {

using fault::DetectionResult;
using fault::FaultId;

core::FlowConfig scaled_flow_config(const netlist::NetlistStats& stats) {
  core::FlowConfig cfg;
  const std::size_t gates = stats.logic_gates;
  if (gates < 1000) {
    cfg.tgen.max_length = 2000;
    cfg.compaction.max_simulations = 600;
    cfg.procedure.sequence_length = 2000;
  } else if (gates < 2500) {
    cfg.tgen.max_length = 1500;
    cfg.compaction.max_simulations = 150;
    cfg.procedure.sequence_length = 2000;
  } else if (gates < 10000) {
    cfg.tgen.max_length = 800;
    cfg.compaction.max_simulations = 40;
    cfg.procedure.sequence_length = 1000;
  } else {
    cfg.tgen.max_length = 300;
    cfg.tgen.chunk = 64;
    cfg.compaction.max_simulations = 10;
    cfg.procedure.sequence_length = 400;
  }
  return cfg;
}

CircuitRun run_circuit(const std::string& name) {
  util::Timer timer;
  CircuitRun run;
  run.name = name;
  run.netlist = circuits::circuit_by_name(name);
  run.faults = fault::FaultSet::collapsed(run.netlist);
  run.sim = std::make_unique<fault::FaultSimulator>(run.netlist, run.faults);
  run.config = scaled_flow_config(run.netlist.stats());
  run.flow = core::run_flow(*run.sim, name, run.config);
  run.seconds = timer.seconds();
  return run;
}

std::vector<PaperTable6Row> paper_table6() {
  return {
      {"s208", 105, 137, 10, 39, 18, 14, 38},
      {"s298", 117, 265, 3, 9, 44, 7, 9},
      {"s344", 57, 329, 9, 60, 8, 8, 56},
      {"s382", 516, 364, 5, 15, 211, 9, 15},
      {"s386", 121, 314, 20, 94, 14, 13, 80},
      {"s400", 611, 380, 4, 12, 154, 8, 12},
      {"s420", 108, 179, 5, 90, 18, 11, 90},
      {"s444", 608, 424, 4, 12, 231, 8, 12},
      {"s526", 1006, 454, 11, 32, 161, 28, 32},
      {"s641", 101, 404, 10, 145, 10, 10, 127},
      {"s820", 491, 814, 14, 244, 86, 28, 236},
      {"s1196", 238, 1239, 151, 14, 3, 3, 10},
      {"s1423", 1024, 1414, 15, 223, 201, 46, 219},
      {"s1488", 455, 1444, 6, 46, 225, 16, 46},
      {"s5378", 646, 3639, 27, 701, 25, 25, 679},
      {"s35932", 150, 35100, 14, 445, 53, 23, 436},
  };
}

std::optional<PaperObsSummary> paper_obs_summary(const std::string& circuit) {
  static const PaperObsSummary kRows[] = {
      {"s208", 7, 2, 7, 7},    {"s298", 8, 1, 4, 3},
      {"s344", 9, 4, 9, 8},    {"s386", 10, 7, 12, 19},
      {"s400", 11, 2, 7, 4},   {"s420", 12, 2, 3, 5},
      {"s526", 13, 1, 18, 9},  {"s641", 14, 3, 12, 7},
      {"s1423", 15, 4, 9, 9},  {"s5378", 16, 5, 31, 23},
  };
  for (const auto& row : kRows)
    if (circuit == row.circuit) return row;
  return std::nullopt;
}

int run_obs_table_main(const std::string& circuit, int argc, char** argv) {
  std::string target = circuit;
  if (argc > 1) target = argv[1];

  const auto paper = paper_obs_summary(target);
  std::printf("== Observation-point insertion for %s", target.c_str());
  if (paper)
    std::printf("  (reproduces paper Table %d)", paper->paper_table_number);
  std::printf(" ==\n");
  const auto info = circuits::circuit_info(target);
  if (info && info->synthetic)
    std::printf(
        "note: synthetic analog of ISCAS-89 %s (see DESIGN.md substitutions)\n",
        target.c_str());

  util::Timer timer;
  CircuitRun run = run_circuit(target);

  std::vector<FaultId> targets;
  for (FaultId id = 0; id < run.faults.size(); ++id)
    if (run.flow.detection_time[id] != DetectionResult::kUndetected)
      targets.push_back(id);

  core::ObsTradeoffConfig cfg;
  cfg.sequence_length = run.flow.procedure.sequence_length;
  const auto result = core::observation_point_tradeoff(
      *run.sim, run.flow.procedure.omega, targets, cfg);

  util::Table table;
  table.header({"circuit", "seq", "sub", "len", "f.e.", "obs", "f.e."});
  for (const auto& row : result.rows) {
    table.row({target, std::to_string(row.n_seq), std::to_string(row.n_subs),
               std::to_string(row.max_len), util::fixed(row.fe_before, 1),
               std::to_string(row.n_obs), util::fixed(row.fe_after, 1)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nmeasured: |T|=%zu, targets=%zu, |omega|=%zu, rows=%zu (%.1fs)\n",
      run.flow.sequence.length(), targets.size(),
      run.flow.procedure.omega.size(), result.rows.size(), timer.seconds());
  if (paper) {
    std::printf(
        "paper (Table %d) shape: first reported row %zu seq / %zu obs; "
        "100%% f.e. with 0 obs at %zu seq\n",
        paper->paper_table_number, paper->first_seq, paper->first_obs,
        paper->full_seq);
  }
  if (!result.rows.empty()) {
    const auto& first = result.rows.front();
    const auto& last = result.rows.back();
    std::printf(
        "shape check: fewer sequences need more observation points "
        "(first row %zu seq / %zu obs; last row %zu seq / %zu obs)\n",
        first.n_seq, first.n_obs, last.n_seq, last.n_obs);
  }
  return 0;
}

}  // namespace wbist::bench
