#!/bin/sh
# Stress smoke for `wbist serve` under hostile load: slow-loris clients
# pinning readers plus a burst of legitimate submits against a deliberately
# tiny job queue. Asserts that legitimate work completes, that the bounded
# queue sheds the overflow with structured `overloaded` rejections, and
# that the load-shedding counters fire.
# Run by ctest/CI as: wbist_serve_stress.sh <path-to-wbist-binary>
set -u

WBIST=${1:?usage: wbist_serve_stress.sh <wbist-binary>}
WORK=$(mktemp -d)
SOCK="$WORK/d.sock"
FAILURES=0
SERVE_PID=
LORIS_PIDS=

cleanup() {
  for p in $LORIS_PIDS; do
    kill "$p" 2>/dev/null
    wait "$p" 2>/dev/null
  done
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

# Many readers but one worker and a one-slot queue: once 3+ jobs are in
# flight the daemon must shed load rather than buffer it unboundedly.
"$WBIST" serve --socket "$SOCK" --serve-threads 8 --worker-threads 1 \
  --queue-depth 1 --stall-timeout 500 > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

tries=0
while [ ! -S "$SOCK" ] && [ "$tries" -lt 50 ]; do
  sleep 0.1
  tries=$((tries + 1))
done
[ -S "$SOCK" ] || { fail "daemon did not create $SOCK"; exit 1; }

# Slow-loris peers: two header bytes, then silence. Each pins a reader
# until the stall bound evicts it. Skipped without python3.
LORIS=0
if command -v python3 > /dev/null 2>&1; then
  LORIS=3
  k=0
  while [ "$k" -lt "$LORIS" ]; do
    python3 -c '
import socket, sys, time
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(b"\x00\x00")
time.sleep(60)' "$SOCK" 2>/dev/null &
    LORIS_PIDS="$LORIS_PIDS $!"
    k=$((k + 1))
  done
fi

# Burst of legitimate submits. With one worker and a one-slot queue the
# daemon can hold two; the rest must come back exit 3 / "overloaded".
BURST=12
i=0
PIDS=
while [ "$i" -lt "$BURST" ]; do
  "$WBIST" submit --socket "$SOCK" flow s298 > "$WORK/burst_$i.out" \
    2> "$WORK/burst_$i.err" &
  PIDS="$PIDS $!"
  i=$((i + 1))
done

# Control-plane liveness: a ping answers even while the queue is full and
# readers are being slow-lorised.
"$WBIST" submit --socket "$SOCK" --timeout 30000 ping > "$WORK/ping.txt" 2>&1
[ "$(cat "$WORK/ping.txt")" = "pong" ] || fail "ping failed under load"

OK=0
REJECTED=0
OTHER=0
for p in $PIDS; do
  wait "$p"
  rc=$?
  if [ "$rc" -eq 0 ]; then OK=$((OK + 1))
  elif [ "$rc" -eq 3 ]; then REJECTED=$((REJECTED + 1))
  else OTHER=$((OTHER + 1))
  fi
done
echo "burst: $OK ok, $REJECTED rejected, $OTHER other"
[ "$OK" -ge 1 ] || fail "no legitimate submit completed under load"
[ "$REJECTED" -ge 1 ] || fail "tiny queue produced no overloaded rejections"
[ "$OTHER" -eq 0 ] || fail "$OTHER submit(s) died with unexpected exit codes"
if [ "$REJECTED" -ge 1 ]; then
  grep -l 'overloaded' "$WORK"/burst_*.err > /dev/null \
    || fail "rejected submits did not mention 'overloaded'"
  grep -l 'retry in' "$WORK"/burst_*.err > /dev/null \
    || fail "rejected submits carried no retry hint"
  # The one-line report folds in the queue state the request bounced off:
  # "wbist: overloaded (queue N/M, retry in Pms)".
  cat "$WORK"/burst_*.err \
    | grep -E 'overloaded \(queue [0-9]+/[0-9]+, retry in [0-9]+ms\)' \
      > /dev/null \
    || fail "rejected submits lacked the structured queue context"
fi

# Every load-shedding decision is visible in the metrics job.
"$WBIST" submit --socket "$SOCK" metrics > "$WORK/metrics.txt" 2>&1 \
  || fail "metrics job failed after the burst"
grep -q '"serve.jobs_rejected"' "$WORK/metrics.txt" \
  || fail "metrics missing serve.jobs_rejected"
grep -q '"serve.jobs_rejected": 0' "$WORK/metrics.txt" \
  && fail "serve.jobs_rejected stayed zero despite rejections"
grep -q '"serve.queue_wait_us"' "$WORK/metrics.txt" \
  || fail "metrics missing the serve.queue_wait_us histogram"
if [ "$LORIS" -gt 0 ]; then
  tries=0
  while ! grep -q 'evicting slow client' "$WORK/serve.log" \
      && [ "$tries" -lt 100 ]; do
    sleep 0.1
    tries=$((tries + 1))
  done
  grep -q 'evicting slow client' "$WORK/serve.log" \
    || fail "slow-loris peers were never evicted"
fi

# The observability plane survives the stress: `wbist stats` answers with
# the daemon snapshot (it rides the inline control path, so a saturated
# queue cannot starve it), the Prometheus rendering carries the
# load-shedding counter, and the flight recorder kept the rejections.
"$WBIST" stats --socket "$SOCK" > "$WORK/stats.json" 2>&1 \
  || fail "stats job failed after the burst"
grep -q 'wbist.stats/1' "$WORK/stats.json" \
  || fail "stats response missing the wbist.stats/1 schema"
grep -q '"queue":{' "$WORK/stats.json" \
  || fail "stats response missing the queue block"
"$WBIST" stats --prom --socket "$SOCK" > "$WORK/stats.prom" 2>&1 \
  || fail "stats --prom failed after the burst"
grep -q '^wbist_serve_jobs_rejected_total [1-9]' "$WORK/stats.prom" \
  || fail "Prometheus text missing a nonzero wbist_serve_jobs_rejected_total"
grep -q '^# TYPE wbist_uptime_seconds gauge' "$WORK/stats.prom" \
  || fail "Prometheus text missing the uptime gauge TYPE line"
"$WBIST" stats --flight --socket "$SOCK" > "$WORK/flight.json" 2>&1 \
  || fail "flight job failed after the burst"
grep -q '"outcome":"overloaded"' "$WORK/flight.json" \
  || fail "flight recorder retained no overloaded rejection"

# The daemon is still healthy and shuts down cleanly.
"$WBIST" submit --socket "$SOCK" info s27 > /dev/null 2>&1 \
  || fail "daemon unhealthy after the stress"
"$WBIST" submit --socket "$SOCK" shutdown > /dev/null 2>&1
wait "$SERVE_PID"
rc=$?
SERVE_PID=
[ "$rc" -eq 0 ] || fail "daemon exited $rc after shutdown"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES stress check(s) failed" >&2
  exit 1
fi
echo "all stress checks passed"
