#!/bin/sh
# Integration test for the `wbist serve` daemon and `wbist submit` client:
# start a daemon on a unix socket, fire concurrent clients at it, check the
# responses are bit-identical to the one-shot CLI, and shut it down cleanly.
# Run by ctest as: wbist_serve_test.sh <path-to-wbist-binary>
set -u

WBIST=${1:?usage: wbist_serve_test.sh <wbist-binary>}
WORK=$(mktemp -d)
SOCK="$WORK/d.sock"
FAILURES=0
SERVE_PID=

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

"$WBIST" serve --socket "$SOCK" --serve-threads 4 --stall-timeout 500 \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

# Wait (max ~5s) for the socket to appear.
tries=0
while [ ! -S "$SOCK" ] && [ "$tries" -lt 50 ]; do
  sleep 0.1
  tries=$((tries + 1))
done
[ -S "$SOCK" ] || { fail "daemon did not create $SOCK"; exit 1; }

# Client errors do not require a daemon restart.
"$WBIST" submit --socket "$SOCK" ping > "$WORK/ping.txt" 2>&1
[ "$(cat "$WORK/ping.txt")" = "pong" ] || fail "ping did not answer pong"
"$WBIST" submit --socket "$SOCK" info > /dev/null 2>&1
[ $? -eq 2 ] || fail "submit info without circuit should exit 2"
"$WBIST" submit --socket "$SOCK" info no-such-circuit > /dev/null 2>&1
[ $? -eq 1 ] || fail "unknown circuit over the daemon should exit 1"
"$WBIST" submit --socket "$WORK/absent.sock" ping > /dev/null 2>&1
[ $? -eq 5 ] || fail "submit to a dead socket should exit 5 (unreachable)"
"$WBIST" submit --socket "$SOCK" --deadline-ms 0 ping > /dev/null 2>&1
[ $? -eq 2 ] || fail "--deadline-ms 0 should be a usage error (exit 2)"

# Malformed peers must not wedge the daemon: a slow-loris that stalls
# mid-frame is evicted (connection closed by the daemon), and a frame whose
# payload is not JSON gets a structured exit-2 error — after both, a normal
# submit still answers. Needs a raw-socket speaker; skipped without python3.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$SOCK" > "$WORK/malformed.txt" 2>&1 << 'PYEOF'
import socket, struct, sys

path = sys.argv[1]

# Slow-loris: two bytes of header, then silence. The daemon must hang up
# (recv sees EOF) within its stall bound instead of pinning a reader.
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
s.sendall(b"\x00\x00")
s.settimeout(10)
if s.recv(1) != b"":
    sys.exit("expected the daemon to close a stalled connection")
s.close()

# Garbage JSON in a well-formed frame: a framed error response, exit 2.
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
payload = b"this is not json"
s.sendall(struct.pack(">I", len(payload)) + payload)
s.settimeout(10)
hdr = b""
while len(hdr) < 4:
    chunk = s.recv(4 - len(hdr))
    if not chunk:
        sys.exit("daemon closed instead of answering a garbage payload")
    hdr += chunk
(n,) = struct.unpack(">I", hdr)
body = b""
while len(body) < n:
    chunk = s.recv(n - len(body))
    if not chunk:
        sys.exit("short response frame")
    body += chunk
if b'"exit":2' not in body:
    sys.exit("garbage payload should answer exit 2, got: %r" % body[:200])
s.close()
print("malformed-peer checks passed")
PYEOF
  [ $? -eq 0 ] || { cat "$WORK/malformed.txt" >&2; fail "malformed-peer checks failed"; }
  grep -q 'evicting slow client' "$WORK/serve.log" \
    || fail "daemon did not log the slow-client eviction"
  "$WBIST" submit --socket "$SOCK" ping > "$WORK/ping2.txt" 2>&1
  [ "$(cat "$WORK/ping2.txt")" = "pong" ] \
    || fail "daemon unhealthy after malformed peers"
fi

# 4 concurrent clients, mixed circuits. Every response must be
# byte-identical to the one-shot CLI (after stripping the CLI's
# wall-clock-only lines, which the deterministic daemon never emits).
for c in s27 s298; do
  "$WBIST" info "$c" > "$WORK/cli_info_$c.txt" 2>&1
  "$WBIST" flow "$c" 2>&1 | grep -v '^(.*s)$' > "$WORK/cli_flow_$c.txt"
done
"$WBIST" submit --socket "$SOCK" info s27 > "$WORK/d1.txt" 2>&1 &
P1=$!
"$WBIST" submit --socket "$SOCK" flow s27 > "$WORK/d2.txt" 2>&1 &
P2=$!
"$WBIST" submit --socket "$SOCK" info s298 > "$WORK/d3.txt" 2>&1 &
P3=$!
"$WBIST" submit --socket "$SOCK" flow s298 > "$WORK/d4.txt" 2>&1 &
P4=$!
for p in $P1 $P2 $P3 $P4; do
  wait "$p" || fail "concurrent submit (pid $p) failed"
done
diff "$WORK/d1.txt" "$WORK/cli_info_s27.txt" > /dev/null \
  || fail "daemon info s27 differs from CLI"
diff "$WORK/d2.txt" "$WORK/cli_flow_s27.txt" > /dev/null \
  || fail "daemon flow s27 differs from CLI"
diff "$WORK/d3.txt" "$WORK/cli_info_s298.txt" > /dev/null \
  || fail "daemon info s298 differs from CLI"
diff "$WORK/d4.txt" "$WORK/cli_flow_s298.txt" > /dev/null \
  || fail "daemon flow s298 differs from CLI"

# tgen through the daemon writes the same sequence the CLI writes, and the
# fsim job closes the loop on it.
"$WBIST" tgen s27 "$WORK/cli.seq" > /dev/null 2>&1
"$WBIST" submit --socket "$SOCK" tgen s27 "$WORK/daemon.seq" > /dev/null 2>&1 \
  || fail "submit tgen failed"
diff "$WORK/cli.seq" "$WORK/daemon.seq" > /dev/null \
  || fail "daemon tgen sequence differs from CLI"
"$WBIST" submit --socket "$SOCK" fsim s27 "$WORK/daemon.seq" \
  > "$WORK/fsim.txt" 2>&1 || fail "submit fsim failed"
grep -q '32/32 faults detected' "$WORK/fsim.txt" \
  || fail "daemon fsim did not report full coverage"

# The cache compiled each circuit once; every later request was a hit.
"$WBIST" submit --socket "$SOCK" metrics > "$WORK/metrics.txt" 2>&1
grep -q '"artifact_cache.compiles": 2' "$WORK/metrics.txt" \
  || fail "expected exactly 2 compiles (s27 + s298) in daemon metrics"
grep -q '"artifact_cache.hits"' "$WORK/metrics.txt" \
  || fail "daemon metrics missing cache hit counter"

# Shutdown job: daemon answers, exits 0, and removes its socket file.
"$WBIST" submit --socket "$SOCK" shutdown > "$WORK/shutdown.txt" 2>&1
grep -q 'shutting down' "$WORK/shutdown.txt" || fail "shutdown not confirmed"
wait "$SERVE_PID"
rc=$?
SERVE_PID=
[ "$rc" -eq 0 ] || fail "daemon exited $rc after shutdown job"
[ ! -e "$SOCK" ] || fail "daemon left its socket file behind"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES serve check(s) failed" >&2
  exit 1
fi
echo "all serve checks passed"
