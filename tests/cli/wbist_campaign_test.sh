#!/bin/sh
# Integration test for the sharded `wbist campaign` runner: bit-identity
# with the single-process `wbist fsim`, worker-kill retry, halt/resume
# convergence, and the checkpoint edge cases (torn trailer, schema
# mismatch). Run by ctest as: wbist_campaign_test.sh <path-to-wbist-binary>
set -u

WBIST=${1:?usage: wbist_campaign_test.sh <wbist-binary>}
WORK=$(mktemp -d)
FAILURES=0

cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

cd "$WORK" || exit 1

# A deterministic test sequence via the random generator (no tgen cost).
"$WBIST" campaign s298 --random-cycles 24 --seed 7 --workers 2 \
  --save-seq s298.seq --result-json campaign.json \
  --checkpoint ck.jsonl > campaign.txt 2> campaign.err
[ $? -eq 0 ] || fail "campaign on s298 should exit 0"
[ -s s298.seq ] || fail "--save-seq did not write the sequence"
grep -q "faults detected" campaign.txt \
  || fail "campaign stdout is not the fsim summary line"

# Bit-identity gate: the single-process fsim result must match byte for
# byte, and stdout summaries must be identical too.
"$WBIST" fsim s298 s298.seq --result-json fsim.json > fsim.txt 2> /dev/null \
  || fail "fsim on the saved sequence failed"
cmp -s campaign.json fsim.json \
  || fail "campaign result-json differs from single-process fsim"
head -1 campaign.txt > c1.txt
head -1 fsim.txt > f1.txt
cmp -s c1.txt f1.txt || fail "campaign summary line differs from fsim"

# Re-running with more workers/shards must not change a byte.
"$WBIST" campaign s298 s298.seq --workers 4 --shards 13 \
  --result-json campaign2.json --checkpoint ck2.jsonl > /dev/null 2>&1 \
  || fail "campaign with 4 workers / 13 shards failed"
cmp -s campaign.json campaign2.json \
  || fail "shard count changed the merged result"

# The checkpoint stream: header first, shard records, done trailer.
head -1 ck.jsonl | grep -q '"event":"header"' \
  || fail "checkpoint does not start with a header record"
grep -q '"event":"done"' ck.jsonl \
  || fail "complete campaign has no done record"

# Halt/resume: stop after 3 shards (exit 3), resume converges to the same
# bytes and reports the replayed shards.
"$WBIST" campaign s298 s298.seq --workers 2 --shards 8 --halt-after 3 \
  --checkpoint halt.jsonl > /dev/null 2> halt.err
[ $? -eq 3 ] || fail "--halt-after should exit 3 (incomplete)"
n_shards=$(grep -c '"event":"shard"' halt.jsonl)
[ "$n_shards" -eq 3 ] || fail "halted checkpoint has $n_shards shards, want 3"
"$WBIST" campaign s298 s298.seq --workers 2 --shards 8 --resume \
  --checkpoint halt.jsonl --result-json resumed.json > /dev/null 2> resume.err
[ $? -eq 0 ] || fail "--resume from a halted checkpoint should exit 0"
grep -q "3 resumed" resume.err \
  || fail "resume did not report 3 replayed shards"
"$WBIST" campaign s298 s298.seq --shards 8 --workers 2 \
  --result-json straight8.json --checkpoint s8.jsonl > /dev/null 2>&1
cmp -s resumed.json straight8.json \
  || fail "resumed result differs from an uninterrupted run"

# Torn trailer: chop the last checkpoint line mid-record; resume must skip
# the torn record cleanly and still converge.
"$WBIST" campaign s298 s298.seq --workers 2 --shards 8 --halt-after 4 \
  --checkpoint torn.jsonl > /dev/null 2>&1
size=$(wc -c < torn.jsonl)
dd if=torn.jsonl of=torn_cut.jsonl bs=1 count=$((size - 30)) 2> /dev/null
mv torn_cut.jsonl torn.jsonl
"$WBIST" campaign s298 s298.seq --workers 2 --shards 8 --resume \
  --checkpoint torn.jsonl --result-json torn.json > /dev/null 2> torn.err
[ $? -eq 0 ] || fail "resume from a torn checkpoint should exit 0"
cmp -s torn.json straight8.json \
  || fail "torn-trailer resume result differs from an uninterrupted run"

# Schema mismatch: a future-versioned checkpoint must refuse with exit 2
# and never partially merge.
sed 's/wbist.campaign\/1/wbist.campaign\/99/' halt.jsonl > vnext.jsonl
"$WBIST" campaign s298 s298.seq --workers 2 --shards 8 --resume \
  --checkpoint vnext.jsonl > /dev/null 2> vnext.err
[ $? -eq 2 ] || fail "schema-mismatch resume should exit 2"
grep -qi "schema" vnext.err || fail "schema mismatch not diagnosed on stderr"

# Header mismatch: resuming with a different sequence must refuse (exit 2).
"$WBIST" campaign s298 --random-cycles 24 --seed 8 --resume \
  --checkpoint halt.jsonl > /dev/null 2>&1
[ $? -eq 2 ] || fail "resume with a different sequence should exit 2"

# Live progress: --status-json writes an atomically-replaced snapshot that
# converges (shards_done == shards_total, complete true) even across a
# halt/resume pair, and `wbist top --once` renders it.
"$WBIST" campaign s298 s298.seq --workers 2 --shards 8 --halt-after 3 \
  --status-json status.json --heartbeat-ms 20 \
  --checkpoint st.jsonl > /dev/null 2>&1
[ $? -eq 3 ] || fail "halted status-json campaign should exit 3"
grep -q '"complete":false' status.json \
  || fail "halted snapshot should report complete:false"
grep -q '"shards_done":3' status.json \
  || fail "halted snapshot should report 3 shards done"
"$WBIST" campaign s298 s298.seq --workers 2 --shards 8 --resume \
  --status-json status.json --heartbeat-ms 20 \
  --checkpoint st.jsonl --result-json st.json > /dev/null 2>&1
[ $? -eq 0 ] || fail "resumed status-json campaign should exit 0"
grep -q '"schema":"wbist.campaign.status/1"' status.json \
  || fail "snapshot missing the wbist.campaign.status/1 schema"
grep -q '"complete":true' status.json \
  || fail "resumed snapshot did not converge to complete:true"
grep -q '"shards_done":8' status.json \
  || fail "resumed snapshot did not converge to shards_done 8"
grep -q '"shards_resumed":3' status.json \
  || fail "resumed snapshot should report the 3 replayed shards"
cmp -s st.json straight8.json \
  || fail "status-json observation changed the campaign result"
"$WBIST" top status.json --once > top.txt 2> top.err \
  || fail "wbist top --once on a complete snapshot should exit 0"
grep -q "complete" top.txt || fail "top render missing the complete marker"
grep -q "8/8 (100.0%)" top.txt || fail "top render missing the shard progress"

# Worker traces: each worker writes a Chrome-trace file stamped with the
# campaign id, and trace_summary.py --merge stitches them per process.
SCRIPT_DIR=$(cd "$(dirname "$0")/../.." && pwd)
mkdir -p wtr
"$WBIST" campaign s298 s298.seq --workers 2 --shards 8 \
  --worker-trace-dir wtr --campaign-id ctest-run \
  --result-json traced.json > /dev/null 2>&1 \
  || fail "campaign with --worker-trace-dir failed"
cmp -s traced.json straight8.json \
  || fail "worker tracing changed the campaign result"
n_traces=$(ls wtr/worker-*.trace.json 2> /dev/null | wc -l)
[ "$n_traces" -ge 1 ] || fail "no worker trace files were written"
grep -l '"campaign.shard"' wtr/worker-*.trace.json > /dev/null \
  || fail "worker traces carry no campaign.shard spans"
grep -l 'ctest-run' wtr/worker-*.trace.json > /dev/null \
  || fail "worker traces are not stamped with the campaign id"
if command -v python3 > /dev/null 2>&1; then
  python3 "$SCRIPT_DIR/tools/trace_summary.py" wtr/worker-*.trace.json \
    --merge merged.json > /dev/null 2> merge.err \
    || fail "trace_summary.py --merge failed: $(cat merge.err)"
  grep -q '"process_name"' merged.json \
    || fail "merged trace has no per-worker process_name metadata"
  python3 "$SCRIPT_DIR/tools/check_schema.py" \
    "$SCRIPT_DIR/docs/schemas/wbist.campaign.status.schema.json" \
    status.json > /dev/null 2>&1 \
    || fail "status.json does not validate against its schema"
fi

# Usage errors.
"$WBIST" campaign s298 > /dev/null 2>&1
[ $? -eq 2 ] || fail "campaign without a sequence source should exit 2"
"$WBIST" campaign s298 s298.seq --random-cycles 8 > /dev/null 2>&1
[ $? -eq 2 ] || fail "seq-file plus --random-cycles should exit 2"
"$WBIST" campaign s298 s298.seq --workers 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "--workers 0 should exit 2"
"$WBIST" campaign no-such-circuit s298.seq > /dev/null 2>&1
[ $? -eq 1 ] || fail "unknown circuit should exit 1"

# Worker death: slow the shards down, SIGKILL one worker mid-run, and
# check the campaign retries the lost shard and still produces identical
# bytes. pgrep -P finds the campaign driver's direct children.
if command -v pgrep > /dev/null 2>&1; then
  WBIST_CAMPAIGN_TEST_SHARD_DELAY_MS=300 \
    "$WBIST" campaign s298 s298.seq --workers 2 --shards 8 \
    --checkpoint kill.jsonl --result-json kill.json > /dev/null 2> kill.err &
  CPID=$!
  victim=
  tries=0
  while [ -z "$victim" ] && [ "$tries" -lt 50 ]; do
    sleep 0.1
    victim=$(pgrep -P "$CPID" | head -1)
    tries=$((tries + 1))
  done
  if [ -n "$victim" ]; then
    kill -9 "$victim" 2> /dev/null
    wait "$CPID"
    [ $? -eq 0 ] || fail "campaign did not survive a SIGKILLed worker"
    grep -q "1 deaths" kill.err \
      || fail "worker death not reported: $(cat kill.err)"
    grep -q '"event":"retry"' kill.jsonl \
      || fail "retry record missing after worker death"
    cmp -s kill.json straight8.json \
      || fail "result after worker death differs from a clean run"
  else
    wait "$CPID"
    fail "no campaign worker appeared to kill"
  fi
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "$FAILURES campaign test(s) failed" >&2
  exit 1
fi
echo "all campaign tests passed"
