#!/bin/sh
# Integration test for the `wbist` CLI exit-code contract:
#   0 = success, 1 = runtime failure (bad circuit, unwritable path, ...),
#   2 = usage error (unknown command, missing argument).
# Run by ctest as: wbist_cli_test.sh <path-to-wbist-binary>
set -u

WBIST=${1:?usage: wbist_cli_test.sh <wbist-binary>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

# expect <wanted-exit-code> <label> <arg...>
expect() {
  wanted=$1; label=$2; shift 2
  "$WBIST" "$@" > "$WORK/out.txt" 2> "$WORK/err.txt"
  got=$?
  if [ "$got" -ne "$wanted" ]; then
    echo "FAIL: $label: exit $got, wanted $wanted (wbist $*)" >&2
    sed 's/^/  stderr: /' "$WORK/err.txt" >&2
    FAILURES=$((FAILURES + 1))
  fi
}

# Usage errors -> exit 2.
expect 2 "no arguments"
expect 2 "unknown command" frobnicate
expect 2 "info without circuit" info
expect 2 "tgen without circuit" tgen

# Runtime failures -> exit 1.
expect 1 "unknown circuit name" info no-such-circuit
expect 1 "missing bench path" info "$WORK/does-not-exist.bench"
expect 1 "unwritable output path" emit s27 /nonexistent-dir/out.bench
printf 'INPUT(a)\nb = FOO(a)\n' > "$WORK/bad.bench"
expect 1 "malformed bench file" info "$WORK/bad.bench"

# Every subcommand succeeds on a registry circuit -> exit 0.
expect 0 "list" list
expect 0 "info" info s27
expect 0 "emit" emit s27 "$WORK/s27.bench"
expect 0 "tgen" tgen s27 "$WORK/s27.seq"
expect 0 "flow" flow s27
expect 0 "fsim" fsim s27 "$WORK/s27.seq"
expect 0 "synth" synth s27 "$WORK/s27_gen.bench"
expect 0 "obs" obs s27
expect 2 "fsim without sequence" fsim s27
expect 1 "fsim with missing sequence file" fsim s27 "$WORK/absent.seq"

# Emitted artifacts exist, are non-empty, and the netlists re-parse.
for f in s27.bench s27.seq s27_gen.bench; do
  if [ ! -s "$WORK/$f" ]; then
    echo "FAIL: emitted $f is missing or empty" >&2
    FAILURES=$((FAILURES + 1))
  fi
done
expect 0 "emitted netlist re-parses" info "$WORK/s27.bench"
expect 0 "generator netlist re-parses" info "$WORK/s27_gen.bench"

# A .bench path is accepted anywhere a registry name is.
expect 0 "flow on a bench path" flow "$WORK/s27.bench"

# Observability flags: position-independent, both --flag path and --flag=path
# forms, missing value is a usage error.
expect 2 "trace flag without value" flow s27 --trace-json
expect 2 "provenance flag without value" flow s27 --provenance-jsonl
expect 2 "empty trace path" flow s27 --trace-json=
expect 0 "trace flag after args" flow s27 --trace-json "$WORK/t1.json"
expect 0 "trace flag before subcommand" --trace-json "$WORK/t2.json" flow s27
expect 0 "trace equals form" flow s27 --trace-json="$WORK/t3.json"
expect 0 "provenance flag" flow s27 --provenance-jsonl "$WORK/p1.jsonl"
for f in t1.json t2.json t3.json p1.jsonl; do
  if [ ! -s "$WORK/$f" ]; then
    echo "FAIL: observability artifact $f is missing or empty" >&2
    FAILURES=$((FAILURES + 1))
  fi
done
if ! head -1 "$WORK/p1.jsonl" | grep -q '"event":"header"'; then
  echo "FAIL: provenance file does not start with a header record" >&2
  FAILURES=$((FAILURES + 1))
fi
if ! grep -q '"schema": "wbist.trace/1"' "$WORK/t1.json"; then
  echo "FAIL: trace file missing schema marker" >&2
  FAILURES=$((FAILURES + 1))
fi

# tgen --vcd writes a good-machine waveform; WBIST_OUT_DIR redirects it.
expect 0 "tgen with vcd" tgen s27 "$WORK/s27b.seq" --vcd "$WORK/s27.vcd"
if ! head -c 512 "$WORK/s27.vcd" | grep -q '\$enddefinitions'; then
  echo "FAIL: tgen --vcd did not write a VCD header" >&2
  FAILURES=$((FAILURES + 1))
fi
mkdir -p "$WORK/outdir"
WBIST_OUT_DIR="$WORK/outdir" "$WBIST" tgen s27 "$WORK/s27c.seq" \
  --vcd rel.vcd > "$WORK/out.txt" 2> "$WORK/err.txt"
if [ $? -ne 0 ] || [ ! -s "$WORK/outdir/rel.vcd" ]; then
  echo "FAIL: WBIST_OUT_DIR did not redirect the --vcd artifact" >&2
  FAILURES=$((FAILURES + 1))
fi

# WBIST_OUT_DIR applies to every artifact flag, not just --vcd.
WBIST_OUT_DIR="$WORK/outdir" "$WBIST" flow s27 \
  --metrics-json rel-metrics.json --trace-json rel-trace.json \
  --provenance-jsonl rel-prov.jsonl > "$WORK/out.txt" 2> "$WORK/err.txt"
if [ $? -ne 0 ]; then
  echo "FAIL: flow with WBIST_OUT_DIR observability flags failed" >&2
  FAILURES=$((FAILURES + 1))
fi
for f in rel-metrics.json rel-trace.json rel-prov.jsonl; do
  if [ ! -s "$WORK/outdir/$f" ]; then
    echo "FAIL: WBIST_OUT_DIR did not redirect $f" >&2
    FAILURES=$((FAILURES + 1))
  fi
done
# Absolute paths bypass WBIST_OUT_DIR resolution unchanged.
WBIST_OUT_DIR="$WORK/outdir" "$WBIST" info s27 \
  --metrics-json "$WORK/abs-metrics.json" > "$WORK/out.txt" 2> "$WORK/err.txt"
if [ $? -ne 0 ] || [ ! -s "$WORK/abs-metrics.json" ]; then
  echo "FAIL: absolute --metrics-json path was not honoured" >&2
  FAILURES=$((FAILURES + 1))
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI check(s) failed" >&2
  exit 1
fi
echo "all CLI exit-code checks passed"
