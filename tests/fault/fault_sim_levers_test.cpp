// The four fault-simulation performance levers (cone restriction, activity
// gating, fault dropping with mid-run repacking, locality packing) are pure
// optimizations: each one, alone or combined, must leave detection times AND
// detecting lines bit-identical to the plain walk, on every kernel backend
// and for any thread count. These tests pin that contract on real circuits
// with sequences long enough to cross the 64-cycle segment boundary, so the
// dropping lever's repack path is exercised, plus the trace/option
// observation-point identity check.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/kernel.h"
#include "testutil.h"
#include "util/metrics.h"

namespace wbist::fault {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using sim::TestSequence;

struct LeverCase {
  const char* name;
  FaultSimOptions options;  // levers only; threads overwritten per run
};

std::vector<LeverCase> lever_cases() {
  std::vector<LeverCase> cases;
  const auto add = [&](const char* name, bool cones, bool gating, bool drop,
                       bool pack) {
    LeverCase c;
    c.name = name;
    c.options.cone_restriction = cones;
    c.options.activity_gating = gating;
    c.options.fault_dropping = drop;
    c.options.locality_packing = pack;
    cases.push_back(c);
  };
  add("all-off", false, false, false, false);
  add("cones-only", true, false, false, false);
  add("gating-only", false, true, false, false);
  add("dropping-only", false, false, true, false);
  add("packing-only", false, false, false, true);
  add("all-on", true, true, true, true);
  add("all-but-cones", false, true, true, true);
  add("all-but-gating", true, false, true, true);
  add("all-but-dropping", true, true, false, true);
  add("all-but-packing", true, true, true, false);
  return cases;
}

/// Baseline = every lever off, serial, via the same trace. Everything else
/// must match it exactly (times, lines, count).
void expect_levers_bit_identical(const Netlist& nl, const TestSequence& seq,
                                 std::span<const NodeId> obs = {}) {
  const FaultSet faults = FaultSet::collapsed(nl);
  const std::vector<FaultId> ids = faults.all_ids();

  FaultSimOptions base;
  base.observation_points = obs;
  base.threads = 1;
  base.cone_restriction = false;
  base.activity_gating = false;
  base.fault_dropping = false;
  base.locality_packing = false;

  const FaultSimulator ref(nl, faults, sim::find_kernel("generic-w1"));
  const GoodTrace ref_trace = ref.make_trace(seq, obs);
  const DetectionResult want = ref.run(ref_trace, ids, base);

  for (const sim::Kernel& kernel : sim::kernels()) {
    const FaultSimulator fsim(nl, faults, &kernel);
    const GoodTrace trace = fsim.make_trace(seq, obs);
    for (const LeverCase& c : lever_cases()) {
      for (const unsigned threads : {1u, 3u}) {
        FaultSimOptions opt = c.options;
        opt.observation_points = obs;
        opt.threads = threads;
        const DetectionResult got = fsim.run(trace, ids, opt);
        const std::string label = std::string(kernel.name) + "/" + c.name +
                                  "/threads=" + std::to_string(threads);
        EXPECT_EQ(got.detection_time, want.detection_time) << label;
        EXPECT_EQ(got.detecting_line, want.detecting_line) << label;
        EXPECT_EQ(got.detected_count, want.detected_count) << label;
      }
    }
  }
}

TEST(FaultSimLevers, BitIdenticalOnS27PaperSequence) {
  expect_levers_bit_identical(circuits::s27(), circuits::s27_paper_sequence());
}

TEST(FaultSimLevers, BitIdenticalOnS298AcrossSegmentBoundary) {
  // 150 cycles crosses two 64-cycle segment boundaries, so fault dropping
  // repacks survivors mid-run at least once on this circuit.
  const Netlist nl = circuits::circuit_by_name("s298");
  expect_levers_bit_identical(
      nl, test::random_sequence(150, nl.primary_inputs().size(), 11));
}

TEST(FaultSimLevers, BitIdenticalOnS344WithObservationPoints) {
  const Netlist nl = circuits::circuit_by_name("s344");
  const auto ffs = nl.flip_flops();
  const std::vector<NodeId> obs(ffs.begin(), ffs.begin() + 2);
  expect_levers_bit_identical(
      nl, test::random_sequence(96, nl.primary_inputs().size(), 23), obs);
}

TEST(FaultSimLevers, ConeRestrictionReducesGatesEvaluated) {
  // The all-on run must visibly do less work than the plain walk, and on a
  // circuit where random vectors detect most faults within the first
  // segment, the dropping lever must have repacked survivors at least once.
  const Netlist nl = circuits::circuit_by_name("s344");
  const FaultSet faults = FaultSet::collapsed(nl);
  const FaultSimulator fsim(nl, faults);
  const TestSequence seq =
      test::random_sequence(150, nl.primary_inputs().size(), 11);
  const GoodTrace trace = fsim.make_trace(seq);

  util::MetricsRegistry& reg = util::metrics();
  const auto run_with = [&](bool on) {
    FaultSimOptions opt;
    opt.threads = 1;
    opt.cone_restriction = on;
    opt.activity_gating = on;
    opt.fault_dropping = on;
    opt.locality_packing = on;
    const std::uint64_t before =
        reg.counter("fault_sim.gates_evaluated").value();
    (void)fsim.run(trace, faults.all_ids(), opt);
    return reg.counter("fault_sim.gates_evaluated").value() - before;
  };
  const std::uint64_t repacks0 = reg.counter("fault_sim.repacks").value();
  const std::uint64_t gates_off = run_with(false);
  const std::uint64_t gates_on = run_with(true);
  EXPECT_LT(gates_on, gates_off);
  EXPECT_GT(reg.counter("fault_sim.repacks").value(), repacks0);
}

TEST(FaultSimLevers, GatingSkipsCyclesOfNeverActivatedFaults) {
  // Fault a-sa1 under an all-ones sequence is never activated: the faulty
  // machine tracks the good machine exactly, so after the first cycle the
  // gating lever skips every kernel walk.
  const Netlist nl = test::tiny_circuit();
  const FaultSet faults = FaultSet::uncollapsed(nl);
  const NodeId a = nl.find("a");
  std::vector<FaultId> ids;
  for (const FaultId f : faults.all_ids())
    if (faults[f].node == a && faults[f].pin == kStemPin &&
        faults[f].stuck_at_one)
      ids.push_back(f);
  ASSERT_EQ(ids.size(), 1u);

  TestSequence seq(32, nl.primary_inputs().size());
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < seq.width(); ++i)
      seq.set(u, i, sim::Val3::kOne);

  const FaultSimulator fsim(nl, faults);
  util::MetricsRegistry& reg = util::metrics();
  const std::uint64_t skipped0 =
      reg.counter("fault_sim.cycles_skipped").value();
  FaultSimOptions opt;
  opt.threads = 1;
  const DetectionResult det = fsim.run(seq, ids, opt);
  EXPECT_EQ(det.detected_count, 0u);
  EXPECT_GT(reg.counter("fault_sim.cycles_skipped").value(), skipped0);
}

TEST(FaultSimLevers, DroppingRetiresFullyDetectedGroups) {
  // Simulate only the faults the baseline detects within the first cycles
  // of a long sequence: with dropping on, every group's lanes all detect
  // early and the groups retire long before the sequence ends.
  const Netlist nl = circuits::circuit_by_name("s298");
  const FaultSet faults = FaultSet::collapsed(nl);
  const FaultSimulator fsim(nl, faults);
  const TestSequence seq =
      test::random_sequence(120, nl.primary_inputs().size(), 11);
  const GoodTrace trace = fsim.make_trace(seq);

  FaultSimOptions off;
  off.threads = 1;
  off.fault_dropping = false;
  const DetectionResult base = fsim.run(trace, faults.all_ids(), off);
  std::vector<FaultId> early;
  for (FaultId f = 0; f < faults.size(); ++f)
    if (base.detection_time[f] != DetectionResult::kUndetected &&
        base.detection_time[f] <= 10)
      early.push_back(f);
  ASSERT_GT(early.size(), 0u);

  util::MetricsRegistry& reg = util::metrics();
  const std::uint64_t retired0 =
      reg.counter("fault_sim.groups_retired_early").value();
  FaultSimOptions on;
  on.threads = 1;
  const DetectionResult det = fsim.run(trace, early, on);
  EXPECT_EQ(det.detected_count, early.size());
  EXPECT_GT(reg.counter("fault_sim.groups_retired_early").value(), retired0);
}

TEST(FaultSimLevers, TraceWithDifferentSameSizeObsSetIsRejected) {
  // A trace records which observation points it was built with; run() must
  // reject an options set of the *same size* but different lines — the
  // recorded good values would silently be the wrong lines' otherwise.
  const Netlist nl = circuits::s27();
  const FaultSet faults = FaultSet::collapsed(nl);
  const FaultSimulator fsim(nl, faults);
  const TestSequence seq = circuits::s27_paper_sequence();

  const std::vector<NodeId> built_with{nl.find("G11"), nl.find("G8")};
  const std::vector<NodeId> asked_for{nl.find("G11"), nl.find("G9")};
  const GoodTrace trace = fsim.make_trace(seq, built_with);

  FaultSimOptions mismatched;
  mismatched.observation_points = asked_for;
  EXPECT_THROW(fsim.run(trace, faults.all_ids(), mismatched),
               std::invalid_argument);

  // Same lines in a different order is also a different set as recorded.
  const std::vector<NodeId> reordered{nl.find("G8"), nl.find("G11")};
  FaultSimOptions shuffled;
  shuffled.observation_points = reordered;
  EXPECT_THROW(fsim.run(trace, faults.all_ids(), shuffled),
               std::invalid_argument);

  FaultSimOptions matching;
  matching.observation_points = built_with;
  EXPECT_EQ(fsim.run(trace, faults.all_ids(), matching).detection_time,
            fsim.run(seq, faults.all_ids(), matching).detection_time);
}

}  // namespace
}  // namespace wbist::fault
