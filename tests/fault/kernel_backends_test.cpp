// Cross-backend bit-identity: every evaluation kernel (generic widths and
// any ISA-specific backend compiled in) must produce exactly the same
// detection times, observable lines and final observations. The scalar
// width-1 generic backend is the baseline.
#include <gtest/gtest.h>

#include <vector>

#include "circuits/registry.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/kernel.h"
#include "testutil.h"

namespace wbist::fault {
namespace {

using netlist::Netlist;
using sim::TestSequence;

TEST(KernelRegistry, GenericWidthsAlwaysPresent) {
  ASSERT_FALSE(sim::kernels().empty());
  for (const char* name : {"generic-w1", "generic-w2", "generic-w4"}) {
    const sim::Kernel* k = sim::find_kernel(name);
    ASSERT_NE(k, nullptr) << name;
    EXPECT_STREQ(k->name, name);
  }
  EXPECT_EQ(sim::find_kernel("generic-w1")->words, 1u);
  EXPECT_EQ(sim::find_kernel("generic-w2")->words, 2u);
  EXPECT_EQ(sim::find_kernel("generic-w4")->words, 4u);
  EXPECT_EQ(sim::find_kernel("no-such-backend"), nullptr);
  // The active kernel is one of the listed backends.
  const sim::Kernel& active = sim::active_kernel();
  EXPECT_NE(sim::find_kernel(active.name), nullptr);
}

TEST(KernelBackends, IdenticalDetectionTimes) {
  const Netlist nl = circuits::circuit_by_name("s298");
  const FaultSet faults = FaultSet::collapsed(nl);
  const TestSequence seq =
      test::random_sequence(48, nl.primary_inputs().size(), 21);

  const sim::Kernel* baseline = sim::find_kernel("generic-w1");
  ASSERT_NE(baseline, nullptr);
  const FaultSimulator ref(nl, faults, baseline);
  const auto want = ref.run_all(seq);

  for (const sim::Kernel& k : sim::kernels()) {
    const FaultSimulator fs(nl, faults, &k);
    EXPECT_EQ(fs.kernel().words, k.words);
    for (const unsigned threads : {1u, 3u}) {
      FaultSimOptions opt;
      opt.threads = threads;
      const auto got = fs.run(seq, faults.all_ids(), opt);
      EXPECT_EQ(got.detection_time, want.detection_time)
          << k.name << " threads=" << threads;
      EXPECT_EQ(got.detected_count, want.detected_count) << k.name;
    }
  }
}

TEST(KernelBackends, IdenticalObservableLinesAndFinalObservation) {
  const Netlist nl = circuits::circuit_by_name("s27");
  const FaultSet faults = FaultSet::collapsed(nl);
  const TestSequence seq =
      test::random_sequence(24, nl.primary_inputs().size(), 7);
  const std::vector<FaultId> ids = faults.all_ids();
  std::vector<netlist::NodeId> nodes(nl.primary_outputs().begin(),
                                     nl.primary_outputs().end());
  nodes.insert(nodes.end(), nl.flip_flops().begin(), nl.flip_flops().end());

  const FaultSimulator ref(nl, faults, sim::find_kernel("generic-w1"));
  const auto want_lines = ref.observable_lines(seq, ids, 1);
  const auto want_final = ref.observe_final(seq, ids, nodes, 1);

  for (const sim::Kernel& k : sim::kernels()) {
    const FaultSimulator fs(nl, faults, &k);
    EXPECT_EQ(fs.observable_lines(seq, ids, 1), want_lines) << k.name;
    EXPECT_EQ(fs.observe_final(seq, ids, nodes, 1), want_final) << k.name;
  }
}

TEST(KernelBackends, WideBlocksPackMoreFaultsPerGroup) {
  // A 4-word backend packs up to 256 faults per group: s298's collapsed
  // list must need ceil(n/256) groups, visible through the metrics-free
  // invariant that results still match (packing itself is covered above);
  // here we only check the width plumbing.
  const Netlist nl = circuits::circuit_by_name("s298");
  const FaultSet faults = FaultSet::collapsed(nl);
  const FaultSimulator w4(nl, faults, sim::find_kernel("generic-w4"));
  const FaultSimulator w1(nl, faults, sim::find_kernel("generic-w1"));
  EXPECT_EQ(w4.kernel().words, 4u);
  EXPECT_EQ(w1.kernel().words, 1u);
}

}  // namespace
}  // namespace wbist::fault
