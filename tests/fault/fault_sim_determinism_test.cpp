// Determinism of the multi-threaded fault-group loop: any thread count must
// produce bit-identical results, because groups are independent machines and
// every result lands in an index-keyed slot. These tests pin the guarantee
// for run(), observable_lines() and observe_final(), on the real s27 and a
// synthetic circuit, and are the suite to run under TSan (see README.md).
#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "circuits/synth_gen.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "testutil.h"

namespace wbist::fault {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using sim::TestSequence;

Netlist synthetic_circuit(std::uint64_t seed) {
  circuits::SynthProfile profile;
  profile.name = "determinism_synth";
  profile.n_pi = 6;
  profile.n_po = 4;
  profile.n_ff = 8;
  profile.n_gates = 120;
  profile.seed = seed;
  return circuits::generate_circuit(profile);
}

void expect_identical_runs(const Netlist& nl, const TestSequence& seq) {
  const FaultSet set = FaultSet::uncollapsed(nl);
  FaultSimulator sim(nl, set);
  const auto ids = set.all_ids();

  FaultSimOptions serial;
  serial.threads = 1;
  const DetectionResult baseline = sim.run(seq, ids, serial);

  for (const unsigned threads : {2u, 4u, 7u}) {
    FaultSimOptions opt;
    opt.threads = threads;
    const DetectionResult parallel = sim.run(seq, ids, opt);
    EXPECT_EQ(parallel.detection_time, baseline.detection_time)
        << "threads=" << threads;
    EXPECT_EQ(parallel.detected_count, baseline.detected_count)
        << "threads=" << threads;
  }
}

TEST(FaultSimDeterminism, RunIsThreadCountInvariantOnS27) {
  expect_identical_runs(circuits::s27(), circuits::s27_paper_sequence());
}

TEST(FaultSimDeterminism, RunIsThreadCountInvariantOnSynthetic) {
  const Netlist nl = synthetic_circuit(1234);
  expect_identical_runs(nl, test::random_sequence(48, 6, 77));
}

TEST(FaultSimDeterminism, RunWithObservationPointsMatchesSerial) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence seq = test::random_sequence(16, 4, 5);
  const std::vector<NodeId> obs{nl.find("G11"), nl.find("G8")};

  FaultSimOptions serial;
  serial.threads = 1;
  serial.observation_points = obs;
  const DetectionResult baseline = sim.run(seq, set.all_ids(), serial);

  FaultSimOptions parallel = serial;
  parallel.threads = 4;
  const DetectionResult det = sim.run(seq, set.all_ids(), parallel);
  EXPECT_EQ(det.detection_time, baseline.detection_time);
  EXPECT_EQ(det.detected_count, baseline.detected_count);
}

TEST(FaultSimDeterminism, ObservableLinesAreThreadCountInvariant) {
  for (const auto& [nl, seq] :
       {std::pair{circuits::s27(), circuits::s27_paper_sequence()},
        std::pair{synthetic_circuit(99), test::random_sequence(40, 6, 3)}}) {
    const FaultSet set = FaultSet::uncollapsed(nl);
    FaultSimulator sim(nl, set);
    const auto ids = set.all_ids();
    const auto baseline = sim.observable_lines(seq, ids, /*threads=*/1);
    for (const unsigned threads : {2u, 4u}) {
      const auto lines = sim.observable_lines(seq, ids, threads);
      EXPECT_EQ(lines, baseline) << "threads=" << threads;
    }
  }
}

TEST(FaultSimDeterminism, ObserveFinalIsThreadCountInvariant) {
  const Netlist nl = synthetic_circuit(4321);
  const FaultSet set = FaultSet::uncollapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence seq = test::random_sequence(24, 6, 11);
  const std::vector<NodeId> nodes(nl.primary_outputs().begin(),
                                  nl.primary_outputs().end());
  const auto baseline = sim.observe_final(seq, set.all_ids(), nodes, 1);
  const auto parallel = sim.observe_final(seq, set.all_ids(), nodes, 4);
  EXPECT_EQ(parallel, baseline);
}

TEST(FaultSimDeterminism, TraceRunMatchesSequenceRun) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence seq = circuits::s27_paper_sequence();

  const DetectionResult direct = sim.run(seq, set.all_ids());
  const GoodTrace trace = sim.make_trace(seq);
  const DetectionResult via_trace = sim.run(trace, set.all_ids());
  EXPECT_EQ(via_trace.detection_time, direct.detection_time);
  EXPECT_EQ(via_trace.detected_count, direct.detected_count);

  // A shared trace must support repeated runs over fault subsets.
  const std::vector<FaultId> subset{1, 5, 9};
  const DetectionResult part = sim.run(trace, subset);
  for (std::size_t k = 0; k < subset.size(); ++k)
    EXPECT_EQ(part.detection_time[k], direct.detection_time[subset[k]]);
}

TEST(FaultSimDeterminism, TraceReuseCountsOneGoodSimulation) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence seq = circuits::s27_paper_sequence();

  const std::size_t before = sim.good_sim_runs();
  const GoodTrace trace = sim.make_trace(seq);
  EXPECT_EQ(sim.good_sim_runs(), before + 1);
  (void)sim.run(trace, set.all_ids());
  (void)sim.run(trace, set.all_ids());
  EXPECT_EQ(sim.good_sim_runs(), before + 1);  // runs reuse the trace

  // The sequence-based entry point still simulates the good machine once
  // per call.
  (void)sim.run(seq, set.all_ids());
  EXPECT_EQ(sim.good_sim_runs(), before + 2);
}

TEST(FaultSimDeterminism, TraceObservationPointMismatchThrows) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence seq = circuits::s27_paper_sequence();
  const std::vector<NodeId> obs{nl.find("G11")};

  const GoodTrace plain = sim.make_trace(seq);
  FaultSimOptions with_obs;
  with_obs.observation_points = obs;
  EXPECT_THROW(sim.run(plain, set.all_ids(), with_obs), std::invalid_argument);

  const GoodTrace traced = sim.make_trace(seq, obs);
  EXPECT_THROW(sim.run(traced, set.all_ids()), std::invalid_argument);
  const DetectionResult ok = sim.run(traced, set.all_ids(), with_obs);
  const DetectionResult direct = sim.run(seq, set.all_ids(), with_obs);
  EXPECT_EQ(ok.detection_time, direct.detection_time);
}

}  // namespace
}  // namespace wbist::fault
