#include "fault/transition.h"

#include <gtest/gtest.h>

#include <optional>

#include "circuits/iscas.h"
#include "circuits/synth_gen.h"
#include "testutil.h"

namespace wbist::fault {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using sim::TestSequence;
using sim::Val3;

/// Scalar reference: single transition fault, one value per signal, with
/// the one-cycle-late semantics applied via explicit prev tracking.
std::optional<std::size_t> reference_transition_detect(
    const Netlist& nl, const TransitionFault& f, const TestSequence& seq) {
  const auto eval_with_site = [&](std::vector<Val3>& vals, Val3& prev,
                                  bool faulty, std::span<const Val3> pi,
                                  std::vector<Val3>& state) {
    const auto pis = nl.primary_inputs();
    const auto ffs = nl.flip_flops();
    for (std::size_t i = 0; i < pis.size(); ++i) vals[pis[i]] = pi[i];
    for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = state[i];
    const auto apply = [&](NodeId id) {
      if (!faulty || id != f.node) return;
      const Val3 computed = vals[id];
      // STR: AND(c, p); STF: OR(c, p).
      std::vector<Val3> in{computed, prev};
      vals[id] = sim::eval_gate_scalar(
          f.slow_to_rise ? GateType::kAnd : GateType::kOr, in);
      prev = computed;
    };
    for (const NodeId src : pis) apply(src);
    for (const NodeId src : ffs) apply(src);
    for (const NodeId id : nl.eval_order()) {
      std::vector<Val3> in;
      for (const NodeId fi : nl.node(id).fanin) in.push_back(vals[fi]);
      vals[id] = sim::eval_gate_scalar(nl.node(id).type, in);
      apply(id);
    }
    for (std::size_t i = 0; i < ffs.size(); ++i)
      state[i] = vals[nl.node(ffs[i]).fanin[0]];
  };

  std::vector<Val3> good(nl.node_count(), Val3::kX);
  std::vector<Val3> bad(nl.node_count(), Val3::kX);
  std::vector<Val3> gstate(nl.flip_flops().size(), Val3::kX);
  std::vector<Val3> bstate(nl.flip_flops().size(), Val3::kX);
  Val3 prev_good = Val3::kX;  // unused
  Val3 prev_bad = Val3::kX;

  for (std::size_t u = 0; u < seq.length(); ++u) {
    eval_with_site(good, prev_good, false, seq.row(u), gstate);
    eval_with_site(bad, prev_bad, true, seq.row(u), bstate);
    for (const NodeId po : nl.primary_outputs()) {
      if (good[po] != Val3::kX && bad[po] != Val3::kX && good[po] != bad[po])
        return u;
    }
  }
  return std::nullopt;
}

TEST(TransitionFaults, UniverseSize) {
  const Netlist nl = circuits::s27();
  const TransitionFaultSet set = TransitionFaultSet::all(nl);
  EXPECT_EQ(set.size(), nl.node_count() * 2);
}

TEST(TransitionFaults, SlowToRiseDelaysByOneCycle) {
  // BUF chain: in -> b [PO]. STR on b: output rises one cycle late.
  Netlist nl;
  const NodeId in = nl.add_input("in");
  const NodeId b = nl.add_gate(GateType::kBuf, "b", {in});
  nl.mark_output(b);
  nl.finalize();
  TransitionFaultSet set = TransitionFaultSet::all(nl);
  FaultId str_b = set.size();
  for (FaultId id = 0; id < set.size(); ++id)
    if (set[id].node == b && set[id].slow_to_rise) str_b = id;
  ASSERT_LT(str_b, set.size());

  TransitionFaultSimulator sim(nl, set);
  // Input 0,1: good out = 0,1; faulty out at u=1 is AND(1, prev=0) = 0.
  const auto det =
      sim.run(TestSequence::from_rows({"0", "1"}),
              std::vector<FaultId>{str_b});
  EXPECT_EQ(det.detection_time[0], 1);
  // Input held 1,1: no transition after the X start -> undetected
  // (first cycle is AND(1, X) = X: pessimistic, not a definite diff).
  const auto det2 =
      sim.run(TestSequence::from_rows({"1", "1"}),
              std::vector<FaultId>{str_b});
  EXPECT_FALSE(det2.detected(0));
}

TEST(TransitionFaults, SlowToFallDelaysByOneCycle) {
  Netlist nl;
  const NodeId in = nl.add_input("in");
  const NodeId b = nl.add_gate(GateType::kBuf, "b", {in});
  nl.mark_output(b);
  nl.finalize();
  TransitionFaultSet set = TransitionFaultSet::all(nl);
  FaultId stf_b = set.size();
  for (FaultId id = 0; id < set.size(); ++id)
    if (set[id].node == b && !set[id].slow_to_rise) stf_b = id;
  TransitionFaultSimulator sim(nl, set);
  // 1,0: faulty holds 1 for the falling edge.
  const auto det = sim.run(TestSequence::from_rows({"1", "0"}),
                           std::vector<FaultId>{stf_b});
  EXPECT_EQ(det.detection_time[0], 1);
  // 0,0: nothing to delay.
  const auto det2 = sim.run(TestSequence::from_rows({"0", "0"}),
                            std::vector<FaultId>{stf_b});
  EXPECT_FALSE(det2.detected(0));
}

TEST(TransitionFaults, RecoveryAfterOneCycle) {
  // 0,1,1: the line is late at u=1 but correct at u=2 -> detected only at
  // u=1 (the delayed edge), confirming the one-cycle (not gross-stuck)
  // semantics.
  Netlist nl;
  const NodeId in = nl.add_input("in");
  const NodeId b = nl.add_gate(GateType::kBuf, "b", {in});
  nl.mark_output(b);
  nl.finalize();
  TransitionFaultSet set = TransitionFaultSet::all(nl);
  FaultId str_b = set.size();
  for (FaultId id = 0; id < set.size(); ++id)
    if (set[id].node == b && set[id].slow_to_rise) str_b = id;
  TransitionFaultSimulator sim(nl, set);
  TestSequence seq = TestSequence::from_rows({"0", "1", "1"});
  const auto det = sim.run(seq, std::vector<FaultId>{str_b});
  EXPECT_EQ(det.detection_time[0], 1);
  // Truncate before the edge: undetected.
  seq.truncate(1);
  const auto det2 = sim.run(seq, std::vector<FaultId>{str_b});
  EXPECT_FALSE(det2.detected(0));
}

TEST(TransitionFaults, RequiresTwoPatternExcitation) {
  // A stuck-at test set does not necessarily detect transition faults; a
  // constant input sequence detects none (no edges anywhere).
  const Netlist nl = circuits::s27();
  const TransitionFaultSet set = TransitionFaultSet::all(nl);
  TransitionFaultSimulator sim(nl, set);
  const auto det = sim.run_all(TestSequence::from_rows(
      {"0000", "0000", "0000", "0000", "0000", "0000"}));
  EXPECT_EQ(det.detected_count, 0u);
}

TEST(TransitionFaults, PaperSequenceDetectsMany) {
  const Netlist nl = circuits::s27();
  const TransitionFaultSet set = TransitionFaultSet::all(nl);
  TransitionFaultSimulator sim(nl, set);
  const auto det = sim.run_all(circuits::s27_paper_sequence());
  // The s27 stuck-at sequence toggles everything heavily; a healthy share
  // of the 34 transition faults must fall out.
  EXPECT_GT(det.detected_count, set.size() / 3);
  EXPECT_LT(det.detected_count, set.size());  // but not all: edges needed
}

struct TransRefCase {
  const char* name;
  std::uint64_t seed;
};

class TransitionReference : public testing::TestWithParam<TransRefCase> {};

TEST_P(TransitionReference, MatchesScalarReferenceOnS27) {
  const Netlist nl = circuits::s27();
  const TransitionFaultSet set = TransitionFaultSet::all(nl);
  TransitionFaultSimulator sim(nl, set);
  const TestSequence seq = test::random_sequence(20, 4, GetParam().seed);
  const auto det = sim.run(seq, set.all_ids());
  for (FaultId id = 0; id < set.size(); ++id) {
    const auto expected = reference_transition_detect(nl, set[id], seq);
    const std::int32_t want = expected
                                  ? static_cast<std::int32_t>(*expected)
                                  : DetectionResult::kUndetected;
    EXPECT_EQ(det.detection_time[id], want)
        << transition_fault_name(nl, set[id]);
  }
}

TEST_P(TransitionReference, MatchesScalarReferenceOnSynthetic) {
  circuits::SynthProfile profile;
  profile.name = "trans_synth";
  profile.n_pi = 4;
  profile.n_po = 2;
  profile.n_ff = 3;
  profile.n_gates = 22;
  profile.seed = GetParam().seed;
  const Netlist nl = circuits::generate_circuit(profile);
  const TransitionFaultSet set = TransitionFaultSet::all(nl);
  TransitionFaultSimulator sim(nl, set);
  const TestSequence seq =
      test::random_sequence(14, 4, GetParam().seed + 9);
  const auto det = sim.run(seq, set.all_ids());
  for (FaultId id = 0; id < set.size(); ++id) {
    const auto expected = reference_transition_detect(nl, set[id], seq);
    const std::int32_t want = expected
                                  ? static_cast<std::int32_t>(*expected)
                                  : DetectionResult::kUndetected;
    EXPECT_EQ(det.detection_time[id], want)
        << transition_fault_name(nl, set[id]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TransitionReference,
    testing::Values(TransRefCase{"a", 31}, TransRefCase{"b", 47},
                    TransRefCase{"c", 59}, TransRefCase{"d", 71}),
    [](const testing::TestParamInfo<TransRefCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace wbist::fault
