#include "fault/fault_list.h"

#include <gtest/gtest.h>

#include <numeric>

#include "circuits/iscas.h"
#include "testutil.h"

namespace wbist::fault {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

TEST(FaultList, S27UncollapsedCount) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::uncollapsed(nl);
  // 17 stems x 2 + 9 fanout branches x 2 = 52, the classic s27 number.
  EXPECT_EQ(set.size(), 52u);
}

TEST(FaultList, S27CollapsedCount) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  // The paper's fault universe f0..f31.
  EXPECT_EQ(set.size(), 32u);
}

TEST(FaultList, ClassSizesAccountForEveryFault) {
  const Netlist nl = circuits::s27();
  const FaultSet collapsed = FaultSet::collapsed(nl);
  const FaultSet uncollapsed = FaultSet::uncollapsed(nl);
  std::size_t total = 0;
  for (FaultId id = 0; id < collapsed.size(); ++id)
    total += collapsed.class_size(id);
  EXPECT_EQ(total, uncollapsed.size());
}

TEST(FaultList, UncollapsedClassSizesAreOne) {
  const Netlist nl = test::tiny_circuit();
  const FaultSet set = FaultSet::uncollapsed(nl);
  for (FaultId id = 0; id < set.size(); ++id)
    EXPECT_EQ(set.class_size(id), 1u);
}

TEST(FaultList, BranchFaultsOnlyOnFanoutStems) {
  const Netlist nl = test::tiny_circuit();
  const FaultSet set = FaultSet::uncollapsed(nl);
  // Only input "a" has fanout 2 (feeds n1 and n2).
  std::size_t branch_faults = 0;
  for (const Fault& f : set.faults())
    if (f.pin != kStemPin) {
      ++branch_faults;
      const NodeId driver =
          nl.node(f.node).fanin[static_cast<std::size_t>(f.pin)];
      EXPECT_GT(nl.node(driver).fanout.size(), 1u);
    }
  EXPECT_EQ(branch_faults, 4u);  // two branches x two polarities
}

TEST(FaultList, AndGateCollapsing) {
  // and2: inputs a,b with single fanout. Equivalences:
  //   {a sa0, b sa0, g sa0}; singleton classes: a sa1, b sa1, g sa1.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  const FaultSet set = FaultSet::collapsed(nl);
  EXPECT_EQ(set.size(), 4u);  // 6 stems - 2 merged
  std::size_t triple = 0;
  for (FaultId id = 0; id < set.size(); ++id)
    if (set.class_size(id) == 3) ++triple;
  EXPECT_EQ(triple, 1u);
}

TEST(FaultList, NorGateCollapsing) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kNor, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  // {a sa1, b sa1, g sa0} merge.
  EXPECT_EQ(FaultSet::collapsed(nl).size(), 4u);
}

TEST(FaultList, InverterChainCollapses) {
  // a -> NOT n1 -> NOT n2: all six stem faults collapse into two classes.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId n1 = nl.add_gate(GateType::kNot, "n1", {a});
  const NodeId n2 = nl.add_gate(GateType::kNot, "n2", {n1});
  nl.mark_output(n2);
  nl.finalize();
  EXPECT_EQ(FaultSet::collapsed(nl).size(), 2u);
}

TEST(FaultList, XorGateDoesNotCollapse) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kXor, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  EXPECT_EQ(FaultSet::collapsed(nl).size(), 6u);  // nothing merges
}

TEST(FaultList, DffIsNotCollapsedThrough) {
  // a -> DFF q -> NOT out: the DFF boundary keeps a/q faults distinct.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff("q", a);
  const NodeId out = nl.add_gate(GateType::kNot, "out", {q});
  nl.mark_output(out);
  nl.finalize();
  // Stems: a, q, out = 6 faults; NOT merges q/out pairs (-2).
  EXPECT_EQ(FaultSet::collapsed(nl).size(), 4u);
}

TEST(FaultList, SingleInputAndActsAsBuffer) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a});
  nl.mark_output(g);
  nl.finalize();
  EXPECT_EQ(FaultSet::collapsed(nl).size(), 2u);
}

TEST(FaultList, AllIdsCoversSet) {
  const FaultSet set = FaultSet::collapsed(test::tiny_circuit());
  const auto ids = set.all_ids();
  EXPECT_EQ(ids.size(), set.size());
  for (std::size_t k = 0; k < ids.size(); ++k) EXPECT_EQ(ids[k], k);
}

TEST(FaultList, FaultNames) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::uncollapsed(nl);
  bool saw_stem = false, saw_branch = false;
  for (const Fault& f : set.faults()) {
    const std::string name = fault_name(nl, f);
    if (f.pin == kStemPin && name.find("<-") == std::string::npos)
      saw_stem = true;
    if (f.pin != kStemPin && name.find("<-") != std::string::npos)
      saw_branch = true;
  }
  EXPECT_TRUE(saw_stem);
  EXPECT_TRUE(saw_branch);
}

TEST(FaultList, RequiresFinalizedNetlist) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(FaultSet::collapsed(nl), std::invalid_argument);
  EXPECT_THROW(FaultSet::uncollapsed(nl), std::invalid_argument);
}

TEST(FaultList, Deterministic) {
  const Netlist nl = circuits::s27();
  const FaultSet a = FaultSet::collapsed(nl);
  const FaultSet b = FaultSet::collapsed(nl);
  ASSERT_EQ(a.size(), b.size());
  for (FaultId id = 0; id < a.size(); ++id) EXPECT_EQ(a[id], b[id]);
}

}  // namespace
}  // namespace wbist::fault
