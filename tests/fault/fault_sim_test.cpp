#include "fault/fault_sim.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "circuits/synth_gen.h"
#include "fault/fault_list.h"
#include "testutil.h"

namespace wbist::fault {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using sim::TestSequence;
using sim::Val3;

TEST(FaultSim, DetectsStuckOutput) {
  const Netlist nl = test::tiny_circuit();
  const FaultSet set = FaultSet::uncollapsed(nl);
  FaultSimulator sim(nl, set);

  // Find "out s-a-0". Driving a stable state makes good out = 1:
  // a=0,b=0 -> ff becomes 0; then XOR(0,0)=0, NOT -> 1.
  FaultId target = set.size();
  for (FaultId id = 0; id < set.size(); ++id)
    if (fault_name(nl, set[id]) == "out s-a-0") target = id;
  ASSERT_LT(target, set.size());

  const TestSequence seq = TestSequence::from_rows({"00", "00", "00"});
  const auto det = sim.run(seq, std::vector<FaultId>{target});
  // Good PO at u=0 is X (ff unknown); from u=1 it is 1, faulty is 0.
  EXPECT_EQ(det.detection_time[0], 1);
}

TEST(FaultSim, UndetectedWhenGoodIsX) {
  const Netlist nl = test::tiny_circuit();
  const FaultSet set = FaultSet::uncollapsed(nl);
  FaultSimulator sim(nl, set);
  // One vector only: the PO is X in the good machine, nothing may be
  // declared detected under the pessimistic criterion.
  const TestSequence seq = TestSequence::from_rows({"11"});
  const auto det = sim.run_all(seq);
  EXPECT_EQ(det.detected_count, 0u);
}

TEST(FaultSim, DetectionTimesAreFirstOccurrence) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence T = circuits::s27_paper_sequence();
  const auto det = sim.run_all(T);
  // Re-simulate truncated prefixes: a fault detected at time u must be
  // undetected by the prefix of length u and detected by the prefix u+1.
  for (FaultId id = 0; id < set.size(); ++id) {
    const std::int32_t u = det.detection_time[id];
    if (u < 0) continue;
    TestSequence prefix = T;
    prefix.truncate(static_cast<std::size_t>(u));
    const auto before = sim.run(prefix, std::vector<FaultId>{id});
    EXPECT_EQ(before.detection_time[0], DetectionResult::kUndetected);
    TestSequence upto = T;
    upto.truncate(static_cast<std::size_t>(u) + 1);
    const auto after = sim.run(upto, std::vector<FaultId>{id});
    EXPECT_EQ(after.detection_time[0], u);
  }
}

TEST(FaultSim, SubsetRunMatchesFullRun) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence T = circuits::s27_paper_sequence();
  const auto full = sim.run_all(T);
  // Any subset must yield identical per-fault times (groups are
  // independent machines).
  const std::vector<FaultId> subset{3, 7, 11, 30};
  const auto part = sim.run(T, subset);
  for (std::size_t k = 0; k < subset.size(); ++k)
    EXPECT_EQ(part.detection_time[k], full.detection_time[subset[k]]);
}

TEST(FaultSim, MaxTimeUnitsLimitsSimulation) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence T = circuits::s27_paper_sequence();
  FaultSimOptions opt;
  opt.max_time_units = 2;
  const auto det = sim.run_all(T, opt);
  for (FaultId id = 0; id < set.size(); ++id)
    if (det.detection_time[id] >= 0) {
      EXPECT_LT(det.detection_time[id], 2);
    }
}

TEST(FaultSim, EmptyInputsAreSafe) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const auto det = sim.run(TestSequence{}, set.all_ids());
  EXPECT_EQ(det.detected_count, 0u);
  const auto det2 =
      sim.run(circuits::s27_paper_sequence(), std::vector<FaultId>{});
  EXPECT_TRUE(det2.detection_time.empty());
}

TEST(FaultSim, WidthMismatchThrows) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  EXPECT_THROW(sim.run(TestSequence::from_rows({"01"}), set.all_ids()),
               std::invalid_argument);
}

TEST(FaultSim, MalformedTraceThrowsInsteadOfUB) {
  // A hand-built trace claiming more observation points than it has observed
  // lines must be rejected up front, not used to form an out-of-range
  // iterator during validation.
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  GoodTrace trace = sim.make_trace(circuits::s27_paper_sequence());
  trace.n_observation_points = trace.observed.size() + 7;
  EXPECT_THROW(sim.run(trace, set.all_ids()), std::invalid_argument);
}

TEST(FaultSim, ObservationPointExposesHiddenFault) {
  // Fault on n1 (the DFF's D cone): masked at the PO by vector choice, but
  // directly visible when n1 itself is observed.
  const Netlist nl = test::tiny_circuit();
  const FaultSet set = FaultSet::uncollapsed(nl);
  FaultSimulator sim(nl, set);

  FaultId n1_sa1 = set.size();
  for (FaultId id = 0; id < set.size(); ++id)
    if (fault_name(nl, set[id]) == "n1 s-a-1") n1_sa1 = id;
  ASSERT_LT(n1_sa1, set.size());

  // a=1,b=0 repeatedly: good n1 = 0. Good ff stays 0 after the first latch,
  // faulty ff stays 1, so the fault IS detectable at the PO from u=1. Use a
  // single vector so the PO never sees it, then check the OP does.
  const TestSequence one = TestSequence::from_rows({"10"});
  const auto base = sim.run(one, std::vector<FaultId>{n1_sa1});
  EXPECT_EQ(base.detection_time[0], DetectionResult::kUndetected);

  const std::vector<NodeId> obs{nl.find("n1")};
  FaultSimOptions opt;
  opt.observation_points = obs;
  const auto with_op = sim.run(one, std::vector<FaultId>{n1_sa1}, opt);
  EXPECT_EQ(with_op.detection_time[0], 0);
}

TEST(FaultSim, ObservableLinesContainDetectingPo) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence T = circuits::s27_paper_sequence();
  const auto det = sim.run_all(T);
  const auto ids = set.all_ids();
  const auto lines = sim.observable_lines(T, ids);
  const NodeId po = nl.primary_outputs()[0];
  for (FaultId id = 0; id < set.size(); ++id) {
    if (det.detection_time[id] < 0) continue;
    // A fault detected at the PO must list the PO among observable lines.
    EXPECT_TRUE(std::binary_search(lines[id].begin(), lines[id].end(), po))
        << fault_name(nl, set[id]);
  }
}

TEST(FaultSim, ObservableLinesActuallyDetect) {
  // Property: for every reported line, re-running with that line as an
  // observation point detects the fault.
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence T = test::random_sequence(12, 4, 99);
  const auto ids = set.all_ids();
  const auto lines = sim.observable_lines(T, ids);
  for (FaultId id = 0; id < set.size(); ++id) {
    for (const NodeId line : lines[id]) {
      const std::vector<NodeId> obs{line};
      FaultSimOptions opt;
      opt.observation_points = obs;
      const auto det = sim.run(T, std::vector<FaultId>{id}, opt);
      EXPECT_TRUE(det.detected(0))
          << fault_name(nl, set[id]) << " via " << nl.node(line).name;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-validation against the scalar reference simulator.
// ---------------------------------------------------------------------------

struct RefCase {
  const char* name;
  std::uint64_t seed;
};

class FaultSimReference : public testing::TestWithParam<RefCase> {};

TEST_P(FaultSimReference, MatchesScalarReferenceOnS27) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::uncollapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence seq = test::random_sequence(24, 4, GetParam().seed);
  const auto det = sim.run(seq, set.all_ids());
  for (FaultId id = 0; id < set.size(); ++id) {
    const auto expected = test::reference_detect(nl, set[id], seq);
    if (expected.has_value())
      EXPECT_EQ(det.detection_time[id],
                static_cast<std::int32_t>(*expected))
          << fault_name(nl, set[id]);
    else
      EXPECT_EQ(det.detection_time[id], DetectionResult::kUndetected)
          << fault_name(nl, set[id]);
  }
}

TEST_P(FaultSimReference, MatchesScalarReferenceOnSynthetic) {
  circuits::SynthProfile profile;
  profile.name = "ref_synth";
  profile.n_pi = 5;
  profile.n_po = 3;
  profile.n_ff = 4;
  profile.n_gates = 30;
  profile.seed = GetParam().seed;
  const Netlist nl = circuits::generate_circuit(profile);
  const FaultSet set = FaultSet::uncollapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence seq = test::random_sequence(16, 5, GetParam().seed + 1);
  const auto det = sim.run(seq, set.all_ids());
  for (FaultId id = 0; id < set.size(); ++id) {
    const auto expected = test::reference_detect(nl, set[id], seq);
    const std::int32_t want =
        expected ? static_cast<std::int32_t>(*expected)
                 : DetectionResult::kUndetected;
    EXPECT_EQ(det.detection_time[id], want) << fault_name(nl, set[id]);
  }
}

TEST_P(FaultSimReference, ObservationPointsMatchReference) {
  const Netlist nl = circuits::s27();
  const FaultSet set = FaultSet::uncollapsed(nl);
  FaultSimulator sim(nl, set);
  const TestSequence seq = test::random_sequence(10, 4, GetParam().seed);
  const std::vector<NodeId> obs{nl.find("G11"), nl.find("G8")};
  FaultSimOptions opt;
  opt.observation_points = obs;
  const auto det = sim.run(seq, set.all_ids(), opt);
  for (FaultId id = 0; id < set.size(); ++id) {
    const auto expected = test::reference_detect(nl, set[id], seq, obs);
    const std::int32_t want =
        expected ? static_cast<std::int32_t>(*expected)
                 : DetectionResult::kUndetected;
    EXPECT_EQ(det.detection_time[id], want) << fault_name(nl, set[id]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FaultSimReference,
    testing::Values(RefCase{"s1", 101}, RefCase{"s2", 202},
                    RefCase{"s3", 303}, RefCase{"s4", 404},
                    RefCase{"s5", 505}, RefCase{"s6", 606}),
    [](const testing::TestParamInfo<RefCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace wbist::fault
