#include "sim/good_sim.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "testutil.h"

namespace wbist::sim {
namespace {

TEST(GoodSim, StartsAllX) {
  const netlist::Netlist nl = test::tiny_circuit();
  GoodSimulator sim(nl);
  // XOR(a, ff) with ff = X must yield X at the PO for any a.
  sim.step(std::vector<Val3>{Val3::kOne, Val3::kOne});
  EXPECT_EQ(sim.outputs()[0], Val3::kX);
}

TEST(GoodSim, StatePropagatesAcrossCycles) {
  const netlist::Netlist nl = test::tiny_circuit();
  GoodSimulator sim(nl);
  // Cycle 0: a=1,b=1 -> n1=1 latched into ff.
  sim.step(std::vector<Val3>{Val3::kOne, Val3::kOne});
  EXPECT_EQ(sim.state()[0], Val3::kOne);
  // Cycle 1: a=0 -> n2 = XOR(0, 1) = 1, out = 0.
  sim.step(std::vector<Val3>{Val3::kZero, Val3::kZero});
  EXPECT_EQ(sim.outputs()[0], Val3::kZero);
  // ff now latched AND(0,0) = 0; cycle 2: a=0 -> out = NOT(XOR(0,0)) = 1.
  sim.step(std::vector<Val3>{Val3::kZero, Val3::kOne});
  EXPECT_EQ(sim.outputs()[0], Val3::kOne);
}

TEST(GoodSim, ResetReturnsToX) {
  const netlist::Netlist nl = test::tiny_circuit();
  GoodSimulator sim(nl);
  sim.step(std::vector<Val3>{Val3::kOne, Val3::kOne});
  sim.reset();
  EXPECT_EQ(sim.state()[0], Val3::kX);
  sim.step(std::vector<Val3>{Val3::kOne, Val3::kOne});
  EXPECT_EQ(sim.outputs()[0], Val3::kX);
}

TEST(GoodSim, WidthMismatchThrows) {
  const netlist::Netlist nl = test::tiny_circuit();
  GoodSimulator sim(nl);
  EXPECT_THROW(sim.step(std::vector<Val3>{Val3::kOne}),
               std::invalid_argument);
}

TEST(GoodSim, UnfinalizedNetlistRejected) {
  netlist::Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(GoodSimulator{nl}, std::invalid_argument);
}

// Hand-traced values of s27 under the paper's Table-1 sequence (see the
// paper's Section 2 and the circuit structure).
TEST(GoodSim, S27HandTrace) {
  const netlist::Netlist nl = circuits::s27();
  GoodSimulator sim(nl);
  const TestSequence T = circuits::s27_paper_sequence();

  // u = 0: inputs 0111. G14=NOT(0)=1; G12=NOR(1,X)=0; G8=AND(1,X)=X;
  // G16=OR(1,X)=1; G10=NOR(1,X)=0.
  sim.step(T.row(0));
  EXPECT_EQ(sim.value(nl.find("G14")), Val3::kOne);
  EXPECT_EQ(sim.value(nl.find("G12")), Val3::kZero);
  EXPECT_EQ(sim.value(nl.find("G8")), Val3::kX);
  EXPECT_EQ(sim.value(nl.find("G16")), Val3::kOne);
  EXPECT_EQ(sim.value(nl.find("G10")), Val3::kZero);

  // u = 1: inputs 1001. State G5=0 (from G10), G7 = G13 = NOR(G2=1, G12)=0.
  // G14=0; G12=NOR(0, 0)=1; G15=OR(1,0)=1; G16=OR(1,0)=1; G9=NAND(1,1)=0;
  // G11=NOR(0,0)=1; PO G17=NOT(1)=0.
  sim.step(T.row(1));
  EXPECT_EQ(sim.value(nl.find("G5")), Val3::kZero);
  EXPECT_EQ(sim.value(nl.find("G7")), Val3::kZero);
  EXPECT_EQ(sim.value(nl.find("G12")), Val3::kOne);
  EXPECT_EQ(sim.value(nl.find("G9")), Val3::kZero);
  EXPECT_EQ(sim.value(nl.find("G11")), Val3::kOne);
  EXPECT_EQ(sim.outputs()[0], Val3::kZero);
}

TEST(GoodSim, RunCollectsAllResponses) {
  const netlist::Netlist nl = circuits::s27();
  GoodSimulator sim(nl);
  const TestSequence T = circuits::s27_paper_sequence();
  const auto responses = sim.run(T);
  ASSERT_EQ(responses.size(), T.length());
  for (const auto& r : responses) EXPECT_EQ(r.size(), 1u);
  // run() resets first: responses must be reproducible.
  const auto again = sim.run(T);
  EXPECT_EQ(responses, again);
}

TEST(GoodSim, RawValuesAreBroadcast) {
  const netlist::Netlist nl = test::tiny_circuit();
  GoodSimulator sim(nl);
  sim.step(std::vector<Val3>{Val3::kOne, Val3::kZero});
  for (const Word3& w : sim.raw_values()) {
    // Broadcast invariant: every lane identical.
    EXPECT_TRUE(w.one == 0 || w.one == kAllOnes);
    EXPECT_TRUE(w.zero == 0 || w.zero == kAllOnes);
  }
}

}  // namespace
}  // namespace wbist::sim
