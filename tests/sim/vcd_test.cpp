#include "sim/vcd.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "circuits/iscas.h"
#include "testutil.h"

namespace wbist::sim {
namespace {

std::string run_and_read(const netlist::Netlist& nl, const TestSequence& seq,
                         std::vector<netlist::NodeId> watch = {}) {
  const std::string path = testing::TempDir() + "/wbist_trace.vcd";
  {
    GoodSimulator sim(nl);
    VcdWriter vcd(path, nl, std::move(watch));
    for (std::size_t u = 0; u < seq.length(); ++u) {
      sim.step(seq.row(u));
      vcd.sample(sim);
    }
  }
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Vcd, HeaderAndTimestamps) {
  const auto nl = circuits::s27();
  const std::string vcd = run_and_read(nl, circuits::s27_paper_sequence());
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! G0 $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#9"), std::string::npos);
}

TEST(Vcd, DumpsXForUnknowns) {
  const auto nl = test::tiny_circuit();
  const std::string vcd =
      run_and_read(nl, TestSequence::from_rows({"11"}));
  // The flip-flop is X during the first cycle.
  EXPECT_NE(vcd.find("x"), std::string::npos);
}

TEST(Vcd, OnlyChangesAfterFirstSample) {
  // A constant input signal must appear exactly once in the dump.
  const auto nl = circuits::s27();
  const std::vector<netlist::NodeId> watch{nl.find("G3")};
  const std::string vcd = run_and_read(
      nl, TestSequence::from_rows({"0011", "0011", "0011"}), watch);
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = vcd.find("\n1!", pos)) != std::string::npos;
       ++pos)
    ++count;
  EXPECT_EQ(count, 1u);
}

#ifdef WBIST_TEST_DATA_DIR
// Byte-exact golden dump of the s27 good machine under the paper's 10-vector
// sequence. VcdWriter output is fully deterministic (no timestamps in the
// header), so any diff is a real format or simulation change. Re-bless with:
//   WBIST_BLESS_GOLDEN=1 ./sim_tests --gtest_filter=Vcd.GoldenS27GoodMachine
TEST(Vcd, GoldenS27GoodMachine) {
  const auto nl = circuits::s27();
  const std::string vcd = run_and_read(nl, circuits::s27_paper_sequence());
  const std::string golden_path =
      std::string(WBIST_TEST_DATA_DIR) + "/s27_good.vcd";
  if (std::getenv("WBIST_BLESS_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << vcd;
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    GTEST_SKIP() << "blessed " << golden_path;
  }
  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "golden file missing: " << golden_path;
  std::ostringstream ss;
  ss << golden.rdbuf();
  EXPECT_EQ(vcd, ss.str());
}
#endif

TEST(Vcd, SampleCountTracksTime) {
  const auto nl = circuits::s27();
  const std::string path = testing::TempDir() + "/wbist_trace2.vcd";
  GoodSimulator sim(nl);
  VcdWriter vcd(path, nl);
  const auto seq = circuits::s27_paper_sequence();
  for (std::size_t u = 0; u < seq.length(); ++u) {
    sim.step(seq.row(u));
    vcd.sample(sim);
  }
  EXPECT_EQ(vcd.samples(), seq.length());
}

}  // namespace
}  // namespace wbist::sim
