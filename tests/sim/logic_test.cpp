#include "sim/logic.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace wbist::sim {
namespace {

using netlist::GateType;

constexpr Val3 kVals[] = {Val3::kZero, Val3::kOne, Val3::kX};

Val3 ref_and(Val3 a, Val3 b) {
  if (a == Val3::kZero || b == Val3::kZero) return Val3::kZero;
  if (a == Val3::kOne && b == Val3::kOne) return Val3::kOne;
  return Val3::kX;
}
Val3 ref_not(Val3 a) {
  if (a == Val3::kX) return Val3::kX;
  return a == Val3::kZero ? Val3::kOne : Val3::kZero;
}
Val3 ref_or(Val3 a, Val3 b) { return ref_not(ref_and(ref_not(a), ref_not(b))); }
Val3 ref_xor(Val3 a, Val3 b) {
  if (a == Val3::kX || b == Val3::kX) return Val3::kX;
  return a == b ? Val3::kZero : Val3::kOne;
}

TEST(Logic, BroadcastAndLane) {
  for (Val3 v : kVals) {
    const Word3 w = broadcast(v);
    for (unsigned k : {0u, 1u, 31u, 63u}) EXPECT_EQ(lane(w, k), v);
  }
}

TEST(Logic, BinaryLanes) {
  EXPECT_EQ(binary_lanes(broadcast(Val3::kZero)), kAllOnes);
  EXPECT_EQ(binary_lanes(broadcast(Val3::kOne)), kAllOnes);
  EXPECT_EQ(binary_lanes(broadcast(Val3::kX)), 0u);
}

TEST(Logic, TwoInputTruthTables) {
  for (Val3 a : kVals) {
    for (Val3 b : kVals) {
      const Word3 wa = broadcast(a);
      const Word3 wb = broadcast(b);
      EXPECT_EQ(lane(and3(wa, wb), 0), ref_and(a, b)) << to_char(a) << to_char(b);
      EXPECT_EQ(lane(or3(wa, wb), 0), ref_or(a, b)) << to_char(a) << to_char(b);
      EXPECT_EQ(lane(xor3(wa, wb), 0), ref_xor(a, b)) << to_char(a) << to_char(b);
    }
  }
}

TEST(Logic, NotTruthTable) {
  for (Val3 a : kVals) EXPECT_EQ(lane(not3(broadcast(a)), 0), ref_not(a));
}

TEST(Logic, GateEvalMatchesComposition) {
  for (Val3 a : kVals) {
    for (Val3 b : kVals) {
      for (Val3 c : kVals) {
        const std::vector<Val3> in{a, b, c};
        EXPECT_EQ(eval_gate_scalar(GateType::kAnd, in),
                  ref_and(ref_and(a, b), c));
        EXPECT_EQ(eval_gate_scalar(GateType::kNand, in),
                  ref_not(ref_and(ref_and(a, b), c)));
        EXPECT_EQ(eval_gate_scalar(GateType::kOr, in),
                  ref_or(ref_or(a, b), c));
        EXPECT_EQ(eval_gate_scalar(GateType::kNor, in),
                  ref_not(ref_or(ref_or(a, b), c)));
        EXPECT_EQ(eval_gate_scalar(GateType::kXor, in),
                  ref_xor(ref_xor(a, b), c));
        EXPECT_EQ(eval_gate_scalar(GateType::kXnor, in),
                  ref_not(ref_xor(ref_xor(a, b), c)));
      }
    }
  }
}

TEST(Logic, BufAndNotUnary) {
  for (Val3 a : kVals) {
    EXPECT_EQ(eval_gate_scalar(GateType::kBuf, {{a}}), a);
    EXPECT_EQ(eval_gate_scalar(GateType::kNot, {{a}}), ref_not(a));
  }
}

TEST(Logic, ForceSetsLanes) {
  Word3 w = broadcast(Val3::kX);
  w = force(w, 0b1010, true);
  w = force(w, 0b0101, false);
  EXPECT_EQ(lane(w, 0), Val3::kZero);
  EXPECT_EQ(lane(w, 1), Val3::kOne);
  EXPECT_EQ(lane(w, 2), Val3::kZero);
  EXPECT_EQ(lane(w, 3), Val3::kOne);
  EXPECT_EQ(lane(w, 4), Val3::kX);  // untouched
}

TEST(Logic, ForceOverridesPriorValue) {
  Word3 w = broadcast(Val3::kOne);
  w = force(w, 1, false);
  EXPECT_EQ(lane(w, 0), Val3::kZero);
  EXPECT_EQ(lane(w, 1), Val3::kOne);
}

TEST(Logic, ValCharRoundTrip) {
  EXPECT_EQ(val3_from_char('0'), Val3::kZero);
  EXPECT_EQ(val3_from_char('1'), Val3::kOne);
  EXPECT_EQ(val3_from_char('x'), Val3::kX);
  EXPECT_EQ(val3_from_char('X'), Val3::kX);
  EXPECT_EQ(val3_from_char('-'), Val3::kX);
  for (Val3 v : kVals) EXPECT_EQ(val3_from_char(to_char(v)), v);
}

/// Property: per-lane independence. Random lane patterns through the word
/// ops must equal the scalar op applied lane by lane.
class LogicLaneProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(LogicLaneProperty, WordOpsAreLanewise) {
  util::Rng rng(GetParam());
  const auto random_word = [&rng] {
    Word3 w;
    w.one = rng.next_u64();
    w.zero = rng.next_u64() | ~w.one;  // avoid the illegal (0,0) encoding
    return w;
  };
  for (int iter = 0; iter < 50; ++iter) {
    const Word3 a = random_word();
    const Word3 b = random_word();
    const Word3 r_and = and3(a, b);
    const Word3 r_or = or3(a, b);
    const Word3 r_xor = xor3(a, b);
    const Word3 r_not = not3(a);
    for (unsigned k = 0; k < 64; ++k) {
      EXPECT_EQ(lane(r_and, k), ref_and(lane(a, k), lane(b, k)));
      EXPECT_EQ(lane(r_or, k), ref_or(lane(a, k), lane(b, k)));
      EXPECT_EQ(lane(r_xor, k), ref_xor(lane(a, k), lane(b, k)));
      EXPECT_EQ(lane(r_not, k), ref_not(lane(a, k)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogicLaneProperty,
                         testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace wbist::sim
