#include "sim/word_block.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/logic.h"
#include "util/rng.h"

namespace wbist::sim {
namespace {

using netlist::GateType;

/// A random word whose lanes are valid three-valued encodings (never the
/// forbidden one=0/zero=0 state).
Word3 random_word3(util::Rng& rng) {
  const std::uint64_t one = rng.next_u64();
  const std::uint64_t x_lanes = rng.next_u64();
  return {one | x_lanes, ~one | x_lanes};
}

template <unsigned N>
Word3Block<N> random_block(util::Rng& rng) {
  Word3Block<N> b;
  for (unsigned k = 0; k < N; ++k) {
    const Word3 w = random_word3(rng);
    b.one[k] = w.one;
    b.zero[k] = w.zero;
  }
  return b;
}

template <unsigned N>
Word3 word_of(const Word3Block<N>& b, unsigned k) {
  return {b.one[k], b.zero[k]};
}

/// Every block operation must equal the scalar Word3 operation applied to
/// each 64-lane word independently (lanes never interact).
template <unsigned N>
void check_ops_match_scalar(std::uint64_t seed) {
  util::Rng rng(seed);
  for (int rep = 0; rep < 50; ++rep) {
    const Word3Block<N> a = random_block<N>(rng);
    const Word3Block<N> b = random_block<N>(rng);
    const Word3Block<N> r_and = and3(a, b);
    const Word3Block<N> r_or = or3(a, b);
    const Word3Block<N> r_not = not3(a);
    const Word3Block<N> r_xor = xor3(a, b);
    for (unsigned k = 0; k < N; ++k) {
      EXPECT_EQ(word_of(r_and, k), and3(word_of(a, k), word_of(b, k)));
      EXPECT_EQ(word_of(r_or, k), or3(word_of(a, k), word_of(b, k)));
      EXPECT_EQ(word_of(r_not, k), not3(word_of(a, k)));
      EXPECT_EQ(word_of(r_xor, k), xor3(word_of(a, k), word_of(b, k)));
    }
  }
}

TEST(Word3Block, OpsMatchScalarPerWord) {
  check_ops_match_scalar<1>(11);
  check_ops_match_scalar<2>(22);
  check_ops_match_scalar<4>(33);
}

TEST(Word3Block, WidthOneMatchesWord3Layout) {
  // A Word3Block<1> is layout-identical to Word3: one word then zero word.
  static_assert(sizeof(Word3Block<1>) == sizeof(Word3));
  static_assert(sizeof(Word3Block<4>) == 8 * sizeof(std::uint64_t));
  util::Rng rng(5);
  const Word3 w = random_word3(rng);
  const Word3Block<1> b = splat_block<1>(w);
  for (unsigned l = 0; l < 64; ++l) EXPECT_EQ(lane(b, l), lane(w, l));
}

TEST(Word3Block, BroadcastSplatAndLaneMapping) {
  for (const Val3 v : {Val3::kZero, Val3::kOne, Val3::kX}) {
    const Word3Block<4> b = broadcast_block<4>(v);
    for (unsigned l = 0; l < 256; l += 17) EXPECT_EQ(lane(b, l), v);
  }
  util::Rng rng(9);
  const Word3 w = random_word3(rng);
  const Word3Block<2> s = splat_block<2>(w);
  for (unsigned l = 0; l < 128; ++l) EXPECT_EQ(lane(s, l), lane(w, l % 64));
}

TEST(Word3Block, ForceTouchesOnlySelectedLanes) {
  util::Rng rng(13);
  const Word3Block<4> b = random_block<4>(rng);
  const unsigned word = 2;
  const std::uint64_t mask = 0xF0F0F0F0F0F0F0F0ull;
  const Word3Block<4> f1 = force(b, word, mask, true);
  const Word3Block<4> f0 = force(b, word, mask, false);
  for (unsigned l = 0; l < 256; ++l) {
    const bool hit = l / 64 == word && ((mask >> (l % 64)) & 1) != 0;
    EXPECT_EQ(lane(f1, l), hit ? Val3::kOne : lane(b, l));
    EXPECT_EQ(lane(f0, l), hit ? Val3::kZero : lane(b, l));
  }
}

template <unsigned N>
void check_eval_gate_matches(std::uint64_t seed) {
  util::Rng rng(seed);
  const GateType types[] = {GateType::kBuf,  GateType::kNot, GateType::kAnd,
                            GateType::kNand, GateType::kOr,  GateType::kNor,
                            GateType::kXor,  GateType::kXnor};
  for (const GateType t : types) {
    const std::size_t arity =
        (t == GateType::kBuf || t == GateType::kNot) ? 1 : 3;
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<Word3Block<N>> in;
      for (std::size_t i = 0; i < arity; ++i) in.push_back(random_block<N>(rng));
      const Word3Block<N> out =
          eval_gate_block<N>(t, std::span<const Word3Block<N>>(in));
      for (unsigned k = 0; k < N; ++k) {
        std::vector<Word3> scalar_in;
        for (const auto& b : in) scalar_in.push_back(word_of(b, k));
        EXPECT_EQ(word_of(out, k), eval_gate(t, scalar_in))
            << "gate " << static_cast<int>(t) << " word " << k;
      }
    }
  }
}

TEST(Word3Block, EvalGateMatchesScalarPerWord) {
  check_eval_gate_matches<1>(101);
  check_eval_gate_matches<2>(202);
  check_eval_gate_matches<4>(404);
}

}  // namespace
}  // namespace wbist::sim
