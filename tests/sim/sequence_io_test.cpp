#include "sim/sequence_io.h"

#include <gtest/gtest.h>

namespace wbist::sim {
namespace {

TEST(SequenceIo, ParsesRowsAndComments) {
  const TestSequence seq = read_sequence(R"(
# a comment
0111   # trailing
1x01

-010
)");
  ASSERT_EQ(seq.length(), 3u);
  EXPECT_EQ(seq.width(), 4u);
  EXPECT_EQ(seq.at(0, 0), Val3::kZero);
  EXPECT_EQ(seq.at(1, 1), Val3::kX);
  EXPECT_EQ(seq.at(2, 0), Val3::kX);  // '-' parses as X
}

TEST(SequenceIo, EmptyTextIsEmptySequence) {
  EXPECT_TRUE(read_sequence("").empty());
  EXPECT_TRUE(read_sequence("# only comments\n\n").empty());
}

TEST(SequenceIo, RejectsBadCharacters) {
  EXPECT_THROW(read_sequence("0101\n01a1\n"), std::runtime_error);
}

TEST(SequenceIo, RejectsWidthMismatch) {
  try {
    read_sequence("01\n011\n");
    FAIL() << "expected error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SequenceIo, RoundTrip) {
  const TestSequence seq = TestSequence::from_rows({"01x", "110", "0x1"});
  const TestSequence again = read_sequence(write_sequence(seq, "test"));
  EXPECT_EQ(again, seq);
}

TEST(SequenceIo, FileRoundTrip) {
  const TestSequence seq = TestSequence::from_rows({"0101", "1x10"});
  const std::string path = testing::TempDir() + "/wbist_seq_test.seq";
  write_sequence_file(seq, path, "file round trip");
  EXPECT_EQ(read_sequence_file(path), seq);
}

TEST(SequenceIo, MissingFileThrows) {
  EXPECT_THROW(read_sequence_file("/nonexistent/file.seq"),
               std::runtime_error);
}

TEST(SequenceIo, CommentHeaderInOutput) {
  const TestSequence seq = TestSequence::from_rows({"01"});
  const std::string text = write_sequence(seq, "hello");
  EXPECT_NE(text.find("# hello"), std::string::npos);
  EXPECT_NE(text.find("1 vectors, 2 inputs"), std::string::npos);
}

}  // namespace
}  // namespace wbist::sim
