#include "sim/sequence.h"

#include <gtest/gtest.h>

namespace wbist::sim {
namespace {

TEST(Sequence, FromRows) {
  const TestSequence seq = TestSequence::from_rows({"01x", "110"});
  EXPECT_EQ(seq.length(), 2u);
  EXPECT_EQ(seq.width(), 3u);
  EXPECT_EQ(seq.at(0, 0), Val3::kZero);
  EXPECT_EQ(seq.at(0, 1), Val3::kOne);
  EXPECT_EQ(seq.at(0, 2), Val3::kX);
  EXPECT_EQ(seq.at(1, 2), Val3::kZero);
}

TEST(Sequence, DefaultIsEmpty) {
  const TestSequence seq;
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.length(), 0u);
  EXPECT_EQ(seq.width(), 0u);
}

TEST(Sequence, SizedConstructorFillsX) {
  const TestSequence seq(3, 2);
  EXPECT_EQ(seq.length(), 3u);
  for (std::size_t u = 0; u < 3; ++u)
    for (std::size_t i = 0; i < 2; ++i) EXPECT_EQ(seq.at(u, i), Val3::kX);
}

TEST(Sequence, AppendChecksWidth) {
  TestSequence seq = TestSequence::from_rows({"01"});
  const std::vector<Val3> bad{Val3::kOne};
  EXPECT_THROW(seq.append(bad), std::invalid_argument);
  const std::vector<Val3> ok{Val3::kOne, Val3::kZero};
  seq.append(ok);
  EXPECT_EQ(seq.length(), 2u);
}

TEST(Sequence, FirstAppendFixesWidth) {
  TestSequence seq;
  const std::vector<Val3> row{Val3::kOne, Val3::kZero, Val3::kX};
  seq.append(row);
  EXPECT_EQ(seq.width(), 3u);
}

TEST(Sequence, ColumnExtractsTi) {
  const TestSequence seq = TestSequence::from_rows({"01", "10", "11"});
  const auto t0 = seq.column(0);
  ASSERT_EQ(t0.size(), 3u);
  EXPECT_EQ(t0[0], Val3::kZero);
  EXPECT_EQ(t0[1], Val3::kOne);
  EXPECT_EQ(t0[2], Val3::kOne);
}

TEST(Sequence, TruncateShortens) {
  TestSequence seq = TestSequence::from_rows({"0", "1", "0", "1"});
  seq.truncate(2);
  EXPECT_EQ(seq.length(), 2u);
  seq.truncate(10);  // longer than current: no-op
  EXPECT_EQ(seq.length(), 2u);
}

TEST(Sequence, RowString) {
  const TestSequence seq = TestSequence::from_rows({"0x1"});
  EXPECT_EQ(seq.row_string(0), "0x1");
}

TEST(Sequence, RowSpanMatchesAt) {
  const TestSequence seq = TestSequence::from_rows({"011", "100"});
  const auto row = seq.row(1);
  ASSERT_EQ(row.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(row[i], seq.at(1, i));
}

TEST(Sequence, Equality) {
  const TestSequence a = TestSequence::from_rows({"01", "10"});
  const TestSequence b = TestSequence::from_rows({"01", "10"});
  const TestSequence c = TestSequence::from_rows({"01", "11"});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Sequence, MismatchedRowWidthThrows) {
  EXPECT_THROW(TestSequence::from_rows({"01", "011"}), std::invalid_argument);
}

}  // namespace
}  // namespace wbist::sim
