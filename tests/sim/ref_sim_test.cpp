#include "sim/ref_sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/good_sim.h"
#include "testutil.h"

namespace wbist::sim {
namespace {

using netlist::GateType;
using netlist::NodeId;

TEST(RefEvalGate, ThreeValuedTruthTables) {
  const Val3 O = Val3::kZero, I = Val3::kOne, X = Val3::kX;

  const std::vector<Val3> zx{O, X};
  EXPECT_EQ(ref_eval_gate(GateType::kAnd, zx), O);   // controlling 0 wins
  EXPECT_EQ(ref_eval_gate(GateType::kNand, zx), I);
  const std::vector<Val3> ox{I, X};
  EXPECT_EQ(ref_eval_gate(GateType::kOr, ox), I);    // controlling 1 wins
  EXPECT_EQ(ref_eval_gate(GateType::kNor, ox), O);
  EXPECT_EQ(ref_eval_gate(GateType::kAnd, ox), X);   // no controlling value
  EXPECT_EQ(ref_eval_gate(GateType::kXor, ox), X);   // XOR: any X poisons
  const std::vector<Val3> oi{I, O};
  EXPECT_EQ(ref_eval_gate(GateType::kXor, oi), I);
  EXPECT_EQ(ref_eval_gate(GateType::kXnor, oi), O);
  const std::vector<Val3> x1{X};
  EXPECT_EQ(ref_eval_gate(GateType::kNot, x1), X);
  EXPECT_EQ(ref_eval_gate(GateType::kBuf, x1), X);
}

// Exhaustive 2-input cross-check against the production scalar evaluator:
// the two implementations were written independently from the truth tables.
TEST(RefEvalGate, AgreesWithProductionScalarEval) {
  const Val3 vals[] = {Val3::kZero, Val3::kOne, Val3::kX};
  const GateType types[] = {GateType::kAnd,  GateType::kNand, GateType::kOr,
                            GateType::kNor,  GateType::kXor,  GateType::kXnor};
  for (GateType t : types)
    for (Val3 a : vals)
      for (Val3 b : vals) {
        const std::vector<Val3> in{a, b};
        EXPECT_EQ(ref_eval_gate(t, in), eval_gate_scalar(t, in))
            << "gate " << static_cast<int>(t);
      }
}

TEST(RefSim, MatchesGoodSimulatorEveryNodeEveryCycle) {
  for (const char* name : {"s27", "s298", "s344"}) {
    const netlist::Netlist nl = circuits::circuit_by_name(name);
    const TestSequence seq =
        test::random_sequence(20, nl.primary_inputs().size(), 99);
    const RefSimulator ref(nl);
    const RefValueMatrix values = ref.run(seq);
    ASSERT_EQ(values.size(), seq.length());

    GoodSimulator good(nl);
    for (std::size_t u = 0; u < seq.length(); ++u) {
      good.step(seq.row(u));
      for (NodeId id = 0; id < nl.node_count(); ++id)
        ASSERT_EQ(values[u][id], good.value(id))
            << name << " node " << nl.node(id).name << " at t=" << u;
    }
  }
}

TEST(RefSim, HandlesXInputs) {
  const netlist::Netlist nl = test::tiny_circuit();
  TestSequence seq(2, 2);
  seq.set(0, 0, Val3::kOne);
  seq.set(0, 1, Val3::kX);
  seq.set(1, 0, Val3::kZero);
  seq.set(1, 1, Val3::kOne);
  const RefValueMatrix values = RefSimulator(nl).run(seq);

  GoodSimulator good(nl);
  for (std::size_t u = 0; u < seq.length(); ++u) {
    good.step(seq.row(u));
    for (NodeId id = 0; id < nl.node_count(); ++id)
      ASSERT_EQ(values[u][id], good.value(id));
  }
}

TEST(RefSim, DPinFaultCorruptsLatchedStateOnly) {
  // tiny: n1 = AND(a,b); ff = DFF(n1); n2 = XOR(a,ff); out = NOT(n2).
  const netlist::Netlist nl = test::tiny_circuit();
  const NodeId ff = nl.find("ff");
  const RefFault sa1{ff, 0, true};  // ff D-pin stuck-at-1

  const TestSequence seq = test::random_sequence(6, 2, 3);
  const RefSimulator ref(nl);
  const RefValueMatrix good = ref.run(seq);
  const RefValueMatrix faulty = ref.run(seq, sa1);

  // The D-pin fault corrupts what the flip-flop latches, not the value on
  // the ff output during the same cycle: cycle 0 must be fault-free.
  EXPECT_EQ(faulty[0][nl.find("out")], good[0][nl.find("out")]);
  // From cycle 1 on the flip-flop output is stuck at 1 in the faulty
  // machine.
  for (std::size_t u = 1; u < seq.length(); ++u)
    EXPECT_EQ(faulty[u][ff], Val3::kOne) << "t=" << u;
}

TEST(RefSim, DetectionTimesMatchFaultSimulator) {
  for (const char* name : {"s27", "s298"}) {
    const netlist::Netlist nl = circuits::circuit_by_name(name);
    const fault::FaultSet faults = fault::FaultSet::collapsed(nl);
    const fault::FaultSimulator sim(nl, faults);
    const TestSequence seq =
        test::random_sequence(24, nl.primary_inputs().size(), 17);
    const fault::DetectionResult det = sim.run_all(seq);

    const RefSimulator ref(nl);
    const RefValueMatrix good = ref.run(seq);
    const std::vector<NodeId> pos(nl.primary_outputs().begin(),
                                  nl.primary_outputs().end());
    for (fault::FaultId f = 0; f < faults.size(); ++f) {
      const fault::Fault& fl = faults[f];
      const RefFault rf{fl.node, fl.pin, fl.stuck_at_one};
      const RefValueMatrix faulty = ref.run(seq, rf);
      EXPECT_EQ(ref_detection_time(good, faulty, pos), det.detection_time[f])
          << name << " fault " << fault_name(nl, fl);
    }
  }
}

TEST(RefSim, ObservableLinesMatchFaultSimulator) {
  const netlist::Netlist nl = circuits::s27();
  const fault::FaultSet faults = fault::FaultSet::collapsed(nl);
  const fault::FaultSimulator sim(nl, faults);
  const TestSequence seq =
      test::random_sequence(16, nl.primary_inputs().size(), 5);
  const std::vector<fault::FaultId> ids = faults.all_ids();
  const auto lines = sim.observable_lines(seq, ids);

  const RefSimulator ref(nl);
  const RefValueMatrix good = ref.run(seq);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const fault::Fault& fl = faults[ids[k]];
    const RefFault rf{fl.node, fl.pin, fl.stuck_at_one};
    EXPECT_EQ(ref_observable_lines(good, ref.run(seq, rf)), lines[k])
        << "fault " << fault_name(nl, fl);
  }
}

TEST(RefSim, RejectsUnfinalizedNetlistAndBadWidth) {
  netlist::Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(RefSimulator{nl}, std::invalid_argument);

  const netlist::Netlist tiny = test::tiny_circuit();
  EXPECT_THROW(RefSimulator(tiny).run(TestSequence(3, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wbist::sim
