#include "tgen/random_tgen.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"

namespace wbist::tgen {
namespace {

using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;

TEST(RandomTgen, FullCoverageOnS27) {
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TgenResult res = generate_test_sequence(sim);
  EXPECT_EQ(res.detected, set.size());  // s27 is fully random-testable
  EXPECT_EQ(res.sequence.width(), 4u);
}

TEST(RandomTgen, DeterministicForSeed) {
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  TgenConfig cfg;
  cfg.seed = 5;
  const TgenResult a = generate_test_sequence(sim, cfg);
  const TgenResult b = generate_test_sequence(sim, cfg);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.detection_time, b.detection_time);
}

TEST(RandomTgen, DifferentSeedsDifferentSequences) {
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  TgenConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const TgenResult a = generate_test_sequence(sim, a_cfg);
  const TgenResult b = generate_test_sequence(sim, b_cfg);
  EXPECT_NE(a.sequence, b.sequence);
}

TEST(RandomTgen, DetectionTimesMatchResimulation) {
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TgenResult res = generate_test_sequence(sim);
  const auto det = sim.run(res.sequence, set.all_ids());
  for (FaultId id = 0; id < set.size(); ++id)
    EXPECT_EQ(res.detection_time[id], det.detection_time[id]);
}

TEST(RandomTgen, RespectsMaxLength) {
  const auto nl = circuits::circuit_by_name("s298");
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  TgenConfig cfg;
  cfg.max_length = 100;
  cfg.chunk = 32;
  const TgenResult res = generate_test_sequence(sim, cfg);
  EXPECT_LE(res.sequence.length(), 100u);
}

TEST(RandomTgen, DetectedCountConsistent) {
  const auto nl = circuits::circuit_by_name("s208");
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  TgenConfig cfg;
  cfg.max_length = 512;
  const TgenResult res = generate_test_sequence(sim, cfg);
  std::size_t n = 0;
  for (const auto t : res.detection_time)
    if (t != DetectionResult::kUndetected) ++n;
  EXPECT_EQ(n, res.detected);
  EXPECT_GT(res.detected, set.size() / 2);  // synthetic circuits stay testable
}

}  // namespace
}  // namespace wbist::tgen
