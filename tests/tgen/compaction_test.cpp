#include "tgen/compaction.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "tgen/random_tgen.h"

namespace wbist::tgen {
namespace {

using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;

std::vector<FaultId> detected_ids(const std::vector<std::int32_t>& times) {
  std::vector<FaultId> ids;
  for (FaultId f = 0; f < times.size(); ++f)
    if (times[f] != DetectionResult::kUndetected) ids.push_back(f);
  return ids;
}

TEST(Compaction, PreservesCoverage) {
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TgenResult gen = generate_test_sequence(sim);
  const auto must = detected_ids(gen.detection_time);

  const CompactionResult res = compact_sequence(sim, gen.sequence, must);
  EXPECT_LE(res.sequence.length(), gen.sequence.length());
  const auto det = sim.run(res.sequence, must);
  EXPECT_EQ(det.detected_count, must.size());
}

TEST(Compaction, RemovedPlusRemainingEqualsOriginal) {
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TgenResult gen = generate_test_sequence(sim);
  const auto must = detected_ids(gen.detection_time);
  const CompactionResult res = compact_sequence(sim, gen.sequence, must);
  EXPECT_EQ(res.sequence.length() + res.removed_vectors,
            gen.sequence.length());
}

TEST(Compaction, DetectionTimesRecomputed) {
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TgenResult gen = generate_test_sequence(sim);
  const auto must = detected_ids(gen.detection_time);
  const CompactionResult res = compact_sequence(sim, gen.sequence, must);
  const auto det = sim.run(res.sequence, set.all_ids());
  EXPECT_EQ(res.detection_time, det.detection_time);
}

TEST(Compaction, ShrinksRedundantSequence) {
  // A sequence padded with obviously useless all-zero tail vectors must
  // shrink below its original length.
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  sim::TestSequence padded = circuits::s27_paper_sequence();
  const std::vector<sim::Val3> zeros(4, sim::Val3::kZero);
  for (int k = 0; k < 30; ++k) padded.append(zeros);
  const auto base = sim.run(padded, set.all_ids());
  const auto must = detected_ids(base.detection_time);
  const CompactionResult res = compact_sequence(sim, padded, must);
  EXPECT_LT(res.sequence.length(), padded.length());
}

TEST(Compaction, SimulationBudgetHonored) {
  const auto nl = circuits::circuit_by_name("s208");
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  TgenConfig tc;
  tc.max_length = 512;
  const TgenResult gen = generate_test_sequence(sim, tc);
  const auto must = detected_ids(gen.detection_time);
  CompactionConfig cfg;
  cfg.max_simulations = 10;
  const CompactionResult res = compact_sequence(sim, gen.sequence, must, cfg);
  EXPECT_LE(res.simulations_used, 10u);
}

TEST(Compaction, MinBlockLimitsEffort) {
  const auto nl = circuits::s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const TgenResult gen = generate_test_sequence(sim);
  const auto must = detected_ids(gen.detection_time);
  CompactionConfig coarse;
  coarse.min_block = 16;
  const CompactionResult res =
      compact_sequence(sim, gen.sequence, must, coarse);
  // Still preserves coverage even with coarse blocks only.
  const auto det = sim.run(res.sequence, must);
  EXPECT_EQ(det.detected_count, must.size());
}

}  // namespace
}  // namespace wbist::tgen
