#include "util/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace wbist::util {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i, unsigned) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, IndexKeyedResultsAreDeterministic) {
  // The pool's contract: index-keyed output slots make the result schedule
  // independent. Compare a 1-thread and an 8-thread run of the same loop.
  const std::size_t n = 4096;
  const auto compute = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17;
  };
  std::vector<std::uint64_t> serial(n), parallel(n);
  WorkerPool one(1);
  one.parallel_for(n, [&](std::size_t i, unsigned) { serial[i] = compute(i); });
  WorkerPool eight(8);
  eight.parallel_for(n,
                     [&](std::size_t i, unsigned) { parallel[i] = compute(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(WorkerPool, RanksAreWithinBounds) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> rank_hits(3);
  pool.parallel_for(512, [&](std::size_t, unsigned rank) {
    ASSERT_LT(rank, 3u);
    rank_hits[rank].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (const auto& h : rank_hits) total += h.load();
  EXPECT_EQ(total, 512);
}

TEST(WorkerPool, ReusableAcrossCalls) {
  WorkerPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(round + 1, [&](std::size_t i, unsigned) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    const auto n = static_cast<std::size_t>(round) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(WorkerPool, EmptyRangeIsANoop) {
  WorkerPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WorkerPool, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(16, [&](std::size_t, unsigned rank) {
    EXPECT_EQ(rank, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(WorkerPool, PropagatesFirstException) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i, unsigned) {
                                   if (i == 13)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool must still be usable after a throwing job.
  std::atomic<int> ok{0};
  pool.parallel_for(8, [&](std::size_t, unsigned) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(WorkerPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_EQ(WorkerPool::resolve(3), 3u);
  EXPECT_EQ(WorkerPool::resolve(1), 1u);
  EXPECT_GE(WorkerPool::resolve(0), 1u);
}

TEST(WorkerPool, BackToBackJobsNeverRunAStaleFunction) {
  // Regression: a worker parked between finishing its last index of job k
  // and its next counter claim must not claim an index of job k+1 while
  // still holding job k's function pointer. Tiny jobs on a wide pool
  // maximize that window; a stale execution writes the previous round's
  // value (or crashes under ASan, since each round's lambda is destroyed
  // when parallel_for returns).
  WorkerPool pool(8);
  std::vector<std::atomic<int>> out(5);
  for (auto& o : out) o.store(-1);
  for (int round = 0; round < 3000; ++round) {
    pool.parallel_for(out.size(), [&out, round](std::size_t i, unsigned) {
      out[i].store(round, std::memory_order_relaxed);
    });
    for (auto& o : out) ASSERT_EQ(o.load(), round);
  }
}

TEST(WorkerPool, MoreThreadsThanWork) {
  WorkerPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i, unsigned) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace wbist::util
