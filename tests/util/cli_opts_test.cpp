#include "util/cli_opts.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wbist::util {
namespace {

using Args = std::vector<std::string>;

TEST(CliOpts, AbsentLeavesArgsAndValueUntouched) {
  Args args{"flow", "s27"};
  std::string value = "sentinel";
  EXPECT_EQ(extract_option(args, "--trace-json", value),
            ExtractResult::kAbsent);
  EXPECT_EQ(args, (Args{"flow", "s27"}));
  EXPECT_EQ(value, "sentinel");
}

TEST(CliOpts, SeparateValueFormIsStrippedAnywhere) {
  Args args{"--trace-json", "t.json", "flow", "s27"};
  std::string value;
  EXPECT_EQ(extract_option(args, "--trace-json", value),
            ExtractResult::kFound);
  EXPECT_EQ(value, "t.json");
  EXPECT_EQ(args, (Args{"flow", "s27"}));

  args = {"flow", "--trace-json", "mid.json", "s27"};
  EXPECT_EQ(extract_option(args, "--trace-json", value),
            ExtractResult::kFound);
  EXPECT_EQ(value, "mid.json");
  EXPECT_EQ(args, (Args{"flow", "s27"}));
}

TEST(CliOpts, EqualsFormIsStripped) {
  Args args{"flow", "s27", "--trace-json=eq.json"};
  std::string value;
  EXPECT_EQ(extract_option(args, "--trace-json", value),
            ExtractResult::kFound);
  EXPECT_EQ(value, "eq.json");
  EXPECT_EQ(args, (Args{"flow", "s27"}));
}

TEST(CliOpts, LastOccurrenceWinsAndAllAreStripped) {
  Args args{"--x=first", "flow", "--x", "second", "s27", "--x=third"};
  std::string value;
  EXPECT_EQ(extract_option(args, "--x", value), ExtractResult::kFound);
  EXPECT_EQ(value, "third");
  EXPECT_EQ(args, (Args{"flow", "s27"}));
}

TEST(CliOpts, TrailingFlagWithoutValueLeavesArgsUnchanged) {
  Args args{"flow", "s27", "--trace-json"};
  std::string value = "sentinel";
  EXPECT_EQ(extract_option(args, "--trace-json", value),
            ExtractResult::kMissingValue);
  EXPECT_EQ(args, (Args{"flow", "s27", "--trace-json"}));
  EXPECT_EQ(value, "sentinel");
}

TEST(CliOpts, EmptyEqualsValueReportsFoundWithEmptyString) {
  Args args{"flow", "--trace-json=", "s27"};
  std::string value = "sentinel";
  EXPECT_EQ(extract_option(args, "--trace-json", value),
            ExtractResult::kFound);
  EXPECT_TRUE(value.empty());
  EXPECT_EQ(args, (Args{"flow", "s27"}));
}

TEST(CliOpts, MissingValueAfterEarlierOccurrenceLeavesEverythingUntouched) {
  // Regression: `--x=first ... --x` used to write "first" into `value`
  // before reporting kMissingValue, so callers saw a clobbered value next
  // to an unmodified argument vector.
  Args args{"--x=first", "flow", "s27", "--x"};
  std::string value = "sentinel";
  EXPECT_EQ(extract_option(args, "--x", value), ExtractResult::kMissingValue);
  EXPECT_EQ(value, "sentinel");
  EXPECT_EQ(args, (Args{"--x=first", "flow", "s27", "--x"}));
}

TEST(CliOpts, MissingValueAfterSeparateFormOccurrence) {
  Args args{"--x", "first", "flow", "--x"};
  std::string value = "sentinel";
  EXPECT_EQ(extract_option(args, "--x", value), ExtractResult::kMissingValue);
  EXPECT_EQ(value, "sentinel");
  EXPECT_EQ(args, (Args{"--x", "first", "flow", "--x"}));
}

TEST(CliOpts, PrefixFlagsDoNotMatch) {
  // "--trace-json-extra" must not be mistaken for "--trace-json".
  Args args{"--trace-json-extra", "v"};
  std::string value = "sentinel";
  EXPECT_EQ(extract_option(args, "--trace-json", value),
            ExtractResult::kAbsent);
  EXPECT_EQ(args, (Args{"--trace-json-extra", "v"}));
  EXPECT_EQ(value, "sentinel");
}

TEST(CliOpts, ValueMayLookLikeAnotherFlag) {
  // The token after a separate-form flag is always consumed as its value.
  Args args{"--a", "--b", "rest"};
  std::string value;
  EXPECT_EQ(extract_option(args, "--a", value), ExtractResult::kFound);
  EXPECT_EQ(value, "--b");
  EXPECT_EQ(args, (Args{"rest"}));
}

}  // namespace
}  // namespace wbist::util
