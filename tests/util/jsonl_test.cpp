// JsonlWriter / read_jsonl_file: line round-trips, append vs truncate
// open modes, and the torn-trailer tolerance crash recovery relies on.
#include "util/jsonl.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace wbist::util {
namespace {

class JsonlTest : public ::testing::Test {
 protected:
  std::string path_;

  void SetUp() override {
    path_ = ::testing::TempDir() + "/jsonl_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void raw_write(const std::string& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
};

TEST_F(JsonlTest, LinesRoundTripInOrder) {
  JsonlWriter w;
  w.open(path_, /*append=*/false);
  w.write_line("{\"a\":1}");
  w.write_line("{\"b\":2}");
  w.close();

  const JsonlReadResult r = read_jsonl_file(path_);
  ASSERT_EQ(r.lines.size(), 2u);
  EXPECT_EQ(r.lines[0], "{\"a\":1}");
  EXPECT_EQ(r.lines[1], "{\"b\":2}");
  EXPECT_FALSE(r.truncated_trailer);
}

TEST_F(JsonlTest, AppendModeExtendsTruncateModeReplaces) {
  {
    JsonlWriter w;
    w.open(path_, /*append=*/false);
    w.write_line("first");
  }
  {
    JsonlWriter w;
    w.open(path_, /*append=*/true);
    w.write_line("second");
  }
  EXPECT_EQ(read_jsonl_file(path_).lines.size(), 2u);

  JsonlWriter w;
  w.open(path_, /*append=*/false);
  w.write_line("only");
  w.close();
  const JsonlReadResult r = read_jsonl_file(path_);
  ASSERT_EQ(r.lines.size(), 1u);
  EXPECT_EQ(r.lines[0], "only");
}

TEST_F(JsonlTest, TornTrailerIsReportedNotReturned) {
  raw_write("{\"a\":1}\n{\"b\":2}\n{\"torn\":");
  const JsonlReadResult r = read_jsonl_file(path_);
  ASSERT_EQ(r.lines.size(), 2u);
  EXPECT_EQ(r.lines[1], "{\"b\":2}");
  EXPECT_TRUE(r.truncated_trailer);
}

TEST_F(JsonlTest, EmptyFileIsEmptyNotTruncated) {
  raw_write("");
  const JsonlReadResult r = read_jsonl_file(path_);
  EXPECT_TRUE(r.lines.empty());
  EXPECT_FALSE(r.truncated_trailer);
}

TEST_F(JsonlTest, MissingFileThrows) {
  EXPECT_THROW(read_jsonl_file(path_ + ".absent"), std::runtime_error);
  JsonlWriter w;
  EXPECT_THROW(w.open("/nonexistent-dir/x.jsonl", false),
               std::runtime_error);
}

}  // namespace
}  // namespace wbist::util
