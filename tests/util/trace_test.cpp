#include "util/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace wbist::util {
namespace {

/// Every test runs against the process-global registry (that is what the
/// library instrumentation uses), so each one stops tracing on exit to keep
/// later tests starting from the disabled state.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { TraceRegistry::global().stop(); }
};

TEST_F(TraceTest, DisabledByDefaultAndSpansAreNoOps) {
  EXPECT_FALSE(trace_enabled());
  {
    TraceSpan span("never_recorded", TraceArg("x", 1));
    trace_instant("also_never");
    trace_counter("nor_this", 1.0);
  }
  // A session started afterwards must not contain the pre-session events.
  TraceRegistry::global().start(64);
  TraceRegistry::global().stop();
  const std::string json = TraceRegistry::global().to_json();
  EXPECT_EQ(json.find("never_recorded"), std::string::npos);
  EXPECT_EQ(json.find("also_never"), std::string::npos);
}

TEST_F(TraceTest, SpanRecordsCompleteEventWithArgs) {
  TraceRegistry::global().start(64);
  {
    TraceSpan span("unit_span", TraceArg("i", std::int64_t{-3}),
                   TraceArg("u", std::uint64_t{7}), TraceArg("f", 1.5),
                   TraceArg("s", "lit"));
  }
  TraceRegistry::global().stop();
  const std::string json = TraceRegistry::global().to_json();
  EXPECT_NE(json.find("\"name\":\"unit_span\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"u\":7"), std::string::npos);
  EXPECT_NE(json.find("\"f\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"lit\""), std::string::npos);
}

TEST_F(TraceTest, CopiedStringArgsSurviveTheSource) {
  TraceRegistry::global().start(64);
  {
    std::string dynamic = "transient-value";
    TraceSpan span("copy_span", TraceArg::copy("k", dynamic));
    dynamic.assign(dynamic.size(), 'X');  // clobber before export
  }
  TraceRegistry::global().stop();
  EXPECT_NE(TraceRegistry::global().to_json().find("transient-value"),
            std::string::npos);
}

TEST_F(TraceTest, EndTimeArgsAttach) {
  TraceRegistry::global().start(64);
  {
    TraceSpan span("late_arg_span");
    span.arg(TraceArg("result", std::uint64_t{42}));
  }
  TraceRegistry::global().stop();
  EXPECT_NE(TraceRegistry::global().to_json().find("\"result\":42"),
            std::string::npos);
}

TEST_F(TraceTest, NestedSpansCloseInLifoOrderWithinParent) {
  TraceRegistry::global().start(64);
  {
    TraceSpan outer("outer_span");
    {
      TraceSpan inner("inner_span");
    }
  }
  TraceRegistry::global().stop();
  const std::string json = TraceRegistry::global().to_json();
  // Both recorded; the inner span closes first and so is serialized first.
  const auto inner_pos = json.find("inner_span");
  const auto outer_pos = json.find("outer_span");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
}

TEST_F(TraceTest, InstantAndCounterEvents) {
  TraceRegistry::global().start(64);
  trace_instant("marker", TraceArg("n", std::uint64_t{2}));
  trace_counter("queue_depth", 5.0);
  TraceRegistry::global().stop();
  const std::string json = TraceRegistry::global().to_json();
  EXPECT_NE(json.find("\"name\":\"marker\",\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_depth\",\"ph\":\"C\""),
            std::string::npos);
}

TEST_F(TraceTest, RingDropsOldestAndCountsDrops) {
  TraceRegistry::global().start(16);  // minimum capacity
  for (int k = 0; k < 100; ++k)
    trace_counter("tick", static_cast<double>(k));
  TraceRegistry::global().stop();
  EXPECT_EQ(TraceRegistry::global().dropped_events(), 100u - 16u);
  const std::string json = TraceRegistry::global().to_json();
  // The newest sample survives, the oldest was overwritten (counter samples
  // serialize as args {"value": N}).
  EXPECT_NE(json.find("\"value\":99"), std::string::npos);
  EXPECT_EQ(json.find("\"value\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 84"), std::string::npos);
}

TEST_F(TraceTest, PerThreadBuffersGetDistinctTids) {
  TraceRegistry::global().start(64);
  trace_instant("main_thread_event");
  std::thread worker([] { trace_instant("worker_thread_event"); });
  worker.join();
  TraceRegistry::global().stop();
  const std::string json = TraceRegistry::global().to_json();
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("main_thread_event"), std::string::npos);
  EXPECT_NE(json.find("worker_thread_event"), std::string::npos);
}

TEST_F(TraceTest, StartClearsThePreviousSession) {
  TraceRegistry::global().start(64);
  trace_instant("first_session_event");
  TraceRegistry::global().stop();
  TraceRegistry::global().start(64);
  trace_instant("second_session_event");
  TraceRegistry::global().stop();
  const std::string json = TraceRegistry::global().to_json();
  EXPECT_EQ(json.find("first_session_event"), std::string::npos);
  EXPECT_NE(json.find("second_session_event"), std::string::npos);
}

TEST_F(TraceTest, SpanOpenAcrossStopIsDiscarded) {
  TraceRegistry::global().start(64);
  {
    TraceSpan span("stopped_mid_span");
    TraceRegistry::global().stop();
  }
  EXPECT_EQ(TraceRegistry::global().to_json().find("stopped_mid_span"),
            std::string::npos);
}

TEST_F(TraceTest, TimestampsAreMicrosecondsAndMonotone) {
  TraceRegistry::global().start(64);
  {
    TraceSpan outer("outer_ts");
    {
      TraceSpan inner("inner_ts");
    }
  }
  TraceRegistry::global().stop();
  // Just structural sanity here: the exporter emits "ts" and "dur" fields
  // for spans; numeric ordering is covered by the integration test which
  // checks child spans sit inside their parents' [ts, ts+dur] windows.
  const std::string json = TraceRegistry::global().to_json();
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

}  // namespace
}  // namespace wbist::util
