#include "util/table.h"

#include <gtest/gtest.h>

namespace wbist::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t{"Title"};
  t.header({"circuit", "len"});
  t.row({"s27", "10"});
  t.row({"s1196", "238"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("circuit"), std::string::npos);
  EXPECT_NE(out.find("s1196"), std::string::npos);
  EXPECT_NE(out.find("238"), std::string::npos);
}

TEST(Table, NumbersRightAligned) {
  Table t;
  t.header({"name", "count"});
  t.row({"a", "5"});
  t.row({"bbbb", "12345"});
  const std::string out = t.render();
  // "5" must be padded on the left to align with "12345".
  EXPECT_NE(out.find("    5"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t;
  EXPECT_EQ(t.row_count(), 0u);
  t.row({"x"});
  t.row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ShortRowsPadded) {
  Table t;
  t.header({"a", "b", "c"});
  t.row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(Table, NoTrailingSpaces) {
  Table t;
  t.header({"a", "b"});
  t.row({"x", "y"});
  const std::string out = t.render();
  std::size_t pos = 0;
  while ((pos = out.find('\n', pos)) != std::string::npos) {
    if (pos > 0) {
      EXPECT_NE(out[pos - 1], ' ');
    }
    ++pos;
  }
}

}  // namespace
}  // namespace wbist::util
