#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace wbist::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 30u);  // not a degenerate constant stream
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(13);
  std::vector<int> buckets(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++buckets[r.below(8)];
  for (int b : buckets) {
    EXPECT_GT(b, n / 8 - n / 80);
    EXPECT_LT(b, n / 8 + n / 80);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0, 10));
    EXPECT_TRUE(r.chance(10, 10));
  }
}

TEST(Rng, BitIsBalanced) {
  Rng r(23);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += r.next_bit() ? 1 : 0;
  EXPECT_GT(ones, n / 2 - n / 20);
  EXPECT_LT(ones, n / 2 + n / 20);
}

}  // namespace
}  // namespace wbist::util
