#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace wbist::util {
namespace {

// -- escaping ---------------------------------------------------------------

TEST(JsonEscape, PlainTextPassesThroughQuoted) {
  EXPECT_EQ(json_quote("hello"), "\"hello\"");
  EXPECT_EQ(json_quote(""), "\"\"");
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("\\\""), "\"\\\\\\\"\"");
}

TEST(JsonEscape, ShortFormControlCharacters) {
  EXPECT_EQ(json_quote("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(json_quote("a\tb"), "\"a\\tb\"");
}

TEST(JsonEscape, OtherControlCharactersAreUnicodeEscapedNotDropped) {
  // The provenance writer used to drop these bytes entirely.
  EXPECT_EQ(json_quote(std::string("a\x01"
                                   "b")),
            "\"a\\u0001b\"");
  EXPECT_EQ(json_quote(std::string("\x00", 1)), "\"\\u0000\"");
  EXPECT_EQ(json_quote("\r"), "\"\\u000d\"");
  EXPECT_EQ(json_quote("\x1f"), "\"\\u001f\"");
}

TEST(JsonEscape, HighBytesPassThrough) {
  // UTF-8 continuation bytes must not be sign-extended into \uffXX escapes.
  const std::string utf8 = "caf\xc3\xa9";
  EXPECT_EQ(json_quote(utf8), "\"" + utf8 + "\"");
}

TEST(JsonEscape, EscapedStringsRoundTripThroughTheParser) {
  std::string nasty;
  for (int c = 0; c < 0x20; ++c) nasty += static_cast<char>(c);
  nasty += "\"\\plain text\x7f";
  const JsonValue v = json_parse(json_quote(nasty));
  EXPECT_EQ(v.as_string(), nasty);
}

// -- parsing ----------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("3.5").as_number(), 3.5);
  EXPECT_EQ(json_parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(json_parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, ObjectAndArray) {
  const JsonValue v =
      json_parse(R"({"job":"flow","n":3,"ok":true,"xs":[1,2,3],"o":{}})");
  EXPECT_EQ(v.get_string("job"), "flow");
  EXPECT_EQ(v.get_int("n", -1), 3);
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(v.get("xs")->as_array().size(), 3u);
  EXPECT_TRUE(v.get("o")->as_object().empty());
  EXPECT_EQ(v.get("absent"), nullptr);
  EXPECT_EQ(v.get_string("absent", "dflt"), "dflt");
  EXPECT_EQ(v.get_int("absent", 7), 7);
}

TEST(JsonParse, WhitespaceEverywhere) {
  const JsonValue v = json_parse(" \n\t{ \"a\" : [ 1 , 2 ] }\r\n");
  EXPECT_EQ(v.get("a")->as_array()[1].as_int(), 2);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(json_parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(json_parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, MalformedInputThrows) {
  EXPECT_THROW(json_parse(""), std::runtime_error);
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(json_parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json_parse("tru"), std::runtime_error);
  EXPECT_THROW(json_parse("1 2"), std::runtime_error);
  EXPECT_THROW(json_parse("\"\\u12"), std::runtime_error);
  EXPECT_THROW(json_parse("\"\\ud800\""), std::runtime_error);
  EXPECT_THROW(json_parse("\"raw\ncontrol\""), std::runtime_error);
  EXPECT_THROW(json_parse("nan"), std::runtime_error);
}

TEST(JsonParse, DepthIsBounded) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(json_parse(deep), std::runtime_error);
}

TEST(JsonParse, AsIntRejectsNonIntegers) {
  EXPECT_THROW(json_parse("1.5").as_int(), std::runtime_error);
  EXPECT_THROW(json_parse("1e30").as_int(), std::runtime_error);
}

TEST(JsonParse, TypeMismatchThrows) {
  EXPECT_THROW(json_parse("3").as_string(), std::runtime_error);
  EXPECT_THROW(json_parse("\"s\"").as_number(), std::runtime_error);
  EXPECT_THROW(json_parse("[]").as_object(), std::runtime_error);
}

}  // namespace
}  // namespace wbist::util
