#include "util/strings.h"

#include <gtest/gtest.h>

namespace wbist::util {
namespace {

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsSkipsRuns) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, StartsWithIcase) {
  EXPECT_TRUE(starts_with_icase("INPUT(G0)", "input"));
  EXPECT_TRUE(starts_with_icase("Output(x)", "OUTPUT"));
  EXPECT_FALSE(starts_with_icase("IN", "INPUT"));
  EXPECT_FALSE(starts_with_icase("OUTPUT", "INPUT"));
}

TEST(Strings, ToUpper) {
  EXPECT_EQ(to_upper("nand"), "NAND");
  EXPECT_EQ(to_upper("G17"), "G17");
}

TEST(Strings, FixedFormatting) {
  EXPECT_EQ(fixed(93.4, 1), "93.4");
  EXPECT_EQ(fixed(100.0, 1), "100.0");
  EXPECT_EQ(fixed(99.995, 2), "100.00");  // rounds
  EXPECT_EQ(fixed(0.5, 0), "0");          // banker-independent: snprintf
}

}  // namespace
}  // namespace wbist::util
