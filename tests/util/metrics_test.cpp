#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wbist::util {
namespace {

TEST(Metrics, CounterFindOrCreateReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add();
  EXPECT_EQ(reg.counter("x").value(), 4u);
  EXPECT_EQ(reg.counter("y").value(), 0u);
}

TEST(Metrics, ResetZeroesInPlaceAndKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  TimerStat& t = reg.timer("t");
  Histogram& h = reg.histogram("h");
  Series& s = reg.series("s");
  c.add(7);
  t.add_seconds(0.5);
  h.record(9);
  s.push(1.0, 2.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(t.seconds(), 0.0);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(s.snapshot().empty());
  // The same references keep working after the reset.
  c.add(2);
  EXPECT_EQ(reg.counter("c").value(), 2u);
}

TEST(Metrics, CounterIsThreadSafe) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&c] {
      for (int k = 0; k < kPerThread; ++k) c.add();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  h.record(0);   // bucket 0
  h.record(1);   // bucket 1
  h.record(2);   // bucket 2
  h.record(3);   // bucket 2
  h.record(64);  // bucket 7
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[7], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 70u);
  EXPECT_EQ(h.max(), 64u);
}

TEST(Metrics, PhaseScopeAccumulatesWallTime) {
  MetricsRegistry reg;
  {
    PhaseScope scope("phase", reg);
  }
  {
    PhaseScope scope("phase", reg);
  }
  EXPECT_EQ(reg.timer("phase").count(), 2u);
  EXPECT_GE(reg.timer("phase").seconds(), 0.0);
}

TEST(Metrics, SeriesKeepsInsertionOrder) {
  MetricsRegistry reg;
  Series& s = reg.series("coverage");
  s.push(0.1, 10);
  s.push(0.2, 25);
  const auto points = s.snapshot();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].first, 0.1);
  EXPECT_DOUBLE_EQ(points[1].second, 25.0);
}

TEST(Metrics, JsonHasStableShapeAndSortedKeys) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.timer("t").add_seconds(0.25);
  reg.histogram("h").record(5);
  reg.series("s").push(1, 2);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\": \"wbist.metrics/1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_LT(json.find("\"a.count\": 1"), json.find("\"b.count\": 2"));
  EXPECT_NE(json.find("[1, 2]"), std::string::npos);
}

TEST(Metrics, EmptyRegistryStillEmitsAllSections) {
  MetricsRegistry reg;
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"series\": {}"), std::string::npos);
}

TEST(Metrics, SeriesDecimatesBeyondMaxPoints) {
  MetricsRegistry reg;
  Series& s = reg.series("long_campaign");
  const std::size_t n = Series::kMaxPoints * 3 + 7;
  for (std::size_t k = 0; k < n; ++k)
    s.push(static_cast<double>(k), static_cast<double>(k) * 2.0);
  const auto points = s.snapshot();
  // Bounded: never more than kMaxPoints retained (+1 transiently impossible:
  // decimation runs before the append that would overflow).
  EXPECT_LE(points.size(), Series::kMaxPoints);
  EXPECT_GE(points.size(), Series::kMaxPoints / 2);
  // The first point ever pushed and the most recent push always survive.
  EXPECT_DOUBLE_EQ(points.front().first, 0.0);
  EXPECT_DOUBLE_EQ(points.back().first, static_cast<double>(n - 1));
  // Monotone x order is preserved by in-place decimation.
  for (std::size_t k = 1; k < points.size(); ++k)
    EXPECT_LT(points[k - 1].first, points[k].first);
}

TEST(Metrics, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &metrics());
}

TEST(Metrics, QuantileOfEmptyHistogramIsZero) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Metrics, QuantileInterpolatesWithinTheContainingBucket) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  h.record(100);  // bucket 7 spans [64, 128)
  // rank = q * count walks into the only bucket; the estimate moves
  // linearly across [64, 128) with q and is clamped to the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 64.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 96.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);  // 128 clamped to max()
}

TEST(Metrics, QuantileOfAllZeroSamplesIsZero) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  h.record(0);
  h.record(0);
  h.record(0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Metrics, QuantileWalksAcrossBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  for (std::uint64_t v = 1; v <= 8; ++v) h.record(v);
  // rank 4 falls one sample into bucket 3 ([4, 8), 4 samples):
  // 4 + (1/4) * (8 - 4) = 5.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Metrics, QuantileIsClampedToTheObservedMaximum) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  h.record(3);
  h.record(70);
  // The p100 estimate lands at the top of bucket 7 (128) before the
  // clamp; the exact observed maximum wins.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 70.0);
  // Out-of-range q is clamped into [0, 1], not an error.
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 70.0);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
}

TEST(Metrics, CounterValuesSnapshotsEveryCounter) {
  MetricsRegistry reg;
  reg.counter("a").add(5);
  reg.counter("b").add(7);
  const auto values = reg.counter_values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values.at("a"), 5u);
  EXPECT_EQ(values.at("b"), 7u);
}

TEST(Metrics, HistogramEntriesPointAtLiveHistograms) {
  MetricsRegistry reg;
  reg.histogram("x").record(1);
  reg.histogram("y").record(2);
  const auto entries = reg.histogram_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "x");
  EXPECT_EQ(entries[0].second, &reg.histogram("x"));
  EXPECT_EQ(entries[1].first, "y");
  EXPECT_EQ(entries[1].second, &reg.histogram("y"));
  // Snapshot pointers observe later records (stable references).
  reg.histogram("x").record(9);
  EXPECT_EQ(entries[0].second->count(), 2u);
}

}  // namespace
}  // namespace wbist::util
