#include "util/ring.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wbist::util {
namespace {

TEST(SnapshotRing, SnapshotIsOldestFirstBeforeWrap) {
  SnapshotRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.snapshot().empty());
  ring.push(10);
  ring.push(11);
  ring.push(12);
  const auto s = ring.snapshot();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 10);
  EXPECT_EQ(s[1], 11);
  EXPECT_EQ(s[2], 12);
  EXPECT_EQ(ring.pushed(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SnapshotRing, FullRingDropsTheOldest) {
  SnapshotRing<int> ring(3);
  for (int v = 1; v <= 5; ++v) ring.push(v);
  const auto s = ring.snapshot();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 5);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SnapshotRing, ZeroCapacityIsPromotedToOne) {
  SnapshotRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(7);
  ring.push(8);
  const auto s = ring.snapshot();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 8);
}

TEST(SnapshotRing, CrashCopyMatchesSnapshot) {
  SnapshotRing<int> ring(3);
  for (int v = 1; v <= 4; ++v) ring.push(v);
  EXPECT_EQ(ring.crash_copy(), ring.snapshot());
}

TEST(SnapshotRing, CrashCopyIntoRespectsCallerCapacity) {
  SnapshotRing<int> ring(8);
  for (int v = 1; v <= 5; ++v) ring.push(v);

  int out[8] = {};
  // Enough room: all retained records, oldest first.
  ASSERT_EQ(ring.crash_copy_into(out, 8), 5u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[4], 5);

  // A smaller buffer keeps the MOST RECENT records (still oldest-first
  // among themselves) — the tail of the flight is what a crash dump wants.
  ASSERT_EQ(ring.crash_copy_into(out, 2), 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);

  ASSERT_EQ(ring.crash_copy_into(out, 0), 0u);
}

TEST(SnapshotRing, ConcurrentPushesNeverLoseCount) {
  SnapshotRing<std::uint64_t> ring(16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&ring, t] {
      for (int k = 0; k < kPerThread; ++k)
        ring.push(static_cast<std::uint64_t>(t) * kPerThread + k);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(ring.pushed(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(ring.snapshot().size(), 16u);
}

}  // namespace
}  // namespace wbist::util
