#include "circuits/iscas.h"

#include <gtest/gtest.h>

#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "netlist/bench_io.h"

namespace wbist::circuits {
namespace {

using fault::FaultSet;
using fault::FaultSimulator;
using sim::TestSequence;

TEST(Iscas, S27Structure) {
  const auto nl = s27();
  const auto stats = nl.stats();
  EXPECT_EQ(stats.primary_inputs, 4u);
  EXPECT_EQ(stats.primary_outputs, 1u);
  EXPECT_EQ(stats.flip_flops, 3u);
  EXPECT_EQ(stats.logic_gates, 10u);
}

TEST(Iscas, S27GateMix) {
  // 2 inverters, 1 AND, 1 NAND, 2 OR, 4 NOR — the published composition.
  const auto nl = s27();
  std::size_t n_not = 0, n_and = 0, n_nand = 0, n_or = 0, n_nor = 0;
  for (netlist::NodeId id : nl.eval_order()) {
    switch (nl.node(id).type) {
      case netlist::GateType::kNot: ++n_not; break;
      case netlist::GateType::kAnd: ++n_and; break;
      case netlist::GateType::kNand: ++n_nand; break;
      case netlist::GateType::kOr: ++n_or; break;
      case netlist::GateType::kNor: ++n_nor; break;
      default: break;
    }
  }
  EXPECT_EQ(n_not, 2u);
  EXPECT_EQ(n_and, 1u);
  EXPECT_EQ(n_nand, 1u);
  EXPECT_EQ(n_or, 2u);
  EXPECT_EQ(n_nor, 4u);
}

TEST(Iscas, PaperSequenceShape) {
  const TestSequence T = s27_paper_sequence();
  EXPECT_EQ(T.length(), 10u);
  EXPECT_EQ(T.width(), 4u);
  // Spot-check against Table 1: T_0 = 0101011001, T_1 = 1010100000.
  EXPECT_EQ(T.row_string(0), "0111");
  EXPECT_EQ(T.row_string(4), "0100");
  EXPECT_EQ(T.row_string(9), "1011");
}

TEST(Iscas, PaperSequenceAchievesCompleteCoverage) {
  // The paper's central premise for the running example: Table 1's sequence
  // detects all 32 collapsed stuck-at faults of s27.
  const auto nl = s27();
  const FaultSet set = FaultSet::collapsed(nl);
  ASSERT_EQ(set.size(), 32u);
  FaultSimulator sim(nl, set);
  const auto det = sim.run_all(s27_paper_sequence());
  EXPECT_EQ(det.detected_count, 32u);
}

TEST(Iscas, TwoFaultsDetectedAtTimeNine) {
  // Section 2: "Two faults are detected at time unit 9, f10 and f12."
  const auto nl = s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const auto det = sim.run_all(s27_paper_sequence());
  std::size_t at_nine = 0;
  for (const auto t : det.detection_time)
    if (t == 9) ++at_nine;
  EXPECT_EQ(at_nine, 2u);
}

TEST(Iscas, WeightedSequenceDetectsNineFaults) {
  // Section 2: the weighted sequence of Table 2 "detects f10 as well as
  // eight additional faults" — nine in total.
  const auto nl = s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const auto det = sim.run_all(s27_paper_weighted_sequence());
  EXPECT_EQ(det.detected_count, 9u);
}

TEST(Iscas, WeightedSequenceCoversTimeNineFault) {
  // T_G was built around detection time 9; at least one of the two faults
  // with u_det = 9 must be among its detections.
  const auto nl = s27();
  const FaultSet set = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, set);
  const auto under_t = sim.run_all(s27_paper_sequence());
  const auto under_tg = sim.run_all(s27_paper_weighted_sequence());
  bool covered = false;
  for (fault::FaultId id = 0; id < set.size(); ++id)
    if (under_t.detection_time[id] == 9 && under_tg.detected(id))
      covered = true;
  EXPECT_TRUE(covered);
}

TEST(Iscas, BenchTextParsesToSameCircuit) {
  const auto a = s27();
  const auto b = netlist::read_bench(s27_bench_text(), "s27");
  EXPECT_EQ(a.node_count(), b.node_count());
}

}  // namespace
}  // namespace wbist::circuits
