#include "circuits/synth_gen.h"

#include <gtest/gtest.h>

#include "circuits/registry.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/good_sim.h"
#include "tgen/random_tgen.h"

namespace wbist::circuits {
namespace {

using netlist::Netlist;
using sim::Val3;

SynthProfile small_profile(std::uint64_t seed) {
  SynthProfile p;
  p.name = "toy";
  p.n_pi = 4;
  p.n_po = 2;
  p.n_ff = 3;
  p.n_gates = 24;
  p.seed = seed;
  return p;
}

TEST(SynthGen, MatchesProfileCounts) {
  const Netlist nl = generate_circuit(small_profile(1));
  const auto stats = nl.stats();
  EXPECT_EQ(stats.primary_inputs, 4u);
  EXPECT_EQ(stats.primary_outputs, 2u);
  EXPECT_EQ(stats.flip_flops, 3u);
  EXPECT_EQ(stats.logic_gates, 24u);
}

TEST(SynthGen, DeterministicPerSeed) {
  const Netlist a = generate_circuit(small_profile(7));
  const Netlist b = generate_circuit(small_profile(7));
  ASSERT_EQ(a.node_count(), b.node_count());
  for (netlist::NodeId id = 0; id < a.node_count(); ++id) {
    EXPECT_EQ(a.node(id).type, b.node(id).type);
    EXPECT_EQ(a.node(id).name, b.node(id).name);
    EXPECT_EQ(a.node(id).fanin, b.node(id).fanin);
  }
}

TEST(SynthGen, DifferentSeedsDiffer) {
  const Netlist a = generate_circuit(small_profile(1));
  const Netlist b = generate_circuit(small_profile(2));
  bool differs = a.node_count() != b.node_count();
  for (netlist::NodeId id = 0; !differs && id < a.node_count(); ++id)
    differs = a.node(id).fanin != b.node(id).fanin ||
              a.node(id).type != b.node(id).type;
  EXPECT_TRUE(differs);
}

TEST(SynthGen, SynchronizingInputInitializesState) {
  // Driving I0 = 0 for one cycle must flush the all-X state: every flip-flop
  // becomes binary, and stays binary afterwards.
  const Netlist nl = generate_circuit(small_profile(3));
  sim::GoodSimulator sim(nl);
  std::vector<Val3> vec(nl.primary_inputs().size(), Val3::kOne);
  vec[0] = Val3::kZero;  // I0 low
  sim.step(vec);
  for (const Val3 s : sim.state()) EXPECT_NE(s, Val3::kX);
  // Any follow-up vector keeps the state binary.
  std::vector<Val3> vec2(nl.primary_inputs().size(), Val3::kOne);
  sim.step(vec2);
  for (const Val3 s : sim.state()) EXPECT_NE(s, Val3::kX);
}

TEST(SynthGen, DegenerateProfilesRejected) {
  SynthProfile p = small_profile(1);
  p.n_pi = 0;
  EXPECT_THROW(generate_circuit(p), std::invalid_argument);
  p = small_profile(1);
  p.n_po = 0;
  EXPECT_THROW(generate_circuit(p), std::invalid_argument);
  p = small_profile(1);
  p.n_gates = p.n_ff;  // too small
  EXPECT_THROW(generate_circuit(p), std::invalid_argument);
}

TEST(SynthGen, RandomlyTestable) {
  // The generated circuits must be meaningfully testable, otherwise the
  // whole evaluation is vacuous: random sequences should detect > 40%.
  const Netlist nl = generate_circuit(small_profile(11));
  const auto set = fault::FaultSet::collapsed(nl);
  fault::FaultSimulator sim(nl, set);
  tgen::TgenConfig cfg;
  cfg.max_length = 1024;
  const auto res = tgen::generate_test_sequence(sim, cfg);
  EXPECT_GT(res.detected, set.size() * 2 / 5);
}

TEST(SynthGen, NoFlipFlopIsCompletelyDangling) {
  const Netlist nl = generate_circuit(small_profile(13));
  for (const netlist::NodeId ff : nl.flip_flops())
    EXPECT_EQ(nl.node(ff).fanin.size(), 1u);
}

class RegistryCircuits : public testing::TestWithParam<const char*> {};

TEST_P(RegistryCircuits, BuildsAndMatchesProfile) {
  const auto info = circuit_info(GetParam());
  ASSERT_TRUE(info.has_value());
  const Netlist nl = circuit_by_name(GetParam());
  const auto stats = nl.stats();
  EXPECT_EQ(stats.primary_inputs, info->profile.n_pi);
  EXPECT_EQ(stats.flip_flops, info->profile.n_ff);
  EXPECT_EQ(stats.logic_gates, info->profile.n_gates);
  EXPECT_EQ(nl.name(), info->name);
}

INSTANTIATE_TEST_SUITE_P(Paper, RegistryCircuits,
                         testing::Values("s27", "s208", "s298", "s344",
                                         "s382", "s386", "s400", "s420",
                                         "s444", "s526", "s641", "s820",
                                         "s1196", "s1423", "s1488"));

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(circuit_by_name("s9999"), std::invalid_argument);
  EXPECT_FALSE(circuit_info("s9999").has_value());
}

TEST(Registry, S27IsReal) {
  const auto info = circuit_info("s27");
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->synthetic);
}

TEST(Registry, KnownCircuitsListIsStable) {
  const auto all = known_circuits();
  ASSERT_GE(all.size(), 16u);
  EXPECT_EQ(all.front().name, "s27");
  for (const auto& info : all)
    EXPECT_TRUE(circuit_info(info.name).has_value());
}

}  // namespace
}  // namespace wbist::circuits
