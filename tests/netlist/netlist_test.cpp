#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace wbist::netlist {
namespace {

TEST(Netlist, BuildAndQueryTiny) {
  const Netlist nl = test::tiny_circuit();
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.flip_flops().size(), 1u);
  EXPECT_EQ(nl.eval_order().size(), 3u);
  EXPECT_TRUE(nl.finalized());
  EXPECT_EQ(nl.node(nl.find("out")).type, GateType::kNot);
}

TEST(Netlist, FindUnknownReturnsNoNode) {
  const Netlist nl = test::tiny_circuit();
  EXPECT_EQ(nl.find("nope"), kNoNode);
  EXPECT_NE(nl.find("ff"), kNoNode);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::invalid_argument);
  EXPECT_THROW(nl.add_dff("a"), std::invalid_argument);
}

TEST(Netlist, EmptyNameThrows) {
  Netlist nl;
  EXPECT_THROW(nl.add_input(""), std::invalid_argument);
}

TEST(Netlist, UnaryGateArityEnforced) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  EXPECT_THROW(nl.add_gate(GateType::kNot, "n", {a, b}),
               std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, "g", {}), std::invalid_argument);
  EXPECT_NO_THROW(nl.add_gate(GateType::kAnd, "g1", {a}));
}

TEST(Netlist, AddGateRejectsNonLogicTypes) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kDff, "d", {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kInput, "i", {a}),
               std::invalid_argument);
}

TEST(Netlist, UnconnectedDffFailsFinalize) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  nl.add_dff("ff");
  nl.mark_output(a);
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, DoubleDffConnectThrows) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId ff = nl.add_dff("ff", a);
  EXPECT_THROW(nl.connect_dff(ff, a), std::invalid_argument);
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  // g1 and g2 feed each other: not schedulable.
  const NodeId g1 = nl.add_gate(GateType::kAnd, "g1", {a, a});
  const NodeId g2 = nl.add_gate(GateType::kOr, "g2", {g1, g1});
  // Rewire g1's fanin to g2 by building a fresh netlist through the only
  // public path: declare fanin before definition is impossible with the
  // builder API, so emulate the cycle via the DFF-free pair below.
  (void)g2;
  Netlist cyclic;
  const NodeId x = cyclic.add_input("x");
  (void)x;
  // Manually construct a cycle: g -> h -> g.
  // The builder API orders creation, so the cycle must go through a
  // placeholder: create h first with fanin x, then g with fanin h, then it
  // is impossible to point h back at g. Sequential loops through DFFs are
  // legal instead; assert that.
  Netlist seq;
  const NodeId i = seq.add_input("i");
  const NodeId ff = seq.add_dff("ff");
  const NodeId g = seq.add_gate(GateType::kNor, "g", {i, ff});
  seq.connect_dff(ff, g);
  seq.mark_output(g);
  EXPECT_NO_THROW(seq.finalize());  // feedback through a DFF is fine
}

TEST(Netlist, NoOutputsFailsFinalize) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, StructureFrozenAfterFinalize) {
  Netlist nl = test::tiny_circuit();
  EXPECT_THROW(nl.add_input("new"), std::logic_error);
}

TEST(Netlist, StatsBeforeFinalizeThrows) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.stats(), std::logic_error);
}

TEST(Netlist, FanoutsComputed) {
  const Netlist nl = test::tiny_circuit();
  // "a" feeds n1 (AND) and n2 (XOR).
  const Node& a = nl.node(nl.find("a"));
  EXPECT_EQ(a.fanout.size(), 2u);
  const Node& n2 = nl.node(nl.find("n2"));
  EXPECT_EQ(n2.fanout.size(), 1u);
}

TEST(Netlist, LevelsAreTopological) {
  const Netlist nl = test::tiny_circuit();
  const auto levels = nl.levels();
  for (const NodeId id : nl.eval_order()) {
    for (const NodeId f : nl.node(id).fanin) {
      if (is_logic_gate(nl.node(f).type)) {
        EXPECT_LT(levels[f], levels[id]);
      }
    }
  }
}

TEST(Netlist, EvalOrderRespectsDependencies) {
  const Netlist nl = test::tiny_circuit();
  std::vector<bool> seen(nl.node_count(), false);
  for (const NodeId src : nl.primary_inputs()) seen[src] = true;
  for (const NodeId src : nl.flip_flops()) seen[src] = true;
  for (const NodeId id : nl.eval_order()) {
    for (const NodeId f : nl.node(id).fanin) EXPECT_TRUE(seen[f]);
    seen[id] = true;
  }
}

TEST(Netlist, StatsCountsLines) {
  const Netlist nl = test::tiny_circuit();
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.primary_inputs, 2u);
  EXPECT_EQ(s.primary_outputs, 1u);
  EXPECT_EQ(s.flip_flops, 1u);
  EXPECT_EQ(s.logic_gates, 3u);
  // Stems: 6 nodes. Branches: only "a" has fanout 2 -> 2 branches.
  EXPECT_EQ(s.lines, 6u + 2u);
  EXPECT_EQ(s.max_level, 2u);  // out = NOT(XOR(...)) is two levels deep
}

}  // namespace
}  // namespace wbist::netlist
