#include "netlist/bench_io.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"

namespace wbist::netlist {
namespace {

TEST(BenchIo, ParsesS27) {
  const Netlist nl = read_bench(circuits::s27_bench_text(), "s27");
  EXPECT_EQ(nl.name(), "s27");
  EXPECT_EQ(nl.primary_inputs().size(), 4u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.flip_flops().size(), 3u);
  EXPECT_EQ(nl.eval_order().size(), 10u);
  EXPECT_EQ(nl.node(nl.find("G13")).type, GateType::kNor);
  EXPECT_EQ(nl.node(nl.find("G9")).type, GateType::kNand);
}

TEST(BenchIo, RoundTrip) {
  const Netlist original = read_bench(circuits::s27_bench_text(), "s27");
  const std::string text = write_bench(original);
  const Netlist again = read_bench(text, "s27");
  EXPECT_EQ(again.node_count(), original.node_count());
  EXPECT_EQ(again.primary_inputs().size(), original.primary_inputs().size());
  EXPECT_EQ(again.flip_flops().size(), original.flip_flops().size());
  EXPECT_EQ(again.eval_order().size(), original.eval_order().size());
  // Same named nodes with the same types and fanin names.
  for (NodeId id = 0; id < original.node_count(); ++id) {
    const Node& n = original.node(id);
    const NodeId id2 = again.find(n.name);
    ASSERT_NE(id2, kNoNode) << n.name;
    const Node& n2 = again.node(id2);
    EXPECT_EQ(n2.type, n.type) << n.name;
    ASSERT_EQ(n2.fanin.size(), n.fanin.size()) << n.name;
    for (std::size_t k = 0; k < n.fanin.size(); ++k)
      EXPECT_EQ(again.node(n2.fanin[k]).name, original.node(n.fanin[k]).name);
    EXPECT_EQ(n2.is_primary_output, n.is_primary_output) << n.name;
  }
}

TEST(BenchIo, OutputOrderSurvivesRoundTrip) {
  // Output order is semantic (it defines the response vector); a write/read
  // cycle must not reorder it even when node ids change.
  const Netlist nl = read_bench(R"(
INPUT(a)
OUTPUT(z2)
OUTPUT(z0)
OUTPUT(z1)
z0 = NOT(a)
z1 = BUF(a)
z2 = AND(a, z0)
)");
  const Netlist again = read_bench(write_bench(nl));
  ASSERT_EQ(again.primary_outputs().size(), 3u);
  EXPECT_EQ(again.node(again.primary_outputs()[0]).name, "z2");
  EXPECT_EQ(again.node(again.primary_outputs()[1]).name, "z0");
  EXPECT_EQ(again.node(again.primary_outputs()[2]).name, "z1");
}

TEST(BenchIo, ForwardReferencesResolve) {
  // g uses h before h is defined.
  const Netlist nl = read_bench(R"(
INPUT(a)
OUTPUT(g)
g = AND(a, h)
h = NOT(a)
)");
  EXPECT_EQ(nl.eval_order().size(), 2u);
  EXPECT_EQ(nl.node(nl.find("g")).fanin.size(), 2u);
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  const Netlist nl = read_bench(R"(
# full line comment
INPUT(a)   # trailing comment

OUTPUT(b)
b = NOT(a)
)");
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
}

TEST(BenchIo, LowercaseKeywordsAccepted) {
  const Netlist nl = read_bench(R"(
input(a)
output(b)
b = not(a)
)");
  EXPECT_EQ(nl.node(nl.find("b")).type, GateType::kNot);
}

TEST(BenchIo, BuffAliasAccepted) {
  const Netlist nl = read_bench(R"(
INPUT(a)
OUTPUT(b)
b = BUFF(a)
)");
  EXPECT_EQ(nl.node(nl.find("b")).type, GateType::kBuf);
}

TEST(BenchIo, UnknownGateTypeReportsLine) {
  try {
    read_bench("INPUT(a)\nOUTPUT(b)\nb = FOO(a)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(BenchIo, UndefinedSignalThrows) {
  EXPECT_THROW(read_bench("INPUT(a)\nOUTPUT(b)\nb = NOT(zzz)\n"),
               std::runtime_error);
}

TEST(BenchIo, UndefinedOutputThrows) {
  EXPECT_THROW(read_bench("INPUT(a)\nOUTPUT(zzz)\na2 = NOT(a)\n"),
               std::runtime_error);
}

TEST(BenchIo, CombinationalCycleThrows) {
  EXPECT_THROW(read_bench(R"(
INPUT(a)
OUTPUT(g)
g = AND(a, h)
h = NOT(g)
)"),
               std::runtime_error);
}

TEST(BenchIo, MalformedAssignmentThrows) {
  EXPECT_THROW(read_bench("INPUT(a)\nb = NOT a\nOUTPUT(b)\n"),
               std::runtime_error);
  EXPECT_THROW(read_bench("INPUT(a)\n= NOT(a)\n"), std::runtime_error);
  EXPECT_THROW(read_bench("INPUT(a)\nb = (a)\n"), std::runtime_error);
}

TEST(BenchIo, DffWithTwoInputsThrows) {
  EXPECT_THROW(read_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n"),
               std::runtime_error);
}

TEST(BenchIo, FileIoRoundTrip) {
  const Netlist nl = read_bench(circuits::s27_bench_text(), "s27");
  const std::string path = testing::TempDir() + "/wbist_s27.bench";
  write_bench_file(nl, path);
  const Netlist again = read_bench_file(path);
  EXPECT_EQ(again.node_count(), nl.node_count());
  EXPECT_EQ(again.name(), "wbist_s27");  // name from filename
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/file.bench"),
               std::runtime_error);
}

// The duplicate / self-loop diagnostics below pin the parse-level checks:
// errors must carry the offending line number and, for duplicates, the line
// of the first definition, instead of surfacing as netlist-level exceptions
// (or, for duplicate OUTPUT, being silently accepted).

TEST(BenchIo, DuplicateDefinitionReportsBothLines) {
  try {
    read_bench("INPUT(a)\nb = NOT(a)\nb = BUF(a)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate definition of 'b'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("first defined at line 2"), std::string::npos) << msg;
  }
}

TEST(BenchIo, DuplicateInputThrows) {
  try {
    read_bench("INPUT(a)\nINPUT(a)\nb = NOT(a)\nOUTPUT(b)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate definition of 'a'"), std::string::npos)
        << msg;
  }
}

TEST(BenchIo, InputRedefinedAsGateThrows) {
  EXPECT_THROW(read_bench("INPUT(a)\nINPUT(b)\na = NOT(b)\nOUTPUT(a)\n"),
               std::runtime_error);
}

TEST(BenchIo, DuplicateOutputDeclarationThrows) {
  try {
    read_bench("INPUT(a)\nOUTPUT(b)\nOUTPUT(b)\nb = NOT(a)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate OUTPUT declaration of 'b'"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("first declared at line 2"), std::string::npos) << msg;
  }
}

TEST(BenchIo, SelfLoopDiagnosedAsSelfLoopNotCycle) {
  try {
    read_bench("INPUT(a)\nOUTPUT(b)\nb = AND(a, b)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("self-loop: 'b' is its own fanin"), std::string::npos)
        << msg;
    EXPECT_EQ(msg.find("cycle"), std::string::npos) << msg;
  }
}

TEST(BenchIo, DffSelfLoopIsLegal) {
  // A flip-flop feeding itself crosses a clock boundary — not a self-loop.
  const Netlist nl = read_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(q)\n");
  EXPECT_EQ(nl.flip_flops().size(), 1u);
}

TEST(BenchIo, GenuineCycleNamesItsMembers) {
  try {
    read_bench(
        "INPUT(a)\nOUTPUT(g)\ng = AND(a, h)\nh = NOT(g)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("combinational cycle involving"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("'g'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'h'"), std::string::npos) << msg;
  }
}

TEST(BenchIo, UndefinedFaninDiagnosedBeforeCycle) {
  // An unresolvable fanin must be reported as an undefined signal, not
  // folded into a bogus "combinational cycle" diagnostic.
  try {
    read_bench("INPUT(a)\nOUTPUT(c)\nb = NOT(zzz)\nc = AND(a, b)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("undefined signal 'zzz' in definition of 'b'"),
              std::string::npos)
        << msg;
    EXPECT_EQ(msg.find("cycle"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace wbist::netlist
