#include "netlist/verilog_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "circuits/iscas.h"
#include "core/generator_hw.h"
#include "testutil.h"

namespace wbist::netlist {
namespace {

TEST(VerilogIo, EmitsModuleSkeleton) {
  const std::string v = write_verilog(circuits::s27());
  EXPECT_NE(v.find("module s27"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input clk;"), std::string::npos);
  EXPECT_NE(v.find("input G0;"), std::string::npos);
  EXPECT_NE(v.find("output G17;"), std::string::npos);
}

TEST(VerilogIo, GateOperators) {
  const std::string v = write_verilog(circuits::s27());
  // G9 = NAND(G16, G15); G11 = NOR(G5, G9); G14 = NOT(G0).
  EXPECT_NE(v.find("assign G9 = ~(G16 & G15);"), std::string::npos);
  EXPECT_NE(v.find("assign G11 = ~(G5 | G9);"), std::string::npos);
  EXPECT_NE(v.find("assign G14 = ~G0;"), std::string::npos);
}

TEST(VerilogIo, FlipFlopsInAlwaysBlock) {
  const std::string v = write_verilog(circuits::s27());
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("G5 <= G10;"), std::string::npos);
  EXPECT_NE(v.find("reg G5;"), std::string::npos);
}

TEST(VerilogIo, XorAndBufSupported) {
  const Netlist nl = test::tiny_circuit();
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("assign n2 = a ^ ff;"), std::string::npos);
}

TEST(VerilogIo, EveryGateIsAssigned) {
  const Netlist nl = circuits::s27();
  const std::string v = write_verilog(nl);
  for (const NodeId id : nl.eval_order())
    EXPECT_NE(v.find("assign " + nl.node(id).name + " = "),
              std::string::npos)
        << nl.node(id).name;
}

TEST(VerilogIo, GeneratorNetlistExports) {
  core::WeightAssignment w;
  w.per_input = {core::Subsequence::parse("01"),
                 core::Subsequence::parse("100")};
  const auto hw = core::build_generator({{w}}, 8);
  const std::string v = write_verilog(hw.netlist);
  EXPECT_NE(v.find("module tg_generator"), std::string::npos);
  EXPECT_NE(v.find("output TG0;"), std::string::npos);
  EXPECT_NE(v.find("output TG1;"), std::string::npos);
}

TEST(VerilogIo, UnfinalizedRejected) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(write_verilog(nl), std::invalid_argument);
}

TEST(VerilogIo, FileWrite) {
  const std::string path = testing::TempDir() + "/wbist_s27.v";
  write_verilog_file(circuits::s27(), path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

}  // namespace
}  // namespace wbist::netlist
