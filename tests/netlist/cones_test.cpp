// FanoutCones (iterative fixed-point over bitsets) against an obviously
// correct oracle: breadth-first closure of the structural fanout relation,
// flowing *through* flip-flops (a DFF consumes its D signal and the DFF's
// own fanout continues the cone one cycle later). Every bit of every cone,
// plus the popcount and first-gate-position summaries the fault simulator
// packs groups by, must match exactly.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "circuits/registry.h"
#include "circuits/synth_gen.h"
#include "netlist/cones.h"
#include "netlist/netlist.h"
#include "testutil.h"

namespace wbist::netlist {
namespace {

/// consumers[x] = every node with x among its fanins (DFFs included: their
/// single fanin is the D signal).
std::vector<std::vector<NodeId>> consumer_lists(const Netlist& nl) {
  std::vector<std::vector<NodeId>> consumers(nl.node_count());
  for (NodeId id = 0; id < nl.node_count(); ++id)
    for (const NodeId f : nl.node(id).fanin) consumers[f].push_back(id);
  return consumers;
}

/// Oracle cone: BFS closure of the consumer relation from `root`, root
/// included.
std::vector<bool> bfs_cone(const Netlist& nl,
                           const std::vector<std::vector<NodeId>>& consumers,
                           NodeId root) {
  std::vector<bool> in(nl.node_count(), false);
  std::queue<NodeId> work;
  in[root] = true;
  work.push(root);
  while (!work.empty()) {
    const NodeId n = work.front();
    work.pop();
    for (const NodeId c : consumers[n])
      if (!in[c]) {
        in[c] = true;
        work.push(c);
      }
  }
  return in;
}

void expect_cones_match_bfs(const Netlist& nl) {
  const FanoutCones cones(nl);
  ASSERT_EQ(cones.node_count(), nl.node_count());
  ASSERT_EQ(cones.words(), (nl.node_count() + 63) / 64);
  const auto consumers = consumer_lists(nl);
  const auto order = nl.eval_order();

  for (NodeId root = 0; root < nl.node_count(); ++root) {
    const std::vector<bool> want = bfs_cone(nl, consumers, root);
    std::uint32_t want_pop = 0;
    for (NodeId n = 0; n < nl.node_count(); ++n) {
      EXPECT_EQ(cones.contains(root, n), want[n])
          << nl.name() << ": cone(" << nl.node(root).name << ") vs "
          << nl.node(n).name;
      want_pop += want[n];
    }
    EXPECT_EQ(cones.popcount(root), want_pop) << nl.node(root).name;

    std::uint32_t want_first = FanoutCones::kNoGate;
    for (std::uint32_t pos = 0; pos < order.size(); ++pos)
      if (want[order[pos]]) {
        want_first = pos;
        break;
      }
    EXPECT_EQ(cones.first_gate_pos(root), want_first) << nl.node(root).name;
  }
}

TEST(FanoutCones, MatchesBfsOnTinyCircuit) {
  expect_cones_match_bfs(test::tiny_circuit());
}

TEST(FanoutCones, MatchesBfsOnS27) {
  expect_cones_match_bfs(circuits::circuit_by_name("s27"));
}

TEST(FanoutCones, FixedPointConvergesInFewPasses) {
  // Pass count is bounded by the flip-flop dependency depth — single
  // digits on the real benchmarks, never the node count.
  const Netlist nl = circuits::circuit_by_name("s298");
  const FanoutCones cones(nl);
  EXPECT_GE(cones.passes(), 1u);
  EXPECT_LE(cones.passes(), 12u);
}

TEST(FanoutCones, MatchesBfsOnS298) {
  expect_cones_match_bfs(circuits::circuit_by_name("s298"));
}

TEST(FanoutCones, MatchesBfsOnSyntheticCircuits) {
  for (const std::uint64_t seed : {7u, 19u, 83u}) {
    circuits::SynthProfile profile;
    profile.name = "cones_synth";
    profile.n_pi = 5;
    profile.n_po = 3;
    profile.n_ff = 6;
    profile.n_gates = 60;
    profile.seed = seed;
    expect_cones_match_bfs(circuits::generate_circuit(profile));
  }
}

TEST(FanoutCones, ConeOfAnOutputGateIsItself) {
  // A PO gate nothing reads has the singleton cone {itself}, and its
  // first gate is its own eval position.
  const Netlist nl = test::tiny_circuit();
  const NodeId out = nl.find("out");
  const FanoutCones cones(nl);
  EXPECT_EQ(cones.popcount(out), 1u);
  EXPECT_TRUE(cones.contains(out, out));
  const auto order = nl.eval_order();
  ASSERT_NE(cones.first_gate_pos(out), FanoutCones::kNoGate);
  EXPECT_EQ(order[cones.first_gate_pos(out)], out);
}

TEST(FanoutCones, SequentialFeedbackClosesAcrossCycles) {
  // ff feeds n2 which feeds out; n1 feeds ff. The cone of n1 must reach
  // out *through* the flip-flop even though no combinational path exists.
  const Netlist nl = test::tiny_circuit();
  const FanoutCones cones(nl);
  EXPECT_TRUE(cones.contains(nl.find("n1"), nl.find("out")));
  EXPECT_TRUE(cones.contains(nl.find("n1"), nl.find("ff")));
  EXPECT_FALSE(cones.contains(nl.find("out"), nl.find("n1")));
}

}  // namespace
}  // namespace wbist::netlist
