#include "netlist/compose.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "sim/good_sim.h"
#include "testutil.h"

namespace wbist::netlist {
namespace {

using sim::Val3;

TEST(Compose, AppendsAndBinds) {
  // Wrap tiny_circuit: outer inputs feed it through inverters.
  const Netlist inner = test::tiny_circuit();
  Netlist outer("wrapper");
  const NodeId a = outer.add_input("A");
  const NodeId b = outer.add_input("B");
  const NodeId na = outer.add_gate(GateType::kNot, "nA", {a});
  const NodeId nb = outer.add_gate(GateType::kNot, "nB", {b});

  const std::vector<PortBinding> bind{{"a", na}, {"b", nb}};
  const auto map = append_netlist(outer, inner, "U0_", bind);
  outer.mark_output(map[inner.find("out")]);
  outer.finalize();

  EXPECT_NE(outer.find("U0_out"), kNoNode);
  EXPECT_NE(outer.find("U0_ff"), kNoNode);
  EXPECT_EQ(outer.find("U0_a"), kNoNode);  // inputs are not copied

  // Behaviour: wrapper(A, B) == inner(!A, !B), cycle by cycle.
  sim::GoodSimulator inner_sim(inner);
  sim::GoodSimulator outer_sim(outer);
  const auto seq = test::random_sequence(12, 2, 5);
  for (std::size_t u = 0; u < seq.length(); ++u) {
    const Val3 va = seq.at(u, 0);
    const Val3 vb = seq.at(u, 1);
    const auto inv = [](Val3 v) {
      return v == Val3::kZero ? Val3::kOne : Val3::kZero;
    };
    inner_sim.step(std::vector<Val3>{inv(va), inv(vb)});
    outer_sim.step(std::vector<Val3>{va, vb});
    EXPECT_EQ(outer_sim.outputs()[0], inner_sim.outputs()[0]) << "u=" << u;
  }
}

TEST(Compose, NodeMapCoversAllNodes) {
  const Netlist inner = circuits::s27();
  Netlist outer;
  std::vector<PortBinding> bind;
  std::vector<NodeId> drivers;
  for (const NodeId pi : inner.primary_inputs()) {
    const NodeId d = outer.add_input("D_" + inner.node(pi).name);
    bind.push_back({inner.node(pi).name, d});
    drivers.push_back(d);
  }
  const auto map = append_netlist(outer, inner, "X_", bind);
  for (NodeId id = 0; id < inner.node_count(); ++id)
    EXPECT_NE(map[id], kNoNode);
  // Bound inputs map to their drivers.
  for (std::size_t i = 0; i < drivers.size(); ++i)
    EXPECT_EQ(map[inner.primary_inputs()[i]], drivers[i]);
}

TEST(Compose, MissingBindingThrows) {
  const Netlist inner = test::tiny_circuit();
  Netlist outer;
  const NodeId a = outer.add_input("A");
  const std::vector<PortBinding> bind{{"a", a}};  // "b" unbound
  EXPECT_THROW(append_netlist(outer, inner, "U_", bind),
               std::invalid_argument);
}

TEST(Compose, UnknownInnerInputThrows) {
  const Netlist inner = test::tiny_circuit();
  Netlist outer;
  const NodeId a = outer.add_input("A");
  const std::vector<PortBinding> bind{
      {"a", a}, {"b", a}, {"nope", a}};
  EXPECT_THROW(append_netlist(outer, inner, "U_", bind),
               std::invalid_argument);
}

TEST(Compose, BindingNonInputThrows) {
  const Netlist inner = test::tiny_circuit();
  Netlist outer;
  const NodeId a = outer.add_input("A");
  const std::vector<PortBinding> bind{{"a", a}, {"n1", a}};
  EXPECT_THROW(append_netlist(outer, inner, "U_", bind),
               std::invalid_argument);
}

TEST(Compose, DuplicateBindingThrows) {
  const Netlist inner = test::tiny_circuit();
  Netlist outer;
  const NodeId a = outer.add_input("A");
  const std::vector<PortBinding> bind{{"a", a}, {"a", a}, {"b", a}};
  EXPECT_THROW(append_netlist(outer, inner, "U_", bind),
               std::invalid_argument);
}

TEST(Compose, FinalizedDestinationRejected) {
  const Netlist inner = test::tiny_circuit();
  Netlist outer = test::tiny_circuit();  // finalized
  EXPECT_THROW(append_netlist(outer, inner, "U_", {}),
               std::invalid_argument);
}

TEST(Compose, TwoInstancesCoexist) {
  const Netlist inner = test::tiny_circuit();
  Netlist outer;
  const NodeId a = outer.add_input("A");
  const NodeId b = outer.add_input("B");
  const std::vector<PortBinding> bind{{"a", a}, {"b", b}};
  const auto m0 = append_netlist(outer, inner, "U0_", bind);
  const auto m1 = append_netlist(outer, inner, "U1_", bind);
  const NodeId x = outer.add_gate(
      GateType::kXor, "diff", {m0[inner.find("out")], m1[inner.find("out")]});
  outer.mark_output(x);
  outer.finalize();

  // Identical instances with identical inputs: XOR of outputs is 0 once
  // both initialize.
  sim::GoodSimulator s(outer);
  s.step(std::vector<Val3>{Val3::kOne, Val3::kOne});
  s.step(std::vector<Val3>{Val3::kZero, Val3::kOne});
  EXPECT_EQ(s.outputs()[0], Val3::kZero);
}

}  // namespace
}  // namespace wbist::netlist
