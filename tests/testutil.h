// Shared helpers for the test suite: tiny hand-built circuits, random
// sequences, and a deliberately simple scalar reference fault simulator used
// to cross-validate the word-parallel production simulator.
#pragma once

#include <optional>
#include <vector>

#include "fault/fault.h"
#include "fault/fault_list.h"
#include "netlist/netlist.h"
#include "sim/logic.h"
#include "sim/sequence.h"
#include "util/rng.h"

namespace wbist::test {

/// A 2-input / 1-DFF / 3-gate toy circuit:
///   n1 = AND(a, b); ff = DFF(n1); n2 = XOR(a, ff); out = NOT(n2) [PO]
inline netlist::Netlist tiny_circuit() {
  netlist::Netlist nl("tiny");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto ff = nl.add_dff("ff");
  const auto n1 = nl.add_gate(netlist::GateType::kAnd, "n1", {a, b});
  nl.connect_dff(ff, n1);
  const auto n2 = nl.add_gate(netlist::GateType::kXor, "n2", {a, ff});
  const auto out = nl.add_gate(netlist::GateType::kNot, "out", {n2});
  nl.mark_output(out);
  nl.finalize();
  return nl;
}

/// Uniformly random fully specified sequence.
inline sim::TestSequence random_sequence(std::size_t length, std::size_t width,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  sim::TestSequence seq(length, width);
  for (std::size_t u = 0; u < length; ++u)
    for (std::size_t i = 0; i < width; ++i)
      seq.set(u, i, rng.next_bit() ? sim::Val3::kOne : sim::Val3::kZero);
  return seq;
}

/// Scalar three-valued reference fault simulator: simulates the single fault
/// `f` over `seq` from the all-X state and returns the first detection time
/// (definite difference at a PO or listed observation node), or nullopt.
///
/// Written for obvious correctness, not speed: one value per signal, gate
/// evaluation through eval_gate_scalar, fault injection by direct override.
inline std::optional<std::size_t> reference_detect(
    const netlist::Netlist& nl, const fault::Fault& f,
    const sim::TestSequence& seq,
    const std::vector<netlist::NodeId>& observation = {}) {
  using netlist::GateType;
  using netlist::NodeId;
  using sim::Val3;

  const Val3 stuck = f.stuck_at_one ? Val3::kOne : Val3::kZero;
  const auto ffs = nl.flip_flops();

  std::vector<Val3> good(nl.node_count(), Val3::kX);
  std::vector<Val3> bad(nl.node_count(), Val3::kX);
  std::vector<Val3> good_state(ffs.size(), Val3::kX);
  std::vector<Val3> bad_state(ffs.size(), Val3::kX);

  const auto eval = [&](std::vector<Val3>& vals, bool faulty,
                        std::span<const Val3> pi,
                        std::vector<Val3>& state) {
    const auto pis = nl.primary_inputs();
    for (std::size_t i = 0; i < pis.size(); ++i) vals[pis[i]] = pi[i];
    for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = state[i];
    if (faulty && f.pin == fault::kStemPin) {
      const GateType t = nl.node(f.node).type;
      if (t == GateType::kInput || t == GateType::kDff) vals[f.node] = stuck;
    }
    for (NodeId id : nl.eval_order()) {
      const netlist::Node& n = nl.node(id);
      std::vector<Val3> in;
      for (std::size_t p = 0; p < n.fanin.size(); ++p) {
        Val3 v = vals[n.fanin[p]];
        if (faulty && f.node == id && f.pin == static_cast<std::int16_t>(p))
          v = stuck;
        in.push_back(v);
      }
      vals[id] = sim::eval_gate_scalar(n.type, in);
      if (faulty && f.node == id && f.pin == fault::kStemPin)
        vals[id] = stuck;
    }
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      Val3 v = vals[nl.node(ffs[i]).fanin[0]];
      if (faulty && f.node == ffs[i] && f.pin == 0) v = stuck;
      state[i] = v;
    }
  };

  std::vector<NodeId> observed(nl.primary_outputs().begin(),
                               nl.primary_outputs().end());
  observed.insert(observed.end(), observation.begin(), observation.end());

  for (std::size_t u = 0; u < seq.length(); ++u) {
    eval(good, false, seq.row(u), good_state);
    eval(bad, true, seq.row(u), bad_state);
    for (NodeId po : observed) {
      const Val3 g = good[po];
      const Val3 b = bad[po];
      if (g != Val3::kX && b != Val3::kX && g != b) return u;
    }
  }
  return std::nullopt;
}

}  // namespace wbist::test
