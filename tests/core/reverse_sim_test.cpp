#include "core/reverse_sim.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "core/procedure.h"
#include "fault/fault_list.h"

namespace wbist::core {
namespace {

using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;

struct S27Flow {
  S27Flow()
      : nl(circuits::s27()), faults(FaultSet::collapsed(nl)), sim(nl, faults) {
    T = circuits::s27_paper_sequence();
    det = sim.run_all(T);
    for (FaultId id = 0; id < faults.size(); ++id)
      if (det.detection_time[id] != DetectionResult::kUndetected)
        targets.push_back(id);
    ProcedureConfig cfg;
    cfg.sequence_length = 100;
    proc = select_weight_assignments(sim, T, det.detection_time, cfg);
  }

  netlist::Netlist nl;
  FaultSet faults;
  FaultSimulator sim;
  sim::TestSequence T;
  DetectionResult det;
  std::vector<FaultId> targets;
  ProcedureResult proc;
};

TEST(ReverseSim, PreservesCoverage) {
  S27Flow f;
  const ReverseSimResult pruned = reverse_order_prune(
      f.sim, f.proc.omega, f.targets, f.proc.sequence_length);
  EXPECT_EQ(pruned.detected.size(), f.targets.size());
  EXPECT_EQ(pruned.detected, f.targets);  // both sorted ascending
}

TEST(ReverseSim, ResultIsSubsetInOriginalOrder) {
  S27Flow f;
  const ReverseSimResult pruned = reverse_order_prune(
      f.sim, f.proc.omega, f.targets, f.proc.sequence_length);
  EXPECT_LE(pruned.omega.size(), f.proc.omega.size());
  std::size_t pos = 0;
  for (const WeightAssignment& w : pruned.omega) {
    while (pos < f.proc.omega.size() && !(f.proc.omega[pos] == w)) ++pos;
    ASSERT_LT(pos, f.proc.omega.size()) << "not a subsequence of omega";
    ++pos;
  }
}

TEST(ReverseSim, RemovesDuplicatedAssignments) {
  // Duplicating Ω must prune at least the redundant copies.
  S27Flow f;
  std::vector<WeightAssignment> doubled = f.proc.omega;
  doubled.insert(doubled.end(), f.proc.omega.begin(), f.proc.omega.end());
  const ReverseSimResult pruned =
      reverse_order_prune(f.sim, doubled, f.targets, f.proc.sequence_length);
  EXPECT_LE(pruned.omega.size(), f.proc.omega.size());
  EXPECT_EQ(pruned.detected.size(), f.targets.size());
}

TEST(ReverseSim, NoSurvivorIsRedundant) {
  // Removing any survivor must lose coverage (minimality in the
  // reverse-order sense: each kept sequence detects a fault no *later*
  // kept sequence detects; verify the weaker global property that each
  // survivor contributes at least one unique fault vs all the others).
  S27Flow f;
  const ReverseSimResult pruned = reverse_order_prune(
      f.sim, f.proc.omega, f.targets, f.proc.sequence_length);

  // Detected sets per survivor.
  std::vector<std::vector<bool>> dsets;
  for (const WeightAssignment& w : pruned.omega) {
    const auto d = f.sim.run(w.expand(f.proc.sequence_length), f.targets);
    std::vector<bool> bits(f.targets.size());
    for (std::size_t k = 0; k < f.targets.size(); ++k) bits[k] = d.detected(k);
    dsets.push_back(std::move(bits));
  }
  // Survivors kept by reverse order: the i-th (in generation order) must
  // detect some fault none of the later survivors detects.
  for (std::size_t i = 0; i < dsets.size(); ++i) {
    bool unique = false;
    for (std::size_t k = 0; k < f.targets.size() && !unique; ++k) {
      if (!dsets[i][k]) continue;
      bool later_covers = false;
      for (std::size_t j = i + 1; j < dsets.size(); ++j)
        later_covers |= dsets[j][k];
      unique = !later_covers;
    }
    EXPECT_TRUE(unique) << "assignment " << i << " is redundant";
  }
}

TEST(ReverseSim, ThreadCountDoesNotChangeResult) {
  // Pruning is a deterministic reduction over fault-simulation results; the
  // worker count used for the underlying simulations must not leak into the
  // kept set or the covered faults.
  S27Flow f;
  const ReverseSimResult serial = reverse_order_prune(
      f.sim, f.proc.omega, f.targets, f.proc.sequence_length, 1);
  const ReverseSimResult parallel = reverse_order_prune(
      f.sim, f.proc.omega, f.targets, f.proc.sequence_length, 4);
  EXPECT_EQ(serial.detected, parallel.detected);
  ASSERT_EQ(serial.omega.size(), parallel.omega.size());
  for (std::size_t i = 0; i < serial.omega.size(); ++i)
    EXPECT_TRUE(serial.omega[i] == parallel.omega[i]) << "assignment " << i;
}

TEST(ReverseSim, EmptyOmega) {
  S27Flow f;
  const ReverseSimResult pruned =
      reverse_order_prune(f.sim, {}, f.targets, 100);
  EXPECT_TRUE(pruned.omega.empty());
  EXPECT_TRUE(pruned.detected.empty());
}

TEST(ReverseSim, EmptyTargets) {
  S27Flow f;
  const ReverseSimResult pruned =
      reverse_order_prune(f.sim, f.proc.omega, {}, 100);
  EXPECT_TRUE(pruned.omega.empty());
}

}  // namespace
}  // namespace wbist::core
