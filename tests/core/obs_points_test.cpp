#include "core/obs_points.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "core/procedure.h"
#include "fault/fault_list.h"
#include "tgen/random_tgen.h"

namespace wbist::core {
namespace {

using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;

struct ObsFixture {
  explicit ObsFixture(const char* name, std::size_t lg = 200)
      : nl(circuits::circuit_by_name(name)),
        faults(FaultSet::collapsed(nl)),
        sim(nl, faults) {
    tgen::TgenConfig tc;
    tc.max_length = 512;
    const auto gen = tgen::generate_test_sequence(sim, tc);
    for (FaultId id = 0; id < faults.size(); ++id)
      if (gen.detection_time[id] != DetectionResult::kUndetected)
        targets.push_back(id);
    ProcedureConfig pc;
    pc.sequence_length = lg;
    proc = select_weight_assignments(sim, gen.sequence, gen.detection_time,
                                     pc);
    cfg.sequence_length = proc.sequence_length;
  }

  netlist::Netlist nl;
  FaultSet faults;
  FaultSimulator sim;
  std::vector<FaultId> targets;
  ProcedureResult proc;
  ObsTradeoffConfig cfg;
};

TEST(ObsPoints, TradeoffShapeOnS27) {
  ObsFixture f("s27");
  const auto result =
      observation_point_tradeoff(f.sim, f.proc.omega, f.targets, f.cfg);
  ASSERT_FALSE(result.rows.empty());
  EXPECT_EQ(result.total_targets, f.targets.size());

  // n_seq strictly increases; fe_before non-decreasing.
  for (std::size_t k = 1; k < result.rows.size(); ++k) {
    EXPECT_GT(result.rows[k].n_seq, result.rows[k - 1].n_seq);
    EXPECT_GE(result.rows[k].fe_before, result.rows[k - 1].fe_before);
  }
  // The final row reaches 100% without observation points (Ω achieves full
  // coverage of its own universe by construction).
  const ObsRow& last = result.rows.back();
  EXPECT_DOUBLE_EQ(last.fe_before, 100.0);
  EXPECT_EQ(last.n_obs, 0u);
}

TEST(ObsPoints, ObservationPointsActuallyDetect) {
  // For each row: re-simulate the selected prefix with the chosen
  // observation points; the achieved efficiency must match fe_after.
  ObsFixture f("s27");
  const auto result =
      observation_point_tradeoff(f.sim, f.proc.omega, f.targets, f.cfg);

  // Recompute the greedy order the same way the implementation does: rows
  // expose only sizes, so validate via the strongest invariant — re-running
  // the first row's prefix plus its OPs detects >= fe_after fraction.
  for (const ObsRow& row : result.rows) {
    if (row.n_obs == 0) continue;
    // The prefix is not exposed directly; validate achievability instead:
    // simulating ALL of Ω's sequences with the row's observation points
    // must detect at least fe_after of the universe.
    std::vector<bool> covered(f.targets.size(), false);
    fault::FaultSimOptions opt;
    opt.observation_points = row.observation_points;
    for (const WeightAssignment& w : f.proc.omega) {
      const auto det = f.sim.run(w.expand(f.cfg.sequence_length), f.targets,
                                 opt);
      for (std::size_t k = 0; k < f.targets.size(); ++k)
        if (det.detected(k)) covered[k] = true;
    }
    const auto n = static_cast<double>(
        std::count(covered.begin(), covered.end(), true));
    const double fe =
        100.0 * n / static_cast<double>(result.total_targets);
    EXPECT_GE(fe + 1e-9, row.fe_after);
  }
}

TEST(ObsPoints, FewerSequencesNeedMoreObservationPoints) {
  // The paper's headline tradeoff. Greedy coverage means the first row has
  // the fewest sequences and (weakly) the most observation points.
  ObsFixture f("s208");
  const auto result =
      observation_point_tradeoff(f.sim, f.proc.omega, f.targets, f.cfg);
  if (result.rows.size() >= 2) {
    EXPECT_GE(result.rows.front().n_obs, result.rows.back().n_obs);
  }
}

TEST(ObsPoints, SubsequenceStatsGrowWithPrefix) {
  ObsFixture f("s27");
  const auto result =
      observation_point_tradeoff(f.sim, f.proc.omega, f.targets, f.cfg);
  for (std::size_t k = 1; k < result.rows.size(); ++k) {
    EXPECT_GE(result.rows[k].n_subs, result.rows[k - 1].n_subs);
    EXPECT_GE(result.rows[k].max_len, result.rows[k - 1].max_len);
  }
}

TEST(ObsPoints, ThresholdFiltersRows) {
  ObsFixture f("s27");
  ObsTradeoffConfig strict = f.cfg;
  strict.min_final_fe = 1.0;  // only rows reaching 100% after OPs
  const auto result =
      observation_point_tradeoff(f.sim, f.proc.omega, f.targets, strict);
  for (const ObsRow& row : result.rows)
    EXPECT_DOUBLE_EQ(row.fe_after, 100.0);
}

TEST(ObsPoints, EmptyInputsAreSafe) {
  ObsFixture f("s27");
  const auto none =
      observation_point_tradeoff(f.sim, {}, f.targets, f.cfg);
  EXPECT_TRUE(none.rows.empty());
  const auto no_targets =
      observation_point_tradeoff(f.sim, f.proc.omega, {}, f.cfg);
  EXPECT_TRUE(no_targets.rows.empty());
}

}  // namespace
}  // namespace wbist::core
