#include "core/generator_hw.h"

#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "sim/good_sim.h"

namespace wbist::core {
namespace {

using sim::Val3;

WeightAssignment make_assignment(std::initializer_list<const char*> texts) {
  WeightAssignment w;
  for (const char* t : texts) w.per_input.push_back(Subsequence::parse(t));
  return w;
}

/// Simulate the generator netlist: one reset cycle, then `cycles` free-run
/// cycles; returns the TG output streams (one string per CUT input).
std::vector<std::string> run_generator(const GeneratorHardware& hw,
                                       std::size_t cycles) {
  sim::GoodSimulator sim(hw.netlist);
  const std::size_t n_outputs = hw.netlist.primary_outputs().size();
  std::vector<std::string> streams(n_outputs);

  sim.step(std::vector<Val3>{Val3::kOne});  // reset cycle (outputs ignored)
  for (std::size_t t = 0; t < cycles; ++t) {
    sim.step(std::vector<Val3>{Val3::kZero});
    const auto out = sim.outputs();
    for (std::size_t i = 0; i < n_outputs; ++i)
      streams[i] += sim::to_char(out[i]);
  }
  return streams;
}

TEST(GeneratorHw, SingleAssignmentStreamsMatchExpansion) {
  const WeightAssignment w = make_assignment({"01", "0", "100", "1"});
  const GeneratorHardware hw = build_generator({{w}}, 12);
  EXPECT_EQ(hw.session_length, 16u);  // next power of two
  EXPECT_EQ(hw.session_count, 1u);

  const auto streams = run_generator(hw, hw.session_length);
  const auto expect = w.expand(hw.session_length);
  for (std::size_t i = 0; i < w.per_input.size(); ++i) {
    std::string want;
    for (std::size_t u = 0; u < hw.session_length; ++u)
      want += sim::to_char(expect.at(u, i));
    EXPECT_EQ(streams[i], want) << "input " << i;
  }
}

TEST(GeneratorHw, MultiSessionSwitchesAssignments) {
  const std::vector<WeightAssignment> omega{
      make_assignment({"01", "0"}),
      make_assignment({"1", "100"}),
      make_assignment({"110", "10"}),
  };
  const GeneratorHardware hw = build_generator(omega, 8);
  ASSERT_EQ(hw.session_length, 8u);
  const auto streams = run_generator(hw, hw.session_length * omega.size());

  for (std::size_t j = 0; j < omega.size(); ++j) {
    const auto expect = omega[j].expand(hw.session_length);
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t u = 0; u < hw.session_length; ++u) {
        EXPECT_EQ(streams[i][j * hw.session_length + u],
                  sim::to_char(expect.at(u, i)))
            << "session " << j << " input " << i << " cycle " << u;
      }
    }
  }
}

TEST(GeneratorHw, OutputsAreBinaryAfterReset) {
  const std::vector<WeightAssignment> omega{make_assignment({"010", "1"}),
                                            make_assignment({"0", "10"})};
  const GeneratorHardware hw = build_generator(omega, 4);
  const auto streams = run_generator(hw, 2 * hw.session_length + 3);
  for (const std::string& s : streams)
    for (char c : s) EXPECT_NE(c, 'x');
}

TEST(GeneratorHw, SessionCounterWrapsCleanly) {
  // After the last session the counter wraps; outputs must stay binary (the
  // decode may select no assignment, producing constant 0 on the MUX).
  const std::vector<WeightAssignment> omega{make_assignment({"01"}),
                                            make_assignment({"10"}),
                                            make_assignment({"1"})};
  const GeneratorHardware hw = build_generator(omega, 4);
  const auto streams = run_generator(hw, hw.session_length * 5);
  for (char c : streams[0]) EXPECT_NE(c, 'x');
}

TEST(GeneratorHw, SharedFsmOutputsAreReused) {
  // Both assignments use "01": the generator must instantiate one period-2
  // FSM with a single output, referenced twice.
  const std::vector<WeightAssignment> omega{make_assignment({"01", "01"}),
                                            make_assignment({"01", "0101"})};
  const GeneratorHardware hw = build_generator(omega, 4);
  EXPECT_EQ(hw.fsms.fsm_count(), 1u);
  EXPECT_EQ(hw.fsms.output_count(), 1u);
}

TEST(GeneratorHw, NetlistRoundTripsThroughBench) {
  const std::vector<WeightAssignment> omega{make_assignment({"01", "100"}),
                                            make_assignment({"0", "1"})};
  const GeneratorHardware hw = build_generator(omega, 8);
  const std::string text = netlist::write_bench(hw.netlist);
  const netlist::Netlist again = netlist::read_bench(text, "gen");
  EXPECT_EQ(again.node_count(), hw.netlist.node_count());
  EXPECT_EQ(again.primary_outputs().size(),
            hw.netlist.primary_outputs().size());
}

TEST(GeneratorHw, StatsReflectRealCost) {
  const std::vector<WeightAssignment> omega{
      make_assignment({"00010", "01011", "11001"})};
  const GeneratorHardware hw = build_generator(omega, 16);
  const auto stats = hw.stats();
  EXPECT_GT(stats.logic_gates, 0u);
  // Divider (log2 16 = 4 FFs) + weight FSM (3 FFs); single session -> no
  // session counter bits.
  EXPECT_EQ(stats.flip_flops, 4u + 3u);
  EXPECT_EQ(stats.primary_inputs, 1u);   // R
  EXPECT_EQ(stats.primary_outputs, 3u);  // TG0..TG2
}

TEST(GeneratorHw, RejectsBadInput) {
  EXPECT_THROW(build_generator({}, 8), std::invalid_argument);
  const std::vector<WeightAssignment> uneven{make_assignment({"0", "1"}),
                                             make_assignment({"0"})};
  EXPECT_THROW(build_generator(uneven, 8), std::invalid_argument);
}

TEST(GeneratorHw, TinySessionLengthRoundsUp) {
  const GeneratorHardware hw =
      build_generator({{make_assignment({"1"})}}, 1);
  EXPECT_GE(hw.session_length, 2u);
}

}  // namespace
}  // namespace wbist::core
