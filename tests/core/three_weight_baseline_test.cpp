#include "core/three_weight_baseline.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "core/procedure.h"
#include "fault/fault_list.h"
#include "tgen/random_tgen.h"

namespace wbist::core {
namespace {

using fault::DetectionResult;
using fault::FaultSet;
using fault::FaultSimulator;
using sim::TestSequence;
using sim::Val3;

TEST(ThreeWeightBaseline, IntersectWindowRules) {
  // Columns: constant-0, constant-1, changing.
  const TestSequence T = TestSequence::from_rows({"010", "011", "010"});
  const ThreeWeightAssignment w = intersect_window(T, 2, 3);
  ASSERT_EQ(w.per_input.size(), 3u);
  EXPECT_EQ(w.per_input[0], ThreeWeight::kZero);
  EXPECT_EQ(w.per_input[1], ThreeWeight::kOne);
  EXPECT_EQ(w.per_input[2], ThreeWeight::kRandom);
  EXPECT_EQ(w.str(), "0 / 1 / R");
}

TEST(ThreeWeightBaseline, WindowClampsAtSequenceStart) {
  const TestSequence T = TestSequence::from_rows({"01", "01"});
  const ThreeWeightAssignment w = intersect_window(T, 1, 100);
  EXPECT_EQ(w.per_input[0], ThreeWeight::kZero);
  EXPECT_EQ(w.per_input[1], ThreeWeight::kOne);
  EXPECT_THROW(intersect_window(T, 5, 2), std::invalid_argument);
}

TEST(ThreeWeightBaseline, XValuesBecomeRandom) {
  const TestSequence T = TestSequence::from_rows({"x0", "00"});
  const ThreeWeightAssignment w = intersect_window(T, 1, 2);
  EXPECT_EQ(w.per_input[0], ThreeWeight::kRandom);
  EXPECT_EQ(w.per_input[1], ThreeWeight::kZero);
}

TEST(ThreeWeightBaseline, ExpansionSemantics) {
  ThreeWeightAssignment w;
  w.per_input = {ThreeWeight::kZero, ThreeWeight::kOne, ThreeWeight::kRandom};
  const Lfsr lfsr(8);
  const TestSequence seq = w.expand(lfsr, 0, 40);
  bool saw_zero = false;
  bool saw_one = false;
  for (std::size_t u = 0; u < 40; ++u) {
    EXPECT_EQ(seq.at(u, 0), Val3::kZero);
    EXPECT_EQ(seq.at(u, 1), Val3::kOne);
    saw_zero |= seq.at(u, 2) == Val3::kZero;
    saw_one |= seq.at(u, 2) == Val3::kOne;
  }
  EXPECT_TRUE(saw_zero);  // the random column actually toggles
  EXPECT_TRUE(saw_one);
}

TEST(ThreeWeightBaseline, SessionsDiffer) {
  ThreeWeightAssignment w;
  w.per_input = {ThreeWeight::kRandom, ThreeWeight::kRandom};
  const Lfsr lfsr(8);
  EXPECT_NE(w.expand(lfsr, 0, 32), w.expand(lfsr, 1, 32));
}

TEST(ThreeWeightBaseline, DetectsFaultsOnS27) {
  const auto nl = circuits::s27();
  const FaultSet faults = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, faults);
  const TestSequence T = circuits::s27_paper_sequence();
  const auto det = sim.run_all(T);
  ThreeWeightConfig cfg;
  cfg.sequence_length = 200;
  const ThreeWeightResult res =
      run_three_weight_baseline(sim, T, det.detection_time, cfg);
  EXPECT_GT(res.detected_count, 0u);
  EXPECT_EQ(res.detected_count + res.abandoned_count, res.target_count);
  EXPECT_FALSE(res.assignments.empty());
}

TEST(ThreeWeightBaseline, ProposedMethodDominatesBaseline) {
  // The paper's core motivation: the subsequence scheme reaches complete
  // fault efficiency where constant-or-random weights fall short (or at
  // best tie on easy circuits).
  const auto nl = circuits::circuit_by_name("s298");
  const FaultSet faults = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, faults);
  tgen::TgenConfig tc;
  tc.max_length = 512;
  const auto gen = tgen::generate_test_sequence(sim, tc);

  ThreeWeightConfig bc;
  bc.sequence_length = 300;
  const ThreeWeightResult baseline =
      run_three_weight_baseline(sim, gen.sequence, gen.detection_time, bc);

  ProcedureConfig pc;
  pc.sequence_length = 300;
  const ProcedureResult proposed = select_weight_assignments(
      sim, gen.sequence, gen.detection_time, pc);

  EXPECT_EQ(proposed.detected_count, proposed.target_count);
  EXPECT_LE(baseline.fault_efficiency(),
            1.0 + 1e-12);  // sanity
  EXPECT_GE(proposed.fault_efficiency(), baseline.fault_efficiency());
}

TEST(ThreeWeightBaseline, MisalignedDetectionTimesRejected) {
  const auto nl = circuits::s27();
  const FaultSet faults = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, faults);
  const std::vector<std::int32_t> wrong(5, 0);
  EXPECT_THROW(run_three_weight_baseline(
                   sim, circuits::s27_paper_sequence(), wrong, {}),
               std::invalid_argument);
}

TEST(ThreeWeightBaseline, NoTargetsIsTrivial) {
  const auto nl = circuits::s27();
  const FaultSet faults = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, faults);
  const std::vector<std::int32_t> none(faults.size(),
                                       DetectionResult::kUndetected);
  const ThreeWeightResult res = run_three_weight_baseline(
      sim, circuits::s27_paper_sequence(), none, {});
  EXPECT_EQ(res.target_count, 0u);
  EXPECT_TRUE(res.assignments.empty());
  EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0);
}

}  // namespace
}  // namespace wbist::core
