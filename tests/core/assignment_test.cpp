#include "core/assignment.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"

namespace wbist::core {
namespace {

WeightAssignment paper_best() {
  // Section 2 / 4.1: the first weight assignment for s27 at u = 9.
  WeightAssignment w;
  w.per_input = {Subsequence::parse("01"), Subsequence::parse("0"),
                 Subsequence::parse("100"), Subsequence::parse("1")};
  return w;
}

TEST(Assignment, ExpandReproducesTable2) {
  // Expanding (01, 0, 100, 1) for 12 cycles gives exactly Table 2.
  const sim::TestSequence got = paper_best().expand(12);
  EXPECT_EQ(got, circuits::s27_paper_weighted_sequence());
}

TEST(Assignment, ExpandLengthAndWidth) {
  const sim::TestSequence seq = paper_best().expand(5);
  EXPECT_EQ(seq.length(), 5u);
  EXPECT_EQ(seq.width(), 4u);
}

TEST(Assignment, MaxSubsequenceLength) {
  EXPECT_EQ(paper_best().max_subsequence_length(), 3u);
}

TEST(Assignment, StrFormat) {
  EXPECT_EQ(paper_best().str(), "01 / 0 / 100 / 1");
}

TEST(Assignment, HashAndEquality) {
  const WeightAssignmentHash h;
  EXPECT_EQ(paper_best(), paper_best());
  EXPECT_EQ(h(paper_best()), h(paper_best()));
  WeightAssignment other = paper_best();
  other.per_input[0] = Subsequence::parse("10");
  EXPECT_NE(paper_best(), other);
}

// ---------------------------------------------------------------------------
// Table 5: the sets A_i for s27, u = 9, S = all subsequences of length <= 3.
// ---------------------------------------------------------------------------

class Table5 : public testing::Test {
 protected:
  // ensure_full_length = false reproduces the paper's Table 5 exactly; the
  // Section 4.1 modification is covered by the dedicated tests below.
  Table5()
      : S_(WeightSet::all_up_to(3)),
        T_(circuits::s27_paper_sequence()),
        sets_(build_candidate_sets(S_, T_, 9, 3, false)) {}

  WeightSet S_;
  sim::TestSequence T_;
  CandidateSets sets_;
};

TEST_F(Table5, SetSizes) {
  ASSERT_EQ(sets_.per_input.size(), 4u);
  for (const auto& A : sets_.per_input) EXPECT_EQ(A.size(), 3u);
}

TEST_F(Table5, A0ContentsAndOrder) {
  const auto& A = sets_.per_input[0];
  EXPECT_EQ(A[0].alpha.str(), "01");
  EXPECT_EQ(A[0].n_m, 8u);
  EXPECT_EQ(A[0].index_in_s, 4u);
  EXPECT_EQ(A[1].alpha.str(), "100");
  EXPECT_EQ(A[1].n_m, 7u);
  EXPECT_EQ(A[1].index_in_s, 7u);
  EXPECT_EQ(A[2].alpha.str(), "1");
  EXPECT_EQ(A[2].n_m, 5u);
  EXPECT_EQ(A[2].index_in_s, 1u);
}

TEST_F(Table5, A1ContentsAndOrder) {
  const auto& A = sets_.per_input[1];
  EXPECT_EQ(A[0].alpha.str(), "0");
  EXPECT_EQ(A[1].alpha.str(), "00");
  EXPECT_EQ(A[2].alpha.str(), "000");
  for (const auto& c : A) EXPECT_EQ(c.n_m, 7u);
}

TEST_F(Table5, A2ContentsAndOrder) {
  const auto& A = sets_.per_input[2];
  EXPECT_EQ(A[0].alpha.str(), "100");
  EXPECT_EQ(A[0].n_m, 6u);
  EXPECT_EQ(A[1].alpha.str(), "01");
  EXPECT_EQ(A[1].n_m, 5u);
  EXPECT_EQ(A[2].alpha.str(), "1");
  EXPECT_EQ(A[2].n_m, 4u);
}

TEST_F(Table5, A3ContentsAndOrder) {
  const auto& A = sets_.per_input[3];
  EXPECT_EQ(A[0].alpha.str(), "1");
  EXPECT_EQ(A[0].n_m, 7u);
  EXPECT_EQ(A[1].alpha.str(), "100");
  EXPECT_EQ(A[1].n_m, 7u);
  EXPECT_EQ(A[2].alpha.str(), "01");
  EXPECT_EQ(A[2].n_m, 6u);
}

TEST_F(Table5, Rank0IsThePaperAssignment) {
  EXPECT_EQ(sets_.assignment_at(0), paper_best());
}

TEST_F(Table5, Rank1IsThePaperSecondBest) {
  // Section 2: "the subsequence 100 for input 0, 00 for input 1, 01 for
  // input 2, and 100 for input 3."
  const WeightAssignment w = sets_.assignment_at(1);
  EXPECT_EQ(w.per_input[0].str(), "100");
  EXPECT_EQ(w.per_input[1].str(), "00");
  EXPECT_EQ(w.per_input[2].str(), "01");
  EXPECT_EQ(w.per_input[3].str(), "100");
}

TEST_F(Table5, RanksClampToLastEntry) {
  const WeightAssignment w = sets_.assignment_at(10);
  EXPECT_EQ(w.per_input[0].str(), "1");  // last of A_0
  EXPECT_EQ(sets_.max_rank(), 3u);
}

TEST(Assignment, EnsureFullLengthModification) {
  // With S = {1-bit and 2-bit subsequences} and max_len = 2, A_i sorted by
  // n_m may put short subsequences first everywhere; the modification must
  // hoist a length-2 candidate to the front of every set.
  const WeightSet S = WeightSet::all_up_to(2);
  const auto T = circuits::s27_paper_sequence();
  const CandidateSets sets = build_candidate_sets(S, T, 9, 2, true);
  const WeightAssignment w0 = sets.assignment_at(0);
  bool all_full = true;
  for (const auto& s : w0.per_input) all_full &= s.length() == 2;
  EXPECT_TRUE(all_full);
  // Rank 0 must therefore reproduce T on the window ending at u = 9.
  for (std::size_t i = 0; i < 4; ++i) {
    const auto col = T.column(i);
    EXPECT_TRUE(w0.per_input[i].matches_window(col, 9));
  }
}

TEST(Assignment, WithoutModificationOrderIsPureNm) {
  const WeightSet S = WeightSet::all_up_to(2);
  const auto T = circuits::s27_paper_sequence();
  const CandidateSets sets = build_candidate_sets(S, T, 9, 2, false);
  for (const auto& A : sets.per_input)
    for (std::size_t k = 1; k < A.size(); ++k)
      EXPECT_GE(A[k - 1].n_m, A[k].n_m);
}

TEST(Assignment, ModificationShiftsRanksByOne) {
  // With insertion, the all-length-L_S assignment takes rank 0 and the
  // paper's Table-5 assignments follow at ranks 1 and 2.
  const WeightSet S = WeightSet::all_up_to(3);
  const auto T = circuits::s27_paper_sequence();
  const CandidateSets sets = build_candidate_sets(S, T, 9, 3, true);
  const WeightAssignment w0 = sets.assignment_at(0);
  for (const auto& s : w0.per_input) EXPECT_EQ(s.length(), 3u);
  EXPECT_EQ(sets.assignment_at(1), paper_best());
  const WeightAssignment w2 = sets.assignment_at(2);
  EXPECT_EQ(w2.per_input[0].str(), "100");
  EXPECT_EQ(w2.per_input[1].str(), "00");
  EXPECT_EQ(w2.per_input[2].str(), "01");
  EXPECT_EQ(w2.per_input[3].str(), "100");
}

TEST(Assignment, ModificationSkippedWhenFullRankExists) {
  // Build a sequence whose rank-0 candidates are already all of max length:
  // T with two identical rows makes the length-1 constants and length-2
  // pairs tie; use max_len = 1 so every candidate trivially has length 1.
  const WeightSet S = WeightSet::all_up_to(1);
  const auto T = circuits::s27_paper_sequence();
  const CandidateSets with = build_candidate_sets(S, T, 9, 1, true);
  const CandidateSets without = build_candidate_sets(S, T, 9, 1, false);
  ASSERT_EQ(with.per_input.size(), without.per_input.size());
  for (std::size_t i = 0; i < with.per_input.size(); ++i)
    EXPECT_EQ(with.per_input[i].size(), without.per_input[i].size());
}

TEST(Assignment, CandidatesAllMatchWindow) {
  const WeightSet S = WeightSet::all_up_to(3);
  const auto T = circuits::s27_paper_sequence();
  for (std::size_t u = 2; u < T.length(); ++u) {
    const CandidateSets sets = build_candidate_sets(S, T, u, 3);
    for (std::size_t i = 0; i < 4; ++i) {
      const auto col = T.column(i);
      for (const Candidate& c : sets.per_input[i])
        EXPECT_TRUE(c.alpha.matches_window(col, u))
            << "u=" << u << " i=" << i << " alpha=" << c.alpha.str();
    }
  }
}

}  // namespace
}  // namespace wbist::core
