#include "core/report.h"

#include <gtest/gtest.h>

namespace wbist::core {
namespace {

std::vector<WeightAssignment> sample_omega() {
  WeightAssignment w1;
  w1.per_input = {Subsequence::parse("01"), Subsequence::parse("0"),
                  Subsequence::parse("100")};
  WeightAssignment w2;
  w2.per_input = {Subsequence::parse("0101"), Subsequence::parse("00"),
                  Subsequence::parse("100")};
  return {w1, w2};
}

TEST(Report, CountsDistinctSubsequences) {
  const auto omega = sample_omega();
  std::vector<Subsequence> subs;
  for (const auto& w : omega)
    subs.insert(subs.end(), w.per_input.begin(), w.per_input.end());
  const auto fsms = synthesize_weight_fsms(subs);
  const Table6Row row = make_table6_row("toy", 50, 123, omega, fsms);

  EXPECT_EQ(row.circuit, "toy");
  EXPECT_EQ(row.t_length, 50u);
  EXPECT_EQ(row.t_detected, 123u);
  EXPECT_EQ(row.n_seq, 2u);
  // Distinct exact subsequences: 01, 0, 100, 0101, 00 -> 5.
  EXPECT_EQ(row.n_subs, 5u);
  EXPECT_EQ(row.max_len, 4u);  // "0101"
  // After primitive merging: 01==0101, 0==00 -> outputs {01, 0, 100} = 3,
  // over lengths {1, 2, 3} -> 3 FSMs.
  EXPECT_EQ(row.n_fsm_outputs, 3u);
  EXPECT_EQ(row.n_fsms, 3u);
}

TEST(Report, MergingNeverIncreasesCounts) {
  const auto omega = sample_omega();
  std::vector<Subsequence> subs;
  for (const auto& w : omega)
    subs.insert(subs.end(), w.per_input.begin(), w.per_input.end());
  const auto fsms = synthesize_weight_fsms(subs);
  const Table6Row row = make_table6_row("toy", 1, 1, omega, fsms);
  EXPECT_LE(row.n_fsm_outputs, row.n_subs);
  EXPECT_LE(row.n_fsms, row.n_fsm_outputs);
}

TEST(Report, EmptyOmega) {
  const auto fsms = synthesize_weight_fsms({});
  const Table6Row row = make_table6_row("none", 0, 0, {}, fsms);
  EXPECT_EQ(row.n_seq, 0u);
  EXPECT_EQ(row.n_subs, 0u);
  EXPECT_EQ(row.max_len, 0u);
  EXPECT_EQ(row.n_fsms, 0u);
}

}  // namespace
}  // namespace wbist::core
