// Fuzz-style property suite: random weight-assignment sets synthesized to
// hardware must stream exactly their software expansion, for every session,
// across random subsequence contents, lengths and session counts.
#include <gtest/gtest.h>

#include "core/generator_hw.h"
#include "sim/good_sim.h"
#include "util/rng.h"

namespace wbist::core {
namespace {

using sim::Val3;

Subsequence random_subsequence(util::Rng& rng, std::size_t max_len) {
  const std::size_t len = 1 + rng.below(max_len);
  std::vector<bool> bits(len);
  for (std::size_t k = 0; k < len; ++k) bits[k] = rng.next_bit();
  return Subsequence(std::move(bits));
}

class GeneratorFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorFuzz, HardwareEqualsSoftwareExpansion) {
  util::Rng rng(GetParam());
  const std::size_t n_inputs = 1 + rng.below(6);
  const std::size_t n_sessions = 1 + rng.below(5);
  const std::size_t max_len = 1 + rng.below(9);

  std::vector<WeightAssignment> omega(n_sessions);
  for (auto& w : omega)
    for (std::size_t i = 0; i < n_inputs; ++i)
      w.per_input.push_back(random_subsequence(rng, max_len));

  const std::size_t lg = 4 + rng.below(40);
  const GeneratorHardware hw = build_generator(omega, lg);

  sim::GoodSimulator sim(hw.netlist);
  sim.step(std::vector<Val3>{Val3::kOne});  // reset pulse
  for (std::size_t j = 0; j < n_sessions; ++j) {
    const sim::TestSequence expect = omega[j].expand(hw.session_length);
    for (std::size_t u = 0; u < hw.session_length; ++u) {
      sim.step(std::vector<Val3>{Val3::kZero});
      const auto out = sim.outputs();
      ASSERT_EQ(out.size(), n_inputs);
      for (std::size_t i = 0; i < n_inputs; ++i)
        ASSERT_EQ(out[i], expect.at(u, i))
            << "seed=" << GetParam() << " session=" << j << " cycle=" << u
            << " input=" << i << " alpha=" << omega[j].per_input[i].str();
    }
  }
}

TEST_P(GeneratorFuzz, ExpansionIsPeriodicPerInput) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  WeightAssignment w;
  const std::size_t n_inputs = 1 + rng.below(8);
  for (std::size_t i = 0; i < n_inputs; ++i)
    w.per_input.push_back(random_subsequence(rng, 12));
  const sim::TestSequence seq = w.expand(100);
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const std::size_t period = w.per_input[i].length();
    for (std::size_t u = period; u < 100; ++u)
      ASSERT_EQ(seq.at(u, i), seq.at(u - period, i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorFuzz,
                         testing::Values(1001, 1002, 1003, 1004, 1005, 1006,
                                         1007, 1008));

}  // namespace
}  // namespace wbist::core
