#include "core/qm.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace wbist::core {
namespace {

TEST(Qm, CubeCovers) {
  // x1' · x2 over 3 vars: value = 0b100? variable 1 negative, variable 2
  // positive -> value bit1=0, bit2=1; care = 0b110.
  const Cube c{0b100, 0b110};
  EXPECT_TRUE(c.covers(0b100));
  EXPECT_TRUE(c.covers(0b101));
  EXPECT_FALSE(c.covers(0b110));
  EXPECT_FALSE(c.covers(0b000));
  EXPECT_EQ(c.literal_count(), 2u);
}

TEST(Qm, CubeStr) {
  EXPECT_EQ((Cube{0, 0}).str(3), "-");
  const Cube c{0b100, 0b110};
  const std::string s = c.str(3);
  EXPECT_NE(s.find("x1'"), std::string::npos);
  EXPECT_NE(s.find("x2"), std::string::npos);
}

TEST(Qm, ConstantZero) {
  const Cover cover = minimize(3, {}, {});
  EXPECT_TRUE(cover.cubes.empty());
  EXPECT_FALSE(cover.evaluates(0));
}

TEST(Qm, ConstantOne) {
  std::vector<std::uint32_t> onset;
  for (std::uint32_t m = 0; m < 8; ++m) onset.push_back(m);
  const Cover cover = minimize(3, onset, {});
  ASSERT_EQ(cover.cubes.size(), 1u);
  EXPECT_EQ(cover.cubes[0].care, 0u);
}

TEST(Qm, ConstantOneViaDontCares) {
  // Onset {0}, dc = everything else: single don't-care-absorbing cube.
  std::vector<std::uint32_t> dc;
  for (std::uint32_t m = 1; m < 8; ++m) dc.push_back(m);
  const Cover cover = minimize(3, {0}, dc);
  ASSERT_EQ(cover.cubes.size(), 1u);
  EXPECT_EQ(cover.cubes[0].care, 0u);
}

TEST(Qm, SingleMinterm) {
  const Cover cover = minimize(2, {0b10}, {});
  ASSERT_EQ(cover.cubes.size(), 1u);
  EXPECT_EQ(cover.cubes[0].literal_count(), 2u);
  EXPECT_TRUE(cover.evaluates(0b10));
  EXPECT_FALSE(cover.evaluates(0b00));
}

TEST(Qm, XorNeedsTwoCubes) {
  const Cover cover = minimize(2, {0b01, 0b10}, {});
  EXPECT_EQ(cover.cubes.size(), 2u);
  EXPECT_TRUE(cover.evaluates(0b01));
  EXPECT_TRUE(cover.evaluates(0b10));
  EXPECT_FALSE(cover.evaluates(0b00));
  EXPECT_FALSE(cover.evaluates(0b11));
}

TEST(Qm, ClassicTextbookExample) {
  // f = Σ(0,1,2,5,6,7) over 3 vars minimizes to 3 cubes of 2 literals.
  const Cover cover = minimize(3, {0, 1, 2, 5, 6, 7}, {});
  for (std::uint32_t m : {0u, 1u, 2u, 5u, 6u, 7u}) EXPECT_TRUE(cover.evaluates(m));
  for (std::uint32_t m : {3u, 4u}) EXPECT_FALSE(cover.evaluates(m));
  EXPECT_LE(cover.cubes.size(), 3u);
  for (const Cube& c : cover.cubes) EXPECT_LE(c.literal_count(), 2u);
}

TEST(Qm, DontCaresEnlargeCubes) {
  // Onset {1}, dc {0,3,5,7}: a single-literal cube (x0) suffices.
  const Cover cover = minimize(3, {1}, {3, 5, 7});
  ASSERT_GE(cover.cubes.size(), 1u);
  EXPECT_EQ(cover.cubes[0].literal_count(), 1u);
}

TEST(Qm, ZeroVariableFunctions) {
  const Cover one = minimize(0, {0}, {});
  EXPECT_TRUE(one.evaluates(0));
  const Cover zero = minimize(0, {}, {});
  EXPECT_FALSE(zero.evaluates(0));
}

TEST(Qm, TooManyVariablesRejected) {
  EXPECT_THROW(minimize(21, {0}, {}), std::invalid_argument);
}

struct QmPropertyCase {
  unsigned n_vars;
  std::uint64_t seed;
};

class QmProperty : public testing::TestWithParam<QmPropertyCase> {};

TEST_P(QmProperty, CoverIsCorrectAndPrime) {
  const auto [n_vars, seed] = GetParam();
  util::Rng rng(seed);
  const std::uint32_t space = 1u << n_vars;

  for (int iteration = 0; iteration < 40; ++iteration) {
    std::set<std::uint32_t> onset, dcset;
    for (std::uint32_t m = 0; m < space; ++m) {
      const auto roll = rng.below(4);
      if (roll == 0) onset.insert(m);
      else if (roll == 1) dcset.insert(m);
    }
    const std::vector<std::uint32_t> on(onset.begin(), onset.end());
    const std::vector<std::uint32_t> dc(dcset.begin(), dcset.end());
    const Cover cover = minimize(n_vars, on, dc);

    for (std::uint32_t m = 0; m < space; ++m) {
      const bool val = cover.evaluates(m);
      if (onset.count(m) != 0) {
        EXPECT_TRUE(val) << "onset minterm " << m << " not covered";
      } else if (dcset.count(m) == 0) {
        EXPECT_FALSE(val) << "offset minterm " << m << " covered";
      }
    }
    // Every cube must be an implicant of onset ∪ dc.
    for (const Cube& c : cover.cubes) {
      for (std::uint32_t m = 0; m < space; ++m) {
        if (c.covers(m)) {
          EXPECT_TRUE(onset.count(m) != 0 || dcset.count(m) != 0)
              << "cube covers offset minterm " << m;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QmProperty,
    testing::Values(QmPropertyCase{1, 11}, QmPropertyCase{2, 22},
                    QmPropertyCase{3, 33}, QmPropertyCase{4, 44},
                    QmPropertyCase{5, 55}, QmPropertyCase{6, 66}),
    [](const testing::TestParamInfo<QmPropertyCase>& info) {
      return "vars" + std::to_string(info.param.n_vars);
    });

}  // namespace
}  // namespace wbist::core
