#include "core/lfsr.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "netlist/netlist.h"
#include "sim/good_sim.h"

namespace wbist::core {
namespace {

using sim::Val3;

TEST(Lfsr, EscapesAllZeroState) {
  Lfsr lfsr(16);
  lfsr.reset();
  EXPECT_EQ(lfsr.state(), 0u);
  lfsr.step();
  EXPECT_NE(lfsr.state(), 0u);  // XNOR feedback injects a 1
}

TEST(Lfsr, MaximalPeriodWidth8) {
  // The width-8 default polynomial is maximal: period 2^8 - 1 over the
  // state space excluding the all-ones lock-up state.
  Lfsr lfsr(8);
  lfsr.reset();
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 255; ++i) {
    EXPECT_TRUE(seen.insert(lfsr.state()).second) << "state repeated early";
    lfsr.step();
  }
  EXPECT_EQ(lfsr.state(), 0u);  // back to the start after 255 steps
  EXPECT_EQ(seen.count(0xFFu), 0u);  // lock-up state never visited
}

TEST(Lfsr, RunMatchesManualStepping) {
  Lfsr lfsr(16);
  const auto states = lfsr.run(20);
  ASSERT_EQ(states.size(), 20u);
  EXPECT_EQ(states[0], 0u);  // cycle 0 shows the reset state
  Lfsr manual(16);
  manual.reset();
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_EQ(states[t], manual.state());
    manual.step();
  }
}

TEST(Lfsr, ValidatesConfiguration) {
  EXPECT_THROW(Lfsr(1), std::invalid_argument);
  EXPECT_THROW(Lfsr(33), std::invalid_argument);
  EXPECT_THROW(Lfsr(8, {}), std::invalid_argument);
  EXPECT_THROW(Lfsr(8, {8}), std::invalid_argument);
  EXPECT_NO_THROW(Lfsr(8, {7, 3}));
}

TEST(Lfsr, BitAccessor) {
  Lfsr lfsr(8);
  lfsr.reset();
  lfsr.step();  // state becomes 0b1
  EXPECT_TRUE(lfsr.bit(0));
  EXPECT_FALSE(lfsr.bit(1));
}

TEST(Lfsr, HardwareMatchesSoftware) {
  // Emit the LFSR into a netlist, simulate with one reset cycle, and check
  // the flip-flop streams against the software model cycle by cycle.
  const Lfsr model(8);
  netlist::Netlist nl("lfsr_test");
  const auto reset = nl.add_input("R");
  const auto bits = emit_lfsr(nl, model, reset, "L");
  for (const auto b : bits) nl.mark_output(b);
  nl.finalize();

  sim::GoodSimulator simulator(nl);
  simulator.step(std::vector<Val3>{Val3::kOne});  // reset pulse

  Lfsr sw(8);
  sw.reset();
  for (int t = 0; t < 64; ++t) {
    simulator.step(std::vector<Val3>{Val3::kZero});
    for (unsigned k = 0; k < 8; ++k) {
      const Val3 hw_bit = simulator.value(bits[k]);
      ASSERT_NE(hw_bit, Val3::kX) << "cycle " << t;
      EXPECT_EQ(hw_bit == Val3::kOne, sw.bit(k)) << "cycle " << t << " bit "
                                                 << k;
    }
    sw.step();
  }
}

TEST(Lfsr, DefaultPeriodExceedsWidthForEveryWidth) {
  // Regression: the old small-width defaults carried duplicate taps
  // ({1,1} at width 2, {2,1,1} at width 3) whose XNOR contributions cancel,
  // collapsing the stream to a constant. Every default register must cycle
  // with a period strictly greater than its width.
  for (unsigned w = 2; w <= 32; ++w) {
    Lfsr lfsr(w);
    lfsr.reset();
    std::map<std::uint32_t, std::size_t> first_seen{{lfsr.state(), 0}};
    const std::size_t budget = 4 * w + 8;
    for (std::size_t t = 1; t <= budget; ++t) {
      lfsr.step();
      const auto [it, fresh] = first_seen.emplace(lfsr.state(), t);
      if (!fresh) {
        EXPECT_GT(t - it->second, w) << "width " << w << " has period "
                                     << (t - it->second);
        break;
      }
    }
    // No repeat inside the budget means the period exceeds budget > w.
  }
}

TEST(Lfsr, SmallWidthDefaultsAreMaximal) {
  // Widths 2..6 are cheap to check exhaustively: the XNOR form must visit
  // all 2^w - 1 states (everything except the all-ones lock-up state).
  for (unsigned w = 2; w <= 6; ++w) {
    Lfsr lfsr(w);
    lfsr.reset();
    std::set<std::uint32_t> seen;
    const std::size_t period = (std::size_t{1} << w) - 1;
    for (std::size_t t = 0; t < period; ++t) {
      EXPECT_TRUE(seen.insert(lfsr.state()).second)
          << "width " << w << " repeated a state early";
      lfsr.step();
    }
    EXPECT_EQ(lfsr.state(), 0u) << "width " << w;
    EXPECT_EQ(seen.count((std::uint32_t{1} << w) - 1), 0u)
        << "width " << w << " visited the lock-up state";
  }
}

TEST(Lfsr, DuplicateTapsAreDeduplicated) {
  const Lfsr lfsr(8, {7, 7, 3, 3, 7});
  EXPECT_EQ(lfsr.taps(), (std::vector<unsigned>{7, 3}));
}

TEST(Lfsr, StreamLooksBalanced) {
  Lfsr lfsr(16);
  lfsr.reset();
  int ones = 0;
  const int n = 4096;
  for (int t = 0; t < n; ++t) {
    lfsr.step();
    ones += lfsr.bit(0) ? 1 : 0;
  }
  EXPECT_GT(ones, n / 2 - n / 8);
  EXPECT_LT(ones, n / 2 + n / 8);
}

}  // namespace
}  // namespace wbist::core
