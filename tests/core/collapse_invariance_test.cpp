// Collapsing invariance of the weight-assignment procedure.
//
// Equivalence collapsing is exact: collapsed faults behave identically to
// every member of their class, so for a fixed test sequence T the set of
// detection times — and therefore the candidate stream the procedure
// explores — is identical with or without collapsing, and the selected Ω
// must match exactly. (This holds only with the pre-simulation sample
// disabled: sampling draws from the remaining-fault list, whose *size*
// differs between the universes.)
//
// Dominance collapsing changes the fault list but not the achievable
// efficiency on these circuits; its coverage expansion must be a sound
// lower bound on true uncollapsed coverage.
#include <gtest/gtest.h>

#include <vector>

#include "circuits/registry.h"
#include "circuits/synth_gen.h"
#include "core/procedure.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "testutil.h"

namespace wbist::core {
namespace {

using fault::CollapseMode;
using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;
using netlist::Netlist;
using sim::TestSequence;

struct ModeRun {
  FaultSet faults;
  std::vector<std::int32_t> detection_time;
  std::size_t detected = 0;
  std::size_t expanded = 0;  // detection expanded over represented classes
  ProcedureResult procedure;
};

ModeRun run_mode(const Netlist& nl, const TestSequence& T, CollapseMode mode,
                 bool run_procedure) {
  ModeRun r{FaultSet::collapsed(nl, mode), {}, 0, 0, {}};
  const FaultSimulator sim(nl, r.faults);
  const auto det = sim.run_all(T);
  r.detection_time = det.detection_time;
  r.detected = det.detected_count;
  for (FaultId f = 0; f < r.faults.size(); ++f)
    if (det.detection_time[f] != DetectionResult::kUndetected)
      r.expanded += r.faults.represented_size(f);
  if (run_procedure) {
    ProcedureConfig cfg;
    cfg.sequence_length = 200;
    cfg.sample_size = 0;  // sampling depends on |remaining|; disable
    cfg.threads = 1;
    r.procedure = select_weight_assignments(sim, T, r.detection_time, cfg);
  }
  return r;
}

class CollapseInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(CollapseInvariance, EquivalenceMatchesUncollapsedExactly) {
  const Netlist nl = circuits::circuit_by_name(GetParam());
  const TestSequence T =
      test::random_sequence(64, nl.primary_inputs().size(), 2026);

  const ModeRun none = run_mode(nl, T, CollapseMode::kNone, true);
  const ModeRun equiv = run_mode(nl, T, CollapseMode::kEquivalence, true);

  // Same universe, exact expansion: every uncollapsed fault detected by T
  // is accounted for by exactly one detected class representative.
  EXPECT_EQ(none.faults.uncollapsed_size(), equiv.faults.uncollapsed_size());
  EXPECT_EQ(equiv.expanded, none.detected);

  // The procedure explores the same candidate stream and must select the
  // same weight assignments with the same fault efficiency.
  EXPECT_DOUBLE_EQ(equiv.procedure.fault_efficiency(),
                   none.procedure.fault_efficiency());
  EXPECT_EQ(equiv.procedure.omega, none.procedure.omega);
  EXPECT_EQ(equiv.procedure.sequence_length, none.procedure.sequence_length);
}

TEST_P(CollapseInvariance, DominanceKeepsFaultEfficiency) {
  const Netlist nl = circuits::circuit_by_name(GetParam());
  const TestSequence T =
      test::random_sequence(64, nl.primary_inputs().size(), 2026);

  const ModeRun none = run_mode(nl, T, CollapseMode::kNone, true);
  const ModeRun dom = run_mode(nl, T, CollapseMode::kDominance, true);

  EXPECT_LE(dom.faults.size(), none.faults.size());
  EXPECT_EQ(dom.faults.uncollapsed_size(), none.faults.uncollapsed_size());
  // Sound lower bound: expanding the collapsed detection set never claims
  // more coverage than the uncollapsed run actually achieved.
  EXPECT_LE(dom.expanded, none.detected);
  EXPECT_DOUBLE_EQ(dom.procedure.fault_efficiency(),
                   none.procedure.fault_efficiency());
}

INSTANTIATE_TEST_SUITE_P(Circuits, CollapseInvariance,
                         ::testing::Values("s27", "s298", "s344"));

TEST(CollapseSoundness, ExpansionBoundsOnRandomCircuits) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    circuits::SynthProfile profile;
    profile.name = "synth";
    profile.n_pi = 6;
    profile.n_po = 3;
    profile.n_ff = 4;
    profile.n_gates = 40;
    profile.seed = seed;
    const Netlist nl = circuits::generate_circuit(profile);
    const TestSequence T =
        test::random_sequence(48, nl.primary_inputs().size(), seed * 31 + 7);

    const ModeRun none = run_mode(nl, T, CollapseMode::kNone, false);
    const ModeRun equiv = run_mode(nl, T, CollapseMode::kEquivalence, false);
    const ModeRun dom = run_mode(nl, T, CollapseMode::kDominance, false);

    // Every mode partitions / absorbs the same universe completely.
    std::size_t equiv_total = 0, dom_total = 0;
    for (FaultId f = 0; f < equiv.faults.size(); ++f)
      equiv_total += equiv.faults.represented_size(f);
    for (FaultId f = 0; f < dom.faults.size(); ++f)
      dom_total += dom.faults.represented_size(f);
    EXPECT_EQ(equiv_total, none.faults.uncollapsed_size()) << "seed " << seed;
    EXPECT_EQ(dom_total, none.faults.uncollapsed_size()) << "seed " << seed;

    // Equivalence expansion is exact; dominance is a sound lower bound.
    EXPECT_EQ(equiv.expanded, none.detected) << "seed " << seed;
    EXPECT_LE(dom.expanded, none.detected) << "seed " << seed;

    // class_size never exceeds represented_size.
    for (FaultId f = 0; f < dom.faults.size(); ++f)
      ASSERT_LE(dom.faults.class_size(f), dom.faults.represented_size(f));
  }
}

}  // namespace
}  // namespace wbist::core
