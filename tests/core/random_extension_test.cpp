#include "core/random_extension.h"

#include <gtest/gtest.h>

#include <memory>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "core/generator_hw.h"
#include "fault/fault_list.h"
#include "sim/good_sim.h"
#include "tgen/random_tgen.h"

namespace wbist::core {
namespace {

using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;
using sim::Val3;

struct ExtFixture {
  explicit ExtFixture(const char* name)
      : nl(circuits::circuit_by_name(name)),
        faults(FaultSet::collapsed(nl)),
        sim(nl, faults) {
    if (std::string(name) == "s27") {
      T = circuits::s27_paper_sequence();
      const auto det = sim.run_all(T);
      detection_time = det.detection_time;
    } else {
      tgen::TgenConfig tc;
      tc.max_length = 512;
      auto gen = tgen::generate_test_sequence(sim, tc);
      T = std::move(gen.sequence);
      detection_time = std::move(gen.detection_time);
    }
  }

  netlist::Netlist nl;
  FaultSet faults;
  FaultSimulator sim;
  sim::TestSequence T;
  std::vector<std::int32_t> detection_time;
};

TEST(RandomExtension, SessionExpansionIsDeterministic) {
  const Lfsr lfsr(16);
  const auto a = expand_random_session(lfsr, 2, 64, 5);
  const auto b = expand_random_session(lfsr, 2, 64, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.length(), 64u);
  EXPECT_EQ(a.width(), 5u);
}

TEST(RandomExtension, SessionsContinueOneStream) {
  // Session r must equal cycles [r*P, (r+1)*P) of one continuous run.
  const Lfsr lfsr(16);
  const std::size_t P = 32;
  const auto s0 = expand_random_session(lfsr, 0, P, 3);
  const auto s1 = expand_random_session(lfsr, 1, P, 3);
  Lfsr runner(16);
  const auto states = runner.run(2 * P);
  for (std::size_t u = 0; u < P; ++u) {
    for (std::size_t i = 0; i < 3; ++i) {
      const unsigned tap = lfsr_tap_for_input(lfsr, i);
      EXPECT_EQ(s0.at(u, i) == Val3::kOne, ((states[u] >> tap) & 1) != 0);
      EXPECT_EQ(s1.at(u, i) == Val3::kOne, ((states[P + u] >> tap) & 1) != 0);
    }
  }
}

TEST(RandomExtension, SessionsAreBinary) {
  const auto seq = expand_random_session(Lfsr(8), 0, 40, 6);
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < seq.width(); ++i)
      EXPECT_NE(seq.at(u, i), Val3::kX);
}

TEST(RandomExtension, IncrementalExpansionMatchesFromReset) {
  // The running-register overload must be bit-identical to fast-forwarding
  // a fresh register from reset for every session of the stream.
  const Lfsr lfsr(16);
  Lfsr runner = lfsr;
  runner.reset();
  for (std::size_t r = 0; r < 6; ++r) {
    const auto incremental = expand_random_session(runner, 32, 4);
    const auto from_reset = expand_random_session(lfsr, r, 32, 4);
    EXPECT_EQ(incremental, from_reset) << "session " << r;
  }
}

/// A circuit with a provably undetectable fault: z = a AND (NOT a) is
/// constant 0, so "z s-a-0" never changes any machine's behaviour. Marking
/// it as the only target makes every pure-random session fruitless.
struct RedundantFixture {
  RedundantFixture() : nl("redundant") {
    using netlist::GateType;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto na = nl.add_gate(GateType::kNot, "na", {a});
    z = nl.add_gate(GateType::kAnd, "z", {a, na});
    const auto o = nl.add_gate(GateType::kOr, "o", {z, b});
    nl.mark_output(o);
    nl.finalize();
    faults = FaultSet::uncollapsed(nl);
    sim = std::make_unique<FaultSimulator>(nl, faults);

    detection_time.assign(faults.size(), DetectionResult::kUndetected);
    for (FaultId f = 0; f < faults.size(); ++f)
      if (faults[f].node == z && faults[f].pin == fault::kStemPin &&
          !faults[f].stuck_at_one)
        detection_time[f] = 0;  // fabricated: pretend T detects it at u=0
    T = sim::TestSequence(2, 2);
    for (std::size_t u = 0; u < 2; ++u)
      for (std::size_t i = 0; i < 2; ++i)
        T.set(u, i, (u + i) % 2 == 0 ? Val3::kZero : Val3::kOne);
  }

  netlist::Netlist nl;
  netlist::NodeId z = netlist::kNoNode;
  FaultSet faults;
  std::unique_ptr<FaultSimulator> sim;
  sim::TestSequence T;
  std::vector<std::int32_t> detection_time;
};

TEST(RandomExtension, FruitlessSessionStopsPhaseByDefault) {
  RedundantFixture f;
  ExtendedSchemeConfig cfg;
  cfg.lfsr_width = 8;
  cfg.max_random_sessions = 4;
  cfg.procedure.sequence_length = 4;
  ASSERT_TRUE(cfg.stop_on_fruitless_session);
  const ExtendedSchemeResult res =
      run_extended_scheme(*f.sim, f.T, f.detection_time, cfg);
  EXPECT_EQ(res.sessions_simulated, 1u);  // first fruitless session stops
  EXPECT_EQ(res.random_sessions, 0u);
  EXPECT_EQ(res.detected_by_random, 0u);
}

TEST(RandomExtension, FlagFalseRunsAllMaxRandomSessions) {
  // Regression: both arms of the fruitless branch used to `break`, making
  // stop_on_fruitless_session dead config. With the flag off, fruitless
  // sessions are skipped (not counted) and probing continues to the cap.
  RedundantFixture f;
  ExtendedSchemeConfig cfg;
  cfg.lfsr_width = 8;
  cfg.max_random_sessions = 4;
  cfg.stop_on_fruitless_session = false;
  cfg.procedure.sequence_length = 4;
  const ExtendedSchemeResult res =
      run_extended_scheme(*f.sim, f.T, f.detection_time, cfg);
  EXPECT_EQ(res.sessions_simulated, cfg.max_random_sessions);
  EXPECT_EQ(res.random_sessions, 0u);  // none was fruitful
  EXPECT_EQ(res.detected_by_random, 0u);
}

TEST(RandomExtension, FlagFalsePreservesFullEfficiency) {
  // On a real circuit the flag must not change the coverage guarantee: the
  // scheme still ends at 100% fault efficiency and never simulates more
  // than max_random_sessions random sessions.
  ExtFixture f("s27");
  ExtendedSchemeConfig cfg;
  cfg.stop_on_fruitless_session = false;
  cfg.procedure.sequence_length = 100;
  const ExtendedSchemeResult res =
      run_extended_scheme(f.sim, f.T, f.detection_time, cfg);
  EXPECT_LE(res.sessions_simulated, cfg.max_random_sessions);
  EXPECT_LE(res.random_sessions, res.sessions_simulated);
  EXPECT_EQ(res.detected_count, res.target_count);
  EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0);
}

TEST(RandomExtension, CompleteFaultEfficiencyPreserved) {
  // The extension must never lose coverage: random sessions plus the
  // residual subsequence procedure reach 100% fault efficiency.
  ExtFixture f("s27");
  ExtendedSchemeConfig cfg;
  cfg.procedure.sequence_length = 100;
  const ExtendedSchemeResult res =
      run_extended_scheme(f.sim, f.T, f.detection_time, cfg);
  EXPECT_EQ(res.detected_count, res.target_count);
  EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0);
  EXPECT_GT(res.random_sessions, 0u);
  EXPECT_GT(res.detected_by_random, 0u);
}

TEST(RandomExtension, ReducesSubsequenceCount) {
  // The paper's conjecture: allowing LFSR streams reduces the number of
  // subsequences the weight scheme needs.
  ExtFixture f("s208");
  ProcedureConfig base_cfg;
  base_cfg.sequence_length = 300;
  const ProcedureResult baseline =
      select_weight_assignments(f.sim, f.T, f.detection_time, base_cfg);

  ExtendedSchemeConfig cfg;
  cfg.procedure.sequence_length = 300;
  const ExtendedSchemeResult extended =
      run_extended_scheme(f.sim, f.T, f.detection_time, cfg);

  EXPECT_LE(extended.procedure.omega.size(), baseline.omega.size());
  EXPECT_EQ(extended.detected_count, extended.target_count);
}

TEST(RandomExtension, ZeroRandomSessionsFallsBackToProcedure) {
  ExtFixture f("s27");
  ExtendedSchemeConfig cfg;
  cfg.max_random_sessions = 0;
  cfg.procedure.sequence_length = 100;
  const ExtendedSchemeResult res =
      run_extended_scheme(f.sim, f.T, f.detection_time, cfg);
  EXPECT_EQ(res.random_sessions, 0u);
  EXPECT_EQ(res.detected_by_random, 0u);
  EXPECT_EQ(res.detected_count, res.target_count);
}

TEST(RandomExtension, MisalignedDetectionTimesRejected) {
  ExtFixture f("s27");
  const std::vector<std::int32_t> wrong(3, 0);
  EXPECT_THROW(run_extended_scheme(f.sim, f.T, wrong, {}),
               std::invalid_argument);
}

TEST(RandomExtension, ExtendedGeneratorMatchesSoftware) {
  // The extended hardware (LFSR sessions + weighted sessions) must stream
  // exactly what the software model expands, across every session.
  ExtFixture f("s27");
  ExtendedSchemeConfig cfg;
  cfg.lfsr_width = 8;
  cfg.procedure.sequence_length = 30;
  const ExtendedSchemeResult res =
      run_extended_scheme(f.sim, f.T, f.detection_time, cfg);
  ASSERT_GT(res.random_sessions, 0u);

  const GeneratorHardware hw = build_extended_generator(
      res.generator_spec(), f.nl.primary_inputs().size(),
      res.session_length);
  EXPECT_EQ(hw.random_sessions, res.random_sessions);
  EXPECT_EQ(hw.session_count,
            res.random_sessions + res.procedure.omega.size());

  sim::GoodSimulator gen(hw.netlist);
  gen.step(std::vector<Val3>{Val3::kOne});  // reset

  const std::size_t n_inputs = f.nl.primary_inputs().size();
  for (std::size_t j = 0; j < hw.session_count; ++j) {
    const sim::TestSequence expect =
        j < res.random_sessions
            ? expand_random_session(res.lfsr, j, hw.session_length, n_inputs)
            : res.procedure.omega[j - res.random_sessions].expand(
                  hw.session_length);
    for (std::size_t u = 0; u < hw.session_length; ++u) {
      gen.step(std::vector<Val3>{Val3::kZero});
      const auto out = gen.outputs();
      for (std::size_t i = 0; i < n_inputs; ++i)
        ASSERT_EQ(out[i], expect.at(u, i))
            << "session " << j << " cycle " << u << " input " << i;
    }
  }
}

TEST(RandomExtension, RandomOnlyGeneratorIsBuildable) {
  ExtendedGeneratorSpec spec;
  spec.random_sessions = 2;
  spec.lfsr = Lfsr(8);
  const GeneratorHardware hw = build_extended_generator(spec, 4, 16);
  EXPECT_EQ(hw.session_count, 2u);
  EXPECT_EQ(hw.fsms.fsm_count(), 0u);
  EXPECT_EQ(hw.netlist.primary_outputs().size(), 4u);
}

}  // namespace
}  // namespace wbist::core
