// Sharded campaigns (core/campaign.h): shard planning invariants, the
// deterministic merge's bit-identity with a single-process run_all, and the
// wbist.campaign/1 checkpoint stream's tolerance/strictness contract.
#include "core/campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/artifact_cache.h"
#include "fault/fault_sim.h"
#include "testutil.h"
#include "util/rng.h"

namespace wbist::core {
namespace {

// -------------------------------------------------------------------------
// plan_shards

TEST(PlanShards, ContiguousDisjointCovering) {
  for (const auto& [faults, shards] :
       {std::pair<std::size_t, std::size_t>{493, 16},
        {100, 7},
        {32, 32},
        {5, 16},
        {1, 1}}) {
    const auto plan = plan_shards(faults, shards);
    ASSERT_EQ(plan.size(), std::min(faults, shards));
    std::uint32_t next = 0;
    for (std::size_t k = 0; k < plan.size(); ++k) {
      EXPECT_EQ(plan[k].index, k);
      EXPECT_EQ(plan[k].begin, next) << "gap/overlap at shard " << k;
      EXPECT_LT(plan[k].begin, plan[k].end) << "empty shard " << k;
      const std::size_t size = plan[k].end - plan[k].begin;
      const std::size_t first = plan[0].end - plan[0].begin;
      if (k > 0) {
        const std::size_t prev = plan[k - 1].end - plan[k - 1].begin;
        EXPECT_LE(size, prev) << "larger shard after smaller at " << k;
      }
      EXPECT_LE(first - size, 1u) << "sizes differ by >1 at " << k;
      next = plan[k].end;
    }
    EXPECT_EQ(next, faults) << "plan does not cover the fault list";
  }
}

TEST(PlanShards, ZeroCountsThrow) {
  EXPECT_THROW(plan_shards(0, 4), std::invalid_argument);
  EXPECT_THROW(plan_shards(100, 0), std::invalid_argument);
}

// -------------------------------------------------------------------------
// Merge: sharded results equal a single-process run_all, bit for bit.

std::shared_ptr<const CompiledCircuit> compile(const std::string& name) {
  CircuitSpec spec;
  spec.registry_name = name;
  return CompiledCircuit::compile(spec);
}

FaultSimResult result_shell(const CompiledCircuit& cc, std::size_t seq_len) {
  FaultSimResult r;
  r.circuit = cc.name();
  r.seq_length = seq_len;
  r.detection_time.assign(cc.faults().size(),
                          fault::DetectionResult::kUndetected);
  r.detecting_line.assign(cc.faults().size(), netlist::kNoNode);
  return r;
}

TEST(CampaignMerge, ShardedMergeIsBitIdenticalToRunAll) {
  const auto cc = compile("s298");
  fault::FaultSimulator sim(cc->netlist(), cc->faults(), cc->cones());
  const auto seq = test::random_sequence(
      24, cc->netlist().primary_inputs().size(), 0x5eed);

  const auto whole = sim.run_all(seq);
  FaultSimResult expect = result_shell(*cc, seq.length());
  expect.detection_time = whole.detection_time;
  expect.detecting_line = whole.detecting_line;
  expect.detected = whole.detected_count;

  // Simulate shard by shard and merge out of order.
  const auto trace = sim.make_trace(seq);
  const auto plan = plan_shards(cc->faults().size(), 7);
  std::vector<ShardResult> shards;
  for (const Shard& sh : plan) {
    std::vector<fault::FaultId> ids;
    for (std::uint32_t f = sh.begin; f < sh.end; ++f) ids.push_back(f);
    const auto det = sim.run(trace, ids, {});
    ShardResult s;
    s.shard = sh.index;
    s.begin = sh.begin;
    s.end = sh.end;
    s.detection_time.assign(det.detection_time.begin(),
                            det.detection_time.end());
    s.detecting_line.assign(det.detecting_line.begin(),
                            det.detecting_line.end());
    shards.push_back(std::move(s));
  }
  FaultSimResult merged = result_shell(*cc, seq.length());
  for (std::size_t k = shards.size(); k-- > 0;)  // reverse completion order
    merge_shard(merged, shards[k]);

  EXPECT_EQ(render_fault_sim_result_json(merged),
            render_fault_sim_result_json(expect));
  EXPECT_GT(merged.detected, 0u);
}

TEST(CampaignMerge, ReMergingAShardDoesNotDoubleCount) {
  FaultSimResult r;
  r.circuit = "toy";
  r.detection_time.assign(4, fault::DetectionResult::kUndetected);
  r.detecting_line.assign(4, netlist::kNoNode);
  ShardResult s;
  s.shard = 0;
  s.begin = 1;
  s.end = 3;
  s.detection_time = {5, fault::DetectionResult::kUndetected};
  s.detecting_line = {7, netlist::kNoNode};
  merge_shard(r, s);
  merge_shard(r, s);  // a resume replay
  EXPECT_EQ(r.detected, 1u);
  EXPECT_EQ(r.detection_time[1], 5);
  EXPECT_EQ(r.detecting_line[1], 7u);
}

TEST(CampaignMerge, MalformedShardsThrow) {
  FaultSimResult r;
  r.detection_time.assign(4, -1);
  r.detecting_line.assign(4, netlist::kNoNode);
  ShardResult out_of_range;
  out_of_range.begin = 2;
  out_of_range.end = 5;
  out_of_range.detection_time.assign(3, -1);
  out_of_range.detecting_line.assign(3, netlist::kNoNode);
  EXPECT_THROW(merge_shard(r, out_of_range), std::invalid_argument);
  ShardResult short_slice;
  short_slice.begin = 0;
  short_slice.end = 3;
  short_slice.detection_time.assign(2, -1);
  short_slice.detecting_line.assign(3, netlist::kNoNode);
  EXPECT_THROW(merge_shard(r, short_slice), std::invalid_argument);
}

TEST(CampaignRender, SummaryMatchesFsimFormat) {
  EXPECT_EQ(render_fault_sim_summary("s27", 31, 32, 14),
            "s27: 31/32 faults detected (96.9%), 14 vectors\n");
}

// -------------------------------------------------------------------------
// Checkpoint stream

class CheckpointTest : public ::testing::Test {
 protected:
  std::string path_;

  void SetUp() override {
    path_ = ::testing::TempDir() + "/campaign_ck_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static CampaignHeader header() {
    return {"s298", "equivalence", 493, 8, 24, 0xdeadbeef12345678ull};
  }

  static ShardResult shard(std::uint32_t k, std::int32_t time) {
    ShardResult s;
    s.shard = k;
    s.begin = k * 2;
    s.end = k * 2 + 2;
    s.attempt = 1;
    s.detection_time = {time, fault::DetectionResult::kUndetected};
    s.detecting_line = {9, netlist::kNoNode};
    s.kernel_cycles = 11;
    s.fault_cycles = 3;
    return s;
  }

  void raw_append(const std::string& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
};

TEST_F(CheckpointTest, RoundTripsHeaderShardsAndDone) {
  CampaignCheckpointWriter w;
  w.open(path_, header(), /*resume=*/false);
  w.record_shard(shard(0, 4));
  w.record_retry(1, 2, "worker died");
  w.record_shard(shard(1, 6));
  w.record_done(2, 493);
  w.close();

  const CampaignCheckpoint ck = load_campaign_checkpoint(path_);
  EXPECT_EQ(ck.header.circuit, "s298");
  EXPECT_EQ(ck.header.collapse, "equivalence");
  EXPECT_EQ(ck.header.faults, 493u);
  EXPECT_EQ(ck.header.shards, 8u);
  EXPECT_EQ(ck.header.seq_length, 24u);
  EXPECT_EQ(ck.header.seq_hash, 0xdeadbeef12345678ull);
  ASSERT_EQ(ck.shards.size(), 2u);
  EXPECT_EQ(ck.shards.at(0).detection_time[0], 4);
  EXPECT_EQ(ck.shards.at(1).detection_time[0], 6);
  EXPECT_EQ(ck.shards.at(1).kernel_cycles, 11u);
  EXPECT_EQ(ck.duplicate_records, 0u);
  EXPECT_FALSE(ck.skipped_truncated_line);
  EXPECT_TRUE(ck.complete);
}

TEST_F(CheckpointTest, TruncatedTrailerIsSkippedAndFlagged) {
  CampaignCheckpointWriter w;
  w.open(path_, header(), false);
  w.record_shard(shard(0, 4));
  w.close();
  raw_append("{\"event\":\"shard\",\"shard\":1,\"beg");  // killed mid-append

  const CampaignCheckpoint ck = load_campaign_checkpoint(path_);
  ASSERT_EQ(ck.shards.size(), 1u);
  EXPECT_TRUE(ck.skipped_truncated_line);
  EXPECT_FALSE(ck.complete);
}

TEST_F(CheckpointTest, DuplicateShardRecordsLastWinsAndCounted) {
  CampaignCheckpointWriter w;
  w.open(path_, header(), false);
  w.record_shard(shard(0, 4));
  w.record_shard(shard(0, 9));  // a retried shard re-recorded
  w.close();

  const CampaignCheckpoint ck = load_campaign_checkpoint(path_);
  ASSERT_EQ(ck.shards.size(), 1u);
  EXPECT_EQ(ck.shards.at(0).detection_time[0], 9);
  EXPECT_EQ(ck.duplicate_records, 1u);
}

TEST_F(CheckpointTest, SchemaMismatchThrows) {
  raw_append(
      "{\"schema\":\"wbist.campaign/99\",\"event\":\"header\","
      "\"circuit\":\"s298\",\"collapse\":\"equivalence\",\"faults\":493,"
      "\"shards\":8,\"seq_len\":24,\"seq_hash\":\"0\"}\n");
  EXPECT_THROW(load_campaign_checkpoint(path_), CampaignCheckpointError);
}

TEST_F(CheckpointTest, MissingHeaderThrows) {
  raw_append("{\"event\":\"shard\",\"shard\":0}\n");
  EXPECT_THROW(load_campaign_checkpoint(path_), CampaignCheckpointError);
  std::remove(path_.c_str());
  raw_append("");
  EXPECT_THROW(load_campaign_checkpoint(path_), CampaignCheckpointError);
}

TEST_F(CheckpointTest, CorruptMidFileLineThrows) {
  CampaignCheckpointWriter w;
  w.open(path_, header(), false);
  w.close();
  raw_append("{not json}\n");
  raw_append("{\"event\":\"done\",\"detected\":0,\"faults\":493}\n");
  try {
    load_campaign_checkpoint(path_);
    FAIL() << "corrupt mid-file line must not be tolerated";
  } catch (const CampaignCheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointTest, MalformedShardRecordThrows) {
  CampaignCheckpointWriter w;
  w.open(path_, header(), false);
  w.close();
  // Slice sizes do not match the range.
  raw_append(
      "{\"event\":\"shard\",\"shard\":0,\"begin\":0,\"end\":3,"
      "\"times\":[1],\"lines\":[2]}\n");
  EXPECT_THROW(load_campaign_checkpoint(path_), CampaignCheckpointError);
}

TEST_F(CheckpointTest, ShardWireFieldsRoundTrip) {
  const ShardResult s = shard(3, 17);
  std::string body = "{";
  append_shard_fields(body, s);
  body += '}';
  const ShardResult back = parse_shard_fields(util::json_parse(body));
  EXPECT_EQ(back.shard, s.shard);
  EXPECT_EQ(back.begin, s.begin);
  EXPECT_EQ(back.end, s.end);
  EXPECT_EQ(back.attempt, s.attempt);
  EXPECT_EQ(back.detection_time, s.detection_time);
  EXPECT_EQ(back.detecting_line, s.detecting_line);
  EXPECT_EQ(back.kernel_cycles, s.kernel_cycles);
  EXPECT_EQ(back.fault_cycles, s.fault_cycles);
}

}  // namespace
}  // namespace wbist::core
