#include "core/fsm_synth.h"

#include <gtest/gtest.h>

namespace wbist::core {
namespace {

std::vector<Subsequence> subs(std::initializer_list<const char*> texts) {
  std::vector<Subsequence> out;
  for (const char* t : texts) out.push_back(Subsequence::parse(t));
  return out;
}

std::string bits_to_string(const std::vector<bool>& bits) {
  std::string s;
  for (bool b : bits) s += b ? '1' : '0';
  return s;
}

// ---------------------------------------------------------------------------
// Table 3 of the paper: one FSM producing 00010, 01011 and 11001.
// ---------------------------------------------------------------------------

TEST(FsmSynth, Table3SingleFsm) {
  const auto result =
      synthesize_weight_fsms(subs({"00010", "01011", "11001"}));
  ASSERT_EQ(result.fsms.size(), 1u);
  const WeightFsm& fsm = result.fsms[0];
  EXPECT_EQ(fsm.period, 5u);
  EXPECT_EQ(fsm.state_bits, 3u);  // ceil(log2 5)
  EXPECT_EQ(fsm.outputs.size(), 3u);
}

TEST(FsmSynth, Table3OutputSequences) {
  const auto result =
      synthesize_weight_fsms(subs({"00010", "01011", "11001"}));
  const WeightFsm& fsm = result.fsms[0];
  // "After resetting the machine to state A, it will produce the sequences
  // (00010)^r on z1, (01011)^r on z2 and (11001)^r on z3."
  for (std::size_t k = 0; k < fsm.outputs.size(); ++k) {
    const std::string alpha = fsm.outputs[k].str();
    const auto produced = fsm.run_output(k, 15);
    std::string expect;
    for (std::size_t t = 0; t < 15; ++t) expect += alpha[t % 5];
    EXPECT_EQ(bits_to_string(produced), expect) << "output " << k;
  }
}

TEST(FsmSynth, CounterCyclesThroughPeriod) {
  const auto result = synthesize_weight_fsms(subs({"00010"}));
  const WeightFsm& fsm = result.fsms[0];
  // Walk the synthesized next-state logic: must visit 0,1,2,3,4,0,1,...
  std::uint32_t state = 0;
  for (std::size_t t = 0; t < 12; ++t) {
    EXPECT_EQ(state, t % 5);
    std::uint32_t next = 0;
    for (unsigned b = 0; b < fsm.state_bits; ++b)
      if (fsm.next_state[b].evaluates(state)) next |= 1u << b;
    state = next;
  }
}

TEST(FsmSynth, RepetitionEquivalentsMerged) {
  // "01" and "0101" produce the same sequence -> one output on one FSM.
  const auto result = synthesize_weight_fsms(subs({"01", "0101"}));
  ASSERT_EQ(result.fsms.size(), 1u);
  EXPECT_EQ(result.fsms[0].period, 2u);
  EXPECT_EQ(result.output_count(), 1u);
  // Both originals map to that single output.
  EXPECT_EQ(result.mapping.size(), 2u);
  const auto r1 = result.mapping.at(Subsequence::parse("01"));
  const auto r2 = result.mapping.at(Subsequence::parse("0101"));
  EXPECT_EQ(r1.fsm, r2.fsm);
  EXPECT_EQ(r1.output, r2.output);
}

TEST(FsmSynth, ConstantsBecomeZeroStateFsm) {
  const auto result = synthesize_weight_fsms(subs({"0", "1", "00"}));
  // "0" and "00" merge; period-1 FSM holds both constants, no state bits.
  ASSERT_EQ(result.fsms.size(), 1u);
  EXPECT_EQ(result.fsms[0].period, 1u);
  EXPECT_EQ(result.fsms[0].state_bits, 0u);
  EXPECT_EQ(result.output_count(), 2u);
  EXPECT_EQ(result.flip_flop_count(), 0u);
  // Constant outputs really are constant through the synthesized covers.
  for (std::size_t k = 0; k < 2; ++k) {
    const auto seq = result.fsms[0].run_output(k, 5);
    for (bool b : seq) EXPECT_EQ(b, result.fsms[0].outputs[k].bit(0));
  }
}

TEST(FsmSynth, OneFsmPerDistinctLength) {
  const auto result =
      synthesize_weight_fsms(subs({"0", "01", "10", "100", "110", "1"}));
  EXPECT_EQ(result.fsm_count(), 3u);  // lengths 1, 2, 3
  EXPECT_EQ(result.output_count(), 6u);
  // FSMs sorted by ascending period.
  EXPECT_EQ(result.fsms[0].period, 1u);
  EXPECT_EQ(result.fsms[1].period, 2u);
  EXPECT_EQ(result.fsms[2].period, 3u);
}

TEST(FsmSynth, DuplicatesInInputIgnored) {
  const auto result = synthesize_weight_fsms(subs({"01", "01", "01"}));
  EXPECT_EQ(result.output_count(), 1u);
}

TEST(FsmSynth, Table6CountingSemantics) {
  // subs = 39 distinct subsequences -> out = 38 after one merge, as in the
  // paper's s208 row: model the counting contract on a small instance.
  const auto result = synthesize_weight_fsms(subs({"0", "00", "10", "110"}));
  // "0"/"00" merge (period 1); "10" period 2; "110" period 3.
  EXPECT_EQ(result.output_count(), 3u);
  EXPECT_EQ(result.fsm_count(), 3u);
}

TEST(FsmSynth, EveryOutputMatchesItsSubsequence) {
  // Property over a mixed set: hardware covers always reproduce α^r.
  const auto set = subs({"0", "1", "01", "11", "100", "010", "0110",
                         "10010", "1101001"});
  const auto result = synthesize_weight_fsms(set);
  for (const WeightFsm& fsm : result.fsms) {
    for (std::size_t k = 0; k < fsm.outputs.size(); ++k) {
      const auto got = fsm.run_output(k, 3 * fsm.period + 2);
      for (std::size_t t = 0; t < got.size(); ++t)
        EXPECT_EQ(got[t], fsm.outputs[k].at(t))
            << fsm.outputs[k].str() << " at t=" << t;
    }
  }
}

TEST(FsmSynth, GateCountEstimates) {
  const auto trivial = synthesize_weight_fsms(subs({"0", "1"}));
  EXPECT_EQ(trivial.estimated_gate_count(), 0u);  // constants are wires
  const auto real = synthesize_weight_fsms(subs({"00010", "01011"}));
  EXPECT_GT(real.estimated_gate_count(), 0u);
  EXPECT_EQ(real.flip_flop_count(), 3u);
}

TEST(FsmSynth, StateAtHelper) {
  const auto result = synthesize_weight_fsms(subs({"100"}));
  const WeightFsm& fsm = result.fsms[0];
  EXPECT_EQ(fsm.state_at(0), 0u);
  EXPECT_EQ(fsm.state_at(4), 1u);
}

TEST(FsmSynth, EmptyInput) {
  const auto result = synthesize_weight_fsms({});
  EXPECT_EQ(result.fsm_count(), 0u);
  EXPECT_EQ(result.output_count(), 0u);
}

}  // namespace
}  // namespace wbist::core
