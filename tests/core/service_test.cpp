// The re-entrant job entry points in core/service.h: deterministic output,
// safety of concurrent jobs over one shared CompiledCircuit, and the
// round-trip between tgen's sequence text and fault-sim.
#include "core/service.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/artifact_cache.h"
#include "core/obs.h"
#include "sim/sequence_io.h"
#include "util/json.h"

namespace wbist::core {
namespace {

std::shared_ptr<const CompiledCircuit> compile(const std::string& name) {
  CircuitSpec spec;
  spec.registry_name = name;
  return CompiledCircuit::compile(spec);
}

TEST(ServiceInfo, ReportsTheS27Profile) {
  const auto cc = compile("s27");
  EXPECT_EQ(info_report(*cc),
            "s27\n"
            "  inputs:        4\n"
            "  outputs:       1\n"
            "  flip-flops:    3\n"
            "  logic gates:   10\n"
            "  lines:         26\n"
            "  logic depth:   6\n"
            "  stuck-at faults: 52 uncollapsed, 32 collapsed\n");
}

TEST(ServiceFlow, OutputIsDeterministicAndTimingFree) {
  const auto cc = compile("s27");
  const auto a = run_flow_job(*cc);
  const auto b = run_flow_job(*cc);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.output.find("(0."), std::string::npos)
      << "service output must not contain wall-clock text";
  EXPECT_NE(a.output.find("s27"), std::string::npos);
  EXPECT_NE(a.output.find("f.e."), std::string::npos);
}

TEST(ServiceFlow, ConcurrentJobsOverOneArtifactAgree) {
  // The re-entrancy contract: many jobs may share one immutable
  // CompiledCircuit, each building its own short-lived simulator.
  const auto cc = compile("s298");
  constexpr int kJobs = 4;
  std::vector<std::string> outputs(kJobs);
  std::vector<std::thread> threads;
  threads.reserve(kJobs);
  for (int k = 0; k < kJobs; ++k)
    threads.emplace_back([&, k] { outputs[k] = run_flow_job(*cc).output; });
  for (auto& t : threads) t.join();
  for (int k = 1; k < kJobs; ++k) EXPECT_EQ(outputs[k], outputs[0]);
}

TEST(ServiceTgen, SequenceTextRoundTripsThroughFaultSim) {
  const auto cc = compile("s27");
  const auto tg = run_tgen_job(*cc);
  EXPECT_EQ(tg.detected, tg.total);
  EXPECT_EQ(tg.total, cc->faults().size());
  EXPECT_EQ(tg.summary.find('\n'), std::string::npos);
  EXPECT_EQ(tg.summary.substr(0, 4), "s27:");

  const auto seq = sim::read_sequence(tg.sequence_text);
  EXPECT_EQ(seq.length(), tg.sequence.length());
  const auto fs = run_fault_sim_job(*cc, seq);
  EXPECT_EQ(fs.detected, tg.detected);
  EXPECT_EQ(fs.total, tg.total);
  EXPECT_NE(fs.output.find("100.0%"), std::string::npos);
}

TEST(ServiceFaultSim, RejectsWidthMismatch) {
  const auto cc = compile("s27");
  const sim::TestSequence wrong(3, cc->netlist().stats().primary_inputs + 1);
  EXPECT_THROW(run_fault_sim_job(*cc, wrong), std::exception);
}

TEST(ServiceDeadline, DefaultIsInactiveAndNeverExpires) {
  const Deadline none;
  EXPECT_FALSE(none.active());
  EXPECT_FALSE(none.expired());
  EXPECT_NO_THROW(none.check("anywhere"));
}

TEST(ServiceDeadline, ExpiredDeadlineThrowsBeforeAnyWork) {
  const auto cc = compile("s27");
  const auto expired = Deadline::after_ms(1);
  while (!expired.expired()) std::this_thread::yield();
  EXPECT_THROW(run_flow_job(*cc, {}, expired), DeadlineExceeded);
  EXPECT_THROW(run_tgen_job(*cc, {}, {}, expired), DeadlineExceeded);
  const auto tg = run_tgen_job(*cc);
  const auto seq = sim::read_sequence(tg.sequence_text);
  EXPECT_THROW(run_fault_sim_job(*cc, seq, 0, expired), DeadlineExceeded);
}

TEST(ServiceObservation, FlowCaptureIsObservationOnlyAndRecordsStages) {
  const auto cc = compile("s27");
  JobObservation obs;
  const auto observed = run_flow_job(*cc, {}, {}, &obs);
  const auto plain = run_flow_job(*cc);
  // The observation contract: capture never changes the primary output.
  EXPECT_EQ(observed.output, plain.output);

  const auto v = util::json_parse(obs.to_json());
  EXPECT_EQ(v.get_string("schema"), kObsSchema);
  const util::JsonValue* spans = v.get("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->as_array().size(), 1u);
  EXPECT_EQ(spans->as_array()[0].get_string("name"), "flow");
  EXPECT_GE(spans->as_array()[0].get_int("start_us", -1), 0);
  EXPECT_GE(spans->as_array()[0].get_int("dur_us", -1), 0);
  const util::JsonValue* counters = v.get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->get_int("fault_sim.kernel_cycles", 0), 0);
  EXPECT_GT(counters->get_int("procedure.full_simulations", 0), 0);
}

TEST(ServiceObservation, TgenCapturesGenerateAndCompactionSpans) {
  const auto cc = compile("s27");
  JobObservation obs;
  const auto with = run_tgen_job(*cc, {}, {}, {}, &obs);
  const auto without = run_tgen_job(*cc);
  EXPECT_EQ(with.sequence_text, without.sequence_text);

  const auto v = util::json_parse(obs.to_json());
  std::vector<std::string> names;
  for (const auto& s : v.get("spans")->as_array())
    names.push_back(s.get_string("name"));
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "generate");
  EXPECT_EQ(names[1], "compaction");
}

TEST(ServiceObservation, NullObservationScopesAreNoOps) {
  // Scope and CounterDelta must tolerate a null recorder so call sites
  // never branch on whether observation is on.
  JobObservation::Scope scope(nullptr, "stage");
  JobObservation::CounterDelta delta(nullptr, "counter");
  const auto cc = compile("s27");
  EXPECT_NO_THROW(run_flow_job(*cc, {}, {}, nullptr));
}

TEST(ServiceDeadline, GenerousDeadlineLeavesOutputBitIdentical) {
  // The core contract: a deadline decides whether a job runs, never what
  // it produces. A job that completes under a deadline is byte-for-byte
  // the job that runs without one.
  const auto cc = compile("s27");
  const auto generous = Deadline::after_ms(600000);
  EXPECT_EQ(run_flow_job(*cc, {}, generous).output, run_flow_job(*cc).output);
  EXPECT_EQ(run_tgen_job(*cc, {}, {}, generous).sequence_text,
            run_tgen_job(*cc).sequence_text);
}

}  // namespace
}  // namespace wbist::core
