// The re-entrant job entry points in core/service.h: deterministic output,
// safety of concurrent jobs over one shared CompiledCircuit, and the
// round-trip between tgen's sequence text and fault-sim.
#include "core/service.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/artifact_cache.h"
#include "sim/sequence_io.h"

namespace wbist::core {
namespace {

std::shared_ptr<const CompiledCircuit> compile(const std::string& name) {
  CircuitSpec spec;
  spec.registry_name = name;
  return CompiledCircuit::compile(spec);
}

TEST(ServiceInfo, ReportsTheS27Profile) {
  const auto cc = compile("s27");
  EXPECT_EQ(info_report(*cc),
            "s27\n"
            "  inputs:        4\n"
            "  outputs:       1\n"
            "  flip-flops:    3\n"
            "  logic gates:   10\n"
            "  lines:         26\n"
            "  logic depth:   6\n"
            "  stuck-at faults: 52 uncollapsed, 32 collapsed\n");
}

TEST(ServiceFlow, OutputIsDeterministicAndTimingFree) {
  const auto cc = compile("s27");
  const auto a = run_flow_job(*cc);
  const auto b = run_flow_job(*cc);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.output.find("(0."), std::string::npos)
      << "service output must not contain wall-clock text";
  EXPECT_NE(a.output.find("s27"), std::string::npos);
  EXPECT_NE(a.output.find("f.e."), std::string::npos);
}

TEST(ServiceFlow, ConcurrentJobsOverOneArtifactAgree) {
  // The re-entrancy contract: many jobs may share one immutable
  // CompiledCircuit, each building its own short-lived simulator.
  const auto cc = compile("s298");
  constexpr int kJobs = 4;
  std::vector<std::string> outputs(kJobs);
  std::vector<std::thread> threads;
  threads.reserve(kJobs);
  for (int k = 0; k < kJobs; ++k)
    threads.emplace_back([&, k] { outputs[k] = run_flow_job(*cc).output; });
  for (auto& t : threads) t.join();
  for (int k = 1; k < kJobs; ++k) EXPECT_EQ(outputs[k], outputs[0]);
}

TEST(ServiceTgen, SequenceTextRoundTripsThroughFaultSim) {
  const auto cc = compile("s27");
  const auto tg = run_tgen_job(*cc);
  EXPECT_EQ(tg.detected, tg.total);
  EXPECT_EQ(tg.total, cc->faults().size());
  EXPECT_EQ(tg.summary.find('\n'), std::string::npos);
  EXPECT_EQ(tg.summary.substr(0, 4), "s27:");

  const auto seq = sim::read_sequence(tg.sequence_text);
  EXPECT_EQ(seq.length(), tg.sequence.length());
  const auto fs = run_fault_sim_job(*cc, seq);
  EXPECT_EQ(fs.detected, tg.detected);
  EXPECT_EQ(fs.total, tg.total);
  EXPECT_NE(fs.output.find("100.0%"), std::string::npos);
}

TEST(ServiceFaultSim, RejectsWidthMismatch) {
  const auto cc = compile("s27");
  const sim::TestSequence wrong(3, cc->netlist().stats().primary_inputs + 1);
  EXPECT_THROW(run_fault_sim_job(*cc, wrong), std::exception);
}

}  // namespace
}  // namespace wbist::core
