#include "core/weight_set.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"

namespace wbist::core {
namespace {

TEST(WeightSet, AddDeduplicates) {
  WeightSet s;
  EXPECT_EQ(s.add(Subsequence::parse("01")), 0u);
  EXPECT_EQ(s.add(Subsequence::parse("10")), 1u);
  EXPECT_EQ(s.add(Subsequence::parse("01")), 0u);  // already present
  EXPECT_EQ(s.size(), 2u);
}

TEST(WeightSet, KeepsRepetitionEquivalentsDistinct) {
  // The paper keeps "0" and "00" as separate members of S.
  WeightSet s;
  s.add(Subsequence::parse("0"));
  s.add(Subsequence::parse("00"));
  EXPECT_EQ(s.size(), 2u);
}

TEST(WeightSet, IndexOf) {
  WeightSet s;
  s.add(Subsequence::parse("1"));
  s.add(Subsequence::parse("11"));
  EXPECT_EQ(s.index_of(Subsequence::parse("11")), 1u);
  EXPECT_THROW(s.index_of(Subsequence::parse("0")), std::out_of_range);
  EXPECT_TRUE(s.contains(Subsequence::parse("1")));
  EXPECT_FALSE(s.contains(Subsequence::parse("0")));
}

TEST(WeightSet, AllUpTo3ReproducesTable4) {
  // Table 4 of the paper: the complete weight set for s27, in order.
  const WeightSet s = WeightSet::all_up_to(3);
  const char* expected[] = {"0",   "1",   "00",  "10",  "01",  "11",  "000",
                            "100", "010", "110", "001", "101", "011", "111"};
  ASSERT_EQ(s.size(), 14u);
  for (std::size_t j = 0; j < 14; ++j)
    EXPECT_EQ(s[j].str(), expected[j]) << "index " << j;
}

TEST(WeightSet, Table4Indices) {
  // Table 5 refers to members by index: (4)=01, (7)=100, (0)=0, (2)=00,
  // (6)=000, (1)=1.
  const WeightSet s = WeightSet::all_up_to(3);
  EXPECT_EQ(s.index_of(Subsequence::parse("01")), 4u);
  EXPECT_EQ(s.index_of(Subsequence::parse("100")), 7u);
  EXPECT_EQ(s.index_of(Subsequence::parse("0")), 0u);
  EXPECT_EQ(s.index_of(Subsequence::parse("00")), 2u);
  EXPECT_EQ(s.index_of(Subsequence::parse("000")), 6u);
  EXPECT_EQ(s.index_of(Subsequence::parse("1")), 1u);
}

TEST(WeightSet, ExtendDerivesPerInput) {
  const auto T = circuits::s27_paper_sequence();
  WeightSet s;
  // u = 9, L_S = 3: Section 2 derives 100 (input 0), 000 (input 1),
  // 100 (input 2), 100 (input 3) -> two distinct new members.
  const std::size_t added = s.extend(T, 9, 3);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(s.contains(Subsequence::parse("100")));
  EXPECT_TRUE(s.contains(Subsequence::parse("000")));
}

TEST(WeightSet, ExtendIsIdempotent) {
  const auto T = circuits::s27_paper_sequence();
  WeightSet s;
  s.extend(T, 9, 3);
  const std::size_t size = s.size();
  EXPECT_EQ(s.extend(T, 9, 3), 0u);
  EXPECT_EQ(s.size(), size);
}

TEST(WeightSet, ExtendSkipsXWindows) {
  const auto T = sim::TestSequence::from_rows({"x1", "01"});
  WeightSet s;
  // Input 0 has X at u=0: length-2 derivation fails, length-1 succeeds.
  s.extend(T, 1, 2);
  EXPECT_EQ(s.size(), 1u);                             // only input 1's "01"
  EXPECT_TRUE(s.contains(Subsequence::parse("11")));
}

}  // namespace
}  // namespace wbist::core
