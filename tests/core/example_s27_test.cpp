// End-to-end reproduction of the paper's Section 2 walkthrough on s27:
// Table 1 (deterministic sequence), the weight selection narrative, Table 2
// (the generated weighted sequence) and its detection counts.
#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "core/assignment.h"
#include "core/weight_set.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"

namespace wbist::core {
namespace {

using fault::FaultSet;
using fault::FaultSimulator;

class PaperExample : public testing::Test {
 protected:
  PaperExample()
      : nl_(circuits::s27()),
        faults_(FaultSet::collapsed(nl_)),
        sim_(nl_, faults_),
        T_(circuits::s27_paper_sequence()),
        det_(sim_.run_all(T_)) {}

  netlist::Netlist nl_;
  FaultSet faults_;
  FaultSimulator sim_;
  sim::TestSequence T_;
  fault::DetectionResult det_;
};

TEST_F(PaperExample, Table1DetectsAllThirtyTwoFaults) {
  EXPECT_EQ(faults_.size(), 32u);
  EXPECT_EQ(det_.detected_count, 32u);
}

TEST_F(PaperExample, LastDetectionIsAtTimeNine) {
  std::int32_t last = -1;
  for (const auto t : det_.detection_time) last = std::max(last, t);
  EXPECT_EQ(last, 9);
}

TEST_F(PaperExample, BestMatchWeightsAreThePaperChoice) {
  // Section 2 selects subsequences (01, 0, 100, 1) for inputs 0..3 as the
  // best matches around detection time 9.
  const WeightSet S = WeightSet::all_up_to(3);
  const CandidateSets sets = build_candidate_sets(S, T_, 9, 3, false);
  const WeightAssignment best = sets.assignment_at(0);
  EXPECT_EQ(best.str(), "01 / 0 / 100 / 1");
}

TEST_F(PaperExample, WeightedSequenceOfTable2) {
  const WeightSet S = WeightSet::all_up_to(3);
  const CandidateSets sets = build_candidate_sets(S, T_, 9, 3, false);
  const sim::TestSequence tg = sets.assignment_at(0).expand(12);
  EXPECT_EQ(tg, circuits::s27_paper_weighted_sequence());
}

TEST_F(PaperExample, WeightedSequenceDetectsNineFaults) {
  // "This sequence detects f10 as well as eight additional faults."
  const WeightSet S = WeightSet::all_up_to(3);
  const CandidateSets sets = build_candidate_sets(S, T_, 9, 3, false);
  // Use a longer expansion (the paper's L_G would be much longer than 12;
  // Table 2 just prints the first 12 cycles). Detection counts at length 12
  // match the paper's statement.
  const sim::TestSequence tg = sets.assignment_at(0).expand(12);
  const auto det = sim_.run_all(tg);
  EXPECT_EQ(det.detected_count, 9u);
}

TEST_F(PaperExample, SecondBestAssignmentDetectsAdditionalFaults) {
  // "Using these subsequences, we obtain a weighted sequence that detects 4
  // additional faults." Exact counts depend on the fault-simulation
  // idiosyncrasies of the original tool; assert the qualitative claim: the
  // second assignment detects faults the first one misses.
  const WeightSet S = WeightSet::all_up_to(3);
  const CandidateSets sets = build_candidate_sets(S, T_, 9, 3, false);
  const auto first = sim_.run_all(sets.assignment_at(0).expand(12));
  const auto second = sim_.run_all(sets.assignment_at(1).expand(12));
  std::size_t additional = 0;
  for (fault::FaultId id = 0; id < faults_.size(); ++id)
    if (second.detected(id) && !first.detected(id)) ++additional;
  EXPECT_GT(additional, 0u);
}

TEST_F(PaperExample, SecondBestMatchesNarrative) {
  // Second-best per Section 2: 100 (7 matches), 00 (7), 01 (5), 100 (7).
  const WeightSet S = WeightSet::all_up_to(3);
  const CandidateSets sets = build_candidate_sets(S, T_, 9, 3, false);
  const WeightAssignment w = sets.assignment_at(1);
  EXPECT_EQ(w.str(), "100 / 00 / 01 / 100");
  EXPECT_EQ(sets.per_input[0][1].n_m, 7u);
  EXPECT_EQ(sets.per_input[1][1].n_m, 7u);
  EXPECT_EQ(sets.per_input[2][1].n_m, 5u);
  EXPECT_EQ(sets.per_input[3][1].n_m, 7u);
}

TEST_F(PaperExample, Section3WindowReproduction) {
  // Section 3's example: u = 8, L_S = 4 derives (0110, 0000, 0100, 0110).
  WeightSet S;
  S.extend(T_, 8, 4);
  EXPECT_TRUE(S.contains(Subsequence::parse("0110")));
  EXPECT_TRUE(S.contains(Subsequence::parse("0000")));
  EXPECT_TRUE(S.contains(Subsequence::parse("0100")));
  EXPECT_EQ(S.size(), 3u);  // input 3 shares 0110 with input 0
}

}  // namespace
}  // namespace wbist::core
