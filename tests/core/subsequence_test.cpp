#include "core/subsequence.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"

namespace wbist::core {
namespace {

using sim::Val3;

std::vector<Val3> column(const char* bits) {
  std::vector<Val3> out;
  for (const char* p = bits; *p; ++p) out.push_back(sim::val3_from_char(*p));
  return out;
}

TEST(Subsequence, ParseAndStr) {
  EXPECT_EQ(Subsequence::parse("001").str(), "001");
  EXPECT_EQ(Subsequence::parse("1").length(), 1u);
  EXPECT_TRUE(Subsequence().empty());
  EXPECT_THROW(Subsequence::parse("01x"), std::invalid_argument);
}

TEST(Subsequence, PeriodicExpansion) {
  const Subsequence alpha = Subsequence::parse("100");
  // (100)^r = 100100100...
  const char* expect = "100100100100";
  for (std::size_t u = 0; u < 12; ++u)
    EXPECT_EQ(alpha.at(u), expect[u] == '1') << u;
}

TEST(Subsequence, DerivePaperSection3Example) {
  // Section 3: s27, u = 8, L_S = 4, input 0: window 1100 at times 5..8
  // yields α = 0110 ("we obtain α = 0110").
  const auto T0 = column("0101011001");
  const auto alpha = Subsequence::derive(T0, 8, 4);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(alpha->str(), "0110");
  // Repetition "matches T_0 perfectly at time units 5 to 8".
  EXPECT_TRUE(alpha->matches_window(T0, 8));
}

TEST(Subsequence, DerivePaperSection2Examples) {
  // Section 2, detection time u = 9.
  const auto T0 = column("0101011001");
  EXPECT_EQ(Subsequence::derive(T0, 9, 1)->str(), "1");
  EXPECT_EQ(Subsequence::derive(T0, 9, 2)->str(), "01");
  EXPECT_EQ(Subsequence::derive(T0, 9, 3)->str(), "100");
  const auto T1 = column("1010100000");
  EXPECT_EQ(Subsequence::derive(T1, 9, 1)->str(), "0");
  EXPECT_EQ(Subsequence::derive(T1, 9, 2)->str(), "00");
  EXPECT_EQ(Subsequence::derive(T1, 9, 3)->str(), "000");
}

TEST(Subsequence, DeriveRejectsBadWindows) {
  const auto T0 = column("0101011001");
  EXPECT_FALSE(Subsequence::derive(T0, 2, 4).has_value());  // len > u+1
  EXPECT_FALSE(Subsequence::derive(T0, 9, 0).has_value());  // len 0
  EXPECT_FALSE(Subsequence::derive(T0, 42, 2).has_value()); // u out of range
  const auto with_x = column("01x1");
  EXPECT_FALSE(Subsequence::derive(with_x, 3, 2).has_value());  // X in window
  EXPECT_TRUE(Subsequence::derive(with_x, 3, 1).has_value());   // X outside
}

TEST(Subsequence, DeriveFullPrefixReproducesT) {
  // L_S = u+1 gives α = T_i(0..u): the reproduction guarantee of Section 3.
  const auto T0 = column("0101011001");
  const auto alpha = Subsequence::derive(T0, 9, 10);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(alpha->str(), "0101011001");
  for (std::size_t u = 0; u < 10; ++u)
    EXPECT_EQ(alpha->value_at(u), T0[u]);
}

TEST(Subsequence, MatchCountTable5Values) {
  // n_m values from Table 5 of the paper.
  const auto T0 = column("0101011001");
  EXPECT_EQ(Subsequence::parse("01").match_count(T0), 8u);
  EXPECT_EQ(Subsequence::parse("100").match_count(T0), 7u);
  EXPECT_EQ(Subsequence::parse("1").match_count(T0), 5u);
  const auto T1 = column("1010100000");
  EXPECT_EQ(Subsequence::parse("0").match_count(T1), 7u);
  EXPECT_EQ(Subsequence::parse("00").match_count(T1), 7u);
  EXPECT_EQ(Subsequence::parse("000").match_count(T1), 7u);
  const auto T2 = column("1010010001");
  EXPECT_EQ(Subsequence::parse("100").match_count(T2), 6u);
  EXPECT_EQ(Subsequence::parse("01").match_count(T2), 5u);
  EXPECT_EQ(Subsequence::parse("1").match_count(T2), 4u);
  const auto T3 = column("1111011001");
  EXPECT_EQ(Subsequence::parse("1").match_count(T3), 7u);
  EXPECT_EQ(Subsequence::parse("100").match_count(T3), 7u);
  EXPECT_EQ(Subsequence::parse("01").match_count(T3), 6u);
}

TEST(Subsequence, MatchesWindowSemantics) {
  const auto T0 = column("0101011001");
  EXPECT_TRUE(Subsequence::parse("01").matches_window(T0, 9));
  EXPECT_TRUE(Subsequence::parse("100").matches_window(T0, 9));
  EXPECT_FALSE(Subsequence::parse("11").matches_window(T0, 9));
  EXPECT_FALSE(Subsequence::parse("0").matches_window(T0, 9));
  // Window longer than available history never matches.
  EXPECT_FALSE(Subsequence::parse("0101").matches_window(T0, 2));
}

TEST(Subsequence, XInColumnNeverMatches) {
  const auto col = column("x1");
  EXPECT_FALSE(Subsequence::parse("01").matches_window(col, 1));
  EXPECT_EQ(Subsequence::parse("01").match_count(col), 1u);
}

TEST(Subsequence, PrimitiveReduction) {
  EXPECT_EQ(Subsequence::parse("0101").primitive().str(), "01");
  EXPECT_EQ(Subsequence::parse("00").primitive().str(), "0");
  EXPECT_EQ(Subsequence::parse("000").primitive().str(), "0");
  EXPECT_EQ(Subsequence::parse("011011").primitive().str(), "011");
  // Non-divisor repetitions do not reduce.
  EXPECT_EQ(Subsequence::parse("01010").primitive().str(), "01010");
  EXPECT_EQ(Subsequence::parse("100").primitive().str(), "100");
  EXPECT_EQ(Subsequence::parse("1").primitive().str(), "1");
}

TEST(Subsequence, PrimitivePreservesExpansion) {
  for (const char* s : {"0101", "110110", "00", "10", "111", "010010"}) {
    const Subsequence orig = Subsequence::parse(s);
    const Subsequence prim = orig.primitive();
    for (std::size_t u = 0; u < 24; ++u)
      EXPECT_EQ(prim.at(u), orig.at(u)) << s << " at " << u;
  }
}

TEST(Subsequence, HashAndEquality) {
  const SubsequenceHash h;
  EXPECT_EQ(Subsequence::parse("01"), Subsequence::parse("01"));
  EXPECT_NE(Subsequence::parse("01"), Subsequence::parse("10"));
  EXPECT_NE(Subsequence::parse("0"), Subsequence::parse("00"));
  EXPECT_EQ(h(Subsequence::parse("01")), h(Subsequence::parse("01")));
  EXPECT_NE(h(Subsequence::parse("0")), h(Subsequence::parse("00")));
}

/// Property: derive + matches_window round-trip for every window of the
/// paper's s27 sequence.
TEST(Subsequence, DeriveAlwaysMatchesItsWindow) {
  const auto T = circuits::s27_paper_sequence();
  for (std::size_t i = 0; i < T.width(); ++i) {
    const auto col = T.column(i);
    for (std::size_t u = 0; u < T.length(); ++u) {
      for (std::size_t len = 1; len <= u + 1; ++len) {
        const auto alpha = Subsequence::derive(col, u, len);
        ASSERT_TRUE(alpha.has_value());
        EXPECT_TRUE(alpha->matches_window(col, u))
            << "i=" << i << " u=" << u << " len=" << len;
      }
    }
  }
}

}  // namespace
}  // namespace wbist::core
