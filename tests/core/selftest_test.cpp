#include "core/selftest.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "core/flow.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/good_sim.h"

namespace wbist::core {
namespace {

using fault::FaultSet;
using fault::FaultSimulator;
using sim::Val3;

struct StFixture {
  explicit StFixture(const char* name, unsigned misr_width = 16)
      : nl(circuits::circuit_by_name(name)),
        faults(FaultSet::collapsed(nl)),
        sim(nl, faults) {
    FlowConfig cfg;
    cfg.tgen.max_length = 512;
    cfg.procedure.sequence_length = 60;
    flow = run_flow(sim, name, cfg);
    SelfTestConfig sc;
    sc.misr_width = misr_width;
    st = assemble_self_test(nl, faults, flow.pruned.omega,
                            flow.procedure.sequence_length, sc);
  }

  netlist::Netlist nl;
  FaultSet faults;
  FaultSimulator sim;
  FlowResult flow;
  SelfTestHardware st;
};

/// Run the assembled chip: R pulse, free-run, return the signature (X bits
/// reported via `binary`).
std::uint32_t run_selftest(const SelfTestHardware& st, bool& binary) {
  sim::GoodSimulator s(st.netlist);
  s.step(std::vector<Val3>{Val3::kOne});
  for (std::size_t t = 0; t < st.total_cycles(); ++t)
    s.step(std::vector<Val3>{Val3::kZero});
  binary = true;
  std::uint32_t sig = 0;
  for (std::size_t k = 0; k < st.misr_state.size(); ++k) {
    const Val3 v = s.value(st.misr_state[k]);
    if (v == Val3::kX) binary = false;
    if (v == Val3::kOne) sig |= std::uint32_t{1} << k;
  }
  return sig;
}

TEST(SelfTest, AssembledChipReproducesGoldenSignature) {
  // The strongest integration check in the library: software golden model
  // (weight expansion + CUT simulation + software MISR) versus the fully
  // assembled gate-level netlist (generator + CUT copy + comparator-gated
  // MISR), cycle-accurate, one input pin.
  StFixture f("s27");
  bool binary = false;
  const std::uint32_t sig = run_selftest(f.st, binary);
  EXPECT_TRUE(binary);
  EXPECT_EQ(sig, f.st.expected_signature);
}

TEST(SelfTest, WorksOnSyntheticCircuit) {
  StFixture f("s298", 24);
  bool binary = false;
  const std::uint32_t sig = run_selftest(f.st, binary);
  EXPECT_TRUE(binary);
  EXPECT_EQ(sig, f.st.expected_signature);
}

TEST(SelfTest, SingleInputSingleClockInterface) {
  StFixture f("s27");
  EXPECT_EQ(f.st.netlist.primary_inputs().size(), 1u);
  EXPECT_EQ(f.st.netlist.primary_outputs().size(), f.st.misr_state.size());
}

TEST(SelfTest, FaultsChangeTheSignature) {
  // Inject translated CUT faults into the assembled chip; a healthy
  // majority must yield a signature different from the golden one (that is
  // the whole point of BIST).
  StFixture f("s27");
  FaultSimulator fsim(f.st.netlist, f.st.cut_faults);

  sim::TestSequence seq(0, 1);
  {
    std::vector<Val3> row{Val3::kOne};
    seq.append(row);
    row[0] = Val3::kZero;
    for (std::size_t t = 0; t < f.st.total_cycles(); ++t) seq.append(row);
  }
  const auto ids = f.st.cut_faults.all_ids();
  const auto final_bits = fsim.observe_final(seq, ids, f.st.misr_state);

  std::size_t caught = 0;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    bool binary = true;
    std::uint32_t sig = 0;
    for (std::size_t b = 0; b < f.st.misr_state.size(); ++b) {
      if (final_bits[k][b] == Val3::kX) binary = false;
      if (final_bits[k][b] == Val3::kOne) sig |= std::uint32_t{1} << b;
    }
    if (!binary || sig != f.st.expected_signature) ++caught;
  }
  // 32 collapsed faults; the weighted sessions detect all of them at the
  // POs, so the signature (with X counted as "fails the compare") must
  // catch most.
  EXPECT_GE(caught, f.faults.size() * 3 / 4);
}

TEST(SelfTest, WarmupIsRespected) {
  StFixture f("s27");
  EXPECT_LT(f.st.warmup_cycles,
            f.st.session_length * f.st.session_count);
  // Warm-up margin shifts the enable point.
  SelfTestConfig cfg;
  cfg.warmup_margin = 3;
  const SelfTestHardware st2 =
      assemble_self_test(f.nl, f.faults, f.flow.pruned.omega,
                         f.flow.procedure.sequence_length, cfg);
  EXPECT_EQ(st2.warmup_cycles, f.st.warmup_cycles + 3);
  bool binary = false;
  const std::uint32_t sig = run_selftest(st2, binary);
  EXPECT_TRUE(binary);
  EXPECT_EQ(sig, st2.expected_signature);
}

TEST(SelfTest, EmptyOmegaRejected) {
  const auto nl = circuits::s27();
  const auto faults = FaultSet::collapsed(nl);
  EXPECT_THROW(assemble_self_test(nl, faults, {}, 100, {}),
               std::invalid_argument);
}

TEST(SelfTest, TranslatedFaultsAlignWithOriginals) {
  StFixture f("s27");
  ASSERT_EQ(f.st.cut_faults.size(), f.faults.size());
  for (fault::FaultId id = 0; id < f.faults.size(); ++id) {
    EXPECT_EQ(f.st.cut_faults[id].pin, f.faults[id].pin);
    EXPECT_EQ(f.st.cut_faults[id].stuck_at_one, f.faults[id].stuck_at_one);
  }
}

}  // namespace
}  // namespace wbist::core
