#include "core/procedure.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "circuits/iscas.h"
#include "circuits/registry.h"
#include "fault/fault_list.h"
#include "tgen/random_tgen.h"

namespace wbist::core {
namespace {

using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;

struct Fixture {
  explicit Fixture(const char* name)
      : nl(circuits::circuit_by_name(name)),
        faults(FaultSet::collapsed(nl)),
        sim(nl, faults) {}
  netlist::Netlist nl;
  FaultSet faults;
  FaultSimulator sim;
};

TEST(Procedure, CompleteFaultEfficiencyOnS27PaperSequence) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  ASSERT_EQ(det.detected_count, 32u);

  ProcedureConfig cfg;
  cfg.sequence_length = 100;
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);
  EXPECT_EQ(res.target_count, 32u);
  EXPECT_EQ(res.detected_count, 32u);
  EXPECT_EQ(res.abandoned_count, 0u);
  EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0);
  EXPECT_FALSE(res.omega.empty());
}

TEST(Procedure, OneGoodMachineSimulationPerCandidate) {
  // The sample pass and the full pass of each candidate T_G share one
  // good-machine trace, so good-machine simulations == candidates tried.
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);

  ProcedureConfig cfg;
  cfg.sequence_length = 100;
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);
  EXPECT_EQ(res.stats.good_machine_sims, res.stats.assignments_tried);
  // Without sharing, every sample pass and every full simulation would have
  // re-run the good machine (tried + full > tried whenever anything passed
  // the sample filter).
  EXPECT_GT(res.stats.full_simulations, 0u);
  EXPECT_LT(res.stats.good_machine_sims,
            res.stats.assignments_tried + res.stats.full_simulations);
}

TEST(Procedure, ThreadedRunMatchesSerial) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);

  ProcedureConfig serial;
  serial.sequence_length = 100;
  serial.threads = 1;
  ProcedureConfig parallel = serial;
  parallel.threads = 4;
  const ProcedureResult a =
      select_weight_assignments(f.sim, T, det.detection_time, serial);
  const ProcedureResult b =
      select_weight_assignments(f.sim, T, det.detection_time, parallel);
  EXPECT_EQ(a.detected_count, b.detected_count);
  EXPECT_EQ(a.omega.size(), b.omega.size());
  for (std::size_t i = 0; i < a.omega.size(); ++i)
    EXPECT_TRUE(a.omega[i] == b.omega[i]) << "omega diverged at " << i;
}

TEST(Procedure, OmegaSequencesCoverAllTargets) {
  // Re-simulate every Ω sequence: their union must equal the target set.
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  ProcedureConfig cfg;
  cfg.sequence_length = 100;
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);

  std::vector<bool> covered(f.faults.size(), false);
  for (const WeightAssignment& w : res.omega) {
    const auto tg = w.expand(res.sequence_length);
    const auto d = f.sim.run(tg, f.faults.all_ids());
    for (FaultId id = 0; id < f.faults.size(); ++id)
      if (d.detected(id)) covered[id] = true;
  }
  for (FaultId id = 0; id < f.faults.size(); ++id) {
    if (det.detection_time[id] != DetectionResult::kUndetected) {
      EXPECT_TRUE(covered[id]) << "target fault " << id << " uncovered";
    }
  }
}

TEST(Procedure, EveryOmegaMemberWasUseful) {
  // Each stored assignment must have detected at least one fault that no
  // earlier assignment detected (the procedure drops useless sequences).
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  ProcedureConfig cfg;
  cfg.sequence_length = 100;
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);

  std::vector<bool> covered(f.faults.size(), false);
  for (const WeightAssignment& w : res.omega) {
    const auto d = f.sim.run(w.expand(res.sequence_length),
                             f.faults.all_ids());
    bool useful = false;
    for (FaultId id = 0; id < f.faults.size(); ++id) {
      if (det.detection_time[id] == DetectionResult::kUndetected) continue;
      if (d.detected(id) && !covered[id]) {
        covered[id] = true;
        useful = true;
      }
    }
    EXPECT_TRUE(useful);
  }
}

TEST(Procedure, SequenceLengthRaisedToT) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  ProcedureConfig cfg;
  cfg.sequence_length = 3;  // shorter than |T| = 10
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);
  EXPECT_EQ(res.sequence_length, 10u);
  EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0);
}

TEST(Procedure, ExactPaperScheduleAlsoCompletes) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  ProcedureConfig cfg;
  cfg.sequence_length = 50;
  cfg.exact_paper_schedule = true;
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);
  EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0);
}

TEST(Procedure, DeterministicForSeed) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  ProcedureConfig cfg;
  cfg.sequence_length = 60;
  const ProcedureResult a =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);
  const ProcedureResult b =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);
  EXPECT_EQ(a.omega, b.omega);
  EXPECT_EQ(a.weights.size(), b.weights.size());
}

TEST(Procedure, MisalignedDetectionTimesRejected) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const std::vector<std::int32_t> wrong(7, 0);
  EXPECT_THROW(select_weight_assignments(f.sim, T, wrong, {}),
               std::invalid_argument);
}

TEST(Procedure, NoTargetsYieldsEmptyOmega) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const std::vector<std::int32_t> none(f.faults.size(),
                                       DetectionResult::kUndetected);
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, none, {});
  EXPECT_TRUE(res.omega.empty());
  EXPECT_EQ(res.target_count, 0u);
  EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0);
}

TEST(Procedure, StatsArepopulated) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  ProcedureConfig cfg;
  cfg.sequence_length = 60;
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);
  EXPECT_GE(res.stats.assignments_tried, res.omega.size());
  EXPECT_GE(res.stats.full_simulations, res.omega.size());
}

// build_presim_sample pins the sample semantics documented on
// ProcedureConfig::sample_size: distinct faults only, sample_size honored
// even below the old hard-coded front slice of 4, and 0 = no sample pass.

TEST(PresimSample, ZeroSampleSizeYieldsEmptySample) {
  util::Rng rng(1);
  const std::vector<FaultId> targets{5, 6, 7};
  const std::vector<FaultId> remaining{1, 2, 3, 5, 6, 7};
  EXPECT_TRUE(build_presim_sample(targets, remaining, 0, rng).empty());
  EXPECT_TRUE(build_presim_sample(targets, {}, 8, rng).empty());
}

TEST(PresimSample, HonorsSampleSizesBelowEight) {
  util::Rng rng(2);
  std::vector<FaultId> remaining;
  for (FaultId f = 0; f < 100; ++f) remaining.push_back(f);
  const std::vector<FaultId> targets{40, 41, 42, 43, 44, 45};
  for (std::size_t size : {1u, 2u, 3u, 5u, 7u}) {
    const auto sample = build_presim_sample(targets, remaining, size, rng);
    EXPECT_LE(sample.size(), size) << "sample_size " << size;
    EXPECT_FALSE(sample.empty());
    // The front slice always seeds the sample with the first target(s).
    EXPECT_EQ(sample[0], targets[0]);
  }
}

TEST(PresimSample, NeverContainsDuplicates) {
  util::Rng rng(3);
  const std::vector<FaultId> remaining{1, 2, 3};
  // Duplicated targets and a tiny fault list force the dedupe paths.
  const std::vector<FaultId> targets{2, 2, 2, 3};
  for (int round = 0; round < 50; ++round) {
    const auto sample = build_presim_sample(targets, remaining, 32, rng);
    std::unordered_set<FaultId> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), sample.size());
    EXPECT_LE(sample.size(), remaining.size());
  }
}

TEST(Procedure, SampleSizeZeroDisablesSamplePass) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  ProcedureConfig cfg;
  cfg.sequence_length = 100;
  cfg.sample_size = 0;
  const ProcedureResult res =
      select_weight_assignments(f.sim, T, det.detection_time, cfg);
  // No sample pass: nothing can be rejected by it, and every candidate
  // tried is fully simulated.
  EXPECT_EQ(res.stats.sample_rejections, 0u);
  EXPECT_EQ(res.stats.full_simulations, res.stats.assignments_tried);
  EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0);
}

TEST(Procedure, SmallSampleSizeStillReachesFullEfficiency) {
  Fixture f("s27");
  const auto T = circuits::s27_paper_sequence();
  const auto det = f.sim.run_all(T);
  for (std::size_t size : {1u, 2u}) {
    ProcedureConfig cfg;
    cfg.sequence_length = 100;
    cfg.sample_size = size;
    const ProcedureResult res =
        select_weight_assignments(f.sim, T, det.detection_time, cfg);
    EXPECT_DOUBLE_EQ(res.fault_efficiency(), 1.0) << "sample_size " << size;
    EXPECT_EQ(res.abandoned_count, 0u);
  }
}

class ProcedureOnCircuit : public testing::TestWithParam<const char*> {};

TEST_P(ProcedureOnCircuit, ReachesCompleteFaultEfficiency) {
  Fixture f(GetParam());
  tgen::TgenConfig tc;
  tc.max_length = 512;
  const auto gen = tgen::generate_test_sequence(f.sim, tc);
  ASSERT_GT(gen.detected, 0u);
  ProcedureConfig cfg;
  cfg.sequence_length = 300;
  const ProcedureResult res =
      select_weight_assignments(f.sim, gen.sequence, gen.detection_time, cfg);
  EXPECT_EQ(res.detected_count, res.target_count);
  EXPECT_EQ(res.abandoned_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(Paper, ProcedureOnCircuit,
                         testing::Values("s27", "s208", "s298", "s344",
                                         "s386", "s526"));

}  // namespace
}  // namespace wbist::core
