// ArtifactCache: content-addressed keys, LRU eviction under a byte budget,
// and the compile-once guarantee under concurrency.
#include "core/artifact_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "netlist/bench_io.h"

namespace wbist::core {
namespace {

CircuitSpec registry_spec(const std::string& name) {
  CircuitSpec spec;
  spec.registry_name = name;
  return spec;
}

TEST(ArtifactCacheKey, RegistryNameAndCollapseModeBothKey) {
  CompileOptions equiv;
  CompileOptions none;
  none.collapse = fault::CollapseMode::kNone;
  EXPECT_EQ(CompiledCircuit::key_for(registry_spec("s27"), equiv),
            "registry:s27/equivalence");
  EXPECT_EQ(CompiledCircuit::key_for(registry_spec("s27"), none),
            "registry:s27/none");
  EXPECT_NE(CompiledCircuit::key_for(registry_spec("s27"), equiv),
            CompiledCircuit::key_for(registry_spec("s298"), equiv));
}

TEST(ArtifactCacheKey, BenchTextKeysByContentNotName) {
  CircuitSpec a;
  a.bench_text = "INPUT(x)\nOUTPUT(x)\n";
  a.display_name = "first";
  CircuitSpec b = a;
  b.display_name = "second";  // display name must not change the key
  CircuitSpec c;
  c.bench_text = "INPUT(y)\nOUTPUT(y)\n";
  EXPECT_EQ(CompiledCircuit::key_for(a, {}), CompiledCircuit::key_for(b, {}));
  EXPECT_NE(CompiledCircuit::key_for(a, {}), CompiledCircuit::key_for(c, {}));
}

TEST(ArtifactCacheKey, SpecNeedsExactlyOneSource) {
  CircuitSpec neither;
  EXPECT_THROW(CompiledCircuit::key_for(neither, {}), std::invalid_argument);
  CircuitSpec both;
  both.registry_name = "s27";
  both.bench_text = "INPUT(x)\n";
  EXPECT_THROW(CompiledCircuit::key_for(both, {}), std::invalid_argument);
}

TEST(ArtifactCache, CompileProducesUsableArtifact) {
  const auto cc = CompiledCircuit::compile(registry_spec("s27"));
  EXPECT_EQ(cc->name(), "s27");
  EXPECT_GT(cc->netlist().node_count(), 0u);
  EXPECT_GT(cc->faults().size(), 0u);
  EXPECT_GT(cc->uncollapsed_fault_count(), cc->faults().size());
  EXPECT_EQ(cc->cones().node_count(), cc->netlist().node_count());
  EXPECT_GT(cc->approx_bytes(), 0u);
}

TEST(ArtifactCache, HitAfterMissAndWasHitReporting) {
  ArtifactCache cache;
  bool hit = true;
  const auto first = cache.get_or_compile(registry_spec("s27"), {}, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_compile(registry_spec("s27"), {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // the same shared artifact

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.compiles, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(ArtifactCache, CollapseModeIsPartOfTheKey) {
  ArtifactCache cache;
  CompileOptions none;
  none.collapse = fault::CollapseMode::kNone;
  const auto collapsed = cache.get_or_compile(registry_spec("s27"));
  const auto uncollapsed = cache.get_or_compile(registry_spec("s27"), none);
  EXPECT_NE(collapsed.get(), uncollapsed.get());
  EXPECT_GT(uncollapsed->faults().size(), collapsed->faults().size());
  EXPECT_EQ(cache.stats().compiles, 2u);
}

TEST(ArtifactCache, TinyBudgetEvictsLeastRecentlyUsed) {
  // Budget of one byte: every insertion evicts everything else (the cache
  // always retains the newest artifact even when it exceeds the budget).
  ArtifactCache cache(1);
  const auto s27 = cache.get_or_compile(registry_spec("s27"));
  const auto s298 = cache.get_or_compile(registry_spec("s298"));
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 1u);

  // s27 was evicted, so asking again recompiles.
  bool hit = true;
  cache.get_or_compile(registry_spec("s27"), {}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().compiles, 3u);

  // Evicted artifacts stay alive for holders of the shared_ptr.
  EXPECT_EQ(s298->name(), "s298");
}

TEST(ArtifactCache, LruTouchKeepsHotEntriesResident) {
  // Budget one byte short of all three circuits: inserting the third
  // forces exactly one eviction, which must take the untouched entry.
  const std::size_t total =
      CompiledCircuit::compile(registry_spec("s27"))->approx_bytes() +
      CompiledCircuit::compile(registry_spec("s298"))->approx_bytes() +
      CompiledCircuit::compile(registry_spec("s344"))->approx_bytes();
  ArtifactCache cache(total - 1);
  cache.get_or_compile(registry_spec("s27"));
  cache.get_or_compile(registry_spec("s298"));
  cache.get_or_compile(registry_spec("s27"));   // touch: s298 is now LRU
  cache.get_or_compile(registry_spec("s344"));  // forces an eviction

  bool hit = false;
  cache.get_or_compile(registry_spec("s27"), {}, &hit);
  EXPECT_TRUE(hit) << "recently-touched entry was evicted";
}

TEST(ArtifactCache, ConcurrentRequestsCompileExactlyOnce) {
  ArtifactCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> hits{0};
  std::vector<std::shared_ptr<const CompiledCircuit>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int k = 0; k < kThreads; ++k)
    threads.emplace_back([&, k] {
      bool hit = false;
      got[k] = cache.get_or_compile(registry_spec("s526"), {}, &hit);
      if (hit) hits.fetch_add(1);
    });
  for (auto& t : threads) t.join();

  const auto s = cache.stats();
  EXPECT_EQ(s.compiles, 1u) << "concurrent requests must share one compile";
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(hits.load(), kThreads - 1);
  std::set<const CompiledCircuit*> distinct;
  for (const auto& cc : got) {
    ASSERT_NE(cc, nullptr);
    distinct.insert(cc.get());
  }
  EXPECT_EQ(distinct.size(), 1u);
}

TEST(ArtifactCache, CompileFailureIsNotCached) {
  ArtifactCache cache;
  CircuitSpec bad;
  bad.bench_text = "INPUT(a)\nb = FROB(a)\n";
  EXPECT_THROW(cache.get_or_compile(bad), std::exception);
  // The failure must not leave an entry or a stuck in-flight marker.
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_THROW(cache.get_or_compile(bad), std::exception);  // retries
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().compiles, 0u)
      << "failed compiles never produce an artifact";
}

TEST(Fnv1a64, MatchesKnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace wbist::core
