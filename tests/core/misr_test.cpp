#include "core/misr.h"

#include <gtest/gtest.h>

#include "circuits/iscas.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/good_sim.h"
#include "testutil.h"

namespace wbist::core {
namespace {

using netlist::NodeId;
using sim::TestSequence;
using sim::Val3;

TEST(Misr, SignatureIsDeterministic) {
  Misr misr(8);
  std::vector<std::vector<Val3>> responses;
  for (int u = 0; u < 16; ++u)
    responses.push_back({u % 2 ? Val3::kOne : Val3::kZero, Val3::kOne});
  const auto a = misr.signature(responses, 0);
  const auto b = misr.signature(responses, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(Misr, DifferentStreamsDifferentSignatures) {
  Misr misr(16);
  std::vector<std::vector<Val3>> a, b;
  for (int u = 0; u < 24; ++u) {
    a.push_back({u % 2 ? Val3::kOne : Val3::kZero});
    b.push_back({u % 3 ? Val3::kOne : Val3::kZero});
  }
  EXPECT_NE(*misr.signature(a, 0), *misr.signature(b, 0));
}

TEST(Misr, SingleBitErrorChangesSignature) {
  // A MISR never aliases on a single-bit error (linearity).
  Misr misr(16);
  std::vector<std::vector<Val3>> good;
  for (int u = 0; u < 32; ++u)
    good.push_back({u % 2 ? Val3::kOne : Val3::kZero, Val3::kZero});
  for (std::size_t flip = 0; flip < good.size(); ++flip) {
    auto bad = good;
    bad[flip][1] = Val3::kOne;
    EXPECT_NE(*misr.signature(good, 0), *misr.signature(bad, 0))
        << "flip at " << flip;
  }
}

TEST(Misr, XPoisonsSignature) {
  Misr misr(8);
  std::vector<std::vector<Val3>> responses(4, {Val3::kOne});
  responses[2][0] = Val3::kX;
  EXPECT_FALSE(misr.signature(responses, 0).has_value());
  // Warm-up past the X recovers a signature.
  EXPECT_TRUE(misr.signature(responses, 3).has_value());
}

TEST(Misr, ComputeWarmup) {
  std::vector<std::vector<Val3>> responses{
      {Val3::kX}, {Val3::kZero}, {Val3::kX}, {Val3::kOne}, {Val3::kOne}};
  EXPECT_EQ(compute_warmup(responses), 3u);
  std::vector<std::vector<Val3>> clean{{Val3::kOne}, {Val3::kZero}};
  EXPECT_EQ(compute_warmup(clean), 0u);
  std::vector<std::vector<Val3>> hopeless{{Val3::kZero}, {Val3::kX}};
  EXPECT_FALSE(compute_warmup(hopeless).has_value());
}

/// Build CUT+MISR, simulate a sequence with warm-up gating, and return
/// (hardware signature read from the MISR flip-flops, software signature).
std::pair<std::uint32_t, std::uint32_t> run_both(
    const netlist::Netlist& cut, const TestSequence& seq, unsigned width) {
  // Software: good responses of the bare CUT.
  sim::GoodSimulator cut_sim(cut);
  const auto responses = cut_sim.run(seq);
  const auto warmup = compute_warmup(responses);
  EXPECT_TRUE(warmup.has_value());
  Misr model(width);
  const auto sw = model.signature(responses, *warmup);
  EXPECT_TRUE(sw.has_value());

  // Hardware: widen the sequence with the MISR_EN column + readout cycle.
  const MisrHardware hw = attach_misr(cut, width, model);
  sim::GoodSimulator hw_sim(hw.netlist);
  std::vector<Val3> row(hw.netlist.primary_inputs().size(), Val3::kZero);
  for (std::size_t u = 0; u < seq.length(); ++u) {
    for (std::size_t i = 0; i < seq.width(); ++i) row[i] = seq.at(u, i);
    row.back() = u >= *warmup ? Val3::kOne : Val3::kZero;  // MISR_EN
    hw_sim.step(row);
  }
  // One extra cycle to latch the final capture; EN low (don't capture).
  for (std::size_t i = 0; i < seq.width(); ++i) row[i] = Val3::kZero;
  row.back() = Val3::kZero;
  hw_sim.step(row);

  std::uint32_t hw_sig = 0;
  for (unsigned k = 0; k < width; ++k) {
    const Val3 v = hw_sim.value(hw.state[k]);
    EXPECT_NE(v, Val3::kX) << "MISR bit " << k;
    if (v == Val3::kOne) hw_sig |= std::uint32_t{1} << k;
  }
  return {hw_sig, *sw};
}

TEST(Misr, HardwareMatchesSoftwareOnS27) {
  const auto cut = circuits::s27();
  const auto [hw, sw] = run_both(cut, circuits::s27_paper_sequence(), 8);
  EXPECT_EQ(hw, sw);
}

TEST(Misr, HardwareMatchesSoftwareOnTiny) {
  const auto cut = test::tiny_circuit();
  const auto seq = test::random_sequence(20, 2, 77);
  const auto [hw, sw] = run_both(cut, seq, 4);
  EXPECT_EQ(hw, sw);
}

TEST(Misr, EnableLowHoldsZero) {
  const auto cut = circuits::s27();
  Misr model(8);
  const MisrHardware hw = attach_misr(cut, 8, model);
  sim::GoodSimulator s(hw.netlist);
  std::vector<Val3> row(hw.netlist.primary_inputs().size(), Val3::kOne);
  row.back() = Val3::kZero;  // EN low
  for (int u = 0; u < 5; ++u) {
    s.step(row);
    for (const NodeId bit : hw.state) {
      if (u > 0) {
        EXPECT_EQ(s.value(bit), Val3::kZero);
      }
    }
  }
}

TEST(Misr, CutBehaviourUnchanged) {
  // The CUT's own outputs must be bit-identical with and without the MISR.
  const auto cut = circuits::s27();
  Misr model(8);
  const MisrHardware hw = attach_misr(cut, 8, model);
  const auto seq = circuits::s27_paper_sequence();

  sim::GoodSimulator bare(cut);
  sim::GoodSimulator combined(hw.netlist);
  std::vector<Val3> row(hw.netlist.primary_inputs().size(), Val3::kZero);
  for (std::size_t u = 0; u < seq.length(); ++u) {
    bare.step(seq.row(u));
    for (std::size_t i = 0; i < seq.width(); ++i) row[i] = seq.at(u, i);
    row.back() = Val3::kOne;
    combined.step(row);
    for (const NodeId po : cut.primary_outputs())
      EXPECT_EQ(combined.value(po), bare.value(po));
  }
}

TEST(Misr, SignatureDetectsFaults) {
  // End-to-end: most faults detected at the POs under the paper sequence
  // must also change the MISR signature (little aliasing at width 16).
  const auto cut = circuits::s27();
  const auto faults = fault::FaultSet::collapsed(cut);
  const auto seq = circuits::s27_paper_sequence();

  sim::GoodSimulator cut_sim(cut);
  const auto responses = cut_sim.run(seq);
  const auto warmup = compute_warmup(responses);
  ASSERT_TRUE(warmup.has_value());
  Misr model(16);
  const auto good_sig = model.signature(responses, *warmup);
  ASSERT_TRUE(good_sig.has_value());

  const MisrHardware hw = attach_misr(cut, 16, model);
  fault::FaultSimulator fsim(hw.netlist, faults);

  // Widened sequence + readout cycle.
  TestSequence wide(0, hw.netlist.primary_inputs().size());
  std::vector<Val3> row(hw.netlist.primary_inputs().size(), Val3::kZero);
  for (std::size_t u = 0; u < seq.length(); ++u) {
    for (std::size_t i = 0; i < seq.width(); ++i) row[i] = seq.at(u, i);
    row.back() = u >= *warmup ? Val3::kOne : Val3::kZero;
    wide.append(row);
  }
  for (auto& v : row) v = Val3::kZero;
  wide.append(row);

  const auto ids = faults.all_ids();
  const auto final_bits = fsim.observe_final(wide, ids, hw.state);

  std::size_t signature_detected = 0;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    bool binary = true;
    std::uint32_t sig = 0;
    for (unsigned b = 0; b < 16; ++b) {
      if (final_bits[k][b] == Val3::kX) binary = false;
      if (final_bits[k][b] == Val3::kOne) sig |= std::uint32_t{1} << b;
    }
    if (binary && sig != *good_sig) ++signature_detected;
  }
  // All 32 faults are PO-detected by this sequence; the signature must
  // catch the overwhelming majority (X-poisoning and aliasing may lose a
  // few, never most).
  EXPECT_GE(signature_detected, 24u);
}

TEST(Misr, RejectsWidthMismatch) {
  const auto cut = circuits::s27();
  EXPECT_THROW(attach_misr(cut, 8, Misr(16)), std::invalid_argument);
}

}  // namespace
}  // namespace wbist::core
