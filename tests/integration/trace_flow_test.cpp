// Integration: the observability layer against the real pipeline.
//  - Tracing and provenance are observation-only: a traced flow run is
//    bit-identical to an untraced one.
//  - A multi-threaded s298 flow produces a trace with spans on at least two
//    tids, and child spans nest inside their parents' time windows.
//  - The provenance JSONL for s27 accounts for every fault the deterministic
//    sequence detects, including collapsed-class expansion.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/registry.h"
#include "core/flow.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "util/provenance.h"
#include "util/trace.h"

namespace wbist::core {
namespace {

using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;

FlowConfig small_config(unsigned threads = 1) {
  FlowConfig config;
  config.tgen.max_length = 512;
  config.tgen.threads = threads;
  config.compaction.threads = threads;
  config.procedure.sequence_length = 200;
  config.procedure.threads = threads;
  return config;
}

FlowResult run_on(const char* name, const FlowConfig& config) {
  const auto nl = circuits::circuit_by_name(name);
  const FaultSet faults = FaultSet::collapsed(nl);
  FaultSimulator sim(nl, faults);
  return run_flow(sim, name, config);
}

void expect_identical(const FlowResult& a, const FlowResult& b) {
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.detection_time, b.detection_time);
  EXPECT_EQ(a.t_detected, b.t_detected);
  EXPECT_EQ(a.uncollapsed_detected, b.uncollapsed_detected);
  EXPECT_EQ(a.uncollapsed_total, b.uncollapsed_total);
  EXPECT_EQ(a.procedure.omega, b.procedure.omega);
  EXPECT_EQ(a.pruned.omega, b.pruned.omega);
  EXPECT_EQ(a.table6.t_length, b.table6.t_length);
  EXPECT_EQ(a.table6.t_detected, b.table6.t_detected);
  EXPECT_EQ(a.table6.n_seq, b.table6.n_seq);
  EXPECT_EQ(a.table6.n_subs, b.table6.n_subs);
  EXPECT_EQ(a.table6.n_fsm_outputs, b.table6.n_fsm_outputs);
  EXPECT_EQ(a.table6.n_fsms, b.table6.n_fsms);
  EXPECT_EQ(a.table6.max_len, b.table6.max_len);
}

/// RAII guard: whatever happens inside a test, later tests start with
/// tracing and provenance disabled again.
struct ObservabilityOff {
  ~ObservabilityOff() {
    util::TraceRegistry::global().stop();
    util::provenance().close();
  }
};

TEST(TraceFlow, FlowIsBitIdenticalWithTracingOnAndOff) {
  ObservabilityOff guard;
  const FlowResult plain = run_on("s27", small_config());

  util::TraceRegistry::global().start(1 << 16);
  util::provenance().open(testing::TempDir() + "/wbist_identity.jsonl");
  const FlowResult traced = run_on("s27", small_config());
  util::provenance().close();
  util::TraceRegistry::global().stop();

  expect_identical(plain, traced);

  // And the other direction: a run after tracing stopped matches too.
  const FlowResult after = run_on("s27", small_config());
  expect_identical(plain, after);
}

// ---------------------------------------------------------------------------
// Trace-JSON structure. to_json() emits one event object per line, so the
// tests below parse it line-by-line with plain substring extraction.

struct ParsedEvent {
  std::string name;
  std::string ph;
  int tid = -1;
  double ts = -1;
  double dur = -1;
};

std::string str_field(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\":\"");
  if (pos == std::string::npos) return {};
  const auto start = pos + key.size() + 4;
  return line.substr(start, line.find('"', start) - start);
}

double num_field(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\":");
  if (pos == std::string::npos) return -1;
  return std::stod(line.substr(pos + key.size() + 3));
}

std::vector<ParsedEvent> parse_trace(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("{\"name\":") == std::string::npos) continue;
    ParsedEvent e;
    e.name = str_field(line, "name");
    e.ph = str_field(line, "ph");
    e.tid = static_cast<int>(num_field(line, "tid"));
    e.ts = num_field(line, "ts");
    e.dur = num_field(line, "dur");
    events.push_back(std::move(e));
  }
  return events;
}

TEST(TraceFlow, S298TraceHasNestedSpansOnMultipleThreads) {
  ObservabilityOff guard;
  util::TraceRegistry::global().start(1 << 16);
  run_on("s298", small_config(/*threads=*/2));
  util::TraceRegistry::global().stop();
  ASSERT_EQ(util::TraceRegistry::global().dropped_events(), 0u)
      << "test buffer too small for a full s298 trace";

  const auto events = parse_trace(util::TraceRegistry::global().to_json());
  ASSERT_FALSE(events.empty());

  std::set<int> tids;
  std::map<std::string, std::size_t> count;
  for (const ParsedEvent& e : events) {
    tids.insert(e.tid);
    ++count[e.name];
  }
  EXPECT_GE(tids.size(), 2u) << "procedure ran with 2 threads";
  for (const char* required :
       {"flow", "flow.tgen", "procedure", "procedure.weight_set",
        "procedure.candidate", "fault_sim.run", "fault_sim.group",
        "worker_pool.drain", "reverse_sim", "flow.fsm_synth"})
    EXPECT_GT(count[required], 0u) << required;

  // The worker pool puts drain spans (and usually fault-group spans) on the
  // background worker's tid, distinct from the main thread's.
  std::set<int> drain_tids;
  for (const ParsedEvent& e : events)
    if (e.name == "worker_pool.drain") drain_tids.insert(e.tid);
  EXPECT_GE(drain_tids.size(), 2u);

  // Nesting: on the main thread, candidate spans sit inside the enclosing
  // procedure span, which sits inside the flow span. Complete events carry
  // ts/dur in microseconds, so containment is a window check.
  const auto window = [&](const char* name) {
    for (const ParsedEvent& e : events)
      if (e.name == name && e.ph == "X") return e;
    ADD_FAILURE() << "missing span " << name;
    return ParsedEvent{};
  };
  const ParsedEvent flow = window("flow");
  const ParsedEvent proc = window("procedure");
  EXPECT_GE(proc.ts, flow.ts);
  EXPECT_LE(proc.ts + proc.dur, flow.ts + flow.dur);
  std::size_t candidates = 0;
  for (const ParsedEvent& e : events) {
    if (e.name != "procedure.candidate") continue;
    ++candidates;
    EXPECT_GE(e.ts, proc.ts);
    EXPECT_LE(e.ts + e.dur, proc.ts + proc.dur);
    EXPECT_EQ(e.tid, proc.tid);
  }
  EXPECT_GT(candidates, 0u);

  // Every fault-group span belongs to an enclosing span on its own tid: a
  // worker_pool.drain on pooled runs, or the fault_sim.run itself when the
  // run stayed single-threaded and simulated groups inline.
  for (const ParsedEvent& e : events) {
    if (e.name != "fault_sim.group") continue;
    bool contained = false;
    for (const ParsedEvent& d : events) {
      if (d.tid != e.tid ||
          (d.name != "worker_pool.drain" && d.name != "fault_sim.run"))
        continue;
      if (e.ts >= d.ts && e.ts + e.dur <= d.ts + d.dur) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "orphan fault_sim.group at ts " << e.ts;
  }
}

// ---------------------------------------------------------------------------
// Provenance JSONL. provenance.cpp writes fixed key order, one record per
// line; the same substring helpers apply.

TEST(TraceFlow, S27ProvenanceAccountsForEveryFlowDetectedFault) {
  ObservabilityOff guard;
  const std::string path = testing::TempDir() + "/wbist_prov.jsonl";
  util::provenance().open(path);
  const FlowResult flow = run_on("s27", small_config());
  util::provenance().close();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"schema\":\"wbist.provenance/1\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"header\""), std::string::npos);

  std::map<std::uint32_t, std::int64_t> tgen_u;          // fault -> u
  std::map<std::uint32_t, std::uint64_t> tgen_rep_size;  // fault -> expansion
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ASSERT_NE(line.find("\"event\":\"detect\""), std::string::npos) << line;
    EXPECT_FALSE(str_field(line, "site").empty()) << line;
    if (str_field(line, "phase") != "tgen") continue;
    const auto fault = static_cast<std::uint32_t>(num_field(line, "fault"));
    EXPECT_EQ(tgen_u.count(fault), 0u) << "duplicate tgen record " << fault;
    tgen_u[fault] = static_cast<std::int64_t>(num_field(line, "u"));
    tgen_rep_size[fault] =
        static_cast<std::uint64_t>(num_field(line, "represented_size"));
    // Faults detected by the deterministic sequence predate any session.
    EXPECT_EQ(num_field(line, "session"), -1) << line;
    EXPECT_EQ(num_field(line, "assignment_rank"), -1) << line;
    EXPECT_FALSE(str_field(line, "obs").empty()) << line;
  }

  // The tgen records cover exactly the flow-detected set, with matching
  // detection times, and their collapsed-class expansion reproduces the
  // uncollapsed detection count reported by the flow.
  std::uint64_t expanded = 0;
  std::size_t detected = 0;
  for (FaultId f = 0; f < flow.detection_time.size(); ++f) {
    if (flow.detection_time[f] == DetectionResult::kUndetected) {
      EXPECT_EQ(tgen_u.count(f), 0u) << "undetected fault " << f << " logged";
      continue;
    }
    ++detected;
    ASSERT_EQ(tgen_u.count(f), 1u) << "detected fault " << f << " missing";
    EXPECT_EQ(tgen_u[f], flow.detection_time[f]) << "fault " << f;
    expanded += tgen_rep_size[f];
  }
  EXPECT_EQ(detected, flow.t_detected);
  EXPECT_EQ(tgen_u.size(), flow.t_detected);
  EXPECT_EQ(expanded, flow.uncollapsed_detected);
}

}  // namespace
}  // namespace wbist::core
