// Integration: the complete pipeline (deterministic sequence -> weight
// assignments -> reverse-order pruning -> FSM synthesis -> generator
// hardware) on the real s27 and on synthetic circuits.
#include <gtest/gtest.h>

#include "circuits/registry.h"
#include "core/flow.h"
#include "core/generator_hw.h"
#include "core/obs_points.h"
#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/good_sim.h"

namespace wbist::core {
namespace {

using fault::DetectionResult;
using fault::FaultId;
using fault::FaultSet;
using fault::FaultSimulator;

struct FlowFixture {
  explicit FlowFixture(const char* name, std::size_t lg = 200)
      : nl(circuits::circuit_by_name(name)),
        faults(FaultSet::collapsed(nl)),
        sim(nl, faults) {
    config.tgen.max_length = 512;
    config.procedure.sequence_length = lg;
    flow = run_flow(sim, name, config);
  }

  netlist::Netlist nl;
  FaultSet faults;
  FaultSimulator sim;
  FlowConfig config;
  FlowResult flow;
};

class FullFlow : public testing::TestWithParam<const char*> {};

TEST_P(FullFlow, CompleteFaultEfficiency) {
  FlowFixture f(GetParam());
  EXPECT_GT(f.flow.t_detected, 0u);
  EXPECT_EQ(f.flow.procedure.detected_count, f.flow.procedure.target_count);
  EXPECT_EQ(f.flow.procedure.abandoned_count, 0u);
}

TEST_P(FullFlow, PrunedOmegaStillCoversEveryTarget) {
  FlowFixture f(GetParam());
  std::vector<FaultId> targets;
  for (FaultId id = 0; id < f.faults.size(); ++id)
    if (f.flow.detection_time[id] != DetectionResult::kUndetected)
      targets.push_back(id);

  std::vector<bool> covered(targets.size(), false);
  for (const WeightAssignment& w : f.flow.pruned.omega) {
    const auto det =
        f.sim.run(w.expand(f.flow.procedure.sequence_length), targets);
    for (std::size_t k = 0; k < targets.size(); ++k)
      if (det.detected(k)) covered[k] = true;
  }
  for (std::size_t k = 0; k < targets.size(); ++k)
    EXPECT_TRUE(covered[k]) << "fault " << targets[k];
}

TEST_P(FullFlow, Table6RowIsConsistent) {
  FlowFixture f(GetParam());
  const Table6Row& row = f.flow.table6;
  EXPECT_EQ(row.circuit, GetParam());
  EXPECT_EQ(row.t_length, f.flow.sequence.length());
  EXPECT_EQ(row.t_detected, f.flow.t_detected);
  EXPECT_EQ(row.n_seq, f.flow.pruned.omega.size());
  EXPECT_LE(row.n_seq, f.flow.procedure.omega.size());
  // FSM merging can only shrink counts.
  EXPECT_LE(row.n_fsm_outputs, row.n_subs);
  EXPECT_LE(row.n_fsms, row.n_fsm_outputs);
  // The core claim of Table 6: subsequences are much shorter than T.
  EXPECT_LE(row.max_len, row.t_length);
}

TEST_P(FullFlow, GeneratorHardwareDrivesTheCut) {
  // Glue check: simulate the emitted generator netlist and feed its output
  // streams to the CUT as test sequences; the faults detected must equal
  // the faults the software-expanded sequences detect.
  FlowFixture f(GetParam());
  if (f.flow.pruned.omega.empty()) GTEST_SKIP();
  const GeneratorHardware hw =
      build_generator(f.flow.pruned.omega, f.flow.procedure.sequence_length);

  sim::GoodSimulator gen_sim(hw.netlist);
  gen_sim.step(std::vector<sim::Val3>{sim::Val3::kOne});  // reset pulse

  for (const WeightAssignment& w : f.flow.pruned.omega) {
    sim::TestSequence streamed(0, f.nl.primary_inputs().size());
    for (std::size_t u = 0; u < hw.session_length; ++u) {
      gen_sim.step(std::vector<sim::Val3>{sim::Val3::kZero});
      streamed.append(gen_sim.outputs());
    }
    const sim::TestSequence expected = w.expand(hw.session_length);
    EXPECT_EQ(streamed, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, FullFlow,
                         testing::Values("s27", "s298", "s382", "s386",
                                         "s400", "s444"));

TEST(FullFlowDetail, CompactionShortensSequenceOnS27) {
  FlowFixture with("s27");
  FlowConfig no_compact;
  no_compact.tgen.max_length = 512;
  no_compact.compact = false;
  no_compact.procedure.sequence_length = 200;
  FaultSimulator sim2(with.nl, with.faults);
  const FlowResult raw = run_flow(sim2, "s27", no_compact);
  EXPECT_LE(with.flow.sequence.length(), raw.sequence.length());
}

TEST(FullFlowDetail, ObsTradeoffIntegratesWithFlow) {
  FlowFixture f("s27");
  std::vector<FaultId> targets;
  for (FaultId id = 0; id < f.faults.size(); ++id)
    if (f.flow.detection_time[id] != DetectionResult::kUndetected)
      targets.push_back(id);
  ObsTradeoffConfig cfg;
  cfg.sequence_length = f.flow.procedure.sequence_length;
  const auto result = observation_point_tradeoff(f.sim, f.flow.procedure.omega,
                                                 targets, cfg);
  ASSERT_FALSE(result.rows.empty());
  EXPECT_EQ(result.rows.back().fe_before, 100.0);
}

TEST(FullFlowDetail, DeterministicEndToEnd) {
  FlowFixture a("s298");
  FlowFixture b("s298");
  EXPECT_EQ(a.flow.sequence, b.flow.sequence);
  EXPECT_EQ(a.flow.pruned.omega, b.flow.pruned.omega);
  EXPECT_EQ(a.flow.table6.n_subs, b.flow.table6.n_subs);
}

}  // namespace
}  // namespace wbist::core
