// End-to-end tests of the `wbist serve` daemon: framed protocol (incl.
// torn/stalled frames), job dispatch through the bounded priority queue,
// backpressure and per-request deadlines, slow-client eviction,
// bit-identity with the direct library calls, the compile-once cache
// guarantee under concurrent clients, and orderly shutdown.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_cache.h"
#include "core/service.h"
#include "netlist/bench_io.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/json.h"
#include "util/metrics.h"

namespace wbist::serve {
namespace {

std::string job_request(const std::string& job, const std::string& circuit) {
  std::string r = "{\"schema\":\"wbist.serve/1\",\"job\":";
  r += util::json_quote(job);
  if (!circuit.empty()) r += ",\"circuit\":" + util::json_quote(circuit);
  r += '}';
  return r;
}

/// A request with the optional scheduling fields (0 omits a field).
std::string scheduled_request(const std::string& job,
                              const std::string& circuit, long long priority,
                              long long deadline_ms) {
  std::string r = "{\"schema\":\"wbist.serve/1\",\"job\":";
  r += util::json_quote(job);
  r += ",\"circuit\":" + util::json_quote(circuit);
  if (priority != 0) r += ",\"priority\":" + std::to_string(priority);
  if (deadline_ms != 0) r += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  r += '}';
  return r;
}

core::CircuitSpec registry_spec(const std::string& name) {
  core::CircuitSpec spec;
  spec.registry_name = name;
  return spec;
}

/// Spin until `pred` holds (true) or `timeout_ms` elapses (false).
template <typename Pred>
bool wait_until(Pred pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// A bare TCP connection to the daemon, for speaking the wire protocol by
/// hand (partial frames, pipelining). Returns -1 on failure.
int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Counting semaphore handed to ServerConfig::test_worker_gate: each
/// dequeued job parks in hold() until a permit arrives, which lets tests
/// freeze the worker pool at an exact queue state. release() opens the
/// gate for good (idempotent, safe to call from a scope guard).
struct WorkerGate {
  std::atomic<int> entered{0};

  void hold() {
    entered.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return permits_ != 0; });
    if (permits_ > 0) --permits_;
  }
  void post(int n = 1) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (permits_ >= 0) permits_ += n;
    }
    cv_.notify_all();
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      permits_ = -1;  // open for good
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int permits_ = 0;
};

/// Scope guard for gated tests: on exit — including an early ASSERT
/// return — opens the gate, then joins the client threads, so a failure
/// can neither park a worker forever nor terminate on an unjoined thread.
struct GatedClients {
  std::shared_ptr<WorkerGate> gate;
  std::vector<std::thread> threads;

  explicit GatedClients(std::shared_ptr<WorkerGate> g) : gate(std::move(g)) {}
  ~GatedClients() {
    gate->release();
    for (auto& t : threads)
      if (t.joinable()) t.join();
  }
};

/// A daemon on an ephemeral loopback TCP port, torn down with the fixture.
class ServeTest : public ::testing::Test {
 protected:
  void start_cfg(ServerConfig cfg) {
    cfg.tcp_port = 0;
    server_ = std::make_unique<Server>(std::move(cfg));
    server_->start();
    endpoint_.tcp_port = server_->port();
    ASSERT_GT(endpoint_.tcp_port, 0);
  }

  void start(std::size_t cache_bytes = 0, unsigned threads = 4) {
    ServerConfig cfg;
    cfg.handler_threads = threads;
    cfg.cache_bytes = cache_bytes;
    start_cfg(std::move(cfg));
  }

  void TearDown() override {
    if (server_) {
      server_->request_stop();
      server_->wait();
    }
  }

  util::JsonValue submit_json(const std::string& request) {
    return util::json_parse(submit(endpoint_, request));
  }

  std::unique_ptr<Server> server_;
  Endpoint endpoint_;
};

TEST_F(ServeTest, PingPong) {
  start();
  const auto r = submit_json(job_request("ping", ""));
  EXPECT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_int("exit", -1), 0);
  EXPECT_EQ(r.get_string("output"), "pong\n");
  EXPECT_EQ(r.get_string("schema"), "wbist.serve/1");
}

TEST_F(ServeTest, InfoMatchesDirectLibraryCall) {
  start();
  const auto cc = core::CompiledCircuit::compile(registry_spec("s27"));
  const auto r = submit_json(job_request("info", "s27"));
  EXPECT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_string("output"), core::info_report(*cc));
}

TEST_F(ServeTest, CacheHitReportedPerRequest) {
  start();
  const auto miss = submit_json(job_request("info", "s27"));
  ASSERT_TRUE(miss.get_bool("ok"));
  EXPECT_FALSE(miss.get("cache")->get_bool("hit", true));
  EXPECT_EQ(miss.get("cache")->get_string("key"), "registry:s27/equivalence");

  const auto hit = submit_json(job_request("info", "s27"));
  EXPECT_TRUE(hit.get("cache")->get_bool("hit", false));

  const auto s = server_->cache().stats();
  EXPECT_EQ(s.compiles, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST_F(ServeTest, ConcurrentFlowClientsBitIdenticalWithOneCompile) {
  start();
  constexpr int kClients = 6;
  std::vector<std::string> outputs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int k = 0; k < kClients; ++k)
    clients.emplace_back([&, k] {
      const auto r = util::json_parse(
          submit(endpoint_, job_request("flow", "s27")));
      if (r.get_bool("ok")) outputs[k] = r.get_string("output");
    });
  for (auto& t : clients) t.join();

  const auto cc = core::CompiledCircuit::compile(registry_spec("s27"));
  const std::string expected = core::run_flow_job(*cc).output;
  for (int k = 0; k < kClients; ++k)
    EXPECT_EQ(outputs[k], expected) << "client " << k;

  // N concurrent requests for the same circuit: exactly one compile, no
  // re-parse / re-collapse / re-levelization for the other N-1.
  const auto s = server_->cache().stats();
  EXPECT_EQ(s.compiles, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kClients - 1));
}

TEST_F(ServeTest, TgenSequenceFaultSimulatesToFullCoverage) {
  start();
  const auto tg = submit_json(job_request("tgen", "s27"));
  ASSERT_TRUE(tg.get_bool("ok"));
  const std::string seq = tg.get_string("sequence");
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(tg.get_int("detected", -1), tg.get_int("total", -2));

  std::string req = "{\"schema\":\"wbist.serve/1\",\"job\":\"fault-sim\","
                    "\"circuit\":\"s27\",\"sequence\":" +
                    util::json_quote(seq) + "}";
  const auto fs = submit_json(req);
  ASSERT_TRUE(fs.get_bool("ok"));
  EXPECT_EQ(fs.get_int("detected", -1), tg.get_int("detected", -2));
}

TEST_F(ServeTest, InlineBenchTextCompilesUnderItsDisplayName) {
  start();
  const auto nl = core::CompiledCircuit::compile(registry_spec("s27"));
  const std::string bench = netlist::write_bench(nl->netlist());
  std::string req = "{\"schema\":\"wbist.serve/1\",\"job\":\"info\","
                    "\"bench\":" + util::json_quote(bench) +
                    ",\"name\":\"inline27\"}";
  const auto r = submit_json(req);
  ASSERT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_string("output").substr(0, 9), "inline27\n");
  EXPECT_EQ(r.get("cache")->get_string("key").substr(0, 6), "bench:");
}

TEST_F(ServeTest, TinyCacheBudgetEvicts) {
  start(/*cache_bytes=*/1);
  ASSERT_TRUE(submit_json(job_request("info", "s27")).get_bool("ok"));
  ASSERT_TRUE(submit_json(job_request("info", "s298")).get_bool("ok"));
  const auto s = server_->cache().stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST_F(ServeTest, ErrorsMapToCliExitCodes) {
  start();
  const auto usage = submit_json(job_request("frobnicate", ""));
  EXPECT_FALSE(usage.get_bool("ok", true));
  EXPECT_EQ(usage.get_int("exit", -1), 2);

  const auto runtime = submit_json(job_request("info", "no-such-circuit"));
  EXPECT_FALSE(runtime.get_bool("ok", true));
  EXPECT_EQ(runtime.get_int("exit", -1), 1);
  EXPECT_FALSE(runtime.get_string("error").empty());

  const auto garbage = submit_json("this is not json");
  EXPECT_FALSE(garbage.get_bool("ok", true));
  EXPECT_EQ(garbage.get_int("exit", -1), 2);
}

TEST_F(ServeTest, OneConnectionServesManyRequestsInOrder)
{
  start();
  Client client(endpoint_);
  for (int k = 0; k < 5; ++k) {
    const auto r = util::json_parse(
        client.round_trip(job_request("info", "s27")));
    ASSERT_TRUE(r.get_bool("ok"));
    EXPECT_EQ(r.get("cache")->get_bool("hit", false), k > 0);
  }
}

TEST_F(ServeTest, ShutdownJobStopsTheDaemon) {
  start();
  const auto r = submit_json(job_request("shutdown", ""));
  EXPECT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_string("output"), "shutting down\n");
  server_->wait();  // must return: the daemon stopped itself
  EXPECT_THROW(Client{endpoint_}, std::runtime_error);
  server_.reset();
}

TEST(ServeUnixSocket, RoundTripAndSocketFileCleanup) {
  const std::string path =
      "/tmp/wbist_serve_ut_" + std::to_string(::getpid()) + ".sock";
  ServerConfig cfg;
  cfg.unix_path = path;
  cfg.handler_threads = 2;
  {
    Server server(std::move(cfg));
    server.start();
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0) << "socket file missing";
    Endpoint ep;
    ep.unix_path = path;
    const auto r = util::json_parse(submit(ep, job_request("ping", "")));
    EXPECT_EQ(r.get_string("output"), "pong\n");
    server.request_stop();
    server.wait();
  }
  struct stat st{};
  EXPECT_NE(::stat(path.c_str(), &st), 0)
      << "socket file not unlinked on shutdown";
}

TEST(ServeProtocol, RejectsOversizedFrames) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Hand-encode a frame header claiming 1 GiB.
  const unsigned char header[4] = {0x40, 0x00, 0x00, 0x00};
  ASSERT_EQ(::write(fds[1], header, 4), 4);
  std::string payload;
  EXPECT_THROW(read_frame(fds[0], payload), std::exception);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, EofInsideAHeaderIsATruncationError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char half[2] = {0x00, 0x00};
  ASSERT_EQ(::send(fds[1], half, sizeof half, 0), 2);
  ::close(fds[1]);  // peer vanishes two bytes into the length prefix
  std::string payload;
  EXPECT_THROW(read_frame(fds[0], payload), std::exception);
  ::close(fds[0]);
}

TEST(ServeProtocol, EofInsideAPayloadIsATruncationError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char hdr[4] = {0x00, 0x00, 0x00, 0x0a};  // claims 10 bytes
  ASSERT_EQ(::send(fds[1], hdr, sizeof hdr, 0), 4);
  ASSERT_EQ(::send(fds[1], "{\"jo", 4, 0), 4);  // ...delivers 4
  ::close(fds[1]);
  std::string payload;
  EXPECT_THROW(read_frame(fds[0], payload), std::exception);
  ::close(fds[0]);
}

TEST(ServeProtocol, HeaderThenSilenceIsAStallNotIdleness) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char half[2] = {0x00, 0x00};
  ASSERT_EQ(::send(fds[1], half, sizeof half, 0), 2);
  // The peer stays connected but quiet: a slow-loris, not a keep-alive.
  // The generous idle bound must not apply once a frame has started.
  std::string payload;
  EXPECT_EQ(read_frame(fds[0], payload, ReadDeadlines{5000, 50}),
            ReadStatus::kStallTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, PartialPayloadThenSilenceIsAStall) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char hdr[4] = {0x00, 0x00, 0x00, 0x0a};
  ASSERT_EQ(::send(fds[1], hdr, sizeof hdr, 0), 4);
  ASSERT_EQ(::send(fds[1], "{\"jo", 4, 0), 4);
  std::string payload;
  EXPECT_EQ(read_frame(fds[0], payload, ReadDeadlines{5000, 50}),
            ReadStatus::kStallTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, NoFrameWithinTheIdleBoundIsAnIdleTimeout) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload;
  EXPECT_EQ(read_frame(fds[0], payload, ReadDeadlines{50, 5000}),
            ReadStatus::kIdleTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, WriterBoundsAPeerThatNeverDrains) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // 8 MiB into a never-read socket overfills any default buffer, so the
  // writer must hit its stall bound instead of blocking forever.
  const std::string big(8u << 20, 'x');
  EXPECT_THROW(write_frame(fds[0], big, 50), FrameTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Queue behavior: backpressure, deadlines, priorities, response ordering.

TEST_F(ServeTest, FullQueueAnswersOverloadedWithARetryHint) {
  auto gate = std::make_shared<WorkerGate>();
  ServerConfig cfg;
  cfg.handler_threads = 4;
  cfg.worker_threads = 1;
  cfg.queue_depth = 1;
  cfg.test_worker_gate = [gate] { gate->hold(); };
  start_cfg(std::move(cfg));
  GatedClients gc(gate);

  auto& rejected = util::metrics().counter("serve.jobs_rejected");
  auto& enqueues = util::metrics().histogram("serve.queue_depth");
  const auto rejected0 = rejected.value();
  const auto enqueues0 = enqueues.count();

  // A occupies the only worker (parked at the gate); B fills the queue.
  std::string response_a, response_b;
  gc.threads.emplace_back([&] {
    response_a = submit(endpoint_, job_request("flow", "s27"));
  });
  ASSERT_TRUE(wait_until([&] { return gate->entered.load() >= 1; }));
  gc.threads.emplace_back([&] {
    response_b = submit(endpoint_, job_request("flow", "s27"));
  });
  ASSERT_TRUE(wait_until([&] { return enqueues.count() >= enqueues0 + 2; }));

  // C finds the queue full: a structured transient error, immediately.
  const auto c = submit_json(job_request("flow", "s27"));
  EXPECT_FALSE(c.get_bool("ok", true));
  EXPECT_EQ(c.get_int("exit", -1), 3);
  EXPECT_EQ(c.get_string("error"), "overloaded");
  EXPECT_GT(c.get_int("retry_after_ms", 0), 0);
  EXPECT_EQ(rejected.value(), rejected0 + 1);

  gate->release();
  for (auto& t : gc.threads) t.join();
  EXPECT_TRUE(util::json_parse(response_a).get_bool("ok"));
  EXPECT_TRUE(util::json_parse(response_b).get_bool("ok"));
}

TEST_F(ServeTest, JobThatWaitsOutItsDeadlineNeverRuns) {
  auto gate = std::make_shared<WorkerGate>();
  ServerConfig cfg;
  cfg.handler_threads = 4;
  cfg.worker_threads = 1;
  cfg.test_worker_gate = [gate] { gate->hold(); };
  start_cfg(std::move(cfg));
  GatedClients gc(gate);

  auto& expired = util::metrics().counter("serve.deadline_expired");
  auto& flow_runs = util::metrics().counter("serve.jobs.flow");
  auto& enqueues = util::metrics().histogram("serve.queue_depth");
  const auto expired0 = expired.value();
  const auto flow_runs0 = flow_runs.value();
  const auto enqueues0 = enqueues.count();

  // A holds the worker; B queues behind it with a 50ms budget.
  std::string response_a, response_b;
  gc.threads.emplace_back([&] {
    response_a = submit(endpoint_, job_request("flow", "s27"));
  });
  ASSERT_TRUE(wait_until([&] { return gate->entered.load() >= 1; }));
  gc.threads.emplace_back([&] {
    response_b = submit(endpoint_, scheduled_request("flow", "s27", 0, 50));
  });
  ASSERT_TRUE(wait_until([&] { return enqueues.count() >= enqueues0 + 2; }));

  // Let B's whole budget lapse in the queue, then free the worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  gate->release();
  for (auto& t : gc.threads) t.join();

  EXPECT_TRUE(util::json_parse(response_a).get_bool("ok"));
  const auto b = util::json_parse(response_b);
  EXPECT_FALSE(b.get_bool("ok", true));
  EXPECT_EQ(b.get_int("exit", -1), 3);
  EXPECT_EQ(b.get_string("error"), "deadline_exceeded");
  EXPECT_EQ(expired.value(), expired0 + 1);
  // The load-bearing claim: B was answered without ever being run.
  EXPECT_EQ(flow_runs.value(), flow_runs0 + 1);
}

TEST_F(ServeTest, HigherPriorityJobsJumpTheQueue) {
  auto gate = std::make_shared<WorkerGate>();
  ServerConfig cfg;
  cfg.handler_threads = 4;
  cfg.worker_threads = 1;
  cfg.test_worker_gate = [gate] { gate->hold(); };
  start_cfg(std::move(cfg));
  GatedClients gc(gate);

  auto& flow_runs = util::metrics().counter("serve.jobs.flow");
  auto& tgen_runs = util::metrics().counter("serve.jobs.tgen");
  auto& enqueues = util::metrics().histogram("serve.queue_depth");
  const auto flow_runs0 = flow_runs.value();
  const auto tgen_runs0 = tgen_runs.value();
  const auto enqueues0 = enqueues.count();

  // A (flow) is dequeued first and parked. While it is held, a low-priority
  // tgen arrives before a high-priority flow.
  std::string response_a, response_low, response_high;
  gc.threads.emplace_back([&] {
    response_a = submit(endpoint_, job_request("flow", "s27"));
  });
  ASSERT_TRUE(wait_until([&] { return gate->entered.load() >= 1; }));
  gc.threads.emplace_back([&] {
    response_low = submit(endpoint_, scheduled_request("tgen", "s27", -5, 0));
  });
  ASSERT_TRUE(wait_until([&] { return enqueues.count() >= enqueues0 + 2; }));
  gc.threads.emplace_back([&] {
    response_high = submit(endpoint_, scheduled_request("flow", "s27", 5, 0));
  });
  ASSERT_TRUE(wait_until([&] { return enqueues.count() >= enqueues0 + 3; }));

  // One permit: A runs, and the *next* job is dequeued and parked. Despite
  // arriving last, the high-priority flow must be that job — the second
  // permit runs it while the low-priority tgen still waits.
  gate->post();
  ASSERT_TRUE(wait_until([&] { return gate->entered.load() >= 2; }));
  EXPECT_EQ(flow_runs.value(), flow_runs0 + 1);
  gate->post();
  ASSERT_TRUE(wait_until([&] { return flow_runs.value() >= flow_runs0 + 2; }));
  EXPECT_EQ(tgen_runs.value(), tgen_runs0);

  gate->release();
  for (auto& t : gc.threads) t.join();
  EXPECT_TRUE(util::json_parse(response_a).get_bool("ok"));
  EXPECT_TRUE(util::json_parse(response_low).get_bool("ok"));
  EXPECT_TRUE(util::json_parse(response_high).get_bool("ok"));
}

TEST_F(ServeTest, PipelinedResponsesComeBackInRequestOrder) {
  auto gate = std::make_shared<WorkerGate>();
  ServerConfig cfg;
  cfg.handler_threads = 2;
  cfg.worker_threads = 1;
  cfg.test_worker_gate = [gate] { gate->hold(); };
  start_cfg(std::move(cfg));
  GatedClients gc(gate);

  auto& pings = util::metrics().counter("serve.jobs.ping");
  const auto pings0 = pings.value();

  const int fd = raw_connect(endpoint_.tcp_port);
  ASSERT_GE(fd, 0);
  // Pipeline a flow (held at the gate) and then a ping. The ping is
  // answered inline on the reader long before the flow completes...
  write_frame(fd, job_request("flow", "s27"));
  ASSERT_TRUE(wait_until([&] { return gate->entered.load() >= 1; }));
  write_frame(fd, job_request("ping", ""));
  ASSERT_TRUE(wait_until([&] { return pings.value() >= pings0 + 1; }));
  // ...but the sequencer must hold the pong: nothing readable yet.
  pollfd p{fd, POLLIN, 0};
  EXPECT_EQ(::poll(&p, 1, 50), 0)
      << "pong must not overtake the still-running flow response";

  gate->release();
  std::string first, second;
  ASSERT_TRUE(read_frame(fd, first));
  ASSERT_TRUE(read_frame(fd, second));
  EXPECT_TRUE(util::json_parse(first).get_bool("ok"));
  EXPECT_NE(util::json_parse(first).get_string("output").find("s27"),
            std::string::npos);
  EXPECT_EQ(util::json_parse(second).get_string("output"), "pong\n");
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Eviction and admission under hostile load.

TEST_F(ServeTest, StalledClientsAreEvictedAndFreshSubmitsStillAnswer) {
  // The headline fix: every reader pinned by a slow-loris peer used to
  // starve new clients forever. Now stalled peers are evicted within the
  // stall bound and a fresh submit still answers inside its own deadline.
  ServerConfig cfg;
  cfg.handler_threads = 2;
  cfg.worker_threads = 2;
  cfg.stall_timeout_ms = 300;
  start_cfg(std::move(cfg));

  auto& evicted = util::metrics().counter("serve.slow_clients_evicted");
  const auto evicted0 = evicted.value();

  // Pin both readers mid-frame: two bytes of header, then silence.
  int loris[2] = {-1, -1};
  const unsigned char half[2] = {0x00, 0x00};
  for (int& fd : loris) {
    fd = raw_connect(endpoint_.tcp_port);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::send(fd, half, sizeof half, MSG_NOSIGNAL), 2);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  ClientOptions opts;
  opts.connect_timeout_ms = 10000;
  opts.io_timeout_ms = 10000;
  const auto r = util::json_parse(
      submit(endpoint_, job_request("flow", "s27"), opts));
  EXPECT_TRUE(r.get_bool("ok"));
  EXPECT_TRUE(wait_until([&] { return evicted.value() >= evicted0 + 2; }));
  for (const int fd : loris) ::close(fd);
}

TEST_F(ServeTest, ConnectionFloodBeyondThePendingCapIsTurnedAway) {
  ServerConfig cfg;
  cfg.handler_threads = 1;
  cfg.worker_threads = 1;
  cfg.max_pending_conns = 1;
  cfg.stall_timeout_ms = 5000;
  start_cfg(std::move(cfg));

  auto& conns = util::metrics().counter("serve.connections");
  auto& rejected = util::metrics().counter("serve.conns_rejected");
  const auto conns0 = conns.value();
  const auto rejected0 = rejected.value();

  // Own the single reader (a completed round trip proves it), then stall
  // mid-frame so the reader stays pinned for the rest of the test.
  const int pinned = raw_connect(endpoint_.tcp_port);
  ASSERT_GE(pinned, 0);
  write_frame(pinned, job_request("ping", ""));
  std::string pong;
  ASSERT_TRUE(read_frame(pinned, pong));
  const unsigned char half[2] = {0x00, 0x00};
  ASSERT_EQ(::send(pinned, half, sizeof half, MSG_NOSIGNAL), 2);

  // One connection may park in pending_ (cap 1)...
  const int parked = raw_connect(endpoint_.tcp_port);
  ASSERT_GE(parked, 0);
  ASSERT_TRUE(wait_until([&] { return conns.value() >= conns0 + 2; }));

  // ...and the next is turned away with a framed error, not a held fd.
  const int extra = raw_connect(endpoint_.tcp_port);
  ASSERT_GE(extra, 0);
  std::string turned_away;
  ASSERT_EQ(read_frame(extra, turned_away, ReadDeadlines{5000, 5000}),
            ReadStatus::kFrame);
  const auto r = util::json_parse(turned_away);
  EXPECT_FALSE(r.get_bool("ok", true));
  EXPECT_EQ(r.get_int("exit", -1), 3);
  EXPECT_EQ(r.get_string("error"), "overloaded");
  EXPECT_GT(r.get_int("retry_after_ms", 0), 0);
  EXPECT_EQ(rejected.value(), rejected0 + 1);

  ::close(extra);
  ::close(parked);
  ::close(pinned);
}

// ---------------------------------------------------------------------------
// Observability plane: per-request observation blocks, the inline stats
// job (which must answer even when every worker is saturated), and the
// flight recorder.

TEST_F(ServeTest, ObserveReturnsObsBlockAndKeepsOutputBitIdentical) {
  start();
  const auto plain = submit_json(job_request("flow", "s27"));
  ASSERT_TRUE(plain.get_bool("ok"));
  EXPECT_EQ(plain.get("obs"), nullptr);

  std::string req = "{\"schema\":\"wbist.serve/1\",\"job\":\"flow\","
                    "\"circuit\":\"s27\",\"observe\":true}";
  const auto observed = submit_json(req);
  ASSERT_TRUE(observed.get_bool("ok"));
  // The primary result is bit-identical with observation on.
  EXPECT_EQ(observed.get_string("output"), plain.get_string("output"));

  const util::JsonValue* obs = observed.get("obs");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->get_string("schema"), "wbist.obs/1");
  const util::JsonValue* spans = obs->get("spans");
  ASSERT_NE(spans, nullptr);
  bool saw_flow = false;
  for (const auto& s : spans->as_array())
    if (s.get_string("name") == "flow") saw_flow = true;
  EXPECT_TRUE(saw_flow);
  const util::JsonValue* counters = obs->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->get_int("run_us", -1), 0);
  EXPECT_EQ(counters->get_int("cache_hit", -1), 1);  // plain compiled it
  const util::JsonValue* notes = obs->get("notes");
  ASSERT_NE(notes, nullptr);
  EXPECT_EQ(notes->get_string("job"), "flow");
  EXPECT_EQ(notes->get_string("circuit"), "s27");
}

TEST_F(ServeTest, StatsAnswersInlineWhileWorkersAreSaturated) {
  auto gate = std::make_shared<WorkerGate>();
  ServerConfig cfg;
  cfg.handler_threads = 4;
  cfg.worker_threads = 1;
  cfg.queue_depth = 1;
  cfg.test_worker_gate = [gate] { gate->hold(); };
  start_cfg(std::move(cfg));
  GatedClients gc(gate);

  auto& enqueues = util::metrics().histogram("serve.queue_depth");
  const auto enqueues0 = enqueues.count();

  // A parks on the only worker; B fills the queue (depth 1).
  std::string response_a, response_b;
  gc.threads.emplace_back([&] {
    response_a = submit(endpoint_, job_request("flow", "s27"));
  });
  ASSERT_TRUE(wait_until([&] { return gate->entered.load() >= 1; }));
  gc.threads.emplace_back([&] {
    response_b = submit(endpoint_, job_request("flow", "s27"));
  });
  ASSERT_TRUE(wait_until([&] { return enqueues.count() >= enqueues0 + 2; }));

  // The daemon is saturated (a new sim job would be turned away) — but
  // stats is answered inline on a reader thread and must still work,
  // reporting the queued job.
  const auto r = submit_json(job_request("stats", ""));
  ASSERT_TRUE(r.get_bool("ok"));
  const util::JsonValue* stats = r.get("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->get_string("schema"), "wbist.stats/1");
  const util::JsonValue* queue = stats->get("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->get_int("depth", -1), 1);
  EXPECT_EQ(queue->get_int("capacity", -1), 1);
  EXPECT_EQ(queue->get_int("workers", -1), 1);

  // The enriched overloaded answer carries the backlog that caused it.
  const auto c = submit_json(job_request("flow", "s27"));
  EXPECT_FALSE(c.get_bool("ok", true));
  EXPECT_EQ(c.get_string("error"), "overloaded");
  EXPECT_EQ(c.get_int("queue_depth", -1), 1);
  EXPECT_EQ(c.get_int("queue_capacity", -1), 1);
  EXPECT_GT(c.get_int("retry_after_ms", 0), 0);

  gate->release();
  for (auto& t : gc.threads) t.join();
  EXPECT_TRUE(util::json_parse(response_a).get_bool("ok"));
  EXPECT_TRUE(util::json_parse(response_b).get_bool("ok"));
}

TEST_F(ServeTest, FlightRecorderRetainsRecentRequestsOldestFirst) {
  start();
  ASSERT_TRUE(submit_json(job_request("ping", "")).get_bool("ok"));
  ASSERT_TRUE(submit_json(job_request("flow", "s27")).get_bool("ok"));
  EXPECT_FALSE(submit_json(job_request("no-such-job", "")).get_bool("ok", true));

  const auto r = submit_json(job_request("flight", ""));
  ASSERT_TRUE(r.get_bool("ok"));
  const util::JsonValue* flight = r.get("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->get_string("schema"), "wbist.flight/1");
  EXPECT_EQ(flight->get_int("dropped", -1), 0);
  const util::JsonValue* entries = flight->get("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->as_array().size(), 3u);  // the flight job itself is
                                              // recorded after it answers
  const auto& v = entries->as_array();
  EXPECT_EQ(v[0].get_string("job"), "ping");
  EXPECT_EQ(v[0].get_string("outcome"), "ok");
  EXPECT_EQ(v[1].get_string("job"), "flow");
  EXPECT_EQ(v[1].get_string("outcome"), "ok");
  EXPECT_GT(v[1].get_int("run_us", -1), 0);
  EXPECT_EQ(v[2].get_string("job"), "no-such-job");
  // The outcome is the wire error word (here the UsageError message,
  // truncated to the entry's inline capacity).
  EXPECT_EQ(v[2].get_string("outcome").substr(0, 7), "unknown");

  // The per-job-type latency histogram fed the stats quantiles.
  const auto s = submit_json(job_request("stats", ""));
  const util::JsonValue* hists = s.get("stats")->get("histograms");
  ASSERT_NE(hists, nullptr);
  const util::JsonValue* flow_h = hists->get("serve.run_us.flow");
  ASSERT_NE(flow_h, nullptr);
  EXPECT_GE(flow_h->get_int("count", 0), 1);
  EXPECT_GE(flow_h->get_int("max", 0), 1);
  EXPECT_NE(flow_h->get("p50"), nullptr);
}

// ---------------------------------------------------------------------------
// Client-side failure taxonomy: each cause gets its own exception type so
// the CLI can map them to distinct exit codes.

TEST(ServeClient, AbsentUnixSocketIsAConnectError) {
  Endpoint ep;
  ep.unix_path =
      "/tmp/wbist_no_such_socket_" + std::to_string(::getpid()) + ".sock";
  EXPECT_THROW(submit(ep, "{}"), ConnectError);
}

TEST(ServeClient, RefusedTcpPortIsAConnectError) {
  // Bind an ephemeral port and immediately free it: nothing listens there.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len), 0);
  ::close(fd);

  Endpoint ep;
  ep.tcp_port = static_cast<int>(ntohs(bound.sin_port));
  EXPECT_THROW(submit(ep, "{}"), ConnectError);
}

TEST(ServeClient, SilentServerTripsTheIoTimeout) {
  // A listener whose backlog completes the handshake but that never reads
  // or answers: the client's read bound must fire, not block forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(fd, 4), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len), 0);

  Endpoint ep;
  ep.tcp_port = static_cast<int>(ntohs(bound.sin_port));
  ClientOptions opts;
  opts.connect_timeout_ms = 5000;
  opts.io_timeout_ms = 100;
  EXPECT_THROW(submit(ep, job_request("ping", ""), opts), TimeoutError);
  ::close(fd);
}

}  // namespace
}  // namespace wbist::serve
