// End-to-end tests of the `wbist serve` daemon: framed protocol, job
// dispatch, bit-identity with the direct library calls, the compile-once
// cache guarantee under concurrent clients, and orderly shutdown.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_cache.h"
#include "core/service.h"
#include "netlist/bench_io.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/json.h"

namespace wbist::serve {
namespace {

std::string job_request(const std::string& job, const std::string& circuit) {
  std::string r = "{\"schema\":\"wbist.serve/1\",\"job\":";
  r += util::json_quote(job);
  if (!circuit.empty()) r += ",\"circuit\":" + util::json_quote(circuit);
  r += '}';
  return r;
}

core::CircuitSpec registry_spec(const std::string& name) {
  core::CircuitSpec spec;
  spec.registry_name = name;
  return spec;
}

/// A daemon on an ephemeral loopback TCP port, torn down with the fixture.
class ServeTest : public ::testing::Test {
 protected:
  void start(std::size_t cache_bytes = 0, unsigned threads = 4) {
    ServerConfig cfg;
    cfg.tcp_port = 0;
    cfg.handler_threads = threads;
    cfg.cache_bytes = cache_bytes;
    server_ = std::make_unique<Server>(std::move(cfg));
    server_->start();
    endpoint_.tcp_port = server_->port();
    ASSERT_GT(endpoint_.tcp_port, 0);
  }

  void TearDown() override {
    if (server_) {
      server_->request_stop();
      server_->wait();
    }
  }

  util::JsonValue submit_json(const std::string& request) {
    return util::json_parse(submit(endpoint_, request));
  }

  std::unique_ptr<Server> server_;
  Endpoint endpoint_;
};

TEST_F(ServeTest, PingPong) {
  start();
  const auto r = submit_json(job_request("ping", ""));
  EXPECT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_int("exit", -1), 0);
  EXPECT_EQ(r.get_string("output"), "pong\n");
  EXPECT_EQ(r.get_string("schema"), "wbist.serve/1");
}

TEST_F(ServeTest, InfoMatchesDirectLibraryCall) {
  start();
  const auto cc = core::CompiledCircuit::compile(registry_spec("s27"));
  const auto r = submit_json(job_request("info", "s27"));
  EXPECT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_string("output"), core::info_report(*cc));
}

TEST_F(ServeTest, CacheHitReportedPerRequest) {
  start();
  const auto miss = submit_json(job_request("info", "s27"));
  ASSERT_TRUE(miss.get_bool("ok"));
  EXPECT_FALSE(miss.get("cache")->get_bool("hit", true));
  EXPECT_EQ(miss.get("cache")->get_string("key"), "registry:s27/equivalence");

  const auto hit = submit_json(job_request("info", "s27"));
  EXPECT_TRUE(hit.get("cache")->get_bool("hit", false));

  const auto s = server_->cache().stats();
  EXPECT_EQ(s.compiles, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST_F(ServeTest, ConcurrentFlowClientsBitIdenticalWithOneCompile) {
  start();
  constexpr int kClients = 6;
  std::vector<std::string> outputs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int k = 0; k < kClients; ++k)
    clients.emplace_back([&, k] {
      const auto r = util::json_parse(
          submit(endpoint_, job_request("flow", "s27")));
      if (r.get_bool("ok")) outputs[k] = r.get_string("output");
    });
  for (auto& t : clients) t.join();

  const auto cc = core::CompiledCircuit::compile(registry_spec("s27"));
  const std::string expected = core::run_flow_job(*cc).output;
  for (int k = 0; k < kClients; ++k)
    EXPECT_EQ(outputs[k], expected) << "client " << k;

  // N concurrent requests for the same circuit: exactly one compile, no
  // re-parse / re-collapse / re-levelization for the other N-1.
  const auto s = server_->cache().stats();
  EXPECT_EQ(s.compiles, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kClients - 1));
}

TEST_F(ServeTest, TgenSequenceFaultSimulatesToFullCoverage) {
  start();
  const auto tg = submit_json(job_request("tgen", "s27"));
  ASSERT_TRUE(tg.get_bool("ok"));
  const std::string seq = tg.get_string("sequence");
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(tg.get_int("detected", -1), tg.get_int("total", -2));

  std::string req = "{\"schema\":\"wbist.serve/1\",\"job\":\"fault-sim\","
                    "\"circuit\":\"s27\",\"sequence\":" +
                    util::json_quote(seq) + "}";
  const auto fs = submit_json(req);
  ASSERT_TRUE(fs.get_bool("ok"));
  EXPECT_EQ(fs.get_int("detected", -1), tg.get_int("detected", -2));
}

TEST_F(ServeTest, InlineBenchTextCompilesUnderItsDisplayName) {
  start();
  const auto nl = core::CompiledCircuit::compile(registry_spec("s27"));
  const std::string bench = netlist::write_bench(nl->netlist());
  std::string req = "{\"schema\":\"wbist.serve/1\",\"job\":\"info\","
                    "\"bench\":" + util::json_quote(bench) +
                    ",\"name\":\"inline27\"}";
  const auto r = submit_json(req);
  ASSERT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_string("output").substr(0, 9), "inline27\n");
  EXPECT_EQ(r.get("cache")->get_string("key").substr(0, 6), "bench:");
}

TEST_F(ServeTest, TinyCacheBudgetEvicts) {
  start(/*cache_bytes=*/1);
  ASSERT_TRUE(submit_json(job_request("info", "s27")).get_bool("ok"));
  ASSERT_TRUE(submit_json(job_request("info", "s298")).get_bool("ok"));
  const auto s = server_->cache().stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST_F(ServeTest, ErrorsMapToCliExitCodes) {
  start();
  const auto usage = submit_json(job_request("frobnicate", ""));
  EXPECT_FALSE(usage.get_bool("ok", true));
  EXPECT_EQ(usage.get_int("exit", -1), 2);

  const auto runtime = submit_json(job_request("info", "no-such-circuit"));
  EXPECT_FALSE(runtime.get_bool("ok", true));
  EXPECT_EQ(runtime.get_int("exit", -1), 1);
  EXPECT_FALSE(runtime.get_string("error").empty());

  const auto garbage = submit_json("this is not json");
  EXPECT_FALSE(garbage.get_bool("ok", true));
  EXPECT_EQ(garbage.get_int("exit", -1), 2);
}

TEST_F(ServeTest, OneConnectionServesManyRequestsInOrder)
{
  start();
  Client client(endpoint_);
  for (int k = 0; k < 5; ++k) {
    const auto r = util::json_parse(
        client.round_trip(job_request("info", "s27")));
    ASSERT_TRUE(r.get_bool("ok"));
    EXPECT_EQ(r.get("cache")->get_bool("hit", false), k > 0);
  }
}

TEST_F(ServeTest, ShutdownJobStopsTheDaemon) {
  start();
  const auto r = submit_json(job_request("shutdown", ""));
  EXPECT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_string("output"), "shutting down\n");
  server_->wait();  // must return: the daemon stopped itself
  EXPECT_THROW(Client{endpoint_}, std::runtime_error);
  server_.reset();
}

TEST(ServeUnixSocket, RoundTripAndSocketFileCleanup) {
  const std::string path =
      "/tmp/wbist_serve_ut_" + std::to_string(::getpid()) + ".sock";
  ServerConfig cfg;
  cfg.unix_path = path;
  cfg.handler_threads = 2;
  {
    Server server(std::move(cfg));
    server.start();
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0) << "socket file missing";
    Endpoint ep;
    ep.unix_path = path;
    const auto r = util::json_parse(submit(ep, job_request("ping", "")));
    EXPECT_EQ(r.get_string("output"), "pong\n");
    server.request_stop();
    server.wait();
  }
  struct stat st{};
  EXPECT_NE(::stat(path.c_str(), &st), 0)
      << "socket file not unlinked on shutdown";
}

TEST(ServeProtocol, RejectsOversizedFrames) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Hand-encode a frame header claiming 1 GiB.
  const unsigned char header[4] = {0x40, 0x00, 0x00, 0x00};
  ASSERT_EQ(::write(fds[1], header, 4), 4);
  std::string payload;
  EXPECT_THROW(read_frame(fds[0], payload), std::exception);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace wbist::serve
