// The `wbist campaign` driver: shard a collapsed fault list across spawned
// `wbist campaign-worker` processes and merge the results deterministically.
//
// Transport reuses the wbist.serve/1 wire framing (serve/protocol.h): each
// worker is a child process whose stdin/stdout are one AF_UNIX socketpair,
// speaking length-prefixed JSON frames. The driver sends one `init` frame
// (circuit spec + collapse mode + the full sequence text — workers never
// read driver paths, exactly like `wbist submit` inlines `.bench` files)
// and then one `shard` frame at a time; a worker always has exactly one
// request in flight, so the driver's poll loop treats "worker fd readable"
// as "a response or a death is ready".
//
// Fault tolerance: a worker that dies (EOF, I/O error, stalled write, or a
// SIGKILL from outside) surrenders its in-flight shard, which is pushed
// back to the front of the pending queue and retried on a freshly spawned
// worker — up to `max_retries` extra attempts per shard before the
// campaign aborts. Completed shards are appended to the wbist.campaign/1
// checkpoint stream the moment they merge, so a campaign killed at any
// point resumes by replaying the checkpoint and re-simulating only the
// missing shards (core/campaign.h owns the stream format and validation).
//
// Determinism: per-fault detection results do not depend on sharding,
// grouping, threads, or kernel backend (pinned by the fault-sim suites),
// so the merged FaultSimResult is bit-identical to a single-process
// FaultSimulator::run_all — CI gates this by diffing the canonical result
// JSON of `wbist campaign` against `wbist fsim`.
//
// Observability (wbist.metrics/1): campaign.shards_dispatched / retried /
// resumed / completed, campaign.workers_spawned / worker_deaths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/artifact_cache.h"
#include "core/campaign.h"
#include "fault/fault_list.h"

namespace wbist::serve {

struct CampaignOptions {
  /// Path to the wbist binary to spawn as `campaign-worker` (see
  /// self_exe_path()). Required.
  std::string worker_exe;
  /// Worker processes running concurrently.
  unsigned workers = 4;
  /// Shard count (0 = workers * 4; capped at the fault count). More shards
  /// than workers keeps the retry/kill blast radius small and the tail
  /// balanced.
  std::size_t shards = 0;
  /// FaultSimOptions::threads inside each worker (campaigns parallelize
  /// across processes; 1 keeps workers single-threaded).
  unsigned worker_threads = 1;
  /// Extra attempts per shard after its first failure before the campaign
  /// aborts.
  unsigned max_retries = 2;
  /// Checkpoint stream path; empty disables checkpointing (and --resume).
  std::string checkpoint_path;
  /// Replay completed shards from the checkpoint instead of re-simulating.
  bool resume = false;
  /// Test hook: stop dispatching after this many shard completions *this
  /// run* (0 = run to completion). The outcome reports complete = false;
  /// the CLI maps it to exit 3 (transient — resume later).
  std::size_t halt_after = 0;
  fault::CollapseMode collapse = fault::CollapseMode::kEquivalence;

  /// Live-progress snapshot (`wbist.campaign.status/1`): the driver
  /// atomically replaces this file (write tmp + rename) on every shard
  /// completion, retry, worker death and heartbeat, so `wbist top` and
  /// external pollers always read a consistent document. Empty disables.
  std::string status_json_path;

  /// Worker heartbeat cadence in milliseconds. Workers piggyback periodic
  /// `{"job":"heartbeat",...}` frames (current shard, cumulative fault-sim
  /// counters) on the socketpair between shard responses; 0 disables.
  /// Overridable for tests via WBIST_CAMPAIGN_HEARTBEAT_MS in the worker.
  int heartbeat_ms = 500;

  /// Directory for per-worker Chrome traces: each worker records its run
  /// and writes `<trace_dir>/worker-<pid>.trace.json`, with shard spans
  /// stamped with the campaign id so `tools/trace_summary.py --merge`
  /// can stitch one cross-process timeline. Empty disables.
  std::string trace_dir;

  /// Campaign identifier stamped into the status snapshot and worker
  /// traces. Empty derives `<circuit>-<seq_hash lowest 8 hex>`.
  std::string campaign_id;
};

struct CampaignOutcome {
  core::FaultSimResult result;
  bool complete = true;          ///< false only on the halt_after path
  std::size_t shards_total = 0;
  std::size_t shards_resumed = 0;   ///< replayed from the checkpoint
  std::size_t shards_retried = 0;   ///< reassignments after worker deaths
  std::size_t worker_deaths = 0;
  std::size_t workers_spawned = 0;
  /// Simulation effort summed across workers (resumed shards contribute
  /// their checkpointed cost), for BENCH_procedure-compatible reporting.
  std::uint64_t kernel_cycles = 0;
  std::uint64_t fault_cycles = 0;
  std::uint64_t trace_cycles = 0;
};

/// Run a sharded fault-simulation campaign of `sequence_text` (.seq format,
/// `seq_length` vectors) against `spec`'s collapsed fault list of
/// `fault_count` faults.
///
/// Throws core::CampaignCheckpointError on checkpoint schema/header
/// mismatches (CLI exit 2), std::invalid_argument on bad configuration,
/// and std::runtime_error when a shard exhausts its retries or a worker
/// answers a structured error (CLI exit 1).
CampaignOutcome run_campaign(const core::CircuitSpec& spec,
                             const std::string& circuit_name,
                             std::size_t fault_count,
                             const std::string& sequence_text,
                             std::size_t seq_length,
                             const CampaignOptions& options);

/// This process's executable path (/proc/self/exe where available,
/// `argv0` otherwise) — the default CampaignOptions::worker_exe.
std::string self_exe_path(const char* argv0);

}  // namespace wbist::serve
