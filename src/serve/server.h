// The `wbist serve` daemon: a persistent process answering framed JSON job
// requests (see serve/protocol.h) against a shared compiled-circuit cache.
//
// Architecture (DESIGN.md "Serve architecture" has the full picture):
//
//   accept thread ──> pending-connection queue (bounded; overflow is
//        │             turned away with a framed `overloaded` error)
//        │
//   K reader threads ──> bounded priority job queue ──> W worker threads
//   (poll-gated frame     Job{conn, seq, request,           │
//    reads: idle and       priority, deadline};   ArtifactCache (shared LRU)
//    mid-frame stall       full queue answers              │
//    deadlines evict       `overloaded` instead   core::run_*_job(const
//    slow-loris peers)     of queueing)             CompiledCircuit&,
//        │                                          cooperative Deadline)
//        └── responses are written back per-connection *in request order*
//            (a per-connection sequencer reorders out-of-order completions)
//
// One thread polls the listening socket (plus a self-pipe, so both the
// shutdown job and a signal handler can interrupt the poll with a single
// async-signal-safe write()). Readers only parse and route: control-plane
// jobs (ping / metrics / stats / flight / shutdown) and malformed requests
// are answered inline — they do no simulation work, and keeping them out of
// the job queue means liveness probes, stats scrapes and shutdown still
// answer when the queue is saturated — while simulation jobs are enqueued
// with an optional client
// priority and deadline. Workers drain the queue highest-priority-first
// (FIFO within a priority), answer already-expired jobs with
// `deadline_exceeded` without running them, and execute the rest through
// the re-entrant core::service entry points — the simulation inside a job
// parallelizes on the fault simulator's own worker pool exactly as the
// one-shot CLI does, so daemon results are bit-identical to CLI results
// (deadlines only decide *whether* a job runs, never its output).
//
// Every load-shedding decision is observable in wbist.metrics/1:
// serve.queue_depth (histogram, sampled at enqueue), serve.queue_wait_us
// (histogram), serve.jobs_rejected, serve.conns_rejected,
// serve.deadline_expired, serve.slow_clients_evicted.
//
// Shutdown is orderly: stop accepting, wake idle readers and workers, drop
// queued jobs, half-close in-flight connections (blocked reads return
// EOF), join every thread, unlink the unix socket. A `{"job":"shutdown"}`
// request answers first and then triggers exactly this path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/artifact_cache.h"
#include "core/service.h"
#include "util/json.h"
#include "util/ring.h"

namespace wbist::serve {

/// One retained request summary in the daemon's flight recorder: a
/// drop-oldest ring of the most recent requests, dumpable via the `flight`
/// control job and (best-effort) from a fatal-signal handler — which is why
/// this is a flat POD with inline char arrays, not strings.
struct FlightEntry {
  std::uint64_t ts_ms = 0;  ///< completion time, ms since server start
  int peer_fd = 0;
  long long priority = 0;
  std::uint64_t queue_wait_us = 0;
  std::uint64_t run_us = 0;
  char job[24] = {};      ///< NUL-terminated, truncated
  char outcome[24] = {};  ///< "ok" or the wire error word, truncated
};

struct ServerConfig {
  /// Exactly one listening endpoint: a unix-domain socket path, or TCP on
  /// 127.0.0.1 when `tcp_port` >= 0 (0 picks an ephemeral port; read it
  /// back with port()).
  std::string unix_path;
  int tcp_port = -1;

  /// Connection-reader threads (concurrent connections being read).
  unsigned handler_threads = 4;

  /// Job-executor threads draining the queue (0 = handler_threads).
  unsigned worker_threads = 0;

  /// ArtifactCache byte budget (0 = the cache's default).
  std::size_t cache_bytes = 0;

  /// Bounded job queue: a request arriving when `queue_depth` jobs are
  /// already waiting is answered `overloaded` instead of queued.
  std::size_t queue_depth = 64;

  /// Accepted-but-not-yet-picked-up connection cap: beyond it, new
  /// connections are turned away with a framed `overloaded` error so a
  /// connection flood sheds load instead of exhausting fds.
  std::size_t max_pending_conns = 128;

  /// Read deadline between frames on an established connection (-1 = none).
  int idle_timeout_ms = 30000;

  /// Stricter deadline once a peer is mid-frame (and for draining writes);
  /// tripping either evicts the connection (-1 = none).
  int stall_timeout_ms = 5000;

  /// Default per-request deadline applied when a request carries no
  /// `deadline_ms` of its own (0 = none).
  int request_timeout_ms = 0;

  /// Flight-recorder depth: how many recent request summaries the daemon
  /// retains (drop-oldest).
  std::size_t flight_entries = 256;

  /// Test-only: invoked on a worker thread after dequeue, before the
  /// expiry check and execution. Lets tests hold a worker deterministically
  /// busy; never set in production.
  std::function<void()> test_worker_gate;
};

class Server {
 public:
  explicit Server(ServerConfig config);

  /// Joins all threads; equivalent to request_stop() + wait().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept + reader + worker threads. Throws
  /// std::runtime_error when the endpoint cannot be bound.
  void start();

  /// Block until the daemon has fully stopped (shutdown job, signal via
  /// request_stop(), or destructor).
  void wait();

  /// Interrupt the daemon from any context — including a signal handler:
  /// the only work done here is an atomic store and one write() to the
  /// self-pipe. The accept thread performs the orderly teardown.
  void request_stop();

  /// Resolved TCP port (after start(); -1 for unix endpoints).
  int port() const { return resolved_port_; }

  const core::ArtifactCache& cache() const { return cache_; }

  /// Best-effort flight-recorder dump for fatal-signal handlers: reads the
  /// ring without locking (see util::SnapshotRing::crash_copy_into) and
  /// emits one line per retained request via write(2) — no allocation, no
  /// stdio, no locks, so it is safe to call from a signal handler.
  void dump_flight(int fd) const;

 private:
  /// One accepted connection, shared between its reader and any workers
  /// still owing it responses; the fd closes when the last holder lets go.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    const int fd;
    /// Next request sequence number; touched only by the connection's
    /// single reader thread.
    std::uint64_t next_seq = 0;

    std::mutex mu;  // guards everything below
    std::uint64_t next_write = 0;             ///< next seq to write back
    std::map<std::uint64_t, std::string> done;  ///< out-of-order completions
    bool dead = false;  ///< write failed or peer evicted; drop responses
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Job {
    ConnPtr conn;
    std::uint64_t seq = 0;
    util::JsonValue request;
    std::string job_name;
    long long priority = 0;
    core::Deadline deadline;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Queue order: highest priority first, FIFO within a priority.
  struct JobKey {
    long long neg_priority;
    std::uint64_t order;
    bool operator<(const JobKey& o) const {
      return neg_priority != o.neg_priority ? neg_priority < o.neg_priority
                                            : order < o.order;
    }
  };

  void accept_main();
  void reader_main();
  void worker_main();
  void serve_connection(const ConnPtr& conn);

  /// Parse one request payload and route it: answer inline (control jobs,
  /// parse errors), enqueue it, or shed it with `overloaded`.
  void dispatch_request(const ConnPtr& conn, std::uint64_t seq,
                        std::string payload);

  /// Hand a finished response to the connection's sequencer; writes every
  /// response that is now next-in-order.
  void complete(const ConnPtr& conn, std::uint64_t seq, std::string response);

  /// Executes one parsed request; returns the response payload and sets
  /// `shutdown` when the request asked the daemon to stop. `queue_wait_us`
  /// is the time the job spent queued (0 for inline control jobs) — it is
  /// reported back in the `wbist.obs/1` block when the request opted into
  /// observation.
  std::string handle_request(const util::JsonValue& req,
                             const std::string& job, bool& shutdown,
                             const core::Deadline& deadline,
                             std::uint64_t queue_wait_us);

  /// `wbist.stats/1` snapshot: queue state, cache stats, every global
  /// counter, and each histogram with p50/p90/p99 quantiles.
  std::string stats_json();

  /// `wbist.flight/1` snapshot of the flight-recorder ring (oldest first).
  std::string flight_json();

  /// Append one request summary to the flight recorder.
  void record_flight(const ConnPtr& conn, std::string_view job,
                     long long priority, std::uint64_t queue_wait_us,
                     std::uint64_t run_us, const std::string& response);

  void orderly_stop();  // run on the accept thread only

  ServerConfig config_;
  core::ArtifactCache cache_;
  util::SnapshotRing<FlightEntry> flight_;
  std::chrono::steady_clock::time_point started_at_{};

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int resolved_port_ = -1;
  bool started_ = false;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::deque<ConnPtr> pending_;            ///< accepted, not yet picked up
  std::unordered_set<Connection*> active_;  ///< currently owned by a reader

  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::map<JobKey, Job> jobs_;
  std::uint64_t job_counter_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> readers_;
  std::vector<std::thread> workers_;
};

}  // namespace wbist::serve
