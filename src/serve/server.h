// The `wbist serve` daemon: a persistent process answering framed JSON job
// requests (see serve/protocol.h) against a shared compiled-circuit cache.
//
// Architecture (DESIGN.md "Serve architecture" has the full picture):
//
//   accept thread ──> pending-connection queue ──> K handler threads
//                                                      │
//                                          ArtifactCache (shared, LRU)
//                                                      │
//                                    core::run_*_job(const CompiledCircuit&)
//
// One thread polls the listening socket (plus a self-pipe, so both the
// shutdown job and a signal handler can interrupt the poll with a single
// async-signal-safe write()). Accepted connections queue to a fixed set of
// handler threads; each handler serves its connection's requests
// sequentially until the peer closes. Requests compile circuits at most
// once process-wide through the ArtifactCache and then run the re-entrant
// core::service entry points — the simulation inside a job parallelizes on
// the fault simulator's own worker pool exactly as the one-shot CLI does,
// so daemon results are bit-identical to CLI results.
//
// Shutdown is orderly: stop accepting, wake idle handlers, half-close
// in-flight connections (blocked reads return EOF), join every thread,
// unlink the unix socket. A `{"job":"shutdown"}` request answers first and
// then triggers exactly this path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/artifact_cache.h"

namespace wbist::serve {

struct ServerConfig {
  /// Exactly one listening endpoint: a unix-domain socket path, or TCP on
  /// 127.0.0.1 when `tcp_port` >= 0 (0 picks an ephemeral port; read it
  /// back with port()).
  std::string unix_path;
  int tcp_port = -1;

  /// Connection-handler threads (concurrent in-flight requests).
  unsigned handler_threads = 4;

  /// ArtifactCache byte budget (0 = the cache's default).
  std::size_t cache_bytes = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);

  /// Joins all threads; equivalent to request_stop() + wait().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept + handler threads. Throws
  /// std::runtime_error when the endpoint cannot be bound.
  void start();

  /// Block until the daemon has fully stopped (shutdown job, signal via
  /// request_stop(), or destructor).
  void wait();

  /// Interrupt the daemon from any context — including a signal handler:
  /// the only work done here is an atomic store and one write() to the
  /// self-pipe. The accept thread performs the orderly teardown.
  void request_stop();

  /// Resolved TCP port (after start(); -1 for unix endpoints).
  int port() const { return resolved_port_; }

  const core::ArtifactCache& cache() const { return cache_; }

 private:
  void accept_main();
  void handler_main();
  void serve_connection(int fd);

  /// Executes one request payload; returns the response payload and sets
  /// `shutdown` when the request asked the daemon to stop.
  std::string handle_request(const std::string& payload, bool& shutdown);

  void orderly_stop();  // run on the accept thread only

  ServerConfig config_;
  core::ArtifactCache cache_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int resolved_port_ = -1;
  bool started_ = false;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;               // accepted, not yet handled
  std::unordered_set<int> active_fds_;    // currently inside a handler

  std::thread accept_thread_;
  std::vector<std::thread> handlers_;
};

}  // namespace wbist::serve
