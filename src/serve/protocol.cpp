#include "serve/protocol.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace wbist::serve {

namespace {

[[noreturn]] void io_error(const char* what) {
  throw std::runtime_error(std::string("serve: ") + what + ": " +
                           std::strerror(errno));
}

/// Read exactly `n` bytes. Returns bytes read before EOF (== n normally).
std::size_t read_exact(int fd, void* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, static_cast<char*>(buf) + done, n - done);
    if (r == 0) break;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      io_error("read");
    }
    done += static_cast<std::size_t>(r);
  }
  return done;
}

void write_all(int fd, const void* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE instead of killing
    // the daemon with SIGPIPE.
    const ssize_t w = ::send(fd, static_cast<const char*>(buf) + done,
                             n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      io_error("write");
    }
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

bool read_frame(int fd, std::string& payload) {
  unsigned char hdr[4];
  const std::size_t got = read_exact(fd, hdr, sizeof hdr);
  if (got == 0) return false;  // clean EOF between frames
  if (got != sizeof hdr)
    throw std::runtime_error("serve: truncated frame header");
  const std::uint32_t len = (std::uint32_t{hdr[0]} << 24) |
                            (std::uint32_t{hdr[1]} << 16) |
                            (std::uint32_t{hdr[2]} << 8) | std::uint32_t{hdr[3]};
  if (len > kMaxFrameBytes)
    throw std::runtime_error("serve: frame exceeds " +
                             std::to_string(kMaxFrameBytes) + " bytes");
  payload.resize(len);
  if (len != 0 && read_exact(fd, payload.data(), len) != len)
    throw std::runtime_error("serve: truncated frame payload");
  return true;
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    throw std::runtime_error("serve: frame exceeds " +
                             std::to_string(kMaxFrameBytes) + " bytes");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char hdr[4] = {static_cast<unsigned char>(len >> 24),
                                static_cast<unsigned char>(len >> 16),
                                static_cast<unsigned char>(len >> 8),
                                static_cast<unsigned char>(len)};
  write_all(fd, hdr, sizeof hdr);
  write_all(fd, payload.data(), payload.size());
}

}  // namespace wbist::serve
