#include "serve/protocol.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace wbist::serve {

namespace {

[[noreturn]] void io_error(const char* what) {
  throw std::runtime_error(std::string("serve: ") + what + ": " +
                           std::strerror(errno));
}

/// Wait until `fd` is ready for `events` (POLLIN/POLLOUT) or `timeout_ms`
/// elapses. Returns false on timeout. POLLERR/POLLHUP count as ready: the
/// following read/write surfaces the condition as EOF or an errno.
bool poll_ready(int fd, short events, int timeout_ms) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    io_error("poll");
  }
}

}  // namespace

ReadStatus read_frame(int fd, std::string& payload, const ReadDeadlines& dl) {
  unsigned char hdr[4];
  std::size_t got = 0;
  while (got < sizeof hdr) {
    const int timeout = got == 0 ? dl.idle_timeout_ms : dl.stall_timeout_ms;
    if (!poll_ready(fd, POLLIN, timeout))
      return got == 0 ? ReadStatus::kIdleTimeout : ReadStatus::kStallTimeout;
    const ssize_t r = ::read(fd, hdr + got, sizeof hdr - got);
    if (r == 0) {
      if (got == 0) return ReadStatus::kEof;  // clean close between frames
      throw std::runtime_error("serve: truncated frame header");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      io_error("read");
    }
    got += static_cast<std::size_t>(r);
  }
  const std::uint32_t len = (std::uint32_t{hdr[0]} << 24) |
                            (std::uint32_t{hdr[1]} << 16) |
                            (std::uint32_t{hdr[2]} << 8) | std::uint32_t{hdr[3]};
  if (len > kMaxFrameBytes)
    throw std::runtime_error("serve: frame exceeds " +
                             std::to_string(kMaxFrameBytes) + " bytes");
  payload.resize(len);
  std::size_t done = 0;
  while (done < len) {
    if (!poll_ready(fd, POLLIN, dl.stall_timeout_ms))
      return ReadStatus::kStallTimeout;
    const ssize_t r = ::read(fd, payload.data() + done, len - done);
    if (r == 0) throw std::runtime_error("serve: truncated frame payload");
    if (r < 0) {
      if (errno == EINTR) continue;
      io_error("read");
    }
    done += static_cast<std::size_t>(r);
  }
  return ReadStatus::kFrame;
}

bool read_frame(int fd, std::string& payload) {
  switch (read_frame(fd, payload, ReadDeadlines{})) {
    case ReadStatus::kEof:
      return false;
    default:
      return true;  // timeouts are impossible with unbounded deadlines
  }
}

void write_frame(int fd, std::string_view payload, int stall_timeout_ms) {
  if (payload.size() > kMaxFrameBytes)
    throw std::runtime_error("serve: frame exceeds " +
                             std::to_string(kMaxFrameBytes) + " bytes");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char hdr[4] = {static_cast<unsigned char>(len >> 24),
                                static_cast<unsigned char>(len >> 16),
                                static_cast<unsigned char>(len >> 8),
                                static_cast<unsigned char>(len)};
  // One gathered buffer so the header cannot be split from a tiny payload.
  std::string frame;
  frame.reserve(sizeof hdr + payload.size());
  frame.append(reinterpret_cast<const char*>(hdr), sizeof hdr);
  frame.append(payload.data(), payload.size());

  // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE instead of killing the
  // daemon with SIGPIPE. MSG_DONTWAIT under a stall bound: an AF_UNIX
  // stream send() blocks until the *whole* buffer is consumed rather than
  // returning a partial write the way TCP does, which would let a
  // non-draining peer pin the writer past its bound even after a
  // successful poll; non-blocking sends make every wait happen in poll.
  const int flags =
      MSG_NOSIGNAL | (stall_timeout_ms >= 0 ? MSG_DONTWAIT : 0);
  std::size_t done = 0;
  while (done < frame.size()) {
    if (stall_timeout_ms >= 0 && !poll_ready(fd, POLLOUT, stall_timeout_ms))
      throw FrameTimeout("serve: peer not draining, write stalled for " +
                         std::to_string(stall_timeout_ms) + "ms");
    const ssize_t w =
        ::send(fd, frame.data() + done, frame.size() - done, flags);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      io_error("write");
    }
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace wbist::serve
