// Client side of the `wbist serve` protocol: connect, frame a request,
// read the framed response. Used by `wbist submit`, the serve tests, and
// any embedding that wants to talk to a running daemon in-process.
#pragma once

#include <string>
#include <string_view>

namespace wbist::serve {

/// Where a daemon listens. Exactly one of `unix_path` / `tcp_port >= 0`.
struct Endpoint {
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
};

/// A connection to a daemon. One Client = one socket; requests on the same
/// Client are served in order by one handler thread on the server side.
/// Not thread-safe — use one Client per thread.
class Client {
 public:
  /// Connects immediately; throws std::runtime_error when the daemon is
  /// not reachable.
  explicit Client(const Endpoint& endpoint);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip. `request` must be a wbist.serve/1
  /// JSON document; the raw response payload is returned. Throws on
  /// transport errors (including the daemon closing mid-request).
  std::string round_trip(std::string_view request);

 private:
  int fd_ = -1;
};

/// Convenience: one-shot connect + round_trip + close.
std::string submit(const Endpoint& endpoint, std::string_view request);

}  // namespace wbist::serve
