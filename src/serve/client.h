// Client side of the `wbist serve` protocol: connect, frame a request,
// read the framed response. Used by `wbist submit`, the serve tests, and
// any embedding that wants to talk to a running daemon in-process.
//
// Every step is bounded: connect() is attempted non-blocking under
// `connect_timeout_ms`, and each round trip's write and read are gated by
// poll(2) under `io_timeout_ms` — a wedged or absent daemon surfaces as a
// typed error instead of hanging the client forever. The error taxonomy
// maps 1:1 onto `wbist submit` exit codes (see docs/schemas/
// wbist.serve-v1.md): ConnectError (cannot reach a daemon), TimeoutError
// (reached one but it did not answer in time), ProtocolError (it answered
// with something that is not a well-formed frame).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace wbist::serve {

/// Where a daemon listens. Exactly one of `unix_path` / `tcp_port >= 0`.
struct Endpoint {
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
};

/// Client-side transport bounds. -1 disables a bound (never recommended
/// against a shared daemon).
struct ClientOptions {
  int connect_timeout_ms = 30000;
  /// Bounds each round trip's request write and response read. The read
  /// bound is the time budget for the *daemon's answer*, so it should
  /// exceed any `deadline_ms` carried by the request itself.
  int io_timeout_ms = 30000;
};

/// Base of every transport-level client failure.
struct ClientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// No daemon reachable: connection refused, unreachable, absent socket.
struct ConnectError : ClientError {
  using ClientError::ClientError;
};
/// A bound elapsed: connect, request write, or response read timed out.
struct TimeoutError : ClientError {
  using ClientError::ClientError;
};
/// The peer violated the framing contract (closed mid-frame, oversized or
/// truncated frame).
struct ProtocolError : ClientError {
  using ClientError::ClientError;
};

/// A connection to a daemon. One Client = one socket; requests on the same
/// Client are answered in request order by the server. Not thread-safe —
/// use one Client per thread.
class Client {
 public:
  /// Connects immediately; throws ConnectError when the daemon is not
  /// reachable and TimeoutError when connecting exceeds its bound.
  explicit Client(const Endpoint& endpoint, const ClientOptions& options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip. `request` must be a wbist.serve/1
  /// JSON document; the raw response payload is returned. Throws
  /// TimeoutError / ProtocolError (see above).
  std::string round_trip(std::string_view request);

 private:
  int fd_ = -1;
  ClientOptions options_;
};

/// Convenience: one-shot connect + round_trip + close.
std::string submit(const Endpoint& endpoint, std::string_view request,
                   const ClientOptions& options = {});

}  // namespace wbist::serve
