// Wire framing for the `wbist serve` protocol (schema wbist.serve/1).
//
// Every message — request or response — is one frame:
//
//   +----------------------+-------------------------+
//   | length: u32, big-end | payload: `length` bytes |
//   +----------------------+-------------------------+
//
// The payload is a single UTF-8 JSON document (docs/schemas/
// wbist.serve-v1.md describes the request/response objects). Length-prefix
// framing keeps the parser trivial for any client language: read 4 bytes,
// read N bytes, parse. Frames above kMaxFrameBytes are rejected before any
// allocation so a malicious length cannot balloon the server.
//
// Both directions support *deadlines* enforced by poll(2)-before-I/O: a
// reader distinguishes "idle between frames" (a healthy keep-alive
// connection with nothing to say) from "stalled mid-frame" (a slow-loris
// peer that sent part of a frame and went quiet), and a writer bounds how
// long a peer may refuse to drain a response. Timeouts never block a thread
// past the configured bound, which is what makes handler threads evictable
// instead of pinnable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace wbist::serve {

inline constexpr std::string_view kSchema = "wbist.serve/1";

/// Upper bound on one frame's payload (64 MiB — a s38417-sized `.bench`
/// inlined in a request is ~1 MiB, so this is generous).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Poll-before-read deadlines for read_frame. -1 disables a bound.
struct ReadDeadlines {
  /// Max wait for the first header byte of the next frame (a connection
  /// with no request in flight is merely idle, not misbehaving).
  int idle_timeout_ms = -1;
  /// Max silent gap once inside a frame — between any two reads of header
  /// or payload bytes. A peer that trips this is stalling mid-frame.
  int stall_timeout_ms = -1;
};

enum class ReadStatus {
  kFrame,         ///< one complete frame landed in `payload`
  kEof,           ///< clean close at a frame boundary
  kIdleTimeout,   ///< no frame started within idle_timeout_ms
  kStallTimeout,  ///< peer went quiet mid-frame for stall_timeout_ms
};

/// A frame write that could not make progress within its stall bound.
struct FrameTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Read one frame from `fd` into `payload`, honouring the deadlines.
/// Returns kFrame/kEof/kIdleTimeout/kStallTimeout; throws
/// std::runtime_error on short reads inside a frame (EOF mid-frame), I/O
/// errors, or an oversized length prefix.
ReadStatus read_frame(int fd, std::string& payload, const ReadDeadlines& dl);

/// Unbounded read (no deadlines). Returns false on clean EOF at a frame
/// boundary; throws as above.
bool read_frame(int fd, std::string& payload);

/// Write one frame. `stall_timeout_ms` bounds every silent gap in which the
/// peer accepts no bytes (-1 = unbounded); tripping it throws FrameTimeout.
/// Throws std::runtime_error on I/O errors (including a peer that
/// disappeared mid-write; SIGPIPE is suppressed).
void write_frame(int fd, std::string_view payload, int stall_timeout_ms = -1);

}  // namespace wbist::serve
