// Wire framing for the `wbist serve` protocol (schema wbist.serve/1).
//
// Every message — request or response — is one frame:
//
//   +----------------------+-------------------------+
//   | length: u32, big-end | payload: `length` bytes |
//   +----------------------+-------------------------+
//
// The payload is a single UTF-8 JSON document (docs/schemas/
// wbist.serve-v1.md describes the request/response objects). Length-prefix
// framing keeps the parser trivial for any client language: read 4 bytes,
// read N bytes, parse. Frames above kMaxFrameBytes are rejected before any
// allocation so a malicious length cannot balloon the server.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wbist::serve {

inline constexpr std::string_view kSchema = "wbist.serve/1";

/// Upper bound on one frame's payload (64 MiB — a s38417-sized `.bench`
/// inlined in a request is ~1 MiB, so this is generous).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Read one frame from `fd` into `payload`. Returns false on clean EOF at a
/// frame boundary (the peer closed); throws std::runtime_error on short
/// reads inside a frame, I/O errors, or an oversized length prefix.
bool read_frame(int fd, std::string& payload);

/// Write one frame. Throws std::runtime_error on I/O errors (including a
/// peer that disappeared mid-write; SIGPIPE is suppressed).
void write_frame(int fd, std::string_view payload);

}  // namespace wbist::serve
