#include "serve/campaign_runner.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <vector>

#include "fault/fault.h"
#include "serve/protocol.h"
#include "util/json.h"
#include "util/metrics.h"

namespace wbist::serve {

namespace {

/// Bound on every silent I/O gap with a worker. Workers answer a frame the
/// moment the shard finishes; a mid-frame stall this long means the worker
/// is wedged and is treated as a death (long shards are fine — the bound is
/// per byte gap *inside* a frame, not per shard).
constexpr int kStallMs = 60'000;

const char* collapse_name(fault::CollapseMode mode) {
  switch (mode) {
    case fault::CollapseMode::kNone: return "none";
    case fault::CollapseMode::kDominance: return "dominance";
    case fault::CollapseMode::kEquivalence: break;
  }
  return "equivalence";
}

void field_int(std::string& out, std::string_view key, long long value) {
  if (!out.empty() && out.back() != '{') out += ',';
  util::append_json_string(out, key);
  out += ':';
  out += std::to_string(value);
}

void field_str(std::string& out, std::string_view key,
               std::string_view value) {
  if (!out.empty() && out.back() != '{') out += ',';
  util::append_json_string(out, key);
  out += ':';
  util::append_json_string(out, value);
}

struct Worker {
  pid_t pid = -1;
  int fd = -1;
  bool inited = false;
  std::int64_t shard = -1;  ///< in-flight shard index, -1 when idle
  // Live-progress fields fed by heartbeat frames (cumulative per process).
  std::uint64_t hb_kernel_cycles = 0;
  std::uint64_t hb_fault_cycles = 0;
  double hb_last_s = -1.0;  ///< campaign-elapsed seconds at last heartbeat
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void reap(pid_t pid) {
  if (pid <= 0) return;
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

/// Forcibly terminate and reap one worker (harmless when already dead).
void kill_worker(Worker& w) {
  if (w.pid > 0) ::kill(w.pid, SIGKILL);
  close_fd(w.fd);
  reap(w.pid);
  w.pid = -1;
  w.inited = false;
  w.shard = -1;
  w.hb_kernel_cycles = 0;
  w.hb_fault_cycles = 0;
  w.hb_last_s = -1.0;
}

void append_status_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

/// Let an idle worker finish cleanly: closing our socket end is the EOF its
/// read loop exits on.
void retire_worker(Worker& w) {
  close_fd(w.fd);
  reap(w.pid);
  w.pid = -1;
  w.inited = false;
}

}  // namespace

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0 != nullptr ? argv0 : "wbist";
}

CampaignOutcome run_campaign(const core::CircuitSpec& spec,
                             const std::string& circuit_name,
                             std::size_t fault_count,
                             const std::string& sequence_text,
                             std::size_t seq_length,
                             const CampaignOptions& options) {
  if (options.worker_exe.empty())
    throw std::invalid_argument("campaign: worker executable path is empty");
  if (options.workers == 0)
    throw std::invalid_argument("campaign: worker count must be > 0");
  if (options.resume && options.checkpoint_path.empty())
    throw std::invalid_argument("campaign: --resume requires a checkpoint");

  const std::size_t shard_count =
      options.shards != 0 ? options.shards
                          : static_cast<std::size_t>(options.workers) * 4;
  const std::vector<core::Shard> plan =
      core::plan_shards(fault_count, shard_count);

  util::MetricsRegistry& m = util::metrics();

  CampaignOutcome out;
  out.shards_total = plan.size();
  out.result.circuit = circuit_name;
  out.result.seq_length = seq_length;
  out.result.detection_time.assign(fault_count,
                                   fault::DetectionResult::kUndetected);
  out.result.detecting_line.assign(fault_count, netlist::kNoNode);

  core::CampaignHeader header;
  header.circuit = circuit_name;
  header.collapse = collapse_name(options.collapse);
  header.faults = fault_count;
  header.shards = plan.size();
  header.seq_length = seq_length;
  header.seq_hash = core::fnv1a64(sequence_text);

  std::vector<bool> done(plan.size(), false);
  std::map<std::uint32_t, core::ShardResult> replayed;
  if (options.resume) {
    core::CampaignCheckpoint ck =
        core::load_campaign_checkpoint(options.checkpoint_path);
    const auto mismatch = [&](const std::string& what, const std::string& got,
                              const std::string& want) {
      throw core::CampaignCheckpointError(
          "checkpoint " + options.checkpoint_path + ": " + what + " is '" +
          got + "' but the live campaign has '" + want +
          "' — refusing to merge");
    };
    if (ck.header.circuit != header.circuit)
      mismatch("circuit", ck.header.circuit, header.circuit);
    if (ck.header.collapse != header.collapse)
      mismatch("collapse", ck.header.collapse, header.collapse);
    if (ck.header.faults != header.faults)
      mismatch("fault count", std::to_string(ck.header.faults),
               std::to_string(header.faults));
    if (ck.header.shards != header.shards)
      mismatch("shard count", std::to_string(ck.header.shards),
               std::to_string(header.shards));
    if (ck.header.seq_length != header.seq_length)
      mismatch("sequence length", std::to_string(ck.header.seq_length),
               std::to_string(header.seq_length));
    if (ck.header.seq_hash != header.seq_hash)
      mismatch("sequence hash", "differing", "differing");
    for (const auto& [k, s] : ck.shards) {
      if (k >= plan.size() || s.begin != plan[k].begin ||
          s.end != plan[k].end)
        throw core::CampaignCheckpointError(
            "checkpoint " + options.checkpoint_path + ": shard " +
            std::to_string(k) + " does not match the live shard plan");
      core::merge_shard(out.result, s);
      out.kernel_cycles += s.kernel_cycles;
      out.fault_cycles += s.fault_cycles;
      done[k] = true;
    }
    out.shards_resumed = ck.shards.size();
    m.counter("campaign.shards_resumed").add(out.shards_resumed);
    replayed = std::move(ck.shards);
  }

  std::deque<std::uint32_t> pending;
  for (std::uint32_t k = 0; k < plan.size(); ++k)
    if (!done[k]) pending.push_back(k);

  // Checkpointing. A resume *compacts*: the stream is rewritten fresh with
  // the header plus every replayed shard, which heals torn trailers and
  // duplicate records instead of appending after them (every record is
  // flushed, so the exposure window is one line, same as a normal append).
  core::CampaignCheckpointWriter writer;
  if (!options.checkpoint_path.empty()) {
    writer.open(options.checkpoint_path, header, /*resume=*/false);
    for (const auto& [k, s] : replayed) writer.record_shard(s);
  }
  replayed.clear();

  // Campaign identity: stamped into the status snapshot and every worker
  // trace so cross-process timelines can be stitched back together.
  std::string campaign_id = options.campaign_id;
  if (campaign_id.empty()) {
    char hex[16];
    std::snprintf(hex, sizeof hex, "%08llx",
                  static_cast<unsigned long long>(header.seq_hash &
                                                  0xffffffffull));
    campaign_id = circuit_name + "-" + hex;
  }

  // The init frame every spawned worker receives: the full campaign context
  // (circuit spec, collapse mode, the sequence text verbatim), so workers
  // never read driver-side paths.
  std::string init_payload = "{";
  field_str(init_payload, "schema", core::kCampaignSchema);
  field_str(init_payload, "job", "init");
  if (!spec.registry_name.empty()) {
    field_str(init_payload, "circuit", spec.registry_name);
  } else {
    field_str(init_payload, "bench", spec.bench_text);
    if (!spec.display_name.empty())
      field_str(init_payload, "name", spec.display_name);
  }
  field_str(init_payload, "collapse", header.collapse);
  field_int(init_payload, "threads",
            options.worker_threads == 0 ? 1 : options.worker_threads);
  field_str(init_payload, "campaign", campaign_id);
  if (options.heartbeat_ms > 0)
    field_int(init_payload, "heartbeat_ms", options.heartbeat_ms);
  if (!options.trace_dir.empty())
    field_str(init_payload, "trace_dir", options.trace_dir);
  field_str(init_payload, "sequence", sequence_text);
  init_payload += '}';

  std::vector<Worker> workers;
  std::vector<std::uint32_t> attempts(plan.size(), 0);  // failures per shard
  std::size_t completed_this_run = 0;
  std::size_t early_deaths = 0;  // deaths before the init handshake landed
  bool halted = false;

  // -- live progress ---------------------------------------------------------
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  std::size_t shards_done = out.shards_resumed;

  /// Atomically replace the status snapshot (write tmp + rename), so a
  /// concurrent `wbist top` or poller never reads a torn document.
  /// Best-effort: a failed write warns once and never aborts the campaign.
  bool status_warned = false;
  const auto write_status = [&](bool complete_flag) {
    if (options.status_json_path.empty()) return;
    const double el = elapsed_s();
    const std::size_t remaining = plan.size() - shards_done;
    double eta = -1.0;
    if (remaining == 0)
      eta = 0.0;
    else if (completed_this_run > 0)
      eta = el / static_cast<double>(completed_this_run) *
            static_cast<double>(remaining);

    std::string j = "{\"schema\":\"wbist.campaign.status/1\",\"campaign\":";
    util::append_json_string(j, campaign_id);
    j += ",\"circuit\":";
    util::append_json_string(j, circuit_name);
    j += ",\"collapse\":";
    util::append_json_string(j, header.collapse);
    j += ",\"shards_total\":" + std::to_string(plan.size()) +
         ",\"shards_done\":" + std::to_string(shards_done) +
         ",\"shards_resumed\":" + std::to_string(out.shards_resumed) +
         ",\"shards_retried\":" + std::to_string(out.shards_retried) +
         ",\"faults\":" + std::to_string(fault_count) +
         ",\"detected\":" + std::to_string(out.result.detected) +
         ",\"seq_length\":" + std::to_string(seq_length) +
         ",\"worker_deaths\":" + std::to_string(out.worker_deaths) +
         ",\"workers_spawned\":" + std::to_string(out.workers_spawned) +
         ",\"kernel_cycles\":" + std::to_string(out.kernel_cycles) +
         ",\"fault_cycles\":" + std::to_string(out.fault_cycles) +
         ",\"elapsed_s\":";
    append_status_double(j, el);
    j += ",\"eta_s\":";
    append_status_double(j, eta);
    j += complete_flag ? ",\"complete\":true" : ",\"complete\":false";
    j += ",\"workers\":[";
    bool first = true;
    for (const Worker& w : workers) {
      if (w.pid <= 0) continue;
      if (!first) j += ",";
      first = false;
      j += "{\"pid\":" + std::to_string(w.pid) +
           ",\"shard\":" + std::to_string(w.shard) +
           ",\"kernel_cycles\":" + std::to_string(w.hb_kernel_cycles) +
           ",\"fault_cycles\":" + std::to_string(w.hb_fault_cycles) +
           ",\"last_heartbeat_s\":";
      append_status_double(j, w.hb_last_s);
      j += ",\"cycles_per_s\":";
      append_status_double(
          j, w.hb_last_s > 0.0
                 ? static_cast<double>(w.hb_kernel_cycles) / w.hb_last_s
                 : 0.0);
      j += "}";
    }
    j += "]}\n";

    const std::string tmp = options.status_json_path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    bool ok = f != nullptr;
    if (ok) {
      ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
      ok = (std::fclose(f) == 0) && ok;
    }
    if (ok) ok = std::rename(tmp.c_str(), options.status_json_path.c_str()) == 0;
    if (!ok && !status_warned) {
      status_warned = true;
      std::fprintf(stderr, "campaign: cannot write status snapshot %s: %s\n",
                   options.status_json_path.c_str(), std::strerror(errno));
    }
  };

  const auto fatal_shutdown = [&](const std::string& msg) {
    for (Worker& w : workers) kill_worker(w);
    throw std::runtime_error(msg);
  };

  const auto handle_death = [&](Worker& w, const std::string& reason) {
    const bool was_inited = w.inited;
    const std::int64_t shard = w.shard;
    kill_worker(w);
    ++out.worker_deaths;
    m.counter("campaign.worker_deaths").add(1);
    // A fleet that keeps dying before it even answers init is not going to
    // be saved by retries (bad worker_exe, broken exec environment).
    if (!was_inited &&
        ++early_deaths >
            static_cast<std::size_t>(options.workers) + options.max_retries)
      fatal_shutdown("campaign: workers repeatedly dying before init (" +
                     reason + ")");
    if (shard >= 0) {
      const auto k = static_cast<std::uint32_t>(shard);
      if (++attempts[k] > options.max_retries)
        fatal_shutdown("campaign: shard " + std::to_string(k) +
                       " failed on all " + std::to_string(attempts[k]) +
                       " attempts, last: " + reason);
      // Front of the queue: the freshly spawned replacement retries the
      // surrendered shard before any untouched work.
      pending.push_front(k);
      ++out.shards_retried;
      m.counter("campaign.shards_retried").add(1);
      if (writer.is_open()) writer.record_retry(k, attempts[k] + 1, reason);
    }
    write_status(false);
  };

  const auto spawn_into = [&](Worker& w) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
      fatal_shutdown(std::string("campaign: socketpair: ") +
                     std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      fatal_shutdown(std::string("campaign: fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: the socketpair is its stdin/stdout (dup2 clears CLOEXEC).
      ::dup2(sv[1], STDIN_FILENO);
      ::dup2(sv[1], STDOUT_FILENO);
      ::execl(options.worker_exe.c_str(), options.worker_exe.c_str(),
              "campaign-worker", static_cast<char*>(nullptr));
      _exit(127);
    }
    ::close(sv[1]);
    w.pid = pid;
    w.fd = sv[0];
    w.inited = false;
    w.shard = -1;
    ++out.workers_spawned;
    m.counter("campaign.workers_spawned").add(1);
    try {
      write_frame(w.fd, init_payload, kStallMs);
    } catch (const std::exception& e) {
      handle_death(w, e.what());
    }
  };

  const auto assign = [&](Worker& w) {
    if (pending.empty()) {
      retire_worker(w);
      return;
    }
    const std::uint32_t k = pending.front();
    pending.pop_front();
    w.shard = k;
    std::string req = "{";
    field_str(req, "schema", core::kCampaignSchema);
    field_str(req, "job", "shard");
    field_int(req, "shard", k);
    field_int(req, "begin", plan[k].begin);
    field_int(req, "end", plan[k].end);
    field_int(req, "attempt", attempts[k] + 1);
    req += '}';
    try {
      write_frame(w.fd, req, kStallMs);
      m.counter("campaign.shards_dispatched").add(1);
    } catch (const std::exception& e) {
      handle_death(w, e.what());
    }
  };

  const auto handle_response = [&](Worker& w) {
    std::string payload;
    ReadStatus st;
    try {
      st = read_frame(w.fd, payload, ReadDeadlines{-1, kStallMs});
    } catch (const std::exception& e) {
      handle_death(w, e.what());
      return;
    }
    if (st != ReadStatus::kFrame) {
      handle_death(w, st == ReadStatus::kEof ? "worker exited"
                                             : "worker stalled mid-frame");
      return;
    }
    util::JsonValue rec;
    try {
      rec = util::json_parse(payload);
    } catch (const std::exception& e) {
      handle_death(w, std::string("unparseable worker response: ") + e.what());
      return;
    }
    if (!rec.get_bool("ok", false)) {
      // A structured refusal means the worker is healthy and the request is
      // wrong (unknown circuit, bad sequence...). Retrying cannot help.
      fatal_shutdown("campaign: worker error: " +
                     rec.get_string("error", "unspecified"));
    }
    const std::string job = rec.get_string("job");
    if (!w.inited) {
      if (job != "init") {
        handle_death(w, "worker answered '" + job + "' before init");
        return;
      }
      const std::int64_t f = rec.get_int("faults", -1);
      const std::int64_t l = rec.get_int("seq_len", -1);
      if (f != static_cast<std::int64_t>(fault_count) ||
          l != static_cast<std::int64_t>(seq_length))
        fatal_shutdown(
            "campaign: worker compiled a different campaign (" +
            std::to_string(f) + " faults, " + std::to_string(l) +
            " vectors; driver has " + std::to_string(fault_count) + ", " +
            std::to_string(seq_length) + ")");
      out.trace_cycles +=
          static_cast<std::uint64_t>(rec.get_int("trace_cycles", 0));
      w.inited = true;
      assign(w);
      return;
    }
    if (job == "heartbeat") {
      // Progress piggybacked between shard responses: cumulative fault-sim
      // counters for this worker process, never a shard result.
      w.hb_kernel_cycles =
          static_cast<std::uint64_t>(rec.get_int("kernel_cycles", 0));
      w.hb_fault_cycles =
          static_cast<std::uint64_t>(rec.get_int("fault_cycles", 0));
      w.hb_last_s = elapsed_s();
      write_status(false);
      return;
    }
    if (job != "shard" || w.shard < 0) {
      handle_death(w, "unexpected worker response '" + job + "'");
      return;
    }
    core::ShardResult s;
    try {
      s = core::parse_shard_fields(rec);
    } catch (const std::exception& e) {
      handle_death(w, e.what());
      return;
    }
    const auto k = static_cast<std::uint32_t>(w.shard);
    if (s.shard != k || s.begin != plan[k].begin || s.end != plan[k].end) {
      handle_death(w, "worker answered shard " + std::to_string(s.shard) +
                          " while shard " + std::to_string(k) +
                          " was in flight");
      return;
    }
    core::merge_shard(out.result, s);
    out.kernel_cycles += s.kernel_cycles;
    out.fault_cycles += s.fault_cycles;
    if (writer.is_open()) writer.record_shard(s);
    done[k] = true;
    w.shard = -1;
    ++completed_this_run;
    ++shards_done;
    m.counter("campaign.shards_completed").add(1);
    write_status(false);
    if (options.halt_after != 0 && completed_this_run >= options.halt_after) {
      halted = true;
      return;
    }
    assign(w);
  };

  const auto outstanding = [&]() {
    std::size_t inflight = 0;
    for (const Worker& w : workers)
      if (w.pid > 0 && w.shard >= 0) ++inflight;
    // A live worker that has not answered init yet is about to be assigned.
    for (const Worker& w : workers)
      if (w.pid > 0 && !w.inited) ++inflight;
    return pending.size() + inflight;
  };

  try {
    workers.resize(std::min<std::size_t>(options.workers, pending.size()));
    for (Worker& w : workers) spawn_into(w);
    write_status(false);

    while (!halted && outstanding() > 0) {
      // Refill dead slots while unassigned work remains.
      for (Worker& w : workers)
        if (w.pid < 0 && !pending.empty()) spawn_into(w);

      std::vector<pollfd> pfds;
      std::vector<std::size_t> idx;
      for (std::size_t i = 0; i < workers.size(); ++i)
        if (workers[i].pid > 0 && workers[i].fd >= 0) {
          pfds.push_back({workers[i].fd, POLLIN, 0});
          idx.push_back(i);
        }
      if (pfds.empty()) continue;  // every slot just died; refill and retry
      const int rc = ::poll(pfds.data(), pfds.size(), -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        fatal_shutdown(std::string("campaign: poll: ") +
                       std::strerror(errno));
      }
      for (std::size_t j = 0; j < pfds.size() && !halted; ++j)
        if (pfds[j].revents != 0) handle_response(workers[idx[j]]);
    }
  } catch (...) {
    for (Worker& w : workers) kill_worker(w);
    throw;
  }

  if (halted) {
    // Test hook: abandon in-flight shards; their results are simply not
    // checkpointed, which is exactly what a mid-run kill looks like.
    for (Worker& w : workers) kill_worker(w);
    out.complete = false;
  } else {
    for (Worker& w : workers) retire_worker(w);
    if (writer.is_open())
      writer.record_done(out.result.detected, out.result.total());
  }
  write_status(out.complete);
  writer.close();
  return out;
}

}  // namespace wbist::serve
