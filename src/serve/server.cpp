#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/obs.h"
#include "core/service.h"
#include "serve/protocol.h"
#include "sim/sequence_io.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace wbist::serve {

namespace {

/// Retry hint attached to `overloaded` responses. Advisory: clients should
/// back off at least this long (with jitter) before resubmitting.
constexpr int kRetryAfterMs = 100;

/// Bound on the accept thread's best-effort turn-away write. Tiny frames
/// into a fresh socket buffer never block in practice; the bound only
/// protects the accept loop from a pathological peer.
constexpr int kTurnAwayWriteMs = 100;

[[noreturn]] void sys_error(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

fault::CollapseMode parse_collapse(const std::string& s) {
  if (s == "none") return fault::CollapseMode::kNone;
  if (s == "equivalence") return fault::CollapseMode::kEquivalence;
  if (s == "dominance") return fault::CollapseMode::kDominance;
  throw std::invalid_argument("unknown collapse mode '" + s + "'");
}

/// A request error that maps to the CLI's usage exit code (2) instead of
/// the runtime one (1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ResponseBuilder {
  std::string json = "{";
  bool first = true;

  void sep() {
    if (!first) json += ',';
    first = false;
  }
  void field(std::string_view key, std::string_view str_value) {
    sep();
    util::append_json_string(json, key);
    json += ':';
    util::append_json_string(json, str_value);
  }
  void field_bool(std::string_view key, bool v) {
    sep();
    util::append_json_string(json, key);
    json += v ? ":true" : ":false";
  }
  void field_int(std::string_view key, long long v) {
    sep();
    util::append_json_string(json, key);
    json += ':' + std::to_string(v);
  }
  /// `raw` must already be valid JSON (nested object, number, ...).
  void field_raw(std::string_view key, std::string_view raw) {
    sep();
    util::append_json_string(json, key);
    json += ':';
    json += raw;
  }
  std::string finish() {
    json += '}';
    return std::move(json);
  }
};

std::string error_response(int exit_code, std::string_view message) {
  ResponseBuilder rb;
  rb.field("schema", kSchema);
  rb.field_bool("ok", false);
  rb.field_int("exit", exit_code);
  rb.field("error", message);
  return rb.finish();
}

/// The backpressure answer: exit 3 (transient), machine-readable error
/// vocabulary word, a retry hint, and the queue state the request bounced
/// off (`wbist submit` folds these into its one-line overloaded report).
std::string overloaded_response(std::size_t queue_depth,
                                std::size_t queue_capacity) {
  ResponseBuilder rb;
  rb.field("schema", kSchema);
  rb.field_bool("ok", false);
  rb.field_int("exit", 3);
  rb.field("error", "overloaded");
  rb.field_int("retry_after_ms", kRetryAfterMs);
  rb.field_int("queue_depth", static_cast<long long>(queue_depth));
  rb.field_int("queue_capacity", static_cast<long long>(queue_capacity));
  return rb.finish();
}

std::string deadline_response() {
  ResponseBuilder rb;
  rb.field("schema", kSchema);
  rb.field_bool("ok", false);
  rb.field_int("exit", 3);
  rb.field("error", "deadline_exceeded");
  return rb.finish();
}

/// Copy-truncate into a flight entry's inline char array.
void copy_word(char* dst, std::size_t cap, std::string_view s) {
  const std::size_t n = s.size() < cap - 1 ? s.size() : cap - 1;
  std::memcpy(dst, s.data(), n);
  dst[n] = '\0';
}

/// Classify a finished response for the flight recorder: "ok" for
/// successes, the wire error word otherwise.
std::string response_outcome(const std::string& response) {
  try {
    const auto v = util::json_parse(response);
    if (v.get_bool("ok", false)) return "ok";
    const std::string err = v.get_string("error");
    return err.empty() ? "error" : err;
  } catch (const std::exception&) {
    return "error";
  }
}

std::uint64_t us_since(std::chrono::steady_clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

void append_stat_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

/// Minimal unsigned formatting for the async-signal-safe flight dump.
std::size_t fmt_u64(char* buf, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t fmt_i64(char* buf, long long v) {
  if (v < 0) {
    buf[0] = '-';
    return 1 + fmt_u64(buf + 1, static_cast<std::uint64_t>(-(v + 1)) + 1);
  }
  return fmt_u64(buf, static_cast<std::uint64_t>(v));
}

}  // namespace

Server::Connection::~Connection() { ::close(fd); }

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_bytes),
      flight_(config_.flight_entries) {
  if (config_.unix_path.empty() == (config_.tcp_port < 0))
    throw std::invalid_argument(
        "serve: configure exactly one of unix_path and tcp_port");
  if (config_.handler_threads == 0) config_.handler_threads = 1;
  if (config_.worker_threads == 0)
    config_.worker_threads = config_.handler_threads;
  if (config_.queue_depth == 0) config_.queue_depth = 1;
  if (config_.max_pending_conns == 0) config_.max_pending_conns = 1;
}

Server::~Server() {
  request_stop();
  wait();
  if (wake_pipe_[0] != -1) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] != -1) ::close(wake_pipe_[1]);
}

void Server::start() {
  if (started_) throw std::logic_error("serve: already started");
  started_at_ = std::chrono::steady_clock::now();
  if (::pipe(wake_pipe_) != 0) sys_error("pipe");

  if (!config_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_error("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof addr.sun_path)
      throw std::runtime_error("serve: unix socket path too long: " +
                               config_.unix_path);
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(config_.unix_path.c_str());  // drop a stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      sys_error("bind " + config_.unix_path);
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_error("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      sys_error("bind 127.0.0.1:" + std::to_string(config_.tcp_port));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
      sys_error("getsockname");
    resolved_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 64) != 0) sys_error("listen");

  started_ = true;
  accept_thread_ = std::thread([this] { accept_main(); });
  readers_.reserve(config_.handler_threads);
  for (unsigned k = 0; k < config_.handler_threads; ++k)
    readers_.emplace_back([this] { reader_main(); });
  workers_.reserve(config_.worker_threads);
  for (unsigned k = 0; k < config_.worker_threads; ++k)
    workers_.emplace_back([this] { worker_main(); });
}

void Server::request_stop() {
  // Async-signal-safe: one atomic store plus one write(2).
  stop_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] != -1) {
    const char b = 's';
    [[maybe_unused]] const ssize_t w = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : readers_)
    if (t.joinable()) t.join();
  readers_.clear();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

void Server::accept_main() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        stop_requested_.load(std::memory_order_acquire))
      break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    util::metrics().counter("serve.connections").add(1);
    bool admitted = false;
    std::size_t pending_now = 0;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      pending_now = pending_.size();
      if (pending_now < config_.max_pending_conns) {
        pending_.push_back(std::make_shared<Connection>(fd));
        admitted = true;
      }
    }
    if (admitted) {
      conn_cv_.notify_one();
      continue;
    }
    // Shed the connection instead of holding its fd: a best-effort framed
    // turn-away, then close. A flood beyond the cap costs one small write
    // per connection, never an fd.
    util::metrics().counter("serve.conns_rejected").add(1);
    try {
      write_frame(fd, overloaded_response(pending_now, config_.max_pending_conns),
                  kTurnAwayWriteMs);
    } catch (const std::exception&) {
      // The peer is gone or not draining; nothing owed to it.
    }
    ::close(fd);
  }
  orderly_stop();
}

void Server::orderly_stop() {
  stopping_.store(true, std::memory_order_release);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    // Connections accepted but never picked up simply drop (their
    // destructor closes the fd); in-flight ones are half-closed so their
    // reader's blocking poll/read returns.
    pending_.clear();
    for (Connection* c : active_) ::shutdown(c->fd, SHUT_RDWR);
  }
  {
    // Queued jobs are dropped: their connections are being torn down, so
    // there is no one left to answer.
    std::lock_guard<std::mutex> lk(job_mu_);
    jobs_.clear();
  }
  conn_cv_.notify_all();
  job_cv_.notify_all();
}

void Server::reader_main() {
  while (true) {
    ConnPtr conn;
    {
      std::unique_lock<std::mutex> lk(conn_mu_);
      conn_cv_.wait(lk, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping and drained
      conn = std::move(pending_.front());
      pending_.pop_front();
      active_.insert(conn.get());
    }
    serve_connection(conn);
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      active_.erase(conn.get());
    }
    // The fd closes when the last holder (possibly a worker still writing
    // a response) releases the connection.
  }
}

void Server::serve_connection(const ConnPtr& conn) {
  std::string payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    ReadStatus status;
    try {
      status = read_frame(
          conn->fd, payload,
          ReadDeadlines{config_.idle_timeout_ms, config_.stall_timeout_ms});
    } catch (const std::exception&) {
      // Torn frame, oversize length, reset: nothing sane to answer.
      util::metrics().counter("serve.read_errors").add(1);
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->dead = true;
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
    if (status == ReadStatus::kEof) {
      // Clean close. The peer may have pipelined requests and half-closed
      // its sending side; workers keep writing the responses it is owed.
      return;
    }
    if (status != ReadStatus::kFrame) {
      // Slow-loris eviction: the peer either went idle past the keep-alive
      // bound or stalled mid-frame. Close it (with a logged reason) so the
      // reader thread frees up instead of being pinned forever.
      util::metrics().counter("serve.slow_clients_evicted").add(1);
      std::fprintf(stderr, "wbist serve: evicting slow client fd=%d (%s)\n",
                   conn->fd,
                   status == ReadStatus::kIdleTimeout
                       ? "idle between frames"
                       : "stalled mid-frame");
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->dead = true;
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
    dispatch_request(conn, conn->next_seq++, std::move(payload));
    payload = std::string();
  }
}

void Server::dispatch_request(const ConnPtr& conn, std::uint64_t seq,
                              std::string payload) {
  util::metrics().counter("serve.requests").add(1);
  util::JsonValue req;
  std::string job;
  long long priority = 0;
  long long deadline_ms = 0;
  try {
    req = util::json_parse(payload);
    job = req.get_string("job");
    priority = std::clamp<long long>(req.get_int("priority", 0), -1000000,
                                     1000000);
    deadline_ms = req.get_int("deadline_ms", 0);
  } catch (const std::exception& e) {
    util::metrics().counter("serve.errors").add(1);
    complete(conn, seq, error_response(2, e.what()));
    return;
  }

  // Control-plane requests (and the missing-job error) answer inline on
  // the reader: they do no simulation work, and bypassing the queue keeps
  // liveness probes, stats scrapes and shutdown responsive when the queue
  // is saturated.
  if (job.empty() || job == "ping" || job == "shutdown" || job == "metrics" ||
      job == "stats" || job == "flight") {
    const auto start = std::chrono::steady_clock::now();
    bool shutdown = false;
    std::string response = handle_request(req, job, shutdown, {}, 0);
    record_flight(conn, job.empty() ? "?" : job, priority, 0, us_since(start),
                  response);
    complete(conn, seq, std::move(response));
    if (shutdown) request_stop();
    return;
  }

  Job j;
  j.conn = conn;
  j.seq = seq;
  j.job_name = job;
  j.priority = priority;
  j.request = std::move(req);
  if (deadline_ms <= 0) deadline_ms = config_.request_timeout_ms;
  if (deadline_ms > 0) j.deadline = core::Deadline::after_ms(deadline_ms);
  j.enqueued = std::chrono::steady_clock::now();

  bool admitted = false;
  std::size_t depth_now = 0;
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    depth_now = jobs_.size();
    if (!stopping_.load(std::memory_order_acquire) &&
        jobs_.size() < config_.queue_depth) {
      jobs_.emplace(JobKey{-priority, job_counter_++}, std::move(j));
      util::metrics()
          .histogram("serve.queue_depth")
          .record(static_cast<std::uint64_t>(jobs_.size()));
      admitted = true;
    }
  }
  if (admitted) {
    job_cv_.notify_one();
    return;
  }
  // Backpressure: answer instead of queueing. The client sees a structured
  // transient error with a retry hint rather than unbounded latency.
  util::metrics().counter("serve.jobs_rejected").add(1);
  std::string response = overloaded_response(depth_now, config_.queue_depth);
  record_flight(conn, job, priority, 0, 0, response);
  complete(conn, seq, std::move(response));
}

void Server::worker_main() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(job_mu_);
      job_cv_.wait(lk, [this] {
        return !jobs_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      auto it = jobs_.begin();
      job = std::move(it->second);
      jobs_.erase(it);
    }
    const auto wait_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - job.enqueued)
                             .count();
    const auto queue_wait_us =
        static_cast<std::uint64_t>(std::max<long long>(wait_us, 0));
    util::metrics().histogram("serve.queue_wait_us").record(queue_wait_us);
    if (config_.test_worker_gate) config_.test_worker_gate();
    if (job.deadline.expired()) {
      // The job waited out its whole budget in the queue: answer without
      // running the simulation at all.
      util::metrics().counter("serve.deadline_expired").add(1);
      std::string response = deadline_response();
      record_flight(job.conn, job.job_name, job.priority, queue_wait_us, 0,
                    response);
      complete(job.conn, job.seq, std::move(response));
      continue;
    }
    const auto run_start = std::chrono::steady_clock::now();
    bool shutdown = false;
    std::string response = handle_request(job.request, job.job_name, shutdown,
                                          job.deadline, queue_wait_us);
    const std::uint64_t run_us = us_since(run_start);
    util::metrics().histogram("serve.run_us." + job.job_name).record(run_us);
    record_flight(job.conn, job.job_name, job.priority, queue_wait_us, run_us,
                  response);
    complete(job.conn, job.seq, std::move(response));
    if (shutdown) request_stop();
  }
}

void Server::complete(const ConnPtr& conn, std::uint64_t seq,
                      std::string response) {
  std::lock_guard<std::mutex> lk(conn->mu);
  conn->done.emplace(seq, std::move(response));
  // Flush the in-order prefix. Out-of-order completions park in `done`
  // until every earlier response has been written, so one connection's
  // responses always arrive in request order no matter how the workers
  // interleave.
  while (!conn->done.empty() &&
         conn->done.begin()->first == conn->next_write) {
    if (!conn->dead) {
      try {
        write_frame(conn->fd, conn->done.begin()->second,
                    config_.stall_timeout_ms);
      } catch (const FrameTimeout&) {
        util::metrics().counter("serve.slow_clients_evicted").add(1);
        std::fprintf(stderr,
                     "wbist serve: evicting slow client fd=%d (not draining "
                     "responses)\n",
                     conn->fd);
        conn->dead = true;
        ::shutdown(conn->fd, SHUT_RDWR);
      } catch (const std::exception&) {
        util::metrics().counter("serve.write_errors").add(1);
        conn->dead = true;
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
    conn->done.erase(conn->done.begin());
    ++conn->next_write;
  }
}

std::string Server::handle_request(const util::JsonValue& req,
                                   const std::string& job, bool& shutdown,
                                   const core::Deadline& deadline,
                                   std::uint64_t queue_wait_us) {
  try {
    if (job.empty()) throw UsageError("request is missing \"job\"");
    util::TraceSpan span("serve.request", util::TraceArg::copy("job", job));
    util::metrics().counter("serve.jobs." + job).add(1);

    ResponseBuilder rb;
    rb.field("schema", kSchema);

    if (job == "ping") {
      rb.field_bool("ok", true);
      rb.field_int("exit", 0);
      rb.field("output", "pong\n");
      return rb.finish();
    }
    if (job == "shutdown") {
      shutdown = true;
      rb.field_bool("ok", true);
      rb.field_int("exit", 0);
      rb.field("output", "shutting down\n");
      return rb.finish();
    }
    if (job == "metrics") {
      rb.field_bool("ok", true);
      rb.field_int("exit", 0);
      // The registry dump is itself a JSON document; embed it as one.
      rb.field_raw("metrics", util::metrics().to_json());
      return rb.finish();
    }
    if (job == "stats") {
      rb.field_bool("ok", true);
      rb.field_int("exit", 0);
      rb.field_raw("stats", stats_json());
      return rb.finish();
    }
    if (job == "flight") {
      rb.field_bool("ok", true);
      rb.field_int("exit", 0);
      rb.field_raw("flight", flight_json());
      return rb.finish();
    }

    if (job != "info" && job != "flow" && job != "tgen" && job != "fault-sim")
      throw UsageError("unknown job '" + job + "'");

    // Opt-in request observation (`wbist.obs/1`): a per-request recorder
    // the service layer writes stage spans and counter deltas into. It is
    // never read back by any computation — the `output` field is
    // bit-identical with observation on or off (gated by obs-smoke in CI).
    const bool observe = req.get_bool("observe", false);
    core::JobObservation obs;
    core::JobObservation* op = observe ? &obs : nullptr;
    if (observe) {
      obs.set_note("job", job);
      obs.set_counter("queue_wait_us", queue_wait_us);
    }

    core::CircuitSpec spec;
    spec.registry_name = req.get_string("circuit");
    spec.bench_text = req.get_string("bench");
    spec.display_name = req.get_string("name");
    if (spec.registry_name.empty() && spec.bench_text.empty())
      throw UsageError("request needs \"circuit\" or \"bench\"");
    if (!spec.registry_name.empty() && !spec.bench_text.empty())
      throw UsageError("request has both \"circuit\" and \"bench\"");

    core::CompileOptions copts;
    if (const std::string c = req.get_string("collapse"); !c.empty()) {
      try {
        copts.collapse = parse_collapse(c);
      } catch (const std::exception& e) {
        throw UsageError(e.what());
      }
    }

    deadline.check("compile");
    bool cache_hit = false;
    const auto compile_start = std::chrono::steady_clock::now();
    const auto cc = cache_.get_or_compile(spec, copts, &cache_hit);
    if (observe) {
      obs.add_span("compile", compile_start, std::chrono::steady_clock::now());
      obs.set_counter("cache_hit", cache_hit ? 1 : 0);
      obs.set_note("circuit", cc->name());
      obs.set_note("cache_key", cc->key());
    }

    std::string output;
    if (job == "info") {
      deadline.check("info");
      output = core::info_report(*cc);
    } else if (job == "flow") {
      output = core::run_flow_job(*cc, {}, deadline, op).output;
    } else if (job == "tgen") {
      const auto r = core::run_tgen_job(*cc, {}, {}, deadline, op);
      output = r.summary + "\n";
      rb.field("sequence", r.sequence_text);
      rb.field_int("detected", static_cast<long long>(r.detected));
      rb.field_int("total", static_cast<long long>(r.total));
    } else {  // fault-sim
      const std::string seq_text = req.get_string("sequence");
      if (seq_text.empty()) throw UsageError("fault-sim needs \"sequence\"");
      const auto seq = sim::read_sequence(seq_text);
      const auto threads =
          static_cast<unsigned>(req.get_int("threads", 0));
      const auto r = core::run_fault_sim_job(*cc, seq, threads, deadline, op);
      output = r.output;
      rb.field_int("detected", static_cast<long long>(r.detected));
      rb.field_int("total", static_cast<long long>(r.total));
    }

    rb.field_bool("ok", true);
    rb.field_int("exit", 0);
    rb.field("output", output);
    rb.field_raw("cache", std::string("{\"hit\":") +
                              (cache_hit ? "true" : "false") +
                              ",\"key\":" + util::json_quote(cc->key()) + "}");
    if (observe) {
      obs.set_counter("run_us", us_since(obs.origin()));
      rb.field_raw("obs", obs.to_json());
    }
    return rb.finish();
  } catch (const core::DeadlineExceeded&) {
    // The budget ran out mid-job: no partial output ever leaves the
    // daemon — deadlines decide whether a job runs, never what it prints.
    util::metrics().counter("serve.deadline_expired").add(1);
    return deadline_response();
  } catch (const UsageError& e) {
    util::metrics().counter("serve.errors").add(1);
    return error_response(2, e.what());
  } catch (const std::exception& e) {
    util::metrics().counter("serve.errors").add(1);
    return error_response(1, e.what());
  }
}

void Server::record_flight(const ConnPtr& conn, std::string_view job,
                           long long priority, std::uint64_t queue_wait_us,
                           std::uint64_t run_us, const std::string& response) {
  FlightEntry e;
  e.ts_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
  e.peer_fd = conn->fd;
  e.priority = priority;
  e.queue_wait_us = queue_wait_us;
  e.run_us = run_us;
  copy_word(e.job, sizeof e.job, job);
  copy_word(e.outcome, sizeof e.outcome, response_outcome(response));
  flight_.push(e);
}

std::string Server::stats_json() {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    depth = jobs_.size();
  }
  const auto cache_stats = cache_.stats();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();

  std::string out = "{\"schema\":\"wbist.stats/1\",\"uptime_s\":";
  append_stat_double(out, uptime);
  out += ",\"queue\":{\"depth\":" + std::to_string(depth) +
         ",\"capacity\":" + std::to_string(config_.queue_depth) +
         ",\"workers\":" + std::to_string(config_.worker_threads) +
         ",\"readers\":" + std::to_string(config_.handler_threads) + "}";

  out += ",\"cache\":{\"hits\":" + std::to_string(cache_stats.hits) +
         ",\"misses\":" + std::to_string(cache_stats.misses) +
         ",\"evictions\":" + std::to_string(cache_stats.evictions) +
         ",\"compiles\":" + std::to_string(cache_stats.compiles) +
         ",\"entries\":" + std::to_string(cache_stats.entries) +
         ",\"bytes\":" + std::to_string(cache_stats.bytes) + "}";

  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : util::metrics().counter_values()) {
    if (!first) out += ",";
    first = false;
    util::append_json_string(out, name);
    out += ":" + std::to_string(value);
  }
  out += "}";

  out += ",\"histograms\":{";
  first = true;
  for (const auto& [name, h] : util::metrics().histogram_entries()) {
    if (!first) out += ",";
    first = false;
    util::append_json_string(out, name);
    out += ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) +
           ",\"max\":" + std::to_string(h->max()) + ",\"p50\":";
    append_stat_double(out, h->quantile(0.50));
    out += ",\"p90\":";
    append_stat_double(out, h->quantile(0.90));
    out += ",\"p99\":";
    append_stat_double(out, h->quantile(0.99));
    out += ",\"buckets\":{";
    const auto buckets = h->buckets();
    bool bfirst = true;
    for (std::size_t k = 0; k < buckets.size(); ++k) {
      if (buckets[k] == 0) continue;
      if (!bfirst) out += ",";
      bfirst = false;
      out += "\"" + std::to_string(k) + "\":" + std::to_string(buckets[k]);
    }
    out += "}}";
  }
  out += "}";

  out += ",\"flight\":{\"recorded\":" + std::to_string(flight_.pushed()) +
         ",\"retained\":" +
         std::to_string(std::min<std::uint64_t>(flight_.pushed(),
                                                flight_.capacity())) +
         ",\"capacity\":" + std::to_string(flight_.capacity()) + "}}";
  return out;
}

std::string Server::flight_json() {
  const auto entries = flight_.snapshot();
  std::string out =
      "{\"schema\":\"wbist.flight/1\",\"dropped\":" +
      std::to_string(flight_.dropped()) + ",\"entries\":[";
  bool first = true;
  for (const auto& e : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"ts_ms\":" + std::to_string(e.ts_ms) +
           ",\"peer_fd\":" + std::to_string(e.peer_fd) + ",\"job\":";
    util::append_json_string(out, e.job);
    out += ",\"priority\":" + std::to_string(e.priority) +
           ",\"queue_wait_us\":" + std::to_string(e.queue_wait_us) +
           ",\"run_us\":" + std::to_string(e.run_us) + ",\"outcome\":";
    util::append_json_string(out, e.outcome);
    out += "}";
  }
  out += "]}";
  return out;
}

void Server::dump_flight(int fd) const {
  // Fatal-signal path: fixed-size stack storage, manual formatting, raw
  // write(2) only. A record being overwritten concurrently may read torn
  // (garbled text, never UB) — acceptable for a crash dump.
  constexpr std::size_t kMaxDump = 256;
  FlightEntry entries[kMaxDump];
  const std::size_t n = flight_.crash_copy_into(entries, kMaxDump);

  const char header[] = "wbist serve: flight recorder (oldest first)\n";
  [[maybe_unused]] ssize_t w = ::write(fd, header, sizeof header - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const FlightEntry& e = entries[i];
    char line[256];
    std::size_t p = 0;
    const auto put = [&](const char* s) {
      while (*s != '\0' && p < sizeof line - 1) line[p++] = *s++;
    };
    const auto put_bounded = [&](const char* s, std::size_t cap) {
      for (std::size_t k = 0; k < cap && s[k] != '\0' && p < sizeof line - 1;
           ++k)
        line[p++] = s[k];
    };
    char num[24];
    put("  +");
    num[fmt_u64(num, e.ts_ms)] = '\0';
    put(num);
    put("ms fd=");
    num[fmt_i64(num, e.peer_fd)] = '\0';
    put(num);
    put(" job=");
    put_bounded(e.job, sizeof e.job);
    put(" prio=");
    num[fmt_i64(num, e.priority)] = '\0';
    put(num);
    put(" wait_us=");
    num[fmt_u64(num, e.queue_wait_us)] = '\0';
    put(num);
    put(" run_us=");
    num[fmt_u64(num, e.run_us)] = '\0';
    put(num);
    put(" outcome=");
    put_bounded(e.outcome, sizeof e.outcome);
    put("\n");
    w = ::write(fd, line, p);
  }
}

}  // namespace wbist::serve
