#include "serve/server.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/service.h"
#include "serve/protocol.h"
#include "sim/sequence_io.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace wbist::serve {

namespace {

[[noreturn]] void sys_error(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

fault::CollapseMode parse_collapse(const std::string& s) {
  if (s == "none") return fault::CollapseMode::kNone;
  if (s == "equivalence") return fault::CollapseMode::kEquivalence;
  if (s == "dominance") return fault::CollapseMode::kDominance;
  throw std::invalid_argument("unknown collapse mode '" + s + "'");
}

/// A request error that maps to the CLI's usage exit code (2) instead of
/// the runtime one (1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ResponseBuilder {
  std::string json = "{";
  bool first = true;

  void sep() {
    if (!first) json += ',';
    first = false;
  }
  void field(std::string_view key, std::string_view str_value) {
    sep();
    util::append_json_string(json, key);
    json += ':';
    util::append_json_string(json, str_value);
  }
  void field_bool(std::string_view key, bool v) {
    sep();
    util::append_json_string(json, key);
    json += v ? ":true" : ":false";
  }
  void field_int(std::string_view key, long long v) {
    sep();
    util::append_json_string(json, key);
    json += ':' + std::to_string(v);
  }
  /// `raw` must already be valid JSON (nested object, number, ...).
  void field_raw(std::string_view key, std::string_view raw) {
    sep();
    util::append_json_string(json, key);
    json += ':';
    json += raw;
  }
  std::string finish() {
    json += '}';
    return std::move(json);
  }
};

std::string error_response(int exit_code, std::string_view message) {
  ResponseBuilder rb;
  rb.field("schema", kSchema);
  rb.field_bool("ok", false);
  rb.field_int("exit", exit_code);
  rb.field("error", message);
  return rb.finish();
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache_bytes) {
  if (config_.unix_path.empty() == (config_.tcp_port < 0))
    throw std::invalid_argument(
        "serve: configure exactly one of unix_path and tcp_port");
  if (config_.handler_threads == 0) config_.handler_threads = 1;
}

Server::~Server() {
  request_stop();
  wait();
  if (wake_pipe_[0] != -1) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] != -1) ::close(wake_pipe_[1]);
}

void Server::start() {
  if (started_) throw std::logic_error("serve: already started");
  if (::pipe(wake_pipe_) != 0) sys_error("pipe");

  if (!config_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_error("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof addr.sun_path)
      throw std::runtime_error("serve: unix socket path too long: " +
                               config_.unix_path);
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(config_.unix_path.c_str());  // drop a stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      sys_error("bind " + config_.unix_path);
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_error("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      sys_error("bind 127.0.0.1:" + std::to_string(config_.tcp_port));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
      sys_error("getsockname");
    resolved_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 64) != 0) sys_error("listen");

  started_ = true;
  accept_thread_ = std::thread([this] { accept_main(); });
  handlers_.reserve(config_.handler_threads);
  for (unsigned k = 0; k < config_.handler_threads; ++k)
    handlers_.emplace_back([this] { handler_main(); });
}

void Server::request_stop() {
  // Async-signal-safe: one atomic store plus one write(2).
  stop_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] != -1) {
    const char b = 's';
    [[maybe_unused]] const ssize_t w = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : handlers_)
    if (t.joinable()) t.join();
  handlers_.clear();
}

void Server::accept_main() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        stop_requested_.load(std::memory_order_acquire))
      break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    util::metrics().counter("serve.connections").add(1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
  orderly_stop();
}

void Server::orderly_stop() {
  stopping_.store(true, std::memory_order_release);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Drop connections that were accepted but never picked up, and
    // half-close in-flight ones so their handler's blocking read returns.
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
}

void Server::handler_main() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
      active_fds_.insert(fd);
    }
    serve_connection(fd);
    {
      std::lock_guard<std::mutex> lk(mu_);
      active_fds_.erase(fd);
    }
    ::close(fd);
  }
}

void Server::serve_connection(int fd) {
  std::string payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    try {
      if (!read_frame(fd, payload)) return;  // peer closed
    } catch (const std::exception&) {
      return;  // torn frame / reset: nothing sane to answer
    }
    bool shutdown = false;
    std::string response = handle_request(payload, shutdown);
    try {
      write_frame(fd, response);
    } catch (const std::exception&) {
      util::metrics().counter("serve.write_errors").add(1);
      return;
    }
    if (shutdown) {
      request_stop();
      return;
    }
  }
}

std::string Server::handle_request(const std::string& payload,
                                   bool& shutdown) {
  util::metrics().counter("serve.requests").add(1);
  std::string job;
  try {
    const util::JsonValue req = [&] {
      try {
        return util::json_parse(payload);
      } catch (const std::exception& e) {
        throw UsageError(e.what());
      }
    }();
    job = req.get_string("job");
    if (job.empty()) throw UsageError("request is missing \"job\"");
    util::TraceSpan span("serve.request", util::TraceArg::copy("job", job));
    util::metrics().counter("serve.jobs." + job).add(1);

    ResponseBuilder rb;
    rb.field("schema", kSchema);

    if (job == "ping") {
      rb.field_bool("ok", true);
      rb.field_int("exit", 0);
      rb.field("output", "pong\n");
      return rb.finish();
    }
    if (job == "shutdown") {
      shutdown = true;
      rb.field_bool("ok", true);
      rb.field_int("exit", 0);
      rb.field("output", "shutting down\n");
      return rb.finish();
    }
    if (job == "metrics") {
      rb.field_bool("ok", true);
      rb.field_int("exit", 0);
      // The registry dump is itself a JSON document; embed it as one.
      rb.field_raw("metrics", util::metrics().to_json());
      return rb.finish();
    }

    if (job != "info" && job != "flow" && job != "tgen" && job != "fault-sim")
      throw UsageError("unknown job '" + job + "'");

    core::CircuitSpec spec;
    spec.registry_name = req.get_string("circuit");
    spec.bench_text = req.get_string("bench");
    spec.display_name = req.get_string("name");
    if (spec.registry_name.empty() && spec.bench_text.empty())
      throw UsageError("request needs \"circuit\" or \"bench\"");
    if (!spec.registry_name.empty() && !spec.bench_text.empty())
      throw UsageError("request has both \"circuit\" and \"bench\"");

    core::CompileOptions copts;
    if (const std::string c = req.get_string("collapse"); !c.empty()) {
      try {
        copts.collapse = parse_collapse(c);
      } catch (const std::exception& e) {
        throw UsageError(e.what());
      }
    }

    bool cache_hit = false;
    const auto cc = cache_.get_or_compile(spec, copts, &cache_hit);

    std::string output;
    if (job == "info") {
      output = core::info_report(*cc);
    } else if (job == "flow") {
      output = core::run_flow_job(*cc).output;
    } else if (job == "tgen") {
      const auto r = core::run_tgen_job(*cc);
      output = r.summary + "\n";
      rb.field("sequence", r.sequence_text);
      rb.field_int("detected", static_cast<long long>(r.detected));
      rb.field_int("total", static_cast<long long>(r.total));
    } else {  // fault-sim
      const std::string seq_text = req.get_string("sequence");
      if (seq_text.empty()) throw UsageError("fault-sim needs \"sequence\"");
      const auto seq = sim::read_sequence(seq_text);
      const auto threads =
          static_cast<unsigned>(req.get_int("threads", 0));
      const auto r = core::run_fault_sim_job(*cc, seq, threads);
      output = r.output;
      rb.field_int("detected", static_cast<long long>(r.detected));
      rb.field_int("total", static_cast<long long>(r.total));
    }

    rb.field_bool("ok", true);
    rb.field_int("exit", 0);
    rb.field("output", output);
    rb.field_raw("cache", std::string("{\"hit\":") +
                              (cache_hit ? "true" : "false") +
                              ",\"key\":" + util::json_quote(cc->key()) + "}");
    return rb.finish();
  } catch (const UsageError& e) {
    util::metrics().counter("serve.errors").add(1);
    return error_response(2, e.what());
  } catch (const std::exception& e) {
    util::metrics().counter("serve.errors").add(1);
    return error_response(1, e.what());
  }
}

}  // namespace wbist::serve
