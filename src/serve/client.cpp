#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.h"

namespace wbist::serve {

Client::Client(const Endpoint& endpoint) {
  if (endpoint.unix_path.empty() == (endpoint.tcp_port < 0))
    throw std::invalid_argument(
        "serve: endpoint needs exactly one of unix_path and tcp_port");
  if (!endpoint.unix_path.empty()) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
      throw std::runtime_error(std::string("serve: socket: ") +
                               std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof addr.sun_path) {
      ::close(fd_);
      throw std::runtime_error("serve: unix socket path too long: " +
                               endpoint.unix_path);
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const int err = errno;
      ::close(fd_);
      throw std::runtime_error("serve: cannot connect to " +
                               endpoint.unix_path + ": " +
                               std::strerror(err));
    }
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
      throw std::runtime_error(std::string("serve: socket: ") +
                               std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.tcp_port));
    if (::inet_pton(AF_INET, endpoint.tcp_host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd_);
      throw std::runtime_error("serve: bad host '" + endpoint.tcp_host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const int err = errno;
      ::close(fd_);
      throw std::runtime_error("serve: cannot connect to " +
                               endpoint.tcp_host + ":" +
                               std::to_string(endpoint.tcp_port) + ": " +
                               std::strerror(err));
    }
  }
}

Client::~Client() {
  if (fd_ != -1) ::close(fd_);
}

std::string Client::round_trip(std::string_view request) {
  write_frame(fd_, request);
  std::string response;
  if (!read_frame(fd_, response))
    throw std::runtime_error("serve: daemon closed the connection");
  return response;
}

std::string submit(const Endpoint& endpoint, std::string_view request) {
  Client client(endpoint);
  return client.round_trip(request);
}

}  // namespace wbist::serve
