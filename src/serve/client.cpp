#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.h"

namespace wbist::serve {

namespace {

/// connect(2) with a deadline: flip to non-blocking, start the connect,
/// poll for writability, then read back SO_ERROR. The fd is returned in
/// blocking mode so the framing layer's poll-gated I/O behaves normally.
void connect_deadline(int fd, const sockaddr* addr, socklen_t len,
                      int timeout_ms, const std::string& where) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw ConnectError("serve: fcntl: " + std::string(std::strerror(errno)));
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN)
    throw ConnectError("serve: cannot connect to " + where + ": " +
                       std::strerror(errno));
  if (rc != 0) {
    pollfd p{fd, POLLOUT, 0};
    do {
      rc = ::poll(&p, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0)
      throw TimeoutError("serve: connect to " + where + " timed out after " +
                         std::to_string(timeout_ms) + "ms");
    if (rc < 0)
      throw ConnectError("serve: poll: " + std::string(std::strerror(errno)));
    int err = 0;
    socklen_t errlen = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) != 0)
      err = errno;
    if (err != 0)
      throw ConnectError("serve: cannot connect to " + where + ": " +
                         std::strerror(err));
  }
  if (::fcntl(fd, F_SETFL, flags) < 0)
    throw ConnectError("serve: fcntl: " + std::string(std::strerror(errno)));
}

}  // namespace

Client::Client(const Endpoint& endpoint, const ClientOptions& options)
    : options_(options) {
  if (endpoint.unix_path.empty() == (endpoint.tcp_port < 0))
    throw std::invalid_argument(
        "serve: endpoint needs exactly one of unix_path and tcp_port");
  try {
    if (!endpoint.unix_path.empty()) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0)
        throw ConnectError(std::string("serve: socket: ") +
                           std::strerror(errno));
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (endpoint.unix_path.size() >= sizeof addr.sun_path)
        throw ConnectError("serve: unix socket path too long: " +
                           endpoint.unix_path);
      std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                   sizeof addr.sun_path - 1);
      connect_deadline(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr,
                       options_.connect_timeout_ms, endpoint.unix_path);
    } else {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0)
        throw ConnectError(std::string("serve: socket: ") +
                           std::strerror(errno));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.tcp_port));
      if (::inet_pton(AF_INET, endpoint.tcp_host.c_str(), &addr.sin_addr) != 1)
        throw ConnectError("serve: bad host '" + endpoint.tcp_host + "'");
      connect_deadline(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr,
                       options_.connect_timeout_ms,
                       endpoint.tcp_host + ":" +
                           std::to_string(endpoint.tcp_port));
    }
  } catch (...) {
    if (fd_ != -1) ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Client::~Client() {
  if (fd_ != -1) ::close(fd_);
}

std::string Client::round_trip(std::string_view request) {
  try {
    write_frame(fd_, request, options_.io_timeout_ms);
  } catch (const FrameTimeout& e) {
    throw TimeoutError(e.what());
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("serve: connection lost while sending: ") +
                        e.what());
  }
  std::string response;
  ReadStatus status;
  try {
    status = read_frame(
        fd_, response,
        ReadDeadlines{options_.io_timeout_ms, options_.io_timeout_ms});
  } catch (const std::exception& e) {
    throw ProtocolError(e.what());
  }
  switch (status) {
    case ReadStatus::kFrame:
      return response;
    case ReadStatus::kEof:
      throw ProtocolError("serve: daemon closed the connection");
    default:
      throw TimeoutError("serve: no response within " +
                         std::to_string(options_.io_timeout_ms) + "ms");
  }
}

std::string submit(const Endpoint& endpoint, std::string_view request,
                   const ClientOptions& options) {
  Client client(endpoint, options);
  return client.round_trip(request);
}

}  // namespace wbist::serve
