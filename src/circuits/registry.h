// Registry of the benchmark circuits used in the paper's evaluation.
//
// "s27" is the real ISCAS-89 netlist; every other name maps to a synthetic
// analog generated with the published structural profile of the ISCAS-89
// circuit of the same name (see DESIGN.md, substitutions). All circuits are
// fully deterministic: a name always produces the same netlist.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuits/synth_gen.h"
#include "netlist/netlist.h"

namespace wbist::circuits {

struct CircuitInfo {
  std::string name;
  bool synthetic = true;  ///< false only for the embedded real s27
  SynthProfile profile;   ///< structural profile (also filled in for s27)
};

/// All circuits of the paper's Table 6, in the paper's order.
std::vector<CircuitInfo> known_circuits();

/// Info for one circuit; std::nullopt if the name is unknown.
std::optional<CircuitInfo> circuit_info(std::string_view name);

/// Build the circuit. Throws std::invalid_argument for unknown names.
netlist::Netlist circuit_by_name(std::string_view name);

}  // namespace wbist::circuits
