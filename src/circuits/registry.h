// Registry of the benchmark circuits used in the paper's evaluation.
//
// "s27" is the real ISCAS-89 netlist; every other name maps to a synthetic
// analog generated with the published structural profile of the ISCAS-89
// circuit of the same name (see DESIGN.md, substitutions). All circuits are
// fully deterministic: a name always produces the same netlist.
//
// Real benchmark override: when WBIST_BENCH_DIR is set and contains
// `<name>.bench` (fetched by tools/fetch_iscas89.py), circuit_by_name()
// loads that real netlist instead of generating the synthetic analog, and
// CircuitInfo::fetched reports the substitution. The env var is read per
// lookup, so a test can point different lookups at different directories.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuits/synth_gen.h"
#include "netlist/netlist.h"

namespace wbist::circuits {

struct CircuitInfo {
  std::string name;
  bool synthetic = true;  ///< false only for the embedded real s27
  bool fetched = false;   ///< a real `.bench` from WBIST_BENCH_DIR wins
  SynthProfile profile;   ///< structural profile (also filled in for s27)
};

/// All circuits of the paper's Table 6, in the paper's order.
std::vector<CircuitInfo> known_circuits();

/// Info for one circuit; std::nullopt if the name is unknown.
std::optional<CircuitInfo> circuit_info(std::string_view name);

/// Build the circuit. Throws std::invalid_argument for unknown names.
/// Prefers a fetched real `.bench` (WBIST_BENCH_DIR, see above) over the
/// synthetic generator.
netlist::Netlist circuit_by_name(std::string_view name);

/// The WBIST_BENCH_DIR path of a fetched real `.bench` for `name`, or ""
/// when the override is unset or the file does not exist.
std::string fetched_bench_path(std::string_view name);

}  // namespace wbist::circuits
