#include "circuits/synth_gen.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace wbist::circuits {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

GateType random_type(util::Rng& rng) {
  // XOR-rich mix: XOR/XNOR gates propagate fault effects unconditionally,
  // which keeps the observability of deep random logic comparable to real
  // designs (pure AND/OR random logic masks faults exponentially in depth).
  const std::uint64_t roll = rng.below(100);
  if (roll < 18) return GateType::kAnd;
  if (roll < 36) return GateType::kNand;
  if (roll < 54) return GateType::kOr;
  if (roll < 70) return GateType::kNor;
  if (roll < 78) return GateType::kNot;
  if (roll < 90) return GateType::kXor;
  return GateType::kXnor;
}

std::size_t random_arity(util::Rng& rng) {
  const std::uint64_t roll = rng.below(100);
  if (roll < 70) return 2;
  if (roll < 95) return 3;
  return 4;
}

/// Pick with a bias toward recently created signals (quadratic recency),
/// which stretches the circuit into deeper logic instead of a shallow fan.
NodeId pick_recent(const std::vector<NodeId>& pool, util::Rng& rng) {
  if (rng.below(5) == 0) return pool[rng.below(pool.size())];
  const double r = rng.next_double();
  const auto offset = static_cast<std::size_t>(r * r * static_cast<double>(pool.size()));
  return pool[pool.size() - 1 - std::min(offset, pool.size() - 1)];
}

std::vector<NodeId> pick_fanins(const std::vector<NodeId>& pool,
                                std::size_t arity, util::Rng& rng) {
  std::vector<NodeId> fanin;
  fanin.reserve(arity);
  for (std::size_t k = 0; k < arity; ++k) {
    NodeId pick = pick_recent(pool, rng);
    // One resample to avoid degenerate duplicated fanins; a residual
    // duplicate is legal, just uninteresting.
    if (std::find(fanin.begin(), fanin.end(), pick) != fanin.end())
      pick = pick_recent(pool, rng);
    fanin.push_back(pick);
  }
  return fanin;
}

}  // namespace

Netlist generate_circuit(const SynthProfile& profile) {
  if (profile.n_pi == 0 || profile.n_po == 0)
    throw std::invalid_argument("synth_gen: need at least one PI and one PO");
  // Budget: one gate per flip-flop for the forcing next-state function plus
  // at least one PI-cone gate and one free gate.
  if (profile.n_gates < profile.n_ff + 3)
    throw std::invalid_argument("synth_gen: gate budget too small");

  util::Rng rng(profile.seed ^ 0x5eedc1fc0debull);
  Netlist nl(profile.name);

  std::vector<NodeId> pi_only;   // signals whose cone touches only PIs
  std::vector<NodeId> all;       // every usable signal
  std::vector<std::size_t> usage;  // fanout counts by NodeId

  const auto track = [&usage](NodeId id) {
    if (usage.size() <= id) usage.resize(id + 1, 0);
  };

  for (std::size_t i = 0; i < profile.n_pi; ++i) {
    const NodeId id = nl.add_input("I" + std::to_string(i));
    track(id);
    pi_only.push_back(id);
    all.push_back(id);
  }
  std::vector<NodeId> ffs;
  for (std::size_t i = 0; i < profile.n_ff; ++i) {
    const NodeId id = nl.add_dff("F" + std::to_string(i));
    track(id);
    ffs.push_back(id);
    all.push_back(id);
  }

  std::size_t gate_serial = 0;
  const auto new_gate = [&](GateType type, std::vector<NodeId> fanin) {
    for (NodeId f : fanin) ++usage[f];
    const NodeId id =
        nl.add_gate(type, "G" + std::to_string(gate_serial++), std::move(fanin));
    track(id);
    all.push_back(id);
    return id;
  };

  // Shared synchronizing signal: I0 = 0 forces every AND-type flip-flop to
  // 0 and (through this inverter) every OR-type flip-flop to 1 in a single
  // cycle, so the all-X power-up state is flushed as soon as a random
  // sequence drives I0 low once. Without it, XOR-rich logic locks the state
  // in X almost permanently.
  const NodeId sync_low = all[0];  // I0
  const NodeId sync_high = new_gate(GateType::kNot, {sync_low});
  pi_only.push_back(sync_high);

  // Phase A: PI-only cones. These make every flip-flop forcible (see .h).
  const std::size_t budget = profile.n_gates - profile.n_ff - 1;
  const std::size_t phase_a =
      std::clamp<std::size_t>(std::max<std::size_t>(profile.n_ff / 2 + 1,
                                                    profile.n_gates / 8),
                              1, budget - 1);
  for (std::size_t g = 0; g < phase_a; ++g) {
    GateType type = random_type(rng);
    const std::size_t arity =
        type == GateType::kNot ? 1 : std::min(random_arity(rng), pi_only.size());
    new_gate(type, pick_fanins(pi_only, std::max<std::size_t>(arity, 1), rng));
    pi_only.push_back(all.back());
  }

  // Reserve gates for the PO collectors built at the end.
  const std::size_t collectors =
      std::min(profile.n_po, budget - phase_a > 1 ? budget - phase_a - 1 : 0);

  // Phase B: general logic over the whole pool (PIs, FFs, earlier gates).
  for (std::size_t g = 0; g < budget - phase_a - collectors; ++g) {
    const GateType type = random_type(rng);
    const std::size_t arity = type == GateType::kNot ? 1 : random_arity(rng);
    new_gate(type, pick_fanins(all, arity, rng));
  }

  // Flip-flop next-state functions: AND/OR of the synchronizing signal, one
  // random PI-only signal, and deep logic. I0 = 0 forces every state bit in
  // one cycle; afterwards the binary state persists.
  for (std::size_t i = 0; i < profile.n_ff; ++i) {
    const bool and_type = i % 2 == 0;
    std::vector<NodeId> fanin{and_type ? sync_low : sync_high,
                              pick_recent(all, rng)};
    if (rng.below(2) == 0) fanin.push_back(pi_only[rng.below(pi_only.size())]);
    const NodeId d =
        new_gate(and_type ? GateType::kAnd : GateType::kOr, std::move(fanin));
    nl.connect_dff(ffs[i], d);
    ++usage[d];
  }

  // Primary outputs. Each reserved collector is an XOR over unused sink
  // signals, spreading observability across the whole cone instead of
  // leaving most of the random logic dangling.
  std::vector<NodeId> sinks;
  for (NodeId id = 0; id < nl.node_count(); ++id)
    if (netlist::is_logic_gate(nl.node(id).type) && usage[id] == 0)
      sinks.push_back(id);

  std::size_t marked = 0;
  std::size_t next_sink = 0;
  for (std::size_t c = 0; c < collectors; ++c) {
    // Spread the remaining sinks evenly over the remaining collectors.
    const std::size_t remaining_cols = collectors - c;
    const std::size_t remaining_sinks =
        sinks.size() > next_sink ? sinks.size() - next_sink : 0;
    std::size_t take =
        std::max<std::size_t>(2, (remaining_sinks + remaining_cols - 1) /
                                     remaining_cols);
    std::vector<NodeId> fanin;
    for (; take > 0 && next_sink < sinks.size(); --take)
      fanin.push_back(sinks[next_sink++]);
    while (fanin.size() < 2) fanin.push_back(pick_recent(all, rng));
    const NodeId po = new_gate(GateType::kXor, std::move(fanin));
    nl.mark_output(po);
    ++marked;
  }
  // Leftover sinks (more than 4x collectors) become outputs directly while
  // the PO budget lasts.
  for (; next_sink < sinks.size() && marked < profile.n_po; ++next_sink) {
    nl.mark_output(sinks[next_sink]);
    ++marked;
  }
  std::size_t guard = 0;
  while (marked < profile.n_po && guard < 100 * profile.n_po) {
    ++guard;
    const NodeId pick = pick_recent(all, rng);
    if (!netlist::is_logic_gate(nl.node(pick).type) ||
        nl.node(pick).is_primary_output)
      continue;
    nl.mark_output(pick);
    ++marked;
  }
  // Degenerate fallback: tiny profiles may not have enough gates to mark.
  for (NodeId id = static_cast<NodeId>(nl.node_count());
       marked < profile.n_po && id-- > 0;) {
    if (!nl.node(id).is_primary_output &&
        netlist::is_logic_gate(nl.node(id).type)) {
      nl.mark_output(id);
      ++marked;
    }
  }

  nl.finalize();
  return nl;
}

}  // namespace wbist::circuits
