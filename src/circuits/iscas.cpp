#include "circuits/iscas.h"

#include "netlist/bench_io.h"

namespace wbist::circuits {

std::string_view s27_bench_text() {
  return R"(# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";
}

netlist::Netlist s27() { return netlist::read_bench(s27_bench_text(), "s27"); }

sim::TestSequence s27_paper_sequence() {
  // Table 1 of the paper; row u, columns i = 0..3.
  return sim::TestSequence::from_rows({
      "0111",
      "1001",
      "0111",
      "1001",
      "0100",
      "1011",
      "1001",
      "0000",
      "0000",
      "1011",
  });
}

sim::TestSequence s27_paper_weighted_sequence() {
  // Table 2 of the paper: inputs driven by (01)^r, (0)^r, (100)^r, (1)^r.
  return sim::TestSequence::from_rows({
      "0011",
      "1001",
      "0001",
      "1011",
      "0001",
      "1001",
      "0011",
      "1001",
      "0001",
      "1011",
      "0001",
      "1001",
  });
}

}  // namespace wbist::circuits
