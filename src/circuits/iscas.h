// Embedded ISCAS-89 material: the real s27 benchmark circuit and the
// deterministic test sequence the paper uses in its Section 2 example.
#pragma once

#include <string_view>

#include "netlist/netlist.h"
#include "sim/sequence.h"

namespace wbist::circuits {

/// `.bench` source of ISCAS-89 s27 (4 PIs, 1 PO, 3 DFFs, 10 gates;
/// 52 uncollapsed / 32 collapsed stuck-at faults).
std::string_view s27_bench_text();

/// The parsed, finalized s27 netlist.
netlist::Netlist s27();

/// The 10-vector deterministic test sequence of the paper's Table 1
/// (inputs ordered i = 0..3, i.e. G0 G1 G2 G3).
sim::TestSequence s27_paper_sequence();

/// The 12-vector weighted sequence of the paper's Table 2, produced by the
/// weight assignment (01, 0, 100, 1).
sim::TestSequence s27_paper_weighted_sequence();

}  // namespace wbist::circuits
