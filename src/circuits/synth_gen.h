// Seeded synthetic benchmark generator.
//
// Stands in for the ISCAS-89 netlists that are not available offline (see
// DESIGN.md, substitutions). Given a structural profile — the published
// PI/PO/FF/gate counts of an ISCAS-89 circuit — the generator produces a
// random synchronous circuit with three guarantees the experiments rely on:
//
//  1. *Initializability.* Every flip-flop's next-state function is an
//     AND/OR gate with one fanin from a PI-only combinational cone, so a
//     definite value can always be forced into the state regardless of the
//     unknown power-up state (ISCAS circuits have no reset line, and the
//     fault model starts from all-X).
//  2. *Observability.* Primary outputs are drawn first from sink signals
//     (no-fanout gates), so the bulk of the logic feeds some output.
//  3. *Determinism.* The same profile + seed always yields the same netlist.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace wbist::circuits {

struct SynthProfile {
  std::string name;
  std::size_t n_pi = 4;
  std::size_t n_po = 2;
  std::size_t n_ff = 3;
  std::size_t n_gates = 20;  ///< total logic gates, including FF input gates
  std::uint64_t seed = 1;
};

/// Generate a finalized circuit matching `profile`. Throws
/// std::invalid_argument for degenerate profiles (no PIs, no POs, or a gate
/// budget too small to connect the flip-flops).
netlist::Netlist generate_circuit(const SynthProfile& profile);

}  // namespace wbist::circuits
