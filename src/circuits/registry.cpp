#include "circuits/registry.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "circuits/iscas.h"
#include "netlist/bench_io.h"

namespace wbist::circuits {

namespace {

/// Published ISCAS-89 structural sizes (PIs, POs, DFFs, gates). The seed is
/// fixed per circuit so all experiments are reproducible.
const SynthProfile kProfiles[] = {
    {"s27", 4, 1, 3, 10, 27},
    {"s208", 10, 1, 8, 96, 208},
    {"s298", 3, 6, 14, 119, 298},
    {"s344", 9, 11, 15, 160, 344},
    {"s382", 3, 6, 21, 158, 382},
    {"s386", 7, 7, 6, 159, 386},
    {"s400", 3, 6, 21, 162, 400},
    {"s420", 18, 1, 16, 196, 420},
    {"s444", 3, 6, 21, 181, 444},
    {"s526", 3, 6, 21, 193, 526},
    {"s641", 35, 23, 19, 379, 641},
    {"s820", 18, 19, 5, 289, 820},
    {"s1196", 14, 14, 18, 529, 1196},
    {"s1423", 17, 5, 74, 657, 1423},
    {"s1488", 8, 19, 6, 653, 1488},
    {"s5378", 35, 49, 179, 2779, 5378},
    {"s9234", 36, 39, 211, 5597, 9234},
    {"s13207", 62, 152, 638, 7951, 13207},
    {"s15850", 77, 150, 534, 9772, 15850},
    {"s35932", 35, 320, 1728, 16065, 35932},
    {"s38417", 28, 106, 1636, 22179, 38417},
};

CircuitInfo info_for(const SynthProfile& p) {
  return {p.name, p.name != "s27", !fetched_bench_path(p.name).empty(), p};
}

}  // namespace

std::string fetched_bench_path(std::string_view name) {
  const char* dir = std::getenv("WBIST_BENCH_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  std::string path = std::string(dir) + "/" + std::string(name) + ".bench";
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return path;
  }
  return {};
}

std::vector<CircuitInfo> known_circuits() {
  std::vector<CircuitInfo> out;
  for (const SynthProfile& p : kProfiles) out.push_back(info_for(p));
  return out;
}

std::optional<CircuitInfo> circuit_info(std::string_view name) {
  for (const SynthProfile& p : kProfiles)
    if (p.name == name) return info_for(p);
  return std::nullopt;
}

netlist::Netlist circuit_by_name(std::string_view name) {
  const auto info = circuit_info(name);
  if (!info)
    throw std::invalid_argument("registry: unknown circuit '" +
                                std::string(name) + "'");
  if (info->fetched)
    return netlist::read_bench_file(fetched_bench_path(name));
  if (!info->synthetic) return s27();
  return generate_circuit(info->profile);
}

}  // namespace wbist::circuits
