#include "fault/fault_list.h"

#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace wbist::fault {

using netlist::GateType;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;

namespace {

/// Key for (node, pin, polarity) -> uncollapsed fault index lookup.
std::uint64_t fault_key(NodeId node, std::int16_t pin, bool sa1) {
  return (static_cast<std::uint64_t>(node) << 18) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(pin)) << 1) |
         static_cast<std::uint64_t>(sa1);
}

/// The fault site of the line feeding pin `pin` of node `g`: the driver stem
/// when the driver has a single fanout, otherwise the branch at the pin.
std::pair<NodeId, std::int16_t> pin_site(const Netlist& nl, NodeId g,
                                         std::size_t pin) {
  const NodeId driver = nl.node(g).fanin[pin];
  if (nl.node(driver).fanout.size() == 1) return {driver, kStemPin};
  return {g, static_cast<std::int16_t>(pin)};
}

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Merge, keeping the smaller root (deterministic representatives).
  void merge(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

std::vector<Fault> enumerate_uncollapsed(const Netlist& nl) {
  std::vector<Fault> faults;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    faults.push_back({id, kStemPin, false});
    faults.push_back({id, kStemPin, true});
  }
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::kInput) continue;
    for (std::size_t pin = 0; pin < n.fanin.size(); ++pin) {
      if (nl.node(n.fanin[pin]).fanout.size() > 1) {
        faults.push_back({id, static_cast<std::int16_t>(pin), false});
        faults.push_back({id, static_cast<std::int16_t>(pin), true});
      }
    }
  }
  return faults;
}

/// unsafe[n] — the combinational fanout cone of node n reaches some DFF D
/// input, i.e. a fault effect at n can enter the machine state. Computed
/// over the combinational evaluation order in reverse (consumers first).
std::vector<char> compute_state_unsafe(const Netlist& nl) {
  std::vector<char> unsafe(nl.node_count(), 0);
  const auto order = nl.eval_order();
  const auto mark = [&](NodeId id) {
    for (NodeId f : nl.node(id).fanout) {
      if (nl.node(f).type == GateType::kDff || unsafe[f]) {
        unsafe[id] = 1;
        return;
      }
    }
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it) mark(*it);
  // Sources (PIs, DFF outputs) are not in eval_order but can drive DFF D
  // pins directly or through marked gates.
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const GateType t = nl.node(id).type;
    if (t == GateType::kInput || t == GateType::kDff) mark(id);
  }
  return unsafe;
}

/// Gate-local dominance drop rule: the output polarity whose stem fault is
/// detected whenever an input fault of polarity `in_sa1` is, for gates where
/// the textbook implication applies. Returns false for other gate types.
bool dominance_rule(GateType type, bool& out_sa1, bool& in_sa1) {
  switch (type) {
    case GateType::kAnd:
      out_sa1 = true;
      in_sa1 = true;
      return true;
    case GateType::kNand:
      out_sa1 = false;
      in_sa1 = true;
      return true;
    case GateType::kOr:
      out_sa1 = false;
      in_sa1 = false;
      return true;
    case GateType::kNor:
      out_sa1 = true;
      in_sa1 = false;
      return true;
    default:
      return false;
  }
}

}  // namespace

FaultSet FaultSet::uncollapsed(const Netlist& nl) {
  return collapsed(nl, CollapseMode::kNone);
}

FaultSet FaultSet::collapsed(const Netlist& nl, CollapseMode mode) {
  if (!nl.finalized())
    throw std::invalid_argument("fault_list: netlist not finalized");

  const std::vector<Fault> all = enumerate_uncollapsed(nl);
  FaultSet set;
  set.mode_ = mode;
  set.uncollapsed_size_ = all.size();
  if (mode == CollapseMode::kNone) {
    set.faults_ = all;
    set.class_sizes_.assign(all.size(), 1);
    set.represented_sizes_.assign(all.size(), 1);
    return set;
  }

  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(all.size() * 2);
  for (std::uint32_t i = 0; i < all.size(); ++i)
    index.emplace(fault_key(all[i].node, all[i].pin, all[i].stuck_at_one), i);

  const auto idx_of = [&](NodeId node, std::int16_t pin, bool sa1) {
    return index.at(fault_key(node, pin, sa1));
  };

  UnionFind uf(all.size());
  const auto merge_pin_stem = [&](NodeId g, std::size_t pin, bool pin_sa1,
                                  bool stem_sa1) {
    const auto [site_node, site_pin] = pin_site(nl, g, pin);
    uf.merge(idx_of(site_node, site_pin, pin_sa1),
             idx_of(g, kStemPin, stem_sa1));
  };

  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    const std::size_t arity = n.fanin.size();
    switch (n.type) {
      case GateType::kInput:
        break;
      case GateType::kDff:
        // No collapsing across the clock boundary: a fault on Q acts from
        // the unknown initial state, a fault on D only from cycle 1, so the
        // two are not equivalent under three-valued start-up semantics
        // (standard tools also keep them separate; s27 -> 32 faults).
        break;
      case GateType::kBuf:
        merge_pin_stem(id, 0, false, false);
        merge_pin_stem(id, 0, true, true);
        break;
      case GateType::kNot:
        merge_pin_stem(id, 0, false, true);
        merge_pin_stem(id, 0, true, false);
        break;
      case GateType::kAnd:
        for (std::size_t p = 0; p < arity; ++p) merge_pin_stem(id, p, false, false);
        if (arity == 1) merge_pin_stem(id, 0, true, true);
        break;
      case GateType::kNand:
        for (std::size_t p = 0; p < arity; ++p) merge_pin_stem(id, p, false, true);
        if (arity == 1) merge_pin_stem(id, 0, true, false);
        break;
      case GateType::kOr:
        for (std::size_t p = 0; p < arity; ++p) merge_pin_stem(id, p, true, true);
        if (arity == 1) merge_pin_stem(id, 0, false, false);
        break;
      case GateType::kNor:
        for (std::size_t p = 0; p < arity; ++p) merge_pin_stem(id, p, true, false);
        if (arity == 1) merge_pin_stem(id, 0, false, true);
        break;
      case GateType::kXor:
      case GateType::kXnor:
        break;
    }
  }

  // Dominance: mark whole equivalence classes (by root) for dropping,
  // recording the class that absorbs them. Absorption targets are branch
  // faults on the gate's own inputs, which lie strictly earlier in
  // evaluation order than the gate output — chains terminate.
  std::unordered_map<std::uint32_t, std::uint32_t> drop_target;
  if (mode == CollapseMode::kDominance) {
    const std::vector<char> unsafe = compute_state_unsafe(nl);
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      const Node& n = nl.node(id);
      bool out_sa1 = false, in_sa1 = false;
      if (n.fanin.size() < 2 || unsafe[id] ||
          !dominance_rule(n.type, out_sa1, in_sa1))
        continue;
      // The absorbing fault must only be observable through this gate:
      // require a fanout-branch input (single-fanout driver stems can be
      // observed directly, e.g. by an observation point).
      std::int32_t branch_pin = -1;
      for (std::size_t p = 0; p < n.fanin.size(); ++p) {
        if (nl.node(n.fanin[p]).fanout.size() > 1) {
          branch_pin = static_cast<std::int32_t>(p);
          break;
        }
      }
      if (branch_pin < 0) continue;
      const std::uint32_t dom = uf.find(idx_of(id, kStemPin, out_sa1));
      const std::uint32_t target = uf.find(
          idx_of(id, static_cast<std::int16_t>(branch_pin), in_sa1));
      if (dom == target) continue;
      drop_target.emplace(dom, target);  // first eligible gate wins
    }
  }

  // Class sizes by root, then fold dropped classes into their (transitively
  // resolved) kept absorber.
  std::unordered_map<std::uint32_t, std::size_t> class_size_of;
  for (std::uint32_t i = 0; i < all.size(); ++i) ++class_size_of[uf.find(i)];

  std::unordered_map<std::uint32_t, std::size_t> absorbed_of;  // kept roots
  const auto resolve_kept = [&](std::uint32_t root) {
    std::size_t hops = 0;
    auto it = drop_target.find(root);
    while (it != drop_target.end()) {
      root = it->second;
      it = drop_target.find(root);
      if (++hops > all.size())
        throw std::logic_error("fault_list: dominance absorption cycle");
    }
    return root;
  };
  for (const auto& [dropped, target] : drop_target) {
    (void)target;
    absorbed_of[resolve_kept(dropped)] += class_size_of.at(dropped);
  }

  // Collect one representative (the smallest member index) per kept class,
  // in deterministic enumeration order.
  std::unordered_map<std::uint32_t, std::uint32_t> rep_to_out;
  for (std::uint32_t i = 0; i < all.size(); ++i) {
    const std::uint32_t root = uf.find(i);
    if (drop_target.contains(root)) continue;
    const auto [it, inserted] =
        rep_to_out.emplace(root, static_cast<std::uint32_t>(set.faults_.size()));
    if (inserted) {
      set.faults_.push_back(all[root]);
      const std::size_t cls = class_size_of.at(root);
      set.class_sizes_.push_back(cls);
      const auto ab = absorbed_of.find(root);
      set.represented_sizes_.push_back(
          cls + (ab != absorbed_of.end() ? ab->second : 0));
    }
  }
  return set;
}

FaultSet FaultSet::from_faults(std::vector<Fault> faults) {
  FaultSet set;
  set.faults_ = std::move(faults);
  set.class_sizes_.assign(set.faults_.size(), 1);
  set.represented_sizes_.assign(set.faults_.size(), 1);
  set.uncollapsed_size_ = set.faults_.size();
  return set;
}

std::vector<FaultId> FaultSet::all_ids() const {
  std::vector<FaultId> ids(size());
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

}  // namespace wbist::fault
