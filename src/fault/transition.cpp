#include "fault/transition.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "sim/good_sim.h"

namespace wbist::fault {

using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using sim::broadcast;
using sim::TestSequence;
using sim::Val3;
using sim::Word3;

TransitionFaultSet TransitionFaultSet::all(const Netlist& nl) {
  if (!nl.finalized())
    throw std::invalid_argument("transition: netlist not finalized");
  TransitionFaultSet set;
  set.faults_.reserve(nl.node_count() * 2);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    set.faults_.push_back({id, true});
    set.faults_.push_back({id, false});
  }
  return set;
}

std::vector<FaultId> TransitionFaultSet::all_ids() const {
  std::vector<FaultId> ids(size());
  for (FaultId id = 0; id < size(); ++id) ids[id] = id;
  return ids;
}

TransitionFaultSimulator::TransitionFaultSimulator(
    const Netlist& nl, const TransitionFaultSet& faults)
    : nl_(&nl), faults_(&faults) {
  if (!nl.finalized())
    throw std::invalid_argument("transition: netlist not finalized");
}

namespace {

/// Lane masks of the transition faults one group holds at one node.
struct SiteMasks {
  std::uint64_t rise = 0;  ///< slow-to-rise lanes
  std::uint64_t fall = 0;  ///< slow-to-fall lanes
};

struct Group {
  std::array<FaultId, 64> ids{};
  std::array<std::uint32_t, 64> result_index{};
  unsigned count = 0;
  std::uint64_t active = 0;
  std::vector<std::pair<NodeId, SiteMasks>> sites;  ///< per faulty node
};

inline Word3 splice(const Word3& keep, const Word3& take,
                    std::uint64_t mask) {
  return {(keep.one & ~mask) | (take.one & mask),
          (keep.zero & ~mask) | (take.zero & mask)};
}

/// Apply the one-cycle-late transition semantics at one fault site:
/// transforms vals[node] for the faulty lanes and refreshes their memory of
/// the line's computed value.
inline void apply_site(Word3& value, Word3& prev, const SiteMasks& m) {
  const Word3 computed = value;
  const std::uint64_t lanes = m.rise | m.fall;
  const Word3 delayed_rise = sim::and3(computed, prev);
  const Word3 delayed_fall = sim::or3(computed, prev);
  Word3 out = splice(computed, delayed_rise, m.rise);
  out = splice(out, delayed_fall, m.fall);
  value = out;
  prev = splice(prev, computed, lanes);
}

}  // namespace

DetectionResult TransitionFaultSimulator::run(
    const TestSequence& seq, std::span<const FaultId> ids) const {
  const auto pis = nl_->primary_inputs();
  DetectionResult result;
  result.detection_time.assign(ids.size(), DetectionResult::kUndetected);
  if (ids.empty() || seq.length() == 0) return result;
  if (seq.width() != pis.size())
    throw std::invalid_argument("transition: sequence width != #inputs");

  // Pack groups; collect the per-node lane masks.
  std::vector<Group> groups;
  for (std::size_t pos = 0; pos < ids.size(); ++pos) {
    if (pos % 64 == 0) groups.emplace_back();
    Group& g = groups.back();
    const unsigned lane = g.count++;
    g.ids[lane] = ids[pos];
    g.result_index[lane] = static_cast<std::uint32_t>(pos);
    g.active |= std::uint64_t{1} << lane;
    const TransitionFault& f = (*faults_)[ids[pos]];
    auto it = std::find_if(g.sites.begin(), g.sites.end(),
                           [&f](const auto& s) { return s.first == f.node; });
    if (it == g.sites.end()) {
      g.sites.push_back({f.node, {}});
      it = g.sites.end() - 1;
    }
    (f.slow_to_rise ? it->second.rise : it->second.fall) |=
        std::uint64_t{1} << lane;
  }

  const std::size_t length = seq.length();

  // Good machine pass: input words + good values at the observed outputs.
  const auto pos_out = nl_->primary_outputs();
  std::vector<Word3> pi_words(length * pis.size());
  std::vector<Word3> good_obs(length * pos_out.size());
  {
    sim::GoodSimulator good(*nl_);
    for (std::size_t u = 0; u < length; ++u) {
      good.step(seq.row(u));
      for (std::size_t i = 0; i < pis.size(); ++i)
        pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));
      const auto raw = good.raw_values();
      for (std::size_t k = 0; k < pos_out.size(); ++k)
        good_obs[u * pos_out.size() + k] = raw[pos_out[k]];
    }
  }

  const auto ffs = nl_->flip_flops();
  std::vector<Word3> vals(nl_->node_count());
  std::vector<Word3> state(ffs.size());
  std::vector<Word3> next_state(ffs.size());

  // Scratch per-node site lookup (reset between groups via touched list).
  std::vector<std::int32_t> site_at(nl_->node_count(), -1);

  for (Group& group : groups) {
    for (std::size_t s = 0; s < group.sites.size(); ++s)
      site_at[group.sites[s].first] = static_cast<std::int32_t>(s);
    for (Word3& w : state) w = broadcast(Val3::kX);
    // Each lane's memory of its own line's previous computed value.
    Word3 prev = broadcast(Val3::kX);

    for (std::size_t u = 0; u < length && group.active != 0; ++u) {
      for (std::size_t i = 0; i < pis.size(); ++i)
        vals[pis[i]] = pi_words[u * pis.size() + i];
      for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = state[i];
      // Transition faults on sources act right after the load.
      for (const auto& [node, masks] : group.sites) {
        const Node& n = nl_->node(node);
        if (!netlist::is_logic_gate(n.type))
          apply_site(vals[node], prev, masks);
      }

      for (const NodeId id : nl_->eval_order()) {
        const Node& n = nl_->node(id);
        Word3 acc = vals[n.fanin[0]];
        switch (n.type) {
          case netlist::GateType::kBuf:
            break;
          case netlist::GateType::kNot:
            acc = sim::not3(acc);
            break;
          case netlist::GateType::kAnd:
          case netlist::GateType::kNand:
            for (std::size_t k = 1; k < n.fanin.size(); ++k)
              acc = sim::and3(acc, vals[n.fanin[k]]);
            if (n.type == netlist::GateType::kNand) acc = sim::not3(acc);
            break;
          case netlist::GateType::kOr:
          case netlist::GateType::kNor:
            for (std::size_t k = 1; k < n.fanin.size(); ++k)
              acc = sim::or3(acc, vals[n.fanin[k]]);
            if (n.type == netlist::GateType::kNor) acc = sim::not3(acc);
            break;
          default:
            for (std::size_t k = 1; k < n.fanin.size(); ++k)
              acc = sim::xor3(acc, vals[n.fanin[k]]);
            if (n.type == netlist::GateType::kXnor) acc = sim::not3(acc);
            break;
        }
        vals[id] = acc;
        const std::int32_t s = site_at[id];
        if (s >= 0) [[unlikely]]
          apply_site(vals[id], prev,
                     group.sites[static_cast<std::size_t>(s)].second);
      }

      // Detection at the primary outputs.
      std::uint64_t detected = 0;
      for (std::size_t k = 0; k < pos_out.size(); ++k) {
        const Word3 g = good_obs[u * pos_out.size() + k];
        const Word3 f = vals[pos_out[k]];
        detected |= (f.one ^ f.zero) & (g.one ^ g.zero) & (f.one ^ g.one);
      }
      detected &= group.active;
      while (detected != 0) {
        const unsigned lane =
            static_cast<unsigned>(std::countr_zero(detected));
        detected &= detected - 1;
        group.active &= ~(std::uint64_t{1} << lane);
        result.detection_time[group.result_index[lane]] =
            static_cast<std::int32_t>(u);
        ++result.detected_count;
      }
      if (group.active == 0) break;

      for (std::size_t i = 0; i < ffs.size(); ++i)
        next_state[i] = vals[nl_->node(ffs[i]).fanin[0]];
      state.swap(next_state);
    }

    for (const auto& [node, masks] : group.sites) site_at[node] = -1;
  }
  return result;
}

DetectionResult TransitionFaultSimulator::run_all(
    const TestSequence& seq) const {
  const auto ids = faults_->all_ids();
  return run(seq, ids);
}

}  // namespace wbist::fault
