// Transition (gross-delay) fault model and simulator.
//
// The paper's Section 1 places its weight scheme in the lineage of the
// 5-weight delay-fault generators of [11] and [15] (weights 0, 1, 0.5 and
// the alternating w01/w10 — which are exactly the subsequences "01" and
// "10" of this library). This module supplies the fault model those schemes
// target: a slow-to-rise (or slow-to-fall) line completes its transition
// one clock late.
//
// Cycle-level semantics, per faulty line with computed value c(t) and the
// previous computed value p = c(t-1):
//   slow-to-rise:  out(t) = c(t) except p=0, c=1 -> 0   ==  AND(c, p)
//   slow-to-fall:  out(t) = c(t) except p=1, c=0 -> 1   ==  OR(c, p)
// (both identities hold in three-valued logic, which handles the unknown
// power-up state with the right pessimism for free). Detection uses the
// same definite-difference criterion as the stuck-at simulator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/fault_sim.h"
#include "netlist/netlist.h"
#include "sim/logic.h"
#include "sim/sequence.h"

namespace wbist::fault {

struct TransitionFault {
  netlist::NodeId node = netlist::kNoNode;  ///< faulty line (stem)
  bool slow_to_rise = true;

  friend bool operator==(const TransitionFault&,
                         const TransitionFault&) = default;
};

inline std::string transition_fault_name(const netlist::Netlist& nl,
                                         const TransitionFault& f) {
  return nl.node(f.node).name + (f.slow_to_rise ? " STR" : " STF");
}

/// The transition fault universe: both polarities on every stem.
class TransitionFaultSet {
 public:
  static TransitionFaultSet all(const netlist::Netlist& nl);

  std::span<const TransitionFault> faults() const { return faults_; }
  std::size_t size() const { return faults_.size(); }
  const TransitionFault& operator[](FaultId id) const { return faults_[id]; }
  std::vector<FaultId> all_ids() const;

 private:
  std::vector<TransitionFault> faults_;
};

/// Parallel-fault sequential transition-fault simulation (64 faulty
/// machines per word, same architecture as the stuck-at FaultSimulator).
class TransitionFaultSimulator {
 public:
  TransitionFaultSimulator(const netlist::Netlist& nl,
                           const TransitionFaultSet& faults);

  /// Simulate from the all-X state with fault dropping; detection times are
  /// first definite differences at the primary outputs.
  DetectionResult run(const sim::TestSequence& seq,
                      std::span<const FaultId> ids) const;

  DetectionResult run_all(const sim::TestSequence& seq) const;

  const netlist::Netlist& circuit() const { return *nl_; }
  const TransitionFaultSet& fault_set() const { return *faults_; }

 private:
  const netlist::Netlist* nl_;
  const TransitionFaultSet* faults_;
};

}  // namespace wbist::fault
