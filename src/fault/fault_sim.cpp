#include "fault/fault_sim.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "sim/good_sim.h"
#include "sim/word_block.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace wbist::fault {

using netlist::GateType;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using sim::broadcast;
using sim::TestSequence;
using sim::Val3;
using sim::Word3;

/// One block of up to 64 * kernel.words faulty machines simulated together.
/// Lane l lives at bit (l % 64) of plane word (l / 64).
struct FaultSimulator::Group {
  std::vector<FaultId> ids;
  std::vector<std::uint32_t> result_index;  // lane -> position in `ids` span
  unsigned count = 0;
  std::array<std::uint64_t, sim::kMaxBlockWords> active{};

  std::vector<sim::Injection> source;  // PI / DFF-output stem faults
  std::vector<sim::Injection> latch;   // DFF D-pin faults
  std::vector<sim::Injection> gate;    // logic-gate stem and pin faults

  bool any_active(unsigned words) const {
    for (unsigned w = 0; w < words; ++w)
      if (active[w] != 0) return true;
    return false;
  }

  std::uint64_t active_lanes(unsigned words) const {
    std::uint64_t n = 0;
    for (unsigned w = 0; w < words; ++w)
      n += static_cast<std::uint64_t>(std::popcount(active[w]));
    return n;
  }
};

FaultSimulator::FaultSimulator(const Netlist& nl, const FaultSet& faults,
                               const sim::Kernel* kernel)
    : nl_(&nl),
      faults_(&faults),
      kernel_(kernel != nullptr ? kernel : &sim::active_kernel()) {
  if (!nl.finalized())
    throw std::invalid_argument("fault_sim: netlist not finalized");
  gates_.reserve(nl.eval_order().size());
  for (NodeId id : nl.eval_order()) {
    const Node& n = nl.node(id);
    gates_.push_back({id, n.type, static_cast<std::uint32_t>(flat_fanin_.size()),
                      static_cast<std::uint32_t>(n.fanin.size())});
    flat_fanin_.insert(flat_fanin_.end(), n.fanin.begin(), n.fanin.end());
    max_fanin_ = std::max(max_fanin_, n.fanin.size());
  }
  ff_index_.assign(nl.node_count(), 0);
  const auto ffs = nl.flip_flops();
  for (std::uint32_t i = 0; i < ffs.size(); ++i) ff_index_[ffs[i]] = i;
}

util::WorkerPool& FaultSimulator::pool(unsigned thread_count) const {
  std::lock_guard<std::mutex> lk(pool_mu_);
  // Grow-only: parallel_for handles jobs smaller than the pool, so a pool
  // sized to the largest request ever seen serves every later call without
  // respawning threads (alternating small/large fault lists stay cheap).
  if (!pool_ || pool_->size() < thread_count)
    pool_ = std::make_unique<util::WorkerPool>(thread_count);
  return *pool_;
}

std::vector<FaultSimulator::Group> FaultSimulator::pack_groups(
    std::span<const FaultId> ids) const {
  const unsigned lanes_per_group = 64 * kernel_->words;
  std::vector<Group> groups;
  groups.reserve((ids.size() + lanes_per_group - 1) / lanes_per_group);
  for (std::size_t pos = 0; pos < ids.size(); ++pos) {
    if (pos % lanes_per_group == 0) {
      groups.emplace_back();
      groups.back().ids.reserve(lanes_per_group);
      groups.back().result_index.reserve(lanes_per_group);
    }
    Group& g = groups.back();
    const unsigned lane = g.count++;
    const std::uint16_t word = static_cast<std::uint16_t>(lane / 64);
    const std::uint64_t mask = std::uint64_t{1} << (lane % 64);
    g.ids.push_back(ids[pos]);
    g.result_index.push_back(static_cast<std::uint32_t>(pos));
    g.active[word] |= mask;

    const Fault& f = (*faults_)[ids[pos]];
    const Node& n = nl_->node(f.node);
    const sim::Injection inj{f.node, f.pin, f.stuck_at_one, word, mask};
    if (f.pin == kStemPin) {
      if (n.type == GateType::kInput || n.type == GateType::kDff)
        g.source.push_back(inj);
      else
        g.gate.push_back(inj);
    } else {
      if (n.type == GateType::kDff)
        g.latch.push_back(inj);
      else
        g.gate.push_back(inj);
    }
  }
  return groups;
}

namespace {

/// Widen one broadcast Word3 into a slot of `words` plane words.
inline void splat(std::uint64_t* slot, unsigned words, Word3 w) {
  for (unsigned k = 0; k < words; ++k) {
    slot[k] = w.one;
    slot[words + k] = w.zero;
  }
}

/// Stuck-at injection on one plane word of a slot.
inline void force_slot(std::uint64_t* slot, unsigned words, unsigned word,
                       std::uint64_t mask, bool sa1) {
  if (sa1) {
    slot[word] |= mask;
    slot[words + word] &= ~mask;
  } else {
    slot[word] &= ~mask;
    slot[words + word] |= mask;
  }
}

/// Extract machine `lane` of a slot as a scalar value.
inline Val3 lane_val(const std::uint64_t* slot, unsigned words,
                     unsigned lane) {
  const Word3 w{slot[lane / 64], slot[words + lane / 64]};
  return sim::lane(w, lane % 64);
}

/// Per-thread scratch for one simulated group: node value planes, flip-flop
/// state planes, fanin staging and the injection chain index. One instance
/// per worker rank; reused across every group that rank simulates. All
/// buffers are flat plane arrays with `stride` words per value slot.
struct GroupScratch {
  std::vector<std::uint64_t> vals;
  std::vector<std::uint64_t> state;
  std::vector<std::uint64_t> next_state;
  std::vector<std::uint64_t> fanin_buf;
  sim::InjectionIndex inj_index;

  GroupScratch(std::size_t node_count, std::size_t ff_count,
               std::size_t stride, std::size_t max_fanin)
      : vals(node_count * stride),
        state(ff_count * stride),
        next_state(ff_count * stride),
        fanin_buf(max_fanin * stride),
        inj_index(node_count) {}

  /// All-X state: both planes all-ones.
  void reset_state() { std::fill(state.begin(), state.end(), ~std::uint64_t{0}); }
};

}  // namespace

GoodTrace FaultSimulator::make_trace(
    const TestSequence& seq, std::span<const NodeId> observation_points,
    std::size_t max_time_units) const {
  const auto pis = nl_->primary_inputs();
  GoodTrace trace;
  trace.n_inputs = pis.size();
  trace.n_observation_points = observation_points.size();
  trace.observed.assign(nl_->primary_outputs().begin(),
                        nl_->primary_outputs().end());
  trace.observed.insert(trace.observed.end(), observation_points.begin(),
                        observation_points.end());
  if (seq.length() == 0) return trace;
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  trace.length = std::min(seq.length(), max_time_units);
  util::TraceSpan span("fault_sim.make_trace",
                       util::TraceArg("cycles", trace.length));
  trace.pi_words.resize(trace.length * pis.size());
  trace.good_obs.resize(trace.length * trace.observed.size());
  sim::GoodSimulator good(*nl_);
  for (std::size_t u = 0; u < trace.length; ++u) {
    good.step(seq.row(u));
    for (std::size_t i = 0; i < pis.size(); ++i)
      trace.pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));
    const auto raw = good.raw_values();
    for (std::size_t k = 0; k < trace.observed.size(); ++k)
      trace.good_obs[u * trace.observed.size() + k] = raw[trace.observed[k]];
  }
  good_sim_runs_.fetch_add(1, std::memory_order_relaxed);
  util::metrics().counter("fault_sim.traces").add(1);
  util::metrics().counter("fault_sim.trace_cycles").add(trace.length);
  return trace;
}

DetectionResult FaultSimulator::run(const TestSequence& seq,
                                    std::span<const FaultId> ids,
                                    const FaultSimOptions& options) const {
  if (ids.empty() || seq.length() == 0) {
    DetectionResult result;
    result.detection_time.assign(ids.size(), DetectionResult::kUndetected);
    result.detecting_line.assign(ids.size(), netlist::kNoNode);
    return result;
  }
  return run(make_trace(seq, options.observation_points,
                        options.max_time_units),
             ids, options);
}

DetectionResult FaultSimulator::run(const GoodTrace& trace,
                                    std::span<const FaultId> ids,
                                    const FaultSimOptions& options) const {
  const auto pis = nl_->primary_inputs();
  DetectionResult result;
  result.detection_time.assign(ids.size(), DetectionResult::kUndetected);
  result.detecting_line.assign(ids.size(), netlist::kNoNode);
  if (ids.empty() || trace.length == 0) return result;
  if (trace.n_inputs != pis.size())
    throw std::invalid_argument("fault_sim: trace width != #inputs");
  if (trace.n_observation_points > trace.observed.size())
    throw std::invalid_argument(
        "fault_sim: malformed trace (n_observation_points > observed lines)");
  if (trace.n_observation_points != options.observation_points.size() ||
      !std::equal(options.observation_points.begin(),
                  options.observation_points.end(),
                  trace.observed.end() -
                      static_cast<std::ptrdiff_t>(trace.n_observation_points)))
    throw std::invalid_argument(
        "fault_sim: trace observation points differ from options");

  const std::size_t length = std::min(trace.length, options.max_time_units);
  const std::size_t n_obs = trace.observed.size();
  const NodeId* observed = trace.observed.data();
  const unsigned words = kernel_->words;
  const std::size_t stride = sim::block_stride(words);

  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();
  std::vector<std::uint32_t> group_detected(groups.size(), 0);
  // Kernel-cycle accounting, flushed to util::metrics once per call:
  // kernel cycles = eval_core invocations, fault cycles = active lanes
  // summed over those invocations (the word-packed work actually done).
  std::vector<std::uint64_t> group_cycles(groups.size(), 0);
  std::vector<std::uint64_t> group_fault_cycles(groups.size(), 0);
  const util::Timer run_wall;
  util::TraceSpan run_span("fault_sim.run", util::TraceArg("faults", ids.size()),
                           util::TraceArg("groups", groups.size()),
                           util::TraceArg("cycles", length));

  const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
    Group& group = groups[gi];
    util::TraceSpan group_span("fault_sim.group", util::TraceArg("group", gi),
                               util::TraceArg("lanes", group.count));
    std::uint64_t* vals = s.vals.data();
    s.inj_index.attach(group.gate);
    s.reset_state();

    std::uint32_t local_detected = 0;
    std::uint64_t local_cycles = 0;
    std::uint64_t local_fault_cycles = 0;
    for (std::size_t u = 0; u < length && group.any_active(words); ++u) {
      ++local_cycles;
      local_fault_cycles += group.active_lanes(words);
      // Load sources and apply source (PI / DFF output) stem faults.
      for (std::size_t i = 0; i < pis.size(); ++i)
        splat(vals + pis[i] * stride, words, trace.pi_words[u * pis.size() + i]);
      for (std::size_t i = 0; i < ffs.size(); ++i)
        std::memcpy(vals + ffs[i] * stride, s.state.data() + i * stride,
                    stride * sizeof(std::uint64_t));
      for (const sim::Injection& inj : group.source)
        force_slot(vals + inj.node * stride, words, inj.word, inj.mask,
                   inj.sa1);

      kernel_->eval_core(gates_, flat_fanin_.data(), s.inj_index, vals,
                         s.fanin_buf.data());

      // Detection at observed lines.
      std::array<std::uint64_t, sim::kMaxBlockWords> detected{};
      for (std::size_t k = 0; k < n_obs; ++k) {
        const Word3 g = trace.good_obs[u * n_obs + k];
        const std::uint64_t g_binary = g.one ^ g.zero;
        const std::uint64_t* f = vals + observed[k] * stride;
        for (unsigned w = 0; w < words; ++w)
          detected[w] |=
              (f[w] ^ f[words + w]) & g_binary & (f[w] ^ g.one);
      }
      for (unsigned w = 0; w < words; ++w) {
        std::uint64_t d = detected[w] & group.active[w];
        while (d != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(d));
          d &= d - 1;
          group.active[w] &= ~(std::uint64_t{1} << bit);
          const std::uint32_t ri = group.result_index[w * 64 + bit];
          result.detection_time[ri] = static_cast<std::int32_t>(u);
          // Provenance metadata: the first observed line that exposes this
          // lane this cycle. Recomputed only on detection (at most once per
          // fault), so the steady-state cycle loop is untouched.
          for (std::size_t k = 0; k < n_obs; ++k) {
            const Word3 g = trace.good_obs[u * n_obs + k];
            const std::uint64_t g_binary = g.one ^ g.zero;
            const std::uint64_t* f = vals + observed[k] * stride;
            if ((((f[w] ^ f[words + w]) & g_binary & (f[w] ^ g.one)) >> bit) &
                1) {
              result.detecting_line[ri] = observed[k];
              break;
            }
          }
          ++local_detected;
        }
      }
      if (!group.any_active(words)) break;

      // Latch flip-flops, applying D-pin faults.
      for (std::size_t i = 0; i < ffs.size(); ++i)
        std::memcpy(s.next_state.data() + i * stride,
                    vals + nl_->node(ffs[i]).fanin[0] * stride,
                    stride * sizeof(std::uint64_t));
      for (const sim::Injection& inj : group.latch)
        force_slot(s.next_state.data() + ff_index_[inj.node] * stride, words,
                   inj.word, inj.mask, inj.sa1);
      s.state.swap(s.next_state);
    }

    group_detected[gi] = local_detected;
    group_cycles[gi] = local_cycles;
    group_fault_cycles[gi] = local_fault_cycles;
    s.inj_index.detach();
  };

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(options.threads), groups.size()));
  if (n_threads <= 1) {
    GroupScratch scratch(nl_->node_count(), ffs.size(), stride, max_fanin_);
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      simulate_group(gi, scratch);
  } else {
    util::WorkerPool& wp = pool(n_threads);
    // The grow-only pool may be larger than n_threads; any rank in
    // [0, wp.size()) can claim indices, so scratch is rank-indexed by it.
    std::vector<GroupScratch> scratch;
    scratch.reserve(wp.size());
    for (unsigned r = 0; r < wp.size(); ++r)
      scratch.emplace_back(nl_->node_count(), ffs.size(), stride, max_fanin_);
    // Per-rank busy time, timed at group granularity (one clock pair per
    // fault group, invisible next to the group's simulation cost).
    std::vector<std::uint64_t> busy_ns(wp.size(), 0);
    const util::Timer parallel_wall;
    wp.parallel_for(groups.size(), [&](std::size_t gi, unsigned rank) {
      const util::Timer t;
      simulate_group(gi, scratch[rank]);
      busy_ns[rank] += static_cast<std::uint64_t>(t.seconds() * 1e9);
    });
    const double wall = parallel_wall.seconds();
    util::MetricsRegistry& reg = util::metrics();
    reg.timer("fault_sim.parallel").add_seconds(wall);
    for (unsigned r = 0; r < wp.size(); ++r) {
      if (busy_ns[r] == 0) continue;
      reg.timer("fault_sim.worker_busy")
          .add_seconds(static_cast<double>(busy_ns[r]) * 1e-9);
      if (wall > 0.0)
        reg.histogram("fault_sim.rank_busy_pct")
            .record(static_cast<std::uint64_t>(
                100.0 * static_cast<double>(busy_ns[r]) * 1e-9 / wall));
    }
  }

  for (const std::uint32_t d : group_detected) result.detected_count += d;

  util::MetricsRegistry& reg = util::metrics();
  reg.timer("fault_sim.run").add_seconds(run_wall.seconds());
  reg.counter("fault_sim.runs").add(1);
  reg.counter("fault_sim.groups").add(groups.size());
  reg.counter("fault_sim.faults_simulated").add(ids.size());
  reg.counter("fault_sim.faults_detected").add(result.detected_count);
  std::uint64_t kernel_cycles = 0, fault_cycles = 0;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    kernel_cycles += group_cycles[gi];
    fault_cycles += group_fault_cycles[gi];
  }
  reg.counter("fault_sim.kernel_cycles").add(kernel_cycles);
  reg.counter("fault_sim.fault_cycles").add(fault_cycles);
  return result;
}

DetectionResult FaultSimulator::run_all(const TestSequence& seq,
                                        const FaultSimOptions& options) const {
  const std::vector<FaultId> ids = faults_->all_ids();
  return run(seq, ids, options);
}

std::vector<std::vector<Val3>> FaultSimulator::observe_final(
    const TestSequence& seq, std::span<const FaultId> ids,
    std::span<const NodeId> nodes, unsigned threads) const {
  const auto pis = nl_->primary_inputs();
  std::vector<std::vector<Val3>> result(
      ids.size(), std::vector<Val3>(nodes.size(), Val3::kX));
  if (ids.empty() || seq.length() == 0) return result;
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  const unsigned words = kernel_->words;
  const std::size_t stride = sim::block_stride(words);
  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();
  util::TraceSpan span("fault_sim.observe_final",
                       util::TraceArg("faults", ids.size()),
                       util::TraceArg("cycles", seq.length()));

  std::vector<Word3> pi_words(seq.length() * pis.size());
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < pis.size(); ++i)
      pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));

  const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
    Group& group = groups[gi];
    std::uint64_t* vals = s.vals.data();
    s.inj_index.attach(group.gate);
    s.reset_state();

    for (std::size_t u = 0; u < seq.length(); ++u) {
      for (std::size_t i = 0; i < pis.size(); ++i)
        splat(vals + pis[i] * stride, words, pi_words[u * pis.size() + i]);
      for (std::size_t i = 0; i < ffs.size(); ++i)
        std::memcpy(vals + ffs[i] * stride, s.state.data() + i * stride,
                    stride * sizeof(std::uint64_t));
      for (const sim::Injection& inj : group.source)
        force_slot(vals + inj.node * stride, words, inj.word, inj.mask,
                   inj.sa1);

      kernel_->eval_core(gates_, flat_fanin_.data(), s.inj_index, vals,
                         s.fanin_buf.data());

      if (u + 1 == seq.length()) {
        for (unsigned lane = 0; lane < group.count; ++lane)
          for (std::size_t n = 0; n < nodes.size(); ++n)
            result[group.result_index[lane]][n] =
                lane_val(vals + nodes[n] * stride, words, lane);
        break;
      }

      for (std::size_t i = 0; i < ffs.size(); ++i)
        std::memcpy(s.next_state.data() + i * stride,
                    vals + nl_->node(ffs[i]).fanin[0] * stride,
                    stride * sizeof(std::uint64_t));
      for (const sim::Injection& inj : group.latch)
        force_slot(s.next_state.data() + ff_index_[inj.node] * stride, words,
                   inj.word, inj.mask, inj.sa1);
      s.state.swap(s.next_state);
    }

    s.inj_index.detach();
  };

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(threads), groups.size()));
  if (n_threads <= 1) {
    GroupScratch scratch(nl_->node_count(), ffs.size(), stride, max_fanin_);
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      simulate_group(gi, scratch);
  } else {
    util::WorkerPool& wp = pool(n_threads);
    std::vector<GroupScratch> scratch;
    scratch.reserve(wp.size());
    for (unsigned r = 0; r < wp.size(); ++r)
      scratch.emplace_back(nl_->node_count(), ffs.size(), stride, max_fanin_);
    wp.parallel_for(
        groups.size(),
        [&](std::size_t gi, unsigned rank) { simulate_group(gi, scratch[rank]); });
  }
  util::metrics().counter("fault_sim.final_obs_runs").add(1);
  util::metrics().counter("fault_sim.kernel_cycles")
      .add(static_cast<std::uint64_t>(groups.size()) * seq.length());
  return result;
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines(
    const TestSequence& seq, std::span<const FaultId> ids,
    unsigned threads) const {
  const auto pis = nl_->primary_inputs();
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  // A pi-words-only trace: observable_lines never looks at good_obs (it
  // replays the full good-machine value vector internally).
  GoodTrace trace;
  trace.length = seq.length();
  trace.n_inputs = pis.size();
  trace.pi_words.resize(seq.length() * pis.size());
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < pis.size(); ++i)
      trace.pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));
  return observable_lines_impl(trace, ids, threads);
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines(
    const GoodTrace& trace, std::span<const FaultId> ids,
    unsigned threads) const {
  if (trace.length != 0 && trace.n_inputs != nl_->primary_inputs().size())
    throw std::invalid_argument("fault_sim: trace width != #inputs");
  return observable_lines_impl(trace, ids, threads);
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines_impl(
    const GoodTrace& trace, std::span<const FaultId> ids,
    unsigned threads) const {
  std::vector<std::vector<NodeId>> result(ids.size());
  if (ids.empty() || trace.length == 0) return result;
  util::TraceSpan span("fault_sim.observable_lines",
                       util::TraceArg("faults", ids.size()),
                       util::TraceArg("cycles", trace.length));

  const auto pis = nl_->primary_inputs();
  const std::size_t node_count = nl_->node_count();
  const unsigned words = kernel_->words;
  const std::size_t stride = sim::block_stride(words);
  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();

  // Per-group persistent faulty state: time is the outer loop here because
  // the good machine's full value vector is needed each cycle.
  std::vector<std::vector<std::uint64_t>> group_state(
      groups.size(),
      std::vector<std::uint64_t>(ffs.size() * stride, ~std::uint64_t{0}));

  // Per-fault bitset of already-reported lines, one word-aligned stride per
  // fault so concurrent groups never share a word (O(faults x nodes) *bits*,
  // not bytes).
  const std::size_t words_per_fault = (node_count + 63) / 64;
  std::vector<std::uint64_t> seen(ids.size() * words_per_fault, 0);

  // The time loop is chunked: the good machine advances one block at a time
  // (recording its full value vector per cycle), then every group catches up
  // over the block in parallel. Blocks amortize the per-dispatch pool cost
  // while keeping the good-value buffer small (kBlock x node_count words).
  constexpr std::size_t kBlock = 32;
  std::vector<Word3> good_block(std::min(kBlock, trace.length) * node_count);

  sim::GoodSimulator good(*nl_);
  std::vector<Val3> row(pis.size());

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(threads), groups.size()));
  util::WorkerPool* wp = n_threads > 1 ? &pool(n_threads) : nullptr;
  const unsigned scratch_count = wp ? wp->size() : 1u;
  std::vector<GroupScratch> scratch;
  scratch.reserve(scratch_count);
  for (unsigned r = 0; r < scratch_count; ++r)
    scratch.emplace_back(node_count, ffs.size(), stride, max_fanin_);

  for (std::size_t u0 = 0; u0 < trace.length; u0 += kBlock) {
    const std::size_t block_len = std::min(kBlock, trace.length - u0);
    for (std::size_t b = 0; b < block_len; ++b) {
      const std::size_t u = u0 + b;
      for (std::size_t i = 0; i < pis.size(); ++i)
        row[i] = sim::lane(trace.pi_words[u * pis.size() + i], 0);
      good.step(row);
      const auto raw = good.raw_values();
      std::copy(raw.begin(), raw.end(), good_block.begin() + b * node_count);
    }

    const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
      Group& group = groups[gi];
      std::vector<std::uint64_t>& state = group_state[gi];
      std::uint64_t* vals = s.vals.data();
      s.inj_index.attach(group.gate);

      for (std::size_t b = 0; b < block_len; ++b) {
        const std::size_t u = u0 + b;
        for (std::size_t i = 0; i < pis.size(); ++i)
          splat(vals + pis[i] * stride, words,
                trace.pi_words[u * pis.size() + i]);
        for (std::size_t i = 0; i < ffs.size(); ++i)
          std::memcpy(vals + ffs[i] * stride, state.data() + i * stride,
                      stride * sizeof(std::uint64_t));
        for (const sim::Injection& inj : group.source)
          force_slot(vals + inj.node * stride, words, inj.word, inj.mask,
                     inj.sa1);

        kernel_->eval_core(gates_, flat_fanin_.data(), s.inj_index, vals,
                           s.fanin_buf.data());

        // Record every line where some lane's faulty value provably differs
        // from the good value.
        const Word3* good_vals = good_block.data() + b * node_count;
        for (NodeId node = 0; node < node_count; ++node) {
          const Word3 gv = good_vals[node];
          const std::uint64_t g_binary = gv.one ^ gv.zero;
          const std::uint64_t* fv = vals + node * stride;
          for (unsigned w = 0; w < words; ++w) {
            std::uint64_t diff = (fv[w] ^ fv[words + w]) & g_binary &
                                 (fv[w] ^ gv.one);
            diff &= group.active[w];
            while (diff != 0) {
              const unsigned bit =
                  static_cast<unsigned>(std::countr_zero(diff));
              diff &= diff - 1;
              const std::uint32_t ri = group.result_index[w * 64 + bit];
              std::uint64_t& word =
                  seen[static_cast<std::size_t>(ri) * words_per_fault +
                       node / 64];
              const std::uint64_t line_bit = std::uint64_t{1} << (node % 64);
              if ((word & line_bit) == 0) {
                word |= line_bit;
                result[ri].push_back(node);
              }
            }
          }
        }

        for (std::size_t i = 0; i < ffs.size(); ++i)
          std::memcpy(s.next_state.data() + i * stride,
                      vals + nl_->node(ffs[i]).fanin[0] * stride,
                      stride * sizeof(std::uint64_t));
        for (const sim::Injection& inj : group.latch)
          force_slot(s.next_state.data() + ff_index_[inj.node] * stride,
                     words, inj.word, inj.mask, inj.sa1);
        state.swap(s.next_state);
      }

      s.inj_index.detach();
    };

    if (wp == nullptr) {
      for (std::size_t gi = 0; gi < groups.size(); ++gi)
        simulate_group(gi, scratch[0]);
    } else {
      wp->parallel_for(groups.size(), [&](std::size_t gi, unsigned rank) {
        simulate_group(gi, scratch[rank]);
      });
    }
  }
  good_sim_runs_.fetch_add(1, std::memory_order_relaxed);

  util::MetricsRegistry& reg = util::metrics();
  reg.counter("fault_sim.obs_runs").add(1);
  reg.counter("fault_sim.obs_faults").add(ids.size());
  reg.counter("fault_sim.trace_cycles").add(trace.length);
  reg.counter("fault_sim.kernel_cycles")
      .add(static_cast<std::uint64_t>(groups.size()) * trace.length);

  for (auto& lines : result) std::sort(lines.begin(), lines.end());
  return result;
}

}  // namespace wbist::fault
