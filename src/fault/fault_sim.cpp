#include "fault/fault_sim.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "sim/good_sim.h"

namespace wbist::fault {

using netlist::GateType;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using sim::broadcast;
using sim::TestSequence;
using sim::Val3;
using sim::Word3;

namespace {

struct Injection {
  NodeId node;
  std::int16_t pin;  // kStemPin for output-stem injection
  bool sa1;
  std::uint64_t mask;
};

}  // namespace

/// One word of up to 64 faulty machines simulated together.
struct FaultSimulator::Group {
  std::array<FaultId, 64> ids{};
  std::array<std::uint32_t, 64> result_index{};  // lane -> position in `ids` span
  unsigned count = 0;
  std::uint64_t active = 0;

  std::vector<Injection> source;  // PI / DFF-output stem faults
  std::vector<Injection> latch;   // DFF D-pin faults
  std::vector<Injection> gate;    // logic-gate stem and pin faults
};

FaultSimulator::FaultSimulator(const Netlist& nl, const FaultSet& faults)
    : nl_(&nl), faults_(&faults) {
  if (!nl.finalized())
    throw std::invalid_argument("fault_sim: netlist not finalized");
  gates_.reserve(nl.eval_order().size());
  for (NodeId id : nl.eval_order()) {
    const Node& n = nl.node(id);
    gates_.push_back({id, n.type, static_cast<std::uint32_t>(flat_fanin_.size()),
                      static_cast<std::uint32_t>(n.fanin.size())});
    flat_fanin_.insert(flat_fanin_.end(), n.fanin.begin(), n.fanin.end());
  }
  ff_index_.assign(nl.node_count(), 0);
  const auto ffs = nl.flip_flops();
  for (std::uint32_t i = 0; i < ffs.size(); ++i) ff_index_[ffs[i]] = i;
}

std::vector<FaultSimulator::Group> FaultSimulator::pack_groups(
    std::span<const FaultId> ids) const {
  std::vector<Group> groups;
  groups.reserve((ids.size() + 63) / 64);
  for (std::size_t pos = 0; pos < ids.size(); ++pos) {
    if (pos % 64 == 0) groups.emplace_back();
    Group& g = groups.back();
    const unsigned lane = g.count++;
    g.ids[lane] = ids[pos];
    g.result_index[lane] = static_cast<std::uint32_t>(pos);
    g.active |= std::uint64_t{1} << lane;

    const Fault& f = (*faults_)[ids[pos]];
    const Node& n = nl_->node(f.node);
    const Injection inj{f.node, f.pin, f.stuck_at_one, std::uint64_t{1} << lane};
    if (f.pin == kStemPin) {
      if (n.type == GateType::kInput || n.type == GateType::kDff)
        g.source.push_back(inj);
      else
        g.gate.push_back(inj);
    } else {
      if (n.type == GateType::kDff)
        g.latch.push_back(inj);
      else
        g.gate.push_back(inj);
    }
  }
  return groups;
}

namespace {

/// Scratch per-node chain of gate injections for the group being simulated.
/// head_[node] is an index into links_, or -1. Building and tearing down
/// touches only the injected nodes, so reuse across groups is O(#injections).
class InjectionIndex {
 public:
  explicit InjectionIndex(std::size_t node_count) : head_(node_count, -1) {}

  void attach(const std::vector<Injection>& injections) {
    for (const Injection& inj : injections) {
      links_.push_back({inj, head_[inj.node]});
      head_[inj.node] = static_cast<std::int32_t>(links_.size()) - 1;
      touched_.push_back(inj.node);
    }
  }

  void detach() {
    for (NodeId n : touched_) head_[n] = -1;
    touched_.clear();
    links_.clear();
  }

  std::int32_t head(NodeId node) const { return head_[node]; }
  const Injection& injection(std::int32_t link) const {
    return links_[static_cast<std::size_t>(link)].first;
  }
  std::int32_t next(std::int32_t link) const {
    return links_[static_cast<std::size_t>(link)].second;
  }

 private:
  std::vector<std::int32_t> head_;
  std::vector<std::pair<Injection, std::int32_t>> links_;
  std::vector<NodeId> touched_;
};

Word3 fold(GateType type, std::span<const Word3> in) {
  return sim::eval_gate(type, in);
}

}  // namespace

DetectionResult FaultSimulator::run(const TestSequence& seq,
                                    std::span<const FaultId> ids,
                                    const FaultSimOptions& options) const {
  const auto pis = nl_->primary_inputs();
  DetectionResult result;
  result.detection_time.assign(ids.size(), DetectionResult::kUndetected);
  if (ids.empty() || seq.length() == 0) return result;
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  const std::size_t length = std::min(seq.length(), options.max_time_units);

  // Observed lines: primary outputs plus caller-provided observation points.
  std::vector<NodeId> observed(nl_->primary_outputs().begin(),
                               nl_->primary_outputs().end());
  observed.insert(observed.end(), options.observation_points.begin(),
                  options.observation_points.end());

  // One pass of the good machine; record input words and the good values of
  // every observed line per time unit.
  std::vector<Word3> pi_words(length * pis.size());
  std::vector<Word3> good_obs(length * observed.size());
  {
    sim::GoodSimulator good(*nl_);
    for (std::size_t u = 0; u < length; ++u) {
      good.step(seq.row(u));
      for (std::size_t i = 0; i < pis.size(); ++i)
        pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));
      const auto raw = good.raw_values();
      for (std::size_t k = 0; k < observed.size(); ++k)
        good_obs[u * observed.size() + k] = raw[observed[k]];
    }
  }

  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();

  std::vector<Word3> vals(nl_->node_count());
  std::vector<Word3> state(ffs.size());
  std::vector<Word3> next_state(ffs.size());
  std::vector<Word3> fanin_buf;
  InjectionIndex inj_index(nl_->node_count());

  for (Group& group : groups) {
    inj_index.attach(group.gate);
    for (Word3& w : state) w = broadcast(Val3::kX);

    for (std::size_t u = 0; u < length && group.active != 0; ++u) {
      // Load sources and apply source (PI / DFF output) stem faults.
      for (std::size_t i = 0; i < pis.size(); ++i)
        vals[pis[i]] = pi_words[u * pis.size() + i];
      for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = state[i];
      for (const Injection& inj : group.source)
        vals[inj.node] = sim::force(vals[inj.node], inj.mask, inj.sa1);

      // Combinational core in topological order.
      for (const GateRec& g : gates_) {
        const std::span<const NodeId> fanin{flat_fanin_.data() + g.fanin_begin,
                                            g.fanin_count};
        const std::int32_t head = inj_index.head(g.id);
        Word3 out;
        if (head < 0) [[likely]] {
          switch (g.type) {
            case GateType::kBuf:
              out = vals[fanin[0]];
              break;
            case GateType::kNot:
              out = sim::not3(vals[fanin[0]]);
              break;
            case GateType::kAnd:
            case GateType::kNand: {
              Word3 acc = vals[fanin[0]];
              for (std::size_t k = 1; k < fanin.size(); ++k)
                acc = sim::and3(acc, vals[fanin[k]]);
              out = g.type == GateType::kNand ? sim::not3(acc) : acc;
              break;
            }
            case GateType::kOr:
            case GateType::kNor: {
              Word3 acc = vals[fanin[0]];
              for (std::size_t k = 1; k < fanin.size(); ++k)
                acc = sim::or3(acc, vals[fanin[k]]);
              out = g.type == GateType::kNor ? sim::not3(acc) : acc;
              break;
            }
            default: {
              Word3 acc = vals[fanin[0]];
              for (std::size_t k = 1; k < fanin.size(); ++k)
                acc = sim::xor3(acc, vals[fanin[k]]);
              out = g.type == GateType::kXnor ? sim::not3(acc) : acc;
              break;
            }
          }
        } else {
          // Slow path: apply pin injections on a copy of the fanin values,
          // then stem injections on the gate output.
          fanin_buf.assign(fanin.size(), Word3{});
          for (std::size_t k = 0; k < fanin.size(); ++k)
            fanin_buf[k] = vals[fanin[k]];
          for (std::int32_t link = head; link >= 0;
               link = inj_index.next(link)) {
            const Injection& inj = inj_index.injection(link);
            if (inj.pin != kStemPin)
              fanin_buf[static_cast<std::size_t>(inj.pin)] = sim::force(
                  fanin_buf[static_cast<std::size_t>(inj.pin)], inj.mask,
                  inj.sa1);
          }
          out = fold(g.type, fanin_buf);
          for (std::int32_t link = head; link >= 0;
               link = inj_index.next(link)) {
            const Injection& inj = inj_index.injection(link);
            if (inj.pin == kStemPin) out = sim::force(out, inj.mask, inj.sa1);
          }
        }
        vals[g.id] = out;
      }

      // Detection at observed lines.
      std::uint64_t detected = 0;
      for (std::size_t k = 0; k < observed.size(); ++k) {
        const Word3 g = good_obs[u * observed.size() + k];
        const Word3 f = vals[observed[k]];
        detected |= (f.one ^ f.zero) & (g.one ^ g.zero) & (f.one ^ g.one);
      }
      detected &= group.active;
      while (detected != 0) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(detected));
        detected &= detected - 1;
        group.active &= ~(std::uint64_t{1} << lane);
        result.detection_time[group.result_index[lane]] =
            static_cast<std::int32_t>(u);
        ++result.detected_count;
      }
      if (group.active == 0) break;

      // Latch flip-flops, applying D-pin faults.
      for (std::size_t i = 0; i < ffs.size(); ++i)
        next_state[i] = vals[nl_->node(ffs[i]).fanin[0]];
      for (const Injection& inj : group.latch)
        next_state[ff_index_[inj.node]] =
            sim::force(next_state[ff_index_[inj.node]], inj.mask, inj.sa1);
      state.swap(next_state);
    }

    inj_index.detach();
  }
  return result;
}

DetectionResult FaultSimulator::run_all(const TestSequence& seq,
                                        const FaultSimOptions& options) const {
  const std::vector<FaultId> ids = faults_->all_ids();
  return run(seq, ids, options);
}

std::vector<std::vector<Val3>> FaultSimulator::observe_final(
    const TestSequence& seq, std::span<const FaultId> ids,
    std::span<const NodeId> nodes) const {
  const auto pis = nl_->primary_inputs();
  std::vector<std::vector<Val3>> result(
      ids.size(), std::vector<Val3>(nodes.size(), Val3::kX));
  if (ids.empty() || seq.length() == 0) return result;
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();

  std::vector<Word3> pi_words(seq.length() * pis.size());
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < pis.size(); ++i)
      pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));

  std::vector<Word3> vals(nl_->node_count());
  std::vector<Word3> state(ffs.size());
  std::vector<Word3> next_state(ffs.size());
  std::vector<Word3> fanin_buf;
  InjectionIndex inj_index(nl_->node_count());

  for (Group& group : groups) {
    inj_index.attach(group.gate);
    for (Word3& w : state) w = broadcast(Val3::kX);

    for (std::size_t u = 0; u < seq.length(); ++u) {
      for (std::size_t i = 0; i < pis.size(); ++i)
        vals[pis[i]] = pi_words[u * pis.size() + i];
      for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = state[i];
      for (const Injection& inj : group.source)
        vals[inj.node] = sim::force(vals[inj.node], inj.mask, inj.sa1);

      for (const GateRec& g : gates_) {
        const std::span<const NodeId> fanin{flat_fanin_.data() + g.fanin_begin,
                                            g.fanin_count};
        const std::int32_t head = inj_index.head(g.id);
        fanin_buf.resize(fanin.size());
        for (std::size_t k = 0; k < fanin.size(); ++k)
          fanin_buf[k] = vals[fanin[k]];
        if (head >= 0) {
          for (std::int32_t link = head; link >= 0;
               link = inj_index.next(link)) {
            const Injection& inj = inj_index.injection(link);
            if (inj.pin != kStemPin)
              fanin_buf[static_cast<std::size_t>(inj.pin)] = sim::force(
                  fanin_buf[static_cast<std::size_t>(inj.pin)], inj.mask,
                  inj.sa1);
          }
        }
        Word3 out = fold(g.type, fanin_buf);
        if (head >= 0) {
          for (std::int32_t link = head; link >= 0;
               link = inj_index.next(link)) {
            const Injection& inj = inj_index.injection(link);
            if (inj.pin == kStemPin) out = sim::force(out, inj.mask, inj.sa1);
          }
        }
        vals[g.id] = out;
      }

      if (u + 1 == seq.length()) {
        for (unsigned lane = 0; lane < group.count; ++lane)
          for (std::size_t n = 0; n < nodes.size(); ++n)
            result[group.result_index[lane]][n] =
                sim::lane(vals[nodes[n]], lane);
        break;
      }

      for (std::size_t i = 0; i < ffs.size(); ++i)
        next_state[i] = vals[nl_->node(ffs[i]).fanin[0]];
      for (const Injection& inj : group.latch)
        next_state[ff_index_[inj.node]] =
            sim::force(next_state[ff_index_[inj.node]], inj.mask, inj.sa1);
      state.swap(next_state);
    }

    inj_index.detach();
  }
  return result;
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines(
    const TestSequence& seq, std::span<const FaultId> ids) const {
  const auto pis = nl_->primary_inputs();
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  std::vector<std::vector<NodeId>> result(ids.size());
  if (ids.empty() || seq.length() == 0) return result;

  const std::size_t node_count = nl_->node_count();
  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();

  // Per-group persistent faulty state (time is the outer loop here because
  // the good machine's full value vector is needed each cycle).
  std::vector<std::vector<Word3>> group_state(
      groups.size(), std::vector<Word3>(ffs.size(), broadcast(Val3::kX)));

  std::vector<std::uint8_t> seen(ids.size() * node_count, 0);

  sim::GoodSimulator good(*nl_);
  std::vector<Word3> vals(node_count);
  std::vector<Word3> next_state(ffs.size());
  std::vector<Word3> fanin_buf;
  InjectionIndex inj_index(node_count);

  for (std::size_t u = 0; u < seq.length(); ++u) {
    good.step(seq.row(u));
    const auto good_vals = good.raw_values();

    std::vector<Word3> pi_words(pis.size());
    for (std::size_t i = 0; i < pis.size(); ++i)
      pi_words[i] = broadcast(seq.at(u, i));

    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      Group& group = groups[gi];
      std::vector<Word3>& state = group_state[gi];

      inj_index.attach(group.gate);
      for (std::size_t i = 0; i < pis.size(); ++i) vals[pis[i]] = pi_words[i];
      for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = state[i];
      for (const Injection& inj : group.source)
        vals[inj.node] = sim::force(vals[inj.node], inj.mask, inj.sa1);

      for (const GateRec& g : gates_) {
        const std::span<const NodeId> fanin{flat_fanin_.data() + g.fanin_begin,
                                            g.fanin_count};
        const std::int32_t head = inj_index.head(g.id);
        if (head < 0) {
          fanin_buf.resize(fanin.size());
          for (std::size_t k = 0; k < fanin.size(); ++k)
            fanin_buf[k] = vals[fanin[k]];
          vals[g.id] = fold(g.type, fanin_buf);
        } else {
          fanin_buf.resize(fanin.size());
          for (std::size_t k = 0; k < fanin.size(); ++k)
            fanin_buf[k] = vals[fanin[k]];
          for (std::int32_t link = head; link >= 0;
               link = inj_index.next(link)) {
            const Injection& inj = inj_index.injection(link);
            if (inj.pin != kStemPin)
              fanin_buf[static_cast<std::size_t>(inj.pin)] = sim::force(
                  fanin_buf[static_cast<std::size_t>(inj.pin)], inj.mask,
                  inj.sa1);
          }
          Word3 out = fold(g.type, fanin_buf);
          for (std::int32_t link = head; link >= 0;
               link = inj_index.next(link)) {
            const Injection& inj = inj_index.injection(link);
            if (inj.pin == kStemPin) out = sim::force(out, inj.mask, inj.sa1);
          }
          vals[g.id] = out;
        }
      }

      // Record every line where some lane's faulty value provably differs
      // from the good value.
      for (NodeId node = 0; node < node_count; ++node) {
        const Word3 gv = good_vals[node];
        const Word3 fv = vals[node];
        std::uint64_t diff =
            (fv.one ^ fv.zero) & (gv.one ^ gv.zero) & (fv.one ^ gv.one);
        diff &= group.active;
        while (diff != 0) {
          const unsigned lane = static_cast<unsigned>(std::countr_zero(diff));
          diff &= diff - 1;
          const std::uint32_t ri = group.result_index[lane];
          std::uint8_t& flag = seen[static_cast<std::size_t>(ri) * node_count +
                                    node];
          if (flag == 0) {
            flag = 1;
            result[ri].push_back(node);
          }
        }
      }

      for (std::size_t i = 0; i < ffs.size(); ++i)
        next_state[i] = vals[nl_->node(ffs[i]).fanin[0]];
      for (const Injection& inj : group.latch)
        next_state[ff_index_[inj.node]] =
            sim::force(next_state[ff_index_[inj.node]], inj.mask, inj.sa1);
      state.swap(next_state);

      inj_index.detach();
    }
  }

  for (auto& lines : result) std::sort(lines.begin(), lines.end());
  return result;
}

}  // namespace wbist::fault
