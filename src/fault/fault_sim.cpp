#include "fault/fault_sim.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "sim/good_sim.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace wbist::fault {

using netlist::GateType;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using sim::broadcast;
using sim::TestSequence;
using sim::Val3;
using sim::Word3;

namespace {

struct Injection {
  NodeId node;
  std::int16_t pin;  // kStemPin for output-stem injection
  bool sa1;
  std::uint64_t mask;
};

}  // namespace

/// One word of up to 64 faulty machines simulated together.
struct FaultSimulator::Group {
  std::array<FaultId, 64> ids{};
  std::array<std::uint32_t, 64> result_index{};  // lane -> position in `ids` span
  unsigned count = 0;
  std::uint64_t active = 0;

  std::vector<Injection> source;  // PI / DFF-output stem faults
  std::vector<Injection> latch;   // DFF D-pin faults
  std::vector<Injection> gate;    // logic-gate stem and pin faults
};

FaultSimulator::FaultSimulator(const Netlist& nl, const FaultSet& faults)
    : nl_(&nl), faults_(&faults) {
  if (!nl.finalized())
    throw std::invalid_argument("fault_sim: netlist not finalized");
  gates_.reserve(nl.eval_order().size());
  for (NodeId id : nl.eval_order()) {
    const Node& n = nl.node(id);
    gates_.push_back({id, n.type, static_cast<std::uint32_t>(flat_fanin_.size()),
                      static_cast<std::uint32_t>(n.fanin.size())});
    flat_fanin_.insert(flat_fanin_.end(), n.fanin.begin(), n.fanin.end());
  }
  ff_index_.assign(nl.node_count(), 0);
  const auto ffs = nl.flip_flops();
  for (std::uint32_t i = 0; i < ffs.size(); ++i) ff_index_[ffs[i]] = i;
}

util::WorkerPool& FaultSimulator::pool(unsigned thread_count) const {
  std::lock_guard<std::mutex> lk(pool_mu_);
  // Grow-only: parallel_for handles jobs smaller than the pool, so a pool
  // sized to the largest request ever seen serves every later call without
  // respawning threads (alternating small/large fault lists stay cheap).
  if (!pool_ || pool_->size() < thread_count)
    pool_ = std::make_unique<util::WorkerPool>(thread_count);
  return *pool_;
}

std::vector<FaultSimulator::Group> FaultSimulator::pack_groups(
    std::span<const FaultId> ids) const {
  std::vector<Group> groups;
  groups.reserve((ids.size() + 63) / 64);
  for (std::size_t pos = 0; pos < ids.size(); ++pos) {
    if (pos % 64 == 0) groups.emplace_back();
    Group& g = groups.back();
    const unsigned lane = g.count++;
    g.ids[lane] = ids[pos];
    g.result_index[lane] = static_cast<std::uint32_t>(pos);
    g.active |= std::uint64_t{1} << lane;

    const Fault& f = (*faults_)[ids[pos]];
    const Node& n = nl_->node(f.node);
    const Injection inj{f.node, f.pin, f.stuck_at_one, std::uint64_t{1} << lane};
    if (f.pin == kStemPin) {
      if (n.type == GateType::kInput || n.type == GateType::kDff)
        g.source.push_back(inj);
      else
        g.gate.push_back(inj);
    } else {
      if (n.type == GateType::kDff)
        g.latch.push_back(inj);
      else
        g.gate.push_back(inj);
    }
  }
  return groups;
}

namespace {

/// Scratch per-node chain of gate injections for the group being simulated.
/// head_[node] is an index into links_, or -1. Building and tearing down
/// touches only the injected nodes, so reuse across groups is O(#injections).
class InjectionIndex {
 public:
  explicit InjectionIndex(std::size_t node_count) : head_(node_count, -1) {}

  void attach(const std::vector<Injection>& injections) {
    for (const Injection& inj : injections) {
      links_.push_back({inj, head_[inj.node]});
      head_[inj.node] = static_cast<std::int32_t>(links_.size()) - 1;
      touched_.push_back(inj.node);
    }
  }

  void detach() {
    for (NodeId n : touched_) head_[n] = -1;
    touched_.clear();
    links_.clear();
  }

  std::int32_t head(NodeId node) const { return head_[node]; }
  const Injection& injection(std::int32_t link) const {
    return links_[static_cast<std::size_t>(link)].first;
  }
  std::int32_t next(std::int32_t link) const {
    return links_[static_cast<std::size_t>(link)].second;
  }

 private:
  std::vector<std::int32_t> head_;
  std::vector<std::pair<Injection, std::int32_t>> links_;
  std::vector<NodeId> touched_;
};

Word3 fold(GateType type, std::span<const Word3> in) {
  return sim::eval_gate(type, in);
}

/// Per-thread scratch for one simulated group: node values, flip-flop state
/// planes, fanin staging and the injection chain index. One instance per
/// worker rank; reused across every group that rank simulates.
struct GroupScratch {
  std::vector<Word3> vals;
  std::vector<Word3> state;
  std::vector<Word3> next_state;
  std::vector<Word3> fanin_buf;
  InjectionIndex inj_index;

  GroupScratch(std::size_t node_count, std::size_t ff_count)
      : vals(node_count),
        state(ff_count),
        next_state(ff_count),
        inj_index(node_count) {}
};

/// Evaluate the flattened combinational core once, in topological order,
/// with the group's gate injections applied. The no-injection fast path
/// folds fanin values in place; only injected gates stage a fanin copy.
void eval_core(std::span<const GateRec> gates, const NodeId* flat_fanin,
               const InjectionIndex& inj_index, std::vector<Word3>& vals,
               std::vector<Word3>& fanin_buf) {
  for (const GateRec& g : gates) {
    const std::span<const NodeId> fanin{flat_fanin + g.fanin_begin,
                                        g.fanin_count};
    const std::int32_t head = inj_index.head(g.id);
    Word3 out;
    if (head < 0) [[likely]] {
      switch (g.type) {
        case GateType::kBuf:
          out = vals[fanin[0]];
          break;
        case GateType::kNot:
          out = sim::not3(vals[fanin[0]]);
          break;
        case GateType::kAnd:
        case GateType::kNand: {
          Word3 acc = vals[fanin[0]];
          for (std::size_t k = 1; k < fanin.size(); ++k)
            acc = sim::and3(acc, vals[fanin[k]]);
          out = g.type == GateType::kNand ? sim::not3(acc) : acc;
          break;
        }
        case GateType::kOr:
        case GateType::kNor: {
          Word3 acc = vals[fanin[0]];
          for (std::size_t k = 1; k < fanin.size(); ++k)
            acc = sim::or3(acc, vals[fanin[k]]);
          out = g.type == GateType::kNor ? sim::not3(acc) : acc;
          break;
        }
        default: {
          Word3 acc = vals[fanin[0]];
          for (std::size_t k = 1; k < fanin.size(); ++k)
            acc = sim::xor3(acc, vals[fanin[k]]);
          out = g.type == GateType::kXnor ? sim::not3(acc) : acc;
          break;
        }
      }
    } else {
      // Slow path: apply pin injections on a copy of the fanin values,
      // then stem injections on the gate output.
      fanin_buf.assign(fanin.size(), Word3{});
      for (std::size_t k = 0; k < fanin.size(); ++k)
        fanin_buf[k] = vals[fanin[k]];
      for (std::int32_t link = head; link >= 0; link = inj_index.next(link)) {
        const Injection& inj = inj_index.injection(link);
        if (inj.pin != kStemPin)
          fanin_buf[static_cast<std::size_t>(inj.pin)] = sim::force(
              fanin_buf[static_cast<std::size_t>(inj.pin)], inj.mask, inj.sa1);
      }
      out = fold(g.type, fanin_buf);
      for (std::int32_t link = head; link >= 0; link = inj_index.next(link)) {
        const Injection& inj = inj_index.injection(link);
        if (inj.pin == kStemPin) out = sim::force(out, inj.mask, inj.sa1);
      }
    }
    vals[g.id] = out;
  }
}

}  // namespace

GoodTrace FaultSimulator::make_trace(
    const TestSequence& seq, std::span<const NodeId> observation_points,
    std::size_t max_time_units) const {
  const auto pis = nl_->primary_inputs();
  GoodTrace trace;
  trace.n_inputs = pis.size();
  trace.n_observation_points = observation_points.size();
  trace.observed.assign(nl_->primary_outputs().begin(),
                        nl_->primary_outputs().end());
  trace.observed.insert(trace.observed.end(), observation_points.begin(),
                        observation_points.end());
  if (seq.length() == 0) return trace;
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  trace.length = std::min(seq.length(), max_time_units);
  trace.pi_words.resize(trace.length * pis.size());
  trace.good_obs.resize(trace.length * trace.observed.size());
  sim::GoodSimulator good(*nl_);
  for (std::size_t u = 0; u < trace.length; ++u) {
    good.step(seq.row(u));
    for (std::size_t i = 0; i < pis.size(); ++i)
      trace.pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));
    const auto raw = good.raw_values();
    for (std::size_t k = 0; k < trace.observed.size(); ++k)
      trace.good_obs[u * trace.observed.size() + k] = raw[trace.observed[k]];
  }
  good_sim_runs_.fetch_add(1, std::memory_order_relaxed);
  util::metrics().counter("fault_sim.traces").add(1);
  util::metrics().counter("fault_sim.trace_cycles").add(trace.length);
  return trace;
}

DetectionResult FaultSimulator::run(const TestSequence& seq,
                                    std::span<const FaultId> ids,
                                    const FaultSimOptions& options) const {
  if (ids.empty() || seq.length() == 0) {
    DetectionResult result;
    result.detection_time.assign(ids.size(), DetectionResult::kUndetected);
    return result;
  }
  return run(make_trace(seq, options.observation_points,
                        options.max_time_units),
             ids, options);
}

DetectionResult FaultSimulator::run(const GoodTrace& trace,
                                    std::span<const FaultId> ids,
                                    const FaultSimOptions& options) const {
  const auto pis = nl_->primary_inputs();
  DetectionResult result;
  result.detection_time.assign(ids.size(), DetectionResult::kUndetected);
  if (ids.empty() || trace.length == 0) return result;
  if (trace.n_inputs != pis.size())
    throw std::invalid_argument("fault_sim: trace width != #inputs");
  if (trace.n_observation_points > trace.observed.size())
    throw std::invalid_argument(
        "fault_sim: malformed trace (n_observation_points > observed lines)");
  if (trace.n_observation_points != options.observation_points.size() ||
      !std::equal(options.observation_points.begin(),
                  options.observation_points.end(),
                  trace.observed.end() -
                      static_cast<std::ptrdiff_t>(trace.n_observation_points)))
    throw std::invalid_argument(
        "fault_sim: trace observation points differ from options");

  const std::size_t length = std::min(trace.length, options.max_time_units);
  const std::size_t n_obs = trace.observed.size();
  const NodeId* observed = trace.observed.data();

  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();
  std::vector<std::uint32_t> group_detected(groups.size(), 0);
  // Kernel-cycle accounting, flushed to util::metrics once per call:
  // kernel cycles = eval_core invocations, fault cycles = active lanes
  // summed over those invocations (the word-packed work actually done).
  std::vector<std::uint64_t> group_cycles(groups.size(), 0);
  std::vector<std::uint64_t> group_fault_cycles(groups.size(), 0);
  const util::Timer run_wall;

  const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
    Group& group = groups[gi];
    std::vector<Word3>& vals = s.vals;
    s.inj_index.attach(group.gate);
    for (Word3& w : s.state) w = broadcast(Val3::kX);

    std::uint32_t local_detected = 0;
    std::uint64_t local_cycles = 0;
    std::uint64_t local_fault_cycles = 0;
    for (std::size_t u = 0; u < length && group.active != 0; ++u) {
      ++local_cycles;
      local_fault_cycles +=
          static_cast<std::uint64_t>(std::popcount(group.active));
      // Load sources and apply source (PI / DFF output) stem faults.
      for (std::size_t i = 0; i < pis.size(); ++i)
        vals[pis[i]] = trace.pi_words[u * pis.size() + i];
      for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = s.state[i];
      for (const Injection& inj : group.source)
        vals[inj.node] = sim::force(vals[inj.node], inj.mask, inj.sa1);

      eval_core(gates_, flat_fanin_.data(), s.inj_index, vals, s.fanin_buf);

      // Detection at observed lines.
      std::uint64_t detected = 0;
      for (std::size_t k = 0; k < n_obs; ++k) {
        const Word3 g = trace.good_obs[u * n_obs + k];
        const Word3 f = vals[observed[k]];
        detected |= (f.one ^ f.zero) & (g.one ^ g.zero) & (f.one ^ g.one);
      }
      detected &= group.active;
      while (detected != 0) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(detected));
        detected &= detected - 1;
        group.active &= ~(std::uint64_t{1} << lane);
        result.detection_time[group.result_index[lane]] =
            static_cast<std::int32_t>(u);
        ++local_detected;
      }
      if (group.active == 0) break;

      // Latch flip-flops, applying D-pin faults.
      for (std::size_t i = 0; i < ffs.size(); ++i)
        s.next_state[i] = vals[nl_->node(ffs[i]).fanin[0]];
      for (const Injection& inj : group.latch)
        s.next_state[ff_index_[inj.node]] =
            sim::force(s.next_state[ff_index_[inj.node]], inj.mask, inj.sa1);
      s.state.swap(s.next_state);
    }

    group_detected[gi] = local_detected;
    group_cycles[gi] = local_cycles;
    group_fault_cycles[gi] = local_fault_cycles;
    s.inj_index.detach();
  };

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(options.threads), groups.size()));
  if (n_threads <= 1) {
    GroupScratch scratch(nl_->node_count(), ffs.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      simulate_group(gi, scratch);
  } else {
    util::WorkerPool& wp = pool(n_threads);
    // The grow-only pool may be larger than n_threads; any rank in
    // [0, wp.size()) can claim indices, so scratch is rank-indexed by it.
    std::vector<GroupScratch> scratch;
    scratch.reserve(wp.size());
    for (unsigned r = 0; r < wp.size(); ++r)
      scratch.emplace_back(nl_->node_count(), ffs.size());
    // Per-rank busy time, timed at group granularity (one clock pair per
    // 64-fault group, invisible next to the group's simulation cost).
    std::vector<std::uint64_t> busy_ns(wp.size(), 0);
    const util::Timer parallel_wall;
    wp.parallel_for(groups.size(), [&](std::size_t gi, unsigned rank) {
      const util::Timer t;
      simulate_group(gi, scratch[rank]);
      busy_ns[rank] += static_cast<std::uint64_t>(t.seconds() * 1e9);
    });
    const double wall = parallel_wall.seconds();
    util::MetricsRegistry& reg = util::metrics();
    reg.timer("fault_sim.parallel").add_seconds(wall);
    for (unsigned r = 0; r < wp.size(); ++r) {
      if (busy_ns[r] == 0) continue;
      reg.timer("fault_sim.worker_busy")
          .add_seconds(static_cast<double>(busy_ns[r]) * 1e-9);
      if (wall > 0.0)
        reg.histogram("fault_sim.rank_busy_pct")
            .record(static_cast<std::uint64_t>(
                100.0 * static_cast<double>(busy_ns[r]) * 1e-9 / wall));
    }
  }

  for (const std::uint32_t d : group_detected) result.detected_count += d;

  util::MetricsRegistry& reg = util::metrics();
  reg.timer("fault_sim.run").add_seconds(run_wall.seconds());
  reg.counter("fault_sim.runs").add(1);
  reg.counter("fault_sim.groups").add(groups.size());
  reg.counter("fault_sim.faults_simulated").add(ids.size());
  reg.counter("fault_sim.faults_detected").add(result.detected_count);
  std::uint64_t kernel_cycles = 0, fault_cycles = 0;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    kernel_cycles += group_cycles[gi];
    fault_cycles += group_fault_cycles[gi];
  }
  reg.counter("fault_sim.kernel_cycles").add(kernel_cycles);
  reg.counter("fault_sim.fault_cycles").add(fault_cycles);
  return result;
}

DetectionResult FaultSimulator::run_all(const TestSequence& seq,
                                        const FaultSimOptions& options) const {
  const std::vector<FaultId> ids = faults_->all_ids();
  return run(seq, ids, options);
}

std::vector<std::vector<Val3>> FaultSimulator::observe_final(
    const TestSequence& seq, std::span<const FaultId> ids,
    std::span<const NodeId> nodes, unsigned threads) const {
  const auto pis = nl_->primary_inputs();
  std::vector<std::vector<Val3>> result(
      ids.size(), std::vector<Val3>(nodes.size(), Val3::kX));
  if (ids.empty() || seq.length() == 0) return result;
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();

  std::vector<Word3> pi_words(seq.length() * pis.size());
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < pis.size(); ++i)
      pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));

  const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
    Group& group = groups[gi];
    std::vector<Word3>& vals = s.vals;
    s.inj_index.attach(group.gate);
    for (Word3& w : s.state) w = broadcast(Val3::kX);

    for (std::size_t u = 0; u < seq.length(); ++u) {
      for (std::size_t i = 0; i < pis.size(); ++i)
        vals[pis[i]] = pi_words[u * pis.size() + i];
      for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = s.state[i];
      for (const Injection& inj : group.source)
        vals[inj.node] = sim::force(vals[inj.node], inj.mask, inj.sa1);

      eval_core(gates_, flat_fanin_.data(), s.inj_index, vals, s.fanin_buf);

      if (u + 1 == seq.length()) {
        for (unsigned lane = 0; lane < group.count; ++lane)
          for (std::size_t n = 0; n < nodes.size(); ++n)
            result[group.result_index[lane]][n] =
                sim::lane(vals[nodes[n]], lane);
        break;
      }

      for (std::size_t i = 0; i < ffs.size(); ++i)
        s.next_state[i] = vals[nl_->node(ffs[i]).fanin[0]];
      for (const Injection& inj : group.latch)
        s.next_state[ff_index_[inj.node]] =
            sim::force(s.next_state[ff_index_[inj.node]], inj.mask, inj.sa1);
      s.state.swap(s.next_state);
    }

    s.inj_index.detach();
  };

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(threads), groups.size()));
  if (n_threads <= 1) {
    GroupScratch scratch(nl_->node_count(), ffs.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      simulate_group(gi, scratch);
  } else {
    util::WorkerPool& wp = pool(n_threads);
    std::vector<GroupScratch> scratch;
    scratch.reserve(wp.size());
    for (unsigned r = 0; r < wp.size(); ++r)
      scratch.emplace_back(nl_->node_count(), ffs.size());
    wp.parallel_for(
        groups.size(),
        [&](std::size_t gi, unsigned rank) { simulate_group(gi, scratch[rank]); });
  }
  util::metrics().counter("fault_sim.final_obs_runs").add(1);
  util::metrics().counter("fault_sim.kernel_cycles")
      .add(static_cast<std::uint64_t>(groups.size()) * seq.length());
  return result;
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines(
    const TestSequence& seq, std::span<const FaultId> ids,
    unsigned threads) const {
  const auto pis = nl_->primary_inputs();
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  // A pi-words-only trace: observable_lines never looks at good_obs (it
  // replays the full good-machine value vector internally).
  GoodTrace trace;
  trace.length = seq.length();
  trace.n_inputs = pis.size();
  trace.pi_words.resize(seq.length() * pis.size());
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < pis.size(); ++i)
      trace.pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));
  return observable_lines_impl(trace, ids, threads);
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines(
    const GoodTrace& trace, std::span<const FaultId> ids,
    unsigned threads) const {
  if (trace.length != 0 && trace.n_inputs != nl_->primary_inputs().size())
    throw std::invalid_argument("fault_sim: trace width != #inputs");
  return observable_lines_impl(trace, ids, threads);
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines_impl(
    const GoodTrace& trace, std::span<const FaultId> ids,
    unsigned threads) const {
  std::vector<std::vector<NodeId>> result(ids.size());
  if (ids.empty() || trace.length == 0) return result;

  const auto pis = nl_->primary_inputs();
  const std::size_t node_count = nl_->node_count();
  std::vector<Group> groups = pack_groups(ids);
  const auto ffs = nl_->flip_flops();

  // Per-group persistent faulty state: time is the outer loop here because
  // the good machine's full value vector is needed each cycle.
  std::vector<std::vector<Word3>> group_state(
      groups.size(), std::vector<Word3>(ffs.size(), broadcast(Val3::kX)));

  // Per-fault bitset of already-reported lines, one word-aligned stride per
  // fault so concurrent groups never share a word (O(faults x nodes) *bits*,
  // not bytes).
  const std::size_t words_per_fault = (node_count + 63) / 64;
  std::vector<std::uint64_t> seen(ids.size() * words_per_fault, 0);

  // The time loop is chunked: the good machine advances one block at a time
  // (recording its full value vector per cycle), then every group catches up
  // over the block in parallel. Blocks amortize the per-dispatch pool cost
  // while keeping the good-value buffer small (kBlock x node_count words).
  constexpr std::size_t kBlock = 32;
  std::vector<Word3> good_block(std::min(kBlock, trace.length) * node_count);

  sim::GoodSimulator good(*nl_);
  std::vector<Val3> row(pis.size());

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(threads), groups.size()));
  util::WorkerPool* wp = n_threads > 1 ? &pool(n_threads) : nullptr;
  const unsigned scratch_count = wp ? wp->size() : 1u;
  std::vector<GroupScratch> scratch;
  scratch.reserve(scratch_count);
  for (unsigned r = 0; r < scratch_count; ++r)
    scratch.emplace_back(node_count, ffs.size());

  for (std::size_t u0 = 0; u0 < trace.length; u0 += kBlock) {
    const std::size_t block_len = std::min(kBlock, trace.length - u0);
    for (std::size_t b = 0; b < block_len; ++b) {
      const std::size_t u = u0 + b;
      for (std::size_t i = 0; i < pis.size(); ++i)
        row[i] = sim::lane(trace.pi_words[u * pis.size() + i], 0);
      good.step(row);
      const auto raw = good.raw_values();
      std::copy(raw.begin(), raw.end(), good_block.begin() + b * node_count);
    }

    const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
      Group& group = groups[gi];
      std::vector<Word3>& state = group_state[gi];
      std::vector<Word3>& vals = s.vals;
      s.inj_index.attach(group.gate);

      for (std::size_t b = 0; b < block_len; ++b) {
        const std::size_t u = u0 + b;
        for (std::size_t i = 0; i < pis.size(); ++i)
          vals[pis[i]] = trace.pi_words[u * pis.size() + i];
        for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = state[i];
        for (const Injection& inj : group.source)
          vals[inj.node] = sim::force(vals[inj.node], inj.mask, inj.sa1);

        eval_core(gates_, flat_fanin_.data(), s.inj_index, vals, s.fanin_buf);

        // Record every line where some lane's faulty value provably differs
        // from the good value.
        const Word3* good_vals = good_block.data() + b * node_count;
        for (NodeId node = 0; node < node_count; ++node) {
          const Word3 gv = good_vals[node];
          const Word3 fv = vals[node];
          std::uint64_t diff =
              (fv.one ^ fv.zero) & (gv.one ^ gv.zero) & (fv.one ^ gv.one);
          diff &= group.active;
          while (diff != 0) {
            const unsigned lane =
                static_cast<unsigned>(std::countr_zero(diff));
            diff &= diff - 1;
            const std::uint32_t ri = group.result_index[lane];
            std::uint64_t& word =
                seen[static_cast<std::size_t>(ri) * words_per_fault +
                     node / 64];
            const std::uint64_t bit = std::uint64_t{1} << (node % 64);
            if ((word & bit) == 0) {
              word |= bit;
              result[ri].push_back(node);
            }
          }
        }

        for (std::size_t i = 0; i < ffs.size(); ++i)
          s.next_state[i] = vals[nl_->node(ffs[i]).fanin[0]];
        for (const Injection& inj : group.latch)
          s.next_state[ff_index_[inj.node]] =
              sim::force(s.next_state[ff_index_[inj.node]], inj.mask, inj.sa1);
        state.swap(s.next_state);
      }

      s.inj_index.detach();
    };

    if (wp == nullptr) {
      for (std::size_t gi = 0; gi < groups.size(); ++gi)
        simulate_group(gi, scratch[0]);
    } else {
      wp->parallel_for(groups.size(), [&](std::size_t gi, unsigned rank) {
        simulate_group(gi, scratch[rank]);
      });
    }
  }
  good_sim_runs_.fetch_add(1, std::memory_order_relaxed);

  util::MetricsRegistry& reg = util::metrics();
  reg.counter("fault_sim.obs_runs").add(1);
  reg.counter("fault_sim.obs_faults").add(ids.size());
  reg.counter("fault_sim.trace_cycles").add(trace.length);
  reg.counter("fault_sim.kernel_cycles")
      .add(static_cast<std::uint64_t>(groups.size()) * trace.length);

  for (auto& lines : result) std::sort(lines.begin(), lines.end());
  return result;
}

}  // namespace wbist::fault
