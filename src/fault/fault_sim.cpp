#include "fault/fault_sim.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <tuple>

#include "sim/good_sim.h"
#include "sim/word_block.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace wbist::fault {

using netlist::GateType;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using sim::broadcast;
using sim::TestSequence;
using sim::Val3;
using sim::Word3;

/// One block of up to 64 * kernel.words faulty machines simulated together.
/// Lane l lives at bit (l % 64) of plane word (l / 64).
struct FaultSimulator::Group {
  std::vector<FaultId> ids;
  std::vector<std::uint32_t> result_index;  // lane -> position in `ids` span
  unsigned count = 0;
  std::array<std::uint64_t, sim::kMaxBlockWords> active{};

  std::vector<sim::Injection> source;  // PI / DFF-output stem faults
  std::vector<sim::Injection> latch;   // DFF D-pin faults
  std::vector<sim::Injection> gate;    // logic-gate stem and pin faults

  /// Lane -> cone root (the fault's node: every divergence from the good
  /// machine that lane can ever produce lies inside cones.cone(root)).
  std::vector<NodeId> roots;
  /// Activation probes, one per lane: `node` is the net whose good value
  /// deciding the stuck-at force — when the good machine already carries the
  /// forced value there (definite binary, equal), the lane's injection is a
  /// provable no-op this cycle. `pin` is unused.
  std::vector<sim::Injection> activation;

  // Cone-restricted walk data, (re)built by build_cone() from the active
  // lanes' cones. Empty while cone restriction is off.
  std::vector<std::uint64_t> cone;          // union bitset over NodeIds
  std::vector<sim::GateRec> cone_gates;     // in-cone gates, eval order
  std::vector<std::uint64_t> frontier;      // out-of-cone non-PI fanins, bitset
  std::vector<std::uint32_t> cone_pis;      // needed primary-input indices
  std::vector<std::uint32_t> cone_ffs;      // in-cone flip-flop indices
  std::vector<std::uint32_t> obs_idx;       // in-cone observed-line indices
  std::uint64_t rebuild_lanes = 0;          // live lanes at the last build

  // Cross-segment carry, used only by segmented runs (fault dropping over
  // sequences longer than one segment): the flip-flop state planes at the
  // last segment boundary plus the gating flags the next segment resumes
  // with. saved_state mirrors GroupScratch::state (ff_count x stride).
  std::vector<std::uint64_t> saved_state;
  bool clean = true;        // live lanes' state provably equals the good one
  bool state_stale = false; // saved_state predates clean-skipped cycles
  std::size_t next_clean_check = 0;
  std::size_t clean_check_interval = 1;

  bool any_active(unsigned words) const {
    for (unsigned w = 0; w < words; ++w)
      if (active[w] != 0) return true;
    return false;
  }

  std::uint64_t active_lanes(unsigned words) const {
    std::uint64_t n = 0;
    for (unsigned w = 0; w < words; ++w)
      n += static_cast<std::uint64_t>(std::popcount(active[w]));
    return n;
  }
};

FaultSimulator::FaultSimulator(const Netlist& nl, const FaultSet& faults,
                               const sim::Kernel* kernel)
    : FaultSimulator(nl, faults, std::make_unique<netlist::FanoutCones>(nl),
                     kernel) {}

FaultSimulator::FaultSimulator(const Netlist& nl, const FaultSet& faults,
                               const netlist::FanoutCones& cones,
                               const sim::Kernel* kernel)
    : FaultSimulator(nl, faults, nullptr, kernel) {
  cones_ = &cones;
}

FaultSimulator::FaultSimulator(const Netlist& nl, const FaultSet& faults,
                               std::unique_ptr<netlist::FanoutCones> cones,
                               const sim::Kernel* kernel)
    : nl_(&nl),
      faults_(&faults),
      kernel_(kernel != nullptr ? kernel : &sim::active_kernel()),
      owned_cones_(std::move(cones)),
      cones_(owned_cones_.get()) {
  if (!nl.finalized())
    throw std::invalid_argument("fault_sim: netlist not finalized");
  gates_.reserve(nl.eval_order().size());
  for (NodeId id : nl.eval_order()) {
    const Node& n = nl.node(id);
    gates_.push_back({id, n.type, static_cast<std::uint32_t>(flat_fanin_.size()),
                      static_cast<std::uint32_t>(n.fanin.size())});
    flat_fanin_.insert(flat_fanin_.end(), n.fanin.begin(), n.fanin.end());
    max_fanin_ = std::max(max_fanin_, n.fanin.size());
  }
  ff_index_.assign(nl.node_count(), 0);
  const auto ffs = nl.flip_flops();
  ff_dnet_.reserve(ffs.size());
  for (std::uint32_t i = 0; i < ffs.size(); ++i) {
    ff_index_[ffs[i]] = i;
    ff_dnet_.push_back(nl.node(ffs[i]).fanin[0]);
  }
}

util::WorkerPool& FaultSimulator::pool(unsigned thread_count) const {
  std::lock_guard<std::mutex> lk(pool_mu_);
  // Grow-only: parallel_for handles jobs smaller than the pool, so a pool
  // sized to the largest request ever seen serves every later call without
  // respawning threads (alternating small/large fault lists stay cheap).
  if (!pool_ || pool_->size() < thread_count)
    pool_ = std::make_unique<util::WorkerPool>(thread_count);
  return *pool_;
}

std::vector<FaultSimulator::Group> FaultSimulator::pack_groups(
    std::span<const FaultId> ids, bool locality) const {
  const unsigned lanes_per_group = 64 * kernel_->words;

  // Packing order. Lanes are independent machines, so any permutation is
  // bit-identical in the results (result_index keeps each lane tied to its
  // position in `ids`); locality packing sorts faults so that cones opening
  // at nearby gates land in the same group and the group's cone union stays
  // close to its largest member instead of approaching the whole circuit.
  std::vector<std::uint32_t> order(ids.size());
  for (std::uint32_t k = 0; k < order.size(); ++k) order[k] = k;
  if (locality) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       const Fault& fa = (*faults_)[ids[a]];
                       const Fault& fb = (*faults_)[ids[b]];
                       const auto ka = std::make_tuple(
                           cones_->first_gate_pos(fa.node),
                           cones_->popcount(fa.node), fa.node, fa.pin,
                           fa.stuck_at_one);
                       const auto kb = std::make_tuple(
                           cones_->first_gate_pos(fb.node),
                           cones_->popcount(fb.node), fb.node, fb.pin,
                           fb.stuck_at_one);
                       return ka < kb;
                     });
  }

  std::vector<Group> groups;
  groups.reserve((ids.size() + lanes_per_group - 1) / lanes_per_group);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::uint32_t pos = order[k];
    if (k % lanes_per_group == 0) {
      groups.emplace_back();
      groups.back().ids.reserve(lanes_per_group);
      groups.back().result_index.reserve(lanes_per_group);
      groups.back().roots.reserve(lanes_per_group);
      groups.back().activation.reserve(lanes_per_group);
    }
    Group& g = groups.back();
    const unsigned lane = g.count++;
    const std::uint16_t word = static_cast<std::uint16_t>(lane / 64);
    const std::uint64_t mask = std::uint64_t{1} << (lane % 64);
    g.ids.push_back(ids[pos]);
    g.result_index.push_back(pos);
    g.active[word] |= mask;

    const Fault& f = (*faults_)[ids[pos]];
    const Node& n = nl_->node(f.node);
    const sim::Injection inj{f.node, f.pin, f.stuck_at_one, word, mask};
    g.roots.push_back(f.node);
    // The activation probe watches the net the stuck-at value is forced
    // onto: the node itself for stem faults, the driving signal for pin
    // faults (including the D pin of a flip-flop).
    const NodeId forced_net =
        f.pin == kStemPin ? f.node
                          : n.fanin[static_cast<std::size_t>(f.pin)];
    g.activation.push_back({forced_net, 0, f.stuck_at_one, word, mask});
    if (f.pin == kStemPin) {
      if (n.type == GateType::kInput || n.type == GateType::kDff)
        g.source.push_back(inj);
      else
        g.gate.push_back(inj);
    } else {
      if (n.type == GateType::kDff)
        g.latch.push_back(inj);
      else
        g.gate.push_back(inj);
    }
  }
  return groups;
}

namespace {

/// Widen one broadcast Word3 into a slot of `words` plane words.
inline void splat(std::uint64_t* slot, unsigned words, Word3 w) {
  for (unsigned k = 0; k < words; ++k) {
    slot[k] = w.one;
    slot[words + k] = w.zero;
  }
}

/// Stuck-at injection on one plane word of a slot.
inline void force_slot(std::uint64_t* slot, unsigned words, unsigned word,
                       std::uint64_t mask, bool sa1) {
  if (sa1) {
    slot[word] |= mask;
    slot[words + word] &= ~mask;
  } else {
    slot[word] &= ~mask;
    slot[words + word] |= mask;
  }
}

/// Extract machine `lane` of a slot as a scalar value.
inline Val3 lane_val(const std::uint64_t* slot, unsigned words,
                     unsigned lane) {
  const Word3 w{slot[lane / 64], slot[words + lane / 64]};
  return sim::lane(w, lane % 64);
}

/// Per-thread scratch for one simulated group: node value planes, flip-flop
/// state planes, fanin staging and the injection chain index. One instance
/// per worker rank; reused across every group that rank simulates. All
/// buffers are flat plane arrays with `stride` words per value slot.
struct GroupScratch {
  std::vector<std::uint64_t> vals;
  std::vector<std::uint64_t> state;
  std::vector<std::uint64_t> next_state;
  std::vector<std::uint64_t> fanin_buf;
  std::vector<std::uint64_t> changed;  // node bitset: gap-accumulated diffs
  sim::InjectionIndex inj_index;

  GroupScratch(std::size_t node_count, std::size_t ff_count,
               std::size_t stride, std::size_t max_fanin)
      : vals(node_count * stride),
        state(ff_count * stride),
        next_state(ff_count * stride),
        fanin_buf(max_fanin * stride),
        changed((node_count + 63) / 64),
        inj_index(node_count) {}

  /// All-X state: both planes all-ones.
  void reset_state() { std::fill(state.begin(), state.end(), ~std::uint64_t{0}); }
};

}  // namespace

GoodTrace FaultSimulator::make_trace(
    const TestSequence& seq, std::span<const NodeId> observation_points,
    std::size_t max_time_units) const {
  const auto pis = nl_->primary_inputs();
  GoodTrace trace;
  trace.n_inputs = pis.size();
  trace.n_observation_points = observation_points.size();
  trace.observed.assign(nl_->primary_outputs().begin(),
                        nl_->primary_outputs().end());
  trace.observed.insert(trace.observed.end(), observation_points.begin(),
                        observation_points.end());
  if (seq.length() == 0) return trace;
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  trace.length = std::min(seq.length(), max_time_units);
  util::TraceSpan span("fault_sim.make_trace",
                       util::TraceArg("cycles", trace.length));
  trace.pi_words.resize(trace.length * pis.size());
  trace.good_obs.resize(trace.length * trace.observed.size());
  trace.full = sim::FullTrace(nl_->node_count());
  sim::GoodSimulator good(*nl_);
  for (std::size_t u = 0; u < trace.length; ++u) {
    good.step(seq.row(u));
    for (std::size_t i = 0; i < pis.size(); ++i)
      trace.pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));
    const auto raw = good.raw_values();
    for (std::size_t k = 0; k < trace.observed.size(); ++k)
      trace.good_obs[u * trace.observed.size() + k] = raw[trace.observed[k]];
    trace.full.append(raw);
  }
  good_sim_runs_.fetch_add(1, std::memory_order_relaxed);
  util::metrics().counter("fault_sim.traces").add(1);
  util::metrics().counter("fault_sim.trace_cycles").add(trace.length);
  return trace;
}

DetectionResult FaultSimulator::run(const TestSequence& seq,
                                    std::span<const FaultId> ids,
                                    const FaultSimOptions& options) const {
  if (ids.empty() || seq.length() == 0) {
    DetectionResult result;
    result.detection_time.assign(ids.size(), DetectionResult::kUndetected);
    result.detecting_line.assign(ids.size(), netlist::kNoNode);
    return result;
  }
  return run(make_trace(seq, options.observation_points,
                        options.max_time_units),
             ids, options);
}

DetectionResult FaultSimulator::run(const GoodTrace& trace,
                                    std::span<const FaultId> ids,
                                    const FaultSimOptions& options) const {
  const auto pis = nl_->primary_inputs();
  DetectionResult result;
  result.detection_time.assign(ids.size(), DetectionResult::kUndetected);
  result.detecting_line.assign(ids.size(), netlist::kNoNode);
  if (ids.empty() || trace.length == 0) return result;
  if (trace.n_inputs != pis.size())
    throw std::invalid_argument("fault_sim: trace width != #inputs");
  if (trace.n_observation_points > trace.observed.size())
    throw std::invalid_argument(
        "fault_sim: malformed trace (n_observation_points > observed lines)");
  if (trace.n_observation_points != options.observation_points.size() ||
      !std::equal(options.observation_points.begin(),
                  options.observation_points.end(),
                  trace.observed.end() -
                      static_cast<std::ptrdiff_t>(trace.n_observation_points)))
    throw std::invalid_argument(
        "fault_sim: trace observation points differ from options");

  const std::size_t length = std::min(trace.length, options.max_time_units);
  const std::size_t n_obs = trace.observed.size();
  const NodeId* observed = trace.observed.data();
  const unsigned words = kernel_->words;
  const std::size_t stride = sim::block_stride(words);

  // The cone and gating levers read fault-free values of arbitrary nodes
  // from the trace's full recording; hand-built traces without one (or with
  // one from a different circuit) fall back to the plain full walk.
  const bool has_full = !trace.full.empty() &&
                        trace.full.length() >= length &&
                        trace.full.node_count() == nl_->node_count();
  const bool use_cones = options.cone_restriction && has_full;
  const bool use_gating = options.activity_gating && has_full;
  const bool use_drop = options.fault_dropping;
  if ((options.cone_restriction || options.activity_gating) && !has_full)
    util::metrics().counter("fault_sim.full_trace_fallbacks").add(1);

  std::vector<Group> groups = pack_groups(ids, options.locality_packing);
  const auto ffs = nl_->flip_flops();
  const std::size_t cwords = cones_->words();

  // Identity index lists for the unrestricted walk, so the cycle loop below
  // iterates the same spans whether a cone union or the whole circuit is in
  // play.
  std::vector<std::uint32_t> all_ffs(ffs.size());
  for (std::uint32_t i = 0; i < all_ffs.size(); ++i) all_ffs[i] = i;
  std::vector<std::uint32_t> all_obs(n_obs);
  for (std::uint32_t k = 0; k < all_obs.size(); ++k) all_obs[k] = k;

  // (Re)build a group's cone-restricted walk data from its live lanes: the
  // union bitset, the in-cone gates (evaluation order preserved), the
  // in-cone flip-flops and observed lines, and the frontier — every
  // out-of-cone non-input signal the cone reads. A consumer of a cone node
  // is itself in the cone (the cone is a fanout closure), so out-of-cone
  // values are bit-identical to the good machine at every cycle and the
  // frontier can be splat from the full recording.
  const auto build_cone = [&](Group& g) {
    g.cone.assign(cwords, 0);
    for (unsigned lane = 0; lane < g.count; ++lane) {
      if (((g.active[lane / 64] >> (lane % 64)) & 1) == 0) continue;
      const auto root = cones_->cone(g.roots[lane]);
      for (std::size_t w = 0; w < cwords; ++w) g.cone[w] |= root[w];
    }
    const auto in_cone = [&](NodeId n) {
      return (g.cone[n / 64] >> (n % 64)) & 1;
    };
    g.cone_gates.clear();
    for (const sim::GateRec& rec : gates_)
      if (in_cone(rec.id)) g.cone_gates.push_back(rec);
    g.cone_ffs.clear();
    for (std::uint32_t i = 0; i < ffs.size(); ++i)
      if (in_cone(ffs[i])) g.cone_ffs.push_back(i);
    g.obs_idx.clear();
    for (std::uint32_t k = 0; k < n_obs; ++k)
      if (in_cone(observed[k])) g.obs_idx.push_back(k);
    // Frontier: out-of-cone signals the walk reads, kept as a node bitset so
    // the cycle loop can AND it against the changed-node masks. Primary
    // inputs are split out into cone_pis (in-cone roots plus every PI a cone
    // gate reads — the cone closure only goes downstream, so a cone gate may
    // well read an out-of-cone PI): they are splat from pi_words, not the
    // full recording, exactly like the unrestricted walk splats all PIs.
    g.frontier.assign(cwords, 0);
    std::vector<std::uint64_t> pi_need(cwords, 0);
    const auto add_frontier = [&](NodeId n) {
      if (nl_->node(n).type == GateType::kInput) {
        pi_need[n / 64] |= std::uint64_t{1} << (n % 64);
        return;
      }
      if (in_cone(n)) return;
      g.frontier[n / 64] |= std::uint64_t{1} << (n % 64);
    };
    for (const sim::GateRec& rec : g.cone_gates)
      for (std::uint32_t j = 0; j < rec.fanin_count; ++j)
        add_frontier(flat_fanin_[rec.fanin_begin + j]);
    for (const std::uint32_t i : g.cone_ffs) add_frontier(ff_dnet_[i]);
    g.cone_pis.clear();
    for (std::uint32_t i = 0; i < pis.size(); ++i) {
      const NodeId pi = pis[i];
      if (in_cone(pi) || ((pi_need[pi / 64] >> (pi % 64)) & 1) != 0)
        g.cone_pis.push_back(i);
    }
    g.rebuild_lanes = g.active_lanes(words);
  };
  if (use_cones)
    for (Group& g : groups) build_cone(g);

  // Per-cycle changed-node masks: bit n of row u is set when node n's good
  // value differs between cycles u-1 and u. The frontier splat below uses
  // them to rewrite only the frontier slots whose broadcast value actually
  // changed since the group's previously walked cycle — unchanged slots
  // still hold the identical value, so skipping them is bit-identical.
  // Row 0 is all-ones (no predecessor), though a group's first walked cycle
  // always splats the full frontier anyway.
  std::vector<std::uint64_t> full_diff;
  if (use_cones) {
    full_diff.assign(length * cwords, ~std::uint64_t{0});
    for (std::size_t u = 1; u < length; ++u) {
      const auto prev = trace.full.planes(u - 1);
      const auto cur = trace.full.planes(u);
      std::uint64_t* row = full_diff.data() + u * cwords;
      for (std::size_t w = 0; w < cwords; ++w)
        row[w] = (cur[w] ^ prev[w]) | (cur[cwords + w] ^ prev[cwords + w]);
    }
  }

  std::vector<std::uint32_t> group_detected(groups.size(), 0);
  // Kernel-cycle accounting, flushed to util::metrics once per call:
  // kernel cycles = eval_core invocations, fault cycles = active lanes
  // summed over those invocations (the word-packed work actually done),
  // gates evaluated = gates handed to eval_core summed over invocations,
  // cycles skipped = group-cycles the gating lever proved inert.
  std::vector<std::uint64_t> group_cycles(groups.size(), 0);
  std::vector<std::uint64_t> group_fault_cycles(groups.size(), 0);
  std::vector<std::uint64_t> group_gates(groups.size(), 0);
  std::vector<std::uint64_t> group_skipped(groups.size(), 0);
  std::vector<std::uint8_t> group_retired(groups.size(), 0);
  const util::Timer run_wall;
  util::TraceSpan run_span("fault_sim.run", util::TraceArg("faults", ids.size()),
                           util::TraceArg("groups", groups.size()),
                           util::TraceArg("cycles", length));

  // Segment bounds for the current dispatch (the whole sequence unless the
  // dropping lever segments the run to repack surviving lanes — see the
  // driver loop below). Captured by reference in simulate_group.
  std::size_t seg_begin = 0;
  std::size_t seg_end = length;
  const std::size_t ff_planes = ffs.size() * stride;

  const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
    Group& group = groups[gi];
    if (seg_begin > 0 && use_drop && !group.any_active(words)) return;
    util::TraceSpan group_span(
        "fault_sim.group", util::TraceArg("group", gi),
        util::TraceArg("lanes", group.count),
        util::TraceArg("walk_gates", static_cast<std::uint64_t>(
                                         use_cones ? group.cone_gates.size()
                                                   : gates_.size())));
    std::uint64_t* vals = s.vals.data();
    s.inj_index.attach(group.gate);
    if (seg_begin == 0)
      s.reset_state();
    else
      std::copy_n(group.saved_state.data(), ff_planes, s.state.data());

    std::span<const std::uint32_t> ff_list = use_cones ? group.cone_ffs : all_ffs;
    std::span<const std::uint32_t> obs_list = use_cones ? group.obs_idx : all_obs;
    std::span<const sim::GateRec> walk_gates =
        use_cones ? std::span<const sim::GateRec>(group.cone_gates)
                  : std::span<const sim::GateRec>(gates_);

    std::uint32_t local_detected = 0;
    std::uint64_t local_cycles = 0;
    std::uint64_t local_fault_cycles = 0;
    std::uint64_t local_gates = 0;
    std::uint64_t local_skipped = 0;
    // Gating flags resume from the previous segment; at cycle 0 the group
    // defaults apply (the all-X start state equals the good machine's, so
    // every group starts clean: gating may skip from the very first cycle).
    bool clean = group.clean;
    bool state_stale = group.state_stale;
    // Cycle of the group's last kernel walk, or kNoWalk before the first
    // (and after a cone rebuild, whose new frontier slots may hold this
    // group's own faulty values): frontier slots still carry the broadcast
    // good values of that cycle, so only nodes the changed masks flag over
    // (last_walk, u] need re-splatting. Never carried across segments —
    // another group reused the scratch in between.
    constexpr std::size_t kNoWalk = std::numeric_limits<std::size_t>::max();
    std::size_t last_walk = kNoWalk;
    // Clean-check backoff state (see the use_gating block after the latch).
    constexpr std::size_t kMaxCleanCheckInterval = 64;
    std::size_t next_clean_check = group.next_clean_check;
    std::size_t clean_check_interval = group.clean_check_interval;
    for (std::size_t u = seg_begin;
         u < seg_end && (!use_drop || group.any_active(words)); ++u) {
      if (use_gating && clean) {
        // Clean group: the live lanes' state planes equal the good
        // machine's. If additionally no live lane's injection is activated
        // (the good machine already carries every forced value), the whole
        // cycle — evaluation, detection, latching — is a provable no-op.
        bool activated = false;
        for (const sim::Injection& a : group.activation) {
          if ((a.mask & group.active[a.word]) == 0) continue;
          const Word3 gv = trace.full.value(u, a.node);
          const std::uint64_t want_one = a.sa1 ? ~std::uint64_t{0} : 0;
          if (gv.one != want_one || gv.zero != ~want_one) {
            activated = true;
            break;
          }
        }
        if (!activated) {
          ++local_skipped;
          state_stale = true;
          continue;
        }
      }

      ++local_cycles;
      local_fault_cycles += group.active_lanes(words);
      local_gates += walk_gates.size();

      if (state_stale) {
        // Skipped cycles froze the stored state while the good machine kept
        // evolving. The group provably tracked the good machine throughout,
        // so its present state is the good state this cycle.
        for (const std::uint32_t i : ff_list)
          splat(s.state.data() + i * stride, words,
                trace.full.value(u, ffs[i]));
        state_stale = false;
      }

      // Load sources and apply source (PI / DFF output) stem faults.
      if (use_cones) {
        for (const std::uint32_t i : group.cone_pis)
          splat(vals + pis[i] * stride, words,
                trace.pi_words[u * pis.size() + i]);
      } else {
        for (std::size_t i = 0; i < pis.size(); ++i)
          splat(vals + pis[i] * stride, words,
                trace.pi_words[u * pis.size() + i]);
      }
      for (const std::uint32_t i : ff_list)
        std::memcpy(vals + ffs[i] * stride, s.state.data() + i * stride,
                    stride * sizeof(std::uint64_t));
      if (use_cones) {
        // Frontier refresh. After the group's first walk the frontier slots
        // still hold the broadcast values of the previously walked cycle, so
        // only nodes the changed masks flag over (last_walk, u] need
        // re-splatting.
        const std::uint64_t* ch = nullptr;  // null: splat the whole frontier
        if (last_walk != kNoWalk) {
          if (u == last_walk + 1) {
            ch = full_diff.data() + u * cwords;
          } else {
            // Gated-out cycles sit between two walks: accumulate their
            // diffs so anything that changed at any point in the gap gets
            // refreshed.
            std::uint64_t* acc = s.changed.data();
            std::copy_n(full_diff.data() + (last_walk + 1) * cwords, cwords,
                        acc);
            for (std::size_t v = last_walk + 2; v <= u; ++v) {
              const std::uint64_t* row = full_diff.data() + v * cwords;
              for (std::size_t w = 0; w < cwords; ++w) acc[w] |= row[w];
            }
            ch = acc;
          }
        }
        for (std::size_t w = 0; w < cwords; ++w) {
          std::uint64_t bits = group.frontier[w];
          if (ch != nullptr) bits &= ch[w];
          while (bits != 0) {
            const NodeId n = static_cast<NodeId>(
                w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
            bits &= bits - 1;
            splat(vals + n * stride, words, trace.full.value(u, n));
          }
        }
        last_walk = u;
      }
      for (const sim::Injection& inj : group.source)
        force_slot(vals + inj.node * stride, words, inj.word, inj.mask,
                   inj.sa1);

      kernel_->eval_core(walk_gates, flat_fanin_.data(), s.inj_index, vals,
                         s.fanin_buf.data());

      // Detection at observed lines. Out-of-cone lines can never differ
      // from the good machine on a live lane, so restricting the scan to
      // the cone's observed lines is bit-identical.
      std::array<std::uint64_t, sim::kMaxBlockWords> detected{};
      for (const std::uint32_t k : obs_list) {
        const Word3 g = trace.good_obs[u * n_obs + k];
        const std::uint64_t g_binary = g.one ^ g.zero;
        if (g_binary == 0) continue;  // X in the good machine: undetectable
        const std::uint64_t* f = vals + observed[k] * stride;
        for (unsigned w = 0; w < words; ++w)
          detected[w] |=
              (f[w] ^ f[words + w]) & g_binary & (f[w] ^ g.one);
      }
      for (unsigned w = 0; w < words; ++w) {
        std::uint64_t d = detected[w] & group.active[w];
        while (d != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(d));
          d &= d - 1;
          group.active[w] &= ~(std::uint64_t{1} << bit);
          const std::uint32_t ri = group.result_index[w * 64 + bit];
          result.detection_time[ri] = static_cast<std::int32_t>(u);
          // Provenance metadata: the first observed line that exposes this
          // lane this cycle (obs_list ascends, and out-of-cone lines carry
          // no difference, so the cone scan reports the same line as a full
          // scan would). Recomputed only on detection (at most once per
          // fault), so the steady-state cycle loop is untouched.
          for (const std::uint32_t k : obs_list) {
            const Word3 g = trace.good_obs[u * n_obs + k];
            const std::uint64_t g_binary = g.one ^ g.zero;
            const std::uint64_t* f = vals + observed[k] * stride;
            if ((((f[w] ^ f[words + w]) & g_binary & (f[w] ^ g.one)) >> bit) &
                1) {
              result.detecting_line[ri] = observed[k];
              break;
            }
          }
          ++local_detected;
        }
      }
      if (!group.any_active(words)) {
        if (use_drop) {
          if (u + 1 < length) group_retired[gi] = 1;
          break;
        }
      } else if (use_cones &&
                 group.active_lanes(words) * 2 <= group.rebuild_lanes) {
        // Enough lanes retired since the last build: shrink the union to
        // the surviving cones. At most log2(lanes) rebuilds per group.
        build_cone(group);
        ff_list = group.cone_ffs;
        obs_list = group.obs_idx;
        walk_gates = group.cone_gates;
        // The shrunken union may expose frontier nodes that were inside the
        // old cone and thus hold this group's faulty values: force a full
        // frontier splat on the next walk.
        last_walk = kNoWalk;
      }

      // Latch flip-flops, applying D-pin faults.
      for (const std::uint32_t i : ff_list)
        std::memcpy(s.next_state.data() + i * stride,
                    vals + ff_dnet_[i] * stride,
                    stride * sizeof(std::uint64_t));
      for (const sim::Injection& inj : group.latch)
        force_slot(s.next_state.data() + ff_index_[inj.node] * stride, words,
                   inj.word, inj.mask, inj.sa1);
      s.state.swap(s.next_state);

      if (use_gating && u >= next_clean_check) {
        // A group is clean again when every live lane's latched state equals
        // the good machine's next state (the good value of each D signal
        // this cycle). A nearly-clean group makes this scan walk deep into
        // ff_list every cycle without ever proving cleanliness, so failed
        // checks back off exponentially (capped); skipping a check only
        // leaves `clean` conservatively false, which never changes results.
        clean = true;
        for (const std::uint32_t i : ff_list) {
          const Word3 gv = trace.full.value(u, ff_dnet_[i]);
          const std::uint64_t* st = s.state.data() + i * stride;
          for (unsigned w = 0; w < words; ++w)
            if ((((st[w] ^ gv.one) | (st[words + w] ^ gv.zero)) &
                 group.active[w]) != 0) {
              clean = false;
              break;
            }
          if (!clean) break;
        }
        if (clean) {
          clean_check_interval = 1;
        } else {
          next_clean_check = u + clean_check_interval;
          clean_check_interval = std::min<std::size_t>(
              clean_check_interval * 2, kMaxCleanCheckInterval);
        }
      }
    }

    group.clean = clean;
    group.state_stale = state_stale;
    group.next_clean_check = next_clean_check;
    group.clean_check_interval = clean_check_interval;
    if (seg_end < length) {
      group.saved_state.resize(ff_planes);
      std::copy_n(s.state.data(), ff_planes, group.saved_state.data());
    }
    group_detected[gi] += local_detected;
    group_cycles[gi] += local_cycles;
    group_fault_cycles[gi] += local_fault_cycles;
    group_gates[gi] += local_gates;
    group_skipped[gi] += local_skipped;
    s.inj_index.detach();
  };

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(options.threads), groups.size()));

  // One dispatch of every current group over [seg_begin, seg_end).
  const auto dispatch_segment = [&]() {
    if (n_threads <= 1) {
      GroupScratch scratch(nl_->node_count(), ffs.size(), stride, max_fanin_);
      for (std::size_t gi = 0; gi < groups.size(); ++gi)
        simulate_group(gi, scratch);
      return;
    }
    util::WorkerPool& wp = pool(n_threads);
    // The grow-only pool may be larger than n_threads; any rank in
    // [0, wp.size()) can claim indices, so scratch is rank-indexed by it.
    std::vector<GroupScratch> scratch;
    scratch.reserve(wp.size());
    for (unsigned r = 0; r < wp.size(); ++r)
      scratch.emplace_back(nl_->node_count(), ffs.size(), stride, max_fanin_);
    // Per-rank busy time, timed at group granularity (one clock pair per
    // fault group, invisible next to the group's simulation cost).
    std::vector<std::uint64_t> busy_ns(wp.size(), 0);
    const util::Timer parallel_wall;
    wp.parallel_for(groups.size(), [&](std::size_t gi, unsigned rank) {
      const util::Timer t;
      simulate_group(gi, scratch[rank]);
      busy_ns[rank] += static_cast<std::uint64_t>(t.seconds() * 1e9);
    });
    const double wall = parallel_wall.seconds();
    util::MetricsRegistry& reg = util::metrics();
    reg.timer("fault_sim.parallel").add_seconds(wall);
    for (unsigned r = 0; r < wp.size(); ++r) {
      if (busy_ns[r] == 0) continue;
      reg.timer("fault_sim.worker_busy")
          .add_seconds(static_cast<double>(busy_ns[r]) * 1e-9);
      if (wall > 0.0)
        reg.histogram("fault_sim.rank_busy_pct")
            .record(static_cast<std::uint64_t>(
                100.0 * static_cast<double>(busy_ns[r]) * 1e-9 / wall));
    }
  };

  // Run totals, folded from the per-group arrays whenever the group list is
  // about to change size (repack) and once at the end.
  std::uint64_t kernel_cycles = 0, fault_cycles = 0;
  std::uint64_t gates_evaluated = 0, cycles_skipped = 0, retired = 0;
  std::uint64_t repacks = 0;
  const auto fold_groups = [&]() {
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      result.detected_count += group_detected[gi];
      kernel_cycles += group_cycles[gi];
      fault_cycles += group_fault_cycles[gi];
      gates_evaluated += group_gates[gi];
      cycles_skipped += group_skipped[gi];
      retired += group_retired[gi];
    }
    group_detected.assign(groups.size(), 0);
    group_cycles.assign(groups.size(), 0);
    group_fault_cycles.assign(groups.size(), 0);
    group_gates.assign(groups.size(), 0);
    group_skipped.assign(groups.size(), 0);
    group_retired.assign(groups.size(), 0);
  };

  // Repack every surviving lane into fresh (locality-packed) groups,
  // transplanting each lane's flip-flop state column from its old group.
  // Detection so far fixes which lanes survive, so the new grouping — like
  // any packing permutation of independent lanes — is bit-identical; fewer,
  // denser groups mean fewer kernel walks for the remaining cycles.
  const auto repack_survivors = [&]() {
    std::vector<FaultId> sub;
    std::vector<std::uint32_t> orig;
    for (std::uint32_t p = 0; p < ids.size(); ++p)
      if (result.detection_time[p] == DetectionResult::kUndetected) {
        sub.push_back(ids[p]);
        orig.push_back(p);
      }
    std::vector<std::uint32_t> src_group(ids.size(), 0);
    std::vector<std::uint32_t> src_lane(ids.size(), 0);
    for (std::uint32_t gi = 0; gi < groups.size(); ++gi)
      for (std::uint32_t l = 0; l < groups[gi].count; ++l) {
        src_group[groups[gi].result_index[l]] = gi;
        src_lane[groups[gi].result_index[l]] = l;
      }
    std::vector<Group> next = pack_groups(sub, options.locality_packing);
    for (Group& g : next) {
      for (std::uint32_t& ri : g.result_index) ri = orig[ri];
      if (use_cones) build_cone(g);
      // Transplant state columns. A lane's true faulty value at any
      // flip-flop its old group maintained is exactly the old group's
      // stored bit; at a flip-flop the old group did not maintain (outside
      // its cone union, hence outside the lane's own cone) the lane
      // provably tracks the good machine, as it does when the old group's
      // stored state predates clean-skipped cycles (state_stale). Both
      // fall back to the good state of the boundary cycle.
      g.saved_state.assign(ff_planes, ~std::uint64_t{0});
      const std::span<const std::uint32_t> cover =
          use_cones ? std::span<const std::uint32_t>(g.cone_ffs)
                    : std::span<const std::uint32_t>(all_ffs);
      for (const std::uint32_t i : cover) {
        std::uint64_t* dst = g.saved_state.data() + i * stride;
        if (has_full)
          splat(dst, words, trace.full.value(seg_end, ffs[i]));
        const std::uint64_t ff_word = ffs[i] / 64;
        const std::uint64_t ff_bit = ffs[i] % 64;
        for (std::uint32_t l = 0; l < g.count; ++l) {
          const std::uint32_t p = g.result_index[l];
          const Group& old = groups[src_group[p]];
          if (old.state_stale) continue;
          if (use_cones && ((old.cone[ff_word] >> ff_bit) & 1) == 0)
            continue;
          const std::uint32_t sl = src_lane[p];
          const std::uint64_t* src = old.saved_state.data() + i * stride;
          const std::uint64_t one = (src[sl / 64] >> (sl % 64)) & 1;
          const std::uint64_t zero = (src[words + sl / 64] >> (sl % 64)) & 1;
          const std::uint64_t bit = std::uint64_t{1} << (l % 64);
          dst[l / 64] = (dst[l / 64] & ~bit) | (one << (l % 64));
          dst[words + l / 64] =
              (dst[words + l / 64] & ~bit) | (zero << (l % 64));
        }
      }
      // The new group resumes clean only if every contributing old group
      // was provably clean (conservatively false otherwise — never affects
      // results, only skip opportunities).
      bool all_clean = true;
      for (std::uint32_t l = 0; l < g.count; ++l)
        all_clean &= groups[src_group[g.result_index[l]]].clean;
      g.clean = all_clean;
      g.state_stale = false;
    }
    groups = std::move(next);
  };

  // Segment driver. Without the dropping lever the whole sequence is one
  // segment and this reduces to a single dispatch. With it, the run is cut
  // into fixed segments; whenever the survivor count has at least halved
  // since the last packing, survivors are repacked into fewer groups (at
  // most log2(faults) repacks per run).
  const std::size_t kSegmentCycles = 64;
  const bool segmented = use_drop && length > kSegmentCycles;
  std::size_t live_at_pack = ids.size();
  for (std::size_t from = 0; from < length; from = seg_end) {
    seg_begin = from;
    seg_end = segmented ? std::min(from + kSegmentCycles, length) : length;
    dispatch_segment();
    if (seg_end >= length) break;
    std::size_t live = 0;
    for (std::uint32_t p = 0; p < ids.size(); ++p)
      live += result.detection_time[p] == DetectionResult::kUndetected;
    if (live == 0) break;
    if (live * 2 <= live_at_pack) {
      fold_groups();
      util::TraceSpan repack_span("fault_sim.repack",
                                  util::TraceArg("live", live),
                                  util::TraceArg("cycle", seg_end));
      repack_survivors();
      group_detected.assign(groups.size(), 0);
      group_cycles.assign(groups.size(), 0);
      group_fault_cycles.assign(groups.size(), 0);
      group_gates.assign(groups.size(), 0);
      group_skipped.assign(groups.size(), 0);
      group_retired.assign(groups.size(), 0);
      live_at_pack = live;
      ++repacks;
    }
  }
  fold_groups();

  util::MetricsRegistry& reg = util::metrics();
  reg.timer("fault_sim.run").add_seconds(run_wall.seconds());
  reg.counter("fault_sim.runs").add(1);
  reg.counter("fault_sim.groups").add(groups.size());
  reg.counter("fault_sim.faults_simulated").add(ids.size());
  reg.counter("fault_sim.faults_detected").add(result.detected_count);
  reg.counter("fault_sim.kernel_cycles").add(kernel_cycles);
  reg.counter("fault_sim.fault_cycles").add(fault_cycles);
  reg.counter("fault_sim.gates_evaluated").add(gates_evaluated);
  reg.counter("fault_sim.cycles_skipped").add(cycles_skipped);
  reg.counter("fault_sim.groups_retired_early").add(retired);
  reg.counter("fault_sim.repacks").add(repacks);
  return result;
}

DetectionResult FaultSimulator::run_all(const TestSequence& seq,
                                        const FaultSimOptions& options) const {
  const std::vector<FaultId> ids = faults_->all_ids();
  return run(seq, ids, options);
}

std::vector<std::vector<Val3>> FaultSimulator::observe_final(
    const TestSequence& seq, std::span<const FaultId> ids,
    std::span<const NodeId> nodes, unsigned threads) const {
  const auto pis = nl_->primary_inputs();
  std::vector<std::vector<Val3>> result(
      ids.size(), std::vector<Val3>(nodes.size(), Val3::kX));
  if (ids.empty() || seq.length() == 0) return result;
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  const unsigned words = kernel_->words;
  const std::size_t stride = sim::block_stride(words);
  std::vector<Group> groups = pack_groups(ids, false);
  const auto ffs = nl_->flip_flops();
  util::TraceSpan span("fault_sim.observe_final",
                       util::TraceArg("faults", ids.size()),
                       util::TraceArg("cycles", seq.length()));

  std::vector<Word3> pi_words(seq.length() * pis.size());
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < pis.size(); ++i)
      pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));

  const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
    Group& group = groups[gi];
    std::uint64_t* vals = s.vals.data();
    s.inj_index.attach(group.gate);
    s.reset_state();

    for (std::size_t u = 0; u < seq.length(); ++u) {
      for (std::size_t i = 0; i < pis.size(); ++i)
        splat(vals + pis[i] * stride, words, pi_words[u * pis.size() + i]);
      for (std::size_t i = 0; i < ffs.size(); ++i)
        std::memcpy(vals + ffs[i] * stride, s.state.data() + i * stride,
                    stride * sizeof(std::uint64_t));
      for (const sim::Injection& inj : group.source)
        force_slot(vals + inj.node * stride, words, inj.word, inj.mask,
                   inj.sa1);

      kernel_->eval_core(gates_, flat_fanin_.data(), s.inj_index, vals,
                         s.fanin_buf.data());

      if (u + 1 == seq.length()) {
        for (unsigned lane = 0; lane < group.count; ++lane)
          for (std::size_t n = 0; n < nodes.size(); ++n)
            result[group.result_index[lane]][n] =
                lane_val(vals + nodes[n] * stride, words, lane);
        break;
      }

      for (std::size_t i = 0; i < ffs.size(); ++i)
        std::memcpy(s.next_state.data() + i * stride,
                    vals + nl_->node(ffs[i]).fanin[0] * stride,
                    stride * sizeof(std::uint64_t));
      for (const sim::Injection& inj : group.latch)
        force_slot(s.next_state.data() + ff_index_[inj.node] * stride, words,
                   inj.word, inj.mask, inj.sa1);
      s.state.swap(s.next_state);
    }

    s.inj_index.detach();
  };

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(threads), groups.size()));
  if (n_threads <= 1) {
    GroupScratch scratch(nl_->node_count(), ffs.size(), stride, max_fanin_);
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      simulate_group(gi, scratch);
  } else {
    util::WorkerPool& wp = pool(n_threads);
    std::vector<GroupScratch> scratch;
    scratch.reserve(wp.size());
    for (unsigned r = 0; r < wp.size(); ++r)
      scratch.emplace_back(nl_->node_count(), ffs.size(), stride, max_fanin_);
    wp.parallel_for(
        groups.size(),
        [&](std::size_t gi, unsigned rank) { simulate_group(gi, scratch[rank]); });
  }
  util::metrics().counter("fault_sim.final_obs_runs").add(1);
  util::metrics().counter("fault_sim.kernel_cycles")
      .add(static_cast<std::uint64_t>(groups.size()) * seq.length());
  return result;
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines(
    const TestSequence& seq, std::span<const FaultId> ids,
    unsigned threads) const {
  const auto pis = nl_->primary_inputs();
  if (seq.width() != pis.size())
    throw std::invalid_argument("fault_sim: sequence width != #inputs");

  // A pi-words-only trace: observable_lines never looks at good_obs (it
  // replays the full good-machine value vector internally).
  GoodTrace trace;
  trace.length = seq.length();
  trace.n_inputs = pis.size();
  trace.pi_words.resize(seq.length() * pis.size());
  for (std::size_t u = 0; u < seq.length(); ++u)
    for (std::size_t i = 0; i < pis.size(); ++i)
      trace.pi_words[u * pis.size() + i] = broadcast(seq.at(u, i));
  return observable_lines_impl(trace, ids, threads);
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines(
    const GoodTrace& trace, std::span<const FaultId> ids,
    unsigned threads) const {
  if (trace.length != 0 && trace.n_inputs != nl_->primary_inputs().size())
    throw std::invalid_argument("fault_sim: trace width != #inputs");
  return observable_lines_impl(trace, ids, threads);
}

std::vector<std::vector<NodeId>> FaultSimulator::observable_lines_impl(
    const GoodTrace& trace, std::span<const FaultId> ids,
    unsigned threads) const {
  std::vector<std::vector<NodeId>> result(ids.size());
  if (ids.empty() || trace.length == 0) return result;
  util::TraceSpan span("fault_sim.observable_lines",
                       util::TraceArg("faults", ids.size()),
                       util::TraceArg("cycles", trace.length));

  const auto pis = nl_->primary_inputs();
  const std::size_t node_count = nl_->node_count();
  const unsigned words = kernel_->words;
  const std::size_t stride = sim::block_stride(words);
  std::vector<Group> groups = pack_groups(ids, false);
  const auto ffs = nl_->flip_flops();

  // Per-group persistent faulty state: time is the outer loop here because
  // the good machine's full value vector is needed each cycle.
  std::vector<std::vector<std::uint64_t>> group_state(
      groups.size(),
      std::vector<std::uint64_t>(ffs.size() * stride, ~std::uint64_t{0}));

  // Per-fault bitset of already-reported lines, one word-aligned stride per
  // fault so concurrent groups never share a word (O(faults x nodes) *bits*,
  // not bytes).
  const std::size_t words_per_fault = (node_count + 63) / 64;
  std::vector<std::uint64_t> seen(ids.size() * words_per_fault, 0);

  // The time loop is chunked: the good machine advances one block at a time
  // (recording its full value vector per cycle), then every group catches up
  // over the block in parallel. Blocks amortize the per-dispatch pool cost
  // while keeping the good-value buffer small (kBlock x node_count words).
  constexpr std::size_t kBlock = 32;
  std::vector<Word3> good_block(std::min(kBlock, trace.length) * node_count);

  sim::GoodSimulator good(*nl_);
  std::vector<Val3> row(pis.size());

  const unsigned n_threads = static_cast<unsigned>(std::min<std::size_t>(
      util::WorkerPool::resolve(threads), groups.size()));
  util::WorkerPool* wp = n_threads > 1 ? &pool(n_threads) : nullptr;
  const unsigned scratch_count = wp ? wp->size() : 1u;
  std::vector<GroupScratch> scratch;
  scratch.reserve(scratch_count);
  for (unsigned r = 0; r < scratch_count; ++r)
    scratch.emplace_back(node_count, ffs.size(), stride, max_fanin_);

  for (std::size_t u0 = 0; u0 < trace.length; u0 += kBlock) {
    const std::size_t block_len = std::min(kBlock, trace.length - u0);
    for (std::size_t b = 0; b < block_len; ++b) {
      const std::size_t u = u0 + b;
      for (std::size_t i = 0; i < pis.size(); ++i)
        row[i] = sim::lane(trace.pi_words[u * pis.size() + i], 0);
      good.step(row);
      const auto raw = good.raw_values();
      std::copy(raw.begin(), raw.end(), good_block.begin() + b * node_count);
    }

    const auto simulate_group = [&](std::size_t gi, GroupScratch& s) {
      Group& group = groups[gi];
      std::vector<std::uint64_t>& state = group_state[gi];
      std::uint64_t* vals = s.vals.data();
      s.inj_index.attach(group.gate);

      for (std::size_t b = 0; b < block_len; ++b) {
        const std::size_t u = u0 + b;
        for (std::size_t i = 0; i < pis.size(); ++i)
          splat(vals + pis[i] * stride, words,
                trace.pi_words[u * pis.size() + i]);
        for (std::size_t i = 0; i < ffs.size(); ++i)
          std::memcpy(vals + ffs[i] * stride, state.data() + i * stride,
                      stride * sizeof(std::uint64_t));
        for (const sim::Injection& inj : group.source)
          force_slot(vals + inj.node * stride, words, inj.word, inj.mask,
                     inj.sa1);

        kernel_->eval_core(gates_, flat_fanin_.data(), s.inj_index, vals,
                           s.fanin_buf.data());

        // Record every line where some lane's faulty value provably differs
        // from the good value.
        const Word3* good_vals = good_block.data() + b * node_count;
        for (NodeId node = 0; node < node_count; ++node) {
          const Word3 gv = good_vals[node];
          const std::uint64_t g_binary = gv.one ^ gv.zero;
          const std::uint64_t* fv = vals + node * stride;
          for (unsigned w = 0; w < words; ++w) {
            std::uint64_t diff = (fv[w] ^ fv[words + w]) & g_binary &
                                 (fv[w] ^ gv.one);
            diff &= group.active[w];
            while (diff != 0) {
              const unsigned bit =
                  static_cast<unsigned>(std::countr_zero(diff));
              diff &= diff - 1;
              const std::uint32_t ri = group.result_index[w * 64 + bit];
              std::uint64_t& word =
                  seen[static_cast<std::size_t>(ri) * words_per_fault +
                       node / 64];
              const std::uint64_t line_bit = std::uint64_t{1} << (node % 64);
              if ((word & line_bit) == 0) {
                word |= line_bit;
                result[ri].push_back(node);
              }
            }
          }
        }

        for (std::size_t i = 0; i < ffs.size(); ++i)
          std::memcpy(s.next_state.data() + i * stride,
                      vals + nl_->node(ffs[i]).fanin[0] * stride,
                      stride * sizeof(std::uint64_t));
        for (const sim::Injection& inj : group.latch)
          force_slot(s.next_state.data() + ff_index_[inj.node] * stride,
                     words, inj.word, inj.mask, inj.sa1);
        state.swap(s.next_state);
      }

      s.inj_index.detach();
    };

    if (wp == nullptr) {
      for (std::size_t gi = 0; gi < groups.size(); ++gi)
        simulate_group(gi, scratch[0]);
    } else {
      wp->parallel_for(groups.size(), [&](std::size_t gi, unsigned rank) {
        simulate_group(gi, scratch[rank]);
      });
    }
  }
  good_sim_runs_.fetch_add(1, std::memory_order_relaxed);

  util::MetricsRegistry& reg = util::metrics();
  reg.counter("fault_sim.obs_runs").add(1);
  reg.counter("fault_sim.obs_faults").add(ids.size());
  reg.counter("fault_sim.trace_cycles").add(trace.length);
  reg.counter("fault_sim.kernel_cycles")
      .add(static_cast<std::uint64_t>(groups.size()) * trace.length);

  for (auto& lines : result) std::sort(lines.begin(), lines.end());
  return result;
}

}  // namespace wbist::fault
