// Single stuck-at fault model on gate-level lines.
//
// Fault sites follow the classic stem/branch line model:
//   - a *stem* fault sits on the output of a node (pin == kStemPin);
//   - a *branch* fault sits on one input pin of a gate, i.e. on the branch of
//     a fanout stem feeding that pin (pin == fanin index). Branch faults are
//     only distinct sites when the driving stem has fanout > 1.
// A fault on the D pin of a flip-flop is a branch fault with pin 0.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace wbist::fault {

/// Index of a fault within a FaultSet.
using FaultId = std::uint32_t;

inline constexpr std::int16_t kStemPin = -1;

struct Fault {
  netlist::NodeId node = netlist::kNoNode;  ///< gate owning the faulty line
  std::int16_t pin = kStemPin;              ///< kStemPin or fanin pin index
  bool stuck_at_one = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// "G11 s-a-1" or "G8<-G14 s-a-0" (branch on the pin fed by G14).
inline std::string fault_name(const netlist::Netlist& nl, const Fault& f) {
  std::string s;
  if (f.pin == kStemPin) {
    s = nl.node(f.node).name;
  } else {
    s = nl.node(f.node).name + "<-" +
        nl.node(nl.node(f.node).fanin[static_cast<std::size_t>(f.pin)]).name;
  }
  s += f.stuck_at_one ? " s-a-1" : " s-a-0";
  return s;
}

}  // namespace wbist::fault
