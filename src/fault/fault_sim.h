// Parallel-fault sequential stuck-at fault simulation (PROOFS-style).
//
// Faults are packed 64 per machine word; each group of faulty machines keeps
// its own flip-flop state planes and is simulated cycle by cycle against the
// same input sequence as the good machine, with stuck-at values injected via
// per-lane masks at the fault sites. A fault is *detected* at time u when a
// primary output (or a designated observation point) carries a definite
// binary value in both the good and the faulty machine and the values differ
// — the standard pessimistic three-valued criterion for circuits that start
// in the all-X state.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "fault/fault_list.h"
#include "netlist/netlist.h"
#include "sim/logic.h"
#include "sim/sequence.h"

namespace wbist::fault {

struct FaultSimOptions {
  /// Extra observed lines (treated exactly like primary outputs).
  std::span<const netlist::NodeId> observation_points = {};
  /// Simulate at most this many time units of the sequence.
  std::size_t max_time_units = std::numeric_limits<std::size_t>::max();
};

struct DetectionResult {
  /// Aligned with the `ids` span passed to run(): the first time unit at
  /// which each fault is detected, or kUndetected.
  std::vector<std::int32_t> detection_time;
  std::size_t detected_count = 0;

  static constexpr std::int32_t kUndetected = -1;

  bool detected(std::size_t i) const {
    return detection_time[i] != kUndetected;
  }
};

class FaultSimulator {
 public:
  /// Both `nl` and `faults` must outlive the simulator.
  FaultSimulator(const netlist::Netlist& nl, const FaultSet& faults);

  /// Simulate `seq` from the all-X state against the faults in `ids`
  /// (indices into the FaultSet). Each group of faults stops as soon as all
  /// its faults are detected (fault dropping).
  DetectionResult run(const sim::TestSequence& seq,
                      std::span<const FaultId> ids,
                      const FaultSimOptions& options = {}) const;

  /// Simulate against the entire fault set.
  DetectionResult run_all(const sim::TestSequence& seq,
                          const FaultSimOptions& options = {}) const;

  /// For each fault in `ids`, the sorted set of nodes at which the fault is
  /// observable at some time unit of `seq` (good and faulty values both
  /// binary and different). This is OP(f) of the paper's Section 5: placing
  /// an observation point on any returned line detects the fault under
  /// `seq`. Faults are not dropped: all time units are examined.
  std::vector<std::vector<netlist::NodeId>> observable_lines(
      const sim::TestSequence& seq, std::span<const FaultId> ids) const;

  /// Faulty-machine values of `nodes` during the *last* time unit of `seq`,
  /// per fault in `ids` (result[k][n] is fault ids[k]'s value at nodes[n]).
  /// No fault dropping. Used for signature-based (MISR) detection, where
  /// only the final state matters.
  std::vector<std::vector<sim::Val3>> observe_final(
      const sim::TestSequence& seq, std::span<const FaultId> ids,
      std::span<const netlist::NodeId> nodes) const;

  const netlist::Netlist& circuit() const { return *nl_; }
  const FaultSet& fault_set() const { return *faults_; }

 private:
  struct Group;

  std::vector<Group> pack_groups(std::span<const FaultId> ids) const;

  const netlist::Netlist* nl_;
  const FaultSet* faults_;

  // Flattened combinational core in evaluation order (cache-friendly walk).
  struct GateRec {
    netlist::NodeId id;
    netlist::GateType type;
    std::uint32_t fanin_begin;
    std::uint32_t fanin_count;
  };
  std::vector<GateRec> gates_;
  std::vector<netlist::NodeId> flat_fanin_;
  std::vector<std::uint32_t> ff_index_;  // NodeId -> index in flip_flops()
};

}  // namespace wbist::fault
