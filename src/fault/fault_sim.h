// Parallel-fault sequential stuck-at fault simulation (PROOFS-style).
//
// Faults are packed 64 per machine word; each group of faulty machines keeps
// its own flip-flop state planes and is simulated cycle by cycle against the
// same input sequence as the good machine, with stuck-at values injected via
// per-lane masks at the fault sites. A fault is *detected* at time u when a
// primary output (or a designated observation point) carries a definite
// binary value in both the good and the faulty machine and the values differ
// — the standard pessimistic three-valued criterion for circuits that start
// in the all-X state.
//
// Three orthogonal performance levers on top of the group packing:
//
//  * The combinational-core walk runs through a runtime-dispatched block
//    kernel (sim/kernel.h): groups carry 64 * kernel.words faulty machines
//    (256 with the default 4-word block), and the per-gate plane math runs
//    through the widest backend the CPU supports (AVX2 on x86 hosts).
//  * Fault groups are independent machines, so the group loop runs on a
//    worker pool (`FaultSimOptions::threads`). Detection times land in
//    per-fault result slots, which makes the output bit-identical for any
//    thread count.
//  * The good machine's response to a sequence can be captured once as a
//    `GoodTrace` and shared across several run() calls over the same
//    sequence (e.g. the procedure's sample pass followed by the full pass).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "fault/fault_list.h"
#include "netlist/cones.h"
#include "netlist/netlist.h"
#include "sim/good_sim.h"
#include "sim/kernel.h"
#include "sim/logic.h"
#include "sim/sequence.h"
#include "util/worker_pool.h"

namespace wbist::fault {

struct FaultSimOptions {
  /// Extra observed lines (treated exactly like primary outputs).
  std::span<const netlist::NodeId> observation_points = {};
  /// Simulate at most this many time units of the sequence.
  std::size_t max_time_units = std::numeric_limits<std::size_t>::max();
  /// Worker threads for the fault-group loop: 0 = hardware_concurrency,
  /// 1 = serial. Results are bit-identical for every value.
  unsigned threads = 0;

  // Performance levers for run(). Each is bit-identical to the plain walk
  // (same detection times and detecting lines for every input) and can be
  // disabled independently; see DESIGN.md "Simulation cost model" for the
  // invariants. Metrics: fault_sim.gates_evaluated, fault_sim.cycles_skipped,
  // fault_sim.groups_retired_early, fault_sim.repacks,
  // fault_sim.full_trace_fallbacks.

  /// Evaluate only the union of the group members' fanout cones, reading
  /// everything outside the union from the trace's good-machine recording.
  /// Falls back to the full walk when the trace carries no full recording
  /// (counted in fault_sim.full_trace_fallbacks).
  bool cone_restriction = true;
  /// Skip a group's kernel walk for cycles where its faulty state equals the
  /// good machine's and no injection is activated. Needs the full recording,
  /// like cone_restriction.
  bool activity_gating = true;
  /// Stop simulating a group once every live lane is detected, and shrink
  /// the group's cone union as lanes retire. Long runs are additionally cut
  /// into 64-cycle segments: whenever the surviving-fault count has halved
  /// since the last packing, survivors are repacked into fewer, denser
  /// groups (carrying their flip-flop state across the boundary), so the
  /// per-cycle kernel work tracks the live fault count instead of the
  /// original list size.
  bool fault_dropping = true;
  /// Pack faults into groups by cone locality (earliest cone gate first)
  /// instead of first-come, keeping cone unions small.
  bool locality_packing = true;
};

/// Precomputed good-machine response to one test sequence: the broadcast
/// input words per time unit plus the good values of every observed line
/// (primary outputs, then observation points). Build once per candidate
/// sequence via FaultSimulator::make_trace() and pass to run() /
/// observable_lines() to avoid re-simulating the fault-free machine.
struct GoodTrace {
  std::size_t length = 0;    ///< time units captured
  std::size_t n_inputs = 0;  ///< primary-input count of the source circuit
  /// Observation points the trace was built with (count of extra observed
  /// lines beyond the primary outputs; used to validate run() options).
  std::size_t n_observation_points = 0;
  /// Observed lines: primary outputs followed by the observation points.
  std::vector<netlist::NodeId> observed;
  /// length x n_inputs broadcast input words (row-major by time unit).
  std::vector<sim::Word3> pi_words;
  /// length x observed.size() good-machine values (row-major by time unit).
  std::vector<sim::Word3> good_obs;
  /// Good values of *every* node per time unit, 2 bits per node per cycle.
  /// make_trace() always records it; the cone-restriction and activity-gating
  /// levers need it and fall back to the plain full walk on traces built by
  /// hand without one (full.empty()).
  sim::FullTrace full;
};

struct DetectionResult {
  /// Aligned with the `ids` span passed to run(): the first time unit at
  /// which each fault is detected, or kUndetected.
  std::vector<std::int32_t> detection_time;
  /// The first observed line (primary output or observation point, lowest
  /// observed index) at which each fault was detected at its detection time,
  /// or netlist::kNoNode where undetected. Provenance metadata only — it is
  /// derived from the same cycle's values that set detection_time and never
  /// feeds back into simulation.
  std::vector<netlist::NodeId> detecting_line;
  std::size_t detected_count = 0;

  static constexpr std::int32_t kUndetected = -1;

  bool detected(std::size_t i) const {
    return detection_time[i] != kUndetected;
  }
};

class FaultSimulator {
 public:
  /// Both `nl` and `faults` must outlive the simulator. `kernel` selects the
  /// evaluation backend (nullptr = sim::active_kernel(); see sim/kernel.h
  /// for the environment overrides). All backends are bit-identical.
  ///
  /// Thread-safety: the simulator parallelizes *internally* (across fault
  /// groups) but its methods must not be called concurrently on the same
  /// instance — they share one lazily grown worker pool. Use one
  /// FaultSimulator per calling thread instead.
  FaultSimulator(const netlist::Netlist& nl, const FaultSet& faults,
                 const sim::Kernel* kernel = nullptr);

  /// Same, but *borrowing* precomputed fanout cones instead of deriving
  /// them (the single most expensive part of construction). `cones` must
  /// have been built from `nl` and must outlive the simulator. This is the
  /// re-entrancy hook used by the compiled-circuit artifact cache
  /// (core/artifact_cache.h): many short-lived simulators over one
  /// immutable compiled circuit, none of them re-levelizing or re-walking
  /// the fanout closure.
  FaultSimulator(const netlist::Netlist& nl, const FaultSet& faults,
                 const netlist::FanoutCones& cones,
                 const sim::Kernel* kernel = nullptr);

  FaultSimulator(const FaultSimulator&) = delete;
  FaultSimulator& operator=(const FaultSimulator&) = delete;

  /// Capture the good machine's response to `seq`: one fault-free simulation
  /// recording the broadcast input words and the values of every observed
  /// line (primary outputs + `observation_points`), over at most
  /// `max_time_units` time units.
  GoodTrace make_trace(
      const sim::TestSequence& seq,
      std::span<const netlist::NodeId> observation_points = {},
      std::size_t max_time_units =
          std::numeric_limits<std::size_t>::max()) const;

  /// Simulate `seq` from the all-X state against the faults in `ids`
  /// (indices into the FaultSet). Each group of faults stops as soon as all
  /// its faults are detected (fault dropping).
  DetectionResult run(const sim::TestSequence& seq,
                      std::span<const FaultId> ids,
                      const FaultSimOptions& options = {}) const;

  /// Same, against a precomputed good-machine trace. The trace must have
  /// been built with the same observation points as `options` carries (the
  /// call validates this and throws std::invalid_argument on mismatch).
  DetectionResult run(const GoodTrace& trace, std::span<const FaultId> ids,
                      const FaultSimOptions& options = {}) const;

  /// Simulate against the entire fault set.
  DetectionResult run_all(const sim::TestSequence& seq,
                          const FaultSimOptions& options = {}) const;

  /// For each fault in `ids`, the sorted set of nodes at which the fault is
  /// observable at some time unit of `seq` (good and faulty values both
  /// binary and different). This is OP(f) of the paper's Section 5: placing
  /// an observation point on any returned line detects the fault under
  /// `seq`. Faults are not dropped: all time units are examined.
  std::vector<std::vector<netlist::NodeId>> observable_lines(
      const sim::TestSequence& seq, std::span<const FaultId> ids,
      unsigned threads = 0) const;

  /// Same, reusing a trace's precomputed input words (the full good-machine
  /// value vector is replayed internally either way — the trace only stores
  /// observed lines).
  std::vector<std::vector<netlist::NodeId>> observable_lines(
      const GoodTrace& trace, std::span<const FaultId> ids,
      unsigned threads = 0) const;

  /// Faulty-machine values of `nodes` during the *last* time unit of `seq`,
  /// per fault in `ids` (result[k][n] is fault ids[k]'s value at nodes[n]).
  /// No fault dropping. Used for signature-based (MISR) detection, where
  /// only the final state matters.
  std::vector<std::vector<sim::Val3>> observe_final(
      const sim::TestSequence& seq, std::span<const FaultId> ids,
      std::span<const netlist::NodeId> nodes, unsigned threads = 0) const;

  /// Fault-free (good-machine) simulation passes performed so far, i.e.
  /// make_trace() calls plus internal replays in observable_lines(). The
  /// procedure layer uses this to assert it simulates the good machine
  /// exactly once per candidate sequence.
  std::size_t good_sim_runs() const {
    return good_sim_runs_.load(std::memory_order_relaxed);
  }

  const netlist::Netlist& circuit() const { return *nl_; }
  const FaultSet& fault_set() const { return *faults_; }

  /// The evaluation backend this simulator dispatches to. Groups carry
  /// 64 * kernel().words faulty machines each.
  const sim::Kernel& kernel() const { return *kernel_; }

  /// Sequential transitive-fanout cones of the circuit (computed once at
  /// construction, or borrowed from a compiled-circuit artifact; drives
  /// cone restriction and locality packing).
  const netlist::FanoutCones& cones() const { return *cones_; }

 private:
  struct Group;

  /// Delegation target: `cones` owned when non-null (the public borrowing
  /// constructor patches `cones_` afterwards).
  FaultSimulator(const netlist::Netlist& nl, const FaultSet& faults,
                 std::unique_ptr<netlist::FanoutCones> cones,
                 const sim::Kernel* kernel);

  std::vector<Group> pack_groups(std::span<const FaultId> ids,
                                 bool locality) const;

  /// Lazily created worker pool, grown (never shrunk) to the largest size
  /// requested so far; jobs smaller than the pool leave extra ranks idle.
  util::WorkerPool& pool(unsigned thread_count) const;

  std::vector<std::vector<netlist::NodeId>> observable_lines_impl(
      const GoodTrace& trace, std::span<const FaultId> ids,
      unsigned threads) const;

  const netlist::Netlist* nl_;
  const FaultSet* faults_;
  const sim::Kernel* kernel_;

  /// Borrowed when constructed against precomputed cones, owned otherwise.
  std::unique_ptr<netlist::FanoutCones> owned_cones_;
  const netlist::FanoutCones* cones_;

  std::vector<sim::GateRec> gates_;  // combinational core in evaluation order
  std::vector<netlist::NodeId> flat_fanin_;
  std::vector<std::uint32_t> ff_index_;  // NodeId -> index in flip_flops()
  std::vector<netlist::NodeId> ff_dnet_;  // flip-flop index -> D signal
  std::size_t max_fanin_ = 1;  // fanin-staging width for injected gates

  mutable std::atomic<std::size_t> good_sim_runs_{0};
  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<util::WorkerPool> pool_;
};

}  // namespace wbist::fault
