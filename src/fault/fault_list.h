// Fault universe construction and structural equivalence collapsing.
//
// The uncollapsed universe contains both stuck-at polarities on every stem
// and on every fanout branch (branches only where the stem has fanout > 1),
// which is the standard line-oriented fault universe for ISCAS circuits
// (s27: 52 uncollapsed faults).
//
// Equivalence collapsing merges faults that produce identical faulty
// behaviour using the classic gate rules:
//   AND : input s-a-0 == output s-a-0      NAND: input s-a-0 == output s-a-1
//   OR  : input s-a-1 == output s-a-1      NOR : input s-a-1 == output s-a-0
//   NOT : input s-a-v == output s-a-v'     BUF : input s-a-v == output s-a-v
//   XOR / XNOR: no equivalences
// Flip-flops are NOT collapsed through: under three-valued start-up
// semantics a stuck Q acts from the unknown initial state while a stuck D
// acts only from cycle 1. With these rules s27 collapses to the paper's 32
// faults (f0..f31).
#pragma once

#include <span>
#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"

namespace wbist::fault {

/// A collapsed fault universe for one circuit.
class FaultSet {
 public:
  /// Build the collapsed fault set for `nl` (must be finalized).
  static FaultSet collapsed(const netlist::Netlist& nl);

  /// Build the raw, uncollapsed fault set (mainly for tests / reference).
  static FaultSet uncollapsed(const netlist::Netlist& nl);

  /// Wrap an explicit fault list (class sizes all 1). Used when fault sites
  /// are translated into a composed netlist (see netlist/compose.h).
  static FaultSet from_faults(std::vector<Fault> faults);

  std::span<const Fault> faults() const { return faults_; }
  std::size_t size() const { return faults_.size(); }
  const Fault& operator[](FaultId id) const { return faults_[id]; }

  /// For collapsed sets: the number of faults in the uncollapsed universe
  /// represented by fault `id` (>= 1). For uncollapsed sets, always 1.
  std::size_t class_size(FaultId id) const { return class_sizes_[id]; }

  /// All fault ids, 0..size-1 (convenience for simulator calls).
  std::vector<FaultId> all_ids() const;

 private:
  std::vector<Fault> faults_;
  std::vector<std::size_t> class_sizes_;
};

}  // namespace wbist::fault
