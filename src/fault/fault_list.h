// Fault universe construction and structural collapsing.
//
// The uncollapsed universe contains both stuck-at polarities on every stem
// and on every fanout branch (branches only where the stem has fanout > 1),
// which is the standard line-oriented fault universe for ISCAS circuits
// (s27: 52 uncollapsed faults).
//
// Equivalence collapsing merges faults that produce identical faulty
// behaviour using the classic gate rules:
//   AND : input s-a-0 == output s-a-0      NAND: input s-a-0 == output s-a-1
//   OR  : input s-a-1 == output s-a-1      NOR : input s-a-1 == output s-a-0
//   NOT : input s-a-v == output s-a-v'     BUF : input s-a-v == output s-a-v
//   XOR / XNOR: no equivalences
// Flip-flops are NOT collapsed through: under three-valued start-up
// semantics a stuck Q acts from the unknown initial state while a stuck D
// acts only from cycle 1. With these rules s27 collapses to the paper's 32
// faults (f0..f31).
//
// Dominance collapsing additionally drops gate-output fault classes that
// are *provably* detected whenever a kept input fault of the same gate is
// detected. Classic combinational dominance is unsound for sequential
// circuits (the two faulty machines can follow different state
// trajectories), so the rule is restricted to "state-safe" gates — gates
// whose combinational fanout cone reaches no flip-flop D input. For such a
// gate neither faulty machine's state ever diverges from the good machine,
// every cycle is effectively combinational, and the textbook implication
// holds cycle for cycle:
//   AND : out s-a-1 dominates in s-a-1     NAND: out s-a-0 dominates in s-a-1
//   OR  : out s-a-0 dominates in s-a-0     NOR : out s-a-1 dominates in s-a-0
// The dominated input fault that *absorbs* the dropped class must itself be
// undetectable except through the gate, so it is further required to be a
// fanout-branch fault (a single-fanout driver stem could be observed
// directly, e.g. by an observation point, without exercising the gate).
// Detection therefore expands along absorption soundly: covering every kept
// fault covers the full uncollapsed universe, and the expanded coverage of
// a partial detection set is a lower bound on true coverage.
#pragma once

#include <span>
#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"

namespace wbist::fault {

/// How much structural collapsing to apply when building a fault universe.
enum class CollapseMode {
  kNone,         ///< the raw uncollapsed universe
  kEquivalence,  ///< classic gate-rule equivalence classes (exact)
  kDominance,    ///< equivalence + state-safe gate-local dominance drops
};

/// A (possibly collapsed) fault universe for one circuit.
class FaultSet {
 public:
  /// Build the fault set for `nl` (must be finalized) at the given
  /// collapsing level. The default is equivalence collapsing, which is
  /// exact: detection of a representative is detection of its whole class.
  static FaultSet collapsed(const netlist::Netlist& nl,
                            CollapseMode mode = CollapseMode::kEquivalence);

  /// Build the raw, uncollapsed fault set (mainly for tests / reference).
  static FaultSet uncollapsed(const netlist::Netlist& nl);

  /// Wrap an explicit fault list (class sizes all 1). Used when fault sites
  /// are translated into a composed netlist (see netlist/compose.h).
  static FaultSet from_faults(std::vector<Fault> faults);

  std::span<const Fault> faults() const { return faults_; }
  std::size_t size() const { return faults_.size(); }
  const Fault& operator[](FaultId id) const { return faults_[id]; }

  /// For collapsed sets: the number of faults in the uncollapsed universe
  /// with behaviour identical to fault `id` (>= 1). For uncollapsed sets,
  /// always 1.
  std::size_t class_size(FaultId id) const { return class_sizes_[id]; }

  /// The number of uncollapsed faults whose detection is *implied* by
  /// detecting fault `id`: its equivalence class plus, under dominance
  /// collapsing, every absorbed dominator class. Summing represented_size
  /// over a detected subset gives a sound lower bound on the number of
  /// uncollapsed faults covered; summing over the whole set gives
  /// uncollapsed_size().
  std::size_t represented_size(FaultId id) const {
    return represented_sizes_[id];
  }

  /// Size of the uncollapsed universe this set represents. For
  /// from_faults(), the explicit list size.
  std::size_t uncollapsed_size() const { return uncollapsed_size_; }

  /// The collapsing level this set was built with (from_faults() reports
  /// kNone).
  CollapseMode mode() const { return mode_; }

  /// All fault ids, 0..size-1 (convenience for simulator calls).
  std::vector<FaultId> all_ids() const;

 private:
  std::vector<Fault> faults_;
  std::vector<std::size_t> class_sizes_;
  std::vector<std::size_t> represented_sizes_;
  std::size_t uncollapsed_size_ = 0;
  CollapseMode mode_ = CollapseMode::kNone;
};

}  // namespace wbist::fault
