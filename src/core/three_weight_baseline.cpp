#include "core/three_weight_baseline.h"

#include <algorithm>
#include <stdexcept>

#include "core/generator_hw.h"

namespace wbist::core {

using fault::DetectionResult;
using fault::FaultId;
using sim::TestSequence;
using sim::Val3;

TestSequence ThreeWeightAssignment::expand(const Lfsr& lfsr,
                                           std::size_t session,
                                           std::size_t length) const {
  Lfsr runner = lfsr;
  runner.reset();
  for (std::size_t t = 0; t < session * length; ++t) runner.step();

  TestSequence seq(length, per_input.size());
  for (std::size_t u = 0; u < length; ++u) {
    for (std::size_t i = 0; i < per_input.size(); ++i) {
      switch (per_input[i]) {
        case ThreeWeight::kZero:
          seq.set(u, i, Val3::kZero);
          break;
        case ThreeWeight::kOne:
          seq.set(u, i, Val3::kOne);
          break;
        case ThreeWeight::kRandom:
          seq.set(u, i,
                  runner.bit(lfsr_tap_for_input(lfsr, i)) ? Val3::kOne
                                                          : Val3::kZero);
          break;
      }
    }
    runner.step();
  }
  return seq;
}

std::string ThreeWeightAssignment::str() const {
  std::string out;
  for (std::size_t i = 0; i < per_input.size(); ++i) {
    if (i != 0) out += " / ";
    switch (per_input[i]) {
      case ThreeWeight::kZero: out += "0"; break;
      case ThreeWeight::kOne: out += "1"; break;
      case ThreeWeight::kRandom: out += "R"; break;
    }
  }
  return out;
}

ThreeWeightAssignment intersect_window(const TestSequence& T, std::size_t u,
                                       std::size_t window) {
  if (u >= T.length())
    throw std::invalid_argument("three_weight: window end out of range");
  const std::size_t begin = u + 1 >= window ? u + 1 - window : 0;

  ThreeWeightAssignment w;
  w.per_input.resize(T.width(), ThreeWeight::kRandom);
  for (std::size_t i = 0; i < T.width(); ++i) {
    bool all_zero = true;
    bool all_one = true;
    for (std::size_t t = begin; t <= u; ++t) {
      const Val3 v = T.at(t, i);
      all_zero &= v == Val3::kZero;
      all_one &= v == Val3::kOne;
    }
    if (all_zero)
      w.per_input[i] = ThreeWeight::kZero;
    else if (all_one)
      w.per_input[i] = ThreeWeight::kOne;
  }
  return w;
}

ThreeWeightResult run_three_weight_baseline(
    const fault::FaultSimulator& sim, const TestSequence& T,
    std::span<const std::int32_t> detection_time,
    const ThreeWeightConfig& config) {
  if (detection_time.size() != sim.fault_set().size())
    throw std::invalid_argument(
        "three_weight: detection_time not aligned with fault set");

  const Lfsr lfsr(config.lfsr_width);
  ThreeWeightResult result;

  std::vector<FaultId> remaining;
  for (FaultId f = 0; f < detection_time.size(); ++f)
    if (detection_time[f] != DetectionResult::kUndetected)
      remaining.push_back(f);
  result.target_count = remaining.size();

  std::size_t session = 0;
  std::vector<ThreeWeightAssignment> tried;
  while (!remaining.empty()) {
    // Hardest remaining fault first, exactly like the proposed procedure.
    FaultId target = remaining.front();
    for (const FaultId f : remaining)
      if (detection_time[f] > detection_time[target]) target = f;
    const auto u = static_cast<std::size_t>(detection_time[target]);

    bool target_detected = false;
    for (std::size_t attempt = 0;
         attempt < config.attempts_per_fault && !target_detected; ++attempt) {
      // Shrinking windows: the first attempt intersects the configured
      // window; later attempts halve it (fewer constants, more randomness).
      const std::size_t window =
          std::max<std::size_t>(1, config.window >> attempt);
      const ThreeWeightAssignment w = intersect_window(T, u, window);
      if (std::find(tried.begin(), tried.end(), w) != tried.end()) continue;
      tried.push_back(w);

      const TestSequence tg =
          w.expand(lfsr, session++, config.sequence_length);
      fault::FaultSimOptions opts;
      opts.threads = config.threads;
      const DetectionResult det = sim.run(sim.make_trace(tg), remaining, opts);
      if (det.detected_count == 0) continue;

      result.assignments.push_back(w);
      result.detected_count += det.detected_count;
      std::vector<FaultId> still;
      still.reserve(remaining.size() - det.detected_count);
      for (std::size_t k = 0; k < remaining.size(); ++k) {
        if (det.detected(k)) {
          if (remaining[k] == target) target_detected = true;
        } else {
          still.push_back(remaining[k]);
        }
      }
      remaining = std::move(still);
    }

    if (!target_detected) {
      // The baseline cannot reach this fault: constant-or-random inputs do
      // not reproduce the required subsequences. Drop it as abandoned.
      const auto it = std::find(remaining.begin(), remaining.end(), target);
      if (it != remaining.end()) remaining.erase(it);
      ++result.abandoned_count;
    }
  }

  return result;
}

}  // namespace wbist::core
