#include "core/obs.h"

#include "util/json.h"
#include "util/metrics.h"

namespace wbist::core {

namespace {

std::uint64_t us_between(JobObservation::Clock::time_point a,
                         JobObservation::Clock::time_point b) {
  if (b < a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

}  // namespace

void JobObservation::add_span(const std::string& name, Clock::time_point start,
                              Clock::time_point end) {
  spans_.push_back(Span{name, us_between(t0_, start), us_between(start, end)});
}

void JobObservation::set_counter(const std::string& name, std::uint64_t value) {
  counters_[name] = value;
}

void JobObservation::set_note(const std::string& name,
                              const std::string& value) {
  notes_[name] = value;
}

JobObservation::CounterDelta::CounterDelta(JobObservation* obs,
                                           const std::string& name)
    : obs_(obs), name_(name) {
  if (obs_ != nullptr) start_ = util::metrics().counter(name).value();
}

JobObservation::CounterDelta::~CounterDelta() {
  if (obs_ == nullptr) return;
  const std::uint64_t now = util::metrics().counter(name_).value();
  obs_->set_counter(name_, now >= start_ ? now - start_ : 0);
}

std::string JobObservation::to_json() const {
  std::string out = "{\"schema\":";
  util::append_json_string(out, kObsSchema);

  out += ",\"notes\":{";
  bool first = true;
  for (const auto& [name, value] : notes_) {
    if (!first) out += ",";
    first = false;
    util::append_json_string(out, name);
    out += ":";
    util::append_json_string(out, value);
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    util::append_json_string(out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"spans\":[";
  first = true;
  for (const auto& s : spans_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    util::append_json_string(out, s.name);
    out += ",\"start_us\":" + std::to_string(s.start_us) +
           ",\"dur_us\":" + std::to_string(s.dur_us) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace wbist::core
