#include "core/selftest.h"

#include <stdexcept>

#include "core/cover_hw.h"
#include "netlist/compose.h"
#include "sim/good_sim.h"

namespace wbist::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using netlist::PortBinding;
using sim::Val3;

namespace {

/// Find the generator's counter bits (created by build_generator with fixed
/// names) and translate them into the assembled netlist.
std::vector<NodeId> mapped_counter_bits(const Netlist& gen,
                                        std::span<const NodeId> gen_map,
                                        const std::string& stem) {
  std::vector<NodeId> bits;
  for (unsigned b = 0;; ++b) {
    const NodeId id = gen.find(stem + std::to_string(b));
    if (id == netlist::kNoNode) break;
    bits.push_back(gen_map[id]);
  }
  return bits;
}

/// ">= bound" comparator over a binary counter via a minimized cover.
Cover ge_cover(unsigned bits, std::uint32_t bound) {
  std::vector<std::uint32_t> onset;
  for (std::uint32_t v = 0; v < (std::uint32_t{1} << bits); ++v)
    if (v >= bound) onset.push_back(v);
  return minimize(bits, onset, {});
}

/// "> bound" comparator.
Cover gt_cover(unsigned bits, std::uint32_t bound) {
  std::vector<std::uint32_t> onset;
  for (std::uint32_t v = 0; v < (std::uint32_t{1} << bits); ++v)
    if (v > bound) onset.push_back(v);
  return minimize(bits, onset, {});
}

/// "== bound" comparator.
Cover eq_cover(unsigned bits, std::uint32_t bound) {
  return minimize(bits, {bound}, {});
}

}  // namespace

SelfTestHardware assemble_self_test(const Netlist& cut,
                                    const fault::FaultSet& faults,
                                    std::span<const WeightAssignment> omega,
                                    std::size_t sequence_length,
                                    const SelfTestConfig& config) {
  if (omega.empty())
    throw std::invalid_argument("selftest: no weight assignments");

  SelfTestHardware st;
  const GeneratorHardware gen = build_generator(omega, sequence_length);
  st.session_length = gen.session_length;
  st.session_count = gen.session_count;

  // ---- Golden software model: responses, warm-up, expected signature. ----
  const std::size_t total = st.session_length * st.session_count;
  sim::GoodSimulator cut_sim(cut);
  std::vector<std::vector<Val3>> responses;
  responses.reserve(total);
  std::vector<Val3> row(cut.primary_inputs().size());
  for (std::size_t j = 0; j < omega.size(); ++j) {
    for (std::size_t u = 0; u < st.session_length; ++u) {
      for (std::size_t i = 0; i < row.size(); ++i)
        row[i] = omega[j].per_input[i].value_at(u);
      cut_sim.step(row);
      responses.push_back(cut_sim.outputs());
    }
  }
  const auto warmup = compute_warmup(responses);
  if (!warmup)
    throw std::runtime_error(
        "selftest: CUT outputs never become fully binary under these "
        "sessions");
  st.warmup_cycles = *warmup + config.warmup_margin;
  if (st.warmup_cycles >= total)
    throw std::runtime_error("selftest: warm-up exceeds the test length");

  const Misr model(config.misr_width);
  {
    Misr golden = model;
    const auto sig = golden.signature(responses, st.warmup_cycles);
    if (!sig) throw std::runtime_error("selftest: X in captured responses");
    st.expected_signature = *sig;
  }

  // ---- Assembly. ----
  Netlist& nl = st.netlist;
  nl.set_name("selftest_" + cut.name());
  const NodeId reset = nl.add_input("R");

  const std::vector<PortBinding> gen_bind{{"R", reset}};
  const std::vector<NodeId> gen_map =
      netlist::append_netlist(nl, gen.netlist, "GEN_", gen_bind);

  // CUT inputs driven by the generator's TG outputs, in input order.
  std::vector<PortBinding> cut_bind;
  const auto tg_nodes = gen.netlist.primary_outputs();
  const auto cut_pis = cut.primary_inputs();
  if (tg_nodes.size() != cut_pis.size())
    throw std::logic_error("selftest: TG/PI count mismatch");
  for (std::size_t i = 0; i < cut_pis.size(); ++i)
    cut_bind.push_back({cut.node(cut_pis[i]).name, gen_map[tg_nodes[i]]});
  const std::vector<NodeId> cut_map =
      netlist::append_netlist(nl, cut, "CUT_", cut_bind);

  // Constants for the comparator covers.
  const NodeId n_reset = nl.add_gate(GateType::kNot, "ST_nR", {reset});
  const NodeId const_zero =
      nl.add_gate(GateType::kAnd, "ST_ZERO", {reset, n_reset});
  const NodeId const_one =
      nl.add_gate(GateType::kOr, "ST_ONE", {reset, n_reset});

  // Capture enable: global cycle (= sc * P + div) >= warmup_cycles.
  const std::vector<NodeId> div =
      mapped_counter_bits(gen.netlist, gen_map, "DIV");
  const std::vector<NodeId> sc =
      mapped_counter_bits(gen.netlist, gen_map, "SC");
  const auto q = static_cast<std::uint32_t>(st.warmup_cycles /
                                            st.session_length);
  const auto r = static_cast<std::uint32_t>(st.warmup_cycles %
                                            st.session_length);

  NodeId en;
  if (st.warmup_cycles == 0) {
    en = const_one;
  } else {
    const NodeId ge_r =
        instantiate_cover(nl, ge_cover(static_cast<unsigned>(div.size()), r),
                          div, const_zero, const_one, "ST_GE");
    if (sc.empty()) {
      en = ge_r;  // single session: q == 0 guaranteed by the warm-up check
    } else {
      const NodeId gt_q =
          instantiate_cover(nl, gt_cover(static_cast<unsigned>(sc.size()), q),
                            sc, const_zero, const_one, "ST_GT");
      const NodeId eq_q =
          instantiate_cover(nl, eq_cover(static_cast<unsigned>(sc.size()), q),
                            sc, const_zero, const_one, "ST_EQ");
      const NodeId eq_and_ge =
          nl.add_gate(GateType::kAnd, "ST_EQGE", {eq_q, ge_r});
      en = nl.add_gate(GateType::kOr, "ST_EN0", {gt_q, eq_and_ge});
    }
  }
  const NodeId enable = nl.add_gate(GateType::kAnd, "ST_EN", {en, n_reset});

  // The MISR observes the CUT's outputs inside the assembly.
  std::vector<NodeId> misr_inputs;
  for (const NodeId po : cut.primary_outputs())
    misr_inputs.push_back(cut_map[po]);
  st.misr_state = emit_misr(nl, model, misr_inputs, enable, "SIG");
  for (const NodeId bit : st.misr_state) nl.mark_output(bit);

  nl.finalize();

  // ---- Fault translation. ----
  std::vector<fault::Fault> translated;
  translated.reserve(faults.size());
  for (const fault::Fault& f : faults.faults())
    translated.push_back({cut_map[f.node], f.pin, f.stuck_at_one});
  st.cut_faults = fault::FaultSet::from_faults(std::move(translated));

  return st;
}

}  // namespace wbist::core
