// Extended weight scheme with pure-random sessions (Section 6 future work).
//
// The paper's Section 4.4 notes: "In the implementation above, we do not
// allow pseudo-random sequences (or LFSR sequences) on the circuit inputs.
// Adding this option is likely to reduce the number of subsequences that
// need to be generated." This module implements that option: a configurable
// number of leading sessions drive every input from a free-running on-chip
// LFSR; only the faults those sessions miss are handed to the subsequence
// procedure, which therefore needs fewer weights and fewer FSM outputs.
//
// The ablation harness (bench/ablation_random_weights) measures exactly
// that reduction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/generator_hw.h"
#include "core/lfsr.h"
#include "core/procedure.h"
#include "fault/fault_sim.h"
#include "sim/sequence.h"

namespace wbist::core {

struct ExtendedSchemeConfig {
  unsigned lfsr_width = 16;
  /// Maximum pure-random sessions to try; sessions detecting no new fault
  /// beyond this point are trimmed.
  std::size_t max_random_sessions = 8;
  /// Stop probing random sessions once one detects no new fault (the
  /// default). When false, a fruitless session is skipped — it is not
  /// counted as payoff — and the later sessions of the same stream are
  /// still simulated, up to `max_random_sessions` in total.
  bool stop_on_fruitless_session = true;
  ProcedureConfig procedure;
};

struct ExtendedSchemeResult {
  Lfsr lfsr{16};
  /// Hardware sessions kept: index of the last *fruitful* session + 1.
  /// The on-chip LFSR free-runs across session boundaries, so keeping
  /// session r implies running sessions 0..r-1 too — fruitless sessions
  /// before the last fruitful one stay inside this count; trailing
  /// fruitless sessions are trimmed.
  std::size_t random_sessions = 0;
  /// Random sessions actually fault-simulated (>= random_sessions; larger
  /// when stop_on_fruitless_session is false and trailing sessions were
  /// fruitless).
  std::size_t sessions_simulated = 0;
  std::size_t session_length = 0;    ///< hardware session length (2^k)
  std::size_t detected_by_random = 0;
  ProcedureResult procedure;         ///< subsequence part, residual faults

  std::size_t target_count = 0;
  std::size_t detected_count = 0;    ///< random + subsequence detections

  double fault_efficiency() const {
    return target_count == 0 ? 1.0
                             : static_cast<double>(detected_count) /
                                   static_cast<double>(target_count);
  }

  /// Hardware spec for build_extended_generator.
  ExtendedGeneratorSpec generator_spec() const {
    return {random_sessions, lfsr, procedure.omega};
  }
};

/// The input sequence applied during pure-random session `session`
/// (sessions share one continuous LFSR stream; the hardware LFSR free-runs
/// across session boundaries). Fast-forwards a fresh register from reset —
/// O(session * session_length) steps; campaign loops should use the
/// incremental overload below instead.
sim::TestSequence expand_random_session(const Lfsr& lfsr, std::size_t session,
                                        std::size_t session_length,
                                        std::size_t n_inputs);

/// Incremental form: `runner` carries the stream state at the start of the
/// session (i.e. a copy of the spec register advanced session *
/// session_length steps from reset) and is advanced `session_length` steps,
/// leaving it positioned at the start of the next session. Bit-identical to
/// the from-reset overload; turns the per-campaign cost from quadratic in
/// the session count into linear.
sim::TestSequence expand_random_session(Lfsr& runner,
                                        std::size_t session_length,
                                        std::size_t n_inputs);

/// Run the extended scheme: pure-random sessions first, the Section 4.2
/// subsequence procedure on the residual faults afterwards.
ExtendedSchemeResult run_extended_scheme(
    const fault::FaultSimulator& sim, const sim::TestSequence& T,
    std::span<const std::int32_t> detection_time,
    const ExtendedSchemeConfig& config = {});

}  // namespace wbist::core
