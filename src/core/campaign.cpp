#include "core/campaign.h"

#include <cstdio>

#include "fault/fault.h"

namespace wbist::core {

namespace {

/// `"key":N` appended to an in-progress object body.
void field_int(std::string& out, std::string_view key, long long value) {
  if (!out.empty() && out.back() != '{') out += ',';
  util::append_json_string(out, key);
  out += ':';
  out += std::to_string(value);
}

void field_str(std::string& out, std::string_view key,
               std::string_view value) {
  if (!out.empty() && out.back() != '{') out += ',';
  util::append_json_string(out, key);
  out += ':';
  util::append_json_string(out, value);
}

std::int64_t require_int(const util::JsonValue& v, std::string_view key) {
  const util::JsonValue* m = v.get(key);
  if (m == nullptr)
    throw std::runtime_error("campaign record: missing field '" +
                             std::string(key) + "'");
  return m->as_int();
}

const std::vector<util::JsonValue>& require_array(const util::JsonValue& v,
                                                  std::string_view key) {
  const util::JsonValue* m = v.get(key);
  if (m == nullptr)
    throw std::runtime_error("campaign record: missing field '" +
                             std::string(key) + "'");
  return m->as_array();
}

}  // namespace

std::vector<Shard> plan_shards(std::size_t fault_count,
                               std::size_t shard_count) {
  if (fault_count == 0)
    throw std::invalid_argument("plan_shards: no faults to shard");
  if (shard_count == 0)
    throw std::invalid_argument("plan_shards: shard count must be > 0");
  const std::size_t n = std::min(shard_count, fault_count);
  const std::size_t base = fault_count / n;
  const std::size_t extra = fault_count % n;  // first `extra` shards get +1
  std::vector<Shard> plan;
  plan.reserve(n);
  std::size_t begin = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t size = base + (k < extra ? 1 : 0);
    plan.push_back({static_cast<std::uint32_t>(k),
                    static_cast<std::uint32_t>(begin),
                    static_cast<std::uint32_t>(begin + size)});
    begin += size;
  }
  return plan;
}

std::size_t ShardResult::detected_count() const {
  std::size_t n = 0;
  for (const std::int32_t t : detection_time)
    if (t != fault::DetectionResult::kUndetected) ++n;
  return n;
}

void merge_shard(FaultSimResult& into, const ShardResult& shard) {
  if (shard.begin > shard.end || shard.end > into.total())
    throw std::invalid_argument(
        "merge_shard: shard " + std::to_string(shard.shard) + " range [" +
        std::to_string(shard.begin) + ", " + std::to_string(shard.end) +
        ") outside fault list of " + std::to_string(into.total()));
  const std::size_t size = shard.end - shard.begin;
  if (shard.detection_time.size() != size ||
      shard.detecting_line.size() != size)
    throw std::invalid_argument(
        "merge_shard: shard " + std::to_string(shard.shard) + " carries " +
        std::to_string(shard.detection_time.size()) + "/" +
        std::to_string(shard.detecting_line.size()) + " entries for a " +
        std::to_string(size) + "-fault range");
  for (std::size_t i = 0; i < size; ++i) {
    const std::size_t f = shard.begin + i;
    // Re-merging the same shard (a resume replay) must not double-count.
    if (into.detection_time[f] != fault::DetectionResult::kUndetected)
      --into.detected;
    into.detection_time[f] = shard.detection_time[i];
    into.detecting_line[f] = shard.detecting_line[i];
    if (shard.detection_time[i] != fault::DetectionResult::kUndetected)
      ++into.detected;
  }
}

std::string render_fault_sim_summary(const std::string& circuit,
                                     std::size_t detected, std::size_t total,
                                     std::size_t vectors) {
  char buf[160];
  std::snprintf(
      buf, sizeof buf, "%s: %zu/%zu faults detected (%.1f%%), %zu vectors\n",
      circuit.c_str(), detected, total,
      total == 0 ? 100.0
                 : 100.0 * static_cast<double>(detected) /
                       static_cast<double>(total),
      vectors);
  return buf;
}

std::string render_fault_sim_result_json(const FaultSimResult& result) {
  std::string out = "{";
  field_str(out, "schema", kCampaignSchema);
  field_str(out, "kind", "fault_sim_result");
  field_str(out, "circuit", result.circuit);
  field_int(out, "seq_len", static_cast<long long>(result.seq_length));
  field_int(out, "faults", static_cast<long long>(result.total()));
  field_int(out, "detected", static_cast<long long>(result.detected));
  out += ",\"times\":[";
  for (std::size_t i = 0; i < result.detection_time.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(result.detection_time[i]);
  }
  out += "],\"lines\":[";
  for (std::size_t i = 0; i < result.detecting_line.size(); ++i) {
    if (i != 0) out += ',';
    out += result.detecting_line[i] == netlist::kNoNode
               ? "-1"
               : std::to_string(result.detecting_line[i]);
  }
  out += "]}\n";
  return out;
}

void append_shard_fields(std::string& out, const ShardResult& shard) {
  field_int(out, "shard", shard.shard);
  field_int(out, "begin", shard.begin);
  field_int(out, "end", shard.end);
  field_int(out, "attempt", shard.attempt);
  field_int(out, "detected", static_cast<long long>(shard.detected_count()));
  if (!out.empty() && out.back() != '{') out += ',';
  out += "\"times\":[";
  for (std::size_t i = 0; i < shard.detection_time.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(shard.detection_time[i]);
  }
  out += "],\"lines\":[";
  for (std::size_t i = 0; i < shard.detecting_line.size(); ++i) {
    if (i != 0) out += ',';
    out += shard.detecting_line[i] == netlist::kNoNode
               ? "-1"
               : std::to_string(shard.detecting_line[i]);
  }
  out += ']';
  field_int(out, "kernel_cycles",
            static_cast<long long>(shard.kernel_cycles));
  field_int(out, "fault_cycles", static_cast<long long>(shard.fault_cycles));
}

ShardResult parse_shard_fields(const util::JsonValue& record) {
  ShardResult s;
  s.shard = static_cast<std::uint32_t>(require_int(record, "shard"));
  s.begin = static_cast<std::uint32_t>(require_int(record, "begin"));
  s.end = static_cast<std::uint32_t>(require_int(record, "end"));
  s.attempt = static_cast<std::uint32_t>(record.get_int("attempt", 1));
  s.kernel_cycles =
      static_cast<std::uint64_t>(record.get_int("kernel_cycles", 0));
  s.fault_cycles =
      static_cast<std::uint64_t>(record.get_int("fault_cycles", 0));
  if (s.begin > s.end)
    throw std::runtime_error("campaign record: shard range reversed");
  const std::size_t size = s.end - s.begin;
  const auto& times = require_array(record, "times");
  const auto& lines = require_array(record, "lines");
  if (times.size() != size || lines.size() != size)
    throw std::runtime_error(
        "campaign record: shard " + std::to_string(s.shard) + " carries " +
        std::to_string(times.size()) + "/" + std::to_string(lines.size()) +
        " entries for a " + std::to_string(size) + "-fault range");
  s.detection_time.reserve(size);
  s.detecting_line.reserve(size);
  for (const util::JsonValue& v : times)
    s.detection_time.push_back(static_cast<std::int32_t>(v.as_int()));
  for (const util::JsonValue& v : lines) {
    const std::int64_t id = v.as_int();
    s.detecting_line.push_back(
        id < 0 ? netlist::kNoNode : static_cast<netlist::NodeId>(id));
  }
  return s;
}

CampaignCheckpoint load_campaign_checkpoint(const std::string& path) {
  const util::JsonlReadResult raw = util::read_jsonl_file(path);
  CampaignCheckpoint ck;
  ck.skipped_truncated_line = raw.truncated_trailer;
  bool saw_header = false;
  for (std::size_t ln = 0; ln < raw.lines.size(); ++ln) {
    util::JsonValue rec;
    try {
      rec = util::json_parse(raw.lines[ln]);
    } catch (const std::exception& e) {
      // A torn *trailing* line is a crash artifact and tolerated by the
      // reader layer; a malformed line with records after it means the
      // stream is corrupt and no partial merge can be trusted.
      throw CampaignCheckpointError(
          "checkpoint " + path + ": corrupt record on line " +
          std::to_string(ln + 1) + ": " + e.what());
    }
    const std::string event = rec.get_string("event");
    if (ln == 0) {
      if (event != "header")
        throw CampaignCheckpointError("checkpoint " + path +
                                      ": first record is not a header");
      const std::string schema = rec.get_string("schema");
      if (schema != kCampaignSchema)
        throw CampaignCheckpointError(
            "checkpoint " + path + ": schema '" + schema + "', want '" +
            std::string(kCampaignSchema) + "'");
      ck.header.circuit = rec.get_string("circuit");
      ck.header.collapse = rec.get_string("collapse");
      ck.header.faults = static_cast<std::uint64_t>(rec.get_int("faults"));
      ck.header.shards = static_cast<std::uint64_t>(rec.get_int("shards"));
      ck.header.seq_length =
          static_cast<std::uint64_t>(rec.get_int("seq_len"));
      if (const util::JsonValue* h = rec.get("seq_hash"); h != nullptr)
        ck.header.seq_hash = std::stoull(h->as_string(), nullptr, 16);
      saw_header = true;
      continue;
    }
    if (event == "shard") {
      ShardResult s;
      try {
        s = parse_shard_fields(rec);
      } catch (const std::exception& e) {
        throw CampaignCheckpointError("checkpoint " + path + ": line " +
                                      std::to_string(ln + 1) + ": " +
                                      e.what());
      }
      if (ck.shards.count(s.shard) != 0) ++ck.duplicate_records;
      ck.shards[s.shard] = std::move(s);  // last record wins
    } else if (event == "done") {
      ck.complete = true;
    }
    // "retry" and unknown events are informational; skip.
  }
  if (!saw_header)
    throw CampaignCheckpointError("checkpoint " + path +
                                  ": empty stream (no header record)");
  return ck;
}

void CampaignCheckpointWriter::open(const std::string& path,
                                    const CampaignHeader& header,
                                    bool resume) {
  writer_.open(path, resume);
  if (resume) return;
  char hash[24];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(header.seq_hash));
  std::string line = "{";
  field_str(line, "schema", kCampaignSchema);
  field_str(line, "event", "header");
  field_str(line, "circuit", header.circuit);
  field_str(line, "collapse", header.collapse);
  field_int(line, "faults", static_cast<long long>(header.faults));
  field_int(line, "shards", static_cast<long long>(header.shards));
  field_int(line, "seq_len", static_cast<long long>(header.seq_length));
  field_str(line, "seq_hash", hash);
  line += '}';
  writer_.write_line(line);
}

void CampaignCheckpointWriter::record_shard(const ShardResult& shard) {
  std::string line = "{";
  field_str(line, "event", "shard");
  append_shard_fields(line, shard);
  line += '}';
  writer_.write_line(line);
}

void CampaignCheckpointWriter::record_retry(std::uint32_t shard,
                                            std::uint32_t attempt,
                                            const std::string& reason) {
  std::string line = "{";
  field_str(line, "event", "retry");
  field_int(line, "shard", shard);
  field_int(line, "attempt", attempt);
  field_str(line, "reason", reason);
  line += '}';
  writer_.write_line(line);
}

void CampaignCheckpointWriter::record_done(std::size_t detected,
                                           std::size_t faults) {
  std::string line = "{";
  field_str(line, "event", "done");
  field_int(line, "detected", static_cast<long long>(detected));
  field_int(line, "faults", static_cast<long long>(faults));
  line += '}';
  writer_.write_line(line);
}

}  // namespace wbist::core
