// Observation-point insertion experiment (Section 5, Tables 7-16).
//
// Weight assignments are selected out of Ω greedily (largest number of
// newly detected faults first). For every prefix Ω_lim of that order, the
// faults Ω detects but Ω_lim misses are candidates for observation points:
// OP(f) is the set of lines on which fault f's effect is visible under some
// sequence of Ω_lim, and a greedy covering chooses a minimal-ish set of
// lines OP detecting every coverable fault. The resulting rows trace the
// paper's tradeoff between #assignments and #observation points.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/assignment.h"
#include "fault/fault_sim.h"

namespace wbist::core {

struct ObsRow {
  std::size_t n_seq = 0;       ///< |Ω_lim|
  std::size_t n_subs = 0;      ///< distinct subsequences in Ω_lim
  std::size_t max_len = 0;     ///< longest subsequence in Ω_lim
  double fe_before = 0;        ///< % of Ω-detected faults caught by Ω_lim
  std::size_t n_obs = 0;       ///< observation points inserted
  double fe_after = 0;         ///< % caught with the observation points
  std::vector<netlist::NodeId> observation_points;
};

struct ObsTradeoffConfig {
  std::size_t sequence_length = 2000;  ///< L_G
  /// Rows whose final fault efficiency is below this are dropped, matching
  /// the paper's "99% or higher" reporting rule (fraction, not percent).
  double min_final_fe = 0.99;
  /// Fault-simulation worker threads (0 = hardware_concurrency, 1 = serial).
  unsigned threads = 0;
};

struct ObsTradeoffResult {
  std::vector<ObsRow> rows;     ///< one per greedy prefix, ascending n_seq
  std::size_t total_targets = 0;  ///< faults detected by the full Ω
};

/// Run the tradeoff experiment for the (unpruned) assignment set Ω against
/// `targets` (the faults detected by the deterministic sequence).
ObsTradeoffResult observation_point_tradeoff(
    const fault::FaultSimulator& sim, std::span<const WeightAssignment> omega,
    std::span<const fault::FaultId> targets,
    const ObsTradeoffConfig& config = {});

}  // namespace wbist::core
