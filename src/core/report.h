// Table-6 style result rows: the per-circuit summary the paper reports.
#pragma once

#include <span>
#include <string>

#include "core/assignment.h"
#include "core/fsm_synth.h"

namespace wbist::core {

struct Table6Row {
  std::string circuit;
  std::size_t t_length = 0;     ///< "given seq / len": |T|
  std::size_t t_detected = 0;   ///< "given seq / det": faults T detects
  std::size_t n_seq = 0;        ///< "proposed / seq": |Ω| after pruning
  std::size_t n_subs = 0;       ///< "proposed / subs": distinct subsequences
  std::size_t max_len = 0;      ///< "proposed / len": longest subsequence
  std::size_t n_fsms = 0;       ///< "FSMs / num" (after primitive merging)
  std::size_t n_fsm_outputs = 0;  ///< "FSMs / out"
};

/// Assemble a row from a pruned assignment set. `fsms` must be the
/// synthesis result over exactly the subsequences of `omega`.
Table6Row make_table6_row(std::string circuit, std::size_t t_length,
                          std::size_t t_detected,
                          std::span<const WeightAssignment> omega,
                          const FsmSynthesisResult& fsms);

}  // namespace wbist::core
