#include "core/flow.h"

#include "fault/fault.h"
#include "util/metrics.h"
#include "util/provenance.h"
#include "util/trace.h"

namespace wbist::core {

using fault::DetectionResult;
using fault::FaultId;

FlowResult run_flow(const fault::FaultSimulator& sim,
                    const std::string& circuit_name,
                    const FlowConfig& config) {
  util::PhaseScope flow_phase("flow");
  util::TraceSpan flow_span("flow",
                            util::TraceArg::copy("circuit", circuit_name));
  FlowResult flow;

  // 1. Deterministic sequence T (substitute for STRATEGATE/SEQCOM).
  {
    util::PhaseScope phase("flow.tgen");
    util::TraceSpan span("flow.tgen");
    tgen::TgenResult gen = tgen::generate_test_sequence(sim, config.tgen);
    flow.sequence = std::move(gen.sequence);
    flow.detection_time = std::move(gen.detection_time);
  }

  // 2. Static compaction, preserving every detected fault.
  if (config.compact && flow.sequence.length() > 1) {
    util::PhaseScope phase("flow.compaction");
    util::TraceSpan span("flow.compaction",
                         util::TraceArg("length", flow.sequence.length()));
    std::vector<FaultId> must;
    for (FaultId f = 0; f < flow.detection_time.size(); ++f)
      if (flow.detection_time[f] != DetectionResult::kUndetected)
        must.push_back(f);
    tgen::CompactionResult comp =
        tgen::compact_sequence(sim, flow.sequence, must, config.compaction);
    flow.sequence = std::move(comp.sequence);
    flow.detection_time = std::move(comp.detection_time);
  }
  const fault::FaultSet& fault_set = sim.fault_set();
  flow.uncollapsed_total = fault_set.uncollapsed_size();
  for (FaultId f = 0; f < flow.detection_time.size(); ++f) {
    if (flow.detection_time[f] == DetectionResult::kUndetected) continue;
    ++flow.t_detected;
    flow.uncollapsed_detected += fault_set.represented_size(f);
  }

  // Provenance for faults detected by the deterministic sequence T itself:
  // one observation-only re-simulation over the detected faults recovers the
  // detecting line for each. Detection times are reproduced exactly — both
  // tgen and compaction derive detection_time from a fresh simulation of the
  // sequence they return.
  if (util::provenance().enabled() && flow.t_detected > 0) {
    std::vector<FaultId> detected;
    for (FaultId f = 0; f < flow.detection_time.size(); ++f)
      if (flow.detection_time[f] != DetectionResult::kUndetected)
        detected.push_back(f);
    fault::FaultSimOptions opts;
    opts.threads = config.procedure.threads;
    const DetectionResult det = sim.run(flow.sequence, detected, opts);
    const netlist::Netlist& nl = sim.circuit();
    for (std::size_t k = 0; k < detected.size(); ++k) {
      const FaultId f = detected[k];
      const std::string site = fault::fault_name(nl, fault_set[f]);
      std::string obs;
      if (det.detected(k) && det.detecting_line[k] != netlist::kNoNode)
        obs = nl.node(det.detecting_line[k]).name;
      util::provenance().record(
          {.phase = "tgen",
           .fault = f,
           .site = site,
           .class_size = fault_set.class_size(f),
           .represented_size = fault_set.represented_size(f),
           .u = det.detected(k) ? det.detection_time[k]
                                : flow.detection_time[f],
           .obs = obs});
    }
  }

  // 3. Weight-assignment selection (Section 4.2). select_weight_assignments
  // times itself under "procedure".
  flow.procedure = select_weight_assignments(sim, flow.sequence,
                                             flow.detection_time,
                                             config.procedure);

  // 4. Reverse-order simulation (Section 4.3); timed under "reverse_sim".
  std::vector<FaultId> targets;
  for (FaultId f = 0; f < flow.detection_time.size(); ++f)
    if (flow.detection_time[f] != DetectionResult::kUndetected)
      targets.push_back(f);
  flow.pruned = reverse_order_prune(sim, flow.procedure.omega, targets,
                                    flow.procedure.sequence_length,
                                    config.procedure.threads);

  // 5. FSM synthesis over the surviving subsequences.
  {
    util::PhaseScope phase("flow.fsm_synth");
    util::TraceSpan span("flow.fsm_synth");
    std::vector<Subsequence> subs;
    for (const WeightAssignment& w : flow.pruned.omega)
      subs.insert(subs.end(), w.per_input.begin(), w.per_input.end());
    flow.fsms = synthesize_weight_fsms(subs);
  }

  flow.table6 = make_table6_row(circuit_name, flow.sequence.length(),
                                flow.t_detected, flow.pruned.omega, flow.fsms);
  return flow;
}

}  // namespace wbist::core
