// Multiple-input signature register (MISR) response compaction.
//
// The paper's Figure-1 generator drives the CUT inputs; a complete BIST
// architecture also needs on-chip response evaluation. This module adds the
// standard choice — an XOR-form MISR hanging off the primary outputs — both
// as a software model (signature computation over simulated responses) and
// as a netlist transformation (attach_misr), so the whole self-test loop
// can be verified inside the library's own simulator.
//
// Unknown handling: ISCAS circuits power up in the all-X state, and an X
// captured into a MISR corrupts the signature forever. Signature capture is
// therefore gated by an enable that opens after a warm-up period; the
// warm-up is computed from the good machine (first cycle after which every
// primary output is binary for the rest of the session).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sim/logic.h"
#include "sim/sequence.h"

namespace wbist::core {

/// Software MISR model. State update per captured cycle:
///   state' = (state << 1 | msb-feedback via taps) XOR inputs
/// with inputs = the PO vector (input k XORed into bit k % width).
class Misr {
 public:
  /// Width 2..32; taps as in Lfsr (feedback polynomial over state bits).
  explicit Misr(unsigned width);

  unsigned width() const { return width_; }
  const std::vector<unsigned>& taps() const { return taps_; }

  void reset() { state_ = 0; }
  std::uint32_t state() const { return state_; }

  /// Capture one response vector. Returns false (and poisons the
  /// signature) if any captured value is X.
  bool capture(std::span<const sim::Val3> response);

  /// Signature over a full response stream, capturing cycles
  /// [warmup, responses.size()). nullopt if any captured value is X.
  std::optional<std::uint32_t> signature(
      std::span<const std::vector<sim::Val3>> responses, std::size_t warmup);

 private:
  unsigned width_;
  std::vector<unsigned> taps_;
  std::uint32_t state_ = 0;
  bool poisoned_ = false;
};

/// First cycle w such that every primary-output response in
/// responses[w..end) is binary; nullopt if no such cycle exists.
std::optional<std::size_t> compute_warmup(
    std::span<const std::vector<sim::Val3>> responses);

/// Result of attaching a MISR to a circuit copy.
struct MisrHardware {
  netlist::Netlist netlist;          ///< CUT + MISR, finalized
  netlist::NodeId enable = netlist::kNoNode;  ///< new PI "MISR_EN"
  std::vector<netlist::NodeId> state;         ///< MISR flip-flops, bit order
};

/// Append an XOR-form MISR observing the CUT's primary outputs. The CUT's
/// own PIs/POs are unchanged; two things are added: a capture-enable input
/// (holding it low clears the register, which realizes both reset-to-zero
/// and warm-up gating) and `width` MISR flip-flops marked as additional
/// primary outputs for signature readout.
MisrHardware attach_misr(const netlist::Netlist& cut, unsigned width,
                         const Misr& model);

/// Low-level emission used by attach_misr and the self-test assembler:
/// instantiate the MISR in `nl` observing `inputs` (input k folds into lane
/// k % width). `enable` low clears the register synchronously. Returns the
/// state-bit node ids (not marked as outputs).
std::vector<netlist::NodeId> emit_misr(netlist::Netlist& nl,
                                       const Misr& model,
                                       std::span<const netlist::NodeId> inputs,
                                       netlist::NodeId enable,
                                       const std::string& prefix);

}  // namespace wbist::core
