// Sharded fault-simulation campaigns: planning, deterministic merge, and
// the wbist.campaign/1 checkpoint stream.
//
// A campaign evaluates one test sequence against a circuit's entire
// collapsed fault list by splitting the list into contiguous *shards* and
// fault-simulating each shard independently (in practice: in parallel
// worker processes — see serve/campaign_runner.h). Because every fault's
// detection time depends only on the circuit, the sequence, and the fault
// itself — group packing, kernels, threads, and the simulation levers are
// all pinned bit-identical by the fault-sim test suite — per-shard results
// merge into a FaultSimResult that is bit-identical to a single-process
// FaultSimulator::run_all over the same sequence, no matter how the list
// was sharded or in which order shards completed.
//
// The checkpoint is an append-only JSONL stream (schema "wbist.campaign/1",
// docs/schemas/wbist.campaign-v1.md): a header line pinning the campaign's
// identity (circuit, collapse mode, fault count, shard plan, sequence
// hash), then one line per completed shard carrying that shard's full
// per-fault detection data. A campaign killed at any point can therefore
// --resume: completed shards replay from the checkpoint byte-for-byte, and
// only the missing shards are re-simulated. The loader is tolerant exactly
// where crash recovery needs it (a truncated trailing line is skipped, a
// duplicated shard record is last-wins) and strict everywhere else (schema
// or header mismatch refuses to merge anything).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_sim.h"
#include "netlist/netlist.h"
#include "util/json.h"
#include "util/jsonl.h"

namespace wbist::core {

inline constexpr std::string_view kCampaignSchema = "wbist.campaign/1";

// ---------------------------------------------------------------------------
// Shard planning

struct Shard {
  std::uint32_t index = 0;
  std::uint32_t begin = 0;  ///< first fault id (inclusive)
  std::uint32_t end = 0;    ///< one past the last fault id
};

/// Split `fault_count` faults into `shard_count` contiguous, disjoint,
/// covering shards, sizes differing by at most one (larger shards first).
/// Deterministic. Empty shards are never produced: the plan has
/// min(shard_count, fault_count) entries. Throws std::invalid_argument when
/// either count is zero.
std::vector<Shard> plan_shards(std::size_t fault_count,
                               std::size_t shard_count);

// ---------------------------------------------------------------------------
// Results and deterministic merge

/// The product of a fault-simulation campaign: per-fault detection data for
/// the whole collapsed list, plus the identifying context. Bit-identical to
/// a single-process run_all (see render_fault_sim_result_json for the
/// canonical serialized form used by CI's diff gates).
struct FaultSimResult {
  std::string circuit;
  std::size_t seq_length = 0;
  /// Aligned with fault ids 0..total-1; fault::DetectionResult::kUndetected
  /// where undetected.
  std::vector<std::int32_t> detection_time;
  /// First detecting observed line per fault; netlist::kNoNode where
  /// undetected.
  std::vector<netlist::NodeId> detecting_line;
  std::size_t detected = 0;

  std::size_t total() const { return detection_time.size(); }
};

/// One completed shard: the detection slices for fault ids [begin, end).
struct ShardResult {
  std::uint32_t shard = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t attempt = 1;  ///< 1 = first try (informational)
  std::vector<std::int32_t> detection_time;   ///< end - begin entries
  std::vector<netlist::NodeId> detecting_line;  ///< end - begin entries
  /// Worker-side simulation effort for this shard (wbist.metrics/1 deltas),
  /// summed by the driver into the campaign's aggregate cost record.
  std::uint64_t kernel_cycles = 0;
  std::uint64_t fault_cycles = 0;

  std::size_t detected_count() const;
};

/// Copy `shard`'s slices into `into` (which must already be sized to the
/// full fault list) and update the detected count. Throws
/// std::invalid_argument on a malformed shard (range out of bounds or
/// slice sizes that do not match the range). Merging the shards of a plan
/// in any order yields the same FaultSimResult.
void merge_shard(FaultSimResult& into, const ShardResult& shard);

/// The canonical one-line human summary, shared verbatim by `wbist fsim`
/// (core::run_fault_sim_job) and `wbist campaign` so the two paths can be
/// diffed byte for byte: "s27: 31/32 faults detected (96.9%), 14 vectors\n".
std::string render_fault_sim_summary(const std::string& circuit,
                                     std::size_t detected, std::size_t total,
                                     std::size_t vectors);

/// The canonical machine-readable form of a campaign / fsim result: one
/// JSON document with the per-fault detection arrays. Two runs over the
/// same circuit + sequence produce byte-identical documents regardless of
/// process count, sharding, threads, or kernel — this is CI's bit-identity
/// gate for the campaign runner.
std::string render_fault_sim_result_json(const FaultSimResult& result);

// ---------------------------------------------------------------------------
// Checkpoint stream (wbist.campaign/1)

/// Campaign identity, pinned by the checkpoint header. A resume refuses to
/// merge anything unless every field matches the live campaign.
struct CampaignHeader {
  std::string circuit;
  std::string collapse;        ///< "none" | "equivalence" | "dominance"
  std::uint64_t faults = 0;    ///< collapsed fault-list size
  std::uint64_t shards = 0;    ///< shard-plan size
  std::uint64_t seq_length = 0;
  std::uint64_t seq_hash = 0;  ///< fnv1a64 of the comment-free sequence text
};

/// A checkpoint problem that must stop the campaign *before* any partial
/// merge: unknown schema, corrupt (non-trailer) record, or a header that
/// does not match the live campaign. The CLI maps it to exit 2.
class CampaignCheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A loaded checkpoint: the header plus the completed shards (last record
/// wins for duplicated shard indices), with the tolerance counters CI and
/// tests assert on.
struct CampaignCheckpoint {
  CampaignHeader header;
  std::map<std::uint32_t, ShardResult> shards;
  std::size_t duplicate_records = 0;   ///< shard records superseded
  bool skipped_truncated_line = false;  ///< torn trailer was ignored
  bool complete = false;               ///< a "done" record was seen
};

/// Load and validate a checkpoint stream. Throws CampaignCheckpointError on
/// schema mismatch, a missing/invalid header, or a corrupt complete line;
/// throws std::runtime_error when the file cannot be read. A truncated
/// trailing line and duplicate shard records are tolerated and counted.
CampaignCheckpoint load_campaign_checkpoint(const std::string& path);

/// Append-only checkpoint writer. Every record is flushed as it is
/// written, so the stream is exactly as complete as the campaign's
/// progress at any kill point.
class CampaignCheckpointWriter {
 public:
  /// Start a fresh stream at `path` (truncates, writes the header line) or,
  /// when `resume` is true, append to an existing one (no new header — the
  /// caller has already validated the existing header via
  /// load_campaign_checkpoint).
  void open(const std::string& path, const CampaignHeader& header,
            bool resume);

  bool is_open() const { return writer_.is_open(); }

  void record_shard(const ShardResult& shard);
  void record_retry(std::uint32_t shard, std::uint32_t attempt,
                    const std::string& reason);
  void record_done(std::size_t detected, std::size_t faults);
  void close() { writer_.close(); }

 private:
  util::JsonlWriter writer_;
};

// ---------------------------------------------------------------------------
// Record (de)serialization, shared by the checkpoint stream and the worker
// wire protocol (a worker's shard response carries exactly a shard record's
// fields, so the driver can checkpoint a response without re-encoding).

/// Append the body fields of a shard record ("shard", "begin", "end",
/// "attempt", "detected", "times", "lines", "kernel_cycles",
/// "fault_cycles") to an in-progress JSON object body (no braces; callers
/// add their own "event"/"ok" framing). Undetected lines are encoded -1.
void append_shard_fields(std::string& out, const ShardResult& shard);

/// Parse the shard fields back out of a parsed record. Throws
/// std::runtime_error on missing/mistyped fields or slice-size mismatches.
ShardResult parse_shard_fields(const util::JsonValue& record);

}  // namespace wbist::core
