// Content-addressed cache of compiled circuit artifacts.
//
// Compiling a circuit — parsing the `.bench` text (or building a registry
// circuit), levelizing, collapsing the fault universe, and closing the
// sequential fanout cones — is by far the most expensive fixed cost of
// every wbist job. A one-shot CLI pays it once per process; a long-running
// `wbist serve` daemon would pay it once per *request* unless the results
// are kept. This module makes the compiled form an immutable, shareable
// artifact:
//
//   * `CompiledCircuit` bundles the finalized netlist, the collapsed fault
//     set, the uncollapsed fault count, and the `FanoutCones` closure. It is
//     immutable after construction, so any number of concurrent jobs can
//     hold a `std::shared_ptr<const CompiledCircuit>` and build their own
//     short-lived `fault::FaultSimulator`s on top of it (the simulator
//     borrows the cones instead of recomputing them; see fault/fault_sim.h).
//
//   * `ArtifactCache` maps a content key — FNV-1a hash of the exact `.bench`
//     text, or the registry name, plus every option that changes the
//     compiled form (today: the collapse mode) — to the artifact, with an
//     LRU byte budget. Lookups of in-flight compilations share the result
//     instead of compiling twice, so N concurrent requests for the same
//     circuit perform exactly one compile.
//
// Observability: the cache bumps the global wbist.metrics/1 counters
//   artifact_cache.hits / .misses / .evictions / .compiles
// and each compile runs under a "compile_circuit" trace span, so a metrics
// dump proves whether a request re-derived anything.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "fault/fault_list.h"
#include "netlist/cones.h"
#include "netlist/netlist.h"

namespace wbist::core {

/// Options that change the compiled form (and therefore the cache key).
struct CompileOptions {
  fault::CollapseMode collapse = fault::CollapseMode::kEquivalence;
};

/// What to compile: exactly one of `registry_name` (a circuits::registry
/// name, built deterministically) or `bench_text` (verbatim `.bench`
/// source) must be non-empty.
struct CircuitSpec {
  std::string registry_name;
  std::string bench_text;
  /// Display name for bench text (defaults to the netlist's own name).
  std::string display_name;
};

/// An immutable compiled circuit. Everything a flow/tgen/fault-sim job
/// needs that depends only on the circuit and the compile options.
class CompiledCircuit {
 public:
  /// Compile from a spec. Throws whatever the parser/registry throws on
  /// invalid input. This is the only way work is (re)derived; everything
  /// downstream takes `const CompiledCircuit&`.
  static std::shared_ptr<const CompiledCircuit> compile(
      const CircuitSpec& spec, const CompileOptions& options = {});

  /// The cache key `spec` + `options` map to (stable across processes:
  /// registry names key by name, bench text by FNV-1a content hash).
  static std::string key_for(const CircuitSpec& spec,
                             const CompileOptions& options);

  const std::string& key() const { return key_; }
  const std::string& name() const { return netlist_.name(); }
  const netlist::Netlist& netlist() const { return netlist_; }
  const fault::FaultSet& faults() const { return faults_; }
  const netlist::FanoutCones& cones() const { return *cones_; }
  std::size_t uncollapsed_fault_count() const { return uncollapsed_faults_; }
  const CompileOptions& options() const { return options_; }

  /// Approximate resident size, the unit of the cache's byte budget. The
  /// cone bitsets dominate (node_count^2 bits); netlist and fault-list
  /// contributions are estimated per element.
  std::size_t approx_bytes() const { return approx_bytes_; }

 private:
  CompiledCircuit() = default;

  std::string key_;
  netlist::Netlist netlist_;
  fault::FaultSet faults_;
  std::size_t uncollapsed_faults_ = 0;
  std::unique_ptr<const netlist::FanoutCones> cones_;
  CompileOptions options_;
  std::size_t approx_bytes_ = 0;
};

/// 64-bit FNV-1a, the content hash behind bench-text keys.
std::uint64_t fnv1a64(std::string_view data);

class ArtifactCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;       ///< served from the cache (or an in-flight
                                  ///  compile another request started)
    std::uint64_t misses = 0;     ///< had to start a compile
    std::uint64_t evictions = 0;  ///< artifacts dropped by the byte budget
    std::uint64_t compiles = 0;   ///< compiles that produced an artifact
                                  ///  (== misses unless a compile failed)
    std::size_t entries = 0;      ///< resident artifacts
    std::size_t bytes = 0;        ///< resident approx_bytes sum
  };

  /// `byte_budget` bounds the resident set (approx_bytes sum). At least one
  /// artifact is always retained, so a single circuit larger than the
  /// budget still caches. 0 keeps the default (256 MiB).
  explicit ArtifactCache(std::size_t byte_budget = 0);

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// The artifact for `spec` + `options`, compiling at most once per key
  /// process-wide no matter how many threads ask concurrently. Thread-safe.
  /// Compile failures propagate to every waiter and are not cached (a
  /// later request retries). `was_hit`, when non-null, reports whether this
  /// request was served without starting a compile (resident entry or an
  /// in-flight compile another request started).
  std::shared_ptr<const CompiledCircuit> get_or_compile(
      const CircuitSpec& spec, const CompileOptions& options = {},
      bool* was_hit = nullptr);

  Stats stats() const;
  std::size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CompiledCircuit> artifact;
  };
  using LruList = std::list<Entry>;

  void evict_to_budget_locked();

  const std::size_t byte_budget_;

  mutable std::mutex mu_;
  std::condition_variable inflight_cv_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> by_key_;
  /// Keys currently compiling; waiters block on inflight_cv_ until the
  /// compiling thread publishes (or fails and erases the marker).
  std::unordered_map<std::string, bool> inflight_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t compiles_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace wbist::core
