// End-to-end flow: circuit -> deterministic sequence -> weight assignments
// -> pruned Ω -> FSM synthesis -> Table-6 row.
//
// This is the one-call public entry point used by the examples and the
// experiment harnesses; each stage is also available individually through
// the module headers.
#pragma once

#include <string>

#include "core/procedure.h"
#include "core/report.h"
#include "core/reverse_sim.h"
#include "fault/fault_sim.h"
#include "tgen/compaction.h"
#include "tgen/random_tgen.h"

namespace wbist::core {

struct FlowConfig {
  tgen::TgenConfig tgen;
  bool compact = true;                 ///< static compaction of T (the paper
                                       ///  uses compacted sequences)
  tgen::CompactionConfig compaction;
  ProcedureConfig procedure;
};

struct FlowResult {
  /// The deterministic test sequence T (after compaction when enabled) and
  /// per-fault detection times under it.
  sim::TestSequence sequence;
  std::vector<std::int32_t> detection_time;
  std::size_t t_detected = 0;

  /// T's detection expanded over the uncollapsed fault universe: every
  /// detected fault counts its whole equivalence class plus any absorbed
  /// dominator classes (FaultSet::represented_size). A collapsed-list run
  /// thereby reports coverage over the full list; under dominance
  /// collapsing the expansion is a sound lower bound.
  std::size_t uncollapsed_detected = 0;
  std::size_t uncollapsed_total = 0;

  double uncollapsed_coverage() const {
    return uncollapsed_total == 0
               ? 1.0
               : static_cast<double>(uncollapsed_detected) /
                     static_cast<double>(uncollapsed_total);
  }

  ProcedureResult procedure;   ///< Ω before pruning, S, statistics
  ReverseSimResult pruned;     ///< Ω after reverse-order simulation
  FsmSynthesisResult fsms;     ///< FSMs for the pruned Ω
  Table6Row table6;            ///< the summary row
};

/// Run the complete flow on the simulator's circuit.
FlowResult run_flow(const fault::FaultSimulator& sim,
                    const std::string& circuit_name,
                    const FlowConfig& config = {});

}  // namespace wbist::core
