// Full self-test assembly: the Figure-1 generator, the circuit under test
// and a MISR composed into ONE autonomous netlist.
//
// The assembled chip model has a single input (R, the test-start pulse) and
// the MISR state bits as outputs. Pulsing R and clocking for
// session_count x session_length cycles applies every weighted session to
// the CUT and accumulates the response signature; the test passes if the
// final signature equals `expected_signature` (computed from the golden
// software model, and independently checkable against the assembled
// hardware — the integration tests do exactly that).
//
// Capture gating: the CUT powers up in the all-X state, so captures are
// enabled only from `warmup_cycles` onwards (a comparator on the session /
// divider counters). The warm-up is derived from the golden simulation:
// once every CUT flip-flop holds a binary value it stays binary, so a
// single global warm-up suffices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/assignment.h"
#include "core/generator_hw.h"
#include "core/misr.h"
#include "fault/fault_list.h"
#include "netlist/netlist.h"

namespace wbist::core {

struct SelfTestConfig {
  unsigned misr_width = 16;
  /// Extra margin added to the automatically determined warm-up.
  std::size_t warmup_margin = 0;
};

struct SelfTestHardware {
  netlist::Netlist netlist;  ///< PI: "R"; POs: MISR state bits
  std::size_t session_length = 0;
  std::size_t session_count = 0;
  std::size_t warmup_cycles = 0;        ///< captures start at this cycle
  std::uint32_t expected_signature = 0; ///< golden signature
  std::vector<netlist::NodeId> misr_state;

  /// CUT fault sites translated into the assembled netlist (same order as
  /// the fault set passed to assemble_self_test).
  fault::FaultSet cut_faults;

  /// Active cycles to run after the one-cycle R pulse so the signature is
  /// latched and readable on the outputs.
  std::size_t total_cycles() const {
    return session_length * session_count + 1;
  }
};

/// Assemble the self-test chip model for `cut` with the weighted sessions
/// in `omega`. Throws std::runtime_error if the CUT never produces fully
/// binary outputs under these sessions (no warm-up exists).
SelfTestHardware assemble_self_test(const netlist::Netlist& cut,
                                    const fault::FaultSet& faults,
                                    std::span<const WeightAssignment> omega,
                                    std::size_t sequence_length,
                                    const SelfTestConfig& config = {});

}  // namespace wbist::core
