// Compact Quine–McCluskey two-level minimization with don't-cares.
//
// Used to synthesize the weight-FSM output functions (Section 3): each
// subsequence of length L_S becomes one output over the ceil(log2 L_S)
// counter state bits, with the unreachable counter states as don't-cares.
// Functions here are tiny (<= 8 variables by construction), so exact prime
// generation plus essential-then-greedy covering is fast and near-minimal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wbist::core {

/// A product term over n variables. Bit k of `care` set means variable k is
/// a literal in the cube; its polarity is bit k of `value`. care == 0 is the
/// constant-1 cube.
struct Cube {
  std::uint32_t value = 0;
  std::uint32_t care = 0;

  bool covers(std::uint32_t minterm) const {
    return (minterm & care) == (value & care);
  }

  /// Number of literals.
  unsigned literal_count() const;

  /// "x1'·x3" style rendering, LSB variable first ("-" for constant 1).
  std::string str(unsigned n_vars) const;

  friend bool operator==(const Cube&, const Cube&) = default;
};

/// A sum-of-products cover. Empty cubes vector = constant 0; a cover whose
/// single cube has care == 0 = constant 1.
struct Cover {
  std::vector<Cube> cubes;

  bool evaluates(std::uint32_t minterm) const {
    for (const Cube& c : cubes)
      if (c.covers(minterm)) return true;
    return false;
  }
};

/// Minimize the single-output function with the given onset and don't-care
/// set (minterms over n_vars variables, n_vars <= 20). The result covers
/// every onset minterm, no offset minterm, and uses prime implicants only.
/// Minterm sets are tiny by construction (<= 2^8 in this library), so they
/// are passed as plain vectors for call-site convenience.
Cover minimize(unsigned n_vars, const std::vector<std::uint32_t>& onset,
               const std::vector<std::uint32_t>& dcset);

}  // namespace wbist::core
