#include "core/artifact_cache.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "circuits/registry.h"
#include "netlist/bench_io.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace wbist::core {

namespace {

constexpr std::size_t kDefaultByteBudget = 256u << 20;  // 256 MiB

std::string_view collapse_name(fault::CollapseMode mode) {
  switch (mode) {
    case fault::CollapseMode::kNone: return "none";
    case fault::CollapseMode::kEquivalence: return "equivalence";
    case fault::CollapseMode::kDominance: return "dominance";
  }
  return "?";
}

void validate_spec(const CircuitSpec& spec) {
  if (spec.registry_name.empty() == spec.bench_text.empty())
    throw std::invalid_argument(
        "artifact_cache: a CircuitSpec needs exactly one of registry_name "
        "and bench_text");
}

/// Rough per-element footprint of the variable-size structures. This is a
/// budget unit, not an allocator audit: it only has to scale with circuit
/// size so the LRU bound tracks reality.
std::size_t estimate_bytes(const netlist::Netlist& nl,
                           const fault::FaultSet& faults,
                           const netlist::FanoutCones& cones) {
  std::size_t fanin_edges = 0;
  std::size_t name_bytes = 0;
  for (netlist::NodeId id = 0; id < nl.node_count(); ++id) {
    const auto& n = nl.node(id);
    fanin_edges += n.fanin.size() + n.fanout.size();
    name_bytes += n.name.capacity();
  }
  const std::size_t netlist_bytes =
      nl.node_count() * (sizeof(netlist::Node) + sizeof(netlist::NodeId) +
                         sizeof(std::uint32_t)) +
      fanin_edges * sizeof(netlist::NodeId) + name_bytes;
  const std::size_t fault_bytes =
      faults.size() * (sizeof(fault::Fault) + 2 * sizeof(std::size_t));
  const std::size_t cone_bytes =
      cones.node_count() * cones.words() * sizeof(std::uint64_t) +
      cones.node_count() * 2 * sizeof(std::uint32_t);
  return netlist_bytes + fault_bytes + cone_bytes;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string CompiledCircuit::key_for(const CircuitSpec& spec,
                                     const CompileOptions& options) {
  validate_spec(spec);
  std::string key;
  if (!spec.registry_name.empty()) {
    key = "registry:" + spec.registry_name;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "bench:%016llx",
                  static_cast<unsigned long long>(fnv1a64(spec.bench_text)));
    key = buf;
  }
  key += '/';
  key += collapse_name(options.collapse);
  return key;
}

std::shared_ptr<const CompiledCircuit> CompiledCircuit::compile(
    const CircuitSpec& spec, const CompileOptions& options) {
  validate_spec(spec);
  util::TraceSpan span(
      "compile_circuit",
      util::TraceArg::copy("circuit", spec.registry_name.empty()
                                          ? spec.display_name
                                          : spec.registry_name));

  auto cc = std::shared_ptr<CompiledCircuit>(new CompiledCircuit);
  cc->key_ = key_for(spec, options);
  cc->options_ = options;
  if (!spec.registry_name.empty()) {
    cc->netlist_ = circuits::circuit_by_name(spec.registry_name);
  } else {
    cc->netlist_ = netlist::read_bench(spec.bench_text, spec.display_name);
  }
  cc->faults_ = fault::FaultSet::collapsed(cc->netlist_, options.collapse);
  cc->uncollapsed_faults_ = cc->faults_.uncollapsed_size();
  cc->cones_ = std::make_unique<netlist::FanoutCones>(cc->netlist_);
  cc->approx_bytes_ = estimate_bytes(cc->netlist_, cc->faults_, *cc->cones_);
  // Counted only on success so the counter answers "how many artifacts were
  // actually derived" — failed requests (bad circuit name, parse error)
  // never show up as compiles.
  util::metrics().counter("artifact_cache.compiles").add(1);
  return cc;
}

ArtifactCache::ArtifactCache(std::size_t byte_budget)
    : byte_budget_(byte_budget == 0 ? kDefaultByteBudget : byte_budget) {}

std::shared_ptr<const CompiledCircuit> ArtifactCache::get_or_compile(
    const CircuitSpec& spec, const CompileOptions& options, bool* was_hit) {
  const std::string key = CompiledCircuit::key_for(spec, options);
  auto& m = util::metrics();
  if (was_hit != nullptr) *was_hit = false;

  {
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
      const auto it = by_key_.find(key);
      if (it != by_key_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);  // touch
        ++hits_;
        m.counter("artifact_cache.hits").add(1);
        if (was_hit != nullptr) *was_hit = true;
        return it->second->artifact;
      }
      if (inflight_.count(key) == 0) break;  // we compile
      // Another thread is compiling this key: share its result. Counted as
      // a hit — this request performs no compile work of its own.
      inflight_cv_.wait(lk);
    }
    inflight_.emplace(key, true);
    ++misses_;
    m.counter("artifact_cache.misses").add(1);
  }

  std::shared_ptr<const CompiledCircuit> artifact;
  try {
    artifact = CompiledCircuit::compile(spec, options);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    inflight_.erase(key);
    inflight_cv_.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    inflight_.erase(key);
    ++compiles_;
    lru_.push_front(Entry{key, artifact});
    by_key_[key] = lru_.begin();
    bytes_ += artifact->approx_bytes();
    m.counter("artifact_cache.bytes_compiled").add(artifact->approx_bytes());
    evict_to_budget_locked();
    inflight_cv_.notify_all();
  }
  return artifact;
}

void ArtifactCache::evict_to_budget_locked() {
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.artifact->approx_bytes();
    by_key_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    util::metrics().counter("artifact_cache.evictions").add(1);
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.compiles = compiles_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace wbist::core
