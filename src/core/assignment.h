// Weight assignments (Section 4.1): one subsequence per primary input, and
// the candidate sets A_i from which assignments are drawn.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/subsequence.h"
#include "core/weight_set.h"
#include "sim/sequence.h"

namespace wbist::core {

/// A weight assignment w = {α_i : 0 <= i < n}: input i is driven with α_i^r.
struct WeightAssignment {
  std::vector<Subsequence> per_input;

  /// Expand into a test sequence of `length` time units (the sequence T_G
  /// applied during one BIST session of L_G cycles).
  sim::TestSequence expand(std::size_t length) const;

  /// Longest subsequence in the assignment.
  std::size_t max_subsequence_length() const;

  /// "01 / 0 / 100 / 1" display form.
  std::string str() const;

  friend bool operator==(const WeightAssignment&,
                         const WeightAssignment&) = default;
};

struct WeightAssignmentHash {
  std::size_t operator()(const WeightAssignment& w) const {
    std::size_t h = 0xc6a4a7935bd1e995ULL;
    SubsequenceHash sh;
    for (const Subsequence& s : w.per_input) h = h * 31 + sh(s);
    return h;
  }
};

/// One entry of a candidate set A_i: a subsequence, its index in S, and its
/// total match count n_m against T_i (Table 5's columns).
struct Candidate {
  Subsequence alpha;
  std::size_t index_in_s = 0;
  std::size_t n_m = 0;
};

/// The sets A_i of Section 4.1 for one detection time u.
struct CandidateSets {
  std::vector<std::vector<Candidate>> per_input;  ///< sorted by n_m desc

  /// Max over i of |A_i|: one more than the largest usable j.
  std::size_t max_rank() const;

  /// w_j = { α_{i, min(j, |A_i|-1)} }. Ranks beyond a set's size clamp to
  /// its last entry so every input always contributes a weight.
  WeightAssignment assignment_at(std::size_t j) const;
};

/// Build the sets A_i: every subsequence in S of length <= max_len that
/// matches T_i perfectly on the window ending at detection time `u`, sorted
/// by decreasing n_m (ties: shorter subsequence first, then smaller index in
/// S — the order of the paper's Table 5).
///
/// When `ensure_full_length` is set (Section 4.1's modification), if no rank
/// j yields an assignment whose subsequences all have length exactly
/// `max_len`, the first length-`max_len` candidate of each A_i is moved to
/// its front so that rank 0 reproduces T exactly on the window.
CandidateSets build_candidate_sets(const WeightSet& S,
                                   const sim::TestSequence& T, std::size_t u,
                                   std::size_t max_len,
                                   bool ensure_full_length = true);

}  // namespace wbist::core
