// Re-entrant job entry points over immutable compiled circuits.
//
// These are the library calls behind both the one-shot CLI subcommands and
// the `wbist serve` daemon: each takes a `const CompiledCircuit&` (see
// core/artifact_cache.h) plus job parameters, derives nothing that the
// artifact already holds, and returns the subcommand's *deterministic*
// output text (the CLI adds its wall-clock suffixes itself — timing never
// appears here, so daemon and CLI output can be diffed byte for byte).
//
// Thread-safety: every function is re-entrant; concurrent calls against the
// same CompiledCircuit are safe because the artifact is immutable and each
// call builds its own short-lived FaultSimulator on top of it.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/campaign.h"
#include "core/flow.h"
#include "sim/sequence.h"
#include "tgen/compaction.h"
#include "tgen/random_tgen.h"

namespace wbist::core {

class CompiledCircuit;
class JobObservation;

/// Thrown by Deadline::check when a job's time budget is exhausted. The
/// serve daemon maps it to the `deadline_exceeded` wire error.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& stage)
      : std::runtime_error("deadline exceeded (" + stage + ")") {}
};

/// A cooperative per-job time budget. Deadlines never alter a job's
/// output: they are polled *between* stages (check()), so a job either
/// runs a stage to completion — producing exactly the bytes an undeadlined
/// run produces — or throws DeadlineExceeded before starting it. The
/// default-constructed Deadline is inactive and never expires.
class Deadline {
 public:
  Deadline() = default;

  /// A deadline `ms` milliseconds from now (ms must be > 0).
  static Deadline after_ms(std::int64_t ms) {
    return Deadline(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(ms));
  }

  bool active() const { return active_; }
  bool expired() const {
    return active_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Throws DeadlineExceeded (tagged with `stage`) when expired.
  void check(const char* stage) const {
    if (expired()) throw DeadlineExceeded(stage);
  }

 private:
  explicit Deadline(std::chrono::steady_clock::time_point at)
      : at_(at), active_(true) {}

  std::chrono::steady_clock::time_point at_{};
  bool active_ = false;
};

/// `wbist info`: structure + fault counts. Byte-identical to the CLI.
std::string info_report(const CompiledCircuit& cc);

struct FlowJobResult {
  /// The Table-6 style row exactly as `wbist flow` prints it (without the
  /// trailing "(N.Ns)" timing line).
  std::string output;
  FlowResult flow;
};

/// `wbist flow`: the complete weighted-BIST flow. The deadline is checked
/// before the flow starts (the expensive stages live in run_flow).
///
/// All job entry points take an optional `obs` recorder (core/obs.h). When
/// non-null, stage spans and counter deltas are written into it; nothing is
/// ever read back, so results are bit-identical with or without it.
FlowJobResult run_flow_job(const CompiledCircuit& cc,
                           const FlowConfig& config = {},
                           const Deadline& deadline = {},
                           JobObservation* obs = nullptr);

struct TgenJobResult {
  /// "s27: 104 -> 31 vectors, 32/32 faults (100.0%)" — the CLI appends
  /// ", N.Ns" to this line.
  std::string summary;
  /// The compacted deterministic sequence, plus its `.seq` file rendering.
  sim::TestSequence sequence;
  std::string sequence_text;
  std::size_t detected = 0;
  std::size_t total = 0;
};

/// `wbist tgen`: deterministic sequence generation + static compaction.
/// The deadline is checked before generation and again between generation
/// and compaction.
TgenJobResult run_tgen_job(const CompiledCircuit& cc,
                           const tgen::TgenConfig& config = {},
                           const tgen::CompactionConfig& compaction = {},
                           const Deadline& deadline = {},
                           JobObservation* obs = nullptr);

struct FaultSimJobResult {
  /// "s27: 31/32 faults detected (96.9%), 14 vectors" — deterministic.
  std::string output;
  std::size_t detected = 0;
  std::size_t total = 0;
  /// The full per-fault detection data, in the campaign result form — the
  /// payload behind `wbist fsim --result-json`, which CI diffs byte for
  /// byte against `wbist campaign --result-json`.
  FaultSimResult detail;
};

/// `wbist fsim`: fault-simulate one sequence against the compiled fault
/// list. Throws std::invalid_argument when the sequence width does not
/// match the circuit's primary-input count.
FaultSimJobResult run_fault_sim_job(const CompiledCircuit& cc,
                                    const sim::TestSequence& seq,
                                    unsigned threads = 0,
                                    const Deadline& deadline = {},
                                    JobObservation* obs = nullptr);

}  // namespace wbist::core
