// Re-entrant job entry points over immutable compiled circuits.
//
// These are the library calls behind both the one-shot CLI subcommands and
// the `wbist serve` daemon: each takes a `const CompiledCircuit&` (see
// core/artifact_cache.h) plus job parameters, derives nothing that the
// artifact already holds, and returns the subcommand's *deterministic*
// output text (the CLI adds its wall-clock suffixes itself — timing never
// appears here, so daemon and CLI output can be diffed byte for byte).
//
// Thread-safety: every function is re-entrant; concurrent calls against the
// same CompiledCircuit are safe because the artifact is immutable and each
// call builds its own short-lived FaultSimulator on top of it.
#pragma once

#include <cstddef>
#include <string>

#include "core/flow.h"
#include "sim/sequence.h"
#include "tgen/compaction.h"
#include "tgen/random_tgen.h"

namespace wbist::core {

class CompiledCircuit;

/// `wbist info`: structure + fault counts. Byte-identical to the CLI.
std::string info_report(const CompiledCircuit& cc);

struct FlowJobResult {
  /// The Table-6 style row exactly as `wbist flow` prints it (without the
  /// trailing "(N.Ns)" timing line).
  std::string output;
  FlowResult flow;
};

/// `wbist flow`: the complete weighted-BIST flow.
FlowJobResult run_flow_job(const CompiledCircuit& cc,
                           const FlowConfig& config = {});

struct TgenJobResult {
  /// "s27: 104 -> 31 vectors, 32/32 faults (100.0%)" — the CLI appends
  /// ", N.Ns" to this line.
  std::string summary;
  /// The compacted deterministic sequence, plus its `.seq` file rendering.
  sim::TestSequence sequence;
  std::string sequence_text;
  std::size_t detected = 0;
  std::size_t total = 0;
};

/// `wbist tgen`: deterministic sequence generation + static compaction.
TgenJobResult run_tgen_job(const CompiledCircuit& cc,
                           const tgen::TgenConfig& config = {},
                           const tgen::CompactionConfig& compaction = {});

struct FaultSimJobResult {
  /// "s27: 31/32 faults detected (96.9%), 14 vectors" — deterministic.
  std::string output;
  std::size_t detected = 0;
  std::size_t total = 0;
};

/// `wbist fsim`: fault-simulate one sequence against the compiled fault
/// list. Throws std::invalid_argument when the sequence width does not
/// match the circuit's primary-input count.
FaultSimJobResult run_fault_sim_job(const CompiledCircuit& cc,
                                    const sim::TestSequence& seq,
                                    unsigned threads = 0);

}  // namespace wbist::core
