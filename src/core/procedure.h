// The overall weight-assignment selection procedure (Section 4.2).
//
// Detection times are visited in decreasing order; for the current time u
// the subsequence length L_S grows until the weight assignments constructed
// from the sets A_i detect every remaining fault with detection time u.
// Termination is guaranteed: at L_S = u+1 the (modified) rank-0 assignment
// reproduces T exactly through time u, so the target fault is detected.
//
// The fault-sample speedup of the paper is implemented: each candidate
// sequence T_G is first simulated against a small sample that always
// includes the fault T_G was generated for; the full fault set is simulated
// only when the sample detects something.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/assignment.h"
#include "core/weight_set.h"
#include "fault/fault_sim.h"
#include "sim/sequence.h"
#include "util/rng.h"

namespace wbist::core {

struct ProcedureConfig {
  /// L_G: length of the test sequence generated per weight assignment.
  /// Raised to |T| automatically when shorter (reproduction needs it).
  std::size_t sequence_length = 2000;

  /// Pre-simulation fault-sample size. Each candidate sequence is first
  /// simulated against a sample of at most `sample_size` *distinct* faults:
  /// the first min(|targets at u|, max(1, sample_size/2)) target faults the
  /// candidate was built for, topped up with random draws from the remaining
  /// fault list (duplicates are never added). The full fault set is only
  /// simulated when the sample detects something. 0 disables the sample
  /// pass entirely: every candidate is fully simulated.
  std::size_t sample_size = 32;

  /// L_S grows by +1 up to this value, then geometrically (x1.5), with
  /// u+1 as the final fallback. Set exact_paper_schedule to walk +1 all the
  /// way, as the paper describes (slower, same guarantees).
  std::size_t linear_growth_limit = 8;
  bool exact_paper_schedule = false;

  std::uint64_t seed = 7;  ///< fault-sampling seed

  /// Fault-simulation worker threads (0 = hardware_concurrency, 1 = serial).
  unsigned threads = 0;
};

struct ProcedureStats {
  std::size_t assignments_tried = 0;    ///< distinct candidate assignments
  std::size_t sample_rejections = 0;    ///< skipped by the sample heuristic
  std::size_t full_simulations = 0;     ///< full fault simulations of a T_G
  /// Good-machine simulations performed: exactly one per candidate T_G (the
  /// trace is shared between the sample pass and the full pass).
  std::size_t good_machine_sims = 0;
};

struct ProcedureResult {
  /// Ω: weight assignments whose sequences detected new faults, in
  /// generation order (input to reverse-order simulation / OP selection).
  std::vector<WeightAssignment> omega;

  /// Final weight set S.
  WeightSet weights;

  /// L_G actually used (config value, possibly raised to |T|).
  std::size_t sequence_length = 0;

  std::size_t target_count = 0;     ///< faults detected by T (the targets)
  std::size_t detected_count = 0;   ///< targets detected by Ω's sequences
  /// Targets given up on (only possible when T contains X values that block
  /// window reproduction; never happens for fully specified sequences).
  std::size_t abandoned_count = 0;

  ProcedureStats stats;

  double fault_efficiency() const {
    return target_count == 0
               ? 1.0
               : static_cast<double>(detected_count) /
                     static_cast<double>(target_count);
  }
};

/// Run the procedure. `detection_time` is aligned with the simulator's fault
/// set and holds u_det(f) under T, or DetectionResult::kUndetected for
/// faults T does not detect (those are not targets).
ProcedureResult select_weight_assignments(
    const fault::FaultSimulator& sim, const sim::TestSequence& T,
    std::span<const std::int32_t> detection_time,
    const ProcedureConfig& config = {});

/// Build one candidate's pre-simulation sample (exposed for tests; see
/// ProcedureConfig::sample_size for the semantics). `targets` are the faults
/// the candidate was generated for, `remaining` the full remaining fault
/// list F (targets included). The result holds distinct fault ids only and
/// is empty when `sample_size` is 0.
std::vector<fault::FaultId> build_presim_sample(
    std::span<const fault::FaultId> targets,
    std::span<const fault::FaultId> remaining, std::size_t sample_size,
    util::Rng& rng);

}  // namespace wbist::core
