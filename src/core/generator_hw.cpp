#include "core/generator_hw.h"

#include <bit>
#include <stdexcept>
#include <string>
#include <vector>

namespace wbist::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// Builder for the generator netlist: wraps Netlist with constants, lazy
/// inverters, and SOP-cover instantiation.
class HwBuilder {
 public:
  explicit HwBuilder(Netlist& nl) : nl_(&nl) {
    reset_ = nl_->add_input("R");
    not_reset_ = nl_->add_gate(GateType::kNot, "nR", {reset_});
    const_zero_ = nl_->add_gate(GateType::kAnd, "ZERO", {reset_, not_reset_});
    const_one_ = nl_->add_gate(GateType::kOr, "ONE", {reset_, not_reset_});
    inverters_.resize(not_reset_ + 1, netlist::kNoNode);
    inverters_[reset_] = not_reset_;
  }

  NodeId reset() const { return reset_; }
  NodeId not_reset() const { return not_reset_; }
  NodeId zero() const { return const_zero_; }
  NodeId one() const { return const_one_; }

  NodeId gate(GateType type, const std::string& name,
              std::vector<NodeId> fanin) {
    return nl_->add_gate(type, name, std::move(fanin));
  }

  NodeId inverter(NodeId signal) {
    if (inverters_.size() <= signal)
      inverters_.resize(signal + 1, netlist::kNoNode);
    if (inverters_[signal] == netlist::kNoNode)
      inverters_[signal] = nl_->add_gate(
          GateType::kNot, "n_" + nl_->node(signal).name, {signal});
    return inverters_[signal];
  }

  /// Instantiate an SOP cover over the given variable signals.
  NodeId cover(const Cover& c, std::span<const NodeId> vars,
               const std::string& name) {
    if (c.cubes.empty()) return const_zero_;
    std::vector<NodeId> terms;
    for (std::size_t k = 0; k < c.cubes.size(); ++k) {
      const Cube& cube = c.cubes[k];
      if (cube.care == 0) return const_one_;
      std::vector<NodeId> lits;
      for (std::size_t v = 0; v < vars.size(); ++v) {
        if (((cube.care >> v) & 1) == 0) continue;
        lits.push_back(((cube.value >> v) & 1) != 0 ? vars[v]
                                                    : inverter(vars[v]));
      }
      terms.push_back(lits.size() == 1
                          ? lits[0]
                          : gate(GateType::kAnd,
                                 name + "_t" + std::to_string(k), lits));
    }
    return terms.size() == 1
               ? terms[0]
               : gate(GateType::kOr, name + "_or", std::move(terms));
  }

 private:
  Netlist* nl_;
  NodeId reset_;
  NodeId not_reset_;
  NodeId const_zero_;
  NodeId const_one_;
  std::vector<NodeId> inverters_;
};

/// The session machinery shared by both generator flavours: the 2^k-cycle
/// divider with its wrap tick, the hold signal that phase-aligns the weight
/// FSMs, and the session counter selecting the active assignment.
struct SessionBlocks {
  NodeId tick = netlist::kNoNode;
  NodeId hold = netlist::kNoNode;  ///< low on reset or session boundary
  std::vector<NodeId> sc;          ///< session counter bits (may be empty)
};

SessionBlocks build_session_blocks(Netlist& nl, HwBuilder& hb,
                                   std::size_t session_length,
                                   std::size_t session_count) {
  SessionBlocks blocks;

  // Divider: k-bit binary counter, k = log2(session_length).
  const auto div_bits =
      static_cast<unsigned>(std::bit_width(session_length - 1));
  std::vector<NodeId> div(div_bits);
  for (unsigned b = 0; b < div_bits; ++b)
    div[b] = nl.add_dff("DIV" + std::to_string(b));
  blocks.tick =
      div_bits == 1
          ? div[0]
          : hb.gate(GateType::kAnd, "TICK",
                    std::vector<NodeId>(div.begin(), div.end()));
  {
    // next DIV_b = (DIV_b XOR carry_b) AND nR; carry_0 = 1.
    NodeId carry = hb.one();
    for (unsigned b = 0; b < div_bits; ++b) {
      const std::string nm = "DIV" + std::to_string(b);
      const NodeId toggled =
          hb.gate(GateType::kXor, nm + "_x", {div[b], carry});
      nl.connect_dff(
          div[b], hb.gate(GateType::kAnd, nm + "_d", {toggled, hb.not_reset()}));
      if (b + 1 < div_bits)
        carry = b == 0 ? div[0]
                       : hb.gate(GateType::kAnd, nm + "_c", {carry, div[b]});
    }
  }

  blocks.hold = hb.gate(GateType::kNor, "HOLD", {hb.reset(), blocks.tick});

  // Session counter: +1 at each session boundary, reset with R.
  const auto sc_bits = static_cast<unsigned>(
      session_count <= 1 ? 0 : std::bit_width(session_count - 1));
  blocks.sc.resize(sc_bits);
  for (unsigned b = 0; b < sc_bits; ++b)
    blocks.sc[b] = nl.add_dff("SC" + std::to_string(b));
  {
    NodeId enable = blocks.tick;
    for (unsigned b = 0; b < sc_bits; ++b) {
      const std::string nm = "SC" + std::to_string(b);
      const NodeId toggled =
          hb.gate(GateType::kXor, nm + "_x", {blocks.sc[b], enable});
      nl.connect_dff(
          blocks.sc[b],
          hb.gate(GateType::kAnd, nm + "_d", {toggled, hb.not_reset()}));
      if (b + 1 < sc_bits)
        enable = hb.gate(GateType::kAnd, nm + "_c", {enable, blocks.sc[b]});
    }
  }
  return blocks;
}

/// Weight FSM counters (reset on every session boundary) and the output
/// node of every (fsm, output) pair.
std::vector<std::vector<NodeId>> build_weight_fsms(
    Netlist& nl, HwBuilder& hb, const FsmSynthesisResult& fsms,
    NodeId hold) {
  std::vector<std::vector<NodeId>> fsm_out(fsms.fsms.size());
  for (std::size_t fi = 0; fi < fsms.fsms.size(); ++fi) {
    const WeightFsm& fsm = fsms.fsms[fi];
    const std::string base = "L" + std::to_string(fsm.period);
    std::vector<NodeId> state(fsm.state_bits);
    for (unsigned b = 0; b < fsm.state_bits; ++b)
      state[b] = nl.add_dff(base + "_S" + std::to_string(b));
    for (unsigned b = 0; b < fsm.state_bits; ++b) {
      const NodeId next = hb.cover(fsm.next_state[b], state,
                                   base + "_NS" + std::to_string(b));
      // Forcing to 0 on reset/tick keeps every session phase-aligned.
      nl.connect_dff(state[b],
                     hb.gate(GateType::kAnd, base + "_D" + std::to_string(b),
                             {next, hold}));
    }
    for (std::size_t k = 0; k < fsm.outputs.size(); ++k)
      fsm_out[fi].push_back(hb.cover(fsm.output_covers[k], state,
                                     base + "_Z" + std::to_string(k)));
  }
  return fsm_out;
}

/// The per-input multiplexer: session j routes signal session_signals[j][i]
/// to output TG_i.
void build_output_muxes(
    Netlist& nl, HwBuilder& hb, const SessionBlocks& blocks,
    const std::vector<std::vector<NodeId>>& session_signals,
    std::size_t n_inputs) {
  const std::size_t sessions = session_signals.size();
  for (std::size_t i = 0; i < n_inputs; ++i) {
    std::vector<NodeId> terms;
    for (std::size_t j = 0; j < sessions; ++j) {
      const NodeId signal = session_signals[j][i];
      if (blocks.sc.empty()) {
        terms.push_back(signal);
        continue;
      }
      std::vector<NodeId> decode{signal};
      for (std::size_t b = 0; b < blocks.sc.size(); ++b)
        decode.push_back(((j >> b) & 1) != 0 ? blocks.sc[b]
                                             : hb.inverter(blocks.sc[b]));
      terms.push_back(hb.gate(
          GateType::kAnd,
          "MUX" + std::to_string(i) + "_" + std::to_string(j),
          std::move(decode)));
    }
    const std::string nm = "TG" + std::to_string(i);
    const NodeId out = terms.size() == 1
                           ? hb.gate(GateType::kBuf, nm, {terms[0]})
                           : hb.gate(GateType::kOr, nm, std::move(terms));
    nl.mark_output(out);
  }
}

}  // namespace

unsigned lfsr_tap_for_input(const Lfsr& lfsr, std::size_t input) {
  // Stride coprime to common widths so adjacent CUT inputs do not share a
  // tap until the LFSR is exhausted.
  return static_cast<unsigned>((input * 7 + 3) % lfsr.width());
}

GeneratorHardware build_generator(std::span<const WeightAssignment> omega,
                                  std::size_t sequence_length) {
  if (omega.empty())
    throw std::invalid_argument("generator_hw: empty weight assignment set");
  ExtendedGeneratorSpec spec;
  spec.random_sessions = 0;
  spec.omega.assign(omega.begin(), omega.end());
  return build_extended_generator(spec, omega[0].per_input.size(),
                                  sequence_length);
}

GeneratorHardware build_extended_generator(const ExtendedGeneratorSpec& spec,
                                           std::size_t n_inputs,
                                           std::size_t sequence_length) {
  if (spec.omega.empty() && spec.random_sessions == 0)
    throw std::invalid_argument("generator_hw: no sessions at all");
  if (n_inputs == 0)
    throw std::invalid_argument("generator_hw: CUT has no inputs");
  for (const WeightAssignment& w : spec.omega)
    if (w.per_input.size() != n_inputs)
      throw std::invalid_argument("generator_hw: inconsistent input counts");

  GeneratorHardware hw;
  hw.random_sessions = spec.random_sessions;
  hw.session_count = spec.random_sessions + spec.omega.size();
  hw.session_length = std::bit_ceil(std::max<std::size_t>(sequence_length, 2));

  // Shared weight FSMs for every subsequence used by any assignment.
  std::vector<Subsequence> subs;
  for (const WeightAssignment& w : spec.omega)
    subs.insert(subs.end(), w.per_input.begin(), w.per_input.end());
  hw.fsms = synthesize_weight_fsms(subs);

  Netlist& nl = hw.netlist;
  nl.set_name("tg_generator");
  HwBuilder hb(nl);

  const SessionBlocks blocks =
      build_session_blocks(nl, hb, hw.session_length, hw.session_count);
  const std::vector<std::vector<NodeId>> fsm_out =
      build_weight_fsms(nl, hb, hw.fsms, blocks.hold);

  // LFSR block (free-running: only R resets it, session ticks do not).
  std::vector<NodeId> lfsr_bits;
  if (spec.random_sessions > 0)
    lfsr_bits = emit_lfsr(nl, spec.lfsr, hb.reset(), "LFSR");

  // Session signal matrix.
  std::vector<std::vector<NodeId>> session_signals;
  for (std::size_t r = 0; r < spec.random_sessions; ++r) {
    std::vector<NodeId> row(n_inputs);
    for (std::size_t i = 0; i < n_inputs; ++i)
      row[i] = lfsr_bits[lfsr_tap_for_input(spec.lfsr, i)];
    session_signals.push_back(std::move(row));
  }
  for (const WeightAssignment& w : spec.omega) {
    std::vector<NodeId> row(n_inputs);
    for (std::size_t i = 0; i < n_inputs; ++i) {
      const FsmOutputRef ref = hw.fsms.mapping.at(w.per_input[i]);
      row[i] = fsm_out[ref.fsm][ref.output];
    }
    session_signals.push_back(std::move(row));
  }

  build_output_muxes(nl, hb, blocks, session_signals, n_inputs);

  nl.finalize();
  return hw;
}

}  // namespace wbist::core
