// Subsequence weights — the paper's generalization of the 3-weight scheme.
//
// A weight is a finite binary subsequence α; assigning it to input i means
// driving i with the periodic sequence α^r = αα…α, where α^r(u) = α(u mod
// |α|). The classic weights 0 and 1 are the length-1 subsequences; longer
// subsequences reproduce windows of a deterministic test sequence exactly
// (Sections 2–3 of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/logic.h"

namespace wbist::core {

class Subsequence {
 public:
  Subsequence() = default;

  /// From bits, index 0 first: Subsequence({false, true}) is "01".
  explicit Subsequence(std::vector<bool> bits) : bits_(std::move(bits)) {}

  /// From text, e.g. Subsequence::parse("100").
  static Subsequence parse(std::string_view text);

  /// Derive the subsequence of length `len` whose periodic repetition
  /// matches `column` (the sequence T_i of one input) on the window of
  /// `len` time units ending at `u`: α(u' mod len) = T_i(u') for
  /// u-len+1 <= u' <= u. Requires len >= 1 and len <= u+1 and every window
  /// value binary; returns std::nullopt otherwise.
  static std::optional<Subsequence> derive(std::span<const sim::Val3> column,
                                           std::size_t u, std::size_t len);

  std::size_t length() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }
  bool bit(std::size_t k) const { return bits_[k]; }

  /// Value of the periodic expansion α^r at time u.
  bool at(std::size_t u) const { return bits_[u % bits_.size()]; }
  sim::Val3 value_at(std::size_t u) const {
    return at(u) ? sim::Val3::kOne : sim::Val3::kZero;
  }

  /// True when α^r matches `column` on the whole window of length()
  /// time units ending at `u` ("perfect match", Section 4.1). X entries in
  /// the column never match.
  bool matches_window(std::span<const sim::Val3> column, std::size_t u) const;

  /// n_m of Section 4.1: the number of time units u' in the column where
  /// α^r(u') equals the column value.
  std::size_t match_count(std::span<const sim::Val3> column) const;

  /// The shortest β with β^r == α^r (e.g. "0101" -> "01"). Subsequences with
  /// equal primitive forms generate identical input sequences and share one
  /// FSM output in hardware.
  Subsequence primitive() const;

  /// "001"-style text.
  std::string str() const;

  friend bool operator==(const Subsequence&, const Subsequence&) = default;

 private:
  std::vector<bool> bits_;
};

struct SubsequenceHash {
  std::size_t operator()(const Subsequence& s) const {
    std::size_t h = 0x9e3779b97f4a7c15ULL ^ s.length();
    for (std::size_t k = 0; k < s.length(); ++k)
      h = h * 1099511628211ULL + static_cast<std::size_t>(s.bit(k)) + 1;
    return h;
  }
};

}  // namespace wbist::core
