#include "core/cover_hw.h"

#include <unordered_map>
#include <vector>

namespace wbist::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

NodeId instantiate_cover(Netlist& nl, const Cover& cover,
                         std::span<const NodeId> vars, NodeId const_zero,
                         NodeId const_one, const std::string& prefix) {
  if (cover.cubes.empty()) return const_zero;

  std::unordered_map<NodeId, NodeId> inverters;
  const auto inverted = [&](NodeId signal) {
    const auto it = inverters.find(signal);
    if (it != inverters.end()) return it->second;
    const NodeId inv = nl.add_gate(
        GateType::kNot, prefix + "_n" + std::to_string(inverters.size()),
        {signal});
    inverters.emplace(signal, inv);
    return inv;
  };

  std::vector<NodeId> terms;
  for (std::size_t k = 0; k < cover.cubes.size(); ++k) {
    const Cube& cube = cover.cubes[k];
    if (cube.care == 0) return const_one;
    std::vector<NodeId> lits;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      if (((cube.care >> v) & 1) == 0) continue;
      lits.push_back(((cube.value >> v) & 1) != 0 ? vars[v]
                                                  : inverted(vars[v]));
    }
    terms.push_back(lits.size() == 1
                        ? lits[0]
                        : nl.add_gate(GateType::kAnd,
                                      prefix + "_t" + std::to_string(k),
                                      std::move(lits)));
  }
  return terms.size() == 1
             ? terms[0]
             : nl.add_gate(GateType::kOr, prefix + "_or", std::move(terms));
}

}  // namespace wbist::core
