#include "core/misr.h"

#include <stdexcept>

#include "core/lfsr.h"

namespace wbist::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;
using sim::Val3;

Misr::Misr(unsigned width) : width_(width), taps_(Lfsr(width).taps()) {}

bool Misr::capture(std::span<const Val3> response) {
  // Fold the response into width lanes: PO p drives lane p % width.
  std::uint32_t in = 0;
  for (std::size_t p = 0; p < response.size(); ++p) {
    if (response[p] == Val3::kX) {
      poisoned_ = true;
      return false;
    }
    if (response[p] == Val3::kOne) in ^= std::uint32_t{1} << (p % width_);
  }
  bool feedback = false;
  for (const unsigned t : taps_) feedback ^= ((state_ >> t) & 1) != 0;
  std::uint32_t next = (state_ << 1) | (feedback ? 1u : 0u);
  if (width_ < 32) next &= (std::uint32_t{1} << width_) - 1;
  state_ = next ^ in;
  return true;
}

std::optional<std::uint32_t> Misr::signature(
    std::span<const std::vector<Val3>> responses, std::size_t warmup) {
  reset();
  poisoned_ = false;
  for (std::size_t u = warmup; u < responses.size(); ++u)
    if (!capture(responses[u])) return std::nullopt;
  return state_;
}

std::optional<std::size_t> compute_warmup(
    std::span<const std::vector<Val3>> responses) {
  // Last cycle holding an X, plus one.
  std::optional<std::size_t> warmup = 0;
  for (std::size_t u = 0; u < responses.size(); ++u)
    for (const Val3 v : responses[u])
      if (v == Val3::kX) warmup = u + 1;
  if (*warmup >= responses.size() && !responses.empty())
    return std::nullopt;  // X all the way to the end
  return warmup;
}

std::vector<NodeId> emit_misr(Netlist& nl, const Misr& model,
                              std::span<const NodeId> inputs, NodeId enable,
                              const std::string& prefix) {
  const unsigned width = model.width();
  std::vector<NodeId> state(width);
  for (unsigned k = 0; k < width; ++k)
    state[k] = nl.add_dff(prefix + std::to_string(k));

  // Input folding: lane k = XOR of inputs with index == k (mod width).
  std::vector<NodeId> lane_in(width, netlist::kNoNode);
  for (unsigned k = 0; k < width; ++k) {
    std::vector<NodeId> sources;
    for (std::size_t p = k; p < inputs.size(); p += width)
      sources.push_back(inputs[p]);
    if (sources.empty()) continue;
    lane_in[k] = sources.size() == 1
                     ? sources[0]
                     : nl.add_gate(GateType::kXor,
                                   prefix + "_in" + std::to_string(k),
                                   std::move(sources));
  }

  // Feedback: XOR over tap state bits (a single tap is just a wire).
  std::vector<NodeId> tap_nodes;
  for (const unsigned t : model.taps()) tap_nodes.push_back(state[t]);
  const NodeId feedback =
      tap_nodes.size() == 1
          ? tap_nodes[0]
          : nl.add_gate(GateType::kXor, prefix + "_fb", std::move(tap_nodes));

  // next[k] = EN AND (shift_in XOR lane_in); EN low clears the register,
  // which realizes both reset-to-zero and warm-up gating.
  for (unsigned k = 0; k < width; ++k) {
    const NodeId shift_in = k == 0 ? feedback : state[k - 1];
    NodeId next = shift_in;
    if (lane_in[k] != netlist::kNoNode)
      next = nl.add_gate(GateType::kXor, prefix + "_x" + std::to_string(k),
                         {shift_in, lane_in[k]});
    nl.connect_dff(state[k],
                   nl.add_gate(GateType::kAnd, prefix + "_d" + std::to_string(k),
                               {next, enable}));
  }
  return state;
}

MisrHardware attach_misr(const Netlist& cut, unsigned width,
                         const Misr& model) {
  if (width != model.width())
    throw std::invalid_argument("misr: width mismatch with model");

  MisrHardware hw;
  hw.netlist = cut.unfrozen_copy();
  Netlist& nl = hw.netlist;

  hw.enable = nl.add_input("MISR_EN");
  const std::vector<NodeId> pos(cut.primary_outputs().begin(),
                                cut.primary_outputs().end());
  hw.state = emit_misr(nl, model, pos, hw.enable, "MISR");
  for (const NodeId bit : hw.state) nl.mark_output(bit);  // readout

  nl.finalize();
  return hw;
}

}  // namespace wbist::core
