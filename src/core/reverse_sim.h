// Reverse-order simulation (Section 4.3): removes weight assignments whose
// detected faults are fully covered by assignments generated after them.
#pragma once

#include <span>
#include <vector>

#include "core/assignment.h"
#include "fault/fault_sim.h"

namespace wbist::core {

struct ReverseSimResult {
  /// Surviving assignments, in the original (generation) order.
  std::vector<WeightAssignment> omega;
  /// Faults (ids into the simulator's fault set) detected by the survivors.
  std::vector<fault::FaultId> detected;
};

/// Simulate the assignments of `omega` in reverse generation order against
/// the target faults; an assignment is kept only if its sequence detects a
/// fault not detected by any later (already kept) assignment. Coverage of
/// `targets` is preserved exactly. `threads` is the fault-simulation worker
/// count (0 = hardware_concurrency, 1 = serial); the result is identical for
/// every value.
ReverseSimResult reverse_order_prune(const fault::FaultSimulator& sim,
                                     std::span<const WeightAssignment> omega,
                                     std::span<const fault::FaultId> targets,
                                     std::size_t sequence_length,
                                     unsigned threads = 0);

}  // namespace wbist::core
