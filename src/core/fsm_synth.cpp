#include "core/fsm_synth.h"

#include <algorithm>
#include <bit>
#include <map>

namespace wbist::core {

namespace {

unsigned bits_for(std::size_t period) {
  return period <= 1 ? 0
                     : static_cast<unsigned>(
                           std::bit_width(period - 1));
}

/// 2-input-gate equivalents of one SOP cover (ANDs decomposed to 2-input,
/// plus the OR). Single-literal covers cost nothing beyond wiring.
std::size_t cover_gate_count(const Cover& cover) {
  if (cover.cubes.empty()) return 0;  // constant 0
  std::size_t gates = 0;
  for (const Cube& c : cover.cubes) {
    const unsigned lits = c.literal_count();
    if (lits >= 2) gates += lits - 1;
  }
  if (cover.cubes.size() >= 2) gates += cover.cubes.size() - 1;
  return gates;
}

}  // namespace

std::vector<bool> WeightFsm::run_output(std::size_t k, std::size_t n) const {
  std::vector<bool> out;
  out.reserve(n);
  std::uint32_t state = 0;
  for (std::size_t t = 0; t < n; ++t) {
    out.push_back(output_covers[k].evaluates(state));
    // Advance through the synthesized next-state logic.
    std::uint32_t next = 0;
    for (unsigned b = 0; b < state_bits; ++b)
      if (next_state[b].evaluates(state)) next |= std::uint32_t{1} << b;
    state = next;
  }
  return out;
}

std::size_t WeightFsm::estimated_gate_count() const {
  std::size_t gates = 0;
  for (const Cover& c : next_state) gates += cover_gate_count(c);
  for (const Cover& c : output_covers) gates += cover_gate_count(c);
  // One inverter per state variable used complemented anywhere.
  std::uint32_t inverted = 0;
  const auto scan = [&inverted](const Cover& cover) {
    for (const Cube& c : cover.cubes) inverted |= c.care & ~c.value;
  };
  for (const Cover& c : next_state) scan(c);
  for (const Cover& c : output_covers) scan(c);
  gates += static_cast<std::size_t>(std::popcount(inverted));
  return gates;
}

std::size_t FsmSynthesisResult::output_count() const {
  std::size_t n = 0;
  for (const WeightFsm& f : fsms) n += f.outputs.size();
  return n;
}

std::size_t FsmSynthesisResult::estimated_gate_count() const {
  std::size_t n = 0;
  for (const WeightFsm& f : fsms) n += f.estimated_gate_count();
  return n;
}

std::size_t FsmSynthesisResult::flip_flop_count() const {
  std::size_t n = 0;
  for (const WeightFsm& f : fsms) n += f.state_bits;
  return n;
}

FsmSynthesisResult synthesize_weight_fsms(std::span<const Subsequence> subs) {
  FsmSynthesisResult result;

  // Primitive-reduce and group by period (ascending: shortest FSMs first).
  std::map<std::size_t, std::vector<Subsequence>> by_period;
  std::unordered_map<Subsequence, Subsequence, SubsequenceHash> reduced;
  for (const Subsequence& s : subs) {
    if (s.empty() || reduced.count(s) != 0) continue;
    Subsequence prim = s.primitive();
    reduced.emplace(s, prim);
    auto& group = by_period[prim.length()];
    if (std::find(group.begin(), group.end(), prim) == group.end())
      group.push_back(prim);
  }

  for (auto& [period, outputs] : by_period) {
    WeightFsm fsm;
    fsm.period = period;
    fsm.state_bits = bits_for(period);
    fsm.outputs = std::move(outputs);

    // Unreachable counter states are don't-cares for every function.
    std::vector<std::uint32_t> dc;
    for (std::uint32_t s = static_cast<std::uint32_t>(period);
         s < (std::uint32_t{1} << fsm.state_bits); ++s)
      dc.push_back(s);

    for (unsigned b = 0; b < fsm.state_bits; ++b) {
      std::vector<std::uint32_t> onset;
      for (std::uint32_t s = 0; s < period; ++s) {
        const std::uint32_t next = (s + 1) % static_cast<std::uint32_t>(period);
        if (((next >> b) & 1) != 0) onset.push_back(s);
      }
      fsm.next_state.push_back(minimize(fsm.state_bits, onset, dc));
    }
    for (const Subsequence& alpha : fsm.outputs) {
      std::vector<std::uint32_t> onset;
      for (std::uint32_t s = 0; s < period; ++s)
        if (alpha.bit(s)) onset.push_back(s);
      fsm.output_covers.push_back(minimize(fsm.state_bits, onset, dc));
    }

    result.fsms.push_back(std::move(fsm));
  }

  // Map every original subsequence to the FSM output of its primitive form.
  for (const auto& [orig, prim] : reduced) {
    for (std::size_t fi = 0; fi < result.fsms.size(); ++fi) {
      const WeightFsm& fsm = result.fsms[fi];
      if (fsm.period != prim.length()) continue;
      const auto it =
          std::find(fsm.outputs.begin(), fsm.outputs.end(), prim);
      result.mapping.emplace(
          orig, FsmOutputRef{fi, static_cast<std::size_t>(
                                     it - fsm.outputs.begin())});
      break;
    }
  }

  return result;
}

}  // namespace wbist::core
