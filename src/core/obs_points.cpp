#include "core/obs_points.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/metrics.h"
#include "util/trace.h"

namespace wbist::core {

using fault::DetectionResult;
using fault::FaultId;
using netlist::NodeId;

namespace {

/// Distinct subsequences and max length over a prefix of assignments.
void subsequence_stats(std::span<const WeightAssignment> prefix,
                       std::size_t& n_subs, std::size_t& max_len) {
  std::unordered_set<Subsequence, SubsequenceHash> distinct;
  max_len = 0;
  for (const WeightAssignment& w : prefix)
    for (const Subsequence& s : w.per_input) {
      distinct.insert(s);
      max_len = std::max(max_len, s.length());
    }
  n_subs = distinct.size();
}

/// Greedy set covering: pick lines covering the most still-uncovered
/// faults. Returns the chosen lines; `covered` marks the faults they catch.
std::vector<NodeId> greedy_cover(
    const std::vector<std::pair<FaultId, std::vector<NodeId>>>& op_sets,
    std::vector<bool>& covered) {
  covered.assign(op_sets.size(), false);
  std::vector<NodeId> chosen;
  for (;;) {
    std::unordered_map<NodeId, std::size_t> gain;
    for (std::size_t k = 0; k < op_sets.size(); ++k) {
      if (covered[k]) continue;
      for (NodeId line : op_sets[k].second) ++gain[line];
    }
    NodeId best = netlist::kNoNode;
    std::size_t best_gain = 0;
    for (const auto& [line, g] : gain)
      if (g > best_gain || (g == best_gain && g > 0 && line < best)) {
        best = line;
        best_gain = g;
      }
    if (best_gain == 0) break;
    chosen.push_back(best);
    for (std::size_t k = 0; k < op_sets.size(); ++k) {
      if (covered[k]) continue;
      const auto& lines = op_sets[k].second;
      if (std::binary_search(lines.begin(), lines.end(), best))
        covered[k] = true;
    }
  }
  return chosen;
}

}  // namespace

ObsTradeoffResult observation_point_tradeoff(
    const fault::FaultSimulator& sim, std::span<const WeightAssignment> omega,
    std::span<const fault::FaultId> targets,
    const ObsTradeoffConfig& config) {
  util::PhaseScope phase("obs_points");
  util::TraceSpan op_span("obs_points",
                          util::TraceArg("assignments", omega.size()),
                          util::TraceArg("targets", targets.size()));
  ObsTradeoffResult result;
  if (omega.empty() || targets.empty()) return result;

  fault::FaultSimOptions sim_opts;
  sim_opts.threads = config.threads;

  // Detected set of each assignment over `targets` (bit per target index).
  // Each assignment's good-machine trace is captured once here and shared
  // with every later observable_lines() replay over the same sequence.
  std::vector<std::vector<bool>> detects(omega.size(),
                                         std::vector<bool>(targets.size()));
  std::vector<fault::GoodTrace> traces;
  traces.reserve(omega.size());
  for (std::size_t j = 0; j < omega.size(); ++j) {
    traces.push_back(sim.make_trace(omega[j].expand(config.sequence_length)));
    const DetectionResult det = sim.run(traces.back(), targets, sim_opts);
    for (std::size_t k = 0; k < targets.size(); ++k)
      detects[j][k] = det.detected(k);
  }

  // Universe: targets detected by the full Ω (the paper's denominator).
  std::vector<bool> in_universe(targets.size(), false);
  std::size_t universe = 0;
  for (std::size_t k = 0; k < targets.size(); ++k)
    for (std::size_t j = 0; j < omega.size(); ++j)
      if (detects[j][k]) {
        in_universe[k] = true;
        ++universe;
        break;
      }
  result.total_targets = universe;
  if (universe == 0) return result;

  // OP(f) cache: per assignment, per fault, the observable lines. Filled
  // lazily; remaining fault sets shrink as the prefix grows, so each
  // (assignment, fault) pair is computed at most once.
  std::vector<std::unordered_map<FaultId, std::vector<NodeId>>> op_cache(
      omega.size());
  const auto ensure_op = [&](std::size_t j,
                             std::span<const FaultId> faults) {
    std::vector<FaultId> missing;
    for (FaultId f : faults)
      if (op_cache[j].count(f) == 0) missing.push_back(f);
    if (missing.empty()) return;
    const auto lines = sim.observable_lines(traces[j], missing, config.threads);
    for (std::size_t k = 0; k < missing.size(); ++k)
      op_cache[j].emplace(missing[k], lines[k]);
  };

  // Greedy ordering of Ω by newly detected faults.
  std::vector<bool> covered(targets.size(), false);
  std::size_t covered_count = 0;
  std::vector<bool> used(omega.size(), false);
  std::vector<std::size_t> order;

  while (covered_count < universe) {
    std::size_t best = omega.size();
    std::size_t best_gain = 0;
    for (std::size_t j = 0; j < omega.size(); ++j) {
      if (used[j]) continue;
      std::size_t gain = 0;
      for (std::size_t k = 0; k < targets.size(); ++k)
        if (!covered[k] && detects[j][k]) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = j;
      }
    }
    if (best == omega.size()) break;  // defensive; universe construction
    used[best] = true;
    order.push_back(best);
    for (std::size_t k = 0; k < targets.size(); ++k)
      if (detects[best][k] && !covered[k]) {
        covered[k] = true;
        ++covered_count;
      }

    // Row for this prefix.
    ObsRow row;
    row.n_seq = order.size();
    std::vector<WeightAssignment> prefix;
    for (std::size_t j : order) prefix.push_back(omega[j]);
    subsequence_stats(prefix, row.n_subs, row.max_len);
    row.fe_before =
        100.0 * static_cast<double>(covered_count) / static_cast<double>(universe);

    // Remaining faults and their OP sets under the chosen sequences.
    std::vector<FaultId> remaining;
    std::vector<std::size_t> remaining_idx;
    for (std::size_t k = 0; k < targets.size(); ++k)
      if (in_universe[k] && !covered[k]) {
        remaining.push_back(targets[k]);
        remaining_idx.push_back(k);
      }

    if (remaining.empty()) {
      row.n_obs = 0;
      row.fe_after = row.fe_before;
    } else {
      for (std::size_t j : order) ensure_op(j, remaining);
      std::vector<std::pair<FaultId, std::vector<NodeId>>> op_sets;
      for (FaultId f : remaining) {
        std::vector<NodeId> lines;
        for (std::size_t j : order) {
          const auto& cached = op_cache[j].at(f);
          lines.insert(lines.end(), cached.begin(), cached.end());
        }
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
        op_sets.emplace_back(f, std::move(lines));
      }
      std::vector<bool> op_covered;
      row.observation_points = greedy_cover(op_sets, op_covered);
      row.n_obs = row.observation_points.size();
      const auto extra = static_cast<std::size_t>(
          std::count(op_covered.begin(), op_covered.end(), true));
      row.fe_after = 100.0 *
                     static_cast<double>(covered_count + extra) /
                     static_cast<double>(universe);
    }

    if (row.fe_after >= 100.0 * config.min_final_fe)
      result.rows.push_back(std::move(row));
  }

  return result;
}

}  // namespace wbist::core
