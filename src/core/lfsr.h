// Linear feedback shift register used for the pseudo-random ("weight 0.5")
// input streams of the extended weight scheme (the paper's Section 6 future
// work: "The use of pure-random sequences as part of the weight scheme").
//
// The register is an XNOR-form Fibonacci LFSR: the all-ZERO state is a valid
// sequence state (the lock-up state is all-ones instead). That matters
// because the generator hardware's synchronous reset forces every flip-flop
// to 0 — an XOR-form LFSR would lock up immediately, the XNOR form starts
// streaming from the reset state with no seed logic at all.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace wbist::core {

/// Software model of the XNOR Fibonacci LFSR; bit k of state() is the
/// stream tapped for input k (k < width). Hardware equivalent:
/// emit_lfsr(). Sequence: state bit0 receives XNOR of the feedback taps,
/// other bits shift from their lower neighbour.
class Lfsr {
 public:
  /// Width 2..32. Feedback taps default to a maximal-length polynomial
  /// (period 2^width - 1) for every width. Explicit taps are treated as a
  /// set: duplicates (which would cancel in the XNOR fold) are removed.
  explicit Lfsr(unsigned width = 16);
  Lfsr(unsigned width, std::vector<unsigned> taps);

  unsigned width() const { return width_; }
  const std::vector<unsigned>& taps() const { return taps_; }

  /// Reset to the all-zero state (the hardware reset state).
  void reset() { state_ = 0; }

  /// Advance one clock; returns the new state.
  std::uint32_t step();

  std::uint32_t state() const { return state_; }
  bool bit(unsigned k) const { return ((state_ >> k) & 1) != 0; }

  /// The streams produced over `cycles` clocks from reset: result[t] is the
  /// state after t+1 steps (matching what the hardware outputs present
  /// during cycle t after the reset pulse).
  std::vector<std::uint32_t> run(std::size_t cycles);

 private:
  unsigned width_;
  std::vector<unsigned> taps_;
  std::uint32_t state_ = 0;
};

/// Instantiate the LFSR in a netlist: `width` DFFs named <prefix>0.., with
/// synchronous reset on `reset_high` (active high). Returns the state-bit
/// node ids (index k = tap k).
std::vector<netlist::NodeId> emit_lfsr(netlist::Netlist& nl, const Lfsr& lfsr,
                                       netlist::NodeId reset_high,
                                       const std::string& prefix);

}  // namespace wbist::core
