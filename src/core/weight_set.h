// The weight set S of Section 3: an ordered, duplicate-free collection of
// subsequences from which weight assignments are constructed.
//
// Order matters: the paper indexes S (Table 4) and keeps repetition-
// equivalent subsequences (e.g. "0" and "00") as distinct members, merging
// them only when FSMs are synthesized. This container preserves both
// behaviours.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/subsequence.h"
#include "sim/sequence.h"

namespace wbist::core {

class WeightSet {
 public:
  /// Insert if new; returns the index of the subsequence in S either way.
  std::size_t add(Subsequence s);

  bool contains(const Subsequence& s) const { return index_.count(s) != 0; }
  std::size_t size() const { return items_.size(); }
  const Subsequence& operator[](std::size_t j) const { return items_[j]; }
  std::span<const Subsequence> items() const { return items_; }

  /// Index of `s` in S; throws std::out_of_range if absent.
  std::size_t index_of(const Subsequence& s) const;

  /// Section 3 extension step: for every input i of T, derive the length-
  /// `len` subsequence reproducing T_i on the window ending at detection
  /// time `u`, and insert it. Returns the number of new members. Window
  /// positions holding X are skipped (no subsequence derived for that input).
  std::size_t extend(const sim::TestSequence& T, std::size_t u,
                     std::size_t len);

  /// The complete set of subsequences of length 1..max_len in the paper's
  /// Table 4 order (lengths ascending; within a length, α(0) is the least
  /// significant bit of an ascending counter).
  static WeightSet all_up_to(std::size_t max_len);

 private:
  std::vector<Subsequence> items_;
  std::unordered_map<Subsequence, std::size_t, SubsequenceHash> index_;
};

}  // namespace wbist::core
