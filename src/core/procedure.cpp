#include "core/procedure.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/metrics.h"
#include "util/provenance.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/trace.h"

namespace wbist::core {

using fault::DetectionResult;
using fault::FaultId;
using sim::TestSequence;

namespace {

/// Next subsequence length to try for detection time u.
std::size_t next_length(std::size_t prev, std::size_t u,
                        const ProcedureConfig& config) {
  const std::size_t cap = u + 1;
  if (prev == 0) return std::min<std::size_t>(1, cap);
  if (config.exact_paper_schedule || prev < config.linear_growth_limit)
    return std::min(prev + 1, cap);
  return std::min(std::max(prev + 1, prev + prev / 2), cap);
}

}  // namespace

std::vector<FaultId> build_presim_sample(std::span<const FaultId> targets,
                                         std::span<const FaultId> remaining,
                                         std::size_t sample_size,
                                         util::Rng& rng) {
  std::vector<FaultId> sample;
  if (sample_size == 0 || remaining.empty()) return sample;

  std::unordered_set<FaultId> in_sample;
  const std::size_t front =
      std::min(targets.size(), std::max<std::size_t>(sample_size / 2, 1));
  for (std::size_t k = 0; k < front; ++k)
    if (in_sample.insert(targets[k]).second) sample.push_back(targets[k]);

  // Top up with random draws from F. Draws that hit an already-sampled
  // fault are discarded; the attempt bound keeps termination obvious when
  // most of F is already in the sample.
  const std::size_t want = std::min(sample_size, remaining.size());
  for (std::size_t attempts = 4 * sample_size + 16;
       sample.size() < want && attempts > 0; --attempts) {
    const FaultId f = remaining[rng.below(remaining.size())];
    if (in_sample.insert(f).second) sample.push_back(f);
  }
  return sample;
}

ProcedureResult select_weight_assignments(
    const fault::FaultSimulator& sim, const TestSequence& T,
    std::span<const std::int32_t> detection_time,
    const ProcedureConfig& config) {
  if (detection_time.size() != sim.fault_set().size())
    throw std::invalid_argument(
        "procedure: detection_time not aligned with fault set");

  util::PhaseScope phase("procedure");
  const util::Timer wall;
  util::Series& coverage = util::metrics().series("procedure.coverage");

  ProcedureResult result;
  result.sequence_length = std::max(config.sequence_length, T.length());

  // F: remaining target faults, kept sorted by any order; u_det lookup is by
  // fault id through `detection_time`.
  std::vector<FaultId> F;
  for (FaultId f = 0; f < detection_time.size(); ++f)
    if (detection_time[f] != DetectionResult::kUndetected) F.push_back(f);
  result.target_count = F.size();

  util::TraceSpan proc_span("procedure", util::TraceArg("targets", F.size()));

  util::Rng rng(config.seed);
  std::unordered_set<WeightAssignment, WeightAssignmentHash> fully_simulated;

  fault::FaultSimOptions sim_opts;
  sim_opts.threads = config.threads;
  const std::size_t good_sims_before = sim.good_sim_runs();

  const auto drop_detected = [&](std::span<const FaultId> ids,
                                 const DetectionResult& det,
                                 std::vector<FaultId>& from) {
    std::unordered_set<FaultId> hit;
    for (std::size_t k = 0; k < ids.size(); ++k)
      if (det.detected(k)) hit.insert(ids[k]);
    if (hit.empty()) return std::size_t{0};
    const auto new_end = std::remove_if(
        from.begin(), from.end(),
        [&hit](FaultId f) { return hit.count(f) != 0; });
    const auto removed = static_cast<std::size_t>(from.end() - new_end);
    from.erase(new_end, from.end());
    return removed;
  };

  while (!F.empty()) {
    // Largest remaining detection time (harder faults first, Section 3).
    std::int32_t u_max = -1;
    for (FaultId f : F) u_max = std::max(u_max, detection_time[f]);
    const auto u = static_cast<std::size_t>(u_max);
    util::TraceSpan u_span("procedure.weight_set", util::TraceArg("u", u),
                           util::TraceArg("remaining", F.size()));

    auto faults_at_u = [&]() {
      std::vector<FaultId> ids;
      for (FaultId f : F)
        if (detection_time[f] == u_max) ids.push_back(f);
      return ids;
    };

    std::size_t len = 0;
    while (!faults_at_u().empty()) {
      const std::size_t prev = len;
      len = next_length(prev, u, config);
      result.weights.extend(T, u, len);
      const CandidateSets sets =
          build_candidate_sets(result.weights, T, u, len);

      const std::size_t ranks = sets.max_rank();
      for (std::size_t j = 0; j < ranks; ++j) {
        const std::vector<FaultId> targets = faults_at_u();
        if (targets.empty()) break;

        WeightAssignment w = sets.assignment_at(j);
        // Only assignments carrying at least one length-`len` subsequence
        // are new at this length (Section 4.2).
        const bool has_len = std::any_of(
            w.per_input.begin(), w.per_input.end(),
            [len](const Subsequence& s) { return s.length() == len; });
        if (!has_len) continue;
        if (fully_simulated.count(w) != 0) continue;
        ++result.stats.assignments_tried;
        util::TraceSpan cand_span("procedure.candidate",
                                  util::TraceArg("rank", j),
                                  util::TraceArg("len", len),
                                  util::TraceArg("targets", targets.size()));

        const TestSequence tg = w.expand(result.sequence_length);
        // One good-machine pass per candidate: the trace is shared between
        // the sample pre-simulation and the full simulation below.
        const fault::GoodTrace trace = sim.make_trace(tg);

        // Sample pre-simulation (skipped when sample_size == 0): a small
        // distinct sample seeded with the faults this assignment was built
        // for, topped up from the remaining targets. See
        // ProcedureConfig::sample_size for the exact semantics.
        if (config.sample_size != 0) {
          const std::vector<FaultId> sample =
              build_presim_sample(targets, F, config.sample_size, rng);
          const DetectionResult sample_det = sim.run(trace, sample, sim_opts);
          if (sample_det.detected_count == 0) {
            ++result.stats.sample_rejections;
            continue;
          }
        }

        const DetectionResult det = sim.run(trace, F, sim_opts);
        ++result.stats.full_simulations;
        fully_simulated.insert(w);
        if (det.detected_count > 0) {
          // The kept assignment becomes weighted session Ω[session].
          const auto session = static_cast<std::int64_t>(result.omega.size());
          if (util::provenance().enabled()) {
            const fault::FaultSet& fs = sim.fault_set();
            for (std::size_t k = 0; k < F.size(); ++k) {
              if (!det.detected(k)) continue;
              const FaultId f = F[k];
              const std::string site =
                  fault::fault_name(sim.circuit(), fs[f]);
              std::string obs;
              if (det.detecting_line[k] != netlist::kNoNode)
                obs = sim.circuit().node(det.detecting_line[k]).name;
              util::provenance().record(
                  {.phase = "procedure",
                   .fault = f,
                   .site = site,
                   .class_size = fs.class_size(f),
                   .represented_size = fs.represented_size(f),
                   .session = session,
                   .assignment_rank = static_cast<std::int64_t>(j),
                   .u = det.detection_time[k],
                   .obs = obs});
            }
          }
          util::trace_instant("procedure.session",
                              util::TraceArg("session", session),
                              util::TraceArg("detected", det.detected_count));
          result.detected_count += drop_detected(F, det, F);
          result.omega.push_back(std::move(w));
          // Coverage-over-time curve: cumulative detected targets against
          // elapsed seconds, one point per kept assignment.
          coverage.push(wall.seconds(),
                        static_cast<double>(result.detected_count));
        }
      }

      if (len >= u + 1 && !faults_at_u().empty()) {
        // Unreachable for fully specified T (rank 0 reproduces T through u);
        // reachable only when X values blocked subsequence derivation.
        const std::vector<FaultId> stuck = faults_at_u();
        result.abandoned_count += stuck.size();
        const auto new_end = std::remove_if(
            F.begin(), F.end(), [&](FaultId f) {
              return detection_time[f] == u_max;
            });
        F.erase(new_end, F.end());
        break;
      }
    }
  }

  result.stats.good_machine_sims = sim.good_sim_runs() - good_sims_before;

  util::MetricsRegistry& reg = util::metrics();
  reg.counter("procedure.assignments_tried").add(result.stats.assignments_tried);
  reg.counter("procedure.sample_rejections").add(result.stats.sample_rejections);
  reg.counter("procedure.full_simulations").add(result.stats.full_simulations);
  reg.counter("procedure.good_machine_sims").add(result.stats.good_machine_sims);
  reg.counter("procedure.targets").add(result.target_count);
  reg.counter("procedure.detected").add(result.detected_count);
  reg.counter("procedure.abandoned").add(result.abandoned_count);
  return result;
}

}  // namespace wbist::core
