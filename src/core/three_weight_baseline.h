// The classic 3-weight scheme of [10] (Pomeranz & Reddy, TCAD 1993),
// adapted to sequential circuits as the baseline the paper argues against.
//
// A weight assignment gives every primary input one of {0, 0.5, 1}: held
// constant at 0, held constant at 1, or driven pseudo-randomly, for a whole
// session of L_G cycles. Assignments are derived from the deterministic
// sequence T by *intersecting* the input vectors in a window ending at a
// target fault's detection time: a column that is constant over the window
// becomes weight 0 or 1, a changing column becomes 0.5.
//
// The paper's point (Section 1): for sequential circuits, constant-or-random
// inputs cannot reproduce the input *subsequences* needed to walk the state
// space, so this baseline plateaus below 100% fault efficiency — which the
// baseline benches demonstrate against the subsequence scheme.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/lfsr.h"
#include "fault/fault_sim.h"
#include "sim/sequence.h"

namespace wbist::core {

enum class ThreeWeight : std::uint8_t { kZero, kOne, kRandom };

struct ThreeWeightAssignment {
  std::vector<ThreeWeight> per_input;

  /// Expand into a session sequence: constants held, random inputs driven
  /// from `lfsr` streams offset by `session` sessions (one continuous
  /// stream, as in the hardware).
  sim::TestSequence expand(const Lfsr& lfsr, std::size_t session,
                           std::size_t length) const;

  /// "0 / R / 1 / R" display form.
  std::string str() const;

  friend bool operator==(const ThreeWeightAssignment&,
                         const ThreeWeightAssignment&) = default;
};

/// Intersect the input vectors of T over the window of `window` time units
/// ending at `u` (clamped to the start of T): constant columns become fixed
/// weights, changing or unknown columns become 0.5.
ThreeWeightAssignment intersect_window(const sim::TestSequence& T,
                                       std::size_t u, std::size_t window);

struct ThreeWeightConfig {
  std::size_t sequence_length = 2000;  ///< L_G per assignment
  std::size_t window = 16;             ///< intersection window
  unsigned lfsr_width = 16;
  /// Give up on a target fault after this many fruitless assignments.
  std::size_t attempts_per_fault = 3;
  /// Fault-simulation worker threads (0 = hardware_concurrency, 1 = serial).
  unsigned threads = 0;
};

struct ThreeWeightResult {
  std::vector<ThreeWeightAssignment> assignments;  ///< useful ones only
  std::size_t target_count = 0;
  std::size_t detected_count = 0;
  std::size_t abandoned_count = 0;  ///< targets the baseline cannot reach

  double fault_efficiency() const {
    return target_count == 0 ? 1.0
                             : static_cast<double>(detected_count) /
                                   static_cast<double>(target_count);
  }
};

/// Run the baseline: intersect windows around undetected faults' detection
/// times (hardest first), simulate, drop, repeat.
ThreeWeightResult run_three_weight_baseline(
    const fault::FaultSimulator& sim, const sim::TestSequence& T,
    std::span<const std::int32_t> detection_time,
    const ThreeWeightConfig& config = {});

}  // namespace wbist::core
