// Instantiate a minimized SOP cover (core/qm.h) as gates in a netlist.
// Shared by the generator builder and the self-test assembler.
#pragma once

#include <span>
#include <string>

#include "core/qm.h"
#include "netlist/netlist.h"

namespace wbist::core {

/// Build AND/OR/NOT gates computing `cover` over the variable signals
/// `vars` (bit k of a cube refers to vars[k]). Constant covers need
/// constant nodes, which the caller provides (const_zero / const_one).
/// Returns the output node. Gate names are derived from `prefix`.
netlist::NodeId instantiate_cover(netlist::Netlist& nl, const Cover& cover,
                                  std::span<const netlist::NodeId> vars,
                                  netlist::NodeId const_zero,
                                  netlist::NodeId const_one,
                                  const std::string& prefix);

}  // namespace wbist::core
