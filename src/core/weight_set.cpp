#include "core/weight_set.h"

#include <stdexcept>

namespace wbist::core {

std::size_t WeightSet::add(Subsequence s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const std::size_t j = items_.size();
  index_.emplace(s, j);
  items_.push_back(std::move(s));
  return j;
}

std::size_t WeightSet::index_of(const Subsequence& s) const {
  const auto it = index_.find(s);
  if (it == index_.end())
    throw std::out_of_range("weight_set: subsequence not in S");
  return it->second;
}

std::size_t WeightSet::extend(const sim::TestSequence& T, std::size_t u,
                              std::size_t len) {
  std::size_t added = 0;
  for (std::size_t i = 0; i < T.width(); ++i) {
    const std::vector<sim::Val3> column = T.column(i);
    const auto alpha = Subsequence::derive(column, u, len);
    if (!alpha) continue;
    const std::size_t before = items_.size();
    add(*alpha);
    if (items_.size() != before) ++added;
  }
  return added;
}

WeightSet WeightSet::all_up_to(std::size_t max_len) {
  WeightSet set;
  for (std::size_t len = 1; len <= max_len; ++len) {
    for (std::uint64_t code = 0; code < (std::uint64_t{1} << len); ++code) {
      std::vector<bool> bits(len);
      for (std::size_t k = 0; k < len; ++k) bits[k] = ((code >> k) & 1) != 0;
      set.add(Subsequence(std::move(bits)));
    }
  }
  return set;
}

}  // namespace wbist::core
