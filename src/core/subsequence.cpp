#include "core/subsequence.h"

#include <stdexcept>

namespace wbist::core {

using sim::Val3;

Subsequence Subsequence::parse(std::string_view text) {
  std::vector<bool> bits;
  bits.reserve(text.size());
  for (char c : text) {
    if (c != '0' && c != '1')
      throw std::invalid_argument("subsequence: bad character in '" +
                                  std::string(text) + "'");
    bits.push_back(c == '1');
  }
  return Subsequence(std::move(bits));
}

std::optional<Subsequence> Subsequence::derive(std::span<const Val3> column,
                                               std::size_t u,
                                               std::size_t len) {
  if (len == 0 || len > u + 1 || u >= column.size()) return std::nullopt;
  std::vector<bool> bits(len);
  // The window covers len consecutive time units, so each residue mod len
  // is assigned exactly once.
  for (std::size_t up = u + 1 - len; up <= u; ++up) {
    const Val3 v = column[up];
    if (v == Val3::kX) return std::nullopt;
    bits[up % len] = v == Val3::kOne;
  }
  return Subsequence(std::move(bits));
}

bool Subsequence::matches_window(std::span<const Val3> column,
                                 std::size_t u) const {
  if (empty() || length() > u + 1 || u >= column.size()) return false;
  for (std::size_t up = u + 1 - length(); up <= u; ++up)
    if (column[up] != value_at(up)) return false;
  return true;
}

std::size_t Subsequence::match_count(std::span<const Val3> column) const {
  if (empty()) return 0;
  std::size_t count = 0;
  for (std::size_t u = 0; u < column.size(); ++u)
    if (column[u] == value_at(u)) ++count;
  return count;
}

Subsequence Subsequence::primitive() const {
  const std::size_t n = length();
  for (std::size_t period = 1; period <= n / 2; ++period) {
    if (n % period != 0) continue;
    bool ok = true;
    for (std::size_t k = period; k < n && ok; ++k) ok = bits_[k] == bits_[k - period];
    if (ok)
      return Subsequence(std::vector<bool>(bits_.begin(),
                                           bits_.begin() + static_cast<std::ptrdiff_t>(period)));
  }
  return *this;
}

std::string Subsequence::str() const {
  std::string s;
  s.reserve(length());
  for (bool b : bits_) s += b ? '1' : '0';
  return s;
}

}  // namespace wbist::core
