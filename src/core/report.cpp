#include "core/report.h"

#include <algorithm>
#include <unordered_set>

namespace wbist::core {

Table6Row make_table6_row(std::string circuit, std::size_t t_length,
                          std::size_t t_detected,
                          std::span<const WeightAssignment> omega,
                          const FsmSynthesisResult& fsms) {
  Table6Row row;
  row.circuit = std::move(circuit);
  row.t_length = t_length;
  row.t_detected = t_detected;
  row.n_seq = omega.size();

  std::unordered_set<Subsequence, SubsequenceHash> distinct;
  for (const WeightAssignment& w : omega)
    for (const Subsequence& s : w.per_input) {
      distinct.insert(s);
      row.max_len = std::max(row.max_len, s.length());
    }
  row.n_subs = distinct.size();
  row.n_fsms = fsms.fsm_count();
  row.n_fsm_outputs = fsms.output_count();
  return row;
}

}  // namespace wbist::core
