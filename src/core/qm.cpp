#include "core/qm.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace wbist::core {

unsigned Cube::literal_count() const {
  return static_cast<unsigned>(std::popcount(care));
}

std::string Cube::str(unsigned n_vars) const {
  if (care == 0) return "-";
  std::string out;
  for (unsigned v = 0; v < n_vars; ++v) {
    if (((care >> v) & 1) == 0) continue;
    if (!out.empty()) out += "·";
    out += "x" + std::to_string(v);
    if (((value >> v) & 1) == 0) out += "'";
  }
  return out;
}

namespace {

struct CubeHash {
  std::size_t operator()(const Cube& c) const {
    return (static_cast<std::size_t>(c.value) << 21) ^ c.care;
  }
};

}  // namespace

Cover minimize(unsigned n_vars, const std::vector<std::uint32_t>& onset,
               const std::vector<std::uint32_t>& dcset) {
  if (n_vars > 20) throw std::invalid_argument("qm: too many variables");
  if (onset.empty()) return {};

  const std::uint32_t full_care =
      n_vars >= 32 ? ~std::uint32_t{0}
                   : ((std::uint32_t{1} << n_vars) - 1);

  // Level 0: every onset and don't-care minterm is a full-care cube.
  std::unordered_set<Cube, CubeHash> current;
  for (std::uint32_t m : onset) current.insert({m & full_care, full_care});
  for (std::uint32_t m : dcset) current.insert({m & full_care, full_care});

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::vector<Cube> cubes(current.begin(), current.end());
    std::unordered_set<Cube, CubeHash> next;
    std::vector<bool> combined(cubes.size(), false);

    // Combine cubes identical except in one specified bit.
    for (std::size_t a = 0; a < cubes.size(); ++a) {
      for (std::size_t b = a + 1; b < cubes.size(); ++b) {
        if (cubes[a].care != cubes[b].care) continue;
        const std::uint32_t diff =
            (cubes[a].value ^ cubes[b].value) & cubes[a].care;
        if (std::popcount(diff) != 1) continue;
        next.insert({cubes[a].value & ~diff & cubes[a].care,
                     cubes[a].care & ~diff});
        combined[a] = combined[b] = true;
      }
    }
    for (std::size_t a = 0; a < cubes.size(); ++a)
      if (!combined[a]) primes.push_back(cubes[a]);
    current = std::move(next);
  }

  // Cover the onset (only) with primes: essentials first, then greedy.
  std::vector<std::uint32_t> to_cover(onset.begin(), onset.end());
  std::sort(to_cover.begin(), to_cover.end());
  to_cover.erase(std::unique(to_cover.begin(), to_cover.end()),
                 to_cover.end());

  Cover cover;
  std::vector<bool> covered(to_cover.size(), false);

  // Essential primes: sole cover of some minterm.
  for (std::size_t m = 0; m < to_cover.size(); ++m) {
    const Cube* only = nullptr;
    int count = 0;
    for (const Cube& p : primes) {
      if (p.covers(to_cover[m])) {
        ++count;
        only = &p;
        if (count > 1) break;
      }
    }
    if (count == 1 &&
        std::find(cover.cubes.begin(), cover.cubes.end(), *only) ==
            cover.cubes.end()) {
      cover.cubes.push_back(*only);
      for (std::size_t k = 0; k < to_cover.size(); ++k)
        if (only->covers(to_cover[k])) covered[k] = true;
    }
  }
  // Greedy: repeatedly take the prime covering most uncovered minterms,
  // breaking ties toward fewer literals.
  for (;;) {
    std::size_t best_gain = 0;
    const Cube* best = nullptr;
    for (const Cube& p : primes) {
      std::size_t gain = 0;
      for (std::size_t k = 0; k < to_cover.size(); ++k)
        if (!covered[k] && p.covers(to_cover[k])) ++gain;
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best != nullptr &&
           p.literal_count() < best->literal_count())) {
        best_gain = gain;
        best = &p;
      }
    }
    if (best == nullptr || best_gain == 0) break;
    cover.cubes.push_back(*best);
    for (std::size_t k = 0; k < to_cover.size(); ++k)
      if (best->covers(to_cover[k])) covered[k] = true;
  }

  return cover;
}

}  // namespace wbist::core
