#include "core/reverse_sim.h"

#include <algorithm>

#include "fault/fault.h"
#include "util/metrics.h"
#include "util/provenance.h"
#include "util/trace.h"

namespace wbist::core {

using fault::DetectionResult;
using fault::FaultId;

ReverseSimResult reverse_order_prune(const fault::FaultSimulator& sim,
                                     std::span<const WeightAssignment> omega,
                                     std::span<const FaultId> targets,
                                     std::size_t sequence_length,
                                     unsigned threads) {
  util::PhaseScope phase("reverse_sim");
  util::TraceSpan rs_span("reverse_sim",
                          util::TraceArg("assignments", omega.size()),
                          util::TraceArg("targets", targets.size()));
  ReverseSimResult result;
  std::vector<FaultId> remaining(targets.begin(), targets.end());
  std::vector<bool> keep(omega.size(), false);

  fault::FaultSimOptions opts;
  opts.threads = threads;
  for (std::size_t k = omega.size(); k-- > 0 && !remaining.empty();) {
    util::TraceSpan span("reverse_sim.assignment", util::TraceArg("session", k),
                         util::TraceArg("remaining", remaining.size()));
    const sim::TestSequence tg = omega[k].expand(sequence_length);
    const fault::GoodTrace trace = sim.make_trace(tg);
    const DetectionResult det = sim.run(trace, remaining, opts);
    if (det.detected_count == 0) continue;
    keep[k] = true;
    if (util::provenance().enabled()) {
      const fault::FaultSet& fs = sim.fault_set();
      const netlist::Netlist& nl = sim.circuit();
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (!det.detected(i)) continue;
        const FaultId f = remaining[i];
        const std::string site = fault::fault_name(nl, fs[f]);
        std::string obs;
        if (det.detecting_line[i] != netlist::kNoNode)
          obs = nl.node(det.detecting_line[i]).name;
        util::provenance().record(
            {.phase = "reverse_sim",
             .fault = f,
             .site = site,
             .class_size = fs.class_size(f),
             .represented_size = fs.represented_size(f),
             .session = static_cast<std::int64_t>(k),
             .u = det.detection_time[i],
             .obs = obs});
      }
    }
    std::vector<FaultId> still;
    still.reserve(remaining.size() - det.detected_count);
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (det.detected(i))
        result.detected.push_back(remaining[i]);
      else
        still.push_back(remaining[i]);
    }
    remaining = std::move(still);
  }

  for (std::size_t k = 0; k < omega.size(); ++k)
    if (keep[k]) result.omega.push_back(omega[k]);
  std::sort(result.detected.begin(), result.detected.end());

  util::MetricsRegistry& reg = util::metrics();
  reg.counter("reverse_sim.assignments_in").add(omega.size());
  reg.counter("reverse_sim.assignments_kept").add(result.omega.size());
  reg.counter("reverse_sim.faults_covered").add(result.detected.size());
  return result;
}

}  // namespace wbist::core
