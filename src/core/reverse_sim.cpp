#include "core/reverse_sim.h"

#include <algorithm>

#include "util/metrics.h"

namespace wbist::core {

using fault::DetectionResult;
using fault::FaultId;

ReverseSimResult reverse_order_prune(const fault::FaultSimulator& sim,
                                     std::span<const WeightAssignment> omega,
                                     std::span<const FaultId> targets,
                                     std::size_t sequence_length,
                                     unsigned threads) {
  util::PhaseScope phase("reverse_sim");
  ReverseSimResult result;
  std::vector<FaultId> remaining(targets.begin(), targets.end());
  std::vector<bool> keep(omega.size(), false);

  fault::FaultSimOptions opts;
  opts.threads = threads;
  for (std::size_t k = omega.size(); k-- > 0 && !remaining.empty();) {
    const sim::TestSequence tg = omega[k].expand(sequence_length);
    const fault::GoodTrace trace = sim.make_trace(tg);
    const DetectionResult det = sim.run(trace, remaining, opts);
    if (det.detected_count == 0) continue;
    keep[k] = true;
    std::vector<FaultId> still;
    still.reserve(remaining.size() - det.detected_count);
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (det.detected(i))
        result.detected.push_back(remaining[i]);
      else
        still.push_back(remaining[i]);
    }
    remaining = std::move(still);
  }

  for (std::size_t k = 0; k < omega.size(); ++k)
    if (keep[k]) result.omega.push_back(omega[k]);
  std::sort(result.detected.begin(), result.detected.end());

  util::MetricsRegistry& reg = util::metrics();
  reg.counter("reverse_sim.assignments_in").add(omega.size());
  reg.counter("reverse_sim.assignments_kept").add(result.omega.size());
  reg.counter("reverse_sim.faults_covered").add(result.detected.size());
  return result;
}

}  // namespace wbist::core
