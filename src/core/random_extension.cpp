#include "core/random_extension.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace wbist::core {

using fault::DetectionResult;
using fault::FaultId;
using sim::TestSequence;
using sim::Val3;

TestSequence expand_random_session(const Lfsr& lfsr, std::size_t session,
                                   std::size_t session_length,
                                   std::size_t n_inputs) {
  // One continuous stream: session r covers cycles [r*P, (r+1)*P).
  Lfsr runner = lfsr;
  runner.reset();
  for (std::size_t t = 0; t < session * session_length; ++t) runner.step();

  TestSequence seq(session_length, n_inputs);
  for (std::size_t u = 0; u < session_length; ++u) {
    for (std::size_t i = 0; i < n_inputs; ++i)
      seq.set(u, i,
              runner.bit(lfsr_tap_for_input(lfsr, i)) ? Val3::kOne
                                                      : Val3::kZero);
    runner.step();
  }
  return seq;
}

ExtendedSchemeResult run_extended_scheme(
    const fault::FaultSimulator& sim, const TestSequence& T,
    std::span<const std::int32_t> detection_time,
    const ExtendedSchemeConfig& config) {
  if (detection_time.size() != sim.fault_set().size())
    throw std::invalid_argument(
        "extended_scheme: detection_time not aligned with fault set");

  ExtendedSchemeResult result;
  result.lfsr = Lfsr(config.lfsr_width);
  result.session_length = std::bit_ceil(std::max<std::size_t>(
      std::max(config.procedure.sequence_length, T.length()), 2));

  const std::size_t n_inputs = sim.circuit().primary_inputs().size();

  std::vector<FaultId> remaining;
  for (FaultId f = 0; f < detection_time.size(); ++f)
    if (detection_time[f] != DetectionResult::kUndetected)
      remaining.push_back(f);
  result.target_count = remaining.size();

  // Phase 1: pure-random sessions with fault dropping.
  for (std::size_t r = 0;
       r < config.max_random_sessions && !remaining.empty(); ++r) {
    const TestSequence tg =
        expand_random_session(result.lfsr, r, result.session_length, n_inputs);
    const DetectionResult det = sim.run(tg, remaining);
    if (det.detected_count == 0) {
      if (config.stop_on_fruitless_session) break;
      // Keep the session count anyway? A fruitless session adds hardware
      // sessions without payoff; never keep it.
      break;
    }
    ++result.random_sessions;
    result.detected_by_random += det.detected_count;
    std::vector<FaultId> still;
    still.reserve(remaining.size() - det.detected_count);
    for (std::size_t k = 0; k < remaining.size(); ++k)
      if (!det.detected(k)) still.push_back(remaining[k]);
    remaining = std::move(still);
  }

  // Phase 2: the Section 4.2 procedure on the residual faults only.
  std::vector<std::int32_t> residual(detection_time.begin(),
                                     detection_time.end());
  {
    std::vector<bool> keep(residual.size(), false);
    for (const FaultId f : remaining) keep[f] = true;
    for (FaultId f = 0; f < residual.size(); ++f)
      if (!keep[f]) residual[f] = DetectionResult::kUndetected;
  }
  ProcedureConfig pc = config.procedure;
  pc.sequence_length = result.session_length;
  result.procedure = select_weight_assignments(sim, T, residual, pc);

  result.detected_count =
      result.detected_by_random + result.procedure.detected_count;
  return result;
}

}  // namespace wbist::core
