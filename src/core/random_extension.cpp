#include "core/random_extension.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "fault/fault.h"
#include "util/metrics.h"
#include "util/provenance.h"
#include "util/trace.h"

namespace wbist::core {

using fault::DetectionResult;
using fault::FaultId;
using sim::TestSequence;
using sim::Val3;

TestSequence expand_random_session(Lfsr& runner, std::size_t session_length,
                                   std::size_t n_inputs) {
  TestSequence seq(session_length, n_inputs);
  for (std::size_t u = 0; u < session_length; ++u) {
    for (std::size_t i = 0; i < n_inputs; ++i)
      seq.set(u, i,
              runner.bit(lfsr_tap_for_input(runner, i)) ? Val3::kOne
                                                        : Val3::kZero);
    runner.step();
  }
  return seq;
}

TestSequence expand_random_session(const Lfsr& lfsr, std::size_t session,
                                   std::size_t session_length,
                                   std::size_t n_inputs) {
  // One continuous stream: session r covers cycles [r*P, (r+1)*P).
  Lfsr runner = lfsr;
  runner.reset();
  for (std::size_t t = 0; t < session * session_length; ++t) runner.step();
  return expand_random_session(runner, session_length, n_inputs);
}

ExtendedSchemeResult run_extended_scheme(
    const fault::FaultSimulator& sim, const TestSequence& T,
    std::span<const std::int32_t> detection_time,
    const ExtendedSchemeConfig& config) {
  if (detection_time.size() != sim.fault_set().size())
    throw std::invalid_argument(
        "extended_scheme: detection_time not aligned with fault set");

  ExtendedSchemeResult result;
  result.lfsr = Lfsr(config.lfsr_width);
  result.session_length = std::bit_ceil(std::max<std::size_t>(
      std::max(config.procedure.sequence_length, T.length()), 2));

  const std::size_t n_inputs = sim.circuit().primary_inputs().size();

  std::vector<FaultId> remaining;
  for (FaultId f = 0; f < detection_time.size(); ++f)
    if (detection_time[f] != DetectionResult::kUndetected)
      remaining.push_back(f);
  result.target_count = remaining.size();

  // Phase 1: pure-random sessions with fault dropping. One running register
  // expands the continuous stream session by session (the from-reset
  // overload would re-fast-forward O(r * P) steps per session r).
  {
    util::PhaseScope phase("extended.random_sessions");
    util::TraceSpan phase_span("extended.random_sessions",
                               util::TraceArg("targets", remaining.size()));
    Lfsr runner = result.lfsr;
    runner.reset();
    for (std::size_t r = 0;
         r < config.max_random_sessions && !remaining.empty(); ++r) {
      util::TraceSpan span("extended.session", util::TraceArg("session", r),
                           util::TraceArg("remaining", remaining.size()));
      const TestSequence tg =
          expand_random_session(runner, result.session_length, n_inputs);
      ++result.sessions_simulated;
      const DetectionResult det = sim.run(tg, remaining);
      if (det.detected_count == 0) {
        // A fruitless session adds hardware time without payoff: either stop
        // the random phase here (the default), or skip it — uncounted — and
        // keep probing the later sessions of the same stream.
        if (config.stop_on_fruitless_session) break;
        continue;
      }
      // The on-chip stream is continuous, so keeping session r means the
      // hardware also runs sessions 0..r-1 (any skipped fruitless ones among
      // them included): the kept count is r + 1, not a fruitful-only tally.
      result.random_sessions = r + 1;
      result.detected_by_random += det.detected_count;
      if (util::provenance().enabled()) {
        const fault::FaultSet& fs = sim.fault_set();
        const netlist::Netlist& nl = sim.circuit();
        for (std::size_t k = 0; k < remaining.size(); ++k) {
          if (!det.detected(k)) continue;
          const FaultId f = remaining[k];
          const std::string site = fault::fault_name(nl, fs[f]);
          std::string obs;
          if (det.detecting_line[k] != netlist::kNoNode)
            obs = nl.node(det.detecting_line[k]).name;
          util::provenance().record(
              {.phase = "extended.random",
               .fault = f,
               .site = site,
               .class_size = fs.class_size(f),
               .represented_size = fs.represented_size(f),
               .session = static_cast<std::int64_t>(r),
               .u = det.detection_time[k],
               .obs = obs});
        }
      }
      std::vector<FaultId> still;
      still.reserve(remaining.size() - det.detected_count);
      for (std::size_t k = 0; k < remaining.size(); ++k)
        if (!det.detected(k)) still.push_back(remaining[k]);
      remaining = std::move(still);
    }
    util::metrics().counter("extended.sessions_simulated")
        .add(result.sessions_simulated);
    util::metrics().counter("extended.sessions_kept")
        .add(result.random_sessions);
    util::metrics().counter("extended.detected_by_random")
        .add(result.detected_by_random);
  }

  // Phase 2: the Section 4.2 procedure on the residual faults only.
  std::vector<std::int32_t> residual(detection_time.begin(),
                                     detection_time.end());
  {
    std::vector<bool> keep(residual.size(), false);
    for (const FaultId f : remaining) keep[f] = true;
    for (FaultId f = 0; f < residual.size(); ++f)
      if (!keep[f]) residual[f] = DetectionResult::kUndetected;
  }
  ProcedureConfig pc = config.procedure;
  pc.sequence_length = result.session_length;
  {
    util::PhaseScope phase("extended.residual_procedure");
    util::TraceSpan span("extended.residual_procedure");
    result.procedure = select_weight_assignments(sim, T, residual, pc);
  }

  result.detected_count =
      result.detected_by_random + result.procedure.detected_count;
  return result;
}

}  // namespace wbist::core
