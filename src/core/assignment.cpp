#include "core/assignment.h"

#include <algorithm>

namespace wbist::core {

using sim::TestSequence;
using sim::Val3;

TestSequence WeightAssignment::expand(std::size_t length) const {
  TestSequence seq(length, per_input.size());
  for (std::size_t u = 0; u < length; ++u)
    for (std::size_t i = 0; i < per_input.size(); ++i)
      seq.set(u, i, per_input[i].value_at(u));
  return seq;
}

std::size_t WeightAssignment::max_subsequence_length() const {
  std::size_t best = 0;
  for (const Subsequence& s : per_input) best = std::max(best, s.length());
  return best;
}

std::string WeightAssignment::str() const {
  std::string out;
  for (std::size_t i = 0; i < per_input.size(); ++i) {
    if (i != 0) out += " / ";
    out += per_input[i].str();
  }
  return out;
}

std::size_t CandidateSets::max_rank() const {
  std::size_t m = 0;
  for (const auto& set : per_input) m = std::max(m, set.size());
  return m;
}

WeightAssignment CandidateSets::assignment_at(std::size_t j) const {
  WeightAssignment w;
  w.per_input.reserve(per_input.size());
  for (const auto& set : per_input) {
    const std::size_t k = std::min(j, set.size() - 1);
    w.per_input.push_back(set[k].alpha);
  }
  return w;
}

CandidateSets build_candidate_sets(const WeightSet& S, const TestSequence& T,
                                   std::size_t u, std::size_t max_len,
                                   bool ensure_full_length) {
  CandidateSets sets;
  sets.per_input.resize(T.width());

  for (std::size_t i = 0; i < T.width(); ++i) {
    const std::vector<Val3> column = T.column(i);
    std::vector<Candidate>& A = sets.per_input[i];
    for (std::size_t j = 0; j < S.size(); ++j) {
      const Subsequence& alpha = S[j];
      if (alpha.length() > max_len) continue;
      if (!alpha.matches_window(column, u)) continue;
      A.push_back({alpha, j, alpha.match_count(column)});
    }
    // Order of Table 5: decreasing n_m; ties broken toward shorter
    // subsequences (they need fewer state variables), then set order.
    std::stable_sort(A.begin(), A.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.n_m != b.n_m) return a.n_m > b.n_m;
                       if (a.alpha.length() != b.alpha.length())
                         return a.alpha.length() < b.alpha.length();
                       return a.index_in_s < b.index_in_s;
                     });
    // Defensive fallback: X values in the window can leave A_i empty; a
    // constant weight keeps the assignment well-formed without affecting
    // the match-driven selection for fully specified sequences.
    if (A.empty()) {
      const Val3 v = u < column.size() ? column[u] : Val3::kZero;
      const Subsequence constant =
          Subsequence({v == Val3::kOne});
      A.push_back({constant, S.contains(constant) ? S.index_of(constant) : 0,
                   constant.match_count(column)});
    }
  }

  if (ensure_full_length) {
    // Section 4.1 modification: guarantee some rank reproduces T on the full
    // window. A rank j works when every A_i entry at j has length max_len.
    bool exists = false;
    const std::size_t ranks = sets.max_rank();
    for (std::size_t j = 0; j < ranks && !exists; ++j) {
      bool all = true;
      for (const auto& A : sets.per_input) {
        const std::size_t k = std::min(j, A.size() - 1);
        if (A[k].alpha.length() != max_len) {
          all = false;
          break;
        }
      }
      exists = all;
    }
    if (!exists) {
      // "Adding at its beginning": the best length-max_len candidate is
      // *inserted* in front (it also keeps its sorted position), so the
      // n_m-ordered assignments that follow are shifted by one rank, not
      // reordered.
      for (auto& A : sets.per_input) {
        const auto it = std::find_if(A.begin(), A.end(),
                                     [max_len](const Candidate& c) {
                                       return c.alpha.length() == max_len;
                                     });
        if (it != A.end()) A.insert(A.begin(), *it);
      }
    }
  }

  return sets;
}

}  // namespace wbist::core
