#include "core/lfsr.h"

#include <stdexcept>

namespace wbist::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

std::vector<unsigned> default_taps(unsigned width) {
  switch (width) {
    case 8:
      return {7, 5, 4, 3};  // x^8 + x^6 + x^5 + x^4 + 1 (maximal)
    case 16:
      return {15, 13, 12, 10};  // x^16 + x^14 + x^13 + x^11 + 1 (maximal)
    default: {
      // Dense deterministic default; long period, not necessarily maximal.
      std::vector<unsigned> taps{width - 1, width / 2};
      if (width > 2) taps.push_back(1);
      return taps;
    }
  }
}

}  // namespace

Lfsr::Lfsr(unsigned width) : Lfsr(width, default_taps(width)) {}

Lfsr::Lfsr(unsigned width, std::vector<unsigned> taps)
    : width_(width), taps_(std::move(taps)) {
  if (width_ < 2 || width_ > 32)
    throw std::invalid_argument("lfsr: width must be in [2, 32]");
  if (taps_.empty()) throw std::invalid_argument("lfsr: no feedback taps");
  for (const unsigned t : taps_)
    if (t >= width_) throw std::invalid_argument("lfsr: tap out of range");
}

std::uint32_t Lfsr::step() {
  bool feedback_xor = false;
  for (const unsigned t : taps_) feedback_xor ^= bit(t);
  const std::uint32_t fb = feedback_xor ? 0u : 1u;  // XNOR
  state_ = ((state_ << 1) | fb);
  if (width_ < 32) state_ &= (std::uint32_t{1} << width_) - 1;
  return state_;
}

std::vector<std::uint32_t> Lfsr::run(std::size_t cycles) {
  // result[t] is the state *during* active cycle t: the hardware spends the
  // reset pulse forcing all flip-flops to 0, so cycle 0 shows state 0 and
  // each later cycle shows one step further.
  reset();
  std::vector<std::uint32_t> states;
  states.reserve(cycles);
  for (std::size_t t = 0; t < cycles; ++t) {
    states.push_back(state_);
    step();
  }
  return states;
}

std::vector<NodeId> emit_lfsr(Netlist& nl, const Lfsr& lfsr,
                              NodeId reset_high, const std::string& prefix) {
  const unsigned width = lfsr.width();
  std::vector<NodeId> state(width);
  for (unsigned k = 0; k < width; ++k)
    state[k] = nl.add_dff(prefix + std::to_string(k));

  const NodeId not_reset =
      nl.add_gate(GateType::kNot, prefix + "_nR", {reset_high});

  // Feedback: XNOR over the tap bits (bit 0's next value).
  std::vector<NodeId> tap_nodes;
  for (const unsigned t : lfsr.taps()) tap_nodes.push_back(state[t]);
  const NodeId feedback =
      nl.add_gate(GateType::kXnor, prefix + "_fb", std::move(tap_nodes));

  // next bit0 = feedback, next bitK = bit(K-1); synchronous reset to 0.
  // AND with !R forces the zero state during the reset pulse — valid for
  // the XNOR form (the zero state is on the sequence).
  nl.connect_dff(state[0], nl.add_gate(GateType::kAnd, prefix + "_d0",
                                       {feedback, not_reset}));
  for (unsigned k = 1; k < width; ++k)
    nl.connect_dff(state[k],
                   nl.add_gate(GateType::kAnd, prefix + "_d" + std::to_string(k),
                               {state[k - 1], not_reset}));
  return state;
}

}  // namespace wbist::core
