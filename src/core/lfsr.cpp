#include "core/lfsr.h"

#include <algorithm>
#include <stdexcept>

namespace wbist::core {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

std::vector<unsigned> default_taps(unsigned width) {
  // Maximal-length tap sets for every width in [2, 32] (period 2^w - 1).
  // Tap numbers are 0-indexed state bits; the per-width sets follow the
  // standard XNOR-LFSR polynomial table (Xilinx XAPP052), except widths 8
  // and 16, which keep this repo's original — also maximal — polynomials so
  // previously published streams stay bit-identical.
  //
  // The old fallback ({width-1, width/2, 1}) produced *duplicate* taps for
  // widths 2 and 3 ({1,1} and {2,1,1}); a duplicated tap cancels itself in
  // the XOR fold, which collapsed those registers to a trivial stream.
  switch (width) {
    case 2:  return {1, 0};
    case 3:  return {2, 1};
    case 4:  return {3, 2};
    case 5:  return {4, 2};
    case 6:  return {5, 4};
    case 7:  return {6, 5};
    case 8:  return {7, 5, 4, 3};  // x^8 + x^6 + x^5 + x^4 + 1
    case 9:  return {8, 4};
    case 10: return {9, 6};
    case 11: return {10, 8};
    case 12: return {11, 5, 3, 0};
    case 13: return {12, 3, 2, 0};
    case 14: return {13, 4, 2, 0};
    case 15: return {14, 13};
    case 16: return {15, 13, 12, 10};  // x^16 + x^14 + x^13 + x^11 + 1
    case 17: return {16, 13};
    case 18: return {17, 10};
    case 19: return {18, 5, 1, 0};
    case 20: return {19, 16};
    case 21: return {20, 18};
    case 22: return {21, 20};
    case 23: return {22, 17};
    case 24: return {23, 22, 21, 16};
    case 25: return {24, 21};
    case 26: return {25, 5, 1, 0};
    case 27: return {26, 4, 1, 0};
    case 28: return {27, 24};
    case 29: return {28, 26};
    case 30: return {29, 5, 3, 0};
    case 31: return {30, 27};
    case 32: return {31, 21, 1, 0};
    default:
      // Out-of-range widths: hand the constructor something non-empty so its
      // own width validation produces the error.
      return {0};
  }
}

}  // namespace

Lfsr::Lfsr(unsigned width) : Lfsr(width, default_taps(width)) {}

Lfsr::Lfsr(unsigned width, std::vector<unsigned> taps)
    : width_(width), taps_(std::move(taps)) {
  if (width_ < 2 || width_ > 32)
    throw std::invalid_argument("lfsr: width must be in [2, 32]");
  if (taps_.empty()) throw std::invalid_argument("lfsr: no feedback taps");
  for (const unsigned t : taps_)
    if (t >= width_) throw std::invalid_argument("lfsr: tap out of range");
  // Taps form a *set*: a tap listed twice cancels itself in the XOR fold
  // (and would instantiate a dead XNOR input pair in emit_lfsr), so
  // duplicates are dropped, first occurrence kept.
  std::vector<unsigned> unique;
  unique.reserve(taps_.size());
  for (const unsigned t : taps_)
    if (std::find(unique.begin(), unique.end(), t) == unique.end())
      unique.push_back(t);
  taps_ = std::move(unique);
}

std::uint32_t Lfsr::step() {
  bool feedback_xor = false;
  for (const unsigned t : taps_) feedback_xor ^= bit(t);
  const std::uint32_t fb = feedback_xor ? 0u : 1u;  // XNOR
  state_ = ((state_ << 1) | fb);
  if (width_ < 32) state_ &= (std::uint32_t{1} << width_) - 1;
  return state_;
}

std::vector<std::uint32_t> Lfsr::run(std::size_t cycles) {
  // result[t] is the state *during* active cycle t: the hardware spends the
  // reset pulse forcing all flip-flops to 0, so cycle 0 shows state 0 and
  // each later cycle shows one step further.
  reset();
  std::vector<std::uint32_t> states;
  states.reserve(cycles);
  for (std::size_t t = 0; t < cycles; ++t) {
    states.push_back(state_);
    step();
  }
  return states;
}

std::vector<NodeId> emit_lfsr(Netlist& nl, const Lfsr& lfsr,
                              NodeId reset_high, const std::string& prefix) {
  const unsigned width = lfsr.width();
  std::vector<NodeId> state(width);
  for (unsigned k = 0; k < width; ++k)
    state[k] = nl.add_dff(prefix + std::to_string(k));

  const NodeId not_reset =
      nl.add_gate(GateType::kNot, prefix + "_nR", {reset_high});

  // Feedback: XNOR over the tap bits (bit 0's next value).
  std::vector<NodeId> tap_nodes;
  for (const unsigned t : lfsr.taps()) tap_nodes.push_back(state[t]);
  const NodeId feedback =
      nl.add_gate(GateType::kXnor, prefix + "_fb", std::move(tap_nodes));

  // next bit0 = feedback, next bitK = bit(K-1); synchronous reset to 0.
  // AND with !R forces the zero state during the reset pulse — valid for
  // the XNOR form (the zero state is on the sequence).
  nl.connect_dff(state[0], nl.add_gate(GateType::kAnd, prefix + "_d0",
                                       {feedback, not_reset}));
  for (unsigned k = 1; k < width; ++k)
    nl.connect_dff(state[k],
                   nl.add_gate(GateType::kAnd, prefix + "_d" + std::to_string(k),
                               {state[k - 1], not_reset}));
  return state;
}

}  // namespace wbist::core
