// Per-job observation capture (`wbist.obs/1`): stage spans, counter deltas
// and annotations for one service-layer job, rendered as a JSON block that a
// serve response can carry back to the client.
//
// This is deliberately NOT the global util::TraceRegistry — trace sessions
// are process-wide and cannot overlap, while a daemon runs many observed
// jobs concurrently. A JobObservation is a small private recorder owned by
// one request: the worker thread that runs the job is the only writer, so
// no locking is needed.
//
// The observation contract of every instrumentation PR holds here too:
// capture is observation-only. Service code records into the observation
// when a non-null pointer is passed and never reads it back, so a job's
// primary output is bit-identical with observation on or off.
//
// Counter deltas are computed by snapshotting process-wide counters around
// the job body. With a single daemon worker thread the deltas are exact;
// with several, concurrently running jobs may bleed into each other's
// deltas — they are attribution hints, not an accounting invariant, and the
// schema documents them as such.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace wbist::core {

inline constexpr char kObsSchema[] = "wbist.obs/1";

class JobObservation {
 public:
  using Clock = std::chrono::steady_clock;

  JobObservation() : t0_(Clock::now()) {}

  /// Start of the observation window; span start offsets are relative to it.
  Clock::time_point origin() const { return t0_; }

  /// Record a completed stage span. Offsets/durations are stored in
  /// microseconds relative to origin().
  void add_span(const std::string& name, Clock::time_point start,
                Clock::time_point end);

  /// Set an integer measurement (queue_wait_us, kernel_cycles, ...).
  /// Last write wins.
  void set_counter(const std::string& name, std::uint64_t value);

  /// Set a string annotation (job name, cache key, ...). Last write wins.
  void set_note(const std::string& name, const std::string& value);

  /// RAII stage scope; records a span on destruction. A null observation
  /// makes the scope a no-op, so call sites don't need to branch.
  class Scope {
   public:
    Scope(JobObservation* obs, std::string name)
        : obs_(obs), name_(std::move(name)), start_(Clock::now()) {}
    ~Scope() {
      if (obs_ != nullptr) obs_->add_span(name_, start_, Clock::now());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    JobObservation* obs_;
    std::string name_;
    Clock::time_point start_;
  };

  /// Snapshot-delta helper: captures a process-wide counter's value at
  /// construction and writes `counter(name) - start` into the observation on
  /// destruction. No-op when obs is null.
  class CounterDelta {
   public:
    CounterDelta(JobObservation* obs, const std::string& name);
    ~CounterDelta();
    CounterDelta(const CounterDelta&) = delete;
    CounterDelta& operator=(const CounterDelta&) = delete;

   private:
    JobObservation* obs_;
    std::string name_;
    std::uint64_t start_ = 0;
  };

  /// `wbist.obs/1` JSON object: {"schema":...,"notes":{...},
  /// "counters":{...},"spans":[{"name","start_us","dur_us"},...]}.
  std::string to_json() const;

 private:
  struct Span {
    std::string name;
    std::uint64_t start_us;
    std::uint64_t dur_us;
  };

  Clock::time_point t0_;
  std::vector<Span> spans_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::string> notes_;
};

}  // namespace wbist::core
