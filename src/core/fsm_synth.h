// Hardware model of the weight generators (Section 3, Table 3).
//
// All subsequences of one length L_S share a single FSM: a modulo-L_S
// counter with ceil(log2 L_S) state variables, plus one combinational output
// function per subsequence (state s drives output α(s)). Counter states
// L_S..2^bits-1 are unreachable and enter the output functions as
// don't-cares, exactly the structure the paper argues makes short
// subsequences cheap. Subsequences whose periodic expansions coincide
// ("01" vs "0101") are merged by primitive-period reduction before grouping,
// as in Section 5.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/qm.h"
#include "core/subsequence.h"

namespace wbist::core {

/// One synthesized FSM: the shared counter plus its output functions.
struct WeightFsm {
  std::size_t period = 0;      ///< L_S
  unsigned state_bits = 0;     ///< ceil(log2 period); 0 for constant weights
  std::vector<Subsequence> outputs;   ///< primitive subsequences, |α| == period
  std::vector<Cover> next_state;      ///< per state bit, inputs = state bits
  std::vector<Cover> output_covers;   ///< per output, inputs = state bits

  /// Counter state after `t` clocks from reset (t mod period).
  std::uint32_t state_at(std::size_t t) const {
    return static_cast<std::uint32_t>(period == 0 ? 0 : t % period);
  }

  /// Produce `n` cycles of output `k` starting from reset — the sequence
  /// α^r the hardware emits (evaluated through the synthesized covers, not
  /// the subsequence, so tests exercise the logic itself).
  std::vector<bool> run_output(std::size_t k, std::size_t n) const;

  /// Technology-independent size: 2-input-gate equivalents of all covers
  /// plus state-bit inverters.
  std::size_t estimated_gate_count() const;
};

struct FsmOutputRef {
  std::size_t fsm = 0;     ///< index into fsms
  std::size_t output = 0;  ///< index into fsms[fsm].outputs
};

/// The full Section-3 synthesis for a set of subsequences.
struct FsmSynthesisResult {
  std::vector<WeightFsm> fsms;  ///< sorted by ascending period

  /// Where each *original* (pre-reduction) subsequence is produced.
  std::unordered_map<Subsequence, FsmOutputRef, SubsequenceHash> mapping;

  std::size_t fsm_count() const { return fsms.size(); }      ///< Table 6 "num"
  std::size_t output_count() const;                          ///< Table 6 "out"
  std::size_t estimated_gate_count() const;
  std::size_t flip_flop_count() const;
};

/// Group `subs` (duplicates allowed) into FSMs. Every distinct primitive
/// period becomes one FSM; every distinct primitive subsequence one output.
FsmSynthesisResult synthesize_weight_fsms(std::span<const Subsequence> subs);

}  // namespace wbist::core
