#include "core/service.h"

#include <cstdio>

#include "core/artifact_cache.h"
#include "core/obs.h"
#include "fault/fault_sim.h"
#include "sim/sequence_io.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/trace.h"

namespace wbist::core {

namespace {

fault::FaultSimulator make_simulator(const CompiledCircuit& cc) {
  return fault::FaultSimulator(cc.netlist(), cc.faults(), cc.cones());
}

}  // namespace

std::string info_report(const CompiledCircuit& cc) {
  util::TraceSpan span("job.info");
  const auto& nl = cc.netlist();
  const auto stats = nl.stats();
  std::string out = nl.name() + "\n";
  char buf[96];
  std::snprintf(buf, sizeof buf, "  inputs:        %zu\n",
                stats.primary_inputs);
  out += buf;
  std::snprintf(buf, sizeof buf, "  outputs:       %zu\n",
                stats.primary_outputs);
  out += buf;
  std::snprintf(buf, sizeof buf, "  flip-flops:    %zu\n", stats.flip_flops);
  out += buf;
  std::snprintf(buf, sizeof buf, "  logic gates:   %zu\n", stats.logic_gates);
  out += buf;
  std::snprintf(buf, sizeof buf, "  lines:         %zu\n", stats.lines);
  out += buf;
  std::snprintf(buf, sizeof buf, "  logic depth:   %zu\n", stats.max_level);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  stuck-at faults: %zu uncollapsed, %zu collapsed\n",
                cc.uncollapsed_fault_count(), cc.faults().size());
  out += buf;
  return out;
}

FlowJobResult run_flow_job(const CompiledCircuit& cc,
                           const FlowConfig& config,
                           const Deadline& deadline,
                           JobObservation* obs) {
  util::TraceSpan span("job.flow", util::TraceArg::copy("circuit", cc.name()));
  deadline.check("flow");
  JobObservation::Scope stage(obs, "flow");
  JobObservation::CounterDelta kernel(obs, "fault_sim.kernel_cycles");
  JobObservation::CounterDelta faults(obs, "fault_sim.fault_cycles");
  JobObservation::CounterDelta sims(obs, "procedure.full_simulations");
  const auto sim = make_simulator(cc);
  FlowJobResult result{.output = {}, .flow = run_flow(sim, cc.name(), config)};
  const auto& r = result.flow.table6;
  util::Table t;
  t.header({"circuit", "len", "det", "seq", "subs", "len", "num", "out",
            "f.e."});
  t.row({r.circuit, std::to_string(r.t_length), std::to_string(r.t_detected),
         std::to_string(r.n_seq), std::to_string(r.n_subs),
         std::to_string(r.max_len), std::to_string(r.n_fsms),
         std::to_string(r.n_fsm_outputs),
         util::fixed(100.0 * result.flow.procedure.fault_efficiency(), 1)});
  result.output = t.render();
  return result;
}

TgenJobResult run_tgen_job(const CompiledCircuit& cc,
                           const tgen::TgenConfig& config,
                           const tgen::CompactionConfig& compaction,
                           const Deadline& deadline,
                           JobObservation* obs) {
  util::TraceSpan span("job.tgen", util::TraceArg::copy("circuit", cc.name()));
  deadline.check("tgen");
  JobObservation::CounterDelta kernel(obs, "fault_sim.kernel_cycles");
  JobObservation::CounterDelta faults(obs, "fault_sim.fault_cycles");
  const auto sim = make_simulator(cc);
  const JobObservation::Clock::time_point gen_start =
      JobObservation::Clock::now();
  const auto gen = tgen::generate_test_sequence(sim, config);
  if (obs != nullptr)
    obs->add_span("generate", gen_start, JobObservation::Clock::now());
  std::vector<fault::FaultId> must;
  for (fault::FaultId f = 0; f < cc.faults().size(); ++f)
    if (gen.detection_time[f] != fault::DetectionResult::kUndetected)
      must.push_back(f);
  deadline.check("compaction");
  JobObservation::Scope compact_stage(obs, "compaction");
  const auto comp = tgen::compact_sequence(sim, gen.sequence, must, compaction);

  TgenJobResult result;
  result.detected = must.size();
  result.total = cc.faults().size();
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s: %zu -> %zu vectors, %zu/%zu faults (%.1f%%)",
                cc.name().c_str(), gen.sequence.length(),
                comp.sequence.length(), must.size(), cc.faults().size(),
                100.0 * static_cast<double>(must.size()) /
                    static_cast<double>(cc.faults().size()));
  result.summary = buf;
  result.sequence = comp.sequence;
  result.sequence_text = sim::write_sequence(
      comp.sequence, cc.name() + " deterministic test sequence");
  return result;
}

FaultSimJobResult run_fault_sim_job(const CompiledCircuit& cc,
                                    const sim::TestSequence& seq,
                                    unsigned threads,
                                    const Deadline& deadline,
                                    JobObservation* obs) {
  util::TraceSpan span("job.fault_sim",
                       util::TraceArg::copy("circuit", cc.name()));
  deadline.check("fault-sim");
  JobObservation::Scope stage(obs, "fault_sim");
  JobObservation::CounterDelta kernel(obs, "fault_sim.kernel_cycles");
  JobObservation::CounterDelta faults(obs, "fault_sim.fault_cycles");
  JobObservation::CounterDelta gates(obs, "fault_sim.gates_evaluated");
  const auto sim = make_simulator(cc);
  fault::FaultSimOptions options;
  options.threads = threads;
  const auto det = sim.run_all(seq, options);

  FaultSimJobResult result;
  result.detected = det.detected_count;
  result.total = cc.faults().size();
  result.output = render_fault_sim_summary(cc.name(), result.detected,
                                           result.total, seq.length());
  result.detail.circuit = cc.name();
  result.detail.seq_length = seq.length();
  result.detail.detection_time = det.detection_time;
  result.detail.detecting_line = det.detecting_line;
  result.detail.detected = det.detected_count;
  return result;
}

}  // namespace wbist::core
