// Structural synthesis of the complete on-chip test-sequence generator of
// Figure 1 (Section 4.4).
//
// The generator is emitted as an ordinary gate-level netlist (so the
// library's own simulator can verify it cycle-accurately):
//
//   R ──► [ session divider: 2^k-cycle binary counter ] ──tick──┐
//         [ session counter: selects Ω_j, +1 per tick ]◄────────┤
//         [ weight FSMs: one mod-L_S counter per length,        │
//           reset to state 0 on R and on every session tick ]◄──┘
//         [ per-CUT-input multiplexer over FSM outputs ] ──► TG_i
//
// The only input is the reset R (one cycle high). The session length is the
// smallest power of two >= L_G, so the divider is a plain binary counter;
// resetting the weight FSMs on the session tick keeps every session phase-
// aligned with the software expansion w.expand(L) from α(0) — the same
// behaviour as resetting the Table-3 machine to state A.
#pragma once

#include <cstddef>
#include <span>

#include "core/assignment.h"
#include "core/fsm_synth.h"
#include "core/lfsr.h"
#include "netlist/netlist.h"

namespace wbist::core {

struct GeneratorHardware {
  /// The generator netlist. One primary input "R"; primary outputs
  /// "TG0".."TGn-1", one per CUT input, in CUT input order.
  netlist::Netlist netlist;

  std::size_t session_length = 0;   ///< 2^k cycles per weight assignment
  std::size_t session_count = 0;    ///< total sessions (random + weighted)
  std::size_t random_sessions = 0;  ///< leading LFSR-driven sessions
  FsmSynthesisResult fsms;          ///< the shared weight FSMs

  /// Area snapshot of the emitted netlist (gates + flip-flops).
  netlist::NetlistStats stats() const { return netlist.stats(); }
};

/// Build the generator for the weight assignments in Ω. `sequence_length`
/// is L_G; the hardware session length is the next power of two. All
/// assignments must have the same number of inputs, and Ω must be non-empty.
GeneratorHardware build_generator(std::span<const WeightAssignment> omega,
                                  std::size_t sequence_length);

/// Extended scheme (the paper's Section 6 future work): the first
/// `random_sessions` sessions drive every CUT input from a free-running
/// on-chip LFSR (pure-random weights); the remaining sessions use the
/// subsequence weight assignments. The LFSR is *not* reset at session
/// boundaries — consecutive random sessions continue one pseudo-random
/// stream, which is what makes them distinct tests.
struct ExtendedGeneratorSpec {
  std::size_t random_sessions = 0;
  Lfsr lfsr{16};
  std::vector<WeightAssignment> omega;  ///< weighted sessions (may be empty
                                        ///  only if random_sessions > 0)
};

/// `n_inputs` is the CUT input count (needed when omega is empty).
GeneratorHardware build_extended_generator(const ExtendedGeneratorSpec& spec,
                                           std::size_t n_inputs,
                                           std::size_t sequence_length);

/// Tap index of the LFSR stream feeding CUT input `i` (shared by software
/// expansion and hardware routing; decorrelates neighbouring inputs when
/// the circuit has more inputs than the LFSR has bits).
unsigned lfsr_tap_for_input(const Lfsr& lfsr, std::size_t input);

}  // namespace wbist::core
