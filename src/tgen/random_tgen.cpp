#include "tgen/random_tgen.h"

#include <algorithm>

#include "util/rng.h"

namespace wbist::tgen {

using fault::DetectionResult;
using fault::FaultId;
using sim::TestSequence;
using sim::Val3;

namespace {

/// A generation profile: per-input probability of driving 1 and a global
/// probability of holding the previous vector's value on an input. Profiles
/// rotate when generation stalls; holding is what lets random sequences walk
/// deep state-space paths in sequential circuits.
struct Profile {
  double p_one;
  double p_hold;
};

constexpr Profile kProfiles[] = {
    {0.5, 0.0},  {0.5, 0.5},   {0.25, 0.5}, {0.75, 0.5},
    {0.5, 0.85}, {0.1, 0.25},  {0.9, 0.25}, {0.5, 0.95},
};

void append_chunk(TestSequence& seq, std::size_t n_inputs, std::size_t count,
                  const Profile& profile, util::Rng& rng) {
  std::vector<Val3> row(n_inputs, Val3::kZero);
  std::vector<Val3> prev(n_inputs, Val3::kZero);
  const bool have_prev = seq.length() > 0;
  if (have_prev)
    for (std::size_t i = 0; i < n_inputs; ++i)
      prev[i] = seq.at(seq.length() - 1, i);

  for (std::size_t v = 0; v < count; ++v) {
    for (std::size_t i = 0; i < n_inputs; ++i) {
      if ((v > 0 || have_prev) && rng.next_double() < profile.p_hold) {
        row[i] = v > 0 ? row[i] : prev[i];
      } else {
        row[i] = rng.next_double() < profile.p_one ? Val3::kOne : Val3::kZero;
      }
    }
    seq.append(row);
  }
}

}  // namespace

TgenResult generate_test_sequence(const fault::FaultSimulator& sim,
                                  const TgenConfig& config) {
  const std::size_t n_inputs = sim.circuit().primary_inputs().size();
  const fault::FaultSet& faults = sim.fault_set();

  TgenResult result;
  result.detection_time.assign(faults.size(),
                               DetectionResult::kUndetected);

  fault::FaultSimOptions sim_opts;
  sim_opts.threads = config.threads;

  util::Rng rng(config.seed);
  std::vector<FaultId> undetected = faults.all_ids();
  std::size_t stalls = 0;
  std::size_t profile_idx = 0;
  const std::size_t n_profiles = std::size(kProfiles);

  while (!undetected.empty() && result.sequence.length() < config.max_length &&
         stalls < config.max_stalls) {
    const std::size_t chunk =
        std::min(config.chunk, config.max_length - result.sequence.length());
    TestSequence candidate = result.sequence;
    append_chunk(candidate, n_inputs, chunk, kProfiles[profile_idx], rng);

    // Simulating the extended sequence from scratch keeps earlier detection
    // times valid: T only grows by appending, so any fault detected at time
    // u under a prefix is detected at the same u under the full sequence.
    const DetectionResult det = sim.run(candidate, undetected, sim_opts);

    if (det.detected_count == 0) {
      ++stalls;
      profile_idx = (profile_idx + 1) % n_profiles;
      continue;
    }

    result.sequence = std::move(candidate);
    std::vector<FaultId> still;
    still.reserve(undetected.size() - det.detected_count);
    for (std::size_t k = 0; k < undetected.size(); ++k) {
      if (det.detected(k)) {
        result.detection_time[undetected[k]] = det.detection_time[k];
        ++result.detected;
      } else {
        still.push_back(undetected[k]);
      }
    }
    undetected = std::move(still);
    stalls = 0;
  }

  return result;
}

}  // namespace wbist::tgen
