#include "tgen/compaction.h"

#include <algorithm>

namespace wbist::tgen {

using fault::DetectionResult;
using fault::FaultId;
using sim::TestSequence;
using sim::Val3;

namespace {

TestSequence without_block(const TestSequence& seq, std::size_t begin,
                           std::size_t count) {
  TestSequence out(0, seq.width());
  std::vector<Val3> row(seq.width());
  for (std::size_t u = 0; u < seq.length(); ++u) {
    if (u >= begin && u < begin + count) continue;
    for (std::size_t i = 0; i < seq.width(); ++i) row[i] = seq.at(u, i);
    out.append(row);
  }
  return out;
}

bool detects_all(const fault::FaultSimulator& sim, const TestSequence& seq,
                 std::span<const FaultId> must_detect,
                 const fault::FaultSimOptions& opts) {
  const DetectionResult det = sim.run(seq, must_detect, opts);
  return det.detected_count == must_detect.size();
}

}  // namespace

CompactionResult compact_sequence(const fault::FaultSimulator& sim,
                                  const sim::TestSequence& seq,
                                  std::span<const fault::FaultId> must_detect,
                                  const CompactionConfig& config) {
  CompactionResult result;
  result.sequence = seq;
  fault::FaultSimOptions sim_opts;
  sim_opts.threads = config.threads;

  std::size_t block = std::max<std::size_t>(1, seq.length() / 4);
  while (block >= std::max<std::size_t>(1, config.min_block) &&
         result.simulations_used < config.max_simulations &&
         result.sequence.length() > 0) {
    bool removed_any = false;
    // Scan from the back: late vectors are most often redundant because
    // fault dropping concentrates detections early in the sequence.
    std::size_t pos = result.sequence.length();
    while (pos > 0 && result.simulations_used < config.max_simulations) {
      const std::size_t begin = pos > block ? pos - block : 0;
      const std::size_t count = pos - begin;
      const TestSequence candidate =
          without_block(result.sequence, begin, count);
      ++result.simulations_used;
      if (!candidate.empty() &&
          detects_all(sim, candidate, must_detect, sim_opts)) {
        result.sequence = candidate;
        result.removed_vectors += count;
        removed_any = true;
      }
      pos = begin;
    }
    if (block == 1 && !removed_any) break;
    block = block > 1 ? block / 2 : 0;
  }

  // Recompute detection times for the whole fault set on the final sequence.
  const fault::FaultSet& faults = sim.fault_set();
  const std::vector<FaultId> all = faults.all_ids();
  const DetectionResult det = sim.run(result.sequence, all, sim_opts);
  result.detection_time = det.detection_time;
  return result;
}

}  // namespace wbist::tgen
