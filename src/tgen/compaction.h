// Restoration-based static compaction of sequential test sequences.
//
// The paper applies static compaction to the deterministic sequences before
// deriving weights. This implements vector-omission compaction: candidate
// blocks of vectors are removed and the shortened sequence is re-fault-
// simulated; a removal is kept only when every originally-detected fault is
// still detected. Block sizes start large and halve, which removes long
// useless stretches cheaply before fine-grained passes.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "sim/sequence.h"

namespace wbist::tgen {

struct CompactionConfig {
  /// Stop refining once the block size drops below this (1 = full effort).
  std::size_t min_block = 1;
  /// Upper bound on fault simulations spent (guards the largest circuits).
  std::size_t max_simulations = 2000;
  /// Worker threads for the inner fault simulations
  /// (fault::FaultSimOptions::threads semantics: 0 = hardware concurrency).
  unsigned threads = 0;
};

struct CompactionResult {
  sim::TestSequence sequence;
  /// Aligned with the FaultSet: detection times under the compacted
  /// sequence (recomputed at the end).
  std::vector<std::int32_t> detection_time;
  std::size_t removed_vectors = 0;
  std::size_t simulations_used = 0;
};

/// Compact `seq` while preserving detection of every fault in `must_detect`
/// (ids into the simulator's fault set, all detected by `seq`).
CompactionResult compact_sequence(const fault::FaultSimulator& sim,
                                  const sim::TestSequence& seq,
                                  std::span<const fault::FaultId> must_detect,
                                  const CompactionConfig& config = {});

}  // namespace wbist::tgen
