// Deterministic test-sequence generation substrate.
//
// The paper derives its weights from a deterministic test sequence produced
// by STRATEGATE [24] or SEQCOM [25]; neither is available, so this module
// provides the substitute documented in DESIGN.md: multi-profile weighted-
// random sequence generation with fault dropping. Each *profile* biases the
// per-input one-probability and a hold-probability (repeating the previous
// value, which sequential circuits need to traverse state space); chunks of
// vectors are appended only when they detect new faults, and generation
// stops when the fault set is exhausted or progress stalls across profiles.
//
// The output is exactly what the weighted-BIST procedure requires: a single
// deterministic sequence T plus the detection time u_det(f) of every fault
// it detects.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_list.h"
#include "fault/fault_sim.h"
#include "netlist/netlist.h"
#include "sim/sequence.h"

namespace wbist::tgen {

struct TgenConfig {
  std::size_t max_length = 4000;    ///< hard cap on |T|
  std::size_t chunk = 128;          ///< vectors proposed per attempt
  std::size_t max_stalls = 24;      ///< fruitless attempts before giving up
  std::uint64_t seed = 1;
  /// Worker threads for the inner fault simulations
  /// (fault::FaultSimOptions::threads semantics: 0 = hardware concurrency).
  unsigned threads = 0;
};

struct TgenResult {
  sim::TestSequence sequence;
  /// Aligned with the FaultSet: first detection time under `sequence`,
  /// or DetectionResult::kUndetected.
  std::vector<std::int32_t> detection_time;
  std::size_t detected = 0;
};

/// Generate a deterministic test sequence for the collapsed fault set of the
/// simulator's circuit. Fully reproducible from config.seed.
TgenResult generate_test_sequence(const fault::FaultSimulator& sim,
                                  const TgenConfig& config = {});

}  // namespace wbist::tgen
