// Three-valued (0 / 1 / X) logic, 64 machines wide.
//
// Every signal is encoded as two 64-bit planes:
//   one[k]  — machine k's value *can be* 1
//   zero[k] — machine k's value *can be* 0
// so per machine: 0 = (0,1), 1 = (1,0), X = (1,1); (0,0) never occurs.
// This encoding evaluates AND/OR/NOT exactly with two bitwise ops per plane
// and XOR/XNOR with four, and is the standard choice for parallel-fault
// sequential fault simulation (one bit-lane per faulty machine).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace wbist::sim {

/// A scalar three-valued logic value.
enum class Val3 : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

inline char to_char(Val3 v) {
  return v == Val3::kZero ? '0' : v == Val3::kOne ? '1' : 'x';
}

/// Parse '0', '1', or anything else ('x', 'X', '-') as X.
inline Val3 val3_from_char(char c) {
  return c == '0' ? Val3::kZero : c == '1' ? Val3::kOne : Val3::kX;
}

/// 64 three-valued machines packed into two planes.
struct Word3 {
  std::uint64_t one = 0;
  std::uint64_t zero = 0;

  friend bool operator==(const Word3&, const Word3&) = default;
};

inline constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

inline Word3 broadcast(Val3 v) {
  switch (v) {
    case Val3::kZero: return {0, kAllOnes};
    case Val3::kOne: return {kAllOnes, 0};
    case Val3::kX: return {kAllOnes, kAllOnes};
  }
  return {kAllOnes, kAllOnes};
}

/// Extract machine `lane`'s value.
inline Val3 lane(const Word3& w, unsigned lane_index) {
  const bool o = ((w.one >> lane_index) & 1) != 0;
  const bool z = ((w.zero >> lane_index) & 1) != 0;
  if (o && z) return Val3::kX;
  return o ? Val3::kOne : Val3::kZero;
}

/// Per-lane mask of lanes holding a definite (non-X) value.
inline std::uint64_t binary_lanes(const Word3& w) { return w.one ^ w.zero; }

inline Word3 and3(Word3 a, Word3 b) { return {a.one & b.one, a.zero | b.zero}; }
inline Word3 or3(Word3 a, Word3 b) { return {a.one | b.one, a.zero & b.zero}; }
inline Word3 not3(Word3 a) { return {a.zero, a.one}; }
inline Word3 xor3(Word3 a, Word3 b) {
  return {(a.one & b.zero) | (a.zero & b.one),
          (a.one & b.one) | (a.zero & b.zero)};
}

/// Force lanes in `mask` to the constant `value` (stuck-at injection).
inline Word3 force(Word3 w, std::uint64_t mask, bool value) {
  if (value) {
    w.one |= mask;
    w.zero &= ~mask;
  } else {
    w.one &= ~mask;
    w.zero |= mask;
  }
  return w;
}

/// Evaluate one combinational gate over already-computed fanin words.
inline Word3 eval_gate(netlist::GateType type, std::span<const Word3> in) {
  using netlist::GateType;
  Word3 acc = in[0];
  switch (type) {
    case GateType::kBuf:
      return acc;
    case GateType::kNot:
      return not3(acc);
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t i = 1; i < in.size(); ++i) acc = and3(acc, in[i]);
      return type == GateType::kNand ? not3(acc) : acc;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t i = 1; i < in.size(); ++i) acc = or3(acc, in[i]);
      return type == GateType::kNor ? not3(acc) : acc;
    case GateType::kXor:
    case GateType::kXnor:
      for (std::size_t i = 1; i < in.size(); ++i) acc = xor3(acc, in[i]);
      return type == GateType::kXnor ? not3(acc) : acc;
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  return acc;  // unreachable for valid logic gates
}

/// Scalar three-valued gate evaluation (reference semantics for tests).
inline Val3 eval_gate_scalar(netlist::GateType type, std::span<const Val3> in) {
  std::vector<Word3> words(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) words[i] = broadcast(in[i]);
  return lane(eval_gate(type, words), 0);
}

}  // namespace wbist::sim
