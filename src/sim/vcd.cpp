#include "sim/vcd.h"

#include <stdexcept>

namespace wbist::sim {

namespace {

/// Compact printable VCD identifier codes: !, ", #, ... (chars 33..126).
std::string code_for(std::size_t index) {
  std::string code;
  do {
    code += static_cast<char>(33 + index % 94);
    index /= 94;
  } while (index != 0);
  return code;
}

}  // namespace

VcdWriter::VcdWriter(const std::string& path, const netlist::Netlist& nl,
                     std::vector<netlist::NodeId> watch)
    : out_(path), watch_(std::move(watch)) {
  if (!out_) throw std::runtime_error("vcd: cannot write '" + path + "'");
  if (watch_.empty())
    for (netlist::NodeId id = 0; id < nl.node_count(); ++id)
      watch_.push_back(id);

  out_ << "$timescale 1ns $end\n$scope module "
       << (nl.name().empty() ? "top" : nl.name()) << " $end\n";
  codes_.reserve(watch_.size());
  for (std::size_t k = 0; k < watch_.size(); ++k) {
    codes_.push_back(code_for(k));
    out_ << "$var wire 1 " << codes_[k] << " " << nl.node(watch_[k]).name
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  last_.assign(watch_.size(), '?');
}

void VcdWriter::sample(const GoodSimulator& sim) {
  out_ << "#" << time_ << "\n";
  for (std::size_t k = 0; k < watch_.size(); ++k) {
    const char v = to_char(sim.value(watch_[k]));
    if (v == last_[k]) continue;
    last_[k] = v;
    out_ << v << codes_[k] << "\n";
  }
  ++time_;
}

}  // namespace wbist::sim
