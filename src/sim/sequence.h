// A test sequence: an L x n matrix of three-valued input vectors, applied to
// the n primary inputs of a circuit over L consecutive clock cycles.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/logic.h"

namespace wbist::sim {

/// Row-major matrix of Val3; row u is the input vector applied at time u.
class TestSequence {
 public:
  TestSequence() = default;

  /// `width` inputs, `length` time units, all values X.
  TestSequence(std::size_t length, std::size_t width)
      : width_(width), data_(length * width, Val3::kX) {}

  /// Build from per-time-unit strings, e.g. {"0111", "1001", ...}.
  /// Every row must have the same width. Characters other than 0/1 parse as X.
  static TestSequence from_rows(std::initializer_list<std::string_view> rows);
  static TestSequence from_rows(std::span<const std::string> rows);

  std::size_t length() const { return width_ == 0 ? 0 : data_.size() / width_; }
  std::size_t width() const { return width_; }
  bool empty() const { return data_.empty(); }

  Val3 at(std::size_t u, std::size_t input) const {
    return data_[u * width_ + input];
  }
  void set(std::size_t u, std::size_t input, Val3 v) {
    data_[u * width_ + input] = v;
  }

  /// The input vector applied at time u.
  std::span<const Val3> row(std::size_t u) const {
    return {data_.data() + u * width_, width_};
  }

  /// Append one vector (must match width; first append fixes the width).
  void append(std::span<const Val3> vec);

  /// Keep only the first `new_length` vectors.
  void truncate(std::size_t new_length);

  /// The sequence restricted to one input: T_i in the paper's notation.
  std::vector<Val3> column(std::size_t input) const;

  /// "0111"-style string for row u (x for unknowns).
  std::string row_string(std::size_t u) const;

  friend bool operator==(const TestSequence&, const TestSequence&) = default;

 private:
  std::size_t width_ = 0;
  std::vector<Val3> data_;
};

}  // namespace wbist::sim
