// Internal: the templated block evaluation loop shared by the kernel
// backends (kernel_generic via direct instantiation, kernel_avx2 for its
// injected-gate slow path). Not part of the public sim API — include
// sim/kernel.h instead.
#pragma once

#include <cstring>

#include "sim/kernel.h"

namespace wbist::sim::detail {

/// Apply a stuck-at mask to one plane word of a 2N-word value slot.
template <unsigned N>
inline void force_planes(std::uint64_t* planes, unsigned word,
                         std::uint64_t mask, bool sa1) {
  if (sa1) {
    planes[word] |= mask;
    planes[N + word] &= ~mask;
  } else {
    planes[word] &= ~mask;
    planes[N + word] |= mask;
  }
}

/// Fold one gate over its fanin plane slots. `at(k)` returns the 2N-word
/// slot of fanin k; the result lands in `out` (2N words). The accumulator
/// lives in fixed-size locals so the compiler fully unrolls the per-word
/// loops and keeps the planes in registers.
template <unsigned N, typename FaninAt>
inline void fold_planes(netlist::GateType type, const FaninAt& at,
                        std::uint32_t count, std::uint64_t* out) {
  using netlist::GateType;
  std::uint64_t acc1[N];  // 'one' plane
  std::uint64_t acc0[N];  // 'zero' plane
  {
    const std::uint64_t* a = at(0);
    for (unsigned w = 0; w < N; ++w) {
      acc1[w] = a[w];
      acc0[w] = a[N + w];
    }
  }
  bool negate = false;
  switch (type) {
    case GateType::kBuf:
      break;
    case GateType::kNot:
      negate = true;
      break;
    case GateType::kAnd:
    case GateType::kNand:
      for (std::uint32_t k = 1; k < count; ++k) {
        const std::uint64_t* b = at(k);
        for (unsigned w = 0; w < N; ++w) {
          acc1[w] &= b[w];
          acc0[w] |= b[N + w];
        }
      }
      negate = type == GateType::kNand;
      break;
    case GateType::kOr:
    case GateType::kNor:
      for (std::uint32_t k = 1; k < count; ++k) {
        const std::uint64_t* b = at(k);
        for (unsigned w = 0; w < N; ++w) {
          acc1[w] |= b[w];
          acc0[w] &= b[N + w];
        }
      }
      negate = type == GateType::kNor;
      break;
    default:  // kXor / kXnor
      for (std::uint32_t k = 1; k < count; ++k) {
        const std::uint64_t* b = at(k);
        for (unsigned w = 0; w < N; ++w) {
          const std::uint64_t one =
              (acc1[w] & b[N + w]) | (acc0[w] & b[w]);
          const std::uint64_t zero =
              (acc1[w] & b[w]) | (acc0[w] & b[N + w]);
          acc1[w] = one;
          acc0[w] = zero;
        }
      }
      negate = type == GateType::kXnor;
      break;
  }
  if (negate) {
    for (unsigned w = 0; w < N; ++w) {
      out[w] = acc0[w];
      out[N + w] = acc1[w];
    }
  } else {
    for (unsigned w = 0; w < N; ++w) {
      out[w] = acc1[w];
      out[N + w] = acc0[w];
    }
  }
}

/// Evaluate one gate that carries injections: stage the fanin slots in
/// `fanin_buf`, apply pin injections there, fold, then apply stem
/// injections on the output slot.
template <unsigned N>
inline void eval_injected_gate(const GateRec& g,
                               const netlist::NodeId* fanin,
                               const InjectionIndex& inj_index,
                               std::int32_t head, const std::uint64_t* vals,
                               std::uint64_t* out, std::uint64_t* fanin_buf) {
  constexpr std::size_t kStride = 2 * N;
  for (std::uint32_t k = 0; k < g.fanin_count; ++k)
    std::memcpy(fanin_buf + k * kStride, vals + fanin[k] * kStride,
                kStride * sizeof(std::uint64_t));
  for (std::int32_t link = head; link >= 0; link = inj_index.next(link)) {
    const Injection& inj = inj_index.injection(link);
    if (inj.pin != kInjectStem)
      force_planes<N>(
          fanin_buf + static_cast<std::size_t>(inj.pin) * kStride, inj.word,
          inj.mask, inj.sa1);
  }
  fold_planes<N>(
      g.type,
      [&](std::uint32_t k) { return fanin_buf + k * kStride; },
      g.fanin_count, out);
  for (std::int32_t link = head; link >= 0; link = inj_index.next(link)) {
    const Injection& inj = inj_index.injection(link);
    if (inj.pin == kInjectStem)
      force_planes<N>(out, inj.word, inj.mask, inj.sa1);
  }
}

/// The full portable core walk at block width N (the "generic" backends).
template <unsigned N>
void eval_core_block(std::span<const GateRec> gates,
                     const netlist::NodeId* flat_fanin,
                     const InjectionIndex& inj_index, std::uint64_t* vals,
                     std::uint64_t* fanin_buf) {
  constexpr std::size_t kStride = 2 * N;
  for (const GateRec& g : gates) {
    const netlist::NodeId* fanin = flat_fanin + g.fanin_begin;
    std::uint64_t* out = vals + g.id * kStride;
    const std::int32_t head = inj_index.head(g.id);
    if (head < 0) [[likely]] {
      fold_planes<N>(
          g.type,
          [&](std::uint32_t k) { return vals + fanin[k] * kStride; },
          g.fanin_count, out);
    } else {
      eval_injected_gate<N>(g, fanin, inj_index, head, vals, out, fanin_buf);
    }
  }
}

#if defined(WBIST_HAVE_AVX2)
/// 256-bit backend: one __m256i per plane over the 4-word block. Defined in
/// kernel_avx2.cpp (compiled with -mavx2); callable only after a CPUID
/// check for AVX2 support.
void eval_core_avx2(std::span<const GateRec> gates,
                    const netlist::NodeId* flat_fanin,
                    const InjectionIndex& inj_index, std::uint64_t* vals,
                    std::uint64_t* fanin_buf);
#endif

}  // namespace wbist::sim::detail
