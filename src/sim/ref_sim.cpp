#include "sim/ref_sim.h"

#include <stdexcept>

namespace wbist::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;

Val3 ref_eval_gate(GateType type, std::span<const Val3> in) {
  const auto negate = [](Val3 v) {
    if (v == Val3::kX) return Val3::kX;
    return v == Val3::kZero ? Val3::kOne : Val3::kZero;
  };
  switch (type) {
    case GateType::kBuf:
      return in[0];
    case GateType::kNot:
      return negate(in[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      bool any_x = false;
      for (Val3 v : in) {
        if (v == Val3::kZero)
          return type == GateType::kNand ? Val3::kOne : Val3::kZero;
        if (v == Val3::kX) any_x = true;
      }
      if (any_x) return Val3::kX;
      return type == GateType::kNand ? Val3::kZero : Val3::kOne;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool any_x = false;
      for (Val3 v : in) {
        if (v == Val3::kOne)
          return type == GateType::kNor ? Val3::kZero : Val3::kOne;
        if (v == Val3::kX) any_x = true;
      }
      if (any_x) return Val3::kX;
      return type == GateType::kNor ? Val3::kOne : Val3::kZero;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool parity = false;
      for (Val3 v : in) {
        if (v == Val3::kX) return Val3::kX;
        if (v == Val3::kOne) parity = !parity;
      }
      if (type == GateType::kXnor) parity = !parity;
      return parity ? Val3::kOne : Val3::kZero;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw std::logic_error("ref_sim: eval of a non-logic node");
}

RefSimulator::RefSimulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.finalized())
    throw std::invalid_argument("ref_sim: netlist not finalized");
}

RefValueMatrix RefSimulator::run(const TestSequence& seq) const {
  return simulate(seq, nullptr);
}

RefValueMatrix RefSimulator::run(const TestSequence& seq,
                                 const RefFault& fault) const {
  return simulate(seq, &fault);
}

RefValueMatrix RefSimulator::simulate(const TestSequence& seq,
                                      const RefFault* fault) const {
  const Netlist& nl = *nl_;
  const auto pis = nl.primary_inputs();
  const auto ffs = nl.flip_flops();
  if (seq.length() != 0 && seq.width() != pis.size())
    throw std::invalid_argument("ref_sim: sequence width != #inputs");
  const Val3 stuck =
      fault != nullptr && fault->stuck_at_one ? Val3::kOne : Val3::kZero;

  RefValueMatrix matrix;
  matrix.reserve(seq.length());
  std::vector<Val3> state(ffs.size(), Val3::kX);

  for (std::size_t u = 0; u < seq.length(); ++u) {
    std::vector<Val3> vals(nl.node_count(), Val3::kX);
    for (std::size_t i = 0; i < pis.size(); ++i) vals[pis[i]] = seq.at(u, i);
    for (std::size_t i = 0; i < ffs.size(); ++i) vals[ffs[i]] = state[i];
    // Stem fault on a source (PI or flip-flop output): sources are never
    // re-evaluated by the relaxation, so forcing once holds for the cycle.
    if (fault != nullptr && fault->pin < 0) {
      const Node& n = nl.node(fault->node);
      if (!netlist::is_logic_gate(n.type)) vals[fault->node] = stuck;
    }

    // Fixed-point relaxation over the combinational core in plain node-id
    // order. Bounded by node_count passes (each pass settles at least one
    // more level); one extra pass verifies stability.
    std::vector<Val3> fanin;
    bool changed = true;
    for (std::size_t pass = 0; changed && pass <= nl.node_count(); ++pass) {
      changed = false;
      for (NodeId id = 0; id < nl.node_count(); ++id) {
        const Node& n = nl.node(id);
        if (!netlist::is_logic_gate(n.type)) continue;
        fanin.assign(n.fanin.size(), Val3::kX);
        for (std::size_t k = 0; k < n.fanin.size(); ++k)
          fanin[k] = vals[n.fanin[k]];
        if (fault != nullptr && fault->pin >= 0 && fault->node == id)
          fanin[static_cast<std::size_t>(fault->pin)] = stuck;
        Val3 out = ref_eval_gate(n.type, fanin);
        if (fault != nullptr && fault->pin < 0 && fault->node == id)
          out = stuck;
        if (out != vals[id]) {
          vals[id] = out;
          changed = true;
        }
      }
    }
    if (changed)
      throw std::logic_error("ref_sim: relaxation failed to converge");

    // Latch: flip-flop i captures its D signal, with D-pin faults forced.
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      Val3 next = vals[nl.node(ffs[i]).fanin[0]];
      if (fault != nullptr && fault->pin == 0 && fault->node == ffs[i] &&
          nl.node(fault->node).type == GateType::kDff)
        next = stuck;
      state[i] = next;
    }
    matrix.push_back(std::move(vals));
  }
  return matrix;
}

namespace {

bool provably_differs(Val3 good, Val3 faulty) {
  return good != Val3::kX && faulty != Val3::kX && good != faulty;
}

}  // namespace

std::int32_t ref_detection_time(const RefValueMatrix& good,
                                const RefValueMatrix& faulty,
                                std::span<const NodeId> observed) {
  for (std::size_t u = 0; u < good.size() && u < faulty.size(); ++u)
    for (const NodeId line : observed)
      if (provably_differs(good[u][line], faulty[u][line]))
        return static_cast<std::int32_t>(u);
  return -1;
}

std::vector<NodeId> ref_observable_lines(const RefValueMatrix& good,
                                         const RefValueMatrix& faulty) {
  std::vector<NodeId> lines;
  if (good.empty()) return lines;
  const std::size_t node_count = good.front().size();
  for (NodeId node = 0; node < node_count; ++node) {
    for (std::size_t u = 0; u < good.size() && u < faulty.size(); ++u) {
      if (provably_differs(good[u][node], faulty[u][node])) {
        lines.push_back(node);
        break;
      }
    }
  }
  return lines;
}

}  // namespace wbist::sim
