// Runtime-dispatched combinational-core evaluation kernels.
//
// Every simulation path in the system (good machine, parallel-fault groups,
// reverse-order pruning, observation-point selection) bottoms out in the
// same inner loop: walk the flattened combinational core in topological
// order and evaluate each gate over three-valued plane words. This header
// type-erases that loop behind a small function-pointer table so the width
// of the SIMD block (N x 64 lanes) and the instruction set used to process
// it are a *runtime* choice:
//
//   - "generic" backends evaluate Word3Block<N> with plain 64-bit ops for
//     N in {1, 2, 4}; the compiler is free to autovectorize them at the
//     build's baseline ISA. N = 1 is the original scalar Word3 path.
//   - the "avx2" backend (x86-64 builds with -mavx2 support) processes the
//     4-word block as one 256-bit vector per plane and is selected by CPUID
//     at startup.
//
// Selection: kernels() lists every backend compiled in; active_kernel()
// picks the widest ISA-specific backend the CPU supports, unless the
// environment overrides it:
//
//   WBIST_FORCE_GENERIC_KERNEL=1   force the generic backend (CI uses this
//                                  to fuzz both code paths on AVX2 hosts)
//   WBIST_KERNEL_WORDS=N           block width for the generic backend
//                                  (1, 2 or 4; default 4)
//
// All backends are bit-identical by construction (lanes never interact);
// the sim-diff fuzz campaign enforces this against the scalar oracle for
// every backend in kernels().
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "netlist/netlist.h"
#include "sim/word_block.h"

namespace wbist::sim {

/// One gate of the flattened combinational core in evaluation order
/// (cache-friendly walk shared by every backend).
struct GateRec {
  netlist::NodeId id;
  netlist::GateType type;
  std::uint32_t fanin_begin;
  std::uint32_t fanin_count;
};

/// Stem/branch stuck-at injection applied inside the kernel walk. `pin` is
/// kInjectStem for a fault on the node's output, otherwise the fanin pin
/// index; `word`/`mask` select the faulty lanes within the block.
inline constexpr std::int16_t kInjectStem = -1;

struct Injection {
  netlist::NodeId node;
  std::int16_t pin;
  bool sa1;
  std::uint16_t word;  ///< plane word within the block (lane / 64)
  std::uint64_t mask;  ///< lanes within that word
};

/// Scratch per-group chain of gate injections. head(node) is an index into
/// the link list, or -1. attach()/detach() touch only the injected nodes,
/// so reuse across groups costs O(#injections), not O(#nodes).
class InjectionIndex {
 public:
  explicit InjectionIndex(std::size_t node_count) : head_(node_count, -1) {}

  void attach(const std::vector<Injection>& injections) {
    for (const Injection& inj : injections) {
      links_.push_back({inj, head_[inj.node]});
      head_[inj.node] = static_cast<std::int32_t>(links_.size()) - 1;
      touched_.push_back(inj.node);
    }
  }

  void detach() {
    for (netlist::NodeId n : touched_) head_[n] = -1;
    touched_.clear();
    links_.clear();
  }

  std::int32_t head(netlist::NodeId node) const { return head_[node]; }
  const Injection& injection(std::int32_t link) const {
    return links_[static_cast<std::size_t>(link)].first;
  }
  std::int32_t next(std::int32_t link) const {
    return links_[static_cast<std::size_t>(link)].second;
  }

 private:
  std::vector<std::int32_t> head_;
  std::vector<std::pair<Injection, std::int32_t>> links_;
  std::vector<netlist::NodeId> touched_;
};

/// Evaluate the flattened combinational core once over plane buffers.
/// `vals` holds node_count slots of 2*words plane words each (layout of
/// Word3Block: 'one' words then 'zero' words, see word_block.h);
/// `fanin_buf` must hold max_fanin * 2*words words of staging space for
/// injected gates.
using EvalCoreFn = void (*)(std::span<const GateRec> gates,
                            const netlist::NodeId* flat_fanin,
                            const InjectionIndex& inj_index,
                            std::uint64_t* vals, std::uint64_t* fanin_buf);

struct Kernel {
  const char* name;  ///< "generic-w1" | "generic-w2" | "generic-w4" | "avx2"
  unsigned words;    ///< N: 64-lane plane words per block (lanes = 64 * N)
  EvalCoreFn eval_core;
};

/// Every backend compiled into this binary and runnable on this CPU, widest
/// first. Always contains at least the generic widths.
std::span<const Kernel> kernels();

/// The backend FaultSimulator and GoodSimulator use by default: environment
/// override if present, else the widest ISA-specific backend the CPU
/// supports, else generic width 4. Resolved once per process.
const Kernel& active_kernel();

/// Lookup by name ("avx2", "generic-w2", ...); nullptr when absent.
const Kernel* find_kernel(std::string_view name);

/// Process-wide backend override, set once at startup from the tools'
/// `--kernel` option and consulted by every later active_kernel() call.
/// `spec` is "auto" (clear the override: environment/CPU selection applies),
/// "generic" (widest generic backend), "avx2", or an exact kernel name.
/// Returns the kernel active_kernel() will now report; throws
/// std::invalid_argument on an unknown spec or a backend this CPU lacks.
/// Not thread-safe: call before simulators are constructed.
const Kernel& select_kernel(std::string_view spec);

}  // namespace wbist::sim
