// AVX2 kernel backend: the 4-word (256-lane) block is processed as one
// 256-bit vector per plane. This translation unit is the only one compiled
// with -mavx2; it must stay free of global initializers that execute AVX2
// instructions, and eval_core_avx2 must only be called after the CPUID
// check in kernel.cpp.
//
// Injected gates (a handful per 256-fault group) drop to the portable
// per-word slow path — correctness-critical and cold, so they share
// eval_injected_gate<4> with the generic backend byte for byte.
#if defined(WBIST_HAVE_AVX2)

#include <immintrin.h>

#include "sim/kernel_impl.h"

namespace wbist::sim::detail {

namespace {

inline __m256i load(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

}  // namespace

void eval_core_avx2(std::span<const GateRec> gates,
                    const netlist::NodeId* flat_fanin,
                    const InjectionIndex& inj_index, std::uint64_t* vals,
                    std::uint64_t* fanin_buf) {
  using netlist::GateType;
  constexpr std::size_t kStride = 2 * 4;  // 4 'one' + 4 'zero' words
  for (const GateRec& g : gates) {
    const netlist::NodeId* fanin = flat_fanin + g.fanin_begin;
    std::uint64_t* out = vals + g.id * kStride;
    const std::int32_t head = inj_index.head(g.id);
    if (head >= 0) [[unlikely]] {
      eval_injected_gate<4>(g, fanin, inj_index, head, vals, out, fanin_buf);
      continue;
    }

    const std::uint64_t* a = vals + fanin[0] * kStride;
    __m256i one = load(a);
    __m256i zero = load(a + 4);
    bool negate = false;
    switch (g.type) {
      case GateType::kBuf:
        break;
      case GateType::kNot:
        negate = true;
        break;
      case GateType::kAnd:
      case GateType::kNand:
        for (std::uint32_t k = 1; k < g.fanin_count; ++k) {
          const std::uint64_t* b = vals + fanin[k] * kStride;
          one = _mm256_and_si256(one, load(b));
          zero = _mm256_or_si256(zero, load(b + 4));
        }
        negate = g.type == GateType::kNand;
        break;
      case GateType::kOr:
      case GateType::kNor:
        for (std::uint32_t k = 1; k < g.fanin_count; ++k) {
          const std::uint64_t* b = vals + fanin[k] * kStride;
          one = _mm256_or_si256(one, load(b));
          zero = _mm256_and_si256(zero, load(b + 4));
        }
        negate = g.type == GateType::kNor;
        break;
      default:  // kXor / kXnor
        for (std::uint32_t k = 1; k < g.fanin_count; ++k) {
          const std::uint64_t* b = vals + fanin[k] * kStride;
          const __m256i b1 = load(b);
          const __m256i b0 = load(b + 4);
          const __m256i next_one = _mm256_or_si256(
              _mm256_and_si256(one, b0), _mm256_and_si256(zero, b1));
          const __m256i next_zero = _mm256_or_si256(
              _mm256_and_si256(one, b1), _mm256_and_si256(zero, b0));
          one = next_one;
          zero = next_zero;
        }
        negate = g.type == GateType::kXnor;
        break;
    }
    if (negate) {
      store(out, zero);
      store(out + 4, one);
    } else {
      store(out, one);
      store(out + 4, zero);
    }
  }
}

}  // namespace wbist::sim::detail

#endif  // WBIST_HAVE_AVX2
