#include "sim/kernel.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/kernel_impl.h"

namespace wbist::sim {

namespace {

bool cpu_supports_avx2() {
#if defined(WBIST_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// Generic-backend block width from WBIST_KERNEL_WORDS (1, 2 or 4);
/// anything absent or invalid resolves to the full width 4.
unsigned generic_words_from_env() {
  const char* v = std::getenv("WBIST_KERNEL_WORDS");
  if (v == nullptr) return 4;
  if (std::strcmp(v, "1") == 0) return 1;
  if (std::strcmp(v, "2") == 0) return 2;
  return 4;
}

bool force_generic_from_env() {
  const char* v = std::getenv("WBIST_FORCE_GENERIC_KERNEL");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

std::vector<Kernel> build_kernels() {
  std::vector<Kernel> ks;
  if (cpu_supports_avx2())
    ks.push_back({"avx2", 4,
#if defined(WBIST_HAVE_AVX2)
                  &detail::eval_core_avx2
#else
                  nullptr  // unreachable: cpu_supports_avx2() is false
#endif
    });
  ks.push_back({"generic-w4", 4, &detail::eval_core_block<4>});
  ks.push_back({"generic-w2", 2, &detail::eval_core_block<2>});
  ks.push_back({"generic-w1", 1, &detail::eval_core_block<1>});
  return ks;
}

const std::vector<Kernel>& kernel_table() {
  static const std::vector<Kernel> table = build_kernels();
  return table;
}

const Kernel& resolve_active() {
  const std::vector<Kernel>& table = kernel_table();
  if (force_generic_from_env()) {
    const unsigned words = generic_words_from_env();
    for (const Kernel& k : table)
      if (k.words == words && std::strncmp(k.name, "generic", 7) == 0)
        return k;
  }
  return table.front();  // widest ISA backend first, else generic-w4
}

/// select_kernel() override; null = environment/CPU selection.
const Kernel* g_selected = nullptr;

}  // namespace

std::span<const Kernel> kernels() { return kernel_table(); }

const Kernel& active_kernel() {
  if (g_selected != nullptr) return *g_selected;
  static const Kernel& active = resolve_active();
  return active;
}

const Kernel& select_kernel(std::string_view spec) {
  if (spec == "auto") {
    g_selected = nullptr;
    return active_kernel();
  }
  const Kernel* k = nullptr;
  if (spec == "generic") {
    for (const Kernel& cand : kernel_table())
      if (std::strncmp(cand.name, "generic", 7) == 0 &&
          (k == nullptr || cand.words > k->words))
        k = &cand;
  } else {
    k = find_kernel(spec);  // exact names, including "avx2"
  }
  if (k == nullptr)
    throw std::invalid_argument("unknown or unavailable kernel backend: " +
                                std::string(spec));
  g_selected = k;
  return *k;
}

const Kernel* find_kernel(std::string_view name) {
  for (const Kernel& k : kernel_table())
    if (name == k.name) return &k;
  return nullptr;
}

}  // namespace wbist::sim
