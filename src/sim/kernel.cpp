#include "sim/kernel.h"

#include <cstdlib>
#include <cstring>

#include "sim/kernel_impl.h"

namespace wbist::sim {

namespace {

bool cpu_supports_avx2() {
#if defined(WBIST_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// Generic-backend block width from WBIST_KERNEL_WORDS (1, 2 or 4);
/// anything absent or invalid resolves to the full width 4.
unsigned generic_words_from_env() {
  const char* v = std::getenv("WBIST_KERNEL_WORDS");
  if (v == nullptr) return 4;
  if (std::strcmp(v, "1") == 0) return 1;
  if (std::strcmp(v, "2") == 0) return 2;
  return 4;
}

bool force_generic_from_env() {
  const char* v = std::getenv("WBIST_FORCE_GENERIC_KERNEL");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

std::vector<Kernel> build_kernels() {
  std::vector<Kernel> ks;
  if (cpu_supports_avx2())
    ks.push_back({"avx2", 4,
#if defined(WBIST_HAVE_AVX2)
                  &detail::eval_core_avx2
#else
                  nullptr  // unreachable: cpu_supports_avx2() is false
#endif
    });
  ks.push_back({"generic-w4", 4, &detail::eval_core_block<4>});
  ks.push_back({"generic-w2", 2, &detail::eval_core_block<2>});
  ks.push_back({"generic-w1", 1, &detail::eval_core_block<1>});
  return ks;
}

const std::vector<Kernel>& kernel_table() {
  static const std::vector<Kernel> table = build_kernels();
  return table;
}

const Kernel& resolve_active() {
  const std::vector<Kernel>& table = kernel_table();
  if (force_generic_from_env()) {
    const unsigned words = generic_words_from_env();
    for (const Kernel& k : table)
      if (k.words == words && std::strncmp(k.name, "generic", 7) == 0)
        return k;
  }
  return table.front();  // widest ISA backend first, else generic-w4
}

}  // namespace

std::span<const Kernel> kernels() { return kernel_table(); }

const Kernel& active_kernel() {
  static const Kernel& active = resolve_active();
  return active;
}

const Kernel* find_kernel(std::string_view name) {
  for (const Kernel& k : kernel_table())
    if (name == k.name) return &k;
  return nullptr;
}

}  // namespace wbist::sim
