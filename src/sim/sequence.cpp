#include "sim/sequence.h"

#include <stdexcept>

namespace wbist::sim {

namespace {

template <typename Rows>
TestSequence build(const Rows& rows) {
  TestSequence seq;
  std::vector<Val3> vec;
  for (const auto& row : rows) {
    vec.clear();
    for (char c : row) vec.push_back(val3_from_char(c));
    seq.append(vec);
  }
  return seq;
}

}  // namespace

TestSequence TestSequence::from_rows(
    std::initializer_list<std::string_view> rows) {
  return build(rows);
}

TestSequence TestSequence::from_rows(std::span<const std::string> rows) {
  return build(rows);
}

void TestSequence::append(std::span<const Val3> vec) {
  if (width_ == 0 && data_.empty()) width_ = vec.size();
  if (vec.size() != width_)
    throw std::invalid_argument("sequence: row width mismatch");
  data_.insert(data_.end(), vec.begin(), vec.end());
}

void TestSequence::truncate(std::size_t new_length) {
  if (new_length < length()) data_.resize(new_length * width_);
}

std::vector<Val3> TestSequence::column(std::size_t input) const {
  std::vector<Val3> out;
  out.reserve(length());
  for (std::size_t u = 0; u < length(); ++u) out.push_back(at(u, input));
  return out;
}

std::string TestSequence::row_string(std::size_t u) const {
  std::string s;
  s.reserve(width_);
  for (std::size_t i = 0; i < width_; ++i) s += to_char(at(u, i));
  return s;
}

}  // namespace wbist::sim
