// Plain-text persistence for test sequences.
//
// Format: one input vector per line ('0' / '1' / 'x'), '#' comments and
// blank lines ignored:
//     # s27, 10 vectors, 4 inputs
//     0111
//     1001
// All rows must have equal width. This is the interchange format used by
// the command-line tool for deterministic sequences and weighted sessions.
#pragma once

#include <string>
#include <string_view>

#include "sim/sequence.h"

namespace wbist::sim {

/// Parse sequence text. Throws std::runtime_error (with a line number) on
/// width mismatches or characters outside {0,1,x,X,-}.
TestSequence read_sequence(std::string_view text);

/// Load from a file; throws std::runtime_error on I/O failure.
TestSequence read_sequence_file(const std::string& path);

/// Serialize with an optional comment header.
std::string write_sequence(const TestSequence& seq,
                           std::string_view comment = {});

void write_sequence_file(const TestSequence& seq, const std::string& path,
                         std::string_view comment = {});

}  // namespace wbist::sim
