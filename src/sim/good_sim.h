// Fault-free (good-machine) cycle-accurate simulation of a synchronous
// sequential circuit with three-valued logic.
//
// ISCAS-89 circuits have no reset input; simulation therefore starts from the
// all-X state, and a fault is only observable once the good machine produces
// a definite value at an output. This simulator is also the reference the
// fault simulator is validated against.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sim/kernel.h"
#include "sim/logic.h"
#include "sim/sequence.h"

namespace wbist::sim {

/// Packed recording of the good machine's *entire* value vector over a
/// sequence: two bits per node per cycle (the one/zero planes of the
/// broadcast lane). ~node_count/4 bytes per cycle, so whole traces of the
/// larger ISCAS circuits stay well under a megabyte. The fault simulator
/// reads it to splat fault-free values at a cone frontier and to test
/// whether an injection is activated, instead of re-walking the circuit.
class FullTrace {
 public:
  FullTrace() = default;
  explicit FullTrace(std::size_t node_count)
      : node_count_(node_count), words_((node_count + 63) / 64) {}

  std::size_t node_count() const { return node_count_; }
  std::size_t length() const { return length_; }
  bool empty() const { return length_ == 0; }
  /// 64-bit words per plane row (node_count bits, rounded up).
  std::size_t words() const { return words_; }

  /// Cycle u's packed plane rows: words() one-plane words followed by
  /// words() zero-plane words (bit n = node n's plane bit). Lets callers
  /// diff whole cycles (e.g. the fault simulator's changed-node masks)
  /// without going through per-node value() lookups.
  std::span<const std::uint64_t> planes(std::size_t u) const {
    return {bits_.data() + u * 2 * words_, 2 * words_};
  }

  /// Record one cycle from a simulator's post-step raw values (lane 0 of
  /// each Word3 is the recorded value; raw values are broadcast).
  void append(std::span<const Word3> raw);

  /// Broadcast good value of `node` during cycle `u` (all 64 lanes equal).
  Word3 value(std::size_t u, netlist::NodeId node) const {
    const std::uint64_t* one = bits_.data() + u * 2 * words_;
    const std::uint64_t* zero = one + words_;
    const std::uint64_t one_bit = (one[node / 64] >> (node % 64)) & 1;
    const std::uint64_t zero_bit = (zero[node / 64] >> (node % 64)) & 1;
    return Word3{one_bit ? ~std::uint64_t{0} : 0,
                 zero_bit ? ~std::uint64_t{0} : 0};
  }

 private:
  std::size_t node_count_ = 0;
  std::size_t words_ = 0;
  std::size_t length_ = 0;
  std::vector<std::uint64_t> bits_;  // per cycle: one-plane row, zero-plane row
};

class GoodSimulator {
 public:
  explicit GoodSimulator(const netlist::Netlist& nl);

  /// Return all flip-flops to the unknown state.
  void reset();

  /// Apply one input vector (ordered as nl.primary_inputs()) and clock once:
  /// evaluates the combinational core, then latches the flip-flops.
  void step(std::span<const Val3> pi_values);

  /// Value of any signal after the most recent step() (pre-latch view of the
  /// combinational core, i.e. the values present during the applied cycle).
  Val3 value(netlist::NodeId id) const { return lane(values_[id], 0); }

  /// Primary-output vector after the most recent step().
  std::vector<Val3> outputs() const;

  /// Present state (flip-flop output values) that the *next* step will see.
  std::vector<Val3> state() const;

  const netlist::Netlist& circuit() const { return *nl_; }

  /// Raw per-node words after the most recent step() (lane 0 meaningful in
  /// all lanes: values are broadcast). Used by the fault simulator to compare
  /// faulty machines against the good machine without re-simulation.
  std::span<const Word3> raw_values() const { return values_; }

  /// Convenience: reset, run the whole sequence, and return the L x |PO|
  /// matrix of output responses.
  std::vector<std::vector<Val3>> run(const TestSequence& seq);

 private:
  const netlist::Netlist* nl_;
  // The combinational core is walked through the shared width-1 evaluation
  // kernel (sim/kernel.h): a Word3 is exactly a 1-word block, so values_
  // doubles as the kernel's flat plane buffer.
  const Kernel* kernel_;
  std::vector<GateRec> gates_;  // combinational core in evaluation order
  std::vector<netlist::NodeId> flat_fanin_;
  InjectionIndex inj_index_;       // always empty: the good machine
  std::vector<Word3> fanin_buf_;   // staging (unused while inj_index_ empty)
  std::vector<Word3> values_;      // per node, lane 0 meaningful
  std::vector<Word3> next_state_;  // per flip-flop, latched at end of step
};

}  // namespace wbist::sim
