// Fault-free (good-machine) cycle-accurate simulation of a synchronous
// sequential circuit with three-valued logic.
//
// ISCAS-89 circuits have no reset input; simulation therefore starts from the
// all-X state, and a fault is only observable once the good machine produces
// a definite value at an output. This simulator is also the reference the
// fault simulator is validated against.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sim/kernel.h"
#include "sim/logic.h"
#include "sim/sequence.h"

namespace wbist::sim {

class GoodSimulator {
 public:
  explicit GoodSimulator(const netlist::Netlist& nl);

  /// Return all flip-flops to the unknown state.
  void reset();

  /// Apply one input vector (ordered as nl.primary_inputs()) and clock once:
  /// evaluates the combinational core, then latches the flip-flops.
  void step(std::span<const Val3> pi_values);

  /// Value of any signal after the most recent step() (pre-latch view of the
  /// combinational core, i.e. the values present during the applied cycle).
  Val3 value(netlist::NodeId id) const { return lane(values_[id], 0); }

  /// Primary-output vector after the most recent step().
  std::vector<Val3> outputs() const;

  /// Present state (flip-flop output values) that the *next* step will see.
  std::vector<Val3> state() const;

  const netlist::Netlist& circuit() const { return *nl_; }

  /// Raw per-node words after the most recent step() (lane 0 meaningful in
  /// all lanes: values are broadcast). Used by the fault simulator to compare
  /// faulty machines against the good machine without re-simulation.
  std::span<const Word3> raw_values() const { return values_; }

  /// Convenience: reset, run the whole sequence, and return the L x |PO|
  /// matrix of output responses.
  std::vector<std::vector<Val3>> run(const TestSequence& seq);

 private:
  const netlist::Netlist* nl_;
  // The combinational core is walked through the shared width-1 evaluation
  // kernel (sim/kernel.h): a Word3 is exactly a 1-word block, so values_
  // doubles as the kernel's flat plane buffer.
  const Kernel* kernel_;
  std::vector<GateRec> gates_;  // combinational core in evaluation order
  std::vector<netlist::NodeId> flat_fanin_;
  InjectionIndex inj_index_;       // always empty: the good machine
  std::vector<Word3> fanin_buf_;   // staging (unused while inj_index_ empty)
  std::vector<Word3> values_;      // per node, lane 0 meaningful
  std::vector<Word3> next_state_;  // per flip-flop, latched at end of step
};

}  // namespace wbist::sim
