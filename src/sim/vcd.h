// VCD (value change dump) waveform export for debugging simulations.
//
// Usage:
//   GoodSimulator sim(nl);
//   VcdWriter vcd("trace.vcd", nl);            // all signals
//   for (each cycle) { sim.step(v); vcd.sample(sim); }
// The file is valid for any VCD viewer (gtkwave etc.); X values dump as x.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sim/good_sim.h"

namespace wbist::sim {

class VcdWriter {
 public:
  /// Watch specific nodes, or every node when `watch` is empty. Throws
  /// std::runtime_error if the file cannot be opened.
  VcdWriter(const std::string& path, const netlist::Netlist& nl,
            std::vector<netlist::NodeId> watch = {});

  /// Record the simulator's current values at the next timestep. Only
  /// changed signals are written (plus everything on the first sample).
  void sample(const GoodSimulator& sim);

  std::size_t samples() const { return time_; }

 private:
  std::ofstream out_;
  std::vector<netlist::NodeId> watch_;
  std::vector<std::string> codes_;
  std::vector<char> last_;
  std::size_t time_ = 0;
};

}  // namespace wbist::sim
