// N x 64 three-valued machines: the block-widened form of sim::Word3.
//
// A Word3Block<N> packs 64*N machines into 2*N 64-bit planes laid out as
// one[0..N) followed by zero[0..N). The layout is standard-layout and
// contiguous, so a buffer of blocks is exactly the flat plane array the
// runtime-dispatched simulation kernels (sim/kernel.h) operate on: node k's
// planes live at offset k * 2N, 'one' words first. Lane l of a block maps to
// bit (l % 64) of word (l / 64).
//
// All operations are per-lane and lanes never interact, so every operation
// over Word3Block<N> is bit-identical to running the scalar Word3 operation
// independently on each of the N words — the property the kernel backends
// (generic widths and AVX2) are fuzzed against.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/logic.h"

namespace wbist::sim {

/// Widest block any backend uses (AVX2 = 4 x 64 = one __m256i per plane).
inline constexpr unsigned kMaxBlockWords = 4;

/// Plane words per value slot for a block of `n_words` (one + zero planes).
inline constexpr std::size_t block_stride(unsigned n_words) {
  return 2 * static_cast<std::size_t>(n_words);
}

template <unsigned N>
struct Word3Block {
  static_assert(N >= 1 && N <= kMaxBlockWords);

  std::array<std::uint64_t, N> one{};
  std::array<std::uint64_t, N> zero{};

  friend bool operator==(const Word3Block&, const Word3Block&) = default;
};

/// All 64*N lanes set to the scalar value `v`.
template <unsigned N>
inline Word3Block<N> broadcast_block(Val3 v) {
  const Word3 w = broadcast(v);
  Word3Block<N> b;
  for (unsigned k = 0; k < N; ++k) {
    b.one[k] = w.one;
    b.zero[k] = w.zero;
  }
  return b;
}

/// Widen one 64-lane word into every word of the block.
template <unsigned N>
inline Word3Block<N> splat_block(Word3 w) {
  Word3Block<N> b;
  for (unsigned k = 0; k < N; ++k) {
    b.one[k] = w.one;
    b.zero[k] = w.zero;
  }
  return b;
}

/// Extract machine `lane` (0 <= lane < 64*N).
template <unsigned N>
inline Val3 lane(const Word3Block<N>& b, unsigned lane_index) {
  const Word3 w{b.one[lane_index / 64], b.zero[lane_index / 64]};
  return lane(w, lane_index % 64);
}

template <unsigned N>
inline Word3Block<N> and3(const Word3Block<N>& a, const Word3Block<N>& b) {
  Word3Block<N> r;
  for (unsigned k = 0; k < N; ++k) {
    r.one[k] = a.one[k] & b.one[k];
    r.zero[k] = a.zero[k] | b.zero[k];
  }
  return r;
}

template <unsigned N>
inline Word3Block<N> or3(const Word3Block<N>& a, const Word3Block<N>& b) {
  Word3Block<N> r;
  for (unsigned k = 0; k < N; ++k) {
    r.one[k] = a.one[k] | b.one[k];
    r.zero[k] = a.zero[k] & b.zero[k];
  }
  return r;
}

template <unsigned N>
inline Word3Block<N> not3(const Word3Block<N>& a) {
  Word3Block<N> r;
  for (unsigned k = 0; k < N; ++k) {
    r.one[k] = a.zero[k];
    r.zero[k] = a.one[k];
  }
  return r;
}

template <unsigned N>
inline Word3Block<N> xor3(const Word3Block<N>& a, const Word3Block<N>& b) {
  Word3Block<N> r;
  for (unsigned k = 0; k < N; ++k) {
    r.one[k] = (a.one[k] & b.zero[k]) | (a.zero[k] & b.one[k]);
    r.zero[k] = (a.one[k] & b.one[k]) | (a.zero[k] & b.zero[k]);
  }
  return r;
}

/// Force the lanes selected by `mask` within plane word `word` to `value`
/// (stuck-at injection; other words untouched).
template <unsigned N>
inline Word3Block<N> force(Word3Block<N> b, unsigned word, std::uint64_t mask,
                           bool value) {
  if (value) {
    b.one[word] |= mask;
    b.zero[word] &= ~mask;
  } else {
    b.one[word] &= ~mask;
    b.zero[word] |= mask;
  }
  return b;
}

/// Evaluate one combinational gate over fanin blocks (reference semantics
/// for the kernel backends; mirrors sim::eval_gate lane for lane).
template <unsigned N>
inline Word3Block<N> eval_gate_block(netlist::GateType type,
                                     std::span<const Word3Block<N>> in) {
  using netlist::GateType;
  Word3Block<N> acc = in[0];
  switch (type) {
    case GateType::kBuf:
      return acc;
    case GateType::kNot:
      return not3(acc);
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t i = 1; i < in.size(); ++i) acc = and3(acc, in[i]);
      return type == GateType::kNand ? not3(acc) : acc;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t i = 1; i < in.size(); ++i) acc = or3(acc, in[i]);
      return type == GateType::kNor ? not3(acc) : acc;
    case GateType::kXor:
    case GateType::kXnor:
      for (std::size_t i = 1; i < in.size(); ++i) acc = xor3(acc, in[i]);
      return type == GateType::kXnor ? not3(acc) : acc;
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  return acc;  // unreachable for valid logic gates
}

}  // namespace wbist::sim
