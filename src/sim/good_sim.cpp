#include "sim/good_sim.h"

#include <stdexcept>

namespace wbist::sim {

using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;

GoodSimulator::GoodSimulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.finalized())
    throw std::invalid_argument("good_sim: netlist not finalized");
  values_.resize(nl.node_count());
  next_state_.resize(nl.flip_flops().size());
  reset();
}

void GoodSimulator::reset() {
  for (Word3& w : values_) w = broadcast(Val3::kX);
  for (Word3& w : next_state_) w = broadcast(Val3::kX);
}

void GoodSimulator::step(std::span<const Val3> pi_values) {
  const auto pis = nl_->primary_inputs();
  if (pi_values.size() != pis.size())
    throw std::invalid_argument("good_sim: input vector width mismatch");

  for (std::size_t i = 0; i < pis.size(); ++i)
    values_[pis[i]] = broadcast(pi_values[i]);
  const auto ffs = nl_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) values_[ffs[i]] = next_state_[i];

  std::vector<Word3> fanin_buf;
  for (NodeId id : nl_->eval_order()) {
    const Node& n = nl_->node(id);
    fanin_buf.clear();
    for (NodeId f : n.fanin) fanin_buf.push_back(values_[f]);
    values_[id] = eval_gate(n.type, fanin_buf);
  }

  for (std::size_t i = 0; i < ffs.size(); ++i)
    next_state_[i] = values_[nl_->node(ffs[i]).fanin[0]];
}

std::vector<Val3> GoodSimulator::outputs() const {
  std::vector<Val3> out;
  out.reserve(nl_->primary_outputs().size());
  for (NodeId id : nl_->primary_outputs()) out.push_back(value(id));
  return out;
}

std::vector<Val3> GoodSimulator::state() const {
  std::vector<Val3> out;
  out.reserve(next_state_.size());
  for (const Word3& w : next_state_) out.push_back(lane(w, 0));
  return out;
}

std::vector<std::vector<Val3>> GoodSimulator::run(const TestSequence& seq) {
  reset();
  std::vector<std::vector<Val3>> responses;
  responses.reserve(seq.length());
  for (std::size_t u = 0; u < seq.length(); ++u) {
    step(seq.row(u));
    responses.push_back(outputs());
  }
  return responses;
}

}  // namespace wbist::sim
