#include "sim/good_sim.h"

#include <algorithm>
#include <stdexcept>
#include <type_traits>

namespace wbist::sim {

using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;

// values_ doubles as the width-1 kernel's flat plane buffer: a Word3 is two
// contiguous 64-bit planes, exactly one value slot at block width 1.
static_assert(std::is_standard_layout_v<Word3> &&
              sizeof(Word3) == 2 * sizeof(std::uint64_t));

void FullTrace::append(std::span<const Word3> raw) {
  if (raw.size() != node_count_)
    throw std::invalid_argument("full_trace: value vector width mismatch");
  bits_.resize(bits_.size() + 2 * words_, 0);
  std::uint64_t* one = bits_.data() + length_ * 2 * words_;
  std::uint64_t* zero = one + words_;
  for (std::size_t n = 0; n < node_count_; ++n) {
    one[n / 64] |= (raw[n].one & 1) << (n % 64);
    zero[n / 64] |= (raw[n].zero & 1) << (n % 64);
  }
  ++length_;
}

GoodSimulator::GoodSimulator(const Netlist& nl)
    : nl_(&nl),
      kernel_(find_kernel("generic-w1")),
      inj_index_(nl.node_count()) {
  if (!nl.finalized())
    throw std::invalid_argument("good_sim: netlist not finalized");
  gates_.reserve(nl.eval_order().size());
  std::size_t max_fanin = 1;
  for (NodeId id : nl.eval_order()) {
    const Node& n = nl.node(id);
    gates_.push_back({id, n.type, static_cast<std::uint32_t>(flat_fanin_.size()),
                      static_cast<std::uint32_t>(n.fanin.size())});
    flat_fanin_.insert(flat_fanin_.end(), n.fanin.begin(), n.fanin.end());
    max_fanin = std::max(max_fanin, n.fanin.size());
  }
  fanin_buf_.resize(max_fanin);
  values_.resize(nl.node_count());
  next_state_.resize(nl.flip_flops().size());
  reset();
}

void GoodSimulator::reset() {
  for (Word3& w : values_) w = broadcast(Val3::kX);
  for (Word3& w : next_state_) w = broadcast(Val3::kX);
}

void GoodSimulator::step(std::span<const Val3> pi_values) {
  const auto pis = nl_->primary_inputs();
  if (pi_values.size() != pis.size())
    throw std::invalid_argument("good_sim: input vector width mismatch");

  for (std::size_t i = 0; i < pis.size(); ++i)
    values_[pis[i]] = broadcast(pi_values[i]);
  const auto ffs = nl_->flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) values_[ffs[i]] = next_state_[i];

  kernel_->eval_core(gates_, flat_fanin_.data(), inj_index_,
                     reinterpret_cast<std::uint64_t*>(values_.data()),
                     reinterpret_cast<std::uint64_t*>(fanin_buf_.data()));

  for (std::size_t i = 0; i < ffs.size(); ++i)
    next_state_[i] = values_[nl_->node(ffs[i]).fanin[0]];
}

std::vector<Val3> GoodSimulator::outputs() const {
  std::vector<Val3> out;
  out.reserve(nl_->primary_outputs().size());
  for (NodeId id : nl_->primary_outputs()) out.push_back(value(id));
  return out;
}

std::vector<Val3> GoodSimulator::state() const {
  std::vector<Val3> out;
  out.reserve(next_state_.size());
  for (const Word3& w : next_state_) out.push_back(lane(w, 0));
  return out;
}

std::vector<std::vector<Val3>> GoodSimulator::run(const TestSequence& seq) {
  reset();
  std::vector<std::vector<Val3>> responses;
  responses.reserve(seq.length());
  for (std::size_t u = 0; u < seq.length(); ++u) {
    step(seq.row(u));
    responses.push_back(outputs());
  }
  return responses;
}

}  // namespace wbist::sim
