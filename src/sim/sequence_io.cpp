#include "sim/sequence_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace wbist::sim {

TestSequence read_sequence(std::string_view text) {
  TestSequence seq;
  std::vector<Val3> row;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = util::trim(line);
    if (line.empty()) continue;

    row.clear();
    for (const char c : line) {
      if (c != '0' && c != '1' && c != 'x' && c != 'X' && c != '-')
        throw std::runtime_error("sequence: line " + std::to_string(line_no) +
                                 ": bad character '" + std::string(1, c) +
                                 "'");
      row.push_back(val3_from_char(c));
    }
    if (seq.width() != 0 && row.size() != seq.width())
      throw std::runtime_error("sequence: line " + std::to_string(line_no) +
                               ": width mismatch");
    seq.append(row);
  }
  return seq;
}

TestSequence read_sequence_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("sequence: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_sequence(ss.str());
}

std::string write_sequence(const TestSequence& seq,
                           std::string_view comment) {
  std::string out;
  if (!comment.empty()) {
    out += "# ";
    out += comment;
    out += '\n';
  }
  out += "# " + std::to_string(seq.length()) + " vectors, " +
         std::to_string(seq.width()) + " inputs\n";
  for (std::size_t u = 0; u < seq.length(); ++u) out += seq.row_string(u) + "\n";
  return out;
}

void write_sequence_file(const TestSequence& seq, const std::string& path,
                         std::string_view comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("sequence: cannot write '" + path + "'");
  out << write_sequence(seq, comment);
  if (!out)
    throw std::runtime_error("sequence: write failed for '" + path + "'");
}

}  // namespace wbist::sim
