// Deliberately naive scalar reference simulator — the ground-truth oracle
// for differential fuzzing of the fast simulation stack.
//
// Everything the word-parallel fault simulator optimizes away is done the
// slow, obvious way here: one machine at a time, scalar Val3 values, no
// 64-lane packing, no flattened gate records, and no reliance on the
// netlist's precomputed evaluation order. Each time unit is computed by
// fixed-point relaxation: all gate outputs start at X and are re-evaluated
// in node-id order until nothing changes. Three-valued gate functions are
// monotone in the Kleene information order and the combinational core is
// acyclic, so the relaxation converges to exactly the topological-order
// values — without sharing the levelization code under test.
//
// The implementation must stay independent of sim/logic.h's word kernels
// and of fault/fault_sim.*; it is only allowed to share the netlist model
// and the Val3 enum itself.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sim/logic.h"
#include "sim/sequence.h"

namespace wbist::sim {

/// A single stuck-at fault, described structurally. Mirrors fault::Fault
/// (node / pin / polarity) without depending on the fault layer, which is
/// built on top of sim.
struct RefFault {
  netlist::NodeId node = netlist::kNoNode;
  int pin = -1;  ///< -1 = output stem; otherwise fanin pin index
  bool stuck_at_one = false;
};

/// values[u][node]: value of every node during time unit u (the pre-latch
/// view, matching GoodSimulator::value() and the fault simulator's
/// observation semantics).
using RefValueMatrix = std::vector<std::vector<Val3>>;

/// Scalar three-valued evaluation of one gate, written from the truth
/// tables (AND: any 0 -> 0, else any X -> X, else 1; XOR: any X -> X, else
/// parity; ...). Independent of the Word3 kernels it is used to check.
Val3 ref_eval_gate(netlist::GateType type, std::span<const Val3> in);

class RefSimulator {
 public:
  /// `nl` must be finalized and must outlive the simulator.
  explicit RefSimulator(const netlist::Netlist& nl);

  /// Fault-free simulation of `seq` from the all-X state.
  RefValueMatrix run(const TestSequence& seq) const;

  /// Single-fault simulation: the stuck-at value is forced on the faulty
  /// line every time unit (stem faults on the node's output, pin faults on
  /// one fanin of one gate, D-pin faults on the value a flip-flop latches).
  RefValueMatrix run(const TestSequence& seq, const RefFault& fault) const;

  const netlist::Netlist& circuit() const { return *nl_; }

 private:
  RefValueMatrix simulate(const TestSequence& seq, const RefFault* fault) const;

  const netlist::Netlist* nl_;
};

/// First time unit at which some line in `observed` carries a definite
/// binary value in both machines and the values differ (the pessimistic
/// three-valued detection criterion), or -1 if that never happens.
std::int32_t ref_detection_time(const RefValueMatrix& good,
                                const RefValueMatrix& faulty,
                                std::span<const netlist::NodeId> observed);

/// Sorted list of every node at which the fault is observable at some time
/// unit (good and faulty values both binary and different) — the scalar
/// counterpart of FaultSimulator::observable_lines().
std::vector<netlist::NodeId> ref_observable_lines(const RefValueMatrix& good,
                                                  const RefValueMatrix& faulty);

}  // namespace wbist::sim
