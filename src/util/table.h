// ASCII table rendering used by the experiment harnesses to print rows in
// the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace wbist::util {

/// Column-aligned ASCII table with a header row and an optional title.
///
/// Usage:
///   Table t{"Table 6: Experimental results"};
///   t.header({"circuit", "len", "det", "seq", "subs", "len"});
///   t.row({"s27", "10", "32", "4", "9", "3"});
///   std::cout << t.render();
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void header(std::vector<std::string> cells) { header_ = std::move(cells); }
  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Render with columns padded to the widest cell; numbers right-aligned.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wbist::util
