// Lightweight wall-clock timing for experiment harnesses.
#pragma once

#include <chrono>

namespace wbist::util {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wbist::util
